// Diurnal load study: datacenters average ~30% utilization (the paper's
// Section II-B, citing Barroso et al.) with strong day/night swings.
// This example plays a 24-hour diurnal trace and a flash-crowd trace
// against the EP cluster, comparing a static 32A9:12K10 deployment with
// dynamic configuration switching across the Figure-9 mixes — putting a
// kWh number on the paper's motivation.
//
// Run with: go run ./examples/diurnal
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/loadtrace"
)

func main() {
	catalog := repro.DefaultCatalog()
	workloads, err := repro.PaperWorkloads(catalog)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := workloads.Lookup("EP")
	if err != nil {
		log.Fatal(err)
	}
	a9, err := catalog.Lookup("A9")
	if err != nil {
		log.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		log.Fatal(err)
	}

	var cands []*repro.Analysis
	for _, m := range [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}} {
		cfg, err := repro.NewConfig(repro.FullNodes(a9, m[0]), repro.FullNodes(k10, m[1]))
		if err != nil {
			log.Fatal(err)
		}
		a, err := repro.Analyze(cfg, ep)
		if err != nil {
			log.Fatal(err)
		}
		cands = append(cands, a)
	}

	shapes := []loadtrace.Shape{
		loadtrace.Diurnal{Mean: 0.30, Amplitude: 0.25, Period: 86400, PeakAt: 14 * 3600},
		loadtrace.FlashCrowd{Base: 0.20, Peak: 0.90, Start: 9 * 3600, HalfLife: 2 * 3600},
		loadtrace.Steps{Levels: []float64{0.15, 0.55, 0.85, 0.45}, Dwell: 6 * 3600},
	}

	opt := loadtrace.TraceOptions{
		Duration: 86400,
		Step:     900, // reconfigure at most every 15 minutes
		Policy:   adaptive.Policy{Hysteresis: 0.05},
	}

	fmt.Println("24-hour EP traces: static 32A9:12K10 vs adaptive switching")
	fmt.Printf("%-28s %12s %12s %9s %9s %11s\n",
		"load shape", "static kWh", "adaptive kWh", "saving", "switches", "violations")
	for _, shape := range shapes {
		static, adapted, err := loadtrace.Evaluate(cands, shape, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.2f %12.2f %8.1f%% %9d %11d\n",
			shape.Name(),
			static.Energy/3.6e6,
			adapted.Energy/3.6e6,
			100*loadtrace.Saving(static, adapted),
			adapted.Switches,
			adapted.SLOViolations)
	}

	fmt.Println("\nThe diurnal row is the paper's energy-proportionality problem in")
	fmt.Println("kWh: a static cluster burns near-constant power while load swings;")
	fmt.Println("switching along the Pareto mixes recovers nearly half of it")
	fmt.Println("without missing capacity.")
}
