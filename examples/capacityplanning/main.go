// Capacity planning: find the cheapest-energy heterogeneous
// configuration that meets an execution-time deadline for a financial
// analytics batch (blackscholes), the paper's "sweet region" use case.
//
// The program enumerates every mix of up to 32 A9 and 12 K10 nodes,
// computes the energy-deadline Pareto frontier, applies the deadline,
// and reports the winner alongside what a homogeneous deployment would
// cost.
//
// Run with: go run ./examples/capacityplanning
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	catalog := repro.DefaultCatalog()
	workloads, err := repro.PaperWorkloads(catalog)
	if err != nil {
		log.Fatal(err)
	}
	bs, err := workloads.Lookup("blackscholes")
	if err != nil {
		log.Fatal(err)
	}
	a9, err := catalog.Lookup("A9")
	if err != nil {
		log.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		log.Fatal(err)
	}

	// Enumerate node-count mixes (cores and frequency pinned to max;
	// pass FixCoresAndFreq=false to explore DVFS too).
	limits := []repro.Limit{
		{Type: a9, MaxNodes: 32, FixCoresAndFreq: true},
		{Type: k10, MaxNodes: 12, FixCoresAndFreq: true},
	}
	frontier, err := repro.ParetoFrontier(limits, bs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Pareto frontier has %d configurations:\n", len(frontier))
	for _, p := range frontier {
		fmt.Printf("  %-18s T=%-10v E=%v\n", p.Config, p.Time, p.Energy)
	}

	// A 5-second deadline for the 10M-option batch.
	const deadline = repro.Seconds(5)
	var best *repro.ParetoPoint
	for i := range frontier {
		p := &frontier[i]
		if p.Time > deadline {
			continue
		}
		if best == nil || p.Energy < best.Energy {
			best = p
		}
	}
	if best == nil {
		log.Fatalf("no configuration meets the %v deadline", deadline)
	}
	fmt.Printf("\ncheapest configuration meeting a %v deadline: %s\n", deadline, best.Config)
	fmt.Printf("  time %v, energy %v\n", best.Time, best.Energy)

	// Compare against the homogeneous extremes.
	allK10 := mustConfig(repro.FullNodes(k10, 12))
	var allK10Energy repro.Joules
	for _, alt := range []repro.Config{
		mustConfig(repro.FullNodes(a9, 32)),
		allK10,
	} {
		res, err := repro.Evaluate(alt, bs)
		if err != nil {
			log.Fatal(err)
		}
		if alt.Key() == allK10.Key() {
			allK10Energy = res.Energy
		}
		verdict := "meets deadline"
		if res.Time > deadline {
			verdict = "MISSES deadline"
		}
		fmt.Printf("  homogeneous %-14s T=%-10v E=%-10v (%s)\n", alt, res.Time, res.Energy, verdict)
	}

	if allK10Energy > 0 {
		fmt.Printf("\nenergy saved vs all-K10: %.1f%%\n",
			100*(1-float64(best.Energy)/float64(allK10Energy)))
	}
}

func mustConfig(groups ...repro.Group) repro.Config {
	cfg, err := repro.NewConfig(groups...)
	if err != nil {
		log.Fatal(err)
	}
	return cfg
}
