// Custom node types and workloads: the methodology is not tied to the
// paper's A9/K10 pair. This example registers a hypothetical ARM
// Cortex-A57 micro-server, defines a video-transcoding workload by its
// raw service demands (no calibration targets needed), validates the
// model against the discrete-event simulator, and compares
// proportionality across three node generations.
//
// Run with: go run ./examples/customnode
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	catalog := repro.DefaultCatalog()

	// A hypothetical Cortex-A57 micro-server: 8 cores at up to 2 GHz,
	// GigE, 11 W idle, moderate per-core power.
	a57 := &repro.NodeType{
		Name:  "A57",
		Model: "ARM Cortex-A57 microserver",
		ISA:   "ARMv8-A",
		Cores: 8,
		Freq: repro.DVFS{
			Steps:           []repro.Hertz{0.6e9, 1.0e9, 1.4e9, 1.7e9, 2.0e9},
			DynamicExponent: 2.3,
		},
		MemBandwidth: 8e9,
		NICBandwidth: 1e9 / 8,
		Power: repro.PowerParams{
			CPUActPerCore:   1.1,
			CPUStallPerCore: 0.45,
			Mem:             0.9,
			Net:             0.8,
			Idle:            11,
		},
		NominalPeak: 22,
		MemPerNode:  4e9,
	}
	if err := catalog.Register(a57); err != nil {
		log.Fatal(err)
	}

	// A transcoding workload defined directly by demands: cycles and
	// bytes per frame on each node type. (The paper workloads instead
	// calibrate demands from published PPR/IPR targets.)
	transcode := repro.NewWorkload("transcode-4k", "frames", 500)
	for _, d := range []struct {
		node      string
		core, mem float64 // cycles per frame
		io        float64 // bytes per frame
		intensity float64
	}{
		{"A9", 4.2e9, 5.1e9, 90e3, 0.30},  // memory-bound on the wimpy node
		{"K10", 9.0e8, 8.8e8, 90e3, 0.80}, // compute/memory balanced
		{"A57", 1.6e9, 1.5e9, 90e3, 0.55},
	} {
		err := transcode.SetDemand(d.node, repro.Demand{
			CoreCycles: repro.Cycles(d.core),
			MemCycles:  repro.Cycles(d.mem),
			IOBytes:    repro.Bytes(d.io),
			Intensity:  d.intensity,
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	transcode.Irregularity = 0.04

	// Compare single-node proportionality and PPR across generations.
	fmt.Println("single-node comparison for transcode-4k:")
	fmt.Printf("%-6s %10s %10s %10s %8s %8s\n", "node", "T_P", "idle", "busy", "IPR", "PPR")
	for _, name := range []string{"A9", "A57", "K10"} {
		nt, err := catalog.Lookup(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := repro.NewConfig(repro.FullNodes(nt, 1))
		if err != nil {
			log.Fatal(err)
		}
		a, err := repro.Analyze(cfg, transcode)
		if err != nil {
			log.Fatal(err)
		}
		m := a.Metrics()
		fmt.Printf("%-6s %10v %10v %10v %8.3f %8.4f\n",
			name, a.Result.Time, a.Result.IdlePower, a.Result.BusyPower, m.IPR, a.PPRAt(1))
	}

	// A three-way heterogeneous cluster: the model handles any degree of
	// inter-node heterogeneity, not just pairs.
	a9, _ := catalog.Lookup("A9")
	k10, _ := catalog.Lookup("K10")
	mix, err := repro.NewConfig(
		repro.FullNodes(a9, 16),
		repro.FullNodes(a57, 8),
		repro.FullNodes(k10, 4),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.Evaluate(mix, transcode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n3-way mix %s: T=%v E=%v (degree of heterogeneity d=%d)\n",
		mix, res.Time, res.Energy, mix.Degree())

	// Validate the model against the simulated testbed for the new
	// node type, exactly like Table 4.
	valCfg, err := repro.NewConfig(repro.FullNodes(a57, 4))
	if err != nil {
		log.Fatal(err)
	}
	row, err := repro.Validate(valCfg, transcode, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalidation on %s: time error %.1f%%, energy error %.1f%%\n",
		valCfg, row.TimeErrPct, row.EnergyErrPct)
}
