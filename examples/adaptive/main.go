// Adaptive configuration switching: the paper analyzes *static*
// configurations and notes that dynamic adaptation complements its
// approach. This example plans a load-dependent ensemble over the
// Figure-9 mixes for the EP workload: at every load level the dispatcher
// runs the cheapest configuration that can absorb the arrivals (and,
// optionally, meet a p95 SLO), powering brawny nodes down at night and
// up under peak traffic.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/adaptive"
	"repro/internal/energyprop"
	"repro/internal/stats"
)

func main() {
	catalog := repro.DefaultCatalog()
	workloads, err := repro.PaperWorkloads(catalog)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := workloads.Lookup("EP")
	if err != nil {
		log.Fatal(err)
	}
	a9, err := catalog.Lookup("A9")
	if err != nil {
		log.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		log.Fatal(err)
	}

	mixes := [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}}
	var cands []*repro.Analysis
	for _, m := range mixes {
		var groups []repro.Group
		if m[0] > 0 {
			groups = append(groups, repro.FullNodes(a9, m[0]))
		}
		if m[1] > 0 {
			groups = append(groups, repro.FullNodes(k10, m[1]))
		}
		cfg, err := repro.NewConfig(groups...)
		if err != nil {
			log.Fatal(err)
		}
		a, err := repro.Analyze(cfg, ep)
		if err != nil {
			log.Fatal(err)
		}
		cands = append(cands, a)
	}

	grid := stats.Linspace(0.05, 0.95, 19)
	plan, err := adaptive.Plan(cands, adaptive.Policy{SLO: 0.200}, grid)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("load-dependent configuration plan for EP (p95 SLO 200 ms):")
	fmt.Printf("%8s  %-16s %10s %12s %12s\n", "load", "configuration", "own util", "power [W]", "p95 [ms]")
	for _, d := range plan.Decisions {
		name := "— none feasible —"
		if d.Chosen >= 0 {
			name = cands[d.Chosen].Result.Config.String()
		}
		fmt.Printf("%7.0f%%  %-16s %9.1f%% %12.1f %12.2f\n",
			100*d.LoadFrac, name, 100*d.Utilization, d.Power, 1000*d.Response)
	}

	fmt.Printf("\nconfiguration switches along the range: %d\n", plan.Switches)
	fmt.Printf("mean power saving vs static 32A9:12K10: %.1f%%\n", 100*plan.Savings())

	m, err := plan.Metrics()
	if err != nil {
		log.Fatal(err)
	}
	staticM := cands[0].Metrics()
	fmt.Printf("proportionality: static EPM %.3f -> adaptive ensemble EPM %.3f\n", staticM.EPM, m.EPM)

	// How far below the static ideal does the ensemble dip?
	curve, err := plan.Curve()
	if err != nil {
		log.Fatal(err)
	}
	ref := energyprop.Reference{PeakPower: float64(cands[0].Result.BusyPower)}
	lo, hi, ok := ref.SublinearRange(curve, grid)
	if ok {
		fmt.Printf("ensemble is sub-linear against the static peak for loads in [%.0f%%, %.0f%%]\n",
			100*lo, 100*hi)
	}
}
