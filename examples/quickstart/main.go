// Quickstart: evaluate the time-energy model and the energy-
// proportionality metrics for a heterogeneous cluster running one of the
// paper's workloads.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// The catalog ships the paper's node types: the wimpy ARM Cortex-A9
	// (5 W peak) and the brawny AMD Opteron K10 (60 W peak).
	catalog := repro.DefaultCatalog()
	workloads, err := repro.PaperWorkloads(catalog)
	if err != nil {
		log.Fatal(err)
	}

	a9, err := catalog.Lookup("A9")
	if err != nil {
		log.Fatal(err)
	}
	k10, err := catalog.Lookup("K10")
	if err != nil {
		log.Fatal(err)
	}

	// A heterogeneous mix: 32 wimpy + 12 brawny nodes, all cores at
	// maximum frequency (the reference configuration of Figures 9-12).
	cfg, err := repro.NewConfig(repro.FullNodes(a9, 32), repro.FullNodes(k10, 12))
	if err != nil {
		log.Fatal(err)
	}

	ep, err := workloads.Lookup("EP")
	if err != nil {
		log.Fatal(err)
	}

	// One job through the Table 2 time-energy model.
	res, err := repro.Evaluate(cfg, ep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s on %s:\n", ep.Name, cfg)
	fmt.Printf("  execution time %v, energy %v\n", res.Time, res.Energy)
	fmt.Printf("  idle %v -> busy %v, throughput %.4g %s/s\n",
		res.IdlePower, res.BusyPower, float64(res.Throughput), ep.Unit)

	// The energy-proportionality metrics over the M/D/1 utilization
	// sweep (Table 3 of the paper).
	a, err := repro.Analyze(cfg, ep)
	if err != nil {
		log.Fatal(err)
	}
	m := a.Metrics()
	fmt.Printf("  DPR=%.2f%%  IPR=%.3f  EPM=%.3f  LDR=%.3f\n", m.DPR, m.IPR, m.EPM, m.LDR)

	// Tail latency at 70% cluster utilization from the M/D/1 queue.
	p95, err := a.ResponsePercentileAt(0.70, 95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  p95 response time at 70%% utilization: %.4g s\n", p95)
}
