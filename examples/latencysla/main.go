// Latency SLA planning: a memcached-style web tier must keep the
// 95th-percentile response time under an SLO while spending as little
// energy as possible. This walks the paper's 1 kW substitution ladder
// (Section III-C) and, for each mix, finds the highest utilization the
// SLO permits and the energy per served request there — the
// time-energy-performance triangle of the paper's title.
//
// Run with: go run ./examples/latencysla
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	catalog := repro.DefaultCatalog()
	workloads, err := repro.PaperWorkloads(catalog)
	if err != nil {
		log.Fatal(err)
	}
	mc, err := workloads.Lookup("memcached")
	if err != nil {
		log.Fatal(err)
	}

	budget, err := repro.DefaultBudget(catalog)
	if err != nil {
		log.Fatal(err)
	}
	ladder, err := budget.Ladder()
	if err != nil {
		log.Fatal(err)
	}

	// SLO: p95 response under 50 ms per batch.
	const slo = 0.050
	fmt.Printf("memcached under a 1 kW peak-power budget, p95 SLO = %.0f ms\n\n", slo*1000)
	fmt.Printf("%-16s %10s %12s %12s %16s\n", "mix", "T_P", "max util", "power there", "J per Mbyte")

	type candidate struct {
		mix    repro.Mix
		util   float64
		power  float64
		jPerMB float64
	}
	var best *candidate
	for _, m := range ladder {
		a, err := repro.Analyze(m.Config, mc)
		if err != nil {
			log.Fatal(err)
		}
		// Find the highest utilization that still meets the SLO by
		// bisection over the monotone p95(u).
		lo, hi := 0.01, 0.99
		meets := func(u float64) bool {
			r, err := a.ResponsePercentileAt(u, 95)
			if err != nil {
				log.Fatal(err)
			}
			return r <= slo
		}
		if !meets(lo) {
			fmt.Printf("%-16s %10v %12s\n", m.Config, a.Result.Time, "SLO infeasible")
			continue
		}
		for i := 0; i < 40 && hi-lo > 1e-4; i++ {
			mid := (lo + hi) / 2
			if meets(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		util := lo
		power := a.PowerAt(util)
		// Served bytes per second at this utilization = util * busy
		// throughput; energy per megabyte follows.
		tput := util * float64(a.Result.Throughput)
		jPerMB := power / tput * 1e6
		fmt.Printf("%-16s %10v %11.1f%% %11.1f W %16.3f\n",
			m.Config, a.Result.Time, 100*util, power, jPerMB)
		c := candidate{mix: m, util: util, power: power, jPerMB: jPerMB}
		if best == nil || c.jPerMB < best.jPerMB {
			cc := c
			best = &cc
		}
	}
	if best == nil {
		log.Fatal("no mix meets the SLO")
	}
	fmt.Printf("\nmost energy-efficient mix under the SLO: %s (%.3f J/MB at %.1f%% utilization)\n",
		best.mix.Config, best.jPerMB, 100*best.util)
}
