// big.LITTLE at chip scale: the paper scopes itself to *inter-node*
// heterogeneity and cites ARM big.LITTLE power management as the
// intra-chip counterpart (Muthukaruppan et al.). This example shows the
// same model covers that case by construction: a big.LITTLE SoC is a
// two-type "cluster" whose node types are core clusters — the big
// cluster (A15-like cores, high power) and the LITTLE cluster
// (A7-like cores, low power) sharing one package.
//
// The questions transfer verbatim: which cluster has the better PPR for
// a workload, is the combined chip sub-linearly proportional against
// the big cluster's peak, and what does the energy-deadline frontier of
// core-cluster configurations look like?
//
// Run with: go run ./examples/biglittle
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/energyprop"
)

func main() {
	catalog := repro.DefaultCatalog()

	// Core clusters modeled as "node types": one big (A15-like,
	// out-of-order, power hungry) and one LITTLE (A7-like, in-order,
	// frugal). Idle power here is each cluster's share of the SoC's
	// static power.
	big := &repro.NodeType{
		Name: "big", Model: "A15-class core cluster", ISA: "ARMv7-A",
		Cores: 4,
		Freq: repro.DVFS{
			Steps:           []repro.Hertz{0.6e9, 1.2e9, 1.6e9, 2.0e9},
			DynamicExponent: 2.6,
		},
		MemBandwidth: 6.4e9,
		NICBandwidth: 1e9 / 8, // the shared interconnect, ample here
		Power: repro.PowerParams{
			CPUActPerCore: 0.75, CPUStallPerCore: 0.30,
			Mem: 0.25, Net: 0.05, Idle: 0.35,
		},
		NominalPeak: 3.6,
	}
	little := &repro.NodeType{
		Name: "LITTLE", Model: "A7-class core cluster", ISA: "ARMv7-A",
		Cores: 4,
		Freq: repro.DVFS{
			Steps:           []repro.Hertz{0.4e9, 0.8e9, 1.0e9, 1.2e9},
			DynamicExponent: 2.2,
		},
		MemBandwidth: 3.2e9,
		NICBandwidth: 1e9 / 8,
		Power: repro.PowerParams{
			CPUActPerCore: 0.09, CPUStallPerCore: 0.04,
			Mem: 0.15, Net: 0.05, Idle: 0.10,
		},
		NominalPeak: 0.7,
	}
	for _, n := range []*repro.NodeType{big, little} {
		if err := catalog.Register(n); err != nil {
			log.Fatal(err)
		}
	}

	// A mobile workload: UI-triggered media decode, in work units of
	// frames. The big cores are ~3x faster per core; the LITTLE cores
	// far cheaper per frame.
	decode := repro.NewWorkload("media-decode", "frames", 600)
	must(decode.SetDemand("big", repro.Demand{
		CoreCycles: 5.2e6, MemCycles: 2.4e6, Intensity: 0.85,
	}))
	must(decode.SetDemand("LITTLE", repro.Demand{
		CoreCycles: 9.5e6, MemCycles: 4.2e6, Intensity: 0.60,
	}))

	// Single-cluster comparison (Table 6/7 at chip scale).
	fmt.Println("per-cluster comparison for media-decode:")
	fmt.Printf("%-8s %10s %10s %10s %8s %10s\n", "cluster", "T_P", "idle", "busy", "IPR", "PPR")
	for _, nt := range []*repro.NodeType{big, little} {
		cfg, err := repro.NewConfig(repro.FullNodes(nt, 1))
		if err != nil {
			log.Fatal(err)
		}
		a, err := repro.Analyze(cfg, decode)
		if err != nil {
			log.Fatal(err)
		}
		m := a.Metrics()
		fmt.Printf("%-8s %10v %10v %10v %8.3f %10.1f\n",
			nt.Name, a.Result.Time, a.Result.IdlePower, a.Result.BusyPower, m.IPR, a.PPRAt(1))
	}

	// The combined chip: both clusters active (global task scheduling),
	// work split by the same rate-matching as the paper's clusters.
	chip, err := repro.NewConfig(repro.FullNodes(big, 1), repro.FullNodes(little, 1))
	if err != nil {
		log.Fatal(err)
	}
	chipA, err := repro.Analyze(chip, decode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncombined chip (GTS): T=%v, busy %v, idle %v\n",
		chipA.Result.Time, chipA.Result.BusyPower, chipA.Result.IdlePower)

	// Is LITTLE-only sub-linear against the chip's peak? The same
	// wall-scaling question as Figures 9/10, one package down.
	ref := energyprop.Reference{PeakPower: float64(chipA.Result.BusyPower)}
	littleCfg, err := repro.NewConfig(repro.FullNodes(little, 1))
	if err != nil {
		log.Fatal(err)
	}
	littleA, err := repro.Analyze(littleCfg, decode)
	if err != nil {
		log.Fatal(err)
	}
	if u, ok := ref.SublinearCrossover(littleA.CurveRes); ok {
		fmt.Printf("LITTLE-only operation is sub-linear against the chip peak above %.0f%% utilization\n", 100*u)
	} else {
		fmt.Println("LITTLE-only operation never crosses below the chip's ideal line")
	}

	// Energy-deadline frontier across core-cluster configurations
	// (cores powered per cluster, DVFS free): the intra-chip sweet
	// region.
	limits := []repro.Limit{
		{Type: big, MaxNodes: 1},
		{Type: little, MaxNodes: 1},
	}
	frontier, err := repro.ParetoFrontier(limits, decode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nintra-chip energy-deadline frontier (%d operating points):\n", len(frontier))
	for _, p := range frontier {
		fmt.Printf("  %-34s T=%-10v E=%v\n", p.Config, p.Time, p.Energy)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
