package simulator

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/powermeter"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestUplinkContentionSlowsIOBoundWork: halving the shared uplink below
// the aggregate NIC demand stretches an I/O-bound job; compute-bound
// work is untouched.
func TestUplinkContentionSlowsIOBound(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 8))
	mc, err := reg.Lookup(workload.NameMemcached)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	clean := Effects{}
	congested := Effects{
		// 8 A9 NICs at 12.5 MB/s each = 100 MB/s aggregate; a 50 MB/s
		// uplink oversubscribes them 2x.
		UplinkBandwidth: units.BytesPerSecond(50e6),
		NodesPerUplink:  8,
	}
	meter := powermeter.Meter{SampleRate: 1000}

	base, err := Run(cfg, mc, clean, meter, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(cfg, mc, congested, meter, 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(slow.Time) / float64(base.Time)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("memcached under 2x oversubscription: %.2fx slower, want ~2x", ratio)
	}

	// EP barely touches the NIC: the uplink must not matter.
	baseEP, err := Run(cfg, ep, clean, meter, 1)
	if err != nil {
		t.Fatal(err)
	}
	slowEP, err := Run(cfg, ep, congested, meter, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r := float64(slowEP.Time) / float64(baseEP.Time); r > 1.001 {
		t.Errorf("compute-bound EP slowed %.3fx by the uplink", r)
	}
}

// TestUplinkScalesWithGroupSize: a single node cannot oversubscribe the
// uplink on its own.
func TestUplinkScalesWithGroupSize(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	mc, err := reg.Lookup(workload.NameMemcached)
	if err != nil {
		t.Fatal(err)
	}
	eff := Effects{UplinkBandwidth: units.BytesPerSecond(50e6), NodesPerUplink: 8}
	meter := powermeter.Meter{SampleRate: 1000}
	one := cluster.MustConfig(cluster.FullNodes(a9, 1))
	base, err := Run(one, mc, Effects{}, meter, 3)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(one, mc, eff, meter, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r := float64(with.Time) / float64(base.Time); r > 1.001 {
		t.Errorf("single node slowed %.3fx; 12.5 MB/s cannot congest a 50 MB/s uplink", r)
	}
}
