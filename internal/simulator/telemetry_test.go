package simulator

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/powermeter"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestRunTelemetry: a simulated job reports busy/idle transitions,
// completed slices and node finish times, and the values are exact
// deterministic functions of the configuration (virtual time, not wall
// time).
func TestRunTelemetry(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)

	cat, wreg := setup(t)
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 3), cluster.FullNodes(k10, 2)) // 5 nodes
	wl, err := wreg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	eff := DefaultEffects()
	eff.Slices = 10
	res, err := Run(cfg, wl, eff, powermeter.DefaultMeter(), 1)
	if err != nil {
		t.Fatal(err)
	}
	nodes := uint64(len(res.Nodes))
	if nodes != 5 {
		t.Fatalf("nodes = %d, want 5", nodes)
	}
	if got := reg.Counter("simulator.runs").Value(); got != 1 {
		t.Errorf("runs = %d, want 1", got)
	}
	if got := reg.Counter("simulator.node_busy_transitions").Value(); got != nodes {
		t.Errorf("busy transitions = %d, want %d", got, nodes)
	}
	if got := reg.Counter("simulator.node_idle_transitions").Value(); got != nodes {
		t.Errorf("idle transitions = %d, want %d", got, nodes)
	}
	if got := reg.Counter("simulator.slices_completed").Value(); got != nodes*10 {
		t.Errorf("slices_completed = %d, want %d", got, nodes*10)
	}
	if got := reg.Gauge("simulator.busy_nodes").Value(); got != 0 {
		t.Errorf("busy_nodes after run = %g, want 0", got)
	}
	h := reg.Histogram("simulator.node_finish_seconds", nil)
	if got := h.Count(); got != nodes {
		t.Errorf("finish histogram count = %d, want %d", got, nodes)
	}
	if h.Max() > float64(res.Time) || h.Max() <= 0 {
		t.Errorf("finish histogram max %g outside (0, %g]", h.Max(), float64(res.Time))
	}
	// The DES engine underneath reported as well.
	if got := reg.Counter("des.events_fired").Value(); got != res.Events {
		t.Errorf("des.events_fired = %d, want %d", got, res.Events)
	}
	// The span tracer recorded the run phase.
	if reg.Tracer().Len() == 0 {
		t.Error("no spans recorded for simulator.run")
	}
}
