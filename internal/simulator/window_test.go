package simulator

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestWindowIdleWhenNoArrivals(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{
		ArrivalRate: 0, Window: 10, ServiceSamples: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrived != 0 || res.BusyFraction != 0 {
		t.Errorf("idle window saw %d arrivals, busy %g", res.Arrived, res.BusyFraction)
	}
	if stats.RelErr(float64(res.MeanPower), float64(cfg.IdlePower())) > 1e-9 {
		t.Errorf("idle window power %v, want idle %v", res.MeanPower, cfg.IdlePower())
	}
}

// TestWindowPowerMatchesLinearModel is the empirical check of the
// paper's Section II-B utilization model: the measured mean power over
// a long window must land on the linear P(U) = P_idle + U*(P_busy -
// P_idle) within the simulator's noise.
func TestWindowPowerMatchesLinearModel(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []float64{0.25, 0.5, 0.8} {
		// The simulator's jittered services are slightly longer than the
		// model's T_P; aim the arrival rate with the model anyway, as
		// the paper would.
		lambda := units.PerSecond(target / float64(mres.Time))
		window := units.Seconds(12000 * float64(mres.Time))
		res, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{
			ArrivalRate:    lambda,
			Window:         window,
			ServiceSamples: 32,
			Seed:           77,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Measured utilization tracks lambda * E[S_sim]: with ~2% mean
		// slowdown it sits slightly above the target, and the Poisson
		// arrival count over the window fluctuates a couple of percent.
		if res.BusyFraction < target*0.9 || res.BusyFraction > target*1.25 {
			t.Errorf("u target %.2f: measured %.3f", target, res.BusyFraction)
		}
		// The measured power must match the linear model evaluated at
		// the *measured* utilization.
		want := float64(mres.IdlePower) + res.BusyFraction*float64(mres.BusyPower-mres.IdlePower)
		if stats.RelErr(float64(res.MeanPower), want) > 0.05 {
			t.Errorf("u=%.2f: measured power %v, linear model %.1f W", target, res.MeanPower, want)
		}
	}
}

// TestWindowResponsesMatchMD1: at moderate utilization, the window
// simulation's p95 response is near the M/D/1 percentile.
func TestWindowResponsesMatchMD1(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.5
	lambda := units.PerSecond(target / float64(mres.Time))
	res, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{
		ArrivalRate:    lambda,
		Window:         units.Seconds(20000 * float64(mres.Time)),
		ServiceSamples: 32,
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed < 5000 {
		t.Fatalf("only %d completions", res.Completed)
	}
	got, err := res.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic percentile with the model's deterministic service; the
	// simulated services are ~2-3% slower and jittered, so allow 15%.
	a, err := analysisQueueP95(target, float64(mres.Time))
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(got, a) > 0.15 {
		t.Errorf("window p95 %.4g vs M/D/1 %.4g", got, a)
	}
}

// analysisQueueP95 computes the analytic M/D/1 p95 for the comparison.
func analysisQueueP95(rho, d float64) (float64, error) {
	q, err := queueing.NewMD1FromUtilization(rho, d)
	if err != nil {
		return 0, err
	}
	return q.ResponsePercentile(95)
}

func TestWindowValidation(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{Window: 0, ServiceSamples: 1}); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{Window: 1, ServiceSamples: 0}); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{Window: 1, ServiceSamples: 1, ArrivalRate: -1}); err == nil {
		t.Error("negative arrival rate accepted")
	}
}

// TestWindowConservation: completed <= arrived, responses sorted, busy
// fraction in [0,1].
func TestWindowConservation(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWindow(cfg, wl, DefaultEffects(), perfectMeter(), WindowOptions{
		ArrivalRate:    units.PerSecond(0.9 / float64(mres.Time)),
		Window:         units.Seconds(500 * float64(mres.Time)),
		ServiceSamples: 8,
		Seed:           3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed > res.Arrived {
		t.Errorf("completed %d > arrived %d", res.Completed, res.Arrived)
	}
	if res.BusyFraction < 0 || res.BusyFraction > 1+1e-12 {
		t.Errorf("busy fraction %g", res.BusyFraction)
	}
	for i := 1; i < len(res.Responses); i++ {
		if res.Responses[i] < res.Responses[i-1] {
			t.Fatal("responses not sorted")
		}
	}
	if math.IsNaN(float64(res.MeanPower)) {
		t.Error("NaN mean power")
	}
}
