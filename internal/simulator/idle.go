package simulator

import (
	"errors"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/powermeter"
	"repro/internal/stats"
	"repro/internal/units"
)

// RunIdle simulates a single unloaded node of the given type for the
// duration and meters it — the paper's "idle system power is measured
// without any workload" step. The node's device-binning perturbation is
// applied just as in Run, so characterization sees a specific physical
// node, not the type's nominal datasheet.
func RunIdle(node *hardware.NodeType, duration units.Seconds, eff Effects, meter powermeter.Meter, seed uint64) (powermeter.Measurement, error) {
	if err := node.Validate(); err != nil {
		return powermeter.Measurement{}, err
	}
	if duration <= 0 {
		return powermeter.Measurement{}, errors.New("simulator: idle run needs positive duration")
	}
	rng := stats.NewRNG(seed)
	g := cluster.FullNodes(node, 1)
	p := perturbedPower(g, 0, eff)
	tr := &powermeter.Trace{}
	if err := tr.Append(powermeter.Segment{Start: 0, End: float64(duration), Power: p.idle}); err != nil {
		return powermeter.Measurement{}, err
	}
	return meter.Measure(tr, float64(duration), rng.Uint64())
}
