package simulator

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/powermeter"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// WindowOptions configures an observation-window simulation.
type WindowOptions struct {
	// ArrivalRate is the Poisson job arrival rate λ_job.
	ArrivalRate units.PerSecond
	// Window is the observation period T of Section II-B.
	Window units.Seconds
	// ServiceSamples is how many cluster simulations build the empirical
	// job service/energy distribution (each with full jitter).
	ServiceSamples int
	// Seed drives arrivals and service sampling.
	Seed uint64
}

// WindowResult is the outcome of simulating a datacenter observation
// window: jobs arriving at a dispatcher, queueing FIFO, and executing on
// the cluster, with the cluster's power integrated across busy and idle
// periods — the measured counterpart of the paper's E over period T.
type WindowResult struct {
	Config   cluster.Config
	Workload string
	Window   units.Seconds
	// Arrived counts jobs that arrived within the window; Completed
	// counts those that finished within it.
	Arrived, Completed int
	// BusyTime is the total time the cluster spent executing inside the
	// window; BusyFraction = BusyTime / Window is the measured
	// utilization U.
	BusyTime     units.Seconds
	BusyFraction float64
	// Energy is the integrated cluster energy over the window;
	// MeanPower is Energy / Window — the measured P(U).
	Energy    units.Joules
	MeanPower units.Watts
	// Responses are the sojourn times of completed jobs, ascending.
	// Jobs still queued or in service when the window closes are not
	// included, which right-censors the distribution slightly; use a
	// window much longer than the mean response when reading high
	// percentiles.
	Responses []float64
}

// ResponsePercentile returns the p-th percentile of completed-job
// sojourn times.
func (r WindowResult) ResponsePercentile(p float64) (float64, error) {
	return stats.PercentileSorted(r.Responses, p)
}

// RunWindow simulates one observation window end to end. The job
// service-time and busy-power distributions are sampled empirically by
// running the full discrete-event cluster simulation ServiceSamples
// times; the window then replays a Poisson arrival process through a
// FIFO queue, drawing (service, busy power) pairs from those samples,
// and integrates idle power across the gaps.
//
// It is the measured counterpart of the analytic utilization model:
// Section II-B asserts E(U) = U*T*P_busy + (1-U)*T*P_idle, which
// TestWindowPowerMatchesLinearModel checks against this simulation.
func RunWindow(cfg cluster.Config, wl *workload.Profile, eff Effects, meter powermeter.Meter, opt WindowOptions) (WindowResult, error) {
	if opt.Window <= 0 {
		return WindowResult{}, errors.New("simulator: window must be positive")
	}
	if opt.ArrivalRate < 0 {
		return WindowResult{}, errors.New("simulator: negative arrival rate")
	}
	if opt.ServiceSamples < 1 {
		return WindowResult{}, errors.New("simulator: need at least one service sample")
	}

	// Empirical (service, busyPower) samples from the full simulator.
	type svc struct {
		time  float64
		power float64
	}
	samples := make([]svc, opt.ServiceSamples)
	for i := range samples {
		res, err := Run(cfg, wl, eff, meter, opt.Seed+uint64(i)*7919)
		if err != nil {
			return WindowResult{}, fmt.Errorf("simulator: service sampling: %w", err)
		}
		if res.Time <= 0 {
			return WindowResult{}, errors.New("simulator: degenerate service sample")
		}
		samples[i] = svc{time: float64(res.Time), power: float64(res.TrueEnergy) / float64(res.Time)}
	}

	idlePower := float64(cfg.IdlePower())
	window := float64(opt.Window)
	rng := stats.NewRNG(opt.Seed ^ 0x5ca1ab1e)

	out := WindowResult{Config: cfg, Workload: wl.Name, Window: opt.Window}
	var busy, energy stats.KahanSum

	// FIFO single-server queue over the whole cluster (the paper's
	// M/D/1 dispatcher view), replayed in event order.
	now := 0.0    // arrival clock
	freeAt := 0.0 // when the cluster frees up
	for {
		if opt.ArrivalRate <= 0 {
			break
		}
		now += rng.ExpFloat64(float64(opt.ArrivalRate))
		if now >= window {
			break
		}
		out.Arrived++
		s := samples[rng.Intn(len(samples))]
		start := now
		if freeAt > start {
			start = freeAt
		}
		end := start + s.time
		freeAt = end
		// Account the busy period's overlap with the window.
		overlapStart := start
		overlapEnd := end
		if overlapEnd > window {
			overlapEnd = window
		}
		if overlapStart < window && overlapEnd > overlapStart {
			busy.Add(overlapEnd - overlapStart)
			energy.Add((overlapEnd - overlapStart) * s.power)
		}
		if end <= window {
			out.Completed++
			out.Responses = append(out.Responses, end-now)
		}
	}
	out.BusyTime = units.Seconds(busy.Sum())
	out.BusyFraction = busy.Sum() / window
	// Idle power for the remainder of the window.
	idleTime := window - busy.Sum()
	if idleTime < 0 {
		idleTime = 0
	}
	energy.Add(idleTime * idlePower)
	out.Energy = units.Joules(energy.Sum())
	out.MeanPower = out.Energy.Over(opt.Window)
	sort.Float64s(out.Responses)
	return out, nil
}
