package simulator

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/powermeter"
	"repro/internal/stats"
	"repro/internal/workload"
)

// modelEvaluate and perfectMeterQuick keep the property body compact.
func modelEvaluate(cfg cluster.Config, wl *workload.Profile) (model.Result, error) {
	return model.Evaluate(cfg, wl, model.Options{})
}

func perfectMeterQuick() powermeter.Meter {
	return powermeter.Meter{SampleRate: 1000}
}

// TestSimulatorEqualsModelForAnyWorkload is the strongest consistency
// property in the repository: for ANY synthetic workload profile, the
// discrete-event simulator with all effects disabled reproduces the
// analytical model exactly (to float tolerance), on a heterogeneous
// configuration. The model is the simulator's zero-noise limit by
// construction, and this pins it for the whole demand space, not just
// the six calibrated paper workloads.
func TestSimulatorEqualsModelForAnyWorkload(t *testing.T) {
	cat := hardware.DefaultCatalog()
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 3), cluster.FullNodes(k10, 2))

	f := func(seed uint64, nA, nK uint8) bool {
		profiles, err := workload.Generate(cat, workload.DefaultSyntheticSpec(), 1, seed)
		if err != nil || len(profiles) != 1 {
			return false
		}
		wl := profiles[0]
		mres, err := modelEvaluate(cfg, wl)
		if err != nil {
			return false
		}
		sres, err := Run(cfg, wl, Effects{}, perfectMeterQuick(), seed)
		if err != nil {
			return false
		}
		return stats.RelErr(float64(sres.Time), float64(mres.Time)) < 1e-9 &&
			stats.RelErr(float64(sres.TrueEnergy), float64(mres.Energy)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
