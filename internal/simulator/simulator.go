// Package simulator is the measured side of the paper's validation
// (Table 4): a discrete-event cluster simulator that executes workload
// profiles on node models with second-order effects the analytical model
// deliberately ignores — memory contention between cores, data-dependent
// control flow, OS background noise, DVFS transition cost and network
// protocol overhead. Per-node power traces feed a simulated wall meter
// (internal/powermeter) and per-node event counters mirror perf(1)
// (internal/perfcounter), so the characterization pipeline can be run
// against the simulator exactly the way the paper ran it against
// hardware.
package simulator

import (
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/des"
	"repro/internal/model"
	"repro/internal/perfcounter"
	"repro/internal/powermeter"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// Effects controls the second-order behaviours injected on top of the
// modeled service demands. The zero value disables everything, making
// the simulator agree with the analytical model to float precision —
// itself a useful test oracle.
type Effects struct {
	// MemContentionPerCore inflates memory time by this fraction per
	// additional active core sharing the memory controller (the UMA
	// controller of Section II-D saturates under multi-core load).
	MemContentionPerCore float64
	// OSNoiseMean is the mean fractional slowdown from background OS
	// activity; OSNoiseStdDev is its per-slice jitter.
	OSNoiseMean, OSNoiseStdDev float64
	// DVFSTransition is the time lost per node when switching the core
	// frequency at job start.
	DVFSTransition units.Seconds
	// NetOverhead is the protocol framing overhead on NIC transfer time
	// (TCP/IP headers, interrupts).
	NetOverhead float64
	// PowerVariation is the per-node systematic deviation of power
	// parameters from the type's nominal values (device binning).
	PowerVariation float64
	// DeviceSeed identifies the *fleet*: the binning perturbation of a
	// given physical node (type, index) is a deterministic function of
	// this seed, so the same node measures the same across runs — the
	// paper characterizes one node per type and reuses it.
	DeviceSeed uint64
	// StragglerProb is the per-node probability of being a straggler
	// (thermal throttling, failing disk, noisy neighbour). A straggler's
	// compute and memory run StragglerSlowdown times slower, which the
	// static rate-matched mapping cannot absorb — the whole job waits.
	StragglerProb float64
	// StragglerSlowdown is the straggler's slowdown factor (>= 1).
	StragglerSlowdown float64
	// UplinkBandwidth models the shared switch uplink: when the nodes
	// of one group sharing a switch (NodesPerUplink of them) together
	// demand more than this, every node's transfer stretches by the
	// oversubscription factor. Zero disables the effect (the paper's
	// model assumes uncontended I/O).
	UplinkBandwidth units.BytesPerSecond
	// NodesPerUplink is how many nodes of a group share one uplink
	// (defaults to 8, matching the budget switch model).
	NodesPerUplink int
	// Slices is the number of execution phases each node's share is cut
	// into; more slices give finer power traces and noise mixing.
	Slices int
}

// DefaultEffects returns the calibration used for the Table 4
// reproduction.
func DefaultEffects() Effects {
	return Effects{
		MemContentionPerCore: 0.020,
		OSNoiseMean:          0.012,
		OSNoiseStdDev:        0.008,
		DVFSTransition:       150 * units.Microsecond,
		NetOverhead:          0.05,
		PowerVariation:       0.02,
		DeviceSeed:           42,
		Slices:               50,
	}
}

// NodeRun is the simulated outcome for one node.
type NodeRun struct {
	// TypeName identifies the node type.
	TypeName string
	// Index is the node's position within the configuration.
	Index int
	// Finish is when the node completed its share (seconds).
	Finish float64
	// Energy is the node's true (un-metered) energy.
	Energy units.Joules
	// Counters are the node's simulated perf counters.
	Counters perfcounter.Counters
	// Trace is the node's power trace.
	Trace *powermeter.Trace
}

// Result is the outcome of simulating one job on a configuration.
type Result struct {
	Config   cluster.Config
	Workload string
	// Time is the job makespan (all nodes finished).
	Time units.Seconds
	// TrueEnergy integrates the per-node power traces exactly.
	TrueEnergy units.Joules
	// Measured is the wall-meter reading over the makespan.
	Measured powermeter.Measurement
	// Nodes holds per-node details.
	Nodes []NodeRun
	// Events is the number of discrete events executed.
	Events uint64
}

// Counters aggregates the perf counters of every node of the named type.
func (r Result) Counters(typeName string) perfcounter.Counters {
	var c perfcounter.Counters
	for _, n := range r.Nodes {
		if n.TypeName == typeName {
			c.Add(n.Counters)
		}
	}
	return c
}

// Run simulates one job of wl on cfg. The work assignment is the same
// static rate-matched mapping the model computes (the paper determines
// the mapping from the model and executes it); the execution then
// deviates from the model through the configured effects. The meter
// measures the aggregate of all node traces.
func Run(cfg cluster.Config, wl *workload.Profile, eff Effects, meter powermeter.Meter, seed uint64) (Result, error) {
	// The model supplies the per-group unit assignment.
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		return Result{}, err
	}
	slices := eff.Slices
	if slices <= 0 {
		slices = 1
	}

	eng := des.New()
	master := stats.NewRNG(seed)
	res := Result{Config: cfg, Workload: wl.Name}

	// Telemetry: per-node busy/idle transitions, completed slices and
	// virtual finish times. All instruments are nil no-ops unless a
	// registry is installed; the observed values are virtual-time
	// quantities, so an instrumented run stays deterministic.
	reg := telemetry.Global()
	span := reg.Tracer().Start("simulator.run").
		Arg("config", cfg.String()).Arg("workload", wl.Name)
	defer span.End()
	reg.Counter("simulator.runs").Inc()
	slicesDone := reg.Counter("simulator.slices_completed")
	busyTrans := reg.Counter("simulator.node_busy_transitions")
	idleTrans := reg.Counter("simulator.node_idle_transitions")
	stragglerCnt := reg.Counter("simulator.stragglers")
	busyNodes := reg.Gauge("simulator.busy_nodes")
	finishHist := reg.Histogram("simulator.node_finish_seconds",
		telemetry.ExponentialBuckets(1e-3, 10, 8))

	type nodeState struct {
		run       *NodeRun
		group     cluster.Group
		demand    workload.Demand
		rng       *stats.RNG
		power     hardwarePower
		perUnit   float64 // units per slice
		slice     int
		clock     float64
		straggler float64 // extra slowdown factor (1 = healthy)
	}

	var states []*nodeState
	for _, g := range mres.Groups {
		d, err := wl.Demand(g.Group.Type.Name)
		if err != nil {
			return Result{}, err
		}
		for i := 0; i < g.Group.Count; i++ {
			nr := &NodeRun{
				TypeName: g.Group.Type.Name,
				Index:    len(states),
				Trace:    &powermeter.Trace{},
			}
			rng := master.Split()
			st := &nodeState{
				run:       nr,
				group:     g.Group,
				demand:    d,
				rng:       rng,
				power:     perturbedPower(g.Group, i, eff),
				perUnit:   g.UnitsPerNode / float64(slices),
				straggler: 1,
			}
			if eff.StragglerProb > 0 && rng.Float64() < eff.StragglerProb {
				slow := eff.StragglerSlowdown
				if slow < 1 {
					slow = 1
				}
				st.straggler = slow
				stragglerCnt.Inc()
			}
			states = append(states, st)
			res.Nodes = append(res.Nodes, *nr)
		}
	}
	if len(states) == 0 {
		return Result{}, errors.New("simulator: configuration has no nodes")
	}

	// Per-node slice process: compute the slice's component times with
	// effects, emit a power segment and counters, then schedule the next
	// slice.
	var runSlice func(st *nodeState)
	runSlice = func(st *nodeState) {
		if st.slice >= slices || st.perUnit <= 0 {
			return
		}
		if st.slice == 0 { // idle -> busy: the node starts its share
			busyTrans.Inc()
			busyNodes.Add(1)
		}
		st.slice++
		seg, cnt, dur := simulateSlice(st.group, st.demand, wl, st.perUnit, eff, st.rng, st.straggler)
		start := st.clock
		st.clock += dur
		if err := st.run.Trace.Append(powermeter.Segment{Start: start, End: st.clock, Power: seg(st.power)}); err != nil {
			// Segments are appended in node-local time order; failure is
			// a programming error.
			panic(err)
		}
		st.run.Counters.Add(cnt)
		slicesDone.Inc()
		if st.slice >= slices {
			st.run.Finish = st.clock
			// busy -> idle: the node completed its share and idles
			// until the slowest node finishes the job.
			idleTrans.Inc()
			busyNodes.Add(-1)
			finishHist.Observe(st.clock)
			return
		}
		if _, err := eng.ScheduleAt(st.clock, func() { runSlice(st) }); err != nil {
			panic(err)
		}
	}

	for _, st := range states {
		st := st
		// DVFS transition at job start: the node idles while the
		// governor settles.
		start := 0.0
		if eff.DVFSTransition > 0 && st.group.Freq != st.group.Type.FMax() {
			start = float64(eff.DVFSTransition)
			if err := st.run.Trace.Append(powermeter.Segment{Start: 0, End: start, Power: st.power.idle}); err != nil {
				return Result{}, err
			}
		}
		st.clock = start
		if _, err := eng.ScheduleAt(start, func() { runSlice(st) }); err != nil {
			return Result{}, err
		}
	}

	eng.Run(1e18)
	res.Events = eng.Steps()

	// Collect results; the nodes slice captured values before the run,
	// refresh from states.
	makespan := 0.0
	var trueEnergy stats.KahanSum
	sources := make(powermeter.Aggregate, 0, len(states))
	for i, st := range states {
		st.run.Finish = st.clock
		res.Nodes[i] = *st.run
		if st.clock > makespan {
			makespan = st.clock
		}
	}
	// Nodes that finish early idle until the slowest node completes,
	// burning idle power (the cluster-level makespan accounting of the
	// model's E_idle term).
	for i, st := range states {
		if st.clock < makespan {
			if err := st.run.Trace.Append(powermeter.Segment{
				Start: st.clock, End: makespan, Power: st.power.idle,
			}); err != nil {
				return Result{}, err
			}
		}
		e := st.run.Trace.TrueEnergy()
		res.Nodes[i].Energy = e
		trueEnergy.Add(float64(e))
		sources = append(sources, st.run.Trace)
	}
	res.Time = units.Seconds(makespan)
	res.TrueEnergy = units.Joules(trueEnergy.Sum())

	if makespan > 0 {
		meas, err := meter.Measure(sources, makespan, master.Uint64())
		if err != nil {
			return Result{}, err
		}
		res.Measured = meas
	}
	return res, nil
}

// hardwarePower holds one node's (possibly perturbed) power parameters.
type hardwarePower struct {
	actPerCore, stallPerCore, mem, net, idle units.Watts
}

// perturbedPower applies per-device binning variation to the type's
// nominal power parameters at the group's frequency. The perturbation is
// a deterministic function of (DeviceSeed, node type, node index): the
// same physical node always measures the same, across runs and seeds.
func perturbedPower(g cluster.Group, nodeIndex int, eff Effects) hardwarePower {
	p := g.Type.PowerAt(g.Freq)
	rng := stats.NewRNG(deviceIdentity(eff.DeviceSeed, g.Type.Name, nodeIndex))
	perturb := func(w units.Watts) units.Watts {
		if eff.PowerVariation <= 0 {
			return w
		}
		f := 1 + rng.NormFloat64(eff.PowerVariation)
		if f < 0.5 {
			f = 0.5
		}
		return units.Watts(float64(w) * f)
	}
	return hardwarePower{
		actPerCore:   perturb(p.CPUActPerCore),
		stallPerCore: perturb(p.CPUStallPerCore),
		mem:          perturb(p.Mem),
		net:          perturb(p.Net),
		idle:         perturb(p.Idle),
	}
}

// deviceIdentity hashes the fleet seed, node type name and node index
// into a stable per-device RNG seed (FNV-1a over the identity tuple).
func deviceIdentity(seed uint64, typeName string, index int) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime
	}
	for i := 0; i < 8; i++ {
		mix(byte(seed >> (8 * i)))
	}
	for i := 0; i < len(typeName); i++ {
		mix(typeName[i])
	}
	for i := 0; i < 8; i++ {
		mix(byte(uint64(index) >> (8 * i)))
	}
	return h
}

// simulateSlice computes one slice's duration, average-power function
// and counters under the configured effects. straggler >= 1 applies an
// additional slowdown to the CPU-side times (a throttled or contended
// node stays busy — interference work occupies the stretch — so the
// power attribution keeps the same activity fractions).
func simulateSlice(g cluster.Group, d workload.Demand, wl *workload.Profile, unitsInSlice float64, eff Effects, rng *stats.RNG, straggler float64) (func(hardwarePower) units.Watts, perfcounter.Counters, float64) {
	c := float64(g.Cores)
	f := float64(g.Freq)

	// Component times for the slice, per the model...
	tCore := unitsInSlice * float64(d.CoreCycles) / (c * f)
	tMem := unitsInSlice * float64(d.MemCycles) / f
	// ...then the effects the model ignores.
	if eff.MemContentionPerCore > 0 && g.Cores > 1 {
		tMem *= 1 + eff.MemContentionPerCore*float64(g.Cores-1)
	}
	slowdown := 1.0
	if eff.OSNoiseMean > 0 || eff.OSNoiseStdDev > 0 {
		slowdown += eff.OSNoiseMean + rng.NormFloat64(eff.OSNoiseStdDev)
	}
	if wl.Irregularity > 0 {
		slowdown += wl.Irregularity + rng.NormFloat64(wl.Irregularity/2)
	}
	if slowdown < 1 {
		slowdown = 1
	}
	if straggler > 1 {
		slowdown *= straggler
	}
	tCore *= slowdown
	tMem *= slowdown

	ioBytes := unitsInSlice * float64(d.IOBytes) * (1 + eff.NetOverhead)
	tIO := ioBytes / float64(g.Type.NICBandwidth)
	// Shared-uplink contention: nodes of the group transfer
	// concurrently (they run the same slice schedule), so the switch
	// uplink sees min(groupSize, NodesPerUplink) NICs at once. When
	// their aggregate demand oversubscribes the uplink, every transfer
	// stretches by the oversubscription factor.
	if eff.UplinkBandwidth > 0 && tIO > 0 {
		sharing := g.Count
		per := eff.NodesPerUplink
		if per <= 0 {
			per = 8
		}
		if sharing > per {
			sharing = per
		}
		demand := float64(sharing) * float64(g.Type.NICBandwidth)
		if over := demand / float64(eff.UplinkBandwidth); over > 1 {
			tIO *= over
		}
	}
	if d.IOReqs > 0 && wl.IORate > 0 {
		wait := unitsInSlice * d.IOReqs / float64(wl.IORate)
		if wait > tIO {
			tIO = wait
		}
	}

	tCPU := tCore
	if tMem > tCPU {
		tCPU = tMem
	}
	dur := tCPU
	if tIO > dur {
		dur = tIO
	}
	if dur <= 0 {
		dur = 1e-12
	}
	tStall := tMem - tCore
	if tStall < 0 {
		tStall = 0
	}

	cnt := perfcounter.Counters{
		WorkCycles:   tCore * c * f,
		StallCycles:  tStall * c * f,
		MemCycles:    tMem * f,
		CacheMisses:  unitsInSlice * float64(d.MemCycles) / 4, // ~4 cycles per miss burst
		IOBytes:      ioBytes,
		IORequests:   unitsInSlice * d.IOReqs,
		Instructions: tCore * c * f * 0.9, // sub-1 IPC out-of-order mix
	}

	intensity := d.Intensity
	avgPower := func(p hardwarePower) units.Watts {
		w := float64(p.idle)
		w += intensity * float64(p.actPerCore) * c * (tCore / dur)
		w += float64(p.stallPerCore) * c * (tStall / dur)
		w += float64(p.mem) * (tMem / dur)
		w += float64(p.net) * (tIO / dur)
		return units.Watts(w)
	}
	return avgPower, cnt, dur
}

// ValidationRow is one line of the Table 4 reproduction: the relative
// error between the analytical model and the simulated measurement.
type ValidationRow struct {
	Workload     string
	TimeErrPct   float64
	EnergyErrPct float64
	ModelTime    units.Seconds
	SimTime      units.Seconds
	ModelEnergy  units.Joules
	SimEnergy    units.Joules
}

// Validate runs model and simulator for one workload on cfg and returns
// the percentage errors, using the measured (metered) energy as the
// ground truth exactly as the paper's validation does.
func Validate(cfg cluster.Config, wl *workload.Profile, eff Effects, meter powermeter.Meter, seed uint64) (ValidationRow, error) {
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		return ValidationRow{}, err
	}
	sres, err := Run(cfg, wl, eff, meter, seed)
	if err != nil {
		return ValidationRow{}, err
	}
	if sres.Time <= 0 || sres.Measured.Energy <= 0 {
		return ValidationRow{}, fmt.Errorf("simulator: degenerate run for %s", wl.Name)
	}
	return ValidationRow{
		Workload:     wl.Name,
		TimeErrPct:   100 * stats.RelErr(float64(mres.Time), float64(sres.Time)),
		EnergyErrPct: 100 * stats.RelErr(float64(mres.Energy), float64(sres.Measured.Energy)),
		ModelTime:    mres.Time,
		SimTime:      sres.Time,
		ModelEnergy:  mres.Energy,
		SimEnergy:    sres.Measured.Energy,
	}, nil
}
