package simulator

import (
	"testing"

	"repro/internal/powermeter"
	"repro/internal/workload"
)

// TestStragglerInflatesMakespan: with a guaranteed straggler, the static
// rate-matched mapping cannot rebalance and the whole job waits for the
// slow node — the makespan approaches the straggler's slowdown factor.
func TestStragglerInflatesMakespan(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	clean := DefaultEffects()
	clean.StragglerProb = 0
	base, err := Run(cfg, wl, clean, perfectMeter(), 31)
	if err != nil {
		t.Fatal(err)
	}
	slow := clean
	slow.StragglerProb = 1 // every node throttled: uniform 2x slowdown
	slow.StragglerSlowdown = 2
	throttled, err := Run(cfg, wl, slow, perfectMeter(), 31)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(throttled.Time) / float64(base.Time)
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("uniform 2x throttle inflated makespan %.2fx, want ~2x", ratio)
	}

	// A single straggler among many nodes still gates the whole job:
	// expected inflation approaches the straggler's factor as soon as
	// one node draws the short straw.
	one := clean
	one.StragglerProb = 0.25
	one.StragglerSlowdown = 3
	worst := 0.0
	for seed := uint64(1); seed <= 8; seed++ {
		res, err := Run(cfg, wl, one, perfectMeter(), seed)
		if err != nil {
			t.Fatal(err)
		}
		r := float64(res.Time) / float64(base.Time)
		if r > worst {
			worst = r
		}
		if r > 3.2 {
			t.Errorf("seed %d: inflation %.2fx exceeds the straggler factor", seed, r)
		}
	}
	// With 12 nodes at 25% probability, at least one of 8 seeds sees a
	// straggler (probability of none ~ (0.75^12)^8 ~ 1e-10).
	if worst < 2.5 {
		t.Errorf("no straggler impact across seeds (worst inflation %.2fx)", worst)
	}
}

// TestStragglerRaisesValidationError: stragglers break the model's
// rate-matching assumption, so the Table-4-style error grows — the
// mechanism behind the paper's observation that dynamic adaptation
// complements the static mapping.
func TestStragglerRaisesValidationError(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Validate(cfg, wl, DefaultEffects(), powermeter.DefaultMeter(), 7)
	if err != nil {
		t.Fatal(err)
	}
	eff := DefaultEffects()
	eff.StragglerProb = 1
	eff.StragglerSlowdown = 2
	broken, err := Validate(cfg, wl, eff, powermeter.DefaultMeter(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if broken.TimeErrPct <= base.TimeErrPct {
		t.Errorf("straggler validation error %.1f%% not above baseline %.1f%%",
			broken.TimeErrPct, base.TimeErrPct)
	}
}

// TestStragglerDefaultOff: the default effects must not inject
// stragglers (Table 4 assumes a healthy fleet, like the paper's lab).
func TestStragglerDefaultOff(t *testing.T) {
	if eff := DefaultEffects(); eff.StragglerProb != 0 {
		t.Errorf("default straggler probability %g, want 0", eff.StragglerProb)
	}
}
