package simulator

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/powermeter"
	"repro/internal/stats"
	"repro/internal/workload"
)

func setup(t *testing.T) (*hardware.Catalog, *workload.Registry) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	return cat, reg
}

func validationConfig(t *testing.T, cat *hardware.Catalog) cluster.Config {
	t.Helper()
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	return cluster.MustConfig(cluster.FullNodes(a9, 8), cluster.FullNodes(k10, 4))
}

// perfectMeter reads the trace without instrument error.
func perfectMeter() powermeter.Meter {
	return powermeter.Meter{SampleRate: 1000}
}

// TestSimulatorMatchesModelWithoutEffects: with all effects disabled the
// simulator must agree with the analytical model almost exactly — the
// model is the simulator's zero-noise limit.
func TestSimulatorMatchesModelWithoutEffects(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	for _, name := range workload.PaperNames() {
		wl, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// Zero out the irregularity for the exactness check.
		clean := *wl
		clean.Irregularity = 0
		mres, err := model.Evaluate(cfg, &clean, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sres, err := Run(cfg, &clean, Effects{}, perfectMeter(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(float64(sres.Time), float64(mres.Time)) > 1e-9 {
			t.Errorf("%s: sim time %v vs model %v", name, sres.Time, mres.Time)
		}
		if stats.RelErr(float64(sres.TrueEnergy), float64(mres.Energy)) > 1e-9 {
			t.Errorf("%s: sim energy %v vs model %v", name, sres.TrueEnergy, mres.Energy)
		}
	}
}

// TestTable4ValidationErrors reproduces the paper's validation: with the
// default effects, model-versus-measured errors stay in the single to
// low-double-digit percent band for every workload (the paper reports
// 2-13% time, 1-10% energy).
func TestTable4ValidationErrors(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	for _, name := range workload.PaperNames() {
		wl, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := Validate(cfg, wl, DefaultEffects(), powermeter.DefaultMeter(), 2024)
		if err != nil {
			t.Fatal(err)
		}
		if row.TimeErrPct > 20 {
			t.Errorf("%s: time error %.1f%% exceeds the validation band", name, row.TimeErrPct)
		}
		if row.EnergyErrPct > 20 {
			t.Errorf("%s: energy error %.1f%% exceeds the validation band", name, row.EnergyErrPct)
		}
		// The effects slow execution down, so the model must
		// underestimate time (its error is one-sided).
		if row.SimTime < row.ModelTime {
			t.Errorf("%s: simulated time %v below model %v; effects should only slow execution",
				name, row.SimTime, row.ModelTime)
		}
	}
}

// TestSimulatorDeterminism: identical seeds reproduce identical runs.
func TestSimulatorDeterminism(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(cfg, wl, DefaultEffects(), powermeter.DefaultMeter(), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, wl, DefaultEffects(), powermeter.DefaultMeter(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.TrueEnergy != b.TrueEnergy || a.Measured.Energy != b.Measured.Energy {
		t.Errorf("same seed, different results: %v/%v vs %v/%v",
			a.Time, a.TrueEnergy, b.Time, b.TrueEnergy)
	}
	c, err := Run(cfg, wl, DefaultEffects(), powermeter.DefaultMeter(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time == c.Time && a.TrueEnergy == c.TrueEnergy {
		t.Error("different seeds produced identical noisy runs")
	}
}

// TestMeterTracksTrueEnergy: the instrument error must stay small
// relative to the true trace energy.
func TestMeterTracksTrueEnergy(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl, DefaultEffects(), powermeter.DefaultMeter(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(float64(res.Measured.Energy), float64(res.TrueEnergy)) > 0.05 {
		t.Errorf("metered %v vs true %v differ over 5%%", res.Measured.Energy, res.TrueEnergy)
	}
}

// TestCountersConsistent: simulated perf counters must reflect the
// assigned demands (work cycles scale with units executed).
func TestCountersConsistent(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameBlackscholes)
	if err != nil {
		t.Fatal(err)
	}
	mres, err := model.Evaluate(cfg, wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := Run(cfg, wl, DefaultEffects(), perfectMeter(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range mres.Groups {
		d, err := wl.Demand(g.Group.Type.Name)
		if err != nil {
			t.Fatal(err)
		}
		wantWork := g.Units * float64(d.CoreCycles)
		got := sres.Counters(g.Group.Type.Name).WorkCycles
		// Noise slows wall time but does not add work cycles beyond the
		// slowdown factor baked into the slice accounting; allow 20%.
		if stats.RelErr(got, wantWork) > 0.2 {
			t.Errorf("%s: work cycles %.3g, want ~%.3g", g.Group.Type.Name, got, wantWork)
		}
	}
}

// TestNodesFinishTogetherWithinNoise: the static rate-matched mapping
// should keep node finish times within the noise envelope.
func TestNodesFinishTogetherWithinNoise(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl, DefaultEffects(), perfectMeter(), 13)
	if err != nil {
		t.Fatal(err)
	}
	minF, maxF := math.Inf(1), 0.0
	for _, n := range res.Nodes {
		if n.Finish < minF {
			minF = n.Finish
		}
		if n.Finish > maxF {
			maxF = n.Finish
		}
	}
	if (maxF-minF)/maxF > 0.15 {
		t.Errorf("node finish skew %.1f%% exceeds noise envelope", 100*(maxF-minF)/maxF)
	}
}

// TestZeroEffectsIdleTailAccounting: a deliberately imbalanced manual
// scenario — one slow group — still conserves energy (idle tail of fast
// nodes is in the trace).
func TestIdleTailEnergyAccounted(t *testing.T) {
	cat, reg := setup(t)
	cfg := validationConfig(t, cat)
	wl, err := reg.Lookup(workload.NameJulius)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, wl, DefaultEffects(), perfectMeter(), 17)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if d := n.Trace.Duration(); stats.RelErr(d, float64(res.Time)) > 1e-9 {
			t.Errorf("node %d trace ends at %g, makespan %v", n.Index, d, res.Time)
		}
	}
}
