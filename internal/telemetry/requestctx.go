package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// RequestContext is the request-scoped half of the observability layer:
// where the Registry aggregates process-wide, a RequestContext follows
// ONE request — an epserve /v1/frontier call, a /v1/replay stream —
// through admission, singleflight, the sweep worker pool and the
// queueing kernel, accumulating named attribute counts (configurations
// evaluated, percentile-cache hits, replay steps) and a bounded phase
// timeline. The serve middleware mints one per request, stamps its ID
// on the X-Request-ID response header and the access-log line, and
// attaches the same ID as a Prometheus exemplar on the route's latency
// histogram, so a log line, a metric sample and a timeline all join on
// one identifier.
//
// Like the rest of the package, absence is free: code below the
// middleware asks the context.Context via RequestFrom, which returns
// nil when no request scope is attached, and every method is a no-op on
// a nil receiver — hot paths (Table.EvaluateFast, the percentile cache)
// stay allocation-free when nobody is watching. All methods are safe
// for concurrent use: a frontier sweep's workers attribute into the
// same RequestContext from many goroutines.
type RequestContext struct {
	id    string
	route string
	start time.Time

	mu      sync.Mutex
	outcome string
	attrs   map[string]int64
	events  []TimelineEvent
	dropped int
}

// maxTimelineEvents bounds one request's phase timeline; phases past
// the cap are counted as dropped rather than recorded, mirroring the
// Tracer's event cap.
const maxTimelineEvents = 64

// TimelineEvent is one completed phase of a request: its name, its
// start offset from the request's own start, and its duration.
type TimelineEvent struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start"`
	Dur   time.Duration `json:"dur"`
}

// NewRequestContext mints a request scope for the given route with a
// fresh random ID (see NewRequestID). Pass a non-empty id to adopt one
// from an upstream proxy's X-Request-ID header instead.
func NewRequestContext(id, route string) *RequestContext {
	if id == "" {
		id = NewRequestID()
	}
	return &RequestContext{id: id, route: route, start: time.Now()}
}

// NewRequestID returns a fresh 16-hex-character random request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; degrade to a
		// recognizable constant rather than panicking in middleware.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// ID returns the request ID ("" on a nil receiver).
func (rc *RequestContext) ID() string {
	if rc == nil {
		return ""
	}
	return rc.id
}

// Route returns the route label the request was minted under.
func (rc *RequestContext) Route() string {
	if rc == nil {
		return ""
	}
	return rc.route
}

// Start returns the request's start time (zero on a nil receiver).
func (rc *RequestContext) Start() time.Time {
	if rc == nil {
		return time.Time{}
	}
	return rc.start
}

// Elapsed returns the time since the request started.
func (rc *RequestContext) Elapsed() time.Duration {
	if rc == nil {
		return 0
	}
	return time.Since(rc.start)
}

// Add accumulates n into the named attribute. A no-op on nil, so
// instrumented layers attribute unconditionally.
func (rc *RequestContext) Add(key string, n int64) {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	if rc.attrs == nil {
		rc.attrs = make(map[string]int64, 8)
	}
	rc.attrs[key] += n
	rc.mu.Unlock()
}

// Attr returns the named attribute's accumulated count (0 when unset
// or on a nil receiver).
func (rc *RequestContext) Attr(key string) int64 {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.attrs[key]
}

// Attrs returns a copy of the attribute bag (nil when empty).
func (rc *RequestContext) Attrs() map[string]int64 {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if len(rc.attrs) == 0 {
		return nil
	}
	out := make(map[string]int64, len(rc.attrs))
	for k, v := range rc.attrs {
		out[k] = v
	}
	return out
}

// SetOutcome records the request's terminal disposition ("shed",
// "deadline", "panic", ...). The first non-empty outcome wins: the
// layer closest to the cause (admission, recovery) reports first and
// outer layers must not overwrite it.
func (rc *RequestContext) SetOutcome(s string) {
	if rc == nil || s == "" {
		return
	}
	rc.mu.Lock()
	if rc.outcome == "" {
		rc.outcome = s
	}
	rc.mu.Unlock()
}

// Outcome returns the recorded disposition ("" when none was set).
func (rc *RequestContext) Outcome() string {
	if rc == nil {
		return ""
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.outcome
}

// Phase opens a named phase on the request's timeline and returns its
// closer; defer it around the work:
//
//	defer rc.Phase("frontier.sweep")()
//
// Phases past the timeline cap are dropped (and counted); the closer
// of a nil receiver is a shared no-op, costing nothing on unscoped
// paths.
func (rc *RequestContext) Phase(name string) func() {
	if rc == nil {
		return noopPhase
	}
	began := time.Now()
	return func() {
		end := time.Now()
		rc.mu.Lock()
		if len(rc.events) >= maxTimelineEvents {
			rc.dropped++
		} else {
			rc.events = append(rc.events, TimelineEvent{
				Name:  name,
				Start: began.Sub(rc.start),
				Dur:   end.Sub(began),
			})
		}
		rc.mu.Unlock()
	}
}

var noopPhase = func() {}

// Timeline returns a copy of the recorded phases in completion order.
func (rc *RequestContext) Timeline() []TimelineEvent {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]TimelineEvent, len(rc.events))
	copy(out, rc.events)
	return out
}

// DroppedPhases returns how many phases were discarded at the cap.
func (rc *RequestContext) DroppedPhases() int {
	if rc == nil {
		return 0
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.dropped
}

// TimelineString renders the timeline in one compact field for
// slow-request log lines: "name@start+dur;..." with millisecond
// precision, sorted by phase start.
func (rc *RequestContext) TimelineString() string {
	events := rc.Timeline()
	if len(events) == 0 {
		return ""
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Start < events[j].Start })
	var b strings.Builder
	for i, ev := range events {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s@%s+%s", ev.Name,
			ev.Start.Round(10*time.Microsecond), ev.Dur.Round(10*time.Microsecond))
	}
	if d := rc.DroppedPhases(); d > 0 {
		fmt.Fprintf(&b, ";(+%d dropped)", d)
	}
	return b.String()
}

// requestKey is the context key RequestContext travels under.
type requestKey struct{}

// WithRequest attaches rc to ctx. Attaching nil returns ctx unchanged.
func WithRequest(ctx context.Context, rc *RequestContext) context.Context {
	if rc == nil {
		return ctx
	}
	return context.WithValue(ctx, requestKey{}, rc)
}

// RequestFrom returns the RequestContext attached to ctx, or nil when
// the work is not request-scoped. The nil lookup allocates nothing, so
// hot paths may call it unconditionally.
func RequestFrom(ctx context.Context) *RequestContext {
	if ctx == nil {
		return nil
	}
	rc, _ := ctx.Value(requestKey{}).(*RequestContext)
	return rc
}
