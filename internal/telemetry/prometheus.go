package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName maps a registry instrument name onto the Prometheus metric
// name charset [a-zA-Z0-9_:]: dots (the registry's namespace separator)
// and any other disallowed rune become underscores, so
// "queueing.percentile_cache_hits" exports as
// "queueing_percentile_cache_hits".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets plus _sum and
// _count. Metric families are emitted in sorted name order, so the
// output is deterministic for a given set of instrument values. A nil
// registry writes nothing and returns nil, keeping a /metrics endpoint
// valid before collection starts.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics writes the same instruments in the OpenMetrics text
// format: counter samples gain the mandatory _total suffix, bucket
// lines carry the latest request-ID exemplar recorded for that bucket
// ("# {request_id=\"...\"} value"), and the exposition is terminated
// with "# EOF". This is the format behind /metrics when the scraper
// negotiates application/openmetrics-text — exemplar-aware backends
// link a latency bucket straight to one request's access-log line.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.writeExposition(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		sample := pn
		if openMetrics {
			// OpenMetrics requires the _total suffix on counter samples;
			// the TYPE line names the family without it.
			sample = pn + "_total"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, sample, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		exemplars := make(map[int]Exemplar, len(h.Exemplars))
		if openMetrics {
			for _, e := range h.Exemplars {
				exemplars[e.Bucket] = e
			}
		}
		// Prometheus buckets are cumulative; the registry's are per-cell.
		cum := uint64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d", pn, fmt.Sprintf("%g", bound), cum); err != nil {
				return err
			}
			if err := writeExemplar(w, exemplars, i); err != nil {
				return err
			}
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d", pn, h.Count); err != nil {
			return err
		}
		if err := writeExemplar(w, exemplars, len(h.Bounds)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\n%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// writeExemplar appends the OpenMetrics exemplar suffix for bucket i
// when one was recorded; a plain-Prometheus exposition passes an empty
// map and writes nothing.
func writeExemplar(w io.Writer, exemplars map[int]Exemplar, i int) error {
	e, ok := exemplars[i]
	if !ok {
		return nil
	}
	_, err := fmt.Fprintf(w, " # {request_id=%q} %g", e.RequestID, e.Value)
	return err
}

// openMetricsContentType is the negotiated content type of an
// exemplar-carrying exposition.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// PrometheusHandler returns an http.Handler serving the registry in the
// Prometheus text exposition format — the body behind a service's
// /metrics endpoint. Scrapers that accept application/openmetrics-text
// get the OpenMetrics form instead, including per-bucket request-ID
// exemplars. A nil registry serves an empty (valid) exposition.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if strings.Contains(req.Header.Get("Accept"), "application/openmetrics-text") {
			w.Header().Set("Content-Type", openMetricsContentType)
			r.WriteOpenMetrics(w) //nolint:errcheck // client went away; nothing to do
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away; nothing to do
	})
}
