package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// promName maps a registry instrument name onto the Prometheus metric
// name charset [a-zA-Z0-9_:]: dots (the registry's namespace separator)
// and any other disallowed rune become underscores, so
// "queueing.percentile_cache_hits" exports as
// "queueing_percentile_cache_hits".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			r = '_'
		}
		b.WriteRune(r)
	}
	return b.String()
}

// WritePrometheus writes every instrument in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets plus _sum and
// _count. Metric families are emitted in sorted name order, so the
// output is deterministic for a given set of instrument values. A nil
// registry writes nothing and returns nil, keeping a /metrics endpoint
// valid before collection starts.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		// Prometheus buckets are cumulative; the registry's are per-cell.
		cum := uint64(0)
		for i, bound := range h.Bounds {
			if i < len(h.Buckets) {
				cum += h.Buckets[i]
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, fmt.Sprintf("%g", bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler returns an http.Handler serving the registry in the
// Prometheus text exposition format — the body behind a service's
// /metrics endpoint. A nil registry serves an empty (valid) exposition.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away; nothing to do
	})
}
