package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Progress reports "label: done/total configs" lines at a fixed count
// interval. It is deliberately count-based rather than time-based so
// driving it from a deterministic sweep produces deterministic output
// (tests golden-match it). Tick is safe for concurrent use; under
// parallel ticking each threshold still prints exactly once, though
// threshold lines may interleave out of order. All methods no-op on a
// nil receiver, so call sites need no enabled-check.
type Progress struct {
	w     io.Writer
	wmu   sync.Mutex
	label string
	every int64
	total int64
	n     atomic.Int64
	done  atomic.Bool
}

// NewProgress reports to w every `every` ticks out of an expected
// total. A non-positive every disables reporting (returns nil).
func NewProgress(w io.Writer, label string, total, every int64) *Progress {
	if w == nil || every <= 0 {
		return nil
	}
	return &Progress{w: w, label: label, every: every, total: total}
}

// Tick records one completed item, printing when the count crosses a
// reporting threshold.
func (p *Progress) Tick() {
	p.Add(1)
}

// Add records n completed items at once, printing for each threshold
// the batch crosses at most once (the highest).
func (p *Progress) Add(n int64) {
	if p == nil || n <= 0 {
		return
	}
	was := p.n.Add(n) - n
	now := was + n
	if now/p.every > was/p.every {
		p.report(now)
	}
}

// Done prints the final count if the last threshold did not already
// cover it. Call it once at the end of the sweep.
func (p *Progress) Done() {
	if p == nil || !p.done.CompareAndSwap(false, true) {
		return
	}
	if n := p.n.Load(); n%p.every != 0 || n == 0 {
		p.report(n)
	}
}

// Count returns how many ticks have been recorded.
func (p *Progress) Count() int64 {
	if p == nil {
		return 0
	}
	return p.n.Load()
}

func (p *Progress) report(n int64) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.total > 0 {
		fmt.Fprintf(p.w, "%s: %d/%d configs\n", p.label, n, p.total)
	} else {
		fmt.Fprintf(p.w, "%s: %d configs\n", p.label, n)
	}
}
