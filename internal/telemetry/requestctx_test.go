package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRequestContextBasics(t *testing.T) {
	rc := NewRequestContext("", "frontier")
	if len(rc.ID()) != 16 {
		t.Fatalf("minted ID %q, want 16 hex chars", rc.ID())
	}
	if rc.Route() != "frontier" {
		t.Fatalf("route %q", rc.Route())
	}
	adopted := NewRequestContext("proxy-id-1", "replay")
	if adopted.ID() != "proxy-id-1" {
		t.Fatalf("adopted ID %q, want proxy-id-1", adopted.ID())
	}

	rc.Add(AttrConfigsEvaluated, 5)
	rc.Add(AttrConfigsEvaluated, 3)
	rc.Add(AttrCacheHits, 1)
	if got := rc.Attr(AttrConfigsEvaluated); got != 8 {
		t.Fatalf("configs_evaluated = %d, want 8", got)
	}
	attrs := rc.Attrs()
	if attrs[AttrCacheHits] != 1 || len(attrs) != 2 {
		t.Fatalf("attrs = %v", attrs)
	}
	// The copy must not alias the live bag.
	attrs[AttrCacheHits] = 99
	if rc.Attr(AttrCacheHits) != 1 {
		t.Fatal("Attrs returned an aliased map")
	}
}

func TestRequestContextOutcomeFirstWins(t *testing.T) {
	rc := NewRequestContext("", "percentiles")
	if rc.Outcome() != "" {
		t.Fatalf("fresh outcome %q", rc.Outcome())
	}
	rc.SetOutcome("")
	rc.SetOutcome("shed")
	rc.SetOutcome("deadline")
	if got := rc.Outcome(); got != "shed" {
		t.Fatalf("outcome %q, want shed (first non-empty wins)", got)
	}
}

func TestRequestContextNilSafety(t *testing.T) {
	var rc *RequestContext
	rc.Add("k", 1)
	rc.SetOutcome("x")
	rc.Phase("p")()
	if rc.ID() != "" || rc.Route() != "" || rc.Attr("k") != 0 ||
		rc.Outcome() != "" || rc.Attrs() != nil || rc.Timeline() != nil ||
		rc.DroppedPhases() != 0 || rc.TimelineString() != "" || rc.Elapsed() != 0 {
		t.Fatal("nil RequestContext methods must all be no-ops")
	}
	if got := RequestFrom(context.Background()); got != nil {
		t.Fatalf("RequestFrom(plain ctx) = %v, want nil", got)
	}
	if got := RequestFrom(nil); got != nil { //nolint:staticcheck // nil ctx is the point
		t.Fatalf("RequestFrom(nil) = %v, want nil", got)
	}
	ctx := context.Background()
	if WithRequest(ctx, nil) != ctx {
		t.Fatal("WithRequest(ctx, nil) must return ctx unchanged")
	}
}

func TestRequestContextTimeline(t *testing.T) {
	rc := NewRequestContext("", "frontier")
	done := rc.Phase("sweep.blocks")
	time.Sleep(time.Millisecond)
	done()
	rc.Phase("pareto.frontier_sweep")()
	events := rc.Timeline()
	if len(events) != 2 {
		t.Fatalf("timeline has %d events, want 2", len(events))
	}
	if events[0].Name != "sweep.blocks" || events[0].Dur <= 0 {
		t.Fatalf("first event %+v", events[0])
	}
	s := rc.TimelineString()
	if !strings.Contains(s, "sweep.blocks@") || !strings.Contains(s, ";pareto.frontier_sweep@") {
		t.Fatalf("TimelineString %q", s)
	}

	// Past the cap, phases are counted as dropped, not recorded.
	for i := 0; i < maxTimelineEvents+10; i++ {
		rc.Phase("spam")()
	}
	if len(rc.Timeline()) != maxTimelineEvents {
		t.Fatalf("timeline grew to %d, cap is %d", len(rc.Timeline()), maxTimelineEvents)
	}
	if d := rc.DroppedPhases(); d != 12 {
		t.Fatalf("dropped = %d, want 12", d)
	}
	if !strings.Contains(rc.TimelineString(), "(+12 dropped)") {
		t.Fatalf("TimelineString lacks dropped marker: %q", rc.TimelineString())
	}
}

// TestRequestContextConcurrent hammers one RequestContext from many
// goroutines — the frontier sweep shape, where every pool worker
// attributes into the leader's scope. Run with -race.
func TestRequestContextConcurrent(t *testing.T) {
	rc := NewRequestContext("", "frontier")
	const workers, perWorker = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rc.Add(AttrConfigsEvaluated, 1)
				rc.Phase("work")()
				rc.SetOutcome("done")
				_ = rc.Attr(AttrConfigsEvaluated)
				_ = rc.TimelineString()
			}
		}()
	}
	wg.Wait()
	if got := rc.Attr(AttrConfigsEvaluated); got != workers*perWorker {
		t.Fatalf("configs_evaluated = %d, want %d", got, workers*perWorker)
	}
	if got := len(rc.Timeline()) + rc.DroppedPhases(); got != workers*perWorker {
		t.Fatalf("timeline+dropped = %d, want %d", got, workers*perWorker)
	}
}

// TestContextHandlerNoBleed runs many concurrent "requests", each
// logging through ONE shared slog handler under its own RequestContext,
// and asserts every emitted line carries exactly its own request's ID —
// the no-cross-request-bleed property of the logging layer. Run with
// -race: the shared buffer is behind a mutex writer, the handler itself
// must be concurrency-safe.
func TestContextHandlerNoBleed(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	logger, err := NewLogger(&lockedWriter{mu: &mu, w: &buf}, "json", "debug")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	const requests = 64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := NewRequestContext(fmt.Sprintf("req-%04d", i), "percentiles")
			ctx := WithRequest(context.Background(), rc)
			rc.Add(AttrCacheHits, int64(i))
			logger.InfoContext(ctx, "request",
				slog.Int64(AttrCacheHits, rc.Attr(AttrCacheHits)))
		}()
	}
	wg.Wait()

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != requests {
		t.Fatalf("%d log lines, want %d", len(lines), requests)
	}
	seen := make(map[string]bool)
	for _, line := range lines {
		var rec struct {
			Msg       string `json:"msg"`
			RequestID string `json:"request_id"`
			CacheHits int    `json:"cache_hits"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q not JSON: %v", line, err)
		}
		var n int
		if _, err := fmt.Sscanf(rec.RequestID, "req-%d", &n); err != nil {
			t.Fatalf("line %q has request_id %q", line, rec.RequestID)
		}
		// The attribute on the line must be the one its own request
		// accumulated, not a neighbor's.
		if rec.CacheHits != n {
			t.Fatalf("request %s logged cache_hits=%d — attribute bled across requests", rec.RequestID, rec.CacheHits)
		}
		if seen[rec.RequestID] {
			t.Fatalf("request_id %s appears twice", rec.RequestID)
		}
		seen[rec.RequestID] = true
	}
}

// lockedWriter serializes Writes from concurrent handler calls.
type lockedWriter struct {
	mu *sync.Mutex
	w  *bytes.Buffer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func TestContextHandlerPlainContext(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "text", "info")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	logger.Info("no scope here")
	if strings.Contains(buf.String(), "request_id") {
		t.Fatalf("unscoped log line grew a request_id: %q", buf.String())
	}
}

func TestParseLogLevelAndFormats(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"": slog.LevelInfo, "info": slog.LevelInfo, "DEBUG": slog.LevelDebug,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("verbose"); err == nil {
		t.Fatal("ParseLogLevel(verbose) did not fail")
	}
	if _, err := NewLogHandler(&bytes.Buffer{}, "xml", "info"); err == nil {
		t.Fatal("NewLogHandler(xml) did not fail")
	}
	// Level filtering: a debug record must not pass an info handler.
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	logger.Debug("hidden")
	logger.Info("visible")
	if strings.Contains(buf.String(), "hidden") || !strings.Contains(buf.String(), "visible") {
		t.Fatalf("level filtering broken: %q", buf.String())
	}
}

func TestDiscardLogger(t *testing.T) {
	l := DiscardLogger()
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("DiscardLogger claims to be enabled")
	}
	l.Error("goes nowhere") // must not panic
}
