package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Standard attribute keys the instrumented layers accumulate into a
// RequestContext, shared here so the producers (queueing, pareto,
// sweep, replay, serve) and the consumers (access log, /v1/debug/stats)
// agree on spelling.
const (
	// AttrConfigsEvaluated counts configurations run through the
	// time-energy model on behalf of the request.
	AttrConfigsEvaluated = "configs_evaluated"
	// AttrConfigsPruned counts configurations skipped by bound-based
	// subtree pruning during a frontier sweep.
	AttrConfigsPruned = "configs_pruned"
	// AttrConfigsFiltered counts configurations a budget filter rejected
	// before evaluation.
	AttrConfigsFiltered = "configs_filtered"
	// AttrCacheHits / AttrCacheMisses count the request's
	// percentile-cache lookups in the queueing kernel.
	AttrCacheHits   = "cache_hits"
	AttrCacheMisses = "cache_misses"
	// AttrCoalesced marks a request served from another identical
	// in-flight request's result (singleflight follower).
	AttrCoalesced = "coalesced"
	// AttrReplaySteps counts trace steps replayed for the request.
	AttrReplaySteps = "replay_steps"
	// AttrSweepItems counts work items dispatched through the sweep
	// worker pool on behalf of the request.
	AttrSweepItems = "sweep_items"
	// AttrBatchItems counts the expanded per-item evaluations a batch
	// (POST) request carried.
	AttrBatchItems = "batch_items"
)

// ParseLogLevel maps the conventional level names onto slog levels.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogHandler builds the repository's shared structured-log handler:
// format "text" (the default) or "json", filtered at the given level,
// writing to w. Every handler is wrapped so that records logged with a
// request-scoped context automatically carry the request_id and route
// attributes — one flag pair gives every tool the same log shape.
func NewLogHandler(w io.Writer, format, level string) (slog.Handler, error) {
	lvl, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return NewContextHandler(h), nil
}

// NewLogger is NewLogHandler wrapped in a *slog.Logger.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	h, err := NewLogHandler(w, format, level)
	if err != nil {
		return nil, err
	}
	return slog.New(h), nil
}

// ContextHandler decorates an slog.Handler with request correlation:
// when the logging context carries a RequestContext, the emitted record
// gains request_id (and route, when the record does not already carry
// one) — so any log line written anywhere below the serve middleware
// joins against the access log and the metric exemplars without the
// call site threading IDs by hand.
type ContextHandler struct {
	inner slog.Handler
}

// NewContextHandler wraps inner. Wrapping an existing ContextHandler
// returns it unchanged.
func NewContextHandler(inner slog.Handler) slog.Handler {
	if _, ok := inner.(*ContextHandler); ok {
		return inner
	}
	return &ContextHandler{inner: inner}
}

// Enabled forwards to the wrapped handler.
func (h *ContextHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

// Handle appends the context's request attributes and forwards.
func (h *ContextHandler) Handle(ctx context.Context, rec slog.Record) error {
	if rc := RequestFrom(ctx); rc != nil {
		rec = rec.Clone()
		rec.AddAttrs(slog.String("request_id", rc.ID()))
	}
	return h.inner.Handle(ctx, rec)
}

// WithAttrs forwards, preserving the wrapper.
func (h *ContextHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &ContextHandler{inner: h.inner.WithAttrs(attrs)}
}

// WithGroup forwards, preserving the wrapper.
func (h *ContextHandler) WithGroup(name string) slog.Handler {
	return &ContextHandler{inner: h.inner.WithGroup(name)}
}

// discardHandler drops every record (slog.DiscardHandler arrives only
// in later Go releases than this module targets).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// DiscardLogger returns a logger that drops everything — the default
// for components whose caller did not install one, keeping logging
// (like the rest of the package) disabled until explicitly enabled.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }
