package telemetry

import (
	"encoding/json"
	"io"
)

// HistogramSnapshot is the exported summary of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Bounds are the bucket upper bounds; Buckets the matching counts,
	// with one trailing overflow cell.
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []uint64  `json:"buckets,omitempty"`
	// Exemplars holds the latest request-labelled observation per bucket
	// (sparse; see Histogram.ObserveExemplar).
	Exemplars []Exemplar `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Maps marshal with sorted keys, so the JSON form is deterministic for
// a given set of instrument values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every instrument. Counters and
// gauges still being written concurrently are read atomically; the
// snapshot as a whole is not a consistent cut, which is fine for
// monitoring. Returns the zero Snapshot for a nil registry.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = HistogramSnapshot{
				Count:     h.Count(),
				Sum:       h.Sum(),
				Mean:      h.Mean(),
				Min:       h.Min(),
				Max:       h.Max(),
				P50:       h.Quantile(0.50),
				P95:       h.Quantile(0.95),
				P99:       h.Quantile(0.99),
				Bounds:    h.Bounds(),
				Buckets:   h.BucketCounts(),
				Exemplars: h.Exemplars(),
			}
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON. A nil registry writes
// an empty object, keeping -metrics output valid even when collection
// never started.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
