package telemetry

import (
	"net/http"
	"time"
)

// httpLatencyBounds are the request-latency histogram buckets: 10 µs up
// to ~2.6 s in powers of four, bracketing everything from a warm cache
// hit to a full frontier sweep.
var httpLatencyBounds = ExponentialBuckets(1e-5, 4, 10)

// StatusRecorder is an http.ResponseWriter wrapper that captures the
// response status code for instrumentation. The zero status means no
// header was written yet; Status() folds that case to 200, mirroring
// net/http's implicit WriteHeader on first Write.
type StatusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

// NewStatusRecorder wraps w.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w}
}

// WriteHeader records the status and forwards to the wrapped writer.
func (s *StatusRecorder) WriteHeader(code int) {
	if s.status == 0 {
		s.status = code
	}
	s.ResponseWriter.WriteHeader(code)
}

// Write forwards to the wrapped writer, recording the implicit 200 when
// no explicit WriteHeader preceded it.
func (s *StatusRecorder) Write(p []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	n, err := s.ResponseWriter.Write(p)
	s.bytes += int64(n)
	return n, err
}

// Bytes returns the number of body bytes written so far.
func (s *StatusRecorder) Bytes() int64 { return s.bytes }

// Flush forwards to the wrapped writer when it supports flushing, so
// streaming handlers (NDJSON replay) keep their per-frame flushes
// through the recorder.
func (s *StatusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the recorded status code (200 if the handler never set
// one explicitly).
func (s *StatusRecorder) Status() int {
	if s.status == 0 {
		return http.StatusOK
	}
	return s.status
}

// httpInstruments holds the per-route instruments an HTTPMiddleware
// resolves once at wrap time, so the per-request path touches only
// (possibly nil) instrument pointers.
type httpInstruments struct {
	requests *Counter
	status   [5]*Counter // status_1xx .. status_5xx
	seconds  *Histogram
	tracer   *Tracer
	span     string
}

// HTTPMiddleware instruments an HTTP handler under the given route
// label: it counts requests into "http.<route>.requests", counts
// responses per status class into "http.<route>.status_Nxx", observes
// wall-clock latency into the "http.<route>.seconds" histogram, and
// opens one tracer span named "http.<route>" per request. A nil
// registry returns a wrapper whose instruments are all no-ops, so
// handlers can be built once regardless of whether collection is on.
func (r *Registry) HTTPMiddleware(route string, next http.Handler) http.Handler {
	ins := httpInstruments{
		requests: r.Counter("http." + route + ".requests"),
		seconds:  r.Histogram("http."+route+".seconds", httpLatencyBounds),
		tracer:   r.Tracer(),
		span:     "http." + route,
	}
	classes := [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, c := range classes {
		ins.status[i] = r.Counter("http." + route + ".status_" + c)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		ins.requests.Inc()
		span := ins.tracer.Start(ins.span).Arg("method", req.Method)
		rec := NewStatusRecorder(w)
		began := time.Now()
		next.ServeHTTP(rec, req)
		// A request-scoped call stamps its request ID on the latency
		// sample as an exemplar; RequestFrom returns nil (and ID "")
		// outside the serve middleware, degrading to a plain observation.
		ins.seconds.ObserveExemplar(time.Since(began).Seconds(), RequestFrom(req.Context()).ID())
		span.Arg("status", rec.Status()).End()
		if class := rec.Status()/100 - 1; class >= 0 && class < len(ins.status) {
			ins.status[class].Inc()
		}
	})
}
