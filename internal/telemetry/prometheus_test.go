package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := New()
	r.Counter("alpha.total").Add(3)
	r.Gauge("beta.depth").Set(2.5)
	h := r.Histogram("gamma.seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE alpha_total counter\nalpha_total 3\n",
		"# TYPE beta_depth gauge\nbeta_depth 2.5\n",
		"# TYPE gamma_seconds histogram",
		`gamma_seconds_bucket{le="1"} 1`,
		`gamma_seconds_bucket{le="10"} 2`,
		`gamma_seconds_bucket{le="+Inf"} 3`,
		"gamma_seconds_sum 55.5",
		"gamma_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name: alpha before beta before gamma.
	if a, g := strings.Index(out, "alpha_total"), strings.Index(out, "gamma_seconds"); a > g {
		t.Error("families not sorted by name")
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("nil registry: %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}
}

func TestPrometheusHandler(t *testing.T) {
	r := New()
	r.Counter("x.y").Inc()
	rec := httptest.NewRecorder()
	r.PrometheusHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "x_y 1") {
		t.Fatalf("body missing x_y 1:\n%s", rec.Body.String())
	}
}

func TestHTTPMiddleware(t *testing.T) {
	r := New()
	h := r.HTTPMiddleware("demo", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == "/fail" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok")) //nolint:errcheck
	}))
	for _, path := range []string{"/", "/", "/fail"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	}
	if got := r.Counter("http.demo.requests").Value(); got != 3 {
		t.Fatalf("requests = %d, want 3", got)
	}
	if got := r.Counter("http.demo.status_2xx").Value(); got != 2 {
		t.Fatalf("status_2xx = %d, want 2", got)
	}
	if got := r.Counter("http.demo.status_4xx").Value(); got != 1 {
		t.Fatalf("status_4xx = %d, want 1", got)
	}
	if got := r.Histogram("http.demo.seconds", httpLatencyBounds).Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
}

func TestHTTPMiddlewareNilRegistry(t *testing.T) {
	var r *Registry
	h := r.HTTPMiddleware("demo", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("nil-registry middleware altered response: %d", rec.Code)
	}
}
