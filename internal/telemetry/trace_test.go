package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, making span timestamps
// deterministic.
type fakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// TestChromeTraceGolden: with an injected clock the Chrome trace output
// is byte-for-byte reproducible and valid JSON.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer()
	clk := &fakeClock{now: time.Unix(0, 0), step: 10 * time.Microsecond}
	tr.SetClock(clk.Now)
	// Clock readings (µs): SetClock origin=0; root begins 10; child
	// begins 20, ends 30; worker begins 40, ends 50; root ends 60.
	root := tr.Start("run")
	child := tr.Start("evaluate").Arg("configs", 42)
	child.End()
	w := tr.StartOn(3, "worker")
	w.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	want := `[
{"name":"run","cat":"telemetry","ph":"X","ts":10,"dur":50,"pid":1,"tid":0},
{"name":"evaluate","cat":"telemetry","ph":"X","ts":20,"dur":10,"pid":1,"tid":0,"args":{"configs":42}},
{"name":"worker","cat":"telemetry","ph":"X","ts":40,"dur":10,"pid":1,"tid":3}
]
`
	if buf.String() != want {
		t.Fatalf("trace output:\n%s\nwant:\n%s", buf.String(), want)
	}
	// The whole document must parse as one JSON array of events.
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 3 {
		t.Fatalf("parsed %d events, want 3", len(events))
	}
	for _, ev := range events {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Fatalf("malformed event %v", ev)
		}
	}
}

// TestTraceConcurrent: spans opened and closed from many goroutines on
// distinct tracks record exactly once each and still serialize to valid
// JSON (run under -race via `make race`).
func TestTraceConcurrent(t *testing.T) {
	tr := NewTracer()
	const workers, spansPer = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				tr.StartOn(w, fmt.Sprintf("w%d", w)).End()
			}
		}()
	}
	wg.Wait()
	if got := tr.Len(); got != workers*spansPer {
		t.Fatalf("recorded %d spans, want %d", got, workers*spansPer)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("concurrent trace is not valid JSON: %v", err)
	}
	if len(events) != workers*spansPer {
		t.Fatalf("serialized %d events, want %d", len(events), workers*spansPer)
	}
}
