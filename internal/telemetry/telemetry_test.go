package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/stats"
)

// TestCounterConcurrent hammers one counter from many goroutines; the
// total must be exact (run under -race via `make race`).
func TestCounterConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("hammer")
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

// TestGaugeConcurrentAdd: concurrent Add deltas must sum exactly (the
// CAS loop loses no updates); Max must keep the high watermark.
func TestGaugeConcurrentAdd(t *testing.T) {
	r := New()
	g := r.Gauge("adds")
	hw := r.Gauge("peak")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				hw.Max(float64(w*perWorker + i))
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != workers*perWorker {
		t.Fatalf("gauge sum = %g, want %d", got, workers*perWorker)
	}
	if got, want := hw.Value(), float64(workers*perWorker-1); got != want {
		t.Fatalf("gauge max = %g, want %g", got, want)
	}
}

// TestHistogramConcurrent: concurrent observations keep count and sum
// exact and bucket totals consistent.
func TestHistogramConcurrent(t *testing.T) {
	r := New()
	h := r.Histogram("hammer", LinearBuckets(1, 1, 8))
	const workers, perWorker = 8, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(float64((w + i) % 10))
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	var bucketTotal uint64
	for _, n := range h.BucketCounts() {
		bucketTotal += n
	}
	if bucketTotal != h.Count() {
		t.Fatalf("bucket totals %d != count %d", bucketTotal, h.Count())
	}
	if h.Min() != 0 || h.Max() != 9 {
		t.Fatalf("min/max = %g/%g, want 0/9", h.Min(), h.Max())
	}
}

// TestHistogramQuantileMatchesStats checks the bucket-interpolated
// quantiles against the exact sorted-sample percentiles from
// internal/stats: with bucket width w the estimate must land within w.
func TestHistogramQuantileMatchesStats(t *testing.T) {
	rng := stats.NewRNG(7)
	const n = 20000
	const width = 0.05
	h := NewHistogram(LinearBuckets(width, width, 200)) // covers (0, 10]
	samples := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := rng.ExpFloat64(1) // mean 1, tail into the overflow bucket
		if v > 12 {
			v = 12
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.50, 0.90, 0.95, 0.99} {
		exact, err := stats.PercentileSorted(samples, 100*q)
		if err != nil {
			t.Fatal(err)
		}
		got := h.Quantile(q)
		if math.Abs(got-exact) > width {
			t.Errorf("q=%g: histogram %.4f vs exact %.4f (> bucket width %g)", q, got, exact, width)
		}
	}
	if got, want := h.Count(), uint64(n); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	mean := h.Mean()
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if math.Abs(mean-sum/n) > 1e-9 {
		t.Fatalf("mean = %g, want %g", mean, sum/n)
	}
}

// TestHistogramEdgeCases covers empty, single-value and clamp behavior.
func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Observe(3)
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("single-value quantile = %g, want 3", got)
	}
	if h.Min() != 3 || h.Max() != 3 {
		t.Fatalf("min/max = %g/%g, want 3/3", h.Min(), h.Max())
	}
}

// TestNilSafety: every operation on nil registries, instruments, spans
// and progress reporters must be a silent no-op.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("x")
	h := r.Histogram("x", nil)
	tr := r.Tracer()
	if c != nil || g != nil || h != nil || tr != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value != 0")
	}
	g.Set(1)
	g.Add(1)
	g.Max(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value != 0")
	}
	h.Observe(1)
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Bounds() != nil || h.BucketCounts() != nil {
		t.Fatal("nil histogram must report zeros")
	}
	sp := tr.Start("phase")
	sp.Arg("k", "v")
	sp.End()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must record nothing")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("nil tracer trace = %q, want empty array", buf.String())
	}
	var p *Progress
	p.Tick()
	p.Add(3)
	p.Done()
	if p.Count() != 0 {
		t.Fatal("nil progress count != 0")
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Fatal("nil registry snapshot must be empty")
	}
	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{}\n" {
		t.Fatalf("nil registry JSON = %q, want {}", buf.String())
	}
}

// TestRegistrySharing: the same name resolves to the same instrument.
func TestRegistrySharing(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not shared by name")
	}
	if r.Gauge("a") != r.Gauge("a") {
		t.Fatal("gauge not shared by name")
	}
	h := r.Histogram("a", LinearBuckets(1, 1, 3))
	if r.Histogram("a", nil) != h {
		t.Fatal("histogram not shared by name")
	}
}

// TestGlobal: SetGlobal installs and removes the process registry, and
// StartSpan routes through it.
func TestGlobal(t *testing.T) {
	if Global() != nil {
		t.Fatal("global registry must start nil")
	}
	r := New()
	SetGlobal(r)
	defer SetGlobal(nil)
	if Global() != r {
		t.Fatal("Global() did not return the installed registry")
	}
	StartSpan("phase").End()
	if r.Tracer().Len() != 1 {
		t.Fatal("StartSpan did not record on the global tracer")
	}
	SetGlobal(nil)
	if Global() != nil {
		t.Fatal("SetGlobal(nil) must disable")
	}
	StartSpan("ignored").End() // must not panic
}

// TestSnapshotJSON: the snapshot round-trips through JSON with the
// expected values and quantile fields.
func TestSnapshotJSON(t *testing.T) {
	r := New()
	r.Counter("c1").Add(7)
	r.Gauge("g1").Set(2.5)
	h := r.Histogram("h1", LinearBuckets(1, 1, 4))
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5, 4.5} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["c1"] != 7 {
		t.Fatalf("c1 = %d, want 7", snap.Counters["c1"])
	}
	if snap.Gauges["g1"] != 2.5 {
		t.Fatalf("g1 = %g, want 2.5", snap.Gauges["g1"])
	}
	hs, ok := snap.Histograms["h1"]
	if !ok {
		t.Fatal("h1 missing from snapshot")
	}
	if hs.Count != 5 || hs.Sum != 12.5 {
		t.Fatalf("h1 count/sum = %d/%g, want 5/12.5", hs.Count, hs.Sum)
	}
	if hs.P50 <= 0 || hs.P95 < hs.P50 || hs.P99 < hs.P95 {
		t.Fatalf("quantiles not monotone: p50=%g p95=%g p99=%g", hs.P50, hs.P95, hs.P99)
	}
	if len(hs.Buckets) != len(hs.Bounds)+1 {
		t.Fatalf("bucket count %d != bounds+1 %d", len(hs.Buckets), len(hs.Bounds)+1)
	}
}

// TestProgressSequential golden-matches the deterministic count-based
// reporting: thresholds at every multiple of `every`, plus a final line
// from Done when the total is not a multiple.
func TestProgressSequential(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", 10, 4)
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	p.Done()
	p.Done() // idempotent
	want := "sweep: 4/10 configs\nsweep: 8/10 configs\nsweep: 10/10 configs\n"
	if buf.String() != want {
		t.Fatalf("progress output:\n%q\nwant:\n%q", buf.String(), want)
	}
	if p.Count() != 10 {
		t.Fatalf("count = %d, want 10", p.Count())
	}
}

// TestProgressBatched: Add crossing several thresholds at once prints
// one line, and a disabled reporter (every<=0) is nil.
func TestProgressBatched(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf, "sweep", 100, 10)
	p.Add(35)
	if got, want := buf.String(), "sweep: 35/100 configs\n"; got != want {
		t.Fatalf("batched output %q, want %q", got, want)
	}
	if NewProgress(&buf, "x", 10, 0) != nil {
		t.Fatal("every=0 must disable")
	}
}

// TestProgressConcurrent: each threshold prints exactly once under
// parallel ticking.
func TestProgressConcurrent(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(b []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(b)
	})
	const workers, perWorker, every = 8, 1000, 100
	p := NewProgress(w, "par", workers*perWorker, every)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				p.Tick()
			}
		}()
	}
	wg.Wait()
	p.Done()
	mu.Lock()
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	mu.Unlock()
	if want := workers * perWorker / every; lines != want {
		t.Fatalf("printed %d lines, want %d", lines, want)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(b []byte) (int, error) { return f(b) }
