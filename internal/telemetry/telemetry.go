// Package telemetry is the repository's zero-dependency observability
// layer: a concurrency-safe metrics registry (counters, gauges and
// fixed-bucket histograms with quantile summaries), a lightweight span
// tracer that exports Chrome trace-event JSON (loadable in
// chrome://tracing and Perfetto), and a deterministic count-based
// progress reporter for long sweeps.
//
// The paper this repository reproduces is a measurement study — perf
// counters and a wall power meter — and the simulated substrate gets the
// same treatment: the DES engine, the cluster simulator, the queueing
// solvers, the Pareto sweeps and the adaptive planner all emit into a
// registry when one is installed.
//
// Instrumentation is disabled by default and every entry point is
// nil-safe: a nil *Registry hands out nil instruments, and operations on
// nil instruments are no-ops costing about a nanosecond (see the
// package benchmarks), so hot paths stay hot when nobody is watching.
// Enable collection process-wide with
//
//	reg := telemetry.New()
//	telemetry.SetGlobal(reg)
//	defer telemetry.SetGlobal(nil)
//
// or hand a *Registry to components that accept one directly.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe namespace of instruments. Instruments
// are created on first use and shared by name: two callers asking for
// counter "des.events_fired" increment the same cell.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	histOrder []string // creation order for stable iteration
	tracer    *Tracer
}

// New returns an empty registry with an attached span tracer.
func New() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil counter, on which every operation is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. A nil
// registry returns a nil gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending) on first use; later calls ignore the
// bounds and return the existing histogram. A nil registry returns nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
		r.histOrder = append(r.histOrder, name)
	}
	return h
}

// Tracer returns the registry's span tracer, or nil for a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// global is the process-wide registry; nil means telemetry is disabled.
var global atomic.Pointer[Registry]

// SetGlobal installs r as the process-wide registry. Pass nil to
// disable collection again. Components read the global at construction
// or call time, so install it before building the objects to observe.
func SetGlobal(r *Registry) {
	global.Store(r)
}

// Global returns the process-wide registry, which is nil until
// SetGlobal installs one.
func Global() *Registry {
	return global.Load()
}

// StartSpan opens a span on the global registry's tracer; it returns a
// nil (no-op) span when telemetry is disabled.
func StartSpan(name string) *Span {
	return Global().Tracer().Start(name)
}
