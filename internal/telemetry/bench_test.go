package telemetry

import (
	"testing"
)

// The disabled (nil) instrument path is the cost every hot loop pays
// when telemetry is off: a nil check and an immediate return. The
// benchmarks below show it at ~1ns per call; TestNoopOverhead enforces
// the budget so a regression (e.g. an allocation sneaking into the
// no-op path) fails the suite rather than silently taxing every sweep.

func BenchmarkNoopCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNoopGaugeSet(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Set(float64(i))
	}
}

func BenchmarkNoopHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i))
	}
}

func BenchmarkNoopSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start("x").End()
	}
}

// BenchmarkNoopGlobalSpan includes the disabled-global lookup, the full
// cost of a telemetry.StartSpan call site when telemetry is off.
func BenchmarkNoopGlobalSpan(b *testing.B) {
	SetGlobal(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("x").End()
	}
}

func BenchmarkEnabledCounterInc(b *testing.B) {
	c := New().Counter("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	h := New().Histogram("bench", ExponentialBuckets(1e-7, 10, 9))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i % 1000))
	}
}

// TestNoopOverhead enforces the disabled-path budget: well under 10ns
// per call on any modern machine (the nil check compiles to a couple of
// instructions). The threshold is generous to absorb CI noise, and the
// race detector build is skipped — its instrumentation taxes every
// call far beyond the production cost being asserted.
func TestNoopOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("overhead budget not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	res := testing.Benchmark(func(b *testing.B) {
		var c *Counter
		var g *Gauge
		var h *Histogram
		for i := 0; i < b.N; i++ {
			c.Inc()
			g.Set(1)
			h.Observe(1)
		}
	})
	perCall := float64(res.NsPerOp()) / 3
	if perCall > 10 {
		t.Errorf("disabled telemetry costs %.1f ns per call, budget 10ns", perCall)
	}
	if res.AllocsPerOp() != 0 {
		t.Errorf("disabled telemetry allocates %d allocs/op, want 0", res.AllocsPerOp())
	}
}
