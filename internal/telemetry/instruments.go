package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous float64 value. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		if g.bits.CompareAndSwap(old, math.Float64bits(cur+d)) {
			return
		}
	}
}

// Max raises the gauge to v if v exceeds the current value — a
// high-watermark gauge (e.g. peak event-queue depth).
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds: bucket i counts values v <= bounds[i], with one extra
// overflow bucket above the last bound. It also tracks count, sum, min
// and max, so quantile estimates can clamp the open-ended end buckets
// to the observed range. All methods are lock-free, safe for concurrent
// use, and no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is overflow
	count   atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64 // +Inf until first observation
	maxBits atomic.Uint64 // -Inf until first observation
	// exemplars holds the latest labelled observation per bucket (see
	// ObserveExemplar); cells are nil until a labelled observation lands.
	exemplars []atomic.Pointer[Exemplar]
}

// Exemplar is one labelled observation attached to a histogram bucket:
// the observed value plus the request ID that produced it, exported on
// the OpenMetrics exposition so a latency bucket links back to a
// concrete request's access-log line.
type Exemplar struct {
	// RequestID is the exemplar label (exported as request_id).
	RequestID string `json:"request_id"`
	// Value is the observed value.
	Value float64 `json:"value"`
	// Bucket is the index of the bucket the observation landed in (set
	// on snapshot export; len(Bounds) means the overflow bucket).
	Bucket int `json:"bucket"`
}

// NewHistogram builds a standalone histogram from ascending bucket
// upper bounds. Empty bounds give a single all-in-one bucket (still
// useful for count/sum/min/max). Most callers use Registry.Histogram.
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{
		bounds:    b,
		counts:    make([]atomic.Uint64, len(b)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(b)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// LinearBuckets returns n ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n ascending bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe counts v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First index whose bound is >= v; len(bounds) is the overflow cell.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		cur := math.Float64frombits(old)
		if h.sumBits.CompareAndSwap(old, math.Float64bits(cur+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if math.Float64frombits(old) <= v {
			break
		}
		if h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if math.Float64frombits(old) >= v {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// ObserveExemplar counts v like Observe and additionally stores
// (requestID, v) as the containing bucket's exemplar, replacing the
// previous one — last-write-wins is the conventional exemplar policy,
// and one atomic pointer swap keeps the labelled path nearly as cheap
// as the plain one. An empty requestID degrades to Observe.
func (h *Histogram) ObserveExemplar(v float64, requestID string) {
	if h == nil {
		return
	}
	h.Observe(v)
	if requestID == "" {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&Exemplar{RequestID: requestID, Value: v, Bucket: i})
}

// Exemplars returns the latest labelled observation per bucket, sparse:
// only buckets that ever received one appear, in bucket order.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			ex := *e
			ex.Bucket = i
			out = append(out, ex)
		}
	}
	return out
}

// Count returns the number of observations (0 on a nil histogram).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.minBits.Load())
}

// Max returns the largest observation, or 0 when empty.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation within the containing bucket; the open-ended first and
// last buckets are clamped to the observed min/max. The estimate is
// exact to within one bucket width. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			lo := h.Min()
			if i > 0 {
				lo = math.Max(lo, h.bounds[i-1])
			}
			hi := h.Max()
			if i < len(h.bounds) {
				hi = math.Min(hi, h.bounds[i])
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.Max()
}

// Bounds returns the bucket upper bounds (nil on a nil histogram).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	out := make([]float64, len(h.bounds))
	copy(out, h.bounds)
	return out
}

// BucketCounts returns the per-bucket counts, the last entry being the
// overflow bucket above the final bound.
func (h *Histogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}
