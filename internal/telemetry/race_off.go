//go:build !race

package telemetry

// raceEnabled reports whether the binary was built with the race
// detector; timing-budget tests skip themselves under it.
const raceEnabled = false
