package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// maxTraceEvents bounds tracer memory; spans past the cap are counted
// as dropped rather than recorded.
const maxTraceEvents = 1 << 20

// Tracer records named, possibly nested and concurrent, timed phases
// ("spans") and exports them in the Chrome trace-event format, which
// chrome://tracing and https://ui.perfetto.dev load directly. Spans on
// the same track (tid) that overlap in time render as a nesting stack.
// All methods are safe for concurrent use and no-ops on a nil receiver.
type Tracer struct {
	mu      sync.Mutex
	start   time.Time
	now     func() time.Time
	events  []traceEvent
	dropped uint64
}

// traceEvent is one complete ("ph":"X") Chrome trace event.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.start = t.now()
	return t
}

// SetClock replaces the tracer's time source and resets the trace
// origin to the new clock's current reading. Tests inject a fake clock
// here so trace output is deterministic.
func (t *Tracer) SetClock(now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.now = now
	t.start = now()
}

// Span is one in-flight phase; End closes it. A nil span (from a nil
// or disabled tracer) no-ops.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	begin time.Time
	args  map[string]any
}

// Start opens a span named name on track 0.
func (t *Tracer) Start(name string) *Span {
	return t.StartOn(0, name)
}

// StartOn opens a span on an explicit track; parallel workers use their
// worker index so their spans render side by side instead of falsely
// nesting.
func (t *Tracer) StartOn(tid int, name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	now := t.now()
	t.mu.Unlock()
	return &Span{t: t, name: name, tid: tid, begin: now}
}

// Arg attaches a key/value pair shown in the trace viewer's detail
// pane. It returns the span for chaining and no-ops on a nil span.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any)
	}
	s.args[key] = value
	return s
}

// End closes the span and records it.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.events) >= maxTraceEvents {
		t.dropped++
		return
	}
	end := t.now()
	t.events = append(t.events, traceEvent{
		Name: s.name,
		Cat:  "telemetry",
		Ph:   "X",
		Ts:   float64(s.begin.Sub(t.start)) / float64(time.Microsecond),
		Dur:  float64(end.Sub(s.begin)) / float64(time.Microsecond),
		Pid:  1,
		Tid:  s.tid,
		Args: s.args,
	})
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns how many spans were discarded at the event cap.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteChromeTrace writes the recorded spans as a JSON array of Chrome
// trace events, one per line, sorted by start time (then track). The
// output is valid JSON and loads in chrome://tracing and Perfetto. A
// nil tracer writes an empty array.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		t.mu.Lock()
		events = make([]traceEvent, len(t.events))
		copy(events, t.events)
		t.mu.Unlock()
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].Ts != events[j].Ts {
			return events[i].Ts < events[j].Ts
		}
		return events[i].Tid < events[j].Tid
	})
	if len(events) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		sep := ","
		if i == len(events)-1 {
			sep = ""
		}
		if _, err := fmt.Fprintf(w, "%s%s\n", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
