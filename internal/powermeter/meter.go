// Package powermeter simulates the wall power monitor of the paper's
// validation setup (a Yokogawa WT210 in Figure 4): it samples a
// piecewise-constant power trace at a fixed rate, applies gain error,
// additive noise and quantization, and integrates the samples into a
// measured energy.
package powermeter

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/units"
)

// Source is any time-varying power signal the meter can sample.
type Source interface {
	// At returns the instantaneous power at time x seconds.
	At(x float64) units.Watts
}

// Aggregate sums multiple sources, e.g. the per-node traces of a
// cluster measured by a single instrument at the PDU.
type Aggregate []Source

// At implements Source.
func (a Aggregate) At(x float64) units.Watts {
	var sum units.Watts
	for _, s := range a {
		sum += s.At(x)
	}
	return sum
}

// Segment is one piecewise-constant span of true power.
type Segment struct {
	Start, End float64 // seconds
	Power      units.Watts
}

// Trace is a time-ordered piecewise-constant power signal.
type Trace struct {
	segments []Segment
}

// Append adds a segment; it must start where the previous one ended (or
// later — gaps read as zero power).
func (t *Trace) Append(s Segment) error {
	if s.End < s.Start {
		return fmt.Errorf("powermeter: segment ends (%g) before it starts (%g)", s.End, s.Start)
	}
	if n := len(t.segments); n > 0 && s.Start < t.segments[n-1].End {
		return errors.New("powermeter: overlapping segment")
	}
	if s.Power < 0 {
		return errors.New("powermeter: negative power")
	}
	t.segments = append(t.segments, s)
	return nil
}

// At returns the true power at time x.
func (t *Trace) At(x float64) units.Watts {
	i := sort.Search(len(t.segments), func(i int) bool { return t.segments[i].End > x })
	if i >= len(t.segments) {
		return 0
	}
	s := t.segments[i]
	if x < s.Start {
		return 0
	}
	return s.Power
}

// Duration returns the end time of the last segment.
func (t *Trace) Duration() float64 {
	if len(t.segments) == 0 {
		return 0
	}
	return t.segments[len(t.segments)-1].End
}

// TrueEnergy integrates the trace exactly.
func (t *Trace) TrueEnergy() units.Joules {
	var k stats.KahanSum
	for _, s := range t.segments {
		k.Add(float64(s.Power) * (s.End - s.Start))
	}
	return units.Joules(k.Sum())
}

// Meter models the sampling instrument.
type Meter struct {
	// SampleRate is samples per second (the WT210 integrates at ~10 Hz
	// in the mode the paper uses).
	SampleRate float64
	// GainError is a multiplicative calibration error (e.g. 0.01 = +1%),
	// fixed per instrument.
	GainError float64
	// NoiseStdDev is additive gaussian noise per sample, in watts.
	NoiseStdDev units.Watts
	// Resolution quantizes each sample (watts per count); zero disables.
	Resolution units.Watts
}

// DefaultMeter returns a WT210-like instrument: 10 Hz, 0.2% gain error
// band, 0.05 W noise, 10 mW resolution.
func DefaultMeter() Meter {
	return Meter{SampleRate: 10, GainError: 0.002, NoiseStdDev: 0.05, Resolution: 0.01}
}

// Measurement is the result of metering a trace.
type Measurement struct {
	// Energy is the integrated measured energy.
	Energy units.Joules
	// MeanPower is measured energy over the metered duration.
	MeanPower units.Watts
	// Samples is the number of readings taken.
	Samples int
}

// Measure samples the source over [0, duration] and integrates. The
// same seed reproduces the same measurement.
func (m Meter) Measure(tr Source, duration float64, seed uint64) (Measurement, error) {
	if m.SampleRate <= 0 {
		return Measurement{}, errors.New("powermeter: non-positive sample rate")
	}
	if duration <= 0 {
		return Measurement{}, errors.New("powermeter: non-positive duration")
	}
	rng := stats.NewRNG(seed)
	dt := 1 / m.SampleRate
	var k stats.KahanSum
	n := 0
	// Midpoint sampling: read at the center of each interval, like an
	// integrating meter. Intervals are indexed by integer to avoid
	// floating-point drift creating a spurious final sliver.
	total := int(math.Ceil(duration*m.SampleRate - 1e-9))
	if total < 1 {
		total = 1
	}
	for i := 0; i < total; i++ {
		start := float64(i) * dt
		end := start + dt
		if end > duration {
			end = duration
		}
		mid := (start + end) / 2
		v := float64(tr.At(mid))
		v *= 1 + m.GainError
		v += rng.NormFloat64(float64(m.NoiseStdDev))
		if m.Resolution > 0 {
			steps := v / float64(m.Resolution)
			v = float64(m.Resolution) * float64(int64(steps+0.5))
		}
		if v < 0 {
			v = 0
		}
		k.Add(v * (end - start))
		n++
	}
	energy := units.Joules(k.Sum())
	return Measurement{
		Energy:    energy,
		MeanPower: energy.Over(units.Seconds(duration)),
		Samples:   n,
	}, nil
}
