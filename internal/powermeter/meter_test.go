package powermeter

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/units"
)

func constantTrace(t *testing.T, p units.Watts, dur float64) *Trace {
	t.Helper()
	tr := &Trace{}
	if err := tr.Append(Segment{Start: 0, End: dur, Power: p}); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTraceAppendValidation(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(Segment{Start: 1, End: 0, Power: 1}); err == nil {
		t.Error("inverted segment accepted")
	}
	if err := tr.Append(Segment{Start: 0, End: 1, Power: -1}); err == nil {
		t.Error("negative power accepted")
	}
	if err := tr.Append(Segment{Start: 0, End: 1, Power: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Segment{Start: 0.5, End: 2, Power: 1}); err == nil {
		t.Error("overlapping segment accepted")
	}
	if err := tr.Append(Segment{Start: 1.5, End: 2, Power: 2}); err != nil {
		t.Errorf("gapped segment rejected: %v", err)
	}
}

func TestTraceAt(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(Segment{Start: 0, End: 1, Power: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Segment{Start: 2, End: 3, Power: 20}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		x    float64
		want units.Watts
	}{{0, 10}, {0.5, 10}, {1.5, 0}, {2.5, 20}, {5, 0}}
	for _, c := range cases {
		if got := tr.At(c.x); got != c.want {
			t.Errorf("At(%g) = %v, want %v", c.x, got, c.want)
		}
	}
	if tr.Duration() != 3 {
		t.Errorf("duration = %g, want 3", tr.Duration())
	}
}

func TestTrueEnergy(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(Segment{Start: 0, End: 2, Power: 10}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(Segment{Start: 2, End: 3, Power: 30}); err != nil {
		t.Fatal(err)
	}
	if got := tr.TrueEnergy(); math.Abs(float64(got)-50) > 1e-12 {
		t.Errorf("true energy = %v, want 50 J", got)
	}
}

func TestPerfectMeterExactOnConstant(t *testing.T) {
	tr := constantTrace(t, 42, 10)
	m := Meter{SampleRate: 100}
	meas, err := m.Measure(tr, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(float64(meas.Energy), 420) > 1e-9 {
		t.Errorf("perfect meter energy = %v, want 420 J", meas.Energy)
	}
	if meas.Samples != 1000 {
		t.Errorf("samples = %d, want 1000", meas.Samples)
	}
}

func TestMeterGainError(t *testing.T) {
	tr := constantTrace(t, 100, 10)
	m := Meter{SampleRate: 100, GainError: 0.01}
	meas, err := m.Measure(tr, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(float64(meas.Energy), 1010) > 1e-9 {
		t.Errorf("energy with +1%% gain = %v, want 1010 J", meas.Energy)
	}
}

func TestMeterNoiseAveragesOut(t *testing.T) {
	tr := constantTrace(t, 50, 100)
	m := Meter{SampleRate: 10, NoiseStdDev: 1}
	meas, err := m.Measure(tr, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 samples of sd=1 noise: mean power error ~ 1/sqrt(1000).
	if math.Abs(float64(meas.MeanPower)-50) > 0.2 {
		t.Errorf("mean power = %v, want ~50 W", meas.MeanPower)
	}
}

func TestMeterQuantization(t *testing.T) {
	tr := constantTrace(t, 10.237, 1)
	m := Meter{SampleRate: 10, Resolution: 0.1}
	meas, err := m.Measure(tr, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every sample snaps to 10.2.
	if stats.RelErr(float64(meas.MeanPower), 10.2) > 1e-9 {
		t.Errorf("quantized mean = %v, want 10.2", meas.MeanPower)
	}
}

func TestMeterDeterminism(t *testing.T) {
	tr := constantTrace(t, 50, 10)
	m := DefaultMeter()
	a, err := m.Measure(tr, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Measure(tr, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy != b.Energy {
		t.Error("same seed produced different measurements")
	}
	c, err := m.Measure(tr, 10, 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.Energy == c.Energy {
		t.Error("different seeds produced identical noisy measurements")
	}
}

func TestMeterErrors(t *testing.T) {
	tr := constantTrace(t, 1, 1)
	if _, err := (Meter{SampleRate: 0}).Measure(tr, 1, 1); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := (Meter{SampleRate: 10}).Measure(tr, 0, 1); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestAggregateSumsSources(t *testing.T) {
	a := constantTrace(t, 10, 5)
	b := constantTrace(t, 20, 5)
	agg := Aggregate{a, b}
	if got := agg.At(2.5); got != 30 {
		t.Errorf("aggregate At = %v, want 30", got)
	}
	m := Meter{SampleRate: 100}
	meas, err := m.Measure(agg, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(float64(meas.Energy), 150) > 1e-9 {
		t.Errorf("aggregate energy = %v, want 150 J", meas.Energy)
	}
}

// TestMeterUnbiasedProperty: for random constant traces, the default
// meter's reading stays within its error budget.
func TestMeterUnbiasedProperty(t *testing.T) {
	f := func(pRaw uint16, seed uint64) bool {
		p := units.Watts(float64(pRaw%5000)/10 + 1)
		tr := &Trace{}
		if err := tr.Append(Segment{Start: 0, End: 20, Power: p}); err != nil {
			return false
		}
		meas, err := DefaultMeter().Measure(tr, 20, seed)
		if err != nil {
			return false
		}
		// 0.2% gain + noise floor.
		return stats.RelErr(float64(meas.MeanPower), float64(p)) < 0.01+0.2/float64(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
