package energyprop

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/units"
)

func TestNewCurveValidation(t *testing.T) {
	good := stats.Linspace(0, 1, 5)
	if _, err := NewCurve(good, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Errorf("valid curve rejected: %v", err)
	}
	cases := []struct {
		label string
		u, p  []float64
	}{
		{"length mismatch", []float64{0, 1}, []float64{1}},
		{"single point", []float64{0}, []float64{1}},
		{"missing zero", []float64{0.1, 1}, []float64{1, 2}},
		{"missing one", []float64{0, 0.9}, []float64{1, 2}},
		{"not ascending", []float64{0, 0.5, 0.5, 1}, []float64{1, 2, 3, 4}},
		{"negative power", []float64{0, 1}, []float64{-1, 2}},
		{"NaN power", []float64{0, 1}, []float64{math.NaN(), 2}},
	}
	for _, c := range cases {
		if _, err := NewCurve(c.u, c.p); err == nil {
			t.Errorf("%s: accepted", c.label)
		}
	}
}

func TestCurveAtInterpolation(t *testing.T) {
	c := Linear(10, 110, 10)
	cases := []struct{ u, want float64 }{
		{0, 10}, {1, 110}, {0.5, 60}, {0.25, 35},
		{-1, 10}, // clamped below
		{2, 110}, // clamped above
	}
	for _, cse := range cases {
		if got := c.At(cse.u); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("At(%g) = %g, want %g", cse.u, got, cse.want)
		}
	}
}

// TestCurveAtMonotoneProperty: for any nondecreasing curve, At respects
// monotonicity at arbitrary query points.
func TestCurveAtMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		u := stats.Linspace(0, 1, 33)
		p := make([]float64, len(u))
		acc := rng.Float64() * 10
		for i := range p {
			acc += rng.Float64()
			p[i] = acc
		}
		c, err := NewCurve(u, p)
		if err != nil {
			return false
		}
		prev := -math.MaxFloat64
		for _, q := range stats.Linspace(0, 1, 101) {
			v := c.At(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCurveScale(t *testing.T) {
	c := Linear(5, 10, 4)
	s := c.Scale(3)
	if s.Idle() != 15 || s.Peak() != 30 {
		t.Errorf("scaled endpoints %g/%g", s.Idle(), s.Peak())
	}
	// Original untouched.
	if c.Idle() != 5 || c.Peak() != 10 {
		t.Error("Scale mutated the receiver")
	}
	// Metrics are scale-invariant.
	a, b := ComputeMetrics(c), ComputeMetrics(s)
	if math.Abs(a.IPR-b.IPR) > 1e-12 || math.Abs(a.EPM-b.EPM) > 1e-12 {
		t.Error("metrics changed under scaling")
	}
}

func TestCurveAdd(t *testing.T) {
	a := Linear(1, 2, 10)
	b := Linear(10, 20, 10)
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Idle() != 11 || sum.Peak() != 22 {
		t.Errorf("sum endpoints %g/%g", sum.Idle(), sum.Peak())
	}
	// Mismatched grids are rejected.
	c := Linear(1, 2, 7)
	if _, err := a.Add(c); err == nil {
		t.Error("mismatched grids accepted")
	}
}

// TestClusterCurveComposition: the cluster curve of n identical nodes is
// the single-node curve scaled by n, so the normalized curves (and
// therefore the metrics) coincide — why Table 8's homogeneous columns
// equal Table 7.
func TestClusterCurveComposition(t *testing.T) {
	single := Linear(units.Watts(1.8), units.Watts(2.43), 64)
	clusterCurve := single.Scale(128)
	ms, mc := ComputeMetrics(single), ComputeMetrics(clusterCurve)
	if math.Abs(ms.DPR-mc.DPR) > 1e-9 || math.Abs(ms.EPM-mc.EPM) > 1e-9 {
		t.Error("homogeneous scaling changed proportionality metrics")
	}
	for _, u := range []float64{0.2, 0.5, 0.8} {
		if math.Abs(single.NormalizedAt(u)-clusterCurve.NormalizedAt(u)) > 1e-12 {
			t.Errorf("normalized curves differ at u=%g", u)
		}
	}
}

func TestNormalizedAtZeroPeak(t *testing.T) {
	c := Curve{U: []float64{0, 1}, P: []float64{0, 0}}
	if got := c.NormalizedAt(0.5); got != 0 {
		t.Errorf("zero-peak normalized = %g", got)
	}
}
