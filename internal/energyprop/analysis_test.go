package energyprop

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/workload"
)

func epAnalysis(t *testing.T) *Analysis {
	t.Helper()
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	return analyze(t, cat, reg, workload.NameEP,
		cluster.FullNodes(a9, 8), cluster.FullNodes(k10, 4))
}

func TestAnalysisPowerEndpoints(t *testing.T) {
	a := epAnalysis(t)
	if got := a.PowerAt(0); stats.RelErr(got, float64(a.Result.IdlePower)) > 1e-12 {
		t.Errorf("P(0) = %g, want idle %v", got, a.Result.IdlePower)
	}
	if got := a.PowerAt(1); stats.RelErr(got, float64(a.Result.BusyPower)) > 1e-12 {
		t.Errorf("P(1) = %g, want busy %v", got, a.Result.BusyPower)
	}
	if got := a.NormalizedPowerAt(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("normalized P(1) = %g, want 1", got)
	}
}

func TestAnalysisThroughputLinear(t *testing.T) {
	a := epAnalysis(t)
	full := a.ThroughputAt(1)
	if stats.RelErr(full, float64(a.Result.Throughput)) > 1e-12 {
		t.Errorf("throughput(1) = %g, want %v", full, a.Result.Throughput)
	}
	if got := a.ThroughputAt(0.5); stats.RelErr(got, full/2) > 1e-12 {
		t.Errorf("throughput(0.5) = %g, want half of %g", got, full)
	}
	if got := a.PPRAt(0); got != 0 {
		t.Errorf("PPR at zero utilization = %g, want 0 (no work done)", got)
	}
}

func TestAnalysisQueueAndResponse(t *testing.T) {
	a := epAnalysis(t)
	q, err := a.Queue(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(q.Rho(), 0.6) > 1e-12 {
		t.Errorf("queue rho = %g", q.Rho())
	}
	r50, err := a.ResponsePercentileAt(0.6, 50)
	if err != nil {
		t.Fatal(err)
	}
	r99, err := a.ResponsePercentileAt(0.6, 99)
	if err != nil {
		t.Fatal(err)
	}
	if r50 < float64(a.Result.Time) || r99 <= r50 {
		t.Errorf("percentiles disordered: p50=%g p99=%g T=%v", r50, r99, a.Result.Time)
	}
	if _, err := a.ResponsePercentileAt(1.5, 95); err == nil {
		t.Error("utilization > 1 accepted")
	}
}

func TestAnalysisSweep(t *testing.T) {
	a := epAnalysis(t)
	grid := stats.Linspace(0.1, 1, 10)
	ys := a.Sweep(grid, a.PowerAt)
	if len(ys) != len(grid) {
		t.Fatalf("sweep length %d", len(ys))
	}
	for i, u := range grid {
		if ys[i] != a.PowerAt(u) {
			t.Fatalf("sweep[%d] mismatch", i)
		}
	}
}

// TestEnergyOverWindow: the Section II-B window accounting — E(u) =
// u*T*P_busy + (1-u)*T*P_idle — with its endpoints and linearity.
func TestEnergyOverWindow(t *testing.T) {
	a := epAnalysis(t)
	const T = 100.0
	idle := a.EnergyOverWindow(0, T)
	if stats.RelErr(idle, float64(a.Result.IdlePower)*T) > 1e-12 {
		t.Errorf("E(0) = %g", idle)
	}
	full := a.EnergyOverWindow(1, T)
	if stats.RelErr(full, float64(a.Result.BusyPower)*T) > 1e-12 {
		t.Errorf("E(1) = %g", full)
	}
	mid := a.EnergyOverWindow(0.5, T)
	if stats.RelErr(mid, (idle+full)/2) > 1e-12 {
		t.Errorf("E(0.5) = %g not the midpoint", mid)
	}
	if got := a.EnergyOverWindow(0.5, -1); got != 0 {
		t.Errorf("negative window = %g, want 0", got)
	}
}

func TestAnalysisString(t *testing.T) {
	a := epAnalysis(t)
	s := a.String()
	for _, frag := range []string{"EP", "A9", "K10", "DPR", "IPR", "EPM"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}
