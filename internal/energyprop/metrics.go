package energyprop

import (
	"math"

	"repro/internal/stats"
)

// Metrics bundles the cumulative energy-proportionality metrics of
// Table 3 for one power curve.
type Metrics struct {
	// DPR is the dynamic power range in percent: 100 - P_idle[% of peak].
	DPR float64
	// IPR is the idle-to-peak power ratio P_idle/P_peak.
	IPR float64
	// EPM is the energy proportionality metric of Ryckbosch et al.:
	// 1 - (int P_server du - int P_ideal du) / int P_ideal du, where
	// P_ideal(u) = P_peak * u. One means perfectly proportional, zero
	// means constant power.
	EPM float64
	// LDR is the linear deviation ratio. The paper reports LDR equal to
	// EPM for every workload ("the EPM and LDR values are equal to
	// 1 - IPR", Section III-B), which holds when LDR is computed as the
	// deviation of the curve's fitted linear slope from the ideal slope:
	// LDR = slope(P)/P_peak for a least-squares line fit. That is the
	// definition used here; ChordLDR provides the alternative
	// literal-deviation reading of Varsamopoulos et al.
	LDR float64
	// ChordLDR is the signed maximum relative deviation of the curve
	// from its own idle-to-peak chord (the Table 3 formula read
	// literally): zero for a linear server, negative for sub-linear,
	// positive for super-linear.
	ChordLDR float64
}

// ComputeMetrics evaluates the cumulative metrics for the curve.
func ComputeMetrics(c Curve) Metrics {
	peak := c.Peak()
	idle := c.Idle()
	var m Metrics
	if peak <= 0 {
		return m
	}
	m.IPR = idle / peak
	m.DPR = 100 * (1 - m.IPR)

	// EPM: integrate the actual and ideal curves over u in [0,1].
	actual, err := stats.Trapezoid(c.U, c.P)
	if err != nil {
		return m
	}
	ideal := peak / 2
	m.EPM = 1 - (actual-ideal)/ideal

	// LDR: least-squares slope of the power curve over the ideal slope.
	m.LDR = fitSlope(c.U, c.P) / peak

	// ChordLDR: max |deviation| (signed) from the idle-to-peak chord.
	m.ChordLDR = chordLDR(c)
	return m
}

// fitSlope returns the least-squares slope of y over x.
func fitSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy stats.KahanSum
	for i := range x {
		sx.Add(x[i])
		sy.Add(y[i])
		sxx.Add(x[i] * x[i])
		sxy.Add(x[i] * y[i])
	}
	den := n*sxx.Sum() - sx.Sum()*sx.Sum()
	if den == 0 {
		return 0
	}
	return (n*sxy.Sum() - sx.Sum()*sy.Sum()) / den
}

// chordLDR evaluates the literal Table 3 formula: the deviation from the
// line ((P_peak - P_idle) u + P_idle), normalized by that line, signed,
// with the maximum taken over |.|.
func chordLDR(c Curve) float64 {
	idle, peak := c.Idle(), c.Peak()
	best := 0.0
	for i, u := range c.U {
		line := (peak-idle)*u + idle
		if line <= 0 {
			continue
		}
		dev := (c.P[i] - line) / line
		if math.Abs(dev) > math.Abs(best) {
			best = dev
		}
	}
	return best
}

// PG returns the proportionality gap at utilization u (Table 3):
// (P(u) - P_ideal(u)) / P_ideal(u) with P_ideal(u) = P_peak*u. Lower is
// more proportional; the gap diverges as u approaches zero for any
// system with nonzero idle power, which is why the paper plots it only
// for u >= 10%.
func PG(c Curve, u float64) float64 {
	peak := c.Peak()
	ideal := peak * u
	if ideal <= 0 {
		return math.Inf(1)
	}
	return (c.At(u) - ideal) / ideal
}

// SublinearAt reports whether the curve consumes less than the ideal
// proportional power at utilization u, i.e. falls below the ideal line.
// For curves normalized against their own peak this never happens at
// u=1; it is meaningful for reference-normalized cluster curves
// (see Reference below).
func SublinearAt(c Curve, u float64) bool {
	return PG(c, u) < 0
}

// Reference normalizes a configuration's power curve against a
// *reference* peak power — the mechanism behind Figures 9 and 10, where
// Pareto-frontier configurations are drawn against the ideal
// proportionality line of the maximum configuration (32 A9 + 12 K10).
// Configurations that drop brawny nodes consume less absolute power and
// can fall below that shared ideal line: sub-linear energy
// proportionality, the paper's "scaling the energy proportionality
// wall".
type Reference struct {
	// PeakPower is the reference peak (watts) all curves normalize to.
	PeakPower float64
}

// NormalizedAt returns P_cfg(u)/P_ref,peak.
func (r Reference) NormalizedAt(c Curve, u float64) float64 {
	if r.PeakPower <= 0 {
		return 0
	}
	return c.At(u) / r.PeakPower
}

// PG returns the proportionality gap of the curve against the reference
// ideal line u * P_ref,peak.
func (r Reference) PG(c Curve, u float64) float64 {
	ideal := r.PeakPower * u
	if ideal <= 0 {
		return math.Inf(1)
	}
	return (c.At(u) - ideal) / ideal
}

// SublinearAt reports whether the configuration consumes less power at
// utilization u than the reference's ideal proportional system.
func (r Reference) SublinearAt(c Curve, u float64) bool {
	return r.PG(c, u) < 0
}

// SublinearRange returns the utilization interval [lo, hi] (within the
// probe grid) over which the curve is sub-linear against the reference,
// or ok=false if it never is.
func (r Reference) SublinearRange(c Curve, grid []float64) (lo, hi float64, ok bool) {
	for _, u := range grid {
		if u <= 0 {
			continue
		}
		if r.SublinearAt(c, u) {
			if !ok {
				lo, ok = u, true
			}
			hi = u
		}
	}
	return lo, hi, ok
}
