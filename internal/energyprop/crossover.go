package energyprop

import (
	"errors"
	"math"
)

// SublinearCrossover returns the utilization u* at which a linear
// configuration curve crosses the reference's ideal proportionality
// line and becomes sub-linear: for u > u* the configuration consumes
// less than u times the reference peak.
//
// For the model's linear curves this is closed form. The configuration
// draws P(u) = idle + u*(peak-idle); the reference ideal is u*P_ref.
// Equality gives
//
//	u* = idle / (P_ref - (peak - idle))
//
// ok is false when the configuration is never sub-linear on (0, 1]
// (its slope exceeds the reference peak, or the crossover falls beyond
// full utilization).
func (r Reference) SublinearCrossover(c Curve) (u float64, ok bool) {
	idle, peak := c.Idle(), c.Peak()
	den := r.PeakPower - (peak - idle)
	if den <= 0 {
		return 0, false // slope too steep: never crosses below ideal
	}
	u = idle / den
	if u >= 1 {
		return 0, false
	}
	if u < 0 {
		u = 0
	}
	return u, true
}

// CrossoverNumeric finds the sub-linear crossover by bisection on the
// (possibly non-linear) sampled curve. It returns ok=false when the
// curve never dips below the reference ideal on (lo, 1].
func (r Reference) CrossoverNumeric(c Curve, tol float64) (float64, bool) {
	if tol <= 0 {
		tol = 1e-9
	}
	gap := func(u float64) float64 { return c.At(u) - r.PeakPower*u }
	const lo = 1e-6
	if gap(lo) <= 0 {
		return lo, true // sub-linear from the start (zero idle power)
	}
	if gap(1) > 0 {
		return 0, false
	}
	a, b := lo, 1.0
	for b-a > tol {
		mid := (a + b) / 2
		if gap(mid) > 0 {
			a = mid
		} else {
			b = mid
		}
	}
	return (a + b) / 2, true
}

// EnergySavedBelowIdeal integrates max(0, ideal - P(u)) over [0,1]: the
// area by which the configuration undercuts the reference's ideal
// proportional system, in watt-units of utilization. It quantifies "how
// far the proportionality wall was scaled" for Figures 9/10.
func (r Reference) EnergySavedBelowIdeal(c Curve) float64 {
	if len(c.U) < 2 {
		return 0
	}
	total := 0.0
	for i := 1; i < len(c.U); i++ {
		// Integrate the clamped difference on this panel with the
		// trapezoid rule; panels are fine enough that clamping at the
		// endpoints is adequate.
		d0 := r.PeakPower*c.U[i-1] - c.P[i-1]
		d1 := r.PeakPower*c.U[i] - c.P[i]
		if d0 < 0 {
			d0 = 0
		}
		if d1 < 0 {
			d1 = 0
		}
		total += (c.U[i] - c.U[i-1]) * (d0 + d1) / 2
	}
	return total
}

// WallScaling summarizes how a set of configuration curves relates to a
// shared reference: which are sub-linear, from which utilization, and
// by how much area.
type WallScaling struct {
	// Crossover is the sub-linear onset utilization per curve
	// (NaN when never sub-linear).
	Crossover []float64
	// Area is EnergySavedBelowIdeal per curve.
	Area []float64
	// SublinearCount is the number of sub-linear curves.
	SublinearCount int
}

// AnalyzeWall evaluates the wall-scaling summary for the curves.
func (r Reference) AnalyzeWall(curves []Curve) (WallScaling, error) {
	if len(curves) == 0 {
		return WallScaling{}, errors.New("energyprop: no curves")
	}
	w := WallScaling{
		Crossover: make([]float64, len(curves)),
		Area:      make([]float64, len(curves)),
	}
	for i, c := range curves {
		u, ok := r.SublinearCrossover(c)
		if ok {
			w.Crossover[i] = u
			w.SublinearCount++
		} else {
			w.Crossover[i] = math.NaN()
		}
		w.Area[i] = r.EnergySavedBelowIdeal(c)
	}
	return w, nil
}
