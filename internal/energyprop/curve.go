// Package energyprop implements the paper's primary contribution: the
// energy-proportionality extensions of Section II-B. It models the power
// of a server or cluster as a function of utilization via the M/D/1
// arrival process, and computes the proportionality metrics of Table 3 —
// Dynamic Power Range (DPR), Idle-to-Peak Ratio (IPR), Energy
// Proportionality Metric (EPM), Linear Deviation Ratio (LDR) and the
// per-utilization Proportionality Gap (PG) — together with the
// Performance-to-Power Ratio (PPR) across utilization levels.
package energyprop

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
)

// Curve is a power-versus-utilization curve P(u) for u in [0, 1].
// Utilization follows the paper's M/D/1 construction: u is the fraction
// of the observation window the system spends executing jobs.
type Curve struct {
	// U holds utilization fractions, strictly ascending, starting at 0
	// and ending at 1.
	U []float64
	// P holds the corresponding average power draws in watts.
	P []float64
}

// NewCurve validates and wraps sampled (u, P) points.
func NewCurve(u, p []float64) (Curve, error) {
	if len(u) != len(p) {
		return Curve{}, errors.New("energyprop: curve sample lengths differ")
	}
	if len(u) < 2 {
		return Curve{}, errors.New("energyprop: curve needs at least two samples")
	}
	if u[0] != 0 || u[len(u)-1] != 1 {
		return Curve{}, fmt.Errorf("energyprop: curve must span [0,1], got [%g,%g]", u[0], u[len(u)-1])
	}
	for i := 1; i < len(u); i++ {
		if u[i] <= u[i-1] {
			return Curve{}, errors.New("energyprop: utilization samples not strictly ascending")
		}
	}
	for _, v := range p {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return Curve{}, fmt.Errorf("energyprop: invalid power sample %g", v)
		}
	}
	return Curve{U: u, P: p}, nil
}

// Linear returns the paper's model curve: the straight line from
// (0, idle) to (1, peak), sampled at n+1 points. Under the M/D/1
// utilization model with a fixed configuration, average power over the
// observation window is exactly this line (Section II-B).
func Linear(idle, peak units.Watts, n int) Curve {
	if n < 1 {
		n = 1
	}
	u := stats.Linspace(0, 1, n+1)
	p := make([]float64, len(u))
	for i, x := range u {
		p[i] = float64(idle) + x*(float64(peak)-float64(idle))
	}
	return Curve{U: u, P: p}
}

// FromModel builds the utilization curve of a configuration running a
// workload: idle power at u=0 rising linearly to the busy power E_P/T_P
// at u=1, per the M/D/1 window accounting E(u) = u*T*P_busy + (1-u)*T*P_idle.
func FromModel(res model.Result, n int) Curve {
	return Linear(res.IdlePower, res.BusyPower, n)
}

// Idle returns P(0).
func (c Curve) Idle() float64 { return c.P[0] }

// Peak returns P(1).
func (c Curve) Peak() float64 { return c.P[len(c.P)-1] }

// At returns P(u) by linear interpolation. u outside [0,1] is clamped.
func (c Curve) At(u float64) float64 {
	if u <= c.U[0] {
		return c.P[0]
	}
	if u >= c.U[len(c.U)-1] {
		return c.P[len(c.P)-1]
	}
	// Binary search for the bracketing panel.
	lo, hi := 0, len(c.U)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if c.U[mid] <= u {
			lo = mid
		} else {
			hi = mid
		}
	}
	frac := (u - c.U[lo]) / (c.U[hi] - c.U[lo])
	return c.P[lo]*(1-frac) + c.P[hi]*frac
}

// NormalizedAt returns P(u)/P_peak, the percentage-of-peak quantity the
// paper's Figures 5, 7, 9 and 10 plot (as a fraction, not percent).
func (c Curve) NormalizedAt(u float64) float64 {
	peak := c.Peak()
	if peak <= 0 {
		return 0
	}
	return c.At(u) / peak
}

// Scale returns the curve with every power multiplied by f (e.g. to
// aggregate n identical nodes).
func (c Curve) Scale(f float64) Curve {
	p := make([]float64, len(c.P))
	for i, v := range c.P {
		p[i] = v * f
	}
	return Curve{U: append([]float64(nil), c.U...), P: p}
}

// Add composes two curves sampled on the same utilization grid — the
// cluster-wide curve of a heterogeneous mix whose node groups share a
// common idling schedule (Section II-D: "the idling period of all nodes
// in a system configuration is approximately the same").
func (c Curve) Add(o Curve) (Curve, error) {
	if len(c.U) != len(o.U) {
		return Curve{}, errors.New("energyprop: cannot add curves on different grids")
	}
	for i := range c.U {
		if c.U[i] != o.U[i] {
			return Curve{}, errors.New("energyprop: cannot add curves on different grids")
		}
	}
	p := make([]float64, len(c.P))
	for i := range p {
		p[i] = c.P[i] + o.P[i]
	}
	return Curve{U: append([]float64(nil), c.U...), P: p}, nil
}
