package energyprop

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func setup(t *testing.T) (*hardware.Catalog, *workload.Registry) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatalf("PaperRegistry: %v", err)
	}
	return cat, reg
}

func analyze(t *testing.T, cat *hardware.Catalog, reg *workload.Registry, wl string, groups ...cluster.Group) *Analysis {
	t.Helper()
	p, err := reg.Lookup(wl)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(cluster.MustConfig(groups...), p, model.Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// paperTable7 holds the published single-node metrics (DPR percent).
var paperTable7 = map[string]map[string]float64{
	"EP":           {"A9": 25.97, "K10": 34.57},
	"memcached":    {"A9": 16.78, "K10": 11.05},
	"x264":         {"A9": 35.54, "K10": 38.41},
	"blackscholes": {"A9": 32.11, "K10": 37.30},
	"Julius":       {"A9": 30.48, "K10": 38.10},
	"RSA-2048":     {"A9": 35.62, "K10": 41.19},
}

// TestTable7SingleNodeMetrics reproduces Table 7: DPR, IPR, EPM, LDR for
// single A9 and K10 nodes across all six workloads.
func TestTable7SingleNodeMetrics(t *testing.T) {
	cat, reg := setup(t)
	for wl, nodes := range paperTable7 {
		for node, wantDPR := range nodes {
			nt, err := cat.Lookup(node)
			if err != nil {
				t.Fatal(err)
			}
			a := analyze(t, cat, reg, wl, cluster.FullNodes(nt, 1))
			m := a.Metrics()
			if math.Abs(m.DPR-wantDPR) > 0.5 {
				t.Errorf("%s on %s: DPR = %.2f, want %.2f", wl, node, m.DPR, wantDPR)
			}
			wantIPR := 1 - wantDPR/100
			if math.Abs(m.IPR-wantIPR) > 0.005 {
				t.Errorf("%s on %s: IPR = %.4f, want %.4f", wl, node, m.IPR, wantIPR)
			}
			// The paper observes EPM = LDR = 1 - IPR for all entries.
			if math.Abs(m.EPM-(1-wantIPR)) > 0.005 {
				t.Errorf("%s on %s: EPM = %.4f, want %.4f", wl, node, m.EPM, 1-wantIPR)
			}
			if math.Abs(m.LDR-(1-wantIPR)) > 0.005 {
				t.Errorf("%s on %s: LDR = %.4f, want %.4f", wl, node, m.LDR, 1-wantIPR)
			}
			// Model curves are linear, so the literal chord deviation
			// must vanish.
			if math.Abs(m.ChordLDR) > 1e-9 {
				t.Errorf("%s on %s: ChordLDR = %g, want 0 for linear curve", wl, node, m.ChordLDR)
			}
		}
	}
}

// paperTable8 holds the published cluster-wide DPR values for the 1 kW
// budget mixes (wimpy count, brawny count) -> DPR.
var paperTable8 = map[string]map[[2]int]float64{
	"EP":           {{128, 0}: 25.97, {64, 8}: 32.66, {0, 16}: 34.57},
	"memcached":    {{128, 0}: 16.78, {64, 8}: 12.44, {0, 16}: 11.05},
	"x264":         {{128, 0}: 35.54, {64, 8}: 37.73, {0, 16}: 38.41},
	"blackscholes": {{128, 0}: 32.11, {64, 8}: 36.10, {0, 16}: 37.30},
	"Julius":       {{128, 0}: 30.48, {64, 8}: 36.39, {0, 16}: 38.09},
	"RSA-2048":     {{128, 0}: 35.62, {64, 8}: 39.92, {0, 16}: 41.19},
}

// TestTable8ClusterMetrics reproduces Table 8's cluster-wide DPR for the
// homogeneous and 64:8 heterogeneous mixes.
func TestTable8ClusterMetrics(t *testing.T) {
	cat, reg := setup(t)
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	for wl, mixes := range paperTable8 {
		for mix, wantDPR := range mixes {
			var groups []cluster.Group
			if mix[0] > 0 {
				groups = append(groups, cluster.FullNodes(a9, mix[0]))
			}
			if mix[1] > 0 {
				groups = append(groups, cluster.FullNodes(k10, mix[1]))
			}
			a := analyze(t, cat, reg, wl, groups...)
			m := a.Metrics()
			// The 64:8 heterogeneous DPR depends on how the workload
			// splits across node types; allow a slightly wider band
			// there than on the homogeneous columns.
			tol := 0.5
			if mix[0] > 0 && mix[1] > 0 {
				tol = 1.5
			}
			if math.Abs(m.DPR-wantDPR) > tol {
				t.Errorf("%s on %dA9:%dK10: DPR = %.2f, want %.2f", wl, mix[0], mix[1], m.DPR, wantDPR)
			}
		}
	}
}

// TestK10ClusterIdlePower checks Section III-C's observation that the
// 16-node K10 cluster idles around 720 W, about three times the A9
// cluster's idle draw.
func TestK10ClusterIdlePower(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	k10Cluster := analyze(t, cat, reg, "EP", cluster.FullNodes(k10, 16))
	a9Cluster := analyze(t, cat, reg, "EP", cluster.FullNodes(a9, 128))
	if got := float64(k10Cluster.Result.IdlePower); math.Abs(got-720) > 1 {
		t.Errorf("K10 cluster idle power = %.1f W, want ~720 W", got)
	}
	ratio := float64(k10Cluster.Result.IdlePower) / float64(a9Cluster.Result.IdlePower)
	if ratio < 2.5 || ratio > 3.5 {
		t.Errorf("K10/A9 idle ratio = %.2f, paper says about three times", ratio)
	}
}

// TestLinearCurveMetricIdentity is the paper's Section III-B algebra as
// a property: for any linear curve, EPM = LDR = 1 - IPR and
// DPR = (1-IPR)*100.
func TestLinearCurveMetricIdentity(t *testing.T) {
	f := func(idleRaw, spanRaw uint16) bool {
		idle := 1 + float64(idleRaw%5000)/10
		span := 1 + float64(spanRaw%5000)/10
		c := Linear(units.Watts(idle), units.Watts(idle+span), 64)
		m := ComputeMetrics(c)
		want := 1 - idle/(idle+span)
		return math.Abs(m.EPM-want) < 1e-9 &&
			math.Abs(m.LDR-want) < 1e-9 &&
			math.Abs(m.DPR-100*want) < 1e-6 &&
			math.Abs(m.ChordLDR) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPGDivergesAtLowUtilization checks that the proportionality gap
// grows toward low utilization for any non-proportional system.
func TestPGDivergesAtLowUtilization(t *testing.T) {
	c := Linear(50, 100, 100)
	prev := PG(c, 0.9)
	for _, u := range []float64{0.7, 0.5, 0.3, 0.1} {
		g := PG(c, u)
		if g <= prev {
			t.Errorf("PG(%g) = %g not above PG at higher utilization %g", u, g, prev)
		}
		prev = g
	}
	if !math.IsInf(PG(c, 0), 1) {
		t.Error("PG at zero utilization should be +Inf")
	}
}

// TestSuperAndSubLinearCurves exercises EPM/ChordLDR signs on curved
// (non-model) power profiles like Figure 2's.
func TestSuperAndSubLinearCurves(t *testing.T) {
	u := stats.Linspace(0, 1, 101)
	super := make([]float64, len(u)) // bows above the chord
	sub := make([]float64, len(u))   // bows below the chord
	for i, x := range u {
		super[i] = 20 + 80*math.Sqrt(x)
		sub[i] = 20 + 80*x*x
	}
	cs, err := NewCurve(u, super)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCurve(u, sub)
	if err != nil {
		t.Fatal(err)
	}
	if m := ComputeMetrics(cs); m.ChordLDR <= 0 {
		t.Errorf("super-linear curve ChordLDR = %g, want > 0", m.ChordLDR)
	}
	if m := ComputeMetrics(cb); m.ChordLDR >= 0 {
		t.Errorf("sub-linear curve ChordLDR = %g, want < 0", m.ChordLDR)
	}
	ms, mb := ComputeMetrics(cs), ComputeMetrics(cb)
	if ms.EPM >= mb.EPM {
		t.Errorf("super-linear EPM %g should be below sub-linear EPM %g", ms.EPM, mb.EPM)
	}
}

// TestReferenceNormalizationExposesSublinear reproduces the Figure 9
// mechanism in miniature: a smaller config normalized against a larger
// reference peak can fall below the ideal line.
func TestReferenceNormalizationExposesSublinear(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	ref := analyze(t, cat, reg, "EP", cluster.FullNodes(a9, 32), cluster.FullNodes(k10, 12))
	small := analyze(t, cat, reg, "EP", cluster.FullNodes(a9, 25), cluster.FullNodes(k10, 5))
	r := Reference{PeakPower: float64(ref.Result.BusyPower)}
	// Against its own peak the small config is never sub-linear...
	if SublinearAt(small.CurveRes, 0.5) {
		t.Error("config sub-linear against its own peak; linear curves cannot be")
	}
	// ...but against the reference peak it must dip below ideal at high
	// utilization (it burns far less absolute power).
	if !r.SublinearAt(small.CurveRes, 0.9) {
		t.Errorf("25A9:5K10 not sub-linear at u=0.9 against 32A9:12K10 reference (norm=%.3f)",
			r.NormalizedAt(small.CurveRes, 0.9))
	}
	lo, hi, ok := r.SublinearRange(small.CurveRes, stats.Linspace(0.05, 1, 96))
	if !ok {
		t.Fatal("expected a sub-linear range")
	}
	if lo >= hi {
		t.Errorf("degenerate sub-linear range [%g, %g]", lo, hi)
	}
}

// TestPPRDecreasesWithUtilization: throughput scales with u but power has
// an idle floor, so PPR must improve monotonically with utilization.
func TestPPRIncreasesWithUtilization(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	a := analyze(t, cat, reg, "EP", cluster.FullNodes(a9, 1))
	prev := -1.0
	for _, u := range stats.Linspace(0.1, 1, 10) {
		v := a.PPRAt(u)
		if v <= prev {
			t.Errorf("PPR(%g) = %g not increasing", u, v)
		}
		prev = v
	}
	// At u=1 it must equal the Table 6 value.
	want := workload.PaperPPR["EP"]["A9"]
	if stats.RelErr(a.PPRAt(1), want) > 0.01 {
		t.Errorf("PPR(1) = %g, want %g", a.PPRAt(1), want)
	}
}
