package energyprop

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/units"
)

// properties_test.go checks the mutual-consistency identities of the
// Table 3 metrics on randomized power curves, rather than pinned
// numbers: the identities hold for *every* curve in a family, so any
// regression in one metric shows up as a broken relation to the others.

// randMonotoneCurve draws a random nondecreasing power curve from idle
// to peak on an n-point uniform utilization grid.
func randMonotoneCurve(rng *stats.RNG, n int, idle, peak float64) Curve {
	// n-1 nonnegative increments summing to peak-idle.
	incs := make([]float64, n-1)
	var sum float64
	for i := range incs {
		incs[i] = rng.Float64()
		sum += incs[i]
	}
	u := make([]float64, n)
	p := make([]float64, n)
	p[0] = idle
	for i := 1; i < n; i++ {
		u[i] = float64(i) / float64(n-1)
		p[i] = p[i-1]
		if sum > 0 {
			p[i] += (peak - idle) * incs[i-1] / sum
		}
	}
	p[n-1] = peak // pin the endpoint against rounding drift
	c, err := NewCurve(u, p)
	if err != nil {
		panic(err)
	}
	return c
}

// TestLinearCurveIdentities: for any linear idle->peak curve the paper's
// Section III-B identity holds — EPM = LDR = 1 - IPR — with
// DPR = 100*(1-IPR) by definition and zero chord deviation.
func TestLinearCurveIdentities(t *testing.T) {
	rng := stats.NewRNG(1)
	for trial := 0; trial < 200; trial++ {
		peak := 50 + 1500*rng.Float64()
		idle := peak * rng.Float64()
		m := ComputeMetrics(Linear(units.Watts(idle), units.Watts(peak), 101))

		wantIPR := idle / peak
		if math.Abs(m.IPR-wantIPR) > 1e-12 {
			t.Fatalf("idle=%g peak=%g: IPR=%g, want %g", idle, peak, m.IPR, wantIPR)
		}
		if math.Abs(m.DPR-100*(1-m.IPR)) > 1e-9 {
			t.Fatalf("DPR=%g inconsistent with IPR=%g", m.DPR, m.IPR)
		}
		if math.Abs(m.EPM-(1-m.IPR)) > 1e-9 {
			t.Fatalf("linear curve: EPM=%g, want 1-IPR=%g", m.EPM, 1-m.IPR)
		}
		if math.Abs(m.LDR-m.EPM) > 1e-9 {
			t.Fatalf("linear curve: LDR=%g != EPM=%g", m.LDR, m.EPM)
		}
		if math.Abs(m.ChordLDR) > 1e-9 {
			t.Fatalf("linear curve deviates from its own chord: %g", m.ChordLDR)
		}
	}
}

// TestIdealProportionalCurve: zero idle power is the EPM=1 extreme and
// closes the proportionality gap at every utilization.
func TestIdealProportionalCurve(t *testing.T) {
	c := Linear(0, 400, 101)
	m := ComputeMetrics(c)
	if math.Abs(m.EPM-1) > 1e-12 || m.IPR != 0 || math.Abs(m.DPR-100) > 1e-12 {
		t.Fatalf("ideal curve metrics: %+v", m)
	}
	for _, u := range stats.Linspace(0.05, 1, 20) {
		if pg := PG(c, u); math.Abs(pg) > 1e-9 {
			t.Fatalf("ideal curve PG(%g)=%g, want 0", u, pg)
		}
	}
}

// TestConstantPowerCurve: a totally unproportional server pins the other
// extreme — EPM=0, IPR=1, DPR=0 — and its proportionality gap at
// utilization u is exactly (1-u)/u.
func TestConstantPowerCurve(t *testing.T) {
	c := Linear(300, 300, 101)
	m := ComputeMetrics(c)
	if math.Abs(m.EPM) > 1e-12 || math.Abs(m.IPR-1) > 1e-12 || math.Abs(m.DPR) > 1e-12 {
		t.Fatalf("constant curve metrics: %+v", m)
	}
	if math.Abs(m.LDR) > 1e-9 || math.Abs(m.ChordLDR) > 1e-9 {
		t.Fatalf("constant curve slope metrics: %+v", m)
	}
	for _, u := range stats.Linspace(0.1, 1, 10) {
		want := (1 - u) / u
		if pg := PG(c, u); math.Abs(pg-want) > 1e-9 {
			t.Fatalf("constant curve PG(%g)=%g, want %g", u, pg, want)
		}
	}
}

// TestRandomCurveBounds: on any monotone curve the metrics stay inside
// their defined ranges and keep their defining relations.
func TestRandomCurveBounds(t *testing.T) {
	rng := stats.NewRNG(2)
	for trial := 0; trial < 300; trial++ {
		peak := 50 + 1500*rng.Float64()
		idle := peak * rng.Float64()
		c := randMonotoneCurve(rng, 2+rng.Intn(100), idle, peak)
		m := ComputeMetrics(c)

		if m.IPR < 0 || m.IPR > 1 {
			t.Fatalf("IPR=%g outside [0,1]", m.IPR)
		}
		if m.DPR < 0 || m.DPR > 100 {
			t.Fatalf("DPR=%g outside [0,100]", m.DPR)
		}
		if m.EPM < 0 || m.EPM > 2 {
			t.Fatalf("EPM=%g outside [0,2]", m.EPM)
		}
		if math.Abs(m.DPR-100*(1-m.IPR)) > 1e-9 {
			t.Fatalf("DPR=%g inconsistent with IPR=%g", m.DPR, m.IPR)
		}
		// A monotone curve ending at peak sits above the ideal line at
		// u=1, so the gap there is >= 0 only when power == peak exactly.
		if pg := PG(c, 1); math.Abs(pg) > 1e-12 {
			t.Fatalf("PG(1)=%g for a curve pinned at its peak", pg)
		}
	}
}

// TestChordLDRSign: curves bowed below their idle-to-peak chord
// (convex) report ChordLDR <= 0; curves bowed above (concave) >= 0.
func TestChordLDRSign(t *testing.T) {
	rng := stats.NewRNG(3)
	n := 101
	u := stats.Linspace(0, 1, n)
	for trial := 0; trial < 100; trial++ {
		peak := 100 + 1000*rng.Float64()
		idle := peak * 0.5 * rng.Float64()
		gamma := 1 + 3*rng.Float64() // u^gamma is convex for gamma>1
		below := make([]float64, n)
		above := make([]float64, n)
		for i, x := range u {
			below[i] = idle + (peak-idle)*math.Pow(x, gamma)
			above[i] = idle + (peak-idle)*math.Pow(x, 1/gamma)
		}
		cb, err := NewCurve(u, below)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := NewCurve(u, above)
		if err != nil {
			t.Fatal(err)
		}
		if m := ComputeMetrics(cb); m.ChordLDR > 1e-12 {
			t.Fatalf("convex curve (gamma=%g) ChordLDR=%g > 0", gamma, m.ChordLDR)
		}
		if m := ComputeMetrics(ca); m.ChordLDR < -1e-12 {
			t.Fatalf("concave curve (gamma=%g) ChordLDR=%g < 0", gamma, m.ChordLDR)
		}
	}
}

// TestMetricsScaleInvariance: every Table 3 metric is dimensionless, so
// uniformly scaling the power curve must not move any of them; PG is
// likewise invariant pointwise.
func TestMetricsScaleInvariance(t *testing.T) {
	rng := stats.NewRNG(4)
	for trial := 0; trial < 100; trial++ {
		peak := 50 + 1500*rng.Float64()
		idle := peak * rng.Float64()
		c := randMonotoneCurve(rng, 2+rng.Intn(60), idle, peak)
		f := math.Exp(10 * (rng.Float64() - 0.5)) // factors across ~4 decades
		cs := c.Scale(f)

		m, ms := ComputeMetrics(c), ComputeMetrics(cs)
		if !closeRel(m.IPR, ms.IPR) || !closeRel(m.DPR, ms.DPR) ||
			!closeRel(m.EPM, ms.EPM) || !closeRel(m.LDR, ms.LDR) ||
			!closeRel(m.ChordLDR, ms.ChordLDR) {
			t.Fatalf("scale %g moved metrics: %+v vs %+v", f, m, ms)
		}
		for _, u := range []float64{0.1, 0.3, 0.5, 0.9, 1} {
			if !closeRel(PG(c, u), PG(cs, u)) {
				t.Fatalf("scale %g moved PG(%g): %g vs %g", f, u, PG(c, u), PG(cs, u))
			}
		}
	}
}

// closeRel compares within 1e-9 relative (or absolute near zero).
func closeRel(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
