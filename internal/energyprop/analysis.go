package energyprop

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Analysis couples a configuration's time-energy model result with the
// M/D/1 utilization sweep, exposing the per-utilization quantities the
// paper's figures plot.
type Analysis struct {
	// Result is the time-energy model outcome for one job.
	Result model.Result
	// CurveRes is the power-versus-utilization curve.
	CurveRes Curve
}

// Analyze evaluates the model for (cfg, wl) and prepares the utilization
// curve with n panels.
func Analyze(cfg cluster.Config, wl *workload.Profile, opt model.Options, n int) (*Analysis, error) {
	res, err := model.Evaluate(cfg, wl, opt)
	if err != nil {
		return nil, err
	}
	return &Analysis{Result: res, CurveRes: FromModel(res, n)}, nil
}

// Metrics returns the cumulative proportionality metrics.
func (a *Analysis) Metrics() Metrics { return ComputeMetrics(a.CurveRes) }

// PowerAt returns the average power at utilization u.
func (a *Analysis) PowerAt(u float64) float64 { return a.CurveRes.At(u) }

// NormalizedPowerAt returns power as a fraction of this configuration's
// own peak (Figures 5 and 7).
func (a *Analysis) NormalizedPowerAt(u float64) float64 { return a.CurveRes.NormalizedAt(u) }

// ThroughputAt returns the work-unit throughput at utilization u. Jobs
// arrive at rate u/T_P and each carries JobUnits work, so throughput
// scales linearly with u up to the busy throughput.
func (a *Analysis) ThroughputAt(u float64) float64 {
	return u * float64(a.Result.Throughput)
}

// PPRAt returns the performance-to-power ratio at utilization u
// (Figures 6 and 8): throughput over average power.
func (a *Analysis) PPRAt(u float64) float64 {
	p := a.PowerAt(u)
	if p <= 0 {
		return 0
	}
	return a.ThroughputAt(u) / p
}

// Queue returns the M/D/1 queue at utilization u: service time T_P,
// arrival rate u/T_P.
func (a *Analysis) Queue(u float64) (queueing.MD1, error) {
	if a.Result.Time <= 0 {
		return queueing.MD1{}, errors.New("energyprop: zero service time")
	}
	return queueing.NewMD1FromUtilization(u, float64(a.Result.Time))
}

// KernelAt returns the queueing kernel selected by spec at utilization
// u, with the configuration's job time T_P as the aggregate service
// time. The default (zero) spec reproduces Queue's M/D/1 exactly; an
// M/G/1 spec adds service-time variability on top of the same mean, and
// an M/M/k spec spreads the capacity over k servers.
func (a *Analysis) KernelAt(u float64, spec queueing.Spec) (queueing.Kernel, error) {
	if a.Result.Time <= 0 {
		return nil, errors.New("energyprop: zero service time")
	}
	return spec.Build(u, float64(a.Result.Time))
}

// ResponsePercentileAt returns the p-th percentile response time at
// utilization u, from the exact M/D/1 waiting-time distribution
// (Figures 11 and 12 plot p=95).
func (a *Analysis) ResponsePercentileAt(u, p float64) (float64, error) {
	q, err := a.Queue(u)
	if err != nil {
		return 0, err
	}
	return q.ResponsePercentile(p)
}

// ResponsePercentileAtKernel is ResponsePercentileAt under an arbitrary
// kernel spec — the sensitivity axis behind the SCV sweeps in
// EXPERIMENTS.md. The default spec matches ResponsePercentileAt bit for
// bit.
func (a *Analysis) ResponsePercentileAtKernel(u, p float64, spec queueing.Spec) (float64, error) {
	k, err := a.KernelAt(u, spec)
	if err != nil {
		return 0, err
	}
	return k.ResponsePercentile(p)
}

// Sweep evaluates f at each utilization of the grid and returns the
// values; a helper for emitting figure series.
func (a *Analysis) Sweep(grid []float64, f func(u float64) float64) []float64 {
	out := make([]float64, len(grid))
	for i, u := range grid {
		out[i] = f(u)
	}
	return out
}

// SweepParallel is Sweep with a worker pool: f must be pure in u. Used
// for the per-point-expensive curves (percentile sweeps); trivially
// cheap f (linear power lookups) gains nothing over Sweep. workers <= 0
// uses GOMAXPROCS.
func (a *Analysis) SweepParallel(grid []float64, workers int, f func(u float64) float64) []float64 {
	span := telemetry.StartSpan("energyprop.sweep").Arg("points", len(grid))
	defer span.End()
	out := make([]float64, len(grid))
	sweep.ForEach(len(grid), workers, func(i int) { out[i] = f(grid[i]) })
	return out
}

// ResponsePercentilesAt computes the p-th percentile response time at
// every utilization of the grid — the U x percentile surface behind
// Figures 11/12 — fanning the searches across a worker pool. Each point
// resolves through the queueing package's scale-invariant percentile
// cache, so across many configurations on a shared utilization grid only
// the first sweep at each (rho, p) pays for a search. workers <= 0 uses
// GOMAXPROCS.
func (a *Analysis) ResponsePercentilesAt(grid []float64, p float64, workers int) ([]float64, error) {
	return a.ResponsePercentilesAtContext(context.Background(), grid, p, workers)
}

// ResponsePercentilesAtContext is ResponsePercentilesAt with
// cancellation: the sweep pool stops dispatching grid points once ctx is
// done and the ctx error is returned — the path by which a serving
// deadline reaches the percentile searches. Points already dispatched
// complete (one per worker at most).
func (a *Analysis) ResponsePercentilesAtContext(ctx context.Context, grid []float64, p float64, workers int) ([]float64, error) {
	return a.ResponsePercentilesAtKernelContext(ctx, grid, p, queueing.DefaultSpec(), workers)
}

// ResponsePercentilesAtKernelContext is the kernel-agnostic grid sweep:
// the same fan-out as ResponsePercentilesAtContext, but each point
// evaluates the kernel selected by spec. With the default spec it is
// ResponsePercentilesAtContext exactly (same cache, same bits).
func (a *Analysis) ResponsePercentilesAtKernelContext(ctx context.Context, grid []float64, p float64, spec queueing.Spec, workers int) ([]float64, error) {
	span := telemetry.StartSpan("energyprop.response_sweep").
		Arg("points", len(grid)).Arg("p", p).Arg("kernel", spec.String())
	defer span.End()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("energyprop: response sweep: %w", err)
	}
	out := make([]float64, len(grid))
	errs := make([]error, len(grid))
	if err := sweep.ForEachContext(ctx, len(grid), workers, func(i int) {
		out[i], errs[i] = a.ResponsePercentileAtKernel(grid[i], p, spec)
	}); err != nil {
		return nil, fmt.Errorf("energyprop: response sweep: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("energyprop: response percentile at u=%g: %w", grid[i], err)
		}
	}
	return out, nil
}

// EnergyOverWindow returns the energy consumed during an observation
// window of length window at utilization u: the busy fraction draws
// P_busy, the remainder draws P_idle (Section II-B's E over period T).
func (a *Analysis) EnergyOverWindow(u, window float64) float64 {
	if window < 0 {
		return 0
	}
	busy := u * window
	idle := window - busy
	return busy*float64(a.Result.BusyPower) + idle*float64(a.Result.IdlePower)
}

// String summarizes the analysis.
func (a *Analysis) String() string {
	m := a.Metrics()
	return fmt.Sprintf("%s on %s: T=%v E=%v idle=%v peak=%v DPR=%.2f IPR=%.2f EPM=%.2f",
		a.Result.Workload, a.Result.Config, a.Result.Time, a.Result.Energy,
		a.Result.IdlePower, a.Result.BusyPower, m.DPR, m.IPR, m.EPM)
}
