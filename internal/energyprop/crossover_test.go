package energyprop

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// TestCrossoverClosedFormVsNumeric: the analytic crossover and the
// bisection on the sampled curve must agree for linear curves.
func TestCrossoverClosedFormVsNumeric(t *testing.T) {
	f := func(idleRaw, peakRaw, refRaw uint16) bool {
		idle := 1 + float64(idleRaw%300)
		peak := idle + 1 + float64(peakRaw%500)
		refPeak := peak * (0.8 + float64(refRaw%400)/100)
		c := Linear(units.Watts(idle), units.Watts(peak), 256)
		r := Reference{PeakPower: refPeak}
		ua, oka := r.SublinearCrossover(c)
		ub, okb := r.CrossoverNumeric(c, 1e-10)
		if oka != okb {
			// Boundary disagreements can only happen within tolerance of
			// u = 1; accept if the analytic crossover is within 1e-6 of 1.
			return !oka && math.Abs(ub-1) < 1e-3 || !okb && math.Abs(ua-1) < 1e-3
		}
		if !oka {
			return true
		}
		return math.Abs(ua-ub) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCrossoverPaper25A97K10 verifies the paper's specific Figure 9
// observation: 25 A9 + 7 K10 becomes sub-linear at 50% utilization
// against the 32 A9 + 12 K10 reference running EP.
func TestCrossoverPaper25A9K10(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	ep, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Analyze(cluster.MustConfig(cluster.FullNodes(a9, 32), cluster.FullNodes(k10, 12)), ep, optsOf(), 100)
	if err != nil {
		t.Fatal(err)
	}
	r := Reference{PeakPower: float64(ref.Result.BusyPower)}

	cfg7, err := Analyze(cluster.MustConfig(cluster.FullNodes(a9, 25), cluster.FullNodes(k10, 7)), ep, optsOf(), 100)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := r.SublinearCrossover(cfg7.CurveRes)
	if !ok {
		t.Fatal("25A9:7K10 never sub-linear")
	}
	if u < 0.40 || u > 0.55 {
		t.Errorf("crossover at %.1f%%, paper says 50%%", 100*u)
	}
	// And (25,8) must cross later than (25,7): more brawny nodes, more
	// idle power.
	cfg8, err := Analyze(cluster.MustConfig(cluster.FullNodes(a9, 25), cluster.FullNodes(k10, 8)), ep, optsOf(), 100)
	if err != nil {
		t.Fatal(err)
	}
	u8, ok8 := r.SublinearCrossover(cfg8.CurveRes)
	if ok8 && u8 <= u {
		t.Errorf("(25,8) crosses at %.2f, not after (25,7)'s %.2f", u8, u)
	}
}

// TestCrossoverMonotoneInBrawnyCount: fewer brawny nodes -> earlier
// sub-linear onset.
func TestCrossoverMonotoneInBrawnyCount(t *testing.T) {
	cat, reg := setup(t)
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	ep, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Analyze(cluster.MustConfig(cluster.FullNodes(a9, 32), cluster.FullNodes(k10, 12)), ep, optsOf(), 100)
	if err != nil {
		t.Fatal(err)
	}
	r := Reference{PeakPower: float64(ref.Result.BusyPower)}
	prev := -1.0
	for k := 2; k <= 10; k += 2 {
		a, err := Analyze(cluster.MustConfig(cluster.FullNodes(a9, 25), cluster.FullNodes(k10, k)), ep, optsOf(), 100)
		if err != nil {
			t.Fatal(err)
		}
		u, ok := r.SublinearCrossover(a.CurveRes)
		if !ok {
			t.Fatalf("25A9:%dK10 never sub-linear", k)
		}
		if u <= prev {
			t.Errorf("crossover not increasing with brawny count: %.3f at k=%d after %.3f", u, k, prev)
		}
		prev = u
	}
}

// TestEnergySavedBelowIdealProperties: the saved area is zero for the
// reference's own ideal line, positive for any curve strictly below it,
// and grows as the curve is scaled down.
func TestEnergySavedBelowIdealProperties(t *testing.T) {
	r := Reference{PeakPower: 100}
	ideal := Linear(0, 100, 100)
	if a := r.EnergySavedBelowIdeal(ideal); a > 1e-9 {
		t.Errorf("ideal line saved area %g, want 0", a)
	}
	low := Linear(5, 40, 100)
	a1 := r.EnergySavedBelowIdeal(low)
	if a1 <= 0 {
		t.Errorf("low curve saved area %g, want > 0", a1)
	}
	lower := low.Scale(0.5)
	if a2 := r.EnergySavedBelowIdeal(lower); a2 <= a1 {
		t.Errorf("halving the curve should grow the area: %g vs %g", a2, a1)
	}
}

func TestAnalyzeWall(t *testing.T) {
	r := Reference{PeakPower: 100}
	curves := []Curve{
		Linear(0, 100, 50),  // the ideal itself: never strictly sub-linear
		Linear(10, 40, 50),  // small config: sub-linear from some u
		Linear(50, 120, 50), // too steep: never sub-linear
	}
	w, err := r.AnalyzeWall(curves)
	if err != nil {
		t.Fatal(err)
	}
	if w.SublinearCount != 1 {
		t.Errorf("sublinear count = %d, want 1", w.SublinearCount)
	}
	if !math.IsNaN(w.Crossover[2]) {
		t.Errorf("steep curve crossover = %g, want NaN", w.Crossover[2])
	}
	if w.Area[1] <= 0 {
		t.Errorf("small config area = %g, want > 0", w.Area[1])
	}
	if _, err := r.AnalyzeWall(nil); err == nil {
		t.Error("empty curve list accepted")
	}
}

// TestCrossoverNumericFlat: a zero-idle proportional-but-cheaper curve
// is sub-linear everywhere.
func TestCrossoverNumericFlat(t *testing.T) {
	r := Reference{PeakPower: 100}
	c := Linear(0, 50, 100)
	u, ok := r.CrossoverNumeric(c, 1e-9)
	if !ok || u > 1e-3 {
		t.Errorf("zero-idle cheap curve crossover = (%g, %v), want ~0", u, ok)
	}
}

// optsOf returns the default model options (helper keeps test lines short).
func optsOf() model.Options { return model.Options{} }
