package queueing

import (
	"sync/atomic"

	"repro/internal/telemetry"
)

// queueingInstruments caches the registry lookups of the distribution
// kernel, so the hot CDF/percentile paths touch only (possibly nil)
// instrument pointers — the same pattern as pareto.sweepInstruments,
// lifted to package level. The cache is keyed by the registry pointer it
// was resolved against: telemetry.SetGlobal swaps are detected by a
// single atomic load plus pointer compare per call.
type queueingInstruments struct {
	reg         *telemetry.Registry
	cdfCalls    *telemetry.Counter
	searches    *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
	tracer      *telemetry.Tracer
}

var instrumentsCache atomic.Pointer[queueingInstruments]

// instruments returns the cached instrument set for the current global
// registry, rebuilding it when the registry changes (including to nil,
// where every instrument is a nil no-op).
func instruments() *queueingInstruments {
	reg := telemetry.Global()
	if ins := instrumentsCache.Load(); ins != nil && ins.reg == reg {
		return ins
	}
	ins := &queueingInstruments{
		reg:         reg,
		cdfCalls:    reg.Counter("queueing.wait_cdf_calls"),
		searches:    reg.Counter("queueing.percentile_searches"),
		cacheHits:   reg.Counter("queueing.percentile_cache_hits"),
		cacheMisses: reg.Counter("queueing.percentile_cache_misses"),
		tracer:      reg.Tracer(),
	}
	instrumentsCache.Store(ins)
	return ins
}
