package queueing

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/stats"
)

// The shared kernel conformance suite: every registered kernel
// parameterization (ConformanceSpecs) is pinned the same way —
// percentiles against the slow reference implementations, CDF/percentile
// inversion, batch-equals-scalar, stability rejection, DES simulation,
// and the cross-kernel limits. A new kernel joins by appearing in
// ConformanceSpecs and growing reference counterparts.
//
// Documented tolerances:
//
//   - conformanceRefTol (1e-9, relative): fast kernel vs slow reference.
//     The references share only the model definition — term-by-term
//     extended-precision Crommelin sums, big.Float Erlang-B ratios,
//     blind bisection instead of bracketed regula falsi.
//   - conformanceDESTolExact (6%): DES vs kernels that are exact for
//     their model (M/D/1, M/G/1 at SCV ∈ {0, 1}, M/M/k) at the suite's
//     fixed seed and 500k-job runs; the slack is autocorrelation-
//     inflated Monte-Carlo noise on p99 at rho = 0.8. Means are exact
//     for every kernel (Pollaczek-Khinchine), so they are always held
//     to this budget.
//   - conformanceDESTolApprox (25%): DES vs the two-moment M/G/1
//     interpolation away from its exact endpoints (SCV ∈ {0.5, 4}).
//     The interpolation matches the mean exactly but the distribution
//     shape only approximately, and only the tail is in scope (the
//     SCV > 1 exponential tail is a heavy-traffic approximation), so
//     approximate kernels are pinned at p ∈ {90, 95, 99} rather than
//     the median.
const (
	conformanceRefTol       = 1e-9
	conformanceDESTolExact  = 0.06
	conformanceDESTolApprox = 0.25
)

var (
	conformanceRhos = []float64{0.3, 0.6, 0.85}
	conformanceDs   = []float64{0.01, 1, 7.3}
	conformancePs   = []float64{50, 95, 99}
)

func buildKernel(t testing.TB, spec Spec, rho, d float64) Kernel {
	t.Helper()
	k, err := spec.Build(rho, d)
	if err != nil {
		t.Fatalf("%v.Build(%g, %g): %v", spec, rho, d, err)
	}
	return k
}

// refWaitPercentile dispatches to the slow reference of the kernel's
// concrete type.
func refWaitPercentile(t testing.TB, k Kernel, p float64) float64 {
	t.Helper()
	var (
		w   float64
		err error
	)
	switch q := k.(type) {
	case MD1:
		w, err = q.waitPercentileReference(p)
	case MG1:
		w, err = q.waitPercentileReference(p)
	case MMK:
		w, err = q.waitPercentileReference(p)
	default:
		t.Fatalf("no reference for kernel %T", k)
	}
	if err != nil {
		t.Fatalf("reference wait percentile: %v", err)
	}
	return w
}

func refResponsePercentile(t testing.TB, k Kernel, p float64) float64 {
	t.Helper()
	var (
		r   float64
		err error
	)
	switch q := k.(type) {
	case MD1:
		// Deterministic service: the sojourn is the wait shifted by D.
		r, err = q.waitPercentileReference(p)
		r += q.D
	case MG1:
		r, err = q.responsePercentileReference(p)
	case MMK:
		r, err = q.responsePercentileReference(p)
	default:
		t.Fatalf("no reference for kernel %T", k)
	}
	if err != nil {
		t.Fatalf("reference response percentile: %v", err)
	}
	return r
}

// conformanceClose compares within conformanceRefTol relative, with an
// absolute floor for the atom-at-zero cells.
func conformanceClose(got, want float64) bool {
	if math.Abs(got-want) <= 1e-12 {
		return true
	}
	return stats.RelErr(got, want) <= conformanceRefTol
}

// TestKernelConformanceReferenceDifferential pins every kernel's wait
// and response percentiles to the slow references across the shared
// (rho, D, p) grid.
func TestKernelConformanceReferenceDifferential(t *testing.T) {
	for _, spec := range ConformanceSpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			for _, rho := range conformanceRhos {
				for _, d := range conformanceDs {
					k := buildKernel(t, spec, rho, d)
					for _, p := range conformancePs {
						w, err := k.WaitPercentile(p)
						if err != nil {
							t.Fatalf("WaitPercentile(%g): %v", p, err)
						}
						if want := refWaitPercentile(t, k, p); !conformanceClose(w, want) {
							t.Errorf("rho=%g d=%g p=%g: wait %.15g, reference %.15g", rho, d, p, w, want)
						}
						r, err := k.ResponsePercentile(p)
						if err != nil {
							t.Fatalf("ResponsePercentile(%g): %v", p, err)
						}
						if want := refResponsePercentile(t, k, p); !conformanceClose(r, want) {
							t.Errorf("rho=%g d=%g p=%g: response %.15g, reference %.15g", rho, d, p, r, want)
						}
					}
				}
			}
		})
	}
}

// checkInverts asserts the percentile/CDF inversion contract two-sided,
// which stays valid at atoms (W = 0 with mass 1-rho; the M/D/1 sojourn
// jump at t = D; the mixture's inherited jump): just below the
// percentile the CDF must not exceed the target, just above it must
// reach it.
func checkInverts(t *testing.T, cdf func(float64) float64, name string, rho, p, q float64) {
	t.Helper()
	target := p / 100
	lo := q*(1-1e-9) - 1e-12
	hi := q*(1+1e-9) + 1e-12
	if got := cdf(lo); got > target+1e-6 {
		t.Errorf("rho=%g p=%g: %s just below Q(p)=%.12g is %.12g > target", rho, p, name, q, got)
	}
	if got := cdf(hi); got < target-1e-6 {
		t.Errorf("rho=%g p=%g: %s just above Q(p)=%.12g is %.12g < target", rho, p, name, q, got)
	}
}

// TestKernelConformanceCDFInversion checks that percentiles invert
// their CDFs: F(Q(p)) = p/100 away from the atom at zero, and the atom
// itself carries at least the target mass.
func TestKernelConformanceCDFInversion(t *testing.T) {
	for _, spec := range ConformanceSpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			for _, rho := range conformanceRhos {
				k := buildKernel(t, spec, rho, 1.7)
				for _, p := range []float64{10, 50, 90, 99, 99.9} {
					w, err := k.WaitPercentile(p)
					if err != nil {
						t.Fatalf("WaitPercentile(%g): %v", p, err)
					}
					checkInverts(t, k.WaitCDF, "WaitCDF", rho, p, w)
					r, err := k.ResponsePercentile(p)
					if err != nil {
						t.Fatalf("ResponsePercentile(%g): %v", p, err)
					}
					checkInverts(t, k.ResponseCDF, "ResponseCDF", rho, p, r)
					if r < w {
						t.Errorf("rho=%g p=%g: response %.12g below wait %.12g", rho, p, r, w)
					}
				}
			}
		})
	}
}

// TestKernelConformanceBatchMatchesScalar checks the batch APIs return
// exactly the per-entry results, and that cancellation is honored.
func TestKernelConformanceBatchMatchesScalar(t *testing.T) {
	ps := []float64{99, 50, 95, 0, 90}
	for _, spec := range ConformanceSpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			k := buildKernel(t, spec, 0.7, 2.5)
			ws, err := k.WaitPercentilesContext(context.Background(), ps)
			if err != nil {
				t.Fatalf("WaitPercentilesContext: %v", err)
			}
			rs, err := k.ResponsePercentilesContext(context.Background(), ps)
			if err != nil {
				t.Fatalf("ResponsePercentilesContext: %v", err)
			}
			for i, p := range ps {
				w, err := k.WaitPercentile(p)
				if err != nil {
					t.Fatalf("WaitPercentile(%g): %v", p, err)
				}
				if ws[i] != w {
					t.Errorf("p=%g: batch wait %.17g != scalar %.17g", p, ws[i], w)
				}
				r, err := k.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("ResponsePercentile(%g): %v", p, err)
				}
				if rs[i] != r {
					t.Errorf("p=%g: batch response %.17g != scalar %.17g", p, rs[i], r)
				}
			}
			canceled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := k.WaitPercentilesContext(canceled, ps); err == nil {
				t.Error("canceled wait batch succeeded")
			}
			if _, err := k.ResponsePercentilesContext(canceled, ps); err == nil {
				t.Error("canceled response batch succeeded")
			}
		})
	}
}

// TestKernelConformanceStability checks the stability contract: builds
// and validation reject rho >= 1, bad service times and bad percentile
// arguments uniformly across kernels.
func TestKernelConformanceStability(t *testing.T) {
	for _, spec := range ConformanceSpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			for _, rho := range []float64{-0.1, 1, 1.5} {
				if _, err := spec.Build(rho, 1); err == nil {
					t.Errorf("Build(rho=%g) succeeded", rho)
				}
			}
			if _, err := spec.Build(0.5, 0); err == nil {
				t.Error("Build(serviceTime=0) succeeded")
			}
			k := buildKernel(t, spec, 0.5, 1)
			if err := k.Validate(); err != nil {
				t.Errorf("Validate on a stable queue: %v", err)
			}
			for _, p := range []float64{-1, 100, 120} {
				if _, err := k.WaitPercentile(p); err == nil {
					t.Errorf("WaitPercentile(%g) succeeded", p)
				}
				if _, err := k.ResponsePercentile(p); err == nil {
					t.Errorf("ResponsePercentile(%g) succeeded", p)
				}
			}
		})
	}
}

// simulateSpec runs the DES counterpart of a conformance spec.
func simulateSpec(t testing.TB, spec Spec, k Kernel, opt SimOptions) SimResult {
	t.Helper()
	var (
		sim SimResult
		err error
	)
	switch q := k.(type) {
	case MD1:
		sim, err = SimulateMD1(q, opt)
	case MG1:
		service, serr := ServiceSampler(q.D, q.SCV)
		if serr != nil {
			t.Fatalf("ServiceSampler: %v", serr)
		}
		lambda := q.Lambda
		sim, err = SimulateGG1(
			func(rng *stats.RNG) float64 { return rng.ExpFloat64(lambda) },
			service, opt)
	case MMK:
		sim, err = SimulateMMK(q, opt)
	default:
		t.Fatalf("no simulator for kernel %T", k)
	}
	if err != nil {
		t.Fatalf("simulate %v: %v", spec, err)
	}
	return sim
}

// TestKernelConformanceDES cross-validates every kernel against
// discrete-event simulation of its own model: exact kernels within
// Monte-Carlo noise, the two-moment M/G/1 interpolation within its
// documented approximation budget.
func TestKernelConformanceDES(t *testing.T) {
	if testing.Short() {
		t.Skip("DES conformance skipped in -short")
	}
	rhos := []float64{0.55, 0.8}
	for _, spec := range ConformanceSpecs() {
		spec := spec
		tol := conformanceDESTolExact
		ps := []float64{50, 95, 99}
		if spec.Kind == KindMG1 && spec.SCV != 0 && spec.SCV != 1 {
			// The two-moment interpolation is a tail model: pin the tail
			// percentiles only, at the approximation budget.
			tol = conformanceDESTolApprox
			ps = []float64{90, 95, 99}
		}
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			for _, rho := range rhos {
				k := buildKernel(t, spec, rho, 1)
				sim := simulateSpec(t, spec, k, SimOptions{Jobs: 500000, Warmup: 20000, Seed: 42})
				// Means are exact in every kernel, approximate or not.
				if got, want := sim.MeanResponse, k.MeanResponse(); stats.RelErr(got, want) > conformanceDESTolExact {
					t.Errorf("rho=%g: DES mean response %.6g vs kernel %.6g", rho, got, want)
				}
				for _, p := range ps {
					want, err := k.ResponsePercentile(p)
					if err != nil {
						t.Fatalf("ResponsePercentile(%g): %v", p, err)
					}
					got, err := sim.Percentile(p)
					if err != nil {
						t.Fatalf("sim percentile: %v", err)
					}
					if stats.RelErr(got, want) > tol {
						t.Errorf("rho=%g p=%g: DES %.6g vs kernel %.6g (tol %g)", rho, p, got, want, tol)
					}
				}
			}
		})
	}
}

// TestKernelLimitMG1SCVZeroIsMD1 is the acceptance criterion: at
// SCV = 0 the M/G/1 kernel reproduces the M/D/1 percentiles within
// 1e-9 across the differential grid (it delegates, so the match is in
// fact exact).
func TestKernelLimitMG1SCVZeroIsMD1(t *testing.T) {
	for _, rho := range conformanceRhos {
		for _, d := range conformanceDs {
			md1 := buildKernel(t, Spec{Kind: KindMD1}, rho, d)
			mg1 := buildKernel(t, Spec{Kind: KindMG1, SCV: 0}, rho, d)
			for _, p := range append([]float64{10, 99.9}, conformancePs...) {
				wd, err := md1.WaitPercentile(p)
				if err != nil {
					t.Fatalf("md1 WaitPercentile: %v", err)
				}
				wg, err := mg1.WaitPercentile(p)
				if err != nil {
					t.Fatalf("mg1 WaitPercentile: %v", err)
				}
				if wd != wg && stats.RelErr(wg, wd) > 1e-9 {
					t.Errorf("rho=%g d=%g p=%g: mg1@0 wait %.15g vs md1 %.15g", rho, d, p, wg, wd)
				}
				rd, err := md1.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("md1 ResponsePercentile: %v", err)
				}
				rg, err := mg1.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("mg1 ResponsePercentile: %v", err)
				}
				if rd != rg && stats.RelErr(rg, rd) > 1e-9 {
					t.Errorf("rho=%g d=%g p=%g: mg1@0 response %.15g vs md1 %.15g", rho, d, p, rg, rd)
				}
			}
		}
	}
}

// TestKernelLimitMG1SCVOneIsMM1 pins the other exact endpoint: at
// SCV = 1 the M/G/1 kernel matches the M/M/1 closed forms.
func TestKernelLimitMG1SCVOneIsMM1(t *testing.T) {
	for _, rho := range conformanceRhos {
		for _, d := range conformanceDs {
			mg1 := buildKernel(t, Spec{Kind: KindMG1, SCV: 1}, rho, d)
			mm1 := MM1{Lambda: rho / d, D: d}
			for _, p := range append([]float64{10, 99.9}, conformancePs...) {
				wg, err := mg1.WaitPercentile(p)
				if err != nil {
					t.Fatalf("mg1 WaitPercentile: %v", err)
				}
				wm, err := mm1.WaitPercentile(p)
				if err != nil {
					t.Fatalf("mm1 WaitPercentile: %v", err)
				}
				if math.Abs(wg-wm) > 1e-12 && stats.RelErr(wg, wm) > 1e-12 {
					t.Errorf("rho=%g d=%g p=%g: mg1@1 wait %.15g vs mm1 %.15g", rho, d, p, wg, wm)
				}
				rg, err := mg1.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("mg1 ResponsePercentile: %v", err)
				}
				rm, err := mm1.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("mm1 ResponsePercentile: %v", err)
				}
				if math.Abs(rg-rm) > 1e-12 && stats.RelErr(rg, rm) > 1e-12 {
					t.Errorf("rho=%g d=%g p=%g: mg1@1 response %.15g vs mm1 %.15g", rho, d, p, rg, rm)
				}
			}
		}
	}
}

// TestKernelLimitMMKOneServerIsMM1 pins M/M/k at k = 1 to the M/M/1
// closed forms: Erlang-C degenerates to rho and both distributions
// collapse to the single-server forms.
func TestKernelLimitMMKOneServerIsMM1(t *testing.T) {
	for _, rho := range conformanceRhos {
		for _, d := range conformanceDs {
			mmk := buildKernel(t, Spec{Kind: KindMMK, Servers: 1}, rho, d).(MMK)
			mm1 := MM1{Lambda: rho / d, D: d}
			if got := mmk.ErlangC(); stats.RelErr(got, rho) > 1e-12 {
				t.Errorf("rho=%g: ErlangC(1) = %.15g", rho, got)
			}
			for _, p := range append([]float64{10, 99.9}, conformancePs...) {
				wk, err := mmk.WaitPercentile(p)
				if err != nil {
					t.Fatalf("mmk WaitPercentile: %v", err)
				}
				wm, err := mm1.WaitPercentile(p)
				if err != nil {
					t.Fatalf("mm1 WaitPercentile: %v", err)
				}
				if math.Abs(wk-wm) > 1e-12 && stats.RelErr(wk, wm) > 1e-9 {
					t.Errorf("rho=%g d=%g p=%g: mmk@1 wait %.15g vs mm1 %.15g", rho, d, p, wk, wm)
				}
				rk, err := mmk.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("mmk ResponsePercentile: %v", err)
				}
				rm, err := mm1.ResponsePercentile(p)
				if err != nil {
					t.Fatalf("mm1 ResponsePercentile: %v", err)
				}
				if math.Abs(rk-rm) > 1e-9 && stats.RelErr(rk, rm) > 1e-9 {
					t.Errorf("rho=%g d=%g p=%g: mmk@1 response %.15g vs mm1 %.15g", rho, d, p, rk, rm)
				}
			}
		}
	}
}

// TestServiceSamplerMoments checks the moment-matching samplers hit
// their target mean and SCV within Monte-Carlo tolerance at every
// conformance SCV rung plus an off-grid value per regime.
func TestServiceSamplerMoments(t *testing.T) {
	if testing.Short() {
		t.Skip("sampler moments skipped in -short")
	}
	const n = 400000
	for _, scv := range []float64{0, 0.25, 0.5, 0.8, 1, 2, 4} {
		for _, d := range []float64{0.5, 3} {
			sample, err := ServiceSampler(d, scv)
			if err != nil {
				t.Fatalf("ServiceSampler(%g, %g): %v", d, scv, err)
			}
			rng := stats.NewRNG(7)
			var sum, sumsq stats.KahanSum
			for i := 0; i < n; i++ {
				s := sample(rng)
				if s < 0 {
					t.Fatalf("scv=%g: negative sample %g", scv, s)
				}
				sum.Add(s)
				sumsq.Add(s * s)
			}
			mean := sum.Sum() / n
			varv := sumsq.Sum()/n - mean*mean
			gotSCV := varv / (mean * mean)
			if stats.RelErr(mean, d) > 0.02 {
				t.Errorf("scv=%g d=%g: sample mean %.5g", scv, d, mean)
			}
			if scv == 0 {
				if varv > 1e-12 {
					t.Errorf("scv=0: sample variance %.3g", varv)
				}
			} else if stats.RelErr(gotSCV, scv) > 0.06 {
				t.Errorf("scv=%g d=%g: sample SCV %.5g", scv, d, gotSCV)
			}
		}
	}
	if _, err := ServiceSampler(0, 1); err == nil {
		t.Error("ServiceSampler accepted zero mean")
	}
	if _, err := ServiceSampler(1, -1); err == nil {
		t.Error("ServiceSampler accepted negative scv")
	}
}

// TestKernelNamesAndSpecRoundTrip checks the registry plumbing: names
// round-trip through ParseKind, specs render stably, and Build returns
// the matching concrete type.
func TestKernelNamesAndSpecRoundTrip(t *testing.T) {
	for _, spec := range ConformanceSpecs() {
		kind, err := ParseKind(spec.Kind.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", spec.Kind.String(), err)
		}
		if kind != spec.Kind {
			t.Errorf("ParseKind(%q) = %v", spec.Kind.String(), kind)
		}
		k := buildKernel(t, spec, 0.5, 1)
		if k.Name() != spec.Kind.String() {
			t.Errorf("kernel name %q for spec %v", k.Name(), spec)
		}
		if spec.CacheTag() == "" || spec.String() == "" {
			t.Errorf("empty tag for %v", spec)
		}
	}
	if kind, err := ParseKind(""); err != nil || kind != KindMD1 {
		t.Errorf("ParseKind(\"\") = %v, %v", kind, err)
	}
	if _, err := ParseKind("gg1"); err == nil {
		t.Error("ParseKind accepted unknown kernel")
	}
	if err := (Spec{Kind: KindMMK}).Validate(); err == nil {
		t.Error("mmk spec without servers validated")
	}
	if err := (Spec{Kind: KindMG1, SCV: math.Inf(1)}).Validate(); err == nil {
		t.Error("mg1 spec with infinite scv validated")
	}
	if err := (Spec{Kind: KindMD1, SCV: 2}).Validate(); err == nil {
		t.Error("md1 spec with scv validated")
	}
	for _, spec := range []Spec{{Kind: KindMG1, SCV: 0.5}, {Kind: KindMMK, Servers: 4}} {
		want := map[Kind]string{KindMG1: "mg1(scv=0.5)", KindMMK: "mmk(k=4)"}[spec.Kind]
		if got := spec.String(); got != want {
			t.Errorf("spec string %q, want %q", got, want)
		}
	}
	if got := fmt.Sprint(DefaultSpec()); got != "md1" {
		t.Errorf("default spec renders %q", got)
	}
	if !DefaultSpec().IsDefault() {
		t.Error("DefaultSpec not default")
	}
}
