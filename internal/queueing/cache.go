package queueing

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// M/D/1 is scale free in the service time: at fixed utilization rho the
// waiting time satisfies W(lambda, D) = D * W(rho, 1) in distribution.
// Every percentile query therefore reduces to the normalized queue
// MD1{Lambda: rho, D: 1}, and all configurations swept at the same
// utilization — the common case in the paper's U x percentile grids,
// where dozens of mixes are evaluated on one utilization axis — share a
// single search through the process-wide memo below.
//
// Keys quantize rho to the nearest multiple of 2^-rhoQuantBits. Two
// utilizations that differ only in float64 round-off (0.7 given directly
// versus recovered as lambda*D) collapse onto one entry; the error this
// introduces is bounded by the percentile's sensitivity to rho,
// |dW/drho| <= ~2*W/( (1-rho)*(...)), so the relative perturbation is at
// most about 2^-40/(1-rho) — under 1e-10 even at rho = 0.99, two orders
// inside the kernel's 1e-9 accuracy budget (see DESIGN.md §9).

// rhoQuantBits is the rho quantization: 2^-40 ≈ 9.1e-13.
const rhoQuantBits = 40

// pctCacheMaxEntries bounds the memo; past it the map is dropped and
// refilled (sweeps touch a few thousand (rho, p) pairs at most, so the
// bound exists only to keep pathological callers from growing it
// without limit).
const pctCacheMaxEntries = 1 << 15

// quantizeRho rounds rho onto the cache lattice, falling back to the
// exact value at the extremes where rounding would cross 0 or 1.
func quantizeRho(rho float64) float64 {
	const scale = 1 << rhoQuantBits
	q := math.Round(rho*scale) / scale
	if q <= 0 || q >= 1 {
		return rho
	}
	return q
}

type pctKey struct {
	rho    float64 // quantized
	target uint64  // math.Float64bits(p/100)
}

// pctEntry is a singleflight cell: the first goroutine to claim the key
// computes inside the Once while latecomers block on it and then read
// the settled value.
type pctEntry struct {
	once sync.Once
	w    float64
	err  error
}

// pctGeneration pairs the memo map with its own entry counter. Keeping
// the counter inside the generation (rather than beside the map pointer)
// makes the size accounting race-free across resets: a goroutine that
// loaded an old generation increments that generation's counter, never
// the fresh one, so a swap can neither leak uncounted entries into the
// new map nor inherit stale counts that would trigger spurious resets —
// both observable as cache thrash (miss-counter inflation) under
// concurrent serving load.
//
// The map is a plain Go map under an RWMutex rather than a sync.Map:
// the hit path (the overwhelmingly common case under serving load —
// every warm epserve percentile request lands here) is then a read-lock
// plus a map lookup with zero allocations, where sync.Map.Load boxes
// the 16-byte key into an interface on every call. The 0-alloc hit path
// is asserted by a regression test, as epserve's request-scoped
// observability depends on the kernel staying allocation-free when no
// request attribution is attached.
type pctGeneration struct {
	mu   sync.RWMutex
	m    map[pctKey]*pctEntry
	size atomic.Int64
}

// lookup returns the entry for key, creating (and counting) it on miss.
// loaded reports whether the entry already existed.
func (g *pctGeneration) lookup(key pctKey) (e *pctEntry, loaded bool) {
	g.mu.RLock()
	e = g.m[key]
	g.mu.RUnlock()
	if e != nil {
		return e, true
	}
	g.mu.Lock()
	if e = g.m[key]; e != nil {
		g.mu.Unlock()
		return e, true
	}
	if g.m == nil {
		g.m = make(map[pctKey]*pctEntry)
	}
	e = &pctEntry{}
	g.m[key] = e
	g.mu.Unlock()
	return e, false
}

var pctCache atomic.Pointer[pctGeneration]

func init() { pctCache.Store(new(pctGeneration)) }

// resetPercentileCache drops every memoized percentile by installing a
// fresh generation. Used when the map outgrows pctCacheMaxEntries, and
// by tests that need a cold cache. In-flight lookups against the old
// generation complete against it and are then unreachable.
func resetPercentileCache() {
	pctCache.Store(new(pctGeneration))
}

// normState carries warm search state across the queries of one batch:
// the shared normalized-queue evaluator (whose e^{-rho} step factor is
// computed once per precision) and the best known lower bracket. With
// targets visited in ascending order, each solved percentile becomes
// the lower bracket of the next.
type normState struct {
	ev  *cdfEvaluator
	lo  float64 // known wait with cdf(lo) = flo
	flo float64
}

// cachedNormalizedPercentile returns the normalized wait percentile
// w(rho, target) for the queue MD1{Lambda: rho, D: 1}, memoized across
// the process. st may be nil (single query) or shared batch state; rc,
// when non-nil, receives the request-scoped hit/miss attribution beside
// the process-global counters (epserve's access log reports the cache
// behavior of each individual request from it).
func cachedNormalizedPercentile(rho, target float64, st *normState, rc *telemetry.RequestContext) (float64, error) {
	ins := instruments()
	rhoQ := quantizeRho(rho)
	key := pctKey{rho: rhoQ, target: math.Float64bits(target)}
	gen := pctCache.Load()
	e, loaded := gen.lookup(key)
	if loaded {
		ins.cacheHits.Inc()
		rc.Add(telemetry.AttrCacheHits, 1)
	} else {
		ins.cacheMisses.Inc()
		rc.Add(telemetry.AttrCacheMisses, 1)
		if gen.size.Add(1) > pctCacheMaxEntries {
			resetPercentileCache()
		}
	}
	e.once.Do(func() {
		e.w, e.err = solveNormalizedPercentile(rhoQ, target, st)
	})
	if e.err == nil && st != nil && e.w > st.lo {
		// Warm the batch bracket even on cache hits: cdf(w) = target.
		st.lo, st.flo = e.w, target
	}
	return e.w, e.err
}

// solveNormalizedPercentile brackets and solves F(w) = target on the
// normalized queue. st, when non-nil, seeds the lower bracket and
// supplies the shared evaluator.
func solveNormalizedPercentile(rho, target float64, st *normState) (float64, error) {
	var ev *cdfEvaluator
	lo, flo := 0.0, 1-rho
	if st != nil {
		if st.ev == nil {
			st.ev = &cdfEvaluator{q: MD1{Lambda: rho, D: 1}, rho: rho}
		}
		ev = st.ev
		if st.lo > 0 && st.flo <= target {
			lo, flo = st.lo, st.flo
		}
	} else {
		ev = &cdfEvaluator{q: MD1{Lambda: rho, D: 1}, rho: rho}
	}

	// Bracket: grow the upper bound geometrically from the mean wait,
	// promoting each failed bound to the lower bracket.
	hi := rho / (2 * (1 - rho)) // normalized mean wait
	if hi <= lo {
		hi = lo + 1
	}
	fhi := ev.cdf(hi)
	for i := 0; fhi < target; i++ {
		lo, flo = hi, fhi
		hi *= 2
		fhi = ev.cdf(hi)
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	return solveCDF(ev, target, lo, flo, hi, fhi), nil
}

// solveCDF finds w with F(w) = target inside a bracket by regula falsi
// with the Illinois modification: the next probe interpolates the
// monotone CDF linearly between the bracket ends (far faster than
// bisection on the smooth, near-exponential tail), and halving the
// retained end's residual whenever the same side survives twice keeps
// the superlinear convergence guarantee bisection would otherwise be
// needed for.
func solveCDF(ev *cdfEvaluator, target, lo, flo, hi, fhi float64) float64 {
	glo, ghi := flo-target, fhi-target
	side := 0
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(1, hi); i++ {
		var mid float64
		if ghi != glo {
			mid = lo - glo*(hi-lo)/(ghi-glo)
		}
		if !(mid > lo && mid < hi) {
			mid = lo + 0.5*(hi-lo)
		}
		g := ev.cdf(mid) - target
		if g < 0 {
			lo, glo = mid, g
			if side == -1 {
				ghi *= 0.5
			}
			side = -1
		} else {
			hi, ghi = mid, g
			if side == 1 {
				glo *= 0.5
			}
			side = 1
		}
	}
	return lo + 0.5*(hi-lo)
}
