package queueing

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// M/D/1 is scale free in the service time: at fixed utilization rho the
// waiting time satisfies W(lambda, D) = D * W(rho, 1) in distribution.
// Every percentile query therefore reduces to the normalized queue
// MD1{Lambda: rho, D: 1}, and all configurations swept at the same
// utilization — the common case in the paper's U x percentile grids,
// where dozens of mixes are evaluated on one utilization axis — share a
// single search through the process-wide memo below.
//
// Keys quantize rho to the nearest multiple of 2^-rhoQuantBits. Two
// utilizations that differ only in float64 round-off (0.7 given directly
// versus recovered as lambda*D) collapse onto one entry; the error this
// introduces is bounded by the percentile's sensitivity to rho,
// |dW/drho| <= ~2*W/( (1-rho)*(...)), so the relative perturbation is at
// most about 2^-40/(1-rho) — under 1e-10 even at rho = 0.99, two orders
// inside the kernel's 1e-9 accuracy budget (see DESIGN.md §9).

// rhoQuantBits is the rho quantization: 2^-40 ≈ 9.1e-13.
const rhoQuantBits = 40

// pctCacheMaxEntries bounds the memo; past it the map is dropped and
// refilled (sweeps touch a few thousand (rho, p) pairs at most, so the
// bound exists only to keep pathological callers from growing it
// without limit).
const pctCacheMaxEntries = 1 << 15

// pctShardCount lock-stripes the memo. One RWMutex serializes every
// warm epserve percentile request through a single cache line; under
// batched serving load (hundreds of concurrent items, each a map read)
// that lock is the scaling limit long before the 130 ns kernel is.
// Sixteen shards keyed by the quantized-rho key spread both the lock
// and the map across cores. Must be a power of two.
const pctShardCount = 16

// pctShardMaxEntries is the per-shard overflow bound; the generation
// total stays bounded by pctCacheMaxEntries even if every key landed in
// one shard's stripe.
const pctShardMaxEntries = pctCacheMaxEntries / pctShardCount

// QuantizedRho exposes the cache's rho quantization to callers that
// build their own coalescing keys above the kernel: epserve's
// singleflight layer keys scalar and batched percentile requests on
// the same quantized utilization, so two callers that differ only in
// float64 round-off coalesce onto one computation, exactly as their
// cache entries collapse onto one memo cell here.
func QuantizedRho(rho float64) float64 { return quantizeRho(rho) }

// quantizeRho rounds rho onto the cache lattice, falling back to the
// exact value at the extremes where rounding would cross 0 or 1.
func quantizeRho(rho float64) float64 {
	const scale = 1 << rhoQuantBits
	q := math.Round(rho*scale) / scale
	if q <= 0 || q >= 1 {
		return rho
	}
	return q
}

// Kernel-identity tags for cache keys. The M/D/1 tag is the zero value,
// so the original single-kernel entries keep their exact keys (and
// shard placement). Distinct curves of one kernel family — the M/G/1
// wait and sojourn mixtures — get distinct tags too, since they differ
// at the same (rho, target, scv).
const (
	pctKindMD1 uint8 = iota
	pctKindMG1Wait
	pctKindMG1Resp
)

type pctKey struct {
	rho    float64 // quantized
	target uint64  // math.Float64bits(p/100)
	kind   uint8   // kernel identity (pctKind*)
	shape  uint64  // kernel shape bits (e.g. math.Float64bits(scv)); 0 for M/D/1
}

// pctEntry is a singleflight cell: the first goroutine to claim the key
// computes inside the Once while latecomers block on it and then read
// the settled value.
type pctEntry struct {
	once sync.Once
	w    float64
	err  error
}

// pctShard is one lock stripe of a generation: a plain Go map under an
// RWMutex rather than a sync.Map — the hit path (the overwhelmingly
// common case under serving load; every warm epserve percentile request
// lands here) is then a read-lock plus a map lookup with zero
// allocations, where sync.Map.Load boxes the 16-byte key into an
// interface on every call. The 0-alloc hit path is asserted by a
// regression test, as epserve's request-scoped observability depends on
// the kernel staying allocation-free when no request attribution is
// attached.
type pctShard struct {
	mu   sync.RWMutex
	m    map[pctKey]*pctEntry
	size atomic.Int64
	// pad the shard out to its own cache lines so neighboring shards'
	// mutexes do not false-share under cross-shard batch fan-out.
	_ [24]byte
}

// pctGeneration is one lifetime of the memo: pctShardCount lock-striped
// shards, each pairing its map with its own entry counter. Keeping the
// counters inside the generation (rather than beside the map pointer)
// makes the size accounting race-free across resets: a goroutine that
// loaded an old generation increments that generation's counter, never
// the fresh one, so a swap can neither leak uncounted entries into the
// new map nor inherit stale counts that would trigger spurious resets —
// both observable as cache thrash (miss-counter inflation) under
// concurrent serving load.
type pctGeneration struct {
	shards [pctShardCount]pctShard
}

// shard maps key onto its stripe. The quantized rho and the target both
// carry their entropy in the float64 mantissa bits; a Fibonacci mix of
// the two spreads consecutive sweep grids (u = 0.50, 0.51, ...) across
// stripes instead of clustering them.
func (g *pctGeneration) shard(key pctKey) *pctShard {
	h := math.Float64bits(key.rho)*0x9E3779B97F4A7C15 ^ key.target*0xD6E8FEB86659FD93
	// Kernel identity mixes in multiplicatively; the M/D/1 tag (0, 0)
	// contributes nothing, preserving the original shard placement.
	h ^= uint64(key.kind)*0xBF58476D1CE4E5B9 ^ key.shape*0x94D049BB133111EB
	return &g.shards[(h>>56)&(pctShardCount-1)]
}

// size returns the generation's total entry count across shards.
func (g *pctGeneration) size() int64 {
	var n int64
	for i := range g.shards {
		n += g.shards[i].size.Load()
	}
	return n
}

// lookup returns the entry for key, creating (and counting) it on miss.
// loaded reports whether the entry already existed.
func (s *pctShard) lookup(key pctKey) (e *pctEntry, loaded bool) {
	s.mu.RLock()
	e = s.m[key]
	s.mu.RUnlock()
	if e != nil {
		return e, true
	}
	s.mu.Lock()
	if e = s.m[key]; e != nil {
		s.mu.Unlock()
		return e, true
	}
	if s.m == nil {
		s.m = make(map[pctKey]*pctEntry)
	}
	e = &pctEntry{}
	s.m[key] = e
	s.mu.Unlock()
	return e, false
}

var pctCache atomic.Pointer[pctGeneration]

func init() { pctCache.Store(new(pctGeneration)) }

// resetPercentileCache drops every memoized percentile by installing a
// fresh generation. Used when the map outgrows pctCacheMaxEntries, and
// by tests that need a cold cache. In-flight lookups against the old
// generation complete against it and are then unreachable.
func resetPercentileCache() {
	pctCache.Store(new(pctGeneration))
}

// normState carries warm search state across the queries of one batch:
// the shared normalized-queue evaluator (whose e^{-rho} step factor is
// computed once per precision) and the best known lower bracket. With
// targets visited in ascending order, each solved percentile becomes
// the lower bracket of the next.
type normState struct {
	ev  *cdfEvaluator
	lo  float64 // known wait with cdf(lo) = flo
	flo float64
}

// cachedNormalizedPercentile returns the normalized wait percentile
// w(rho, target) for the queue MD1{Lambda: rho, D: 1}, memoized across
// the process. st may be nil (single query) or shared batch state; rc,
// when non-nil, receives the request-scoped hit/miss attribution beside
// the process-global counters (epserve's access log reports the cache
// behavior of each individual request from it).
func cachedNormalizedPercentile(rho, target float64, st *normState, rc *telemetry.RequestContext) (float64, error) {
	ins := instruments()
	rhoQ := quantizeRho(rho)
	key := pctKey{rho: rhoQ, target: math.Float64bits(target)}
	gen := pctCache.Load()
	sh := gen.shard(key)
	e, loaded := sh.lookup(key)
	if loaded {
		ins.cacheHits.Inc()
		rc.Add(telemetry.AttrCacheHits, 1)
	} else {
		ins.cacheMisses.Inc()
		rc.Add(telemetry.AttrCacheMisses, 1)
		if sh.size.Add(1) > pctShardMaxEntries {
			resetPercentileCache()
		}
	}
	e.once.Do(func() {
		e.w, e.err = solveNormalizedPercentile(rhoQ, target, st)
	})
	if e.err == nil && st != nil && e.w > st.lo {
		// Warm the batch bracket even on cache hits: cdf(w) = target.
		st.lo, st.flo = e.w, target
	}
	return e.w, e.err
}

// kernelSolver solves a normalized percentile for a kernel identified
// by its shape value (e.g. the M/G/1 SCV). Implementations must be
// package-level functions: a per-call closure would cost the warm hit
// path its zero-allocation guarantee.
type kernelSolver func(rho, shape, target float64) (float64, error)

// cachedKernelPercentile is the memo entry point for non-M/D/1 kernels:
// kind and shapeBits extend the key with the kernel identity (for
// M/G/1, the curve tag plus the raw SCV bits), so two kernels at the
// same (rho, target) can never share a cell — the cross-kernel bleed
// test in cache_test.go pins this. solve receives the quantized rho the
// entry is keyed on plus the shape value, and runs singleflight inside
// the cell's Once, exactly like the M/D/1 path.
func cachedKernelPercentile(kind uint8, shapeBits uint64, shape, rho, target float64, rc *telemetry.RequestContext, solve kernelSolver) (float64, error) {
	ins := instruments()
	rhoQ := quantizeRho(rho)
	key := pctKey{rho: rhoQ, target: math.Float64bits(target), kind: kind, shape: shapeBits}
	gen := pctCache.Load()
	sh := gen.shard(key)
	e, loaded := sh.lookup(key)
	if loaded {
		ins.cacheHits.Inc()
		rc.Add(telemetry.AttrCacheHits, 1)
	} else {
		ins.cacheMisses.Inc()
		rc.Add(telemetry.AttrCacheMisses, 1)
		if sh.size.Add(1) > pctShardMaxEntries {
			resetPercentileCache()
		}
	}
	e.once.Do(func() {
		e.w, e.err = solve(rhoQ, shape, target)
	})
	return e.w, e.err
}

// solveNormalizedPercentile brackets and solves F(w) = target on the
// normalized queue. st, when non-nil, seeds the lower bracket and
// supplies the shared evaluator.
func solveNormalizedPercentile(rho, target float64, st *normState) (float64, error) {
	var ev *cdfEvaluator
	lo, flo := 0.0, 1-rho
	if st != nil {
		if st.ev == nil {
			st.ev = &cdfEvaluator{q: MD1{Lambda: rho, D: 1}, rho: rho}
		}
		ev = st.ev
		if st.lo > 0 && st.flo <= target {
			lo, flo = st.lo, st.flo
		}
	} else {
		ev = &cdfEvaluator{q: MD1{Lambda: rho, D: 1}, rho: rho}
	}

	// Bracket: grow the upper bound geometrically from the mean wait,
	// promoting each failed bound to the lower bracket.
	hi := rho / (2 * (1 - rho)) // normalized mean wait
	if hi <= lo {
		hi = lo + 1
	}
	fhi := ev.cdf(hi)
	for i := 0; fhi < target; i++ {
		lo, flo = hi, fhi
		hi *= 2
		fhi = ev.cdf(hi)
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	return solveCDF(ev.cdf, target, lo, flo, hi, fhi), nil
}

// solveCDF finds w with F(w) = target inside a bracket by regula falsi
// with the Illinois modification: the next probe interpolates the
// monotone CDF linearly between the bracket ends (far faster than
// bisection on the smooth, near-exponential tail), and halving the
// retained end's residual whenever the same side survives twice keeps
// the superlinear convergence guarantee bisection would otherwise be
// needed for. cdf may be any monotone CDF — the M/D/1 evaluator, the
// M/G/1 mixtures, or the M/M/k sojourn.
func solveCDF(cdf func(float64) float64, target, lo, flo, hi, fhi float64) float64 {
	glo, ghi := flo-target, fhi-target
	side := 0
	for i := 0; i < 200 && hi-lo > 1e-12*math.Max(1, hi); i++ {
		var mid float64
		if ghi != glo {
			mid = lo - glo*(hi-lo)/(ghi-glo)
		}
		if !(mid > lo && mid < hi) {
			mid = lo + 0.5*(hi-lo)
		}
		g := cdf(mid) - target
		if g < 0 {
			lo, glo = mid, g
			if side == -1 {
				ghi *= 0.5
			}
			side = -1
		} else {
			hi, ghi = mid, g
			if side == 1 {
				glo *= 0.5
			}
			side = 1
		}
	}
	return lo + 0.5*(hi-lo)
}
