package queueing

import (
	"math"
	"testing"
)

// Old-vs-new benchmarks for the distribution kernel. `make bench-queueing`
// runs these and records the headline numbers (and the derived speedups)
// in BENCH_queueing.json so later PRs inherit a perf trajectory.

// benchSink defeats dead-code elimination.
var benchSink float64

// BenchmarkWaitCDF: one extended-precision CDF evaluation on the fast
// recurrence, at a tail point representative of a p95 search probe.
func BenchmarkWaitCDF(b *testing.B) {
	q := MD1{Lambda: 0.9, D: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = q.WaitCDF(12.3)
	}
}

// BenchmarkWaitCDFReference: the same evaluation on the original
// term-by-term implementation.
func BenchmarkWaitCDFReference(b *testing.B) {
	q := MD1{Lambda: 0.9, D: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = q.waitCDFReference(12.3)
	}
}

// BenchmarkWaitCDFFloat64Path: a point inside the float64 fast-path
// region, where the big.Float machinery is skipped entirely.
func BenchmarkWaitCDFFloat64Path(b *testing.B) {
	q := MD1{Lambda: 0.9, D: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		benchSink = q.WaitCDF(2.5)
	}
}

// coldRho yields a distinct utilization per iteration (golden-ratio
// stride over [0.85, 0.95)) so every query misses the percentile cache.
func coldRho(i int) float64 {
	const phi = 0.6180339887498949
	f := float64(i) * phi
	return 0.85 + 0.1*(f-math.Floor(f))
}

// BenchmarkResponsePercentileCold: every iteration is a never-seen rho —
// full bracket plus regula-falsi search on the fast kernel.
func BenchmarkResponsePercentileCold(b *testing.B) {
	resetPercentileCache()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := MD1{Lambda: coldRho(i), D: 1}
		v, err := q.ResponsePercentile(95)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// BenchmarkResponsePercentileWarm: repeated same-rho queries — the
// cache-hit path every sweep consumer rides once a utilization has been
// seen by any configuration.
func BenchmarkResponsePercentileWarm(b *testing.B) {
	resetPercentileCache()
	q := MD1{Lambda: 0.9, D: 1}
	if _, err := q.ResponsePercentile(95); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.ResponsePercentile(95)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// BenchmarkResponsePercentileReference: the pre-PR implementation —
// bisection over the term-by-term CDF, no caching — on the same cold
// query stream as BenchmarkResponsePercentileCold.
func BenchmarkResponsePercentileReference(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := MD1{Lambda: coldRho(i), D: 1}
		w, err := q.waitPercentileReference(95)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = w + q.D
	}
}

// BenchmarkResponsePercentilesBatch: five percentiles in one batched
// call sharing brackets and scratch, cold cache, per-call cost shown
// per percentile via b.N scaling of the whole batch.
func BenchmarkResponsePercentilesBatch(b *testing.B) {
	resetPercentileCache()
	ps := []float64{50, 90, 95, 99, 99.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q := MD1{Lambda: coldRho(i), D: 1}
		vs, err := q.ResponsePercentiles(ps)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = vs[len(vs)-1]
	}
}
