package queueing

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestPercentileCacheCounters: one cold query misses, repeats hit, and a
// different service time at the same utilization hits too (the cache is
// keyed on the normalized queue).
func TestPercentileCacheCounters(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)
	resetPercentileCache()

	// An unusual rho keeps this test independent of what other tests
	// have already cached (the memo is process-wide by design).
	const rho = 0.731592653589793
	q1, err := NewMD1FromUtilization(rho, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q1.WaitPercentile(95); err != nil {
		t.Fatal(err)
	}
	misses := reg.Counter("queueing.percentile_cache_misses").Value()
	hits := reg.Counter("queueing.percentile_cache_hits").Value()
	if misses != 1 || hits != 0 {
		t.Fatalf("cold query: hits=%d misses=%d, want 0/1", hits, misses)
	}

	if _, err := q1.WaitPercentile(95); err != nil {
		t.Fatal(err)
	}
	q2, err := NewMD1FromUtilization(rho, 42.5) // same rho, different D
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q2.WaitPercentile(95); err != nil {
		t.Fatal(err)
	}
	misses = reg.Counter("queueing.percentile_cache_misses").Value()
	hits = reg.Counter("queueing.percentile_cache_hits").Value()
	if misses != 1 || hits != 2 {
		t.Errorf("after repeat + rescaled query: hits=%d misses=%d, want 2/1", hits, misses)
	}

	if got := reg.Counter("queueing.percentile_searches").Value(); got != 3 {
		t.Errorf("percentile_searches = %d, want 3", got)
	}
}

// TestPercentileCacheCutsCDFCalls: the second query at the same rho must
// not touch the CDF at all — the whole point of the memo.
func TestPercentileCacheCutsCDFCalls(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)
	resetPercentileCache()

	q := MD1{Lambda: 0.812345, D: 1}
	if _, err := q.WaitPercentile(95); err != nil {
		t.Fatal(err)
	}
	cold := reg.Counter("queueing.wait_cdf_calls").Value()
	if cold == 0 {
		t.Fatal("cold search issued no CDF calls")
	}
	if _, err := q.WaitPercentile(95); err != nil {
		t.Fatal(err)
	}
	if warm := reg.Counter("queueing.wait_cdf_calls").Value(); warm != cold {
		t.Errorf("warm search issued %d extra CDF calls", warm-cold)
	}
}

// TestPercentileCacheConcurrent hammers the memo from many goroutines
// over a small (rho, p) set — the singleflight contention path — and
// cross-checks every answer against the uncached reference search. Run
// under -race this doubles as the cache's data-race test.
func TestPercentileCacheConcurrent(t *testing.T) {
	resetPercentileCache()
	rhos := []float64{0.31, 0.54, 0.77, 0.9}
	ps := []float64{50, 90, 95, 99}

	want := make(map[[2]float64]float64)
	for _, rho := range rhos {
		for _, p := range ps {
			q := MD1{Lambda: rho, D: 1}
			w, err := q.waitPercentileReference(p)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]float64{rho, p}] = w
		}
	}

	const workers = 32
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				rho := rhos[(w+i)%len(rhos)]
				p := ps[(w*7+i)%len(ps)]
				// Vary D so goroutines enter through differently-scaled
				// queues that share normalized cache entries.
				d := 1 + float64((w+i)%3)
				q := MD1{Lambda: rho / d, D: d}
				got, err := q.WaitPercentile(p)
				if err != nil {
					errc <- err
					return
				}
				ref := want[[2]float64{rho, p}] * d
				if math.Abs(got-ref) > 1e-8*math.Max(1, ref) {
					t.Errorf("rho=%g p=%g D=%g: got %.12g want %.12g", rho, p, d, got, ref)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestPercentileCacheHitPathZeroAlloc: a warm percentile query with no
// request scope attached must not allocate. The request-scoped
// observability layer rides on this — epserve attributes cache hits into
// a RequestContext only when one is present, and the unscoped kernel
// path (batch sweeps, CLI tools) has to stay allocation-free.
func TestPercentileCacheHitPathZeroAlloc(t *testing.T) {
	telemetry.SetGlobal(nil) // nil-registry no-op instruments, as in CLI default
	resetPercentileCache()
	defer resetPercentileCache()

	q := MD1{Lambda: 0.847213 / 3.5, D: 3.5}        // rho = 0.847213
	if _, err := q.WaitPercentile(99); err != nil { // warm the memo
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := q.WaitPercentile(99); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm WaitPercentile allocated %.1f times per call, want 0", allocs)
	}

	// The raw cache hit path itself (what every warm query reduces to)
	// must also be 0-alloc with a nil RequestContext.
	allocs = testing.AllocsPerRun(1000, func() {
		if _, err := cachedNormalizedPercentile(0.847213, 0.99, nil, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm cachedNormalizedPercentile allocated %.1f times per call, want 0", allocs)
	}
}

// TestPercentileCacheResetOnOverflow: filling any shard past its bound
// drops the generation instead of growing without limit, and queries
// keep answering.
func TestPercentileCacheResetOnOverflow(t *testing.T) {
	resetPercentileCache()
	defer resetPercentileCache()
	// Simulate a full cache rather than solving 32k percentiles: every
	// shard at its bound, so whichever stripe the next miss lands in
	// overflows.
	gen := pctCache.Load()
	for i := range gen.shards {
		gen.shards[i].size.Store(pctShardMaxEntries)
	}
	q := MD1{Lambda: 0.6, D: 1}
	w1, err := q.WaitPercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if n := pctCache.Load().size(); n > 2 {
		t.Errorf("cache size %d after overflow reset", n)
	}
	w2, err := q.WaitPercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Errorf("answers diverged across reset: %g vs %g", w1, w2)
	}
}

// TestPercentileCacheShardSpread: a realistic utilization grid must not
// collapse onto one stripe — the whole point of sharding is spreading
// the lock. A loose bound (no empty majority, no stripe holding more
// than half the keys) keeps the test robust to hash tweaks.
func TestPercentileCacheShardSpread(t *testing.T) {
	resetPercentileCache()
	defer resetPercentileCache()
	gen := pctCache.Load()
	counts := make(map[*pctShard]int)
	total := 0
	for u := 0.05; u < 0.995; u += 0.005 {
		for _, p := range []float64{50, 90, 95, 99, 99.9} {
			key := pctKey{rho: quantizeRho(u), target: math.Float64bits(p / 100)}
			counts[gen.shard(key)]++
			total++
		}
	}
	if len(counts) < pctShardCount/2 {
		t.Fatalf("grid of %d keys landed in only %d/%d shards", total, len(counts), pctShardCount)
	}
	for _, n := range counts {
		if n > total/2 {
			t.Fatalf("one shard holds %d of %d keys", n, total)
		}
	}
}

// TestPercentileCacheGenerationInvariants: entries created in a
// generation are counted in that generation; after a reset the new
// generation starts empty and recounts from zero, and per-shard sizes
// agree with the actual map sizes.
func TestPercentileCacheGenerationInvariants(t *testing.T) {
	resetPercentileCache()
	defer resetPercentileCache()
	rhos := []float64{0.11, 0.23, 0.37, 0.41, 0.59, 0.67, 0.79, 0.83}
	for _, rho := range rhos {
		q := MD1{Lambda: rho, D: 1}
		if _, err := q.WaitPercentile(95); err != nil {
			t.Fatal(err)
		}
		if _, err := q.WaitPercentile(99); err != nil {
			t.Fatal(err)
		}
	}
	gen := pctCache.Load()
	var mapped int64
	for i := range gen.shards {
		sh := &gen.shards[i]
		sh.mu.RLock()
		got := int64(len(sh.m))
		sh.mu.RUnlock()
		if counted := sh.size.Load(); counted != got {
			t.Errorf("shard %d: size counter %d, map holds %d", i, counted, got)
		}
		mapped += got
	}
	if want := int64(2 * len(rhos)); mapped != want || gen.size() != want {
		t.Errorf("generation holds %d entries (counted %d), want %d", mapped, gen.size(), want)
	}

	resetPercentileCache()
	if n := pctCache.Load().size(); n != 0 {
		t.Errorf("fresh generation reports size %d, want 0", n)
	}
	// Old-generation loaders must count against the old generation only.
	gen.shards[0].size.Add(1)
	if n := pctCache.Load().size(); n != 0 {
		t.Errorf("old-generation increment leaked into fresh generation (size %d)", n)
	}
}

// TestPercentileCacheShardHammer drives many goroutines across a rho
// grid wide enough to hit every stripe, interleaved with generation
// resets — under -race this is the sharded cache's data-race test, and
// the answers are cross-checked against the uncached reference.
func TestPercentileCacheShardHammer(t *testing.T) {
	resetPercentileCache()
	defer resetPercentileCache()
	rhos := make([]float64, 24)
	for i := range rhos {
		rhos[i] = 0.05 + 0.9*float64(i)/float64(len(rhos)-1)
	}
	ps := []float64{50, 90, 95, 99}
	want := make(map[[2]float64]float64)
	for _, rho := range rhos {
		for _, p := range ps {
			q := MD1{Lambda: rho, D: 1}
			w, err := q.waitPercentileReference(p)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]float64{rho, p}] = w
		}
	}
	resetPercentileCache() // hammer from cold so misses and hits interleave

	const workers = 24
	iters := 60
	if testing.Short() {
		iters = 15
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if w == 0 && i%20 == 10 {
					resetPercentileCache() // generations swap mid-traffic
				}
				rho := rhos[(w*5+i)%len(rhos)]
				p := ps[(w+i)%len(ps)]
				q := MD1{Lambda: rho, D: 1}
				got, err := q.WaitPercentile(p)
				if err != nil {
					t.Error(err)
					return
				}
				ref := want[[2]float64{rho, p}]
				if math.Abs(got-ref) > 1e-8*math.Max(1, ref) {
					t.Errorf("rho=%g p=%g: got %.12g want %.12g", rho, p, got, ref)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPercentileCacheCrossShardAttribution: one request whose batch
// spans many shards must still attribute every hit and miss to its own
// RequestContext, and the split must match the process-global counters.
func TestPercentileCacheCrossShardAttribution(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)
	resetPercentileCache()
	defer resetPercentileCache()

	// 12 percentile targets at one rho spread across stripes (the target
	// participates in the shard hash).
	ps := []float64{40, 50, 60, 70, 80, 85, 90, 92, 95, 97, 99, 99.5}
	q := MD1{Lambda: 0.654321, D: 1}

	rc := telemetry.NewRequestContext("", "test")
	ctx := telemetry.WithRequest(context.Background(), rc)
	if _, err := q.WaitPercentilesContext(ctx, ps); err != nil {
		t.Fatal(err)
	}
	if hits, misses := rc.Attr(telemetry.AttrCacheHits), rc.Attr(telemetry.AttrCacheMisses); hits != 0 || misses != int64(len(ps)) {
		t.Fatalf("cold cross-shard batch: rc hits=%d misses=%d, want 0/%d", hits, misses, len(ps))
	}

	rc2 := telemetry.NewRequestContext("", "test")
	ctx2 := telemetry.WithRequest(context.Background(), rc2)
	if _, err := q.WaitPercentilesContext(ctx2, ps); err != nil {
		t.Fatal(err)
	}
	if hits, misses := rc2.Attr(telemetry.AttrCacheHits), rc2.Attr(telemetry.AttrCacheMisses); hits != int64(len(ps)) || misses != 0 {
		t.Fatalf("warm cross-shard batch: rc hits=%d misses=%d, want %d/0", hits, misses, len(ps))
	}
	gHits := reg.Counter("queueing.percentile_cache_hits").Value()
	gMisses := reg.Counter("queueing.percentile_cache_misses").Value()
	if gHits != uint64(len(ps)) || gMisses != uint64(len(ps)) {
		t.Fatalf("global counters hits=%d misses=%d, want %d/%d", gHits, gMisses, len(ps), len(ps))
	}
}

// TestPercentileCacheNoCrossKernelBleed is the regression test for the
// kernel-identity extension of the cache key: the same (rho, p) through
// different kernels must produce different results from different
// cells, each independently cached — never one kernel's percentile
// served to another. Before kind/shape joined pctKey, the M/G/1 mixture
// solve at (rho, p) would have collided with the M/D/1 entry.
func TestPercentileCacheNoCrossKernelBleed(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)
	resetPercentileCache()
	defer resetPercentileCache()

	const (
		rho = 0.687194176253
		d   = 1.0
		p   = 95.0
	)
	md1, err := NewMD1FromUtilization(rho, d)
	if err != nil {
		t.Fatal(err)
	}
	mg1, err := NewMG1FromUtilization(rho, d, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mg2, err := NewMG1FromUtilization(rho, d, 0.25)
	if err != nil {
		t.Fatal(err)
	}

	wMD1, err := md1.WaitPercentile(p)
	if err != nil {
		t.Fatal(err)
	}
	wMG1, err := mg1.WaitPercentile(p)
	if err != nil {
		t.Fatal(err)
	}
	wMG2, err := mg2.WaitPercentile(p)
	if err != nil {
		t.Fatal(err)
	}
	rMG1, err := mg1.ResponsePercentile(p)
	if err != nil {
		t.Fatal(err)
	}
	// Same (rho, p), different kernel identity: the results must differ
	// materially (the SCV = 0.5 mixture is strictly slower than M/D/1),
	// including between two shapes of the same kernel family and between
	// the wait and sojourn curves of one kernel.
	if wMG1 <= wMD1 {
		t.Fatalf("mg1(0.5) wait %.12g not above md1 %.12g at same (rho, p)", wMG1, wMD1)
	}
	if wMG2 <= wMD1 || wMG2 >= wMG1 {
		t.Fatalf("mg1(0.25) wait %.12g not strictly between md1 %.12g and mg1(0.5) %.12g", wMG2, wMD1, wMG1)
	}
	if rMG1 <= wMG1 {
		t.Fatalf("mg1 response %.12g not above its wait %.12g", rMG1, wMG1)
	}

	// Warm repeats of every variant must be pure cache hits returning the
	// identical bits.
	missesBefore := reg.Counter("queueing.percentile_cache_misses").Value()
	hitsBefore := reg.Counter("queueing.percentile_cache_hits").Value()
	for i := 0; i < 2; i++ {
		if w, _ := md1.WaitPercentile(p); w != wMD1 {
			t.Fatalf("warm md1 wait %.17g != %.17g", w, wMD1)
		}
		if w, _ := mg1.WaitPercentile(p); w != wMG1 {
			t.Fatalf("warm mg1 wait %.17g != %.17g", w, wMG1)
		}
		if w, _ := mg2.WaitPercentile(p); w != wMG2 {
			t.Fatalf("warm mg1(0.25) wait %.17g != %.17g", w, wMG2)
		}
		if r, _ := mg1.ResponsePercentile(p); r != rMG1 {
			t.Fatalf("warm mg1 response %.17g != %.17g", r, rMG1)
		}
	}
	if got := reg.Counter("queueing.percentile_cache_misses").Value(); got != missesBefore {
		t.Errorf("warm kernel repeats added %d cache misses", got-missesBefore)
	}
	if got := reg.Counter("queueing.percentile_cache_hits").Value(); got != hitsBefore+8 {
		t.Errorf("warm kernel repeats: hits %d, want %d", got, hitsBefore+8)
	}
}
