package queueing

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestBatchReducesToMD1(t *testing.T) {
	q, err := NewBatchMD1FromUtilization(0.6, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	md1, ok := q.AsMD1()
	if !ok {
		t.Fatal("batch=1 should expose an M/D/1 view")
	}
	if math.Abs(q.MeanResponse()-md1.MeanResponse()) > 1e-12 {
		t.Errorf("batch=1 mean response %g != M/D/1 %g", q.MeanResponse(), md1.MeanResponse())
	}
	// And the batch simulation agrees with the M/D/1 simulation's mean.
	sim, err := q.Simulate(SimOptions{Jobs: 300000, Warmup: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(sim.MeanResponse, md1.MeanResponse()) > 0.03 {
		t.Errorf("batch sim mean %g vs analytic %g", sim.MeanResponse, md1.MeanResponse())
	}
}

func TestBatchMeanResponseMatchesSimulation(t *testing.T) {
	for _, batch := range []int{2, 4, 8} {
		q, err := NewBatchMD1FromUtilization(0.7, batch, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := q.Simulate(SimOptions{Jobs: 400000, Warmup: 8000, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(sim.MeanResponse, q.MeanResponse()) > 0.03 {
			t.Errorf("B=%d: sim mean %g vs analytic %g", batch, sim.MeanResponse, q.MeanResponse())
		}
	}
}

// TestBatchingHurtsLatency: at equal utilization, larger batches inflate
// both mean and tail response — the cost of the paper's batch submission
// pattern.
func TestBatchingHurtsLatency(t *testing.T) {
	prevMean, prevP95 := 0.0, 0.0
	for _, batch := range []int{1, 2, 4, 8, 16} {
		q, err := NewBatchMD1FromUtilization(0.6, batch, 1)
		if err != nil {
			t.Fatal(err)
		}
		mean := q.MeanResponse()
		if mean <= prevMean {
			t.Errorf("B=%d: mean %g not above B/2's %g", batch, mean, prevMean)
		}
		p95, err := q.ResponsePercentile(95, SimOptions{Jobs: 200000, Warmup: 4000, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if p95 <= prevP95 {
			t.Errorf("B=%d: p95 %g not above B/2's %g", batch, p95, prevP95)
		}
		prevMean, prevP95 = mean, p95
	}
}

func TestBatchUtilizationIdentity(t *testing.T) {
	q, err := NewBatchMD1FromUtilization(0.45, 6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Rho()-0.45) > 1e-12 {
		t.Errorf("rho = %g, want 0.45", q.Rho())
	}
}

func TestBatchValidation(t *testing.T) {
	if _, err := NewBatchMD1FromUtilization(0.5, 0, 1); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := NewBatchMD1FromUtilization(1.0, 2, 1); err == nil {
		t.Error("rho 1 accepted")
	}
	if _, err := NewBatchMD1FromUtilization(0.5, 2, 0); err == nil {
		t.Error("zero service accepted")
	}
	q := BatchMD1{BatchRate: 1, Batch: 2, D: 1} // rho = 2
	if err := q.Validate(); err == nil {
		t.Error("unstable batch queue accepted")
	}
	good := BatchMD1{BatchRate: 0.1, Batch: 2, D: 1}
	if _, err := good.Simulate(SimOptions{Jobs: 0}); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, ok := good.AsMD1(); ok {
		t.Error("batch=2 exposed an M/D/1 view")
	}
}
