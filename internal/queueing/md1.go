// Package queueing implements the M/D/1 queueing model of Section II-B:
// jobs arrive Poisson with rate λ_job, are served in FIFO order by the
// cluster with a deterministic service time T_P, and the cluster
// utilization is U = T_P·λ_job. The package provides the exact
// waiting-time distribution (Crommelin's formula), response-time
// percentiles, a Lindley-recursion Monte-Carlo simulator used for
// cross-validation, and an M/M/1 reference model.
//
// The distribution kernel is built for sweeps: WaitCDF runs an
// incremental Crommelin recurrence (two extended-precision exponentials
// per call instead of one per term) with a float64 fast path where
// cancellation is provably bounded; WaitPercentile resolves through a
// process-wide scale-invariant cache — W/D depends only on rho, so all
// configurations at the same utilization share one search — and the
// search itself is bracketed regula falsi rather than blind bisection.
// WaitPercentiles/ResponsePercentiles/WaitCDFBatch amortize brackets and
// scratch across batched queries.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sync"
)

// MD1 is an M/D/1 queue: Poisson arrivals at rate Lambda, deterministic
// service time D.
type MD1 struct {
	// Lambda is the arrival rate (jobs per second).
	Lambda float64
	// D is the deterministic service time (seconds).
	D float64
}

// NewMD1FromUtilization builds the queue for a target utilization
// rho = Lambda*D, the way the paper sweeps utilization ("we simulate the
// impact of utilization on the server or cluster by varying the arrival
// rate").
func NewMD1FromUtilization(rho, serviceTime float64) (MD1, error) {
	if serviceTime <= 0 {
		return MD1{}, errors.New("queueing: service time must be positive")
	}
	if rho < 0 || rho >= 1 {
		return MD1{}, fmt.Errorf("queueing: utilization %g outside [0, 1)", rho)
	}
	return MD1{Lambda: rho / serviceTime, D: serviceTime}, nil
}

// Name returns the kernel registry name.
func (q MD1) Name() string { return "md1" }

// Validate checks queue parameters for stability.
func (q MD1) Validate() error {
	if q.D <= 0 {
		return errors.New("queueing: service time must be positive")
	}
	if q.Lambda < 0 {
		return errors.New("queueing: negative arrival rate")
	}
	if q.Rho() >= 1 {
		return fmt.Errorf("queueing: unstable queue, rho = %g >= 1", q.Rho())
	}
	return nil
}

// Rho returns the utilization Lambda*D.
func (q MD1) Rho() float64 { return q.Lambda * q.D }

// MeanWait returns the Pollaczek-Khinchine mean queueing delay
// rho*D / (2*(1-rho)).
func (q MD1) MeanWait() float64 {
	rho := q.Rho()
	return rho * q.D / (2 * (1 - rho))
}

// MeanResponse returns the mean sojourn time (wait plus service).
func (q MD1) MeanResponse() float64 { return q.MeanWait() + q.D }

// WaitCDF returns P(W <= t), the probability an arriving job waits at
// most t before service begins, by Crommelin's classical formula
//
//	P(W <= t) = (1-rho) * sum_{j=0}^{k} [lambda(jD - t)]^j / j! * e^{-lambda(jD - t)}
//
// with k = floor(t/D). The terms alternate in sign and grow large before
// cancelling, so the sum is evaluated in extended precision — except for
// small lambda·t, where the cancellation is provably within float64
// headroom and a plain float64 pass suffices (see crommelin.go).
func (q MD1) WaitCDF(t float64) float64 {
	ev := cdfEvaluator{q: q, rho: q.Rho()}
	return ev.cdf(t)
}

// ln2Cache memoizes ln 2 at the highest precision requested so far. The
// argument reduction in bigExpBig must happen in extended precision:
// reducing with float64 ln2 caps the whole CDF at float64 accuracy,
// which the alternating sum then amplifies catastrophically for large t.
var ln2Cache struct {
	mu   sync.Mutex
	prec uint
	val  *big.Float
}

// bigLn2 returns ln 2 accurate to at least prec bits, computed from the
// fast-converging series ln 2 = 2*atanh(1/3) = 2*sum (1/3)^(2k+1)/(2k+1),
// which gains ~3.17 bits per term.
func bigLn2(prec uint) *big.Float {
	ln2Cache.mu.Lock()
	defer ln2Cache.mu.Unlock()
	if ln2Cache.val != nil && ln2Cache.prec >= prec {
		return ln2Cache.val
	}
	work := prec + 32
	sum := new(big.Float).SetPrec(work)
	x := new(big.Float).SetPrec(work)
	x.Quo(new(big.Float).SetPrec(work).SetInt64(1), new(big.Float).SetPrec(work).SetInt64(3))
	nine := new(big.Float).SetPrec(work).SetInt64(9)
	pow := new(big.Float).SetPrec(work).Copy(x) // (1/3)^(2k+1)
	term := new(big.Float).SetPrec(work)
	div := new(big.Float).SetPrec(work)
	// Each term shrinks by 9x (3.17 bits); iterate until below precision.
	iters := int(work/3) + 4
	for k := 0; k < iters; k++ {
		term.Quo(pow, div.SetInt64(int64(2*k+1)))
		sum.Add(sum, term)
		pow.Quo(pow, nine)
	}
	sum.Mul(sum, new(big.Float).SetPrec(work).SetInt64(2))
	ln2Cache.prec = prec
	ln2Cache.val = sum
	return sum
}

// bigExpBig computes e^x at the given precision via argument reduction
// and Taylor series: x = n*ln2 + r with |r| <= ln2/2, e^x = 2^n * e^r.
func bigExpBig(x *big.Float, prec uint) *big.Float {
	if x.Sign() == 0 {
		return new(big.Float).SetPrec(prec).SetFloat64(1)
	}
	xf, _ := x.Float64()
	n := int(math.Round(xf / math.Ln2))
	rb := new(big.Float).SetPrec(prec).SetInt64(int64(n))
	rb.Mul(rb, bigLn2(prec))
	rb.Sub(x, rb) // r = x - n*ln2, |r| <= ~0.35
	// Taylor series for e^r: term k contributes ~|r|^k/k!; stop once the
	// term vanishes or cannot affect the result at this precision.
	sum := new(big.Float).SetPrec(prec).SetFloat64(1)
	term := new(big.Float).SetPrec(prec).SetFloat64(1)
	div := new(big.Float).SetPrec(prec)
	// |r| <= 0.35 shrinks terms by >= ~1.5 bits plus log2(k) each step;
	// prec/1.4 iterations are always enough.
	iters := int(prec/2) + 16
	for i := 1; i <= iters; i++ {
		term.Mul(term, rb)
		term.Quo(term, div.SetInt64(int64(i)))
		sum.Add(sum, term)
		if term.Sign() == 0 || term.MantExp(nil) < -int(prec)-8 {
			break
		}
	}
	// Scale by 2^n.
	mant := new(big.Float).SetPrec(prec)
	exp := sum.MantExp(mant)
	return sum.SetMantExp(mant, exp+n)
}

// WaitPercentile returns the p-th percentile (p in [0,100)) of the
// waiting time. M/D/1 is scale free in D at fixed rho — W/D depends only
// on the utilization — so the search runs on the normalized queue (D=1)
// through a process-wide memo shared by every configuration at the same
// utilization, and the result is rescaled by D.
func (q MD1) WaitPercentile(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	ins := instruments()
	ins.searches.Inc()
	span := ins.tracer.Start("queueing.wait_percentile")
	if span != nil {
		// Attach only on a live span: boxing p into `any` unconditionally
		// would cost the warm hit path its zero-allocation guarantee.
		span.Arg("p", p)
	}
	defer span.End()
	target := p / 100
	rho := q.Rho()
	// The distribution has the atom P(W = 0) = 1-rho.
	if 1-rho >= target {
		return 0, nil
	}
	w, err := cachedNormalizedPercentile(rho, target, nil, nil)
	if err != nil {
		return 0, err
	}
	return w * q.D, nil
}

// ResponsePercentile returns the p-th percentile of the sojourn time.
// With deterministic service the sojourn is wait + D exactly.
func (q MD1) ResponsePercentile(p float64) (float64, error) {
	w, err := q.WaitPercentile(p)
	if err != nil {
		return 0, err
	}
	return w + q.D, nil
}

// ResponseCDF returns P(R <= t) for the sojourn time R = W + D: zero
// below the service time, then the shifted waiting-time CDF.
func (q MD1) ResponseCDF(t float64) float64 {
	if t < q.D {
		return 0
	}
	return q.WaitCDF(t - q.D)
}

// MM1 is an M/M/1 reference queue: Poisson arrivals, exponential service
// with mean D. Used by the ablation benches to show the sensitivity of
// the paper's percentile analysis to the deterministic-service
// assumption.
type MM1 struct {
	Lambda float64
	D      float64 // mean service time
}

// Rho returns the utilization.
func (q MM1) Rho() float64 { return q.Lambda * q.D }

// MeanResponse returns D/(1-rho).
func (q MM1) MeanResponse() float64 {
	return q.D / (1 - q.Rho())
}

// WaitPercentile returns the p-th percentile of the M/M/1 waiting time
// in closed form: the distribution has the atom P(W = 0) = 1-rho, above
// which P(W <= t) = 1 - rho*e^{-(1-rho)t/D}. The cross-kernel limit
// tests pin M/G/1@SCV=1 and M/M/k@k=1 to this.
func (q MM1) WaitPercentile(p float64) (float64, error) {
	rho := q.Rho()
	if rho >= 1 || q.D <= 0 {
		return 0, errors.New("queueing: unstable M/M/1")
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	target := p / 100
	if 1-rho >= target {
		return 0, nil
	}
	return math.Log(rho/(1-target)) * q.D / (1 - rho), nil
}

// ResponsePercentile returns the p-th percentile of the M/M/1 sojourn
// time, which is exponential with rate (1-rho)/D.
func (q MM1) ResponsePercentile(p float64) (float64, error) {
	rho := q.Rho()
	if rho >= 1 || q.D <= 0 {
		return 0, errors.New("queueing: unstable M/M/1")
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	return -math.Log(1-p/100) * q.D / (1 - rho), nil
}
