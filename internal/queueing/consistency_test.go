package queueing

import (
	"testing"

	"repro/internal/stats"
)

// TestMeanWaitFromCDFIntegral cross-checks the Pollaczek-Khinchine mean
// against the tail integral of Crommelin's CDF: E[W] = int_0^inf
// (1 - F(t)) dt. Two independent derivations of the same queue must
// agree, pinning both implementations at once.
func TestMeanWaitFromCDFIntegral(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		q := MD1{Lambda: rho, D: 1}
		// The tail decays geometrically; integrate far enough that the
		// truncation error is negligible at these utilizations.
		upper := 40 * q.MeanWait()
		if upper < 20 {
			upper = 20
		}
		integral := stats.IntegrateFunc(func(t float64) float64 {
			return 1 - q.WaitCDF(t)
		}, 0, upper, 2000)
		want := q.MeanWait()
		if stats.RelErr(integral, want) > 0.01 {
			t.Errorf("rho=%g: tail integral %g vs P-K mean %g", rho, integral, want)
		}
	}
}

// TestPercentileInvertsCDF: WaitPercentile and WaitCDF are inverses on
// their shared domain.
func TestPercentileInvertsCDF(t *testing.T) {
	q := MD1{Lambda: 0.375, D: 2} // rho = 0.75
	for _, p := range []float64{40, 60, 80, 95, 99} {
		w, err := q.WaitPercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.WaitCDF(w); stats.RelErr(got, p/100) > 1e-6 {
			t.Errorf("CDF(percentile(%g)) = %g", p, got)
		}
	}
}

// TestResponseCDFShift: the sojourn CDF is the waiting CDF shifted by
// the deterministic service time, zero below it.
func TestResponseCDFShift(t *testing.T) {
	q := MD1{Lambda: 0.3, D: 2} // rho = 0.6
	if got := q.ResponseCDF(1.9); got != 0 {
		t.Errorf("P(R<=1.9) = %g, want 0 below the service time", got)
	}
	if got, want := q.ResponseCDF(2), q.WaitCDF(0); got != want {
		t.Errorf("P(R<=D) = %g, want P(W<=0) = %g", got, want)
	}
	p95, err := q.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.ResponseCDF(p95); stats.RelErr(got, 0.95) > 1e-6 {
		t.Errorf("CDF(p95) = %g", got)
	}
}

// TestPercentileBelowAtom: percentiles inside the P(W=0) = 1-rho atom
// are exactly zero wait.
func TestPercentileBelowAtom(t *testing.T) {
	q := MD1{Lambda: 0.4, D: 1} // P(W=0) = 0.6
	for _, p := range []float64{0, 10, 30, 59} {
		w, err := q.WaitPercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		if w != 0 {
			t.Errorf("p%g wait = %g, want 0 (inside the idle atom)", p, w)
		}
	}
	w, err := q.WaitPercentile(70)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Errorf("p70 wait = %g, want > 0", w)
	}
}
