package queueing

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Kernel is the model-agnostic queueing interface: everything the
// frontier sweeps, the epserve endpoints, and the fleet simulator need
// from an arrival/service discipline. MD1 (Crommelin), MG1
// (Pollaczek-Khinchine, SCV-parameterized) and MMK (Erlang-C
// multi-server) implement it; the shared conformance suite in
// conformance_test.go is the contract every implementation — current
// and future — must pass: percentiles pinned to slow references and to
// DES simulation, CDF/percentile inversion, monotonicity in rho and p,
// and scale invariance in the service time.
type Kernel interface {
	// Name returns the kernel's registry name ("md1", "mg1", "mmk").
	Name() string
	// Rho returns the (per-server) utilization.
	Rho() float64
	// Validate checks the parameters for stability: rho < 1 and a
	// positive service time.
	Validate() error
	// MeanWait returns the mean queueing delay before service.
	MeanWait() float64
	// MeanResponse returns the mean sojourn time (wait plus service).
	MeanResponse() float64
	// WaitCDF returns P(W <= t) for the waiting time W.
	WaitCDF(t float64) float64
	// ResponseCDF returns P(R <= t) for the sojourn time R.
	ResponseCDF(t float64) float64
	// WaitPercentile returns the p-th percentile (p in [0,100)) of the
	// waiting time.
	WaitPercentile(p float64) (float64, error)
	// ResponsePercentile returns the p-th percentile of the sojourn.
	ResponsePercentile(p float64) (float64, error)
	// WaitPercentilesContext is the batch API with cancellation: results
	// are identical to calling WaitPercentile per entry, in input order.
	WaitPercentilesContext(ctx context.Context, ps []float64) ([]float64, error)
	// ResponsePercentilesContext is the batched sojourn percentiles.
	ResponsePercentilesContext(ctx context.Context, ps []float64) ([]float64, error)
}

// Compile-time interface checks for every registered kernel.
var (
	_ Kernel = MD1{}
	_ Kernel = MG1{}
	_ Kernel = MMK{}
)

// Kind names a kernel family. The zero value is M/D/1, so the zero Spec
// reproduces the paper's model and every pre-kernel call site keeps its
// exact behavior.
type Kind uint8

const (
	// KindMD1 is the paper's M/D/1 queue (deterministic service).
	KindMD1 Kind = iota
	// KindMG1 is the two-moment M/G/1 queue parameterized by the
	// service-time SCV.
	KindMG1
	// KindMMK is the M/M/k multi-server queue (Erlang-C).
	KindMMK
)

// String returns the registry name of the kind.
func (k Kind) String() string {
	switch k {
	case KindMD1:
		return "md1"
	case KindMG1:
		return "mg1"
	case KindMMK:
		return "mmk"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind resolves a kernel name. The empty string is the M/D/1
// default, so request fields and config keys that omit the kernel keep
// the paper's model.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "md1":
		return KindMD1, nil
	case "mg1":
		return KindMG1, nil
	case "mmk":
		return KindMMK, nil
	}
	return 0, fmt.Errorf("queueing: unknown kernel %q (want md1, mg1 or mmk)", s)
}

// Spec selects and parameterizes a kernel without committing to a load
// point: Build instantiates it at a concrete utilization and service
// time. The zero Spec is the M/D/1 default.
type Spec struct {
	// Kind selects the kernel family.
	Kind Kind
	// SCV is the squared coefficient of variation of the service time
	// (M/G/1 only): 0 reproduces M/D/1, 1 matches M/M/1.
	SCV float64
	// Servers is the server count k (M/M/k only).
	Servers int
}

// DefaultSpec returns the M/D/1 default.
func DefaultSpec() Spec { return Spec{Kind: KindMD1} }

// IsDefault reports whether the spec selects the M/D/1 default, the
// case request coalescing and golden outputs key on.
func (s Spec) IsDefault() bool { return s.Kind == KindMD1 }

// Validate checks the spec's shape parameters for the selected kind.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindMD1:
		if s.SCV != 0 {
			return errors.New("queueing: scv applies to the mg1 kernel only")
		}
		if s.Servers != 0 {
			return errors.New("queueing: servers applies to the mmk kernel only")
		}
	case KindMG1:
		if s.SCV < 0 || math.IsInf(s.SCV, 0) || math.IsNaN(s.SCV) {
			return fmt.Errorf("queueing: scv %g must be finite and >= 0", s.SCV)
		}
		if s.Servers != 0 {
			return errors.New("queueing: servers applies to the mmk kernel only")
		}
	case KindMMK:
		if s.Servers < 1 {
			return fmt.Errorf("queueing: mmk needs servers >= 1, got %d", s.Servers)
		}
		if s.SCV != 0 {
			return errors.New("queueing: scv applies to the mg1 kernel only")
		}
	default:
		return fmt.Errorf("queueing: unknown kernel kind %d", uint8(s.Kind))
	}
	return nil
}

// String renders the spec with its shape parameters ("md1",
// "mg1(scv=0.5)", "mmk(k=4)").
func (s Spec) String() string {
	switch s.Kind {
	case KindMG1:
		return fmt.Sprintf("mg1(scv=%g)", s.SCV)
	case KindMMK:
		return fmt.Sprintf("mmk(k=%d)", s.Servers)
	}
	return s.Kind.String()
}

// CacheTag returns a stable token naming the kernel identity, for
// callers that build coalescing keys above the kernel (the epserve
// singleflight layer), mirroring how the percentile cache keys on the
// kernel kind and shape below.
func (s Spec) CacheTag() string {
	switch s.Kind {
	case KindMG1:
		return fmt.Sprintf("mg1:%g", s.SCV)
	case KindMMK:
		return fmt.Sprintf("mmk:%d", s.Servers)
	}
	return "md1"
}

// Build instantiates the kernel at utilization rho with the given
// aggregate service time (seconds per job with the whole cluster on
// it). For M/M/k the aggregate time is spread over k servers — each
// server serves a full job in k*serviceTime — preserving both total
// capacity and per-server utilization, so a cluster of N wimpy nodes is
// modeled as one k-server queue rather than N independent M/D/1s.
func (s Spec) Build(rho, serviceTime float64) (Kernel, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindMG1:
		return NewMG1FromUtilization(rho, serviceTime, s.SCV)
	case KindMMK:
		return NewMMKFromUtilization(rho, serviceTime, s.Servers)
	}
	return NewMD1FromUtilization(rho, serviceTime)
}

// ConformanceSpecs returns the registered kernel parameterizations the
// shared conformance suite pins: the M/D/1 default, M/G/1 across the
// SCV ladder (deterministic, Erlang-like, exponential, hyperexponential)
// and M/M/k at several server counts. New kernels join the suite by
// appearing here.
func ConformanceSpecs() []Spec {
	return []Spec{
		{Kind: KindMD1},
		{Kind: KindMG1, SCV: 0},
		{Kind: KindMG1, SCV: 0.5},
		{Kind: KindMG1, SCV: 1},
		{Kind: KindMG1, SCV: 4},
		{Kind: KindMMK, Servers: 1},
		{Kind: KindMMK, Servers: 4},
		{Kind: KindMMK, Servers: 16},
	}
}
