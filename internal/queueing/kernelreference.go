package queueing

import (
	"errors"
	"math"
	"math/big"
)

// This file extends reference.go to the generalized kernels: slow,
// straightforward evaluations — term-by-term extended precision where
// precision matters, blind bisection instead of bracketed regula falsi —
// that the conformance suite pins the fast kernels against. Nothing
// outside tests and benchmarks should call them.

// mg1WaitCDFReference rebuilds the two-moment wait CDF from its
// definition, with the M/D/1 component evaluated by the term-by-term
// extended-precision reference rather than the incremental fast kernel.
func (q MG1) mg1WaitCDFReference(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Rho()
	switch {
	case q.SCV <= 0:
		return q.md1().waitCDFReference(t)
	case q.SCV < 1:
		return (1-q.SCV)*q.md1().waitCDFReference(t) + q.SCV*mm1WaitCDF(rho, q.D, t)
	default:
		return 1 - rho*math.Exp(-t/q.tailTheta())
	}
}

// mg1ResponseCDFReference is the sojourn counterpart.
func (q MG1) mg1ResponseCDFReference(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Rho()
	switch {
	case q.SCV <= 0:
		if t < q.D {
			return 0
		}
		return q.md1().waitCDFReference(t - q.D)
	case q.SCV < 1:
		var fd float64
		if t >= q.D {
			fd = q.md1().waitCDFReference(t - q.D)
		}
		fm := 1 - math.Exp(-(1-rho)*t/q.D)
		return (1-q.SCV)*fd + q.SCV*fm
	default:
		beta := rho + 2*(1-rho)/(1+q.SCV)
		v := 1 - beta*math.Exp(-t/q.tailTheta())
		if v < 0 {
			return 0
		}
		return v
	}
}

// waitPercentileReference inverts the reference wait CDF by geometric
// bracketing plus blind bisection, mirroring the M/D/1 reference search.
func (q MG1) waitPercentileReference(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	return bisectCDFReference(q.mg1WaitCDFReference, p/100, q.MeanWait(), q.D)
}

// responsePercentileReference inverts the reference sojourn CDF.
func (q MG1) responsePercentileReference(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	return bisectCDFReference(q.mg1ResponseCDFReference, p/100, q.MeanResponse(), q.D)
}

// erlangBReference computes the Erlang-B blocking probability from the
// defining ratio B = (a^k/k!) / sum_{j=0}^{k} a^j/j! entirely in
// extended precision — factorially large numerators and all — pinning
// the float64 recurrence in ErlangB against cancellation or drift.
func erlangBReference(k int, a float64) float64 {
	if k < 1 || a <= 0 {
		return 0
	}
	const prec = 256
	ab := new(big.Float).SetPrec(prec).SetFloat64(a)
	term := new(big.Float).SetPrec(prec).SetFloat64(1) // a^j / j!
	sum := new(big.Float).SetPrec(prec).SetFloat64(1)  // j = 0 term
	div := new(big.Float).SetPrec(prec)
	for j := 1; j <= k; j++ {
		term.Mul(term, ab)
		term.Quo(term, div.SetInt64(int64(j)))
		sum.Add(sum, term)
	}
	term.Quo(term, sum)
	v, _ := term.Float64()
	return v
}

// erlangCReference derives the delay probability from the reference
// Erlang-B in extended precision.
func erlangCReference(k int, a float64) float64 {
	if k < 1 || a <= 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	const prec = 256
	b := new(big.Float).SetPrec(prec).SetFloat64(erlangBReference(k, a))
	one := new(big.Float).SetPrec(prec).SetFloat64(1)
	rho := new(big.Float).SetPrec(prec).SetFloat64(a / float64(k))
	den := new(big.Float).SetPrec(prec).Sub(one, b)
	den.Mul(den, rho)
	den.Sub(one, den)
	c := new(big.Float).SetPrec(prec).Quo(b, den)
	v, _ := c.Float64()
	return v
}

// mmkWaitCDFReference rebuilds the wait CDF from the reference Erlang-C.
func (q MMK) mmkWaitCDFReference(t float64) float64 {
	if t < 0 {
		return 0
	}
	c := erlangCReference(q.K, q.Offered())
	return 1 - c*math.Exp(-q.waitRate()*t)
}

// mmkResponseCDFReference rebuilds the sojourn CDF from the reference
// Erlang-C and the exponential convolution evaluated directly.
func (q MMK) mmkResponseCDFReference(t float64) float64 {
	if t < 0 {
		return 0
	}
	mu := 1 / q.D
	omega := q.waitRate()
	c := erlangCReference(q.K, q.Offered())
	var tail float64
	if math.Abs(omega-mu) <= 1e-9*mu {
		tail = (1-c)*math.Exp(-mu*t) + c*math.Exp(-mu*t)*(1+mu*t)
	} else {
		tail = (1-c)*math.Exp(-mu*t) +
			c*(omega*math.Exp(-mu*t)-mu*math.Exp(-omega*t))/(omega-mu)
	}
	v := 1 - tail
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// waitPercentileReference inverts the reference wait CDF by bisection.
func (q MMK) waitPercentileReference(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	return bisectCDFReference(q.mmkWaitCDFReference, p/100, q.MeanWait(), q.D)
}

// responsePercentileReference inverts the reference sojourn CDF.
func (q MMK) responsePercentileReference(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	return bisectCDFReference(q.mmkResponseCDFReference, p/100, q.MeanResponse(), q.D)
}

// bisectCDFReference is the shared reference search: no interpolation,
// no caching — geometric bracketing from the mean (falling back to the
// service time for empty queues) and ~100 bisection steps.
func bisectCDFReference(cdf func(float64) float64, target, mean, d float64) (float64, error) {
	if cdf(0) >= target {
		return 0, nil
	}
	hi := mean
	if hi <= 0 {
		hi = d
	}
	for i := 0; cdf(hi) < target; i++ {
		hi *= 2
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	lo := 0.0
	for i := 0; i < 100 && hi-lo > 1e-12*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
