package queueing

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// property_test.go checks order and invariance properties of the M/D/1
// wait-percentile kernel on randomized inputs: percentiles must be
// nondecreasing in both utilization and percentile level, and the
// distribution scales exactly with the service time (the invariance the
// percentile cache is built on).

// TestWaitPercentileMonotoneInRho: at any fixed percentile, pushing the
// server harder can only lengthen the wait.
func TestWaitPercentileMonotoneInRho(t *testing.T) {
	rng := stats.NewRNG(11)
	for trial := 0; trial < 40; trial++ {
		p := 40 + 59*rng.Float64() // [40, 99)
		d := math.Exp(8 * (rng.Float64() - 0.5))
		rhos := make([]float64, 12)
		for i := range rhos {
			rhos[i] = 0.02 + 0.95*rng.Float64()
		}
		// Sort ascending (insertion sort; n is tiny).
		for i := 1; i < len(rhos); i++ {
			for j := i; j > 0 && rhos[j] < rhos[j-1]; j-- {
				rhos[j], rhos[j-1] = rhos[j-1], rhos[j]
			}
		}
		prev := -1.0
		for _, rho := range rhos {
			q, err := NewMD1FromUtilization(rho, d)
			if err != nil {
				t.Fatal(err)
			}
			w, err := q.WaitPercentile(p)
			if err != nil {
				t.Fatalf("rho=%g p=%g: %v", rho, p, err)
			}
			// Allow the solver tolerance when two rhos are nearly equal.
			if w < prev-1e-9*math.Max(1, prev) {
				t.Fatalf("p%g wait decreased in rho: %g after %g (d=%g)", p, w, prev, d)
			}
			prev = w
		}
	}
}

// TestWaitPercentileMonotoneInP: at any fixed utilization, a higher
// percentile is a (weakly) longer wait.
func TestWaitPercentileMonotoneInP(t *testing.T) {
	rng := stats.NewRNG(12)
	for trial := 0; trial < 40; trial++ {
		rho := 0.05 + 0.93*rng.Float64()
		d := math.Exp(8 * (rng.Float64() - 0.5))
		q, err := NewMD1FromUtilization(rho, d)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
			w, err := q.WaitPercentile(p)
			if err != nil {
				t.Fatalf("rho=%g p=%g: %v", rho, p, err)
			}
			if w < prev-1e-9*math.Max(1, prev) {
				t.Fatalf("rho=%g: p%g wait %g below previous %g", rho, p, w, prev)
			}
			prev = w
		}
	}
}

// TestWaitScaleInvariance: W(rho, D) = D * W(rho, 1) exactly (up to
// 1e-9 relative) across service times spanning ten decades — the
// identity that lets one cached unit-service search serve every D.
func TestWaitScaleInvariance(t *testing.T) {
	rng := stats.NewRNG(13)
	for trial := 0; trial < 60; trial++ {
		rho := 0.05 + 0.93*rng.Float64()
		p := 30 + 69.9*rng.Float64()
		// D from 1e-6 to 1e4.
		d := math.Exp(math.Log(1e-6) + rng.Float64()*math.Log(1e10))

		unit, err := NewMD1FromUtilization(rho, 1)
		if err != nil {
			t.Fatal(err)
		}
		scaled, err := NewMD1FromUtilization(rho, d)
		if err != nil {
			t.Fatal(err)
		}
		wUnit, err := unit.WaitPercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		wScaled, err := scaled.WaitPercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		want := d * wUnit
		if diff := math.Abs(wScaled - want); diff > 1e-9*math.Max(1, math.Max(wScaled, want)) {
			t.Fatalf("rho=%g p=%g d=%g: W=%g, want d*W(1)=%g (diff %g)",
				rho, p, d, wScaled, want, diff)
		}
		// The response percentile shifts by exactly the service time.
		rScaled, err := scaled.ResponsePercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(rScaled - (wScaled + d)); diff > 1e-12*math.Max(1, rScaled) {
			t.Fatalf("response percentile %g != wait %g + d %g", rScaled, wScaled, d)
		}
	}
}

// TestMeanWaitMonotoneAndPK: the Pollaczek-Khinchine mean is monotone in
// rho and matches the closed form rho*D/(2(1-rho)) exactly.
func TestMeanWaitMonotoneAndPK(t *testing.T) {
	rng := stats.NewRNG(14)
	for trial := 0; trial < 100; trial++ {
		rho := 0.02 + 0.96*rng.Float64()
		d := math.Exp(8 * (rng.Float64() - 0.5))
		q, err := NewMD1FromUtilization(rho, d)
		if err != nil {
			t.Fatal(err)
		}
		want := rho * d / (2 * (1 - rho))
		if got := q.MeanWait(); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("rho=%g d=%g: mean wait %g, want %g", rho, d, got, want)
		}
	}
}
