package queueing

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// relOrAbs compares with relative error where the reference is
// meaningfully nonzero, absolute error otherwise.
func relOrAbs(got, want float64) float64 {
	if math.Abs(want) > 1e-300 {
		return math.Abs(got-want) / math.Abs(want)
	}
	return math.Abs(got - want)
}

// TestWaitCDFMatchesReference pins the fast kernel — the incremental
// recurrence, its float64 fast path and the pooled scratch — against the
// original term-by-term extended-precision evaluation across a
// (rho, t/D, D) grid. The 1e-9 budget is the acceptance bound of the
// fast path; the big path agrees far tighter.
func TestWaitCDFMatchesReference(t *testing.T) {
	rhos := []float64{0.05, 0.2, 0.375, 0.5, 0.7, 0.85, 0.9, 0.95}
	ds := []float64{0.25, 1, 3.7}
	taus := []float64{0, 0.3, 0.5, 1, 1.5, 2, 2.5, 3, 5, 7.5, 10, 15, 20, 30, 40}
	for _, rho := range rhos {
		for _, d := range ds {
			q := MD1{Lambda: rho / d, D: d}
			for _, tau := range taus {
				x := tau * d
				got := q.WaitCDF(x)
				want := q.waitCDFReference(x)
				if relOrAbs(got, want) > 1e-9 {
					t.Errorf("rho=%g D=%g t/D=%g: fast %.15g vs reference %.15g",
						rho, d, tau, got, want)
				}
			}
		}
	}
}

// TestFloat64FastPathAccuracy drives the float64 path directly over its
// whole admissible region and checks the claimed 1e-9 bound against the
// extended-precision reference.
func TestFloat64FastPathAccuracy(t *testing.T) {
	covered := 0
	for _, rho := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		q := MD1{Lambda: rho, D: 1}
		for _, x := range stats.Linspace(0, 12, 121) {
			k := int(math.Floor(x / q.D))
			got, ok := waitCDFFloat64(q.Lambda, q.D, x, rho, k)
			if !ok {
				continue
			}
			covered++
			want := q.waitCDFReference(x)
			if relOrAbs(got, want) > 1e-9 {
				t.Errorf("rho=%g t=%g: float64 path %.15g vs reference %.15g",
					rho, x, got, want)
			}
		}
	}
	if covered < 100 {
		t.Fatalf("fast path covered only %d grid points; gate is mis-tuned", covered)
	}
}

// TestWaitPercentileMatchesReference pins the cached regula-falsi search
// against the original bracket-and-bisect search on the reference CDF.
func TestWaitPercentileMatchesReference(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.8, 0.92} {
		for _, d := range []float64{0.5, 1, 2.25} {
			q := MD1{Lambda: rho / d, D: d}
			for _, p := range []float64{50, 75, 90, 95, 99} {
				got, err := q.WaitPercentile(p)
				if err != nil {
					t.Fatal(err)
				}
				want, err := q.waitPercentileReference(p)
				if err != nil {
					t.Fatal(err)
				}
				if relOrAbs(got, want) > 1e-8 {
					t.Errorf("rho=%g D=%g p%g: fast %.12g vs reference %.12g",
						rho, d, p, got, want)
				}
			}
		}
	}
}

// TestDScalingInvariance: WaitPercentile(p; lambda, D) must equal
// D * WaitPercentile(p; lambda*D, 1) — the scale invariance the
// percentile cache is built on.
func TestDScalingInvariance(t *testing.T) {
	for _, rho := range []float64{0.25, 0.6, 0.9} {
		for _, d := range []float64{0.125, 0.9, 4, 17.5} {
			for _, p := range []float64{70, 95, 99} {
				scaled := MD1{Lambda: rho / d, D: d}
				unit := MD1{Lambda: rho, D: 1}
				a, err := scaled.WaitPercentile(p)
				if err != nil {
					t.Fatal(err)
				}
				b, err := unit.WaitPercentile(p)
				if err != nil {
					t.Fatal(err)
				}
				if relOrAbs(a, d*b) > 1e-9 {
					t.Errorf("rho=%g D=%g p%g: %.12g != D*%.12g", rho, d, p, a, b)
				}
			}
		}
	}
}

// TestWaitPercentilesBatchMatchesSingle: the batch API must return
// exactly what per-entry calls return, in the input order, including
// out-of-order and duplicate percentiles and entries inside the atom.
func TestWaitPercentilesBatchMatchesSingle(t *testing.T) {
	q := MD1{Lambda: 0.82 / 1.3, D: 1.3}
	ps := []float64{95, 10, 99, 50, 95, 0, 80.5}
	batch, err := q.WaitPercentiles(ps)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(ps) {
		t.Fatalf("batch returned %d values for %d percentiles", len(batch), len(ps))
	}
	for i, p := range ps {
		single, err := q.WaitPercentile(p)
		if err != nil {
			t.Fatal(err)
		}
		if relOrAbs(batch[i], single) > 1e-9 {
			t.Errorf("p%g: batch %.12g vs single %.12g", p, batch[i], single)
		}
	}
}

// TestResponsePercentilesBatch: the sojourn batch is the wait batch
// shifted by D.
func TestResponsePercentilesBatch(t *testing.T) {
	q := MD1{Lambda: 0.7, D: 1}
	ps := []float64{50, 95, 99}
	rs, err := q.ResponsePercentiles(ps)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := q.WaitPercentiles(ps)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if got, want := rs[i], ws[i]+q.D; got != want {
			t.Errorf("p%g: response %g, want wait+D = %g", ps[i], got, want)
		}
	}
}

// TestWaitCDFBatchMatchesSingle: the shared-evaluator batch matches
// per-call WaitCDF bit for bit.
func TestWaitCDFBatchMatchesSingle(t *testing.T) {
	q := MD1{Lambda: 0.9, D: 1}
	ts := stats.Linspace(-1, 25, 53)
	batch := q.WaitCDFBatch(ts)
	for i, x := range ts {
		if single := q.WaitCDF(x); batch[i] != single {
			t.Errorf("t=%g: batch %g vs single %g", x, batch[i], single)
		}
	}
}

// TestWaitPercentilesRejectsBadInput mirrors the single-query contract.
func TestWaitPercentilesRejectsBadInput(t *testing.T) {
	q := MD1{Lambda: 0.5, D: 1}
	if _, err := q.WaitPercentiles([]float64{50, 100}); err == nil {
		t.Error("expected error for p = 100")
	}
	if _, err := q.WaitPercentiles([]float64{-1}); err == nil {
		t.Error("expected error for negative percentile")
	}
	if _, err := (MD1{Lambda: 2, D: 1}).WaitPercentiles([]float64{50}); err == nil {
		t.Error("expected error for unstable queue")
	}
}

// TestQuantizeRho: the cache lattice must never round onto the unstable
// boundary or the empty queue.
func TestQuantizeRho(t *testing.T) {
	for _, rho := range []float64{1e-16, 0.5, 1 - 1e-15} {
		q := quantizeRho(rho)
		if q <= 0 || q >= 1 {
			t.Errorf("quantizeRho(%g) = %g escapes (0,1)", rho, q)
		}
	}
	if got := quantizeRho(0.75); got != 0.75 {
		t.Errorf("exactly-representable rho moved: %g", got)
	}
	// Perturbations below the lattice spacing collapse onto one key.
	a, b := quantizeRho(0.7), quantizeRho(0.7+1e-15)
	if a != b {
		t.Errorf("adjacent rhos map to different keys: %g vs %g", a, b)
	}
}
