package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestQueueLengthDistIsDistribution(t *testing.T) {
	f := func(rhoRaw uint16) bool {
		rho := 0.05 + 0.9*float64(rhoRaw%1000)/1000
		q := MD1{Lambda: rho, D: 1}
		dist, err := q.QueueLengthDist(400)
		if err != nil {
			return false
		}
		var sum stats.KahanSum
		for _, v := range dist {
			if v < 0 || v > 1 {
				return false
			}
			sum.Add(v)
		}
		// The tail beyond 400 is negligible for rho <= 0.95.
		return math.Abs(sum.Sum()-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQueueLengthP0(t *testing.T) {
	q := MD1{Lambda: 0.7, D: 1}
	dist, err := q.QueueLengthDist(10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dist[0]-0.3) > 1e-12 {
		t.Errorf("P(N=0) = %g, want 1-rho = 0.3", dist[0])
	}
	// P(N=1) = (1-rho)(e^rho - 1) for M/D/1.
	want := 0.3 * (math.Exp(0.7) - 1)
	if math.Abs(dist[1]-want) > 1e-12 {
		t.Errorf("P(N=1) = %g, want %g", dist[1], want)
	}
}

func TestQueueLengthMeanMatchesPK(t *testing.T) {
	for _, rho := range []float64{0.3, 0.6, 0.9} {
		q := MD1{Lambda: rho, D: 1}
		dist, err := q.QueueLengthDist(2000)
		if err != nil {
			t.Fatal(err)
		}
		var mean stats.KahanSum
		for j, v := range dist {
			mean.Add(float64(j) * v)
		}
		want := q.MeanNumberInSystem()
		if stats.RelErr(mean.Sum(), want) > 1e-6 {
			t.Errorf("rho=%g: distribution mean %g, P-K mean %g", rho, mean.Sum(), want)
		}
	}
}

func TestLittlesLaw(t *testing.T) {
	// L = lambda * W must hold as an analytic identity.
	f := func(rhoRaw, dRaw uint16) bool {
		rho := 0.05 + 0.9*float64(rhoRaw%1000)/1000
		d := 0.01 + float64(dRaw%1000)/100
		q := MD1{Lambda: rho / d, D: d}
		L := q.MeanNumberInSystem()
		W := q.MeanResponse()
		return math.Abs(L-q.Lambda*W) < 1e-9*math.Max(1, L)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQueueLengthQuantile(t *testing.T) {
	q := MD1{Lambda: 0.8, D: 1}
	j50, err := q.QueueLengthQuantile(50)
	if err != nil {
		t.Fatal(err)
	}
	j99, err := q.QueueLengthQuantile(99)
	if err != nil {
		t.Fatal(err)
	}
	if j99 <= j50 {
		t.Errorf("p99 queue length %d not above median %d", j99, j50)
	}
	// Consistency with the distribution: cumulative below the quantile
	// must be under the target.
	dist, err := q.QueueLengthDist(j99 + 1)
	if err != nil {
		t.Fatal(err)
	}
	cum := 0.0
	for j := 0; j < j99; j++ {
		cum += dist[j]
	}
	if cum >= 0.99 {
		t.Errorf("cumulative below quantile = %g, want < 0.99", cum)
	}
}

func TestQueueLengthMatchesLindleySimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check skipped in -short")
	}
	// The number-in-system seen by arrivals relates to the waiting time:
	// an arriving job waits W = sum of remaining service; rather than
	// instrument the Lindley recursion for N directly, check the
	// distribution's mean against Little's law applied to the *simulated*
	// mean response.
	q := MD1{Lambda: 0.8, D: 1}
	sim, err := SimulateMD1(q, SimOptions{Jobs: 400000, Warmup: 10000, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	simL := q.Lambda * sim.MeanResponse
	if stats.RelErr(simL, q.MeanNumberInSystem()) > 0.05 {
		t.Errorf("simulated L = %g, analytic %g", simL, q.MeanNumberInSystem())
	}
}

func TestQueueLengthErrors(t *testing.T) {
	q := MD1{Lambda: 0.5, D: 1}
	if _, err := q.QueueLengthDist(-1); err == nil {
		t.Error("negative length accepted")
	}
	bad := MD1{Lambda: 2, D: 1}
	if _, err := bad.QueueLengthDist(10); err == nil {
		t.Error("unstable queue accepted")
	}
	if _, err := q.QueueLengthQuantile(100); err == nil {
		t.Error("quantile 100 accepted")
	}
}
