package queueing

import (
	"testing"

	"repro/internal/telemetry"
)

// kernel_bench_test.go covers the non-M/D/1 kernels; `make
// bench-queueing` picks these up alongside the Crommelin benchmarks
// and appends them to BENCH_queueing.json.

// BenchmarkMG1WaitPercentileWarm measures the cached mixture solve for
// a low-SCV M/G/1 — the steady-state cost once the memo is primed.
func BenchmarkMG1WaitPercentileWarm(b *testing.B) {
	q, err := NewMG1FromUtilization(0.85, 3.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := q.WaitPercentile(99); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.WaitPercentile(99)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// BenchmarkMG1WaitPercentileClosedForm measures the SCV >= 1 branch,
// a pure closed form that bypasses the cache entirely.
func BenchmarkMG1WaitPercentileClosedForm(b *testing.B) {
	q, err := NewMG1FromUtilization(0.85, 3.5, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.WaitPercentile(99)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// BenchmarkMG1ResponsePercentileWarm measures the cached sojourn solve
// on the mixture branch.
func BenchmarkMG1ResponsePercentileWarm(b *testing.B) {
	q, err := NewMG1FromUtilization(0.85, 3.5, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := q.ResponsePercentile(99); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.ResponsePercentile(99)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// BenchmarkErlangC measures the iterative Erlang-B/C recursion, the
// inner loop of every M/M/k evaluation.
func BenchmarkErlangC(b *testing.B) {
	b.Run("k=16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = ErlangC(16, 13.6)
		}
	})
	b.Run("k=256", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			benchSink = ErlangC(256, 217.6)
		}
	})
}

// BenchmarkMMKWaitPercentile measures the closed-form M/M/k wait
// quantile (Erlang-C plus a log).
func BenchmarkMMKWaitPercentile(b *testing.B) {
	q, err := NewMMKFromUtilization(0.85, 3.5, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.WaitPercentile(99)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// BenchmarkMMKResponsePercentile measures the numeric sojourn-quantile
// solve (bracketed bisection over the two-exponential CDF).
func BenchmarkMMKResponsePercentile(b *testing.B) {
	q, err := NewMMKFromUtilization(0.85, 3.5, 16)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := q.ResponsePercentile(99)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = v
	}
}

// TestKernelWarmPathZeroAlloc extends the M/D/1 zero-alloc guarantee to
// the new kernels: once the memo is primed (or when the path is a pure
// closed form), an unscoped percentile query must not allocate. The
// fleet latency twin and the epserve warm path both lean on this.
func TestKernelWarmPathZeroAlloc(t *testing.T) {
	telemetry.SetGlobal(nil)
	resetPercentileCache()
	defer resetPercentileCache()

	mg1Mix, err := NewMG1FromUtilization(0.847213, 3.5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mg1Tail, err := NewMG1FromUtilization(0.847213, 3.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	mmk, err := NewMMKFromUtilization(0.847213, 3.5, 16)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		call func() (float64, error)
	}{
		{"mg1 mixture wait (warm)", func() (float64, error) { return mg1Mix.WaitPercentile(99) }},
		{"mg1 mixture response (warm)", func() (float64, error) { return mg1Mix.ResponsePercentile(99) }},
		{"mg1 closed-form wait", func() (float64, error) { return mg1Tail.WaitPercentile(99) }},
		{"mg1 closed-form response", func() (float64, error) { return mg1Tail.ResponsePercentile(99) }},
		{"mmk wait", func() (float64, error) { return mmk.WaitPercentile(99) }},
	}
	for _, tc := range cases {
		if _, err := tc.call(); err != nil { // warm the memo where one exists
			t.Fatalf("%s: %v", tc.name, err)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if _, err := tc.call(); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s allocated %.1f times per call, want 0", tc.name, allocs)
		}
	}
}
