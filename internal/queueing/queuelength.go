package queueing

import (
	"errors"
	"math"
)

// MeanQueueLength returns the Pollaczek-Khinchine mean number of jobs
// waiting (excluding the one in service): rho^2 / (2(1-rho)).
func (q MD1) MeanQueueLength() float64 {
	rho := q.Rho()
	return rho * rho / (2 * (1 - rho))
}

// MeanNumberInSystem returns the mean number of jobs in the system
// (waiting plus in service): rho + rho^2/(2(1-rho)). By Little's law it
// equals Lambda times MeanResponse.
func (q MD1) MeanNumberInSystem() float64 {
	return q.Rho() + q.MeanQueueLength()
}

// QueueLengthDist returns P(N = j) for j = 0..n, the stationary
// number-in-system distribution seen by a Poisson arrival (PASTA), via
// the embedded Markov chain at departure epochs:
//
//	pi_0     = 1 - rho
//	pi_{j+1} = ( pi_j - pi_0*a_j - sum_{k=1}^{j} pi_k*a_{j-k+1} ) / a_0
//
// where a_k = e^{-rho} rho^k / k! is the probability of k arrivals
// during one deterministic service.
func (q MD1) QueueLengthDist(n int) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, errors.New("queueing: negative distribution length")
	}
	rho := q.Rho()
	// Arrival-count probabilities a_0..a_n.
	a := make([]float64, n+2)
	a[0] = math.Exp(-rho)
	for k := 1; k < len(a); k++ {
		a[k] = a[k-1] * rho / float64(k)
	}
	pi := make([]float64, n+1)
	pi[0] = 1 - rho
	for j := 0; j < n; j++ {
		sum := pi[j] - pi[0]*a[j]
		for k := 1; k <= j; k++ {
			sum -= pi[k] * a[j-k+1]
		}
		v := sum / a[0]
		// The recursion's subtractions can leave tiny negative residue
		// in the far tail; clamp to keep the output a distribution.
		if v < 0 {
			v = 0
		}
		pi[j+1] = v
	}
	return pi, nil
}

// QueueLengthQuantile returns the smallest j with P(N <= j) >= p/100.
// It grows the distribution until the quantile is bracketed.
func (q MD1) QueueLengthQuantile(p float64) (int, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if p < 0 || p >= 100 {
		return 0, errors.New("queueing: quantile out of range")
	}
	target := p / 100
	n := 16
	for iter := 0; iter < 20; iter++ {
		dist, err := q.QueueLengthDist(n)
		if err != nil {
			return 0, err
		}
		cum := 0.0
		for j, v := range dist {
			cum += v
			if cum >= target {
				return j, nil
			}
		}
		n *= 2
	}
	return 0, errors.New("queueing: quantile did not converge")
}
