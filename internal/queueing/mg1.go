package queueing

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// MG1 is a two-moment M/G/1 queue: Poisson arrivals at rate Lambda,
// general service with mean D and squared coefficient of variation SCV.
// The mean wait is the exact Pollaczek-Khinchine delay
// rho*D*(1+SCV)/(2*(1-rho)) for every SCV; the distribution is an
// interpolation anchored at the two exactly-known endpoints:
//
//   - SCV = 0 delegates to the M/D/1 Crommelin kernel (exact), so the
//     default model is reproduced bit-for-bit.
//   - SCV = 1 is the exact M/M/1 closed form.
//   - 0 < SCV < 1 uses the CDF mixture (1-SCV)*F_MD1 + SCV*F_MM1, whose
//     mean is exactly the P-K delay (E[W_MM1] = 2*E[W_MD1]) and which is
//     pointwise monotone in SCV because F_MD1 >= F_MM1 everywhere.
//   - SCV > 1 uses the standard heavy-traffic exponential tail
//     P(W > t) = rho*e^{-t/theta} with theta = E[W]/rho, continuous with
//     the mixture at SCV = 1 and again mean-exact.
//
// The conformance suite pins the endpoints to the exact kernels and the
// interpolated regimes to DES simulation at documented tolerances.
type MG1 struct {
	// Lambda is the arrival rate (jobs per second).
	Lambda float64
	// D is the mean service time (seconds).
	D float64
	// SCV is the squared coefficient of variation Var[S]/E[S]^2 of the
	// service time: 0 deterministic, 1 exponential, >1 hyperexponential.
	SCV float64
}

// NewMG1FromUtilization builds the queue for a target utilization
// rho = Lambda*D at the given mean service time and service-time SCV.
func NewMG1FromUtilization(rho, serviceTime, scv float64) (MG1, error) {
	if serviceTime <= 0 {
		return MG1{}, errors.New("queueing: service time must be positive")
	}
	if rho < 0 || rho >= 1 {
		return MG1{}, fmt.Errorf("queueing: utilization %g outside [0, 1)", rho)
	}
	q := MG1{Lambda: rho / serviceTime, D: serviceTime, SCV: scv}
	if err := q.Validate(); err != nil {
		return MG1{}, err
	}
	return q, nil
}

// Name returns the kernel registry name.
func (q MG1) Name() string { return "mg1" }

// Validate checks queue parameters for stability.
func (q MG1) Validate() error {
	if q.D <= 0 {
		return errors.New("queueing: service time must be positive")
	}
	if q.Lambda < 0 {
		return errors.New("queueing: negative arrival rate")
	}
	if q.SCV < 0 || math.IsInf(q.SCV, 0) || math.IsNaN(q.SCV) {
		return fmt.Errorf("queueing: scv %g must be finite and >= 0", q.SCV)
	}
	if q.Rho() >= 1 {
		return fmt.Errorf("queueing: unstable queue, rho = %g >= 1", q.Rho())
	}
	return nil
}

// Rho returns the utilization Lambda*D.
func (q MG1) Rho() float64 { return q.Lambda * q.D }

// md1 returns the deterministic-service queue at the same load.
func (q MG1) md1() MD1 { return MD1{Lambda: q.Lambda, D: q.D} }

// MeanWait returns the exact Pollaczek-Khinchine mean queueing delay
// lambda*E[S^2]/(2*(1-rho)) = rho*D*(1+SCV)/(2*(1-rho)).
func (q MG1) MeanWait() float64 {
	rho := q.Rho()
	return rho * q.D * (1 + q.SCV) / (2 * (1 - rho))
}

// MeanResponse returns the mean sojourn time. Exact in every SCV
// regime: both the mixture and the exponential-tail branch reproduce
// MeanWait + D.
func (q MG1) MeanResponse() float64 { return q.MeanWait() + q.D }

// tailTheta returns the time constant D*(1+SCV)/(2*(1-rho)) of the
// SCV >= 1 exponential wait tail, chosen so that rho*theta equals the
// exact P-K mean wait.
func (q MG1) tailTheta() float64 {
	return q.D * (1 + q.SCV) / (2 * (1 - q.Rho()))
}

// mm1WaitCDF is the exact M/M/1 waiting-time CDF 1 - rho*e^{-(1-rho)t/d}.
func mm1WaitCDF(rho, d, t float64) float64 {
	if t < 0 {
		return 0
	}
	return 1 - rho*math.Exp(-(1-rho)*t/d)
}

// WaitCDF returns P(W <= t) under the two-moment interpolation.
func (q MG1) WaitCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Rho()
	if rho >= 1 {
		return 0
	}
	switch {
	case q.SCV <= 0:
		return q.md1().WaitCDF(t)
	case q.SCV < 1:
		return (1-q.SCV)*q.md1().WaitCDF(t) + q.SCV*mm1WaitCDF(rho, q.D, t)
	default:
		return 1 - rho*math.Exp(-t/q.tailTheta())
	}
}

// ResponseCDF returns P(R <= t) for the sojourn time. The mixture
// branch mixes the component sojourn CDFs; the SCV >= 1 branch uses the
// exponential tail 1 - beta*e^{-t/theta} sharing the wait tail's time
// constant with beta = rho + 2*(1-rho)/(1+SCV), which keeps R
// stochastically no smaller than W, reduces to the exact M/M/1 sojourn
// at SCV = 1, and reproduces the exact mean response.
func (q MG1) ResponseCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Rho()
	if rho >= 1 {
		return 0
	}
	switch {
	case q.SCV <= 0:
		return q.md1().ResponseCDF(t)
	case q.SCV < 1:
		fm := 1 - math.Exp(-(1-rho)*t/q.D)
		return (1-q.SCV)*q.md1().ResponseCDF(t) + q.SCV*fm
	default:
		beta := rho + 2*(1-rho)/(1+q.SCV)
		v := 1 - beta*math.Exp(-t/q.tailTheta())
		if v < 0 {
			return 0
		}
		return v
	}
}

// WaitPercentile returns the p-th percentile (p in [0,100)) of the
// waiting time. Like M/D/1, the model is scale free in D at fixed rho,
// so mixture solves run on the normalized queue through the process-wide
// percentile cache — keyed by the kernel kind and the SCV bits, so
// kernels at the same (rho, p) never share a cell.
func (q MG1) WaitPercentile(p float64) (float64, error) {
	return q.waitPercentile(p, nil)
}

func (q MG1) waitPercentile(p float64, rc *telemetry.RequestContext) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if q.SCV <= 0 {
		return q.md1().WaitPercentile(p)
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	ins := instruments()
	ins.searches.Inc()
	span := ins.tracer.Start("queueing.wait_percentile")
	if span != nil {
		span.Arg("p", p)
	}
	defer span.End()
	target := p / 100
	rho := q.Rho()
	// Every branch keeps the atom P(W = 0) = 1-rho.
	if 1-rho >= target {
		return 0, nil
	}
	if q.SCV >= 1 {
		// Closed-form exponential tail; no search, no cache entry.
		return q.tailTheta() * math.Log(rho/(1-target)), nil
	}
	w, err := cachedKernelPercentile(pctKindMG1Wait, math.Float64bits(q.SCV), q.SCV, rho, target, rc, solveMG1WaitPercentile)
	if err != nil {
		return 0, err
	}
	return w * q.D, nil
}

// solveMG1WaitPercentile solves the mixture CDF for the normalized
// (D = 1) wait percentile at 0 < scv < 1. The component percentiles
// bracket the mixture exactly: F_MD1 >= F_mix >= F_MM1 pointwise, so the
// M/D/1 percentile (itself cached) is a valid lower bracket and the
// M/M/1 closed form an upper one.
func solveMG1WaitPercentile(rho, scv, target float64) (float64, error) {
	st := &normState{flo: 1 - rho}
	lo, err := cachedNormalizedPercentile(rho, target, st, nil)
	if err != nil {
		return 0, err
	}
	ev := st.ev
	if ev == nil {
		ev = &cdfEvaluator{q: MD1{Lambda: rho, D: 1}, rho: rho}
	}
	mix := func(t float64) float64 {
		return (1-scv)*ev.cdf(t) + scv*mm1WaitCDF(rho, 1, t)
	}
	hi := math.Log(rho/(1-target)) / (1 - rho)
	if hi <= lo {
		hi = lo + 1
	}
	flo, fhi := mix(lo), mix(hi)
	for i := 0; fhi < target; i++ {
		lo, flo = hi, fhi
		hi *= 2
		fhi = mix(hi)
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	return solveCDF(mix, target, lo, flo, hi, fhi), nil
}

// ResponsePercentile returns the p-th percentile of the sojourn time.
func (q MG1) ResponsePercentile(p float64) (float64, error) {
	return q.responsePercentile(p, nil)
}

func (q MG1) responsePercentile(p float64, rc *telemetry.RequestContext) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if q.SCV <= 0 {
		return q.md1().ResponsePercentile(p)
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	ins := instruments()
	ins.searches.Inc()
	span := ins.tracer.Start("queueing.response_percentile")
	if span != nil {
		span.Arg("p", p)
	}
	defer span.End()
	target := p / 100
	if target <= 0 {
		return 0, nil
	}
	rho := q.Rho()
	if q.SCV >= 1 {
		beta := rho + 2*(1-rho)/(1+q.SCV)
		if 1-beta >= target {
			return 0, nil
		}
		return q.tailTheta() * math.Log(beta/(1-target)), nil
	}
	r, err := cachedKernelPercentile(pctKindMG1Resp, math.Float64bits(q.SCV), q.SCV, rho, target, rc, solveMG1ResponsePercentile)
	if err != nil {
		return 0, err
	}
	return r * q.D, nil
}

// solveMG1ResponsePercentile solves the mixture sojourn CDF on the
// normalized queue at 0 < scv < 1. Unlike the wait, the component
// sojourn CDFs cross (M/M/1 has mass below the deterministic service
// time), so the search starts from zero and only the upper bracket
// comes from the component percentiles.
func solveMG1ResponsePercentile(rho, scv, target float64) (float64, error) {
	st := &normState{flo: 1 - rho}
	wd, err := cachedNormalizedPercentile(rho, target, st, nil)
	if err != nil {
		return 0, err
	}
	ev := st.ev
	if ev == nil {
		ev = &cdfEvaluator{q: MD1{Lambda: rho, D: 1}, rho: rho}
	}
	mix := func(t float64) float64 {
		var fd float64
		if t >= 1 {
			fd = ev.cdf(t - 1)
		}
		return (1-scv)*fd + scv*(1-math.Exp(-(1-rho)*t))
	}
	hi := math.Max(wd+1, math.Log(1/(1-target))/(1-rho))
	fhi := mix(hi)
	for i := 0; fhi < target; i++ {
		hi *= 2
		fhi = mix(hi)
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	return solveCDF(mix, target, 0, 0, hi, fhi), nil
}

// WaitPercentiles returns the waiting-time percentiles for every p in
// ps, in input order; results are identical to calling WaitPercentile
// per entry.
func (q MG1) WaitPercentiles(ps []float64) ([]float64, error) {
	return q.WaitPercentilesContext(context.Background(), ps)
}

// WaitPercentilesContext is the batch API with cancellation, checked
// between percentile searches like the M/D/1 batch. The SCV = 0 case
// delegates to the M/D/1 batch and its shared-bracket optimization.
func (q MG1) WaitPercentilesContext(ctx context.Context, ps []float64) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.SCV <= 0 {
		return q.md1().WaitPercentilesContext(ctx, ps)
	}
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("queueing.percentiles")()
	out := make([]float64, len(ps))
	for i, p := range ps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("queueing: percentile batch: %w", err)
		}
		w, err := q.waitPercentile(p, rc)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// ResponsePercentiles returns the sojourn-time percentiles for every p
// in ps, in input order.
func (q MG1) ResponsePercentiles(ps []float64) ([]float64, error) {
	return q.ResponsePercentilesContext(context.Background(), ps)
}

// ResponsePercentilesContext is the batched sojourn percentiles with
// cancellation.
func (q MG1) ResponsePercentilesContext(ctx context.Context, ps []float64) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.SCV <= 0 {
		return q.md1().ResponsePercentilesContext(ctx, ps)
	}
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("queueing.percentiles")()
	out := make([]float64, len(ps))
	for i, p := range ps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("queueing: percentile batch: %w", err)
		}
		r, err := q.responsePercentile(p, rc)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
