package queueing

import (
	"math"
	"math/big"
	"sync"
)

// This file holds the fast Crommelin kernel. The classical formula
//
//	P(W <= t) = (1-rho) * sum_{j=0}^{k} T_j,  T_j = x_j^j/j! * e^{-x_j},
//	x_j = lambda*(jD - t) <= 0,  k = floor(t/D)
//
// was previously evaluated term by term from scratch: an O(j) power loop
// per term (O(k^2) big.Float multiplications overall) plus one full
// extended-precision exponential per term — and the exponential, at
// prec/2 multiplications each, dominated everything. The kernel below
// carries both factors forward across terms:
//
//   - exponentials: x_{j+1} = x_j + lambda*D, so e^{-x_{j+1}} =
//     e^{-x_j} * e^{-lambda*D}. Two bigExpBig calls per CDF evaluation
//     (e^{lambda*t} for j=0 and the per-step factor e^{-lambda*D},
//     cached per precision across a percentile search) replace k+1.
//   - powers: P_{j+1} = x_{j+1}^{j+1}/(j+1)! is carried forward as
//     P_j * (x_{j+1}/x_j)^j * x_{j+1}/(j+1); the ratio power runs in
//     O(log j) multiplications by binary exponentiation, so a CDF call
//     costs O(k log k) big.Float multiplications in place of O(k^2)
//     plus k exponentials. When x_j lands exactly on zero (t an exact
//     multiple of D) the carried product is zero and the next term is
//     rebuilt directly — the only O(j) step, and it cannot repeat.
//
// For small lambda*t the alternating sum fits inside float64 headroom
// and the big.Float machinery is skipped entirely: see waitCDFFloat64
// for the error bound that gates the fast path.

// crommelinBasePrec is the minimum big.Float mantissa precision for the
// alternating Crommelin sum. The term magnitudes grow like e^(2*lambda*t)
// while the result stays in [0,1], so the working precision must scale
// with lambda*t; crommelinPrec computes the required bits.
const crommelinBasePrec = 256

// crommelinMaxPrec caps the working precision (and therefore the largest
// lambda*t the exact formula serves; beyond it the CDF is within 1e-12
// of its asymptotic tail for every utilization the repository sweeps).
const crommelinMaxPrec = 1 << 13

// crommelinPrec returns the working precision for arguments lambda and t:
// enough bits to absorb e^(2*lambda*t) cancellation plus guard bits.
func crommelinPrec(lambda, t float64) uint {
	// log2(e^(2*lambda*t)) = 2*lambda*t/ln2 ≈ 2.885*lambda*t bits.
	need := uint(3*lambda*t) + crommelinBasePrec
	if need > crommelinMaxPrec {
		return crommelinMaxPrec
	}
	// Round up to a multiple of 64 so repeated queries share precisions.
	return (need + 63) &^ 63
}

// fastPathLogBound gates the float64 fast path. The float64 sum loses at
// most (k+2)*maxTerm*eps absolutely with maxTerm <= e^{2*lambda*t}, and
// the result is at least F(0) = 1-rho, so the relative error is bounded
// by (k+2)*e^{2c}/(1-rho) * eps with c = lambda*t and eps ~ 1e-15 per
// term (exp/lgamma round-off). Requiring that amplification factor to
// stay under 1e5 keeps the fast path at least ~1e-10 accurate — an
// order of magnitude inside the 1e-9 differential-test budget.
const fastPathLogBound = 11.5 // ln(1e5)

// waitCDFFloat64 evaluates the Crommelin sum directly in float64 when
// the cancellation bound above holds. Terms are formed in log space
// (j*ln|x| - lgamma(j+1) - x), which is O(1) per term, and accumulated
// with Kahan compensation. Returns ok=false outside the proven region.
func waitCDFFloat64(lambda, d, t, rho float64, k int) (float64, bool) {
	c := lambda * t
	if 2*c+math.Log(float64(k+2))-math.Log(1-rho) > fastPathLogBound {
		return 0, false
	}
	var sum, comp float64
	for j := 0; j <= k; j++ {
		x := lambda * (float64(j)*d - t) // <= 0 for j <= k
		var term float64
		switch {
		case x == 0:
			if j == 0 {
				term = 1
			}
		default:
			lg, _ := math.Lgamma(float64(j) + 1)
			term = math.Exp(float64(j)*math.Log(-x) - lg - x)
			if j&1 == 1 {
				term = -term
			}
		}
		y := term - comp
		s := sum + y
		comp = (s - sum) - y
		sum = s
	}
	v := (1 - rho) * sum
	if v < 0 {
		return 0, true
	}
	if v > 1 {
		return 1, true
	}
	return v, true
}

// crommelinScratch is the big.Float working set of one extended-precision
// CDF evaluation, pooled across calls so the hot percentile searches do
// not re-allocate ~a dozen mantissas per evaluation.
type crommelinScratch struct {
	lb, db, tb           *big.Float // exactly-embedded inputs
	ab                   *big.Float // lambda*D
	x, prevX             *big.Float // x_j, x_{j-1}
	expFac               *big.Float // e^{-x_j}
	p                    *big.Float // x_j^j / j!
	sum, ratio, rpow, sq *big.Float
	tmp, term            *big.Float
}

var crommelinPool = sync.Pool{New: func() any {
	s := &crommelinScratch{}
	for _, f := range s.fields() {
		*f = new(big.Float)
	}
	return s
}}

func (s *crommelinScratch) fields() []**big.Float {
	return []**big.Float{&s.lb, &s.db, &s.tb, &s.ab, &s.x, &s.prevX,
		&s.expFac, &s.p, &s.sum, &s.ratio, &s.rpow, &s.sq, &s.tmp, &s.term}
}

func getScratch(prec uint) *crommelinScratch {
	s := crommelinPool.Get().(*crommelinScratch)
	for _, f := range s.fields() {
		// Reset before re-precisioning: SetPrec would otherwise round the
		// stale mantissa, which is wasted work at 8k-bit precisions.
		(*f).SetInt64(0).SetPrec(prec)
	}
	return s
}

func putScratch(s *crommelinScratch) { crommelinPool.Put(s) }

// powBig sets dst = base^n (n >= 1) by binary exponentiation, using sq
// as the running-square scratch. dst must not alias base or sq.
func powBig(dst, base, sq *big.Float, n int) *big.Float {
	dst.SetInt64(1)
	sq.Set(base)
	for n > 0 {
		if n&1 == 1 {
			dst.Mul(dst, sq)
		}
		n >>= 1
		if n > 0 {
			sq.Mul(sq, sq)
		}
	}
	return dst
}

// cdfEvaluator evaluates P(W <= t) for one queue, caching the per-step
// exponential factor e^{-lambda*D} across calls (per working precision,
// which varies with t). Percentile searches and batch CDF evaluations
// hold one evaluator for their whole run; the zero-cost construction in
// MD1.WaitCDF makes a transient one.
type cdfEvaluator struct {
	q    MD1
	rho  float64
	expQ map[uint]*big.Float // e^{-lambda*D} keyed by working precision
}

// cdf returns P(W <= t); semantics identical to the classical evaluation.
func (ev *cdfEvaluator) cdf(t float64) float64 {
	instruments().cdfCalls.Inc()
	if t < 0 {
		return 0
	}
	if ev.rho >= 1 {
		return 0
	}
	if ev.q.Lambda == 0 {
		return 1
	}
	k := int(math.Floor(t / ev.q.D))
	if v, ok := waitCDFFloat64(ev.q.Lambda, ev.q.D, t, ev.rho, k); ok {
		return v
	}
	return ev.cdfBig(t, k)
}

// stepFactor returns e^{-lambda*D} at the given precision, memoized on
// the evaluator. ab must already hold lambda*D at that precision.
func (ev *cdfEvaluator) stepFactor(prec uint, ab *big.Float) *big.Float {
	if v, ok := ev.expQ[prec]; ok {
		return v
	}
	neg := new(big.Float).SetPrec(prec).Neg(ab)
	v := bigExpBig(neg, prec)
	if ev.expQ == nil {
		ev.expQ = make(map[uint]*big.Float, 4)
	}
	ev.expQ[prec] = v
	return v
}

// cdfBig runs the incremental recurrence in extended precision.
func (ev *cdfEvaluator) cdfBig(t float64, k int) float64 {
	prec := crommelinPrec(ev.q.Lambda, t)
	s := getScratch(prec)
	defer putScratch(s)

	// Every intermediate must be formed in extended precision from the
	// exactly-embedded float64 inputs. Forming x_j = lambda*(jD - t) in
	// float64 first perturbs each alternating term by ~1e-16 relative,
	// which the huge term magnitudes amplify into O(1) error in the sum.
	s.lb.SetFloat64(ev.q.Lambda)
	s.db.SetFloat64(ev.q.D)
	s.tb.SetFloat64(t)
	s.ab.Mul(s.lb, s.db)

	// j = 0: x_0 = -lambda*t, T_0 = e^{lambda*t}.
	s.x.Mul(s.lb, s.tb)
	s.x.Neg(s.x)
	s.tmp.Neg(s.x)
	s.expFac.Set(bigExpBig(s.tmp, prec))
	qb := ev.stepFactor(prec, s.ab)
	s.sum.Set(s.expFac)
	s.p.SetInt64(1)

	for j := 1; j <= k; j++ {
		s.prevX.Set(s.x)
		s.x.Add(s.x, s.ab)
		s.expFac.Mul(s.expFac, qb)
		switch {
		case j == 1:
			s.p.Set(s.x)
		case s.prevX.Sign() == 0:
			// The carried product is zero (x_{j-1} = 0 exactly); rebuild
			// P_j = x^j/j! directly. Happens at most once per call.
			powBig(s.p, s.x, s.sq, j)
			for i := 2; i <= j; i++ {
				s.p.Quo(s.p, s.tmp.SetInt64(int64(i)))
			}
		default:
			s.ratio.Quo(s.x, s.prevX)
			powBig(s.rpow, s.ratio, s.sq, j-1)
			s.p.Mul(s.p, s.rpow)
			s.p.Mul(s.p, s.x)
			s.p.Quo(s.p, s.tmp.SetInt64(int64(j)))
		}
		s.term.Mul(s.p, s.expFac)
		s.sum.Add(s.sum, s.term)
	}
	s.sum.Mul(s.sum, s.tmp.SetFloat64(1-ev.rho))
	v, _ := s.sum.Float64()
	// Round-off can push the exact result a hair outside [0,1].
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
