package queueing

import (
	"errors"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// SimOptions controls the Monte-Carlo queue simulation.
type SimOptions struct {
	// Jobs is the number of simulated arrivals.
	Jobs int
	// Warmup discards the first arrivals so percentiles reflect steady
	// state rather than the empty initial queue.
	Warmup int
	// Seed makes the run reproducible.
	Seed uint64
}

// DefaultSimOptions returns settings adequate for 95th-percentile
// estimates at moderate utilization.
func DefaultSimOptions() SimOptions {
	return SimOptions{Jobs: 200000, Warmup: 5000, Seed: 1}
}

// SimResult holds the simulated sojourn-time distribution.
type SimResult struct {
	// Responses are the retained sojourn times, sorted ascending.
	Responses []float64
	// MeanResponse is the average over retained jobs.
	MeanResponse float64
}

// Percentile returns the p-th percentile of the simulated sojourn time.
func (r SimResult) Percentile(p float64) (float64, error) {
	return stats.PercentileSorted(r.Responses, p)
}

// SimulateMD1 runs a Lindley-recursion simulation of the M/D/1 queue:
// W_{n+1} = max(0, W_n + D - A_n), where A_n is the exponential
// inter-arrival gap. It is the cross-check for Crommelin's formula and
// the fallback for regimes outside its numerical comfort zone.
func SimulateMD1(q MD1, opt SimOptions) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if opt.Jobs <= 0 {
		return SimResult{}, errors.New("queueing: simulation needs at least one job")
	}
	if opt.Warmup >= opt.Jobs {
		return SimResult{}, errors.New("queueing: warmup must leave jobs to measure")
	}
	reg := telemetry.Global()
	span := reg.Tracer().Start("queueing.simulate_md1").Arg("jobs", opt.Jobs)
	defer span.End()
	reg.Counter("queueing.jobs_simulated").Add(uint64(opt.Jobs))
	rng := stats.NewRNG(opt.Seed)
	kept := make([]float64, 0, opt.Jobs-opt.Warmup)
	var sum stats.KahanSum
	w := 0.0
	for i := 0; i < opt.Jobs; i++ {
		if i >= opt.Warmup {
			resp := w + q.D
			kept = append(kept, resp)
			sum.Add(resp)
		}
		var gap float64
		if q.Lambda > 0 {
			gap = rng.ExpFloat64(q.Lambda)
		} else {
			// Zero arrival rate: a single job never queues.
			gap = 0
			w = 0
			continue
		}
		w += q.D - gap
		if w < 0 {
			w = 0
		}
	}
	sort.Float64s(kept)
	return SimResult{
		Responses:    kept,
		MeanResponse: sum.Sum() / float64(len(kept)),
	}, nil
}

// ServiceSampler returns a service-time sampler with mean d and the
// given squared coefficient of variation, built from the standard
// moment-matching phase-type recipes:
//
//   - scv = 0: deterministic.
//   - 0 < scv < 1: mixed Erlang E_{k-1,k} (Tijms): with k = ceil(1/scv),
//     an Erlang of k-1 or k phases at a common rate, the mixture weight
//     chosen so both moments match exactly. scv = 1/k degenerates to the
//     pure Erlang-k.
//   - scv = 1: exponential.
//   - scv > 1: balanced-means two-phase hyperexponential H2, again
//     matching both moments exactly.
//
// The DES side of the kernel conformance suite uses these to drive
// SimulateGG1 against the M/G/1 kernel at each SCV rung.
func ServiceSampler(d, scv float64) (func(*stats.RNG) float64, error) {
	if d <= 0 {
		return nil, errors.New("queueing: service time must be positive")
	}
	if scv < 0 || math.IsInf(scv, 0) || math.IsNaN(scv) {
		return nil, errors.New("queueing: scv must be finite and >= 0")
	}
	switch {
	case scv == 0:
		return func(*stats.RNG) float64 { return d }, nil
	case scv < 1:
		k := int(math.Ceil(1 / scv))
		kf := float64(k)
		p := (kf*scv - math.Sqrt(kf*(1+scv)-kf*kf*scv)) / (1 + scv)
		rate := (kf - p) / d
		return func(rng *stats.RNG) float64 {
			phases := k
			if rng.Float64() < p {
				phases = k - 1
			}
			var s float64
			for i := 0; i < phases; i++ {
				s += rng.ExpFloat64(rate)
			}
			return s
		}, nil
	case scv == 1:
		return func(rng *stats.RNG) float64 { return rng.ExpFloat64(1 / d) }, nil
	default:
		p1 := (1 + math.Sqrt((scv-1)/(scv+1))) / 2
		mu1 := 2 * p1 / d
		mu2 := 2 * (1 - p1) / d
		return func(rng *stats.RNG) float64 {
			if rng.Float64() < p1 {
				return rng.ExpFloat64(mu1)
			}
			return rng.ExpFloat64(mu2)
		}, nil
	}
}

// SimulateMMK runs a discrete-event simulation of the M/M/k queue:
// FCFS arrivals assigned to the earliest-free of K servers, exponential
// service per server. It is the cross-check for the Erlang-C kernel.
func SimulateMMK(q MMK, opt SimOptions) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if opt.Jobs <= 0 {
		return SimResult{}, errors.New("queueing: simulation needs at least one job")
	}
	if opt.Warmup >= opt.Jobs {
		return SimResult{}, errors.New("queueing: warmup must leave jobs to measure")
	}
	reg := telemetry.Global()
	span := reg.Tracer().Start("queueing.simulate_mmk").Arg("jobs", opt.Jobs)
	defer span.End()
	reg.Counter("queueing.jobs_simulated").Add(uint64(opt.Jobs))
	rng := stats.NewRNG(opt.Seed)
	mu := 1 / q.D
	free := make([]float64, q.K)
	kept := make([]float64, 0, opt.Jobs-opt.Warmup)
	var sum stats.KahanSum
	t := 0.0
	for i := 0; i < opt.Jobs; i++ {
		if q.Lambda > 0 {
			t += rng.ExpFloat64(q.Lambda)
		} else {
			// Zero arrival rate: a single job never queues; its sojourn
			// is one service draw.
			t = free[0]
		}
		// FCFS: the job takes the earliest-free server.
		mi := 0
		for j := 1; j < len(free); j++ {
			if free[j] < free[mi] {
				mi = j
			}
		}
		start := t
		if free[mi] > start {
			start = free[mi]
		}
		done := start + rng.ExpFloat64(mu)
		free[mi] = done
		if i >= opt.Warmup {
			resp := done - t
			kept = append(kept, resp)
			sum.Add(resp)
		}
	}
	sort.Float64s(kept)
	return SimResult{
		Responses:    kept,
		MeanResponse: sum.Sum() / float64(len(kept)),
	}, nil
}

// SimulateGG1 runs a Lindley-recursion simulation with caller-supplied
// inter-arrival and service samplers, for sensitivity studies beyond
// M/D/1 (e.g. service-time jitter from the cluster simulator).
func SimulateGG1(arrival, service func(*stats.RNG) float64, opt SimOptions) (SimResult, error) {
	if opt.Jobs <= 0 {
		return SimResult{}, errors.New("queueing: simulation needs at least one job")
	}
	if opt.Warmup >= opt.Jobs {
		return SimResult{}, errors.New("queueing: warmup must leave jobs to measure")
	}
	reg := telemetry.Global()
	span := reg.Tracer().Start("queueing.simulate_gg1").Arg("jobs", opt.Jobs)
	defer span.End()
	reg.Counter("queueing.jobs_simulated").Add(uint64(opt.Jobs))
	rng := stats.NewRNG(opt.Seed)
	kept := make([]float64, 0, opt.Jobs-opt.Warmup)
	var sum stats.KahanSum
	w := 0.0
	for i := 0; i < opt.Jobs; i++ {
		s := service(rng)
		if s < 0 {
			return SimResult{}, errors.New("queueing: negative service time sampled")
		}
		if i >= opt.Warmup {
			resp := w + s
			kept = append(kept, resp)
			sum.Add(resp)
		}
		a := arrival(rng)
		if a < 0 {
			return SimResult{}, errors.New("queueing: negative inter-arrival sampled")
		}
		w += s - a
		if w < 0 {
			w = 0
		}
	}
	sort.Float64s(kept)
	return SimResult{
		Responses:    kept,
		MeanResponse: sum.Sum() / float64(len(kept)),
	}, nil
}
