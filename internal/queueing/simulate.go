package queueing

import (
	"errors"
	"sort"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// SimOptions controls the Monte-Carlo queue simulation.
type SimOptions struct {
	// Jobs is the number of simulated arrivals.
	Jobs int
	// Warmup discards the first arrivals so percentiles reflect steady
	// state rather than the empty initial queue.
	Warmup int
	// Seed makes the run reproducible.
	Seed uint64
}

// DefaultSimOptions returns settings adequate for 95th-percentile
// estimates at moderate utilization.
func DefaultSimOptions() SimOptions {
	return SimOptions{Jobs: 200000, Warmup: 5000, Seed: 1}
}

// SimResult holds the simulated sojourn-time distribution.
type SimResult struct {
	// Responses are the retained sojourn times, sorted ascending.
	Responses []float64
	// MeanResponse is the average over retained jobs.
	MeanResponse float64
}

// Percentile returns the p-th percentile of the simulated sojourn time.
func (r SimResult) Percentile(p float64) (float64, error) {
	return stats.PercentileSorted(r.Responses, p)
}

// SimulateMD1 runs a Lindley-recursion simulation of the M/D/1 queue:
// W_{n+1} = max(0, W_n + D - A_n), where A_n is the exponential
// inter-arrival gap. It is the cross-check for Crommelin's formula and
// the fallback for regimes outside its numerical comfort zone.
func SimulateMD1(q MD1, opt SimOptions) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if opt.Jobs <= 0 {
		return SimResult{}, errors.New("queueing: simulation needs at least one job")
	}
	if opt.Warmup >= opt.Jobs {
		return SimResult{}, errors.New("queueing: warmup must leave jobs to measure")
	}
	reg := telemetry.Global()
	span := reg.Tracer().Start("queueing.simulate_md1").Arg("jobs", opt.Jobs)
	defer span.End()
	reg.Counter("queueing.jobs_simulated").Add(uint64(opt.Jobs))
	rng := stats.NewRNG(opt.Seed)
	kept := make([]float64, 0, opt.Jobs-opt.Warmup)
	var sum stats.KahanSum
	w := 0.0
	for i := 0; i < opt.Jobs; i++ {
		if i >= opt.Warmup {
			resp := w + q.D
			kept = append(kept, resp)
			sum.Add(resp)
		}
		var gap float64
		if q.Lambda > 0 {
			gap = rng.ExpFloat64(q.Lambda)
		} else {
			// Zero arrival rate: a single job never queues.
			gap = 0
			w = 0
			continue
		}
		w += q.D - gap
		if w < 0 {
			w = 0
		}
	}
	sort.Float64s(kept)
	return SimResult{
		Responses:    kept,
		MeanResponse: sum.Sum() / float64(len(kept)),
	}, nil
}

// SimulateGG1 runs a Lindley-recursion simulation with caller-supplied
// inter-arrival and service samplers, for sensitivity studies beyond
// M/D/1 (e.g. service-time jitter from the cluster simulator).
func SimulateGG1(arrival, service func(*stats.RNG) float64, opt SimOptions) (SimResult, error) {
	if opt.Jobs <= 0 {
		return SimResult{}, errors.New("queueing: simulation needs at least one job")
	}
	if opt.Warmup >= opt.Jobs {
		return SimResult{}, errors.New("queueing: warmup must leave jobs to measure")
	}
	reg := telemetry.Global()
	span := reg.Tracer().Start("queueing.simulate_gg1").Arg("jobs", opt.Jobs)
	defer span.End()
	reg.Counter("queueing.jobs_simulated").Add(uint64(opt.Jobs))
	rng := stats.NewRNG(opt.Seed)
	kept := make([]float64, 0, opt.Jobs-opt.Warmup)
	var sum stats.KahanSum
	w := 0.0
	for i := 0; i < opt.Jobs; i++ {
		s := service(rng)
		if s < 0 {
			return SimResult{}, errors.New("queueing: negative service time sampled")
		}
		if i >= opt.Warmup {
			resp := w + s
			kept = append(kept, resp)
			sum.Add(resp)
		}
		a := arrival(rng)
		if a < 0 {
			return SimResult{}, errors.New("queueing: negative inter-arrival sampled")
		}
		w += s - a
		if w < 0 {
			w = 0
		}
	}
	sort.Float64s(kept)
	return SimResult{
		Responses:    kept,
		MeanResponse: sum.Sum() / float64(len(kept)),
	}, nil
}
