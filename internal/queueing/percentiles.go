package queueing

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/telemetry"
)

// WaitPercentiles returns the waiting-time percentiles for every p in ps
// (each in [0, 100)), in the input order. The batch visits the targets
// in ascending order so each solved percentile becomes the lower bracket
// of the next, and shares one normalized-queue evaluator — its cached
// per-step exponential and pooled big.Float scratch — across all
// searches. Results are identical to calling WaitPercentile per entry.
func (q MD1) WaitPercentiles(ps []float64) ([]float64, error) {
	return q.WaitPercentilesContext(context.Background(), ps)
}

// WaitPercentilesContext is WaitPercentiles with cancellation: the batch
// checks ctx between percentile searches and stops with ctx's error as
// soon as it is done. A search already under way (microseconds on the
// fast path, milliseconds at extreme utilization) completes before the
// check, so cancellation granularity is one search. This is the entry
// point request-scoped callers (the epserve handlers) use to propagate
// per-request deadlines into the kernel.
func (q MD1) WaitPercentilesContext(ctx context.Context, ps []float64) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	for _, p := range ps {
		if p < 0 || p >= 100 {
			return nil, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
		}
	}
	ins := instruments()
	span := ins.tracer.Start("queueing.wait_percentiles").Arg("n", len(ps))
	defer span.End()
	// Request-scoped callers (the epserve handlers) carry a
	// RequestContext in ctx; resolve it once per batch so every cache
	// lookup below attributes to the owning request. Nil outside a
	// request scope, where Add/Phase are no-ops.
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("queueing.percentiles")()

	order := make([]int, len(ps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ps[order[a]] < ps[order[b]] })

	rho := q.Rho()
	st := &normState{flo: 1 - rho}
	out := make([]float64, len(ps))
	for _, idx := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("queueing: percentile batch: %w", err)
		}
		ins.searches.Inc()
		target := ps[idx] / 100
		if 1-rho >= target {
			out[idx] = 0
			continue
		}
		w, err := cachedNormalizedPercentile(rho, target, st, rc)
		if err != nil {
			return nil, err
		}
		out[idx] = w * q.D
	}
	return out, nil
}

// ResponsePercentiles returns the sojourn-time percentiles for every p
// in ps, in the input order: the batched waiting-time percentiles
// shifted by the deterministic service time.
func (q MD1) ResponsePercentiles(ps []float64) ([]float64, error) {
	return q.ResponsePercentilesContext(context.Background(), ps)
}

// ResponsePercentilesContext is ResponsePercentiles with cancellation,
// with the same per-search granularity as WaitPercentilesContext.
func (q MD1) ResponsePercentilesContext(ctx context.Context, ps []float64) ([]float64, error) {
	ws, err := q.WaitPercentilesContext(ctx, ps)
	if err != nil {
		return nil, err
	}
	for i := range ws {
		ws[i] += q.D
	}
	return ws, nil
}

// WaitCDFBatch returns P(W <= t) for every t in ts, sharing one
// evaluator — and therefore one e^{-lambda*D} step factor per working
// precision — across the evaluations. Results are identical to calling
// WaitCDF per entry.
func (q MD1) WaitCDFBatch(ts []float64) []float64 {
	ev := cdfEvaluator{q: q, rho: q.Rho()}
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = ev.cdf(t)
	}
	return out
}
