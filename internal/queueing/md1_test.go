package queueing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestMD1UtilizationIdentity(t *testing.T) {
	q, err := NewMD1FromUtilization(0.3, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Rho(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("rho = %g, want 0.3", got)
	}
}

func TestMD1RejectsUnstable(t *testing.T) {
	if _, err := NewMD1FromUtilization(1.0, 1); err == nil {
		t.Error("expected error for rho = 1")
	}
	if _, err := NewMD1FromUtilization(-0.1, 1); err == nil {
		t.Error("expected error for negative rho")
	}
	if _, err := NewMD1FromUtilization(0.5, 0); err == nil {
		t.Error("expected error for zero service time")
	}
}

func TestMeanWaitPollaczekKhinchine(t *testing.T) {
	// rho=0.5, D=1: W = 0.5/(2*0.5) = 0.5.
	q := MD1{Lambda: 0.5, D: 1}
	if got := q.MeanWait(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("mean wait = %g, want 0.5", got)
	}
}

func TestWaitCDFBoundaries(t *testing.T) {
	q := MD1{Lambda: 0.7, D: 1}
	if got := q.WaitCDF(0); math.Abs(got-0.3) > 1e-9 {
		t.Errorf("P(W<=0) = %g, want 1-rho = 0.3", got)
	}
	if got := q.WaitCDF(-1); got != 0 {
		t.Errorf("P(W<=-1) = %g, want 0", got)
	}
	if got := q.WaitCDF(200); math.Abs(got-1) > 1e-6 {
		t.Errorf("P(W<=200) = %g, want ~1", got)
	}
}

// TestWaitCDFMonotone is a property test: the CDF must be nondecreasing
// in t and continuous at multiples of D.
func TestWaitCDFMonotone(t *testing.T) {
	f := func(rhoRaw, seedRaw uint32) bool {
		rho := 0.05 + 0.9*float64(rhoRaw%1000)/1000
		q := MD1{Lambda: rho, D: 1}
		prev := -1.0
		for _, x := range stats.Linspace(0, 40, 400) {
			v := q.WaitCDF(x)
			if v < prev-1e-9 || v < 0 || v > 1 {
				t.Logf("rho=%g: CDF(%g)=%g after %g", rho, x, v, prev)
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestWaitCDFContinuityAtD checks there is no jump at the service-time
// boundary where Crommelin's k increments.
func TestWaitCDFContinuityAtD(t *testing.T) {
	q := MD1{Lambda: 0.8, D: 1}
	for _, k := range []float64{1, 2, 3, 5, 10} {
		below := q.WaitCDF(k - 1e-9)
		above := q.WaitCDF(k + 1e-9)
		if math.Abs(below-above) > 1e-6 {
			t.Errorf("CDF discontinuous at t=%g: %g vs %g", k, below, above)
		}
	}
}

// TestCrommelinMatchesSimulation cross-validates the analytic CDF against
// the Lindley-recursion Monte-Carlo across utilizations.
func TestCrommelinMatchesSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation cross-check skipped in -short")
	}
	for _, rho := range []float64{0.3, 0.5, 0.7, 0.9} {
		q := MD1{Lambda: rho, D: 1}
		sim, err := SimulateMD1(q, SimOptions{Jobs: 400000, Warmup: 10000, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []float64{50, 90, 95, 99} {
			want, err := q.ResponsePercentile(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Percentile(p)
			if err != nil {
				t.Fatal(err)
			}
			if stats.RelErr(got, want) > 0.05 {
				t.Errorf("rho=%g p%g: sim %.4g vs analytic %.4g", rho, p, got, want)
			}
		}
	}
}

// TestResponsePercentileIncreasesWithUtilization checks the figure-11/12
// premise that tail latency grows with load.
func TestResponsePercentileIncreasesWithUtilization(t *testing.T) {
	prev := 0.0
	for _, rho := range []float64{0.2, 0.4, 0.6, 0.8, 0.9, 0.95} {
		q := MD1{Lambda: rho, D: 1}
		p95, err := q.ResponsePercentile(95)
		if err != nil {
			t.Fatal(err)
		}
		if p95 <= prev {
			t.Errorf("p95 at rho=%g (%g) not above previous (%g)", rho, p95, prev)
		}
		prev = p95
	}
}

// TestResponsePercentileScalesWithService checks that halving the service
// time halves every percentile (M/D/1 is scale free in D at fixed rho).
func TestResponsePercentileScalesWithService(t *testing.T) {
	q1 := MD1{Lambda: 0.6, D: 1}
	q2 := MD1{Lambda: 0.6 / 0.5, D: 0.5}
	a, err := q1.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := q2.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(b, a/2) > 1e-6 {
		t.Errorf("scaled percentile %g, want %g", b, a/2)
	}
}

func TestMM1Percentile(t *testing.T) {
	q := MM1{Lambda: 0.5, D: 1}
	// Sojourn exponential with rate (1-rho)/D = 0.5; p95 = ln(20)/0.5.
	want := math.Log(20) / 0.5
	got, err := q.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RelErr(got, want) > 1e-12 {
		t.Errorf("MM1 p95 = %g, want %g", got, want)
	}
}

func TestMD1TailBelowMM1(t *testing.T) {
	// Deterministic service has lower variance, so its tail must sit
	// below M/M/1 at the same utilization.
	md1 := MD1{Lambda: 0.7, D: 1}
	mm1 := MM1{Lambda: 0.7, D: 1}
	a, err := md1.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mm1.ResponsePercentile(95)
	if err != nil {
		t.Fatal(err)
	}
	if a >= b {
		t.Errorf("M/D/1 p95 %g not below M/M/1 p95 %g", a, b)
	}
}

func TestSimulateGG1DeterministicArrivals(t *testing.T) {
	// D/D/1 with arrival gap > service never queues: response == service.
	res, err := SimulateGG1(
		func(*stats.RNG) float64 { return 2 },
		func(*stats.RNG) float64 { return 1 },
		SimOptions{Jobs: 1000, Warmup: 10, Seed: 7},
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Responses {
		if r != 1 {
			t.Fatalf("D/D/1 response %g, want 1", r)
		}
	}
}

func TestSimulateMD1InvalidOptions(t *testing.T) {
	q := MD1{Lambda: 0.5, D: 1}
	if _, err := SimulateMD1(q, SimOptions{Jobs: 0}); err == nil {
		t.Error("expected error for zero jobs")
	}
	if _, err := SimulateMD1(q, SimOptions{Jobs: 10, Warmup: 10}); err == nil {
		t.Error("expected error for warmup >= jobs")
	}
}
