package queueing

import (
	"errors"
	"math"
	"math/big"
)

// This file keeps the original, straightforward Crommelin evaluation —
// every term rebuilt from scratch in extended precision with its own
// exponential — and the original bracket-plus-bisect percentile search.
// They are the ground truth the differential tests pin the fast kernel
// against, and the "old" side of the old-vs-new benchmarks; nothing
// outside tests and benchmarks should call them.

// waitCDFReference evaluates P(W <= t) term by term: O(j) big.Float
// multiplications per term plus one full extended-precision exponential
// per term.
func (q MD1) waitCDFReference(t float64) float64 {
	if t < 0 {
		return 0
	}
	rho := q.Rho()
	if rho >= 1 {
		return 0
	}
	if q.Lambda == 0 {
		return 1
	}
	k := int(math.Floor(t / q.D))
	prec := crommelinPrec(q.Lambda, t)
	lb := new(big.Float).SetPrec(prec).SetFloat64(q.Lambda)
	db := new(big.Float).SetPrec(prec).SetFloat64(q.D)
	tb := new(big.Float).SetPrec(prec).SetFloat64(t)
	sum := new(big.Float).SetPrec(prec)
	term := new(big.Float).SetPrec(prec)
	xb := new(big.Float).SetPrec(prec)
	for j := 0; j <= k; j++ {
		// xb = lambda * (j*D - t), <= 0 for j <= k.
		xb.SetInt64(int64(j))
		xb.Mul(xb, db)
		xb.Sub(xb, tb)
		xb.Mul(xb, lb)
		// term = xb^j / j! * e^{-xb}
		term.SetFloat64(1)
		for i := 1; i <= j; i++ {
			term.Mul(term, xb)
			term.Quo(term, new(big.Float).SetPrec(prec).SetInt64(int64(i)))
		}
		neg := new(big.Float).SetPrec(prec).Neg(xb)
		term.Mul(term, bigExpBig(neg, prec))
		sum.Add(sum, term)
	}
	sum.Mul(sum, new(big.Float).SetPrec(prec).SetFloat64(1-rho))
	v, _ := sum.Float64()
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// waitPercentileReference is the original search: geometric bracketing
// from the mean wait followed by ~60-100 blind bisection steps, each a
// full reference CDF evaluation. No caching, no interpolation.
func (q MD1) waitPercentileReference(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	target := p / 100
	if q.waitCDFReference(0) >= target {
		return 0, nil
	}
	hi := q.MeanWait()
	if hi <= 0 {
		hi = q.D
	}
	for i := 0; q.waitCDFReference(hi) < target; i++ {
		hi *= 2
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	lo := 0.0
	for i := 0; i < 100 && hi-lo > 1e-12*math.Max(1, hi); i++ {
		mid := (lo + hi) / 2
		if q.waitCDFReference(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
