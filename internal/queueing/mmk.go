package queueing

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/telemetry"
)

// MMK is an M/M/k queue: Poisson arrivals at rate Lambda served FIFO by
// K parallel servers, each with exponential service of mean D. Unlike
// the interpolated M/G/1 kernel, every formula here is exact: the
// waiting time is the Erlang-C probability times an exponential,
// P(W > t) = C(k, a) * e^{-(k-a)t/D} with offered load a = Lambda*D,
// and the sojourn is its convolution with one exponential service.
//
// The kernel models a cluster of k wimpy nodes as one k-server queue
// rather than k independent single-server queues: Spec.Build spreads an
// aggregate service time over the k servers so total capacity and
// per-server utilization match the single-queue models at the same rho.
type MMK struct {
	// Lambda is the arrival rate (jobs per second).
	Lambda float64
	// D is the per-server mean service time (seconds).
	D float64
	// K is the number of servers.
	K int
}

// NewMMKFromUtilization builds the queue for a target per-server
// utilization rho from the aggregate service time (seconds per job with
// all k servers on it): each server serves a full job in k*serviceTime,
// preserving total capacity 1/serviceTime and making MMK at k = 1 the
// exact M/M/1 counterpart of the single-server kernels.
func NewMMKFromUtilization(rho, serviceTime float64, k int) (MMK, error) {
	if serviceTime <= 0 {
		return MMK{}, errors.New("queueing: service time must be positive")
	}
	if k < 1 {
		return MMK{}, fmt.Errorf("queueing: mmk needs servers >= 1, got %d", k)
	}
	if rho < 0 || rho >= 1 {
		return MMK{}, fmt.Errorf("queueing: utilization %g outside [0, 1)", rho)
	}
	return MMK{Lambda: rho / serviceTime, D: serviceTime * float64(k), K: k}, nil
}

// Name returns the kernel registry name.
func (q MMK) Name() string { return "mmk" }

// Validate checks queue parameters for stability.
func (q MMK) Validate() error {
	if q.D <= 0 {
		return errors.New("queueing: service time must be positive")
	}
	if q.K < 1 {
		return fmt.Errorf("queueing: mmk needs servers >= 1, got %d", q.K)
	}
	if q.Lambda < 0 {
		return errors.New("queueing: negative arrival rate")
	}
	if q.Rho() >= 1 {
		return fmt.Errorf("queueing: unstable queue, rho = %g >= 1", q.Rho())
	}
	return nil
}

// Offered returns the offered load a = Lambda*D in erlangs.
func (q MMK) Offered() float64 { return q.Lambda * q.D }

// Rho returns the per-server utilization a/k.
func (q MMK) Rho() float64 { return q.Offered() / float64(q.K) }

// ErlangB returns the Erlang-B blocking probability B(k, a) via the
// standard recurrence B(j) = a*B(j-1) / (j + a*B(j-1)), which is
// numerically stable for any load (no factorials, no overflow).
func ErlangB(k int, a float64) float64 {
	if k < 1 || a <= 0 {
		return 0
	}
	b := 1.0
	for j := 1; j <= k; j++ {
		b = a * b / (float64(j) + a*b)
	}
	return b
}

// ErlangC returns the Erlang-C delay probability C(k, a) = P(W > 0),
// derived from Erlang-B as C = B / (1 - (a/k)*(1-B)). For a >= k the
// queue is saturated and every job waits, so C = 1.
func ErlangC(k int, a float64) float64 {
	if k < 1 || a <= 0 {
		return 0
	}
	if a >= float64(k) {
		return 1
	}
	b := ErlangB(k, a)
	return b / (1 - a/float64(k)*(1-b))
}

// ErlangC returns the queue's delay probability P(W > 0).
func (q MMK) ErlangC() float64 { return ErlangC(q.K, q.Offered()) }

// waitRate returns the conditional-wait decay rate k*mu - lambda =
// (k - a)/D: given that a job waits, its wait is exponential with this
// rate.
func (q MMK) waitRate() float64 { return (float64(q.K) - q.Offered()) / q.D }

// MeanWait returns the exact mean queueing delay C(k,a) * D / (k - a).
func (q MMK) MeanWait() float64 {
	if q.Lambda == 0 {
		return 0
	}
	return q.ErlangC() / q.waitRate()
}

// MeanResponse returns the mean sojourn time (wait plus one service).
func (q MMK) MeanResponse() float64 { return q.MeanWait() + q.D }

// WaitCDF returns the exact P(W <= t) = 1 - C(k,a) * e^{-(k-a)t/D}.
func (q MMK) WaitCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if q.Rho() >= 1 {
		return 0
	}
	return 1 - q.ErlangC()*math.Exp(-q.waitRate()*t)
}

// ResponseCDF returns the exact P(R <= t) for the sojourn R = W + S:
// with probability 1-C the job starts immediately (R is one exponential
// service), otherwise R is the sum of the exponential conditional wait
// (rate omega = k*mu - lambda) and the service (rate mu), whose
// convolution tail is (omega*e^{-mu*t} - mu*e^{-omega*t})/(omega - mu).
// The degenerate case omega = mu (a = k-1) is the Erlang-2 tail
// e^{-mu*t}(1 + mu*t). At k = 1 the whole expression collapses to the
// M/M/1 sojourn e^{-(mu-lambda)t}.
func (q MMK) ResponseCDF(t float64) float64 {
	if t < 0 {
		return 0
	}
	if q.Rho() >= 1 {
		return 0
	}
	mu := 1 / q.D
	omega := q.waitRate()
	c := q.ErlangC()
	var tail float64
	if math.Abs(omega-mu) <= 1e-9*mu {
		tail = (1-c)*math.Exp(-mu*t) + c*math.Exp(-mu*t)*(1+mu*t)
	} else {
		tail = (1-c)*math.Exp(-mu*t) +
			c*(omega*math.Exp(-mu*t)-mu*math.Exp(-omega*t))/(omega-mu)
	}
	v := 1 - tail
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// WaitPercentile returns the p-th percentile (p in [0,100)) of the
// waiting time in closed form: the distribution has the atom
// P(W = 0) = 1 - C, above which the percentile is
// ln(C/(1-p/100)) * D/(k-a). No search and no cache entry are needed.
func (q MMK) WaitPercentile(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	ins := instruments()
	ins.searches.Inc()
	target := p / 100
	c := q.ErlangC()
	if 1-c >= target {
		return 0, nil
	}
	return math.Log(c/(1-target)) / q.waitRate(), nil
}

// ResponsePercentile returns the p-th percentile of the sojourn time by
// a bracketed regula-falsi solve of the exact ResponseCDF — a handful
// of float64 exponentials, cheap enough to skip the percentile cache.
func (q MMK) ResponsePercentile(p float64) (float64, error) {
	if err := q.Validate(); err != nil {
		return 0, err
	}
	if p < 0 || p >= 100 {
		return 0, fmt.Errorf("queueing: percentile %g outside [0, 100)", p)
	}
	ins := instruments()
	ins.searches.Inc()
	target := p / 100
	if target <= 0 {
		return 0, nil
	}
	hi := q.MeanResponse()
	if hi <= 0 {
		hi = q.D
	}
	fhi := q.ResponseCDF(hi)
	for i := 0; fhi < target; i++ {
		hi *= 2
		fhi = q.ResponseCDF(hi)
		if i > 60 {
			return 0, errors.New("queueing: percentile bracket failed to converge")
		}
	}
	return solveCDF(q.ResponseCDF, target, 0, 0, hi, fhi), nil
}

// WaitPercentiles returns the waiting-time percentiles for every p in
// ps, in input order.
func (q MMK) WaitPercentiles(ps []float64) ([]float64, error) {
	return q.WaitPercentilesContext(context.Background(), ps)
}

// WaitPercentilesContext is the batch API with cancellation. Every
// entry is a closed form, so the batch is a plain loop with the same
// per-entry results as WaitPercentile.
func (q MMK) WaitPercentilesContext(ctx context.Context, ps []float64) ([]float64, error) {
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("queueing.percentiles")()
	out := make([]float64, len(ps))
	for i, p := range ps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("queueing: percentile batch: %w", err)
		}
		w, err := q.WaitPercentile(p)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// ResponsePercentiles returns the sojourn-time percentiles for every p
// in ps, in input order.
func (q MMK) ResponsePercentiles(ps []float64) ([]float64, error) {
	return q.ResponsePercentilesContext(context.Background(), ps)
}

// ResponsePercentilesContext is the batched sojourn percentiles with
// cancellation.
func (q MMK) ResponsePercentilesContext(ctx context.Context, ps []float64) ([]float64, error) {
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("queueing.percentiles")()
	out := make([]float64, len(ps))
	for i, p := range ps {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("queueing: percentile batch: %w", err)
		}
		r, err := q.ResponsePercentile(p)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
