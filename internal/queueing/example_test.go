package queueing_test

import (
	"fmt"

	"repro/internal/queueing"
)

// The percentile batch API shares one bracket and CDF evaluator across
// all requested percentiles of a queue — ask for the whole list at
// once rather than looping over WaitPercentile.
func ExampleMD1_WaitPercentiles() {
	q, err := queueing.NewMD1FromUtilization(0.9, 1)
	if err != nil {
		panic(err)
	}
	ws, err := q.WaitPercentiles([]float64{50, 95, 99})
	if err != nil {
		panic(err)
	}
	for i, p := range []float64{50, 95, 99} {
		fmt.Printf("p%.0f wait = %.3f s\n", p, ws[i])
	}
	// Output:
	// p50 wait = 3.013 s
	// p95 wait = 14.129 s
	// p99 wait = 21.898 s
}

// W/D depends only on the utilization rho, so the percentile cache is
// keyed by (rho, p) alone: after the 1-second-job query above, this
// 4-millisecond-job query at the same rho is a cache hit scaled by D.
func ExampleMD1_WaitPercentile() {
	fast, err := queueing.NewMD1FromUtilization(0.9, 0.004)
	if err != nil {
		panic(err)
	}
	w, err := fast.WaitPercentile(95)
	if err != nil {
		panic(err)
	}
	fmt.Printf("4ms jobs: p95 wait = %.4f s\n", w)
	// Output:
	// 4ms jobs: p95 wait = 0.0565 s
}

// ResponsePercentiles adds the deterministic service time to each
// waiting-time percentile, yielding sojourn-time percentiles.
func ExampleMD1_ResponsePercentiles() {
	q, err := queueing.NewMD1FromUtilization(0.9, 1)
	if err != nil {
		panic(err)
	}
	rs, err := q.ResponsePercentiles([]float64{50, 99})
	if err != nil {
		panic(err)
	}
	fmt.Printf("p50 resp = %.3f s, p99 resp = %.3f s\n", rs[0], rs[1])
	// Output:
	// p50 resp = 4.013 s, p99 resp = 22.898 s
}

// BatchMD1 models the paper's batched job submissions; with batches of
// four the mean per-job response grows well past the plain M/D/1 value
// (5.5 s at the same utilization).
func ExampleNewBatchMD1FromUtilization() {
	b, err := queueing.NewBatchMD1FromUtilization(0.9, 4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("batch of 4: mean response = %.1f s\n", b.MeanResponse())
	// Output:
	// batch of 4: mean response = 20.5 s
}
