package queueing

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/stats"
)

// BatchMD1 models the paper's batch submission pattern ("datacenters
// typically receive multiple jobs concurrently from many users. To
// represent the arrival of multiple jobs, we vary the number of jobs per
// batch", Section II-C): batches of B jobs arrive Poisson, each job has
// the deterministic service time D, and jobs within a batch are served
// FIFO. With B = 1 it reduces exactly to M/D/1.
type BatchMD1 struct {
	// BatchRate is the batch arrival rate (batches per second).
	BatchRate float64
	// Batch is the number of jobs per batch (B >= 1).
	Batch int
	// D is the per-job service time.
	D float64
}

// NewBatchMD1FromUtilization builds the batch queue for a target
// utilization rho = BatchRate * Batch * D.
func NewBatchMD1FromUtilization(rho float64, batch int, serviceTime float64) (BatchMD1, error) {
	if serviceTime <= 0 {
		return BatchMD1{}, errors.New("queueing: service time must be positive")
	}
	if batch < 1 {
		return BatchMD1{}, errors.New("queueing: batch size must be at least 1")
	}
	if rho < 0 || rho >= 1 {
		return BatchMD1{}, fmt.Errorf("queueing: utilization %g outside [0, 1)", rho)
	}
	return BatchMD1{BatchRate: rho / (float64(batch) * serviceTime), Batch: batch, D: serviceTime}, nil
}

// Rho returns the server utilization.
func (q BatchMD1) Rho() float64 { return q.BatchRate * float64(q.Batch) * q.D }

// Validate checks stability.
func (q BatchMD1) Validate() error {
	if q.D <= 0 {
		return errors.New("queueing: service time must be positive")
	}
	if q.Batch < 1 {
		return errors.New("queueing: batch size must be at least 1")
	}
	if q.BatchRate < 0 {
		return errors.New("queueing: negative batch rate")
	}
	if q.Rho() >= 1 {
		return fmt.Errorf("queueing: unstable queue, rho = %g >= 1", q.Rho())
	}
	return nil
}

// MeanResponse returns the mean per-job sojourn time. Viewing a batch as
// one M/D/1 customer with service B*D, the batch waits
// W_b = rho*(B*D)/(2*(1-rho)); a job at position i (1-based, uniform)
// additionally waits (i-1)*D in its own batch and i*... completes after
// i*D of service, so the mean job response is W_b + (B+1)/2 * D.
func (q BatchMD1) MeanResponse() float64 {
	rho := q.Rho()
	bd := float64(q.Batch) * q.D
	wb := rho * bd / (2 * (1 - rho))
	return wb + (float64(q.Batch)+1)/2*q.D
}

// AsMD1 returns the equivalent plain M/D/1 when Batch is 1.
func (q BatchMD1) AsMD1() (MD1, bool) {
	if q.Batch != 1 {
		return MD1{}, false
	}
	return MD1{Lambda: q.BatchRate, D: q.D}, true
}

// Simulate runs a Lindley recursion at batch granularity and returns
// per-job sojourn times: job i of a batch completes i*D after the batch
// enters service.
func (q BatchMD1) Simulate(opt SimOptions) (SimResult, error) {
	if err := q.Validate(); err != nil {
		return SimResult{}, err
	}
	if opt.Jobs <= 0 {
		return SimResult{}, errors.New("queueing: simulation needs at least one job")
	}
	if opt.Warmup >= opt.Jobs {
		return SimResult{}, errors.New("queueing: warmup must leave jobs to measure")
	}
	rng := stats.NewRNG(opt.Seed)
	batches := opt.Jobs/q.Batch + 1
	warmupBatches := opt.Warmup / q.Batch
	kept := make([]float64, 0, (batches-warmupBatches)*q.Batch)
	var sum stats.KahanSum
	w := 0.0
	bd := float64(q.Batch) * q.D
	for n := 0; n < batches; n++ {
		if n >= warmupBatches {
			for i := 1; i <= q.Batch; i++ {
				resp := w + float64(i)*q.D
				kept = append(kept, resp)
				sum.Add(resp)
			}
		}
		gap := rng.ExpFloat64(q.BatchRate)
		w += bd - gap
		if w < 0 {
			w = 0
		}
	}
	sort.Float64s(kept)
	return SimResult{Responses: kept, MeanResponse: sum.Sum() / float64(len(kept))}, nil
}

// ResponsePercentile estimates the p-th percentile of the per-job
// sojourn time by simulation (no closed form is implemented for the
// batch queue's distribution).
func (q BatchMD1) ResponsePercentile(p float64, opt SimOptions) (float64, error) {
	res, err := q.Simulate(opt)
	if err != nil {
		return 0, err
	}
	return res.Percentile(p)
}
