package queueing

import (
	"math"
	"testing"
)

// FuzzPercentileCacheDifferential drives the fast percentile kernel —
// quantized-rho key, shared normalized-queue memo, incremental Crommelin
// CDF — against the original big.Float reference search at the *exact*
// rho, across randomized (rho, p, D). The 1e-9 relative budget covers
// both the solver tolerance and the 2^-40 rho quantization (see cache.go
// for the sensitivity bound). `make fuzz` runs this as a short smoke;
// longer -fuzztime runs explore deeper.
func FuzzPercentileCacheDifferential(f *testing.F) {
	f.Add(0.5, 95.0, 1.0)
	f.Add(0.7, 99.0, 0.008765)
	f.Add(0.1, 50.0, 123.0)
	f.Add(0.9, 99.9, 1e-3)
	f.Add(0.333333333333, 75.0, 3.0)
	f.Fuzz(func(t *testing.T, rho, p, d float64) {
		// Clamp into the domain instead of rejecting, so every input
		// exercises the kernel. High rho makes the reference search very
		// slow (k grows with W/D), so cap it for smoke-speed runs.
		if !isFinite(rho) || !isFinite(p) || !isFinite(d) {
			t.Skip()
		}
		rho = 0.01 + math.Mod(math.Abs(rho), 0.94)
		p = 1 + math.Mod(math.Abs(p), 98.99)
		d = math.Exp(math.Mod(math.Abs(d), 12) - 6) // ~[2.5e-3, 400]

		q, err := NewMD1FromUtilization(rho, d)
		if err != nil {
			t.Fatalf("rho=%g d=%g: %v", rho, d, err)
		}
		fast, err := q.WaitPercentile(p)
		if err != nil {
			t.Fatalf("fast kernel rho=%g p=%g d=%g: %v", rho, p, d, err)
		}
		ref, err := q.waitPercentileReference(p)
		if err != nil {
			t.Fatalf("reference rho=%g p=%g d=%g: %v", rho, p, d, err)
		}
		diff := math.Abs(fast - ref)
		if diff > 1e-9*math.Max(1, math.Max(fast, ref)) {
			t.Fatalf("rho=%g p=%g d=%g: fast=%.17g reference=%.17g (diff %g)",
				rho, p, d, fast, ref, diff)
		}
		// The fast value must also land on the reference CDF at its
		// target probability (within the same budget scaled by slope).
		if fast > 0 {
			cdf := q.waitCDFReference(fast)
			if cdf < (p/100)-1e-6 || cdf > (p/100)+1e-6 {
				t.Fatalf("rho=%g p=%g d=%g: reference CDF at fast percentile = %.12g, want %g",
					rho, p, d, cdf, p/100)
			}
		}
	})
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// FuzzKernelDifferential extends the differential fuzz across the
// kernel registry: randomized (kernel, shape, rho, p) resolved through
// a Spec — exactly as the epserve request fields select kernels — with
// the fast percentile pinned to the kernel's slow reference within the
// same 1e-9 budget as the M/D/1 target. The kind selector wraps, so
// every input lands on a real kernel.
func FuzzKernelDifferential(f *testing.F) {
	f.Add(0.7, 95.0, 0.5, uint8(5), uint8(1))
	f.Add(0.5, 99.0, 4.0, uint8(1), uint8(1))
	f.Add(0.85, 90.0, 0.0, uint8(16), uint8(2))
	f.Add(0.3, 50.0, 1.0, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, rho, p, scv float64, servers, kindSel uint8) {
		if !isFinite(rho) || !isFinite(p) || !isFinite(scv) {
			t.Skip()
		}
		rho = 0.01 + math.Mod(math.Abs(rho), 0.9)
		p = 1 + math.Mod(math.Abs(p), 98.99)
		scv = math.Mod(math.Abs(scv), 6)
		spec := Spec{Kind: Kind(kindSel % 3)}
		switch spec.Kind {
		case KindMG1:
			spec.SCV = scv
		case KindMMK:
			spec.Servers = 1 + int(servers%32)
		}
		k, err := spec.Build(rho, 1)
		if err != nil {
			t.Fatalf("%v.Build(%g, 1): %v", spec, rho, err)
		}
		fast, err := k.WaitPercentile(p)
		if err != nil {
			t.Fatalf("%v rho=%g p=%g: %v", spec, rho, p, err)
		}
		var ref float64
		switch q := k.(type) {
		case MD1:
			ref, err = q.waitPercentileReference(p)
		case MG1:
			ref, err = q.waitPercentileReference(p)
		case MMK:
			ref, err = q.waitPercentileReference(p)
		}
		if err != nil {
			t.Fatalf("%v reference rho=%g p=%g: %v", spec, rho, p, err)
		}
		diff := math.Abs(fast - ref)
		if diff > 1e-9*math.Max(1, math.Max(fast, ref)) {
			t.Fatalf("%v rho=%g p=%g: fast=%.17g reference=%.17g (diff %g)",
				spec, rho, p, fast, ref, diff)
		}
	})
}
