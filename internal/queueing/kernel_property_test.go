package queueing

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// kernel_property_test.go lifts the M/D/1 order/invariance properties
// of property_test.go to every registered kernel, and adds the
// kernel-specific ones: SCV monotonicity for M/G/1 (more service
// variability can never shorten the tail) and the Erlang-C laws for
// M/M/k.

// propertySpecs trims the conformance registry to one spec per distinct
// code path (the SCV = 0 and k = 1 rungs delegate to already-covered
// paths).
func propertySpecs() []Spec {
	return []Spec{
		{Kind: KindMD1},
		{Kind: KindMG1, SCV: 0.5},
		{Kind: KindMG1, SCV: 4},
		{Kind: KindMMK, Servers: 4},
	}
}

// TestKernelPercentileMonotoneInRho: at any fixed percentile, pushing
// the servers harder can only lengthen wait and response, whatever the
// kernel.
func TestKernelPercentileMonotoneInRho(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			rng := stats.NewRNG(21)
			for trial := 0; trial < 12; trial++ {
				p := 40 + 59*rng.Float64()
				d := math.Exp(6 * (rng.Float64() - 0.5))
				prevW, prevR := -1.0, -1.0
				for rho := 0.05; rho < 0.96; rho += 0.1 {
					k := buildKernel(t, spec, rho, d)
					w, err := k.WaitPercentile(p)
					if err != nil {
						t.Fatalf("rho=%g p=%g: %v", rho, p, err)
					}
					if w < prevW-1e-9*math.Max(1, prevW) {
						t.Fatalf("p%g wait decreased in rho: %g after %g (d=%g)", p, w, prevW, d)
					}
					r, err := k.ResponsePercentile(p)
					if err != nil {
						t.Fatalf("rho=%g p=%g: %v", rho, p, err)
					}
					if r < prevR-1e-9*math.Max(1, prevR) {
						t.Fatalf("p%g response decreased in rho: %g after %g (d=%g)", p, r, prevR, d)
					}
					prevW, prevR = w, r
				}
			}
		})
	}
}

// TestKernelPercentileMonotoneInP: at any fixed load, a higher
// percentile is a (weakly) longer wait and response.
func TestKernelPercentileMonotoneInP(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			rng := stats.NewRNG(22)
			for trial := 0; trial < 12; trial++ {
				rho := 0.05 + 0.9*rng.Float64()
				d := math.Exp(6 * (rng.Float64() - 0.5))
				k := buildKernel(t, spec, rho, d)
				prevW, prevR := -1.0, -1.0
				for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
					w, err := k.WaitPercentile(p)
					if err != nil {
						t.Fatalf("rho=%g p=%g: %v", rho, p, err)
					}
					if w < prevW-1e-9*math.Max(1, prevW) {
						t.Fatalf("rho=%g: p%g wait %g below previous %g", rho, p, w, prevW)
					}
					r, err := k.ResponsePercentile(p)
					if err != nil {
						t.Fatalf("rho=%g p=%g: %v", rho, p, err)
					}
					if r < prevR-1e-9*math.Max(1, prevR) {
						t.Fatalf("rho=%g: p%g response %g below previous %g", rho, p, r, prevR)
					}
					prevW, prevR = w, r
				}
			}
		})
	}
}

// TestKernelScaleInvariance: every kernel is scale free in the service
// time at fixed rho — W(rho, c*d) = c*W(rho, d) — the identity the
// shared normalized percentile cache depends on.
func TestKernelScaleInvariance(t *testing.T) {
	for _, spec := range propertySpecs() {
		spec := spec
		t.Run(spec.String(), func(t *testing.T) {
			t.Parallel()
			rng := stats.NewRNG(23)
			for trial := 0; trial < 20; trial++ {
				rho := 0.05 + 0.9*rng.Float64()
				p := 30 + 69.9*rng.Float64()
				d := math.Exp(math.Log(1e-6) + rng.Float64()*math.Log(1e10))
				unit := buildKernel(t, spec, rho, 1)
				scaled := buildKernel(t, spec, rho, d)
				for _, q := range []struct {
					name         string
					unit, scaled func(float64) (float64, error)
				}{
					{"wait", unit.WaitPercentile, scaled.WaitPercentile},
					{"response", unit.ResponsePercentile, scaled.ResponsePercentile},
				} {
					wUnit, err := q.unit(p)
					if err != nil {
						t.Fatal(err)
					}
					wScaled, err := q.scaled(p)
					if err != nil {
						t.Fatal(err)
					}
					want := d * wUnit
					if diff := math.Abs(wScaled - want); diff > 1e-9*math.Max(1, math.Max(wScaled, want)) {
						t.Fatalf("rho=%g p=%g d=%g: %s %g, want d*unit = %g",
							rho, p, d, q.name, wScaled, want)
					}
				}
			}
		})
	}
}

// TestMG1SCVMonotoneTail: more service-time variability never shortens
// the wait at any percentile (the mixture CDF is pointwise
// nonincreasing in SCV, the exponential tail's time constant grows with
// it), and never shortens the response tail. The response *median* may
// legitimately shrink with SCV — many tiny jobs, a few huge ones — so
// only tail percentiles are asserted for the sojourn.
func TestMG1SCVMonotoneTail(t *testing.T) {
	scvs := []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2.5, 4, 8}
	for _, rho := range []float64{0.45, 0.6, 0.85} {
		for _, d := range []float64{0.2, 1, 4.7} {
			for _, p := range []float64{50, 75, 90, 95, 99, 99.9} {
				prevW, prevR := -1.0, -1.0
				for _, scv := range scvs {
					q, err := NewMG1FromUtilization(rho, d, scv)
					if err != nil {
						t.Fatal(err)
					}
					w, err := q.WaitPercentile(p)
					if err != nil {
						t.Fatalf("rho=%g scv=%g p=%g: %v", rho, scv, p, err)
					}
					if w < prevW-1e-9*math.Max(1, prevW) {
						t.Errorf("rho=%g d=%g p=%g: wait shrank with SCV: %g at scv=%g after %g",
							rho, d, p, w, scv, prevW)
					}
					prevW = w
					if p >= 90 {
						r, err := q.ResponsePercentile(p)
						if err != nil {
							t.Fatalf("rho=%g scv=%g p=%g: %v", rho, scv, p, err)
						}
						if r < prevR-1e-9*math.Max(1, prevR) {
							t.Errorf("rho=%g d=%g p=%g: response tail shrank with SCV: %g at scv=%g after %g",
								rho, d, p, r, scv, prevR)
						}
						prevR = r
					}
				}
			}
		}
	}
}

// TestMG1MeanIsPollaczekKhinchine: the mean wait matches the exact P-K
// closed form at every SCV — the anchor the whole interpolation is
// built on.
func TestMG1MeanIsPollaczekKhinchine(t *testing.T) {
	rng := stats.NewRNG(24)
	for trial := 0; trial < 60; trial++ {
		rho := 0.02 + 0.96*rng.Float64()
		d := math.Exp(6 * (rng.Float64() - 0.5))
		scv := 8 * rng.Float64()
		q, err := NewMG1FromUtilization(rho, d, scv)
		if err != nil {
			t.Fatal(err)
		}
		want := rho * d * (1 + scv) / (2 * (1 - rho))
		if got := q.MeanWait(); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Fatalf("rho=%g d=%g scv=%g: mean wait %g, want %g", rho, d, scv, got, want)
		}
		if got := q.MeanResponse(); math.Abs(got-(want+d)) > 1e-12*math.Max(1, want+d) {
			t.Fatalf("rho=%g d=%g scv=%g: mean response %g, want %g", rho, d, scv, got, want+d)
		}
	}
}

// TestErlangCProperties pins the Erlang-C laws: a probability in [0,1],
// monotone increasing in offered load, monotone decreasing in server
// count, equal to rho at k = 1, saturating to 1 at a >= k, and matching
// the extended-precision reference ratio.
func TestErlangCProperties(t *testing.T) {
	for _, k := range []int{1, 2, 4, 16, 64} {
		prev := -1.0
		for frac := 0.02; frac < 1; frac += 0.02 {
			a := frac * float64(k)
			c := ErlangC(k, a)
			if c < 0 || c > 1 {
				t.Fatalf("ErlangC(%d, %g) = %g outside [0,1]", k, a, c)
			}
			if c < prev {
				t.Fatalf("ErlangC(%d, %g) = %g decreased from %g (offered-load monotonicity)", k, a, c, prev)
			}
			prev = c
			if ref := erlangCReference(k, a); math.Abs(c-ref) > 1e-12*math.Max(1, ref) {
				t.Fatalf("ErlangC(%d, %g) = %.17g, reference %.17g", k, a, c, ref)
			}
		}
		if got := ErlangC(k, float64(k)); got != 1 {
			t.Errorf("ErlangC(%d, k) = %g, want saturation to 1", k, got)
		}
	}
	for _, a := range []float64{0.3, 0.9} {
		if got := ErlangC(1, a); math.Abs(got-a) > 1e-12 {
			t.Errorf("ErlangC(1, %g) = %.17g, want a", a, got)
		}
	}
	// At fixed per-server utilization, pooling more servers strictly
	// reduces the chance of waiting (economies of scale).
	for _, rho := range []float64{0.3, 0.7, 0.95} {
		prev := 2.0
		for _, k := range []int{1, 2, 4, 8, 32} {
			c := ErlangC(k, rho*float64(k))
			if c >= prev {
				t.Errorf("ErlangC at rho=%g not decreasing in k: C(%d)=%g, previous %g", rho, k, c, prev)
			}
			prev = c
		}
	}
	if got := ErlangC(4, 0); got != 0 {
		t.Errorf("ErlangC(4, 0) = %g", got)
	}
	if got := ErlangB(0, 1); got != 0 {
		t.Errorf("ErlangB(0, 1) = %g", got)
	}
}
