package replay

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/loadtrace"
)

func TestTraceValidate(t *testing.T) {
	cases := []struct {
		name    string
		tr      Trace
		wantErr string
	}{
		{"ok", Trace{Points: []Point{{0, 0.3}, {1, 0.4}}}, ""},
		{"too few", Trace{Points: []Point{{0, 0.3}}}, "at least 2 points"},
		{"empty", Trace{}, "at least 2 points"},
		{"non-monotonic", Trace{Points: []Point{{0, 0.3}, {2, 0.4}, {1, 0.5}}}, "non-monotonic"},
		{"duplicate t", Trace{Points: []Point{{0, 0.3}, {0, 0.4}}}, "non-monotonic"},
		{"load high", Trace{Points: []Point{{0, 0.3}, {1, 1.5}}}, "outside [0, 1]"},
		{"load negative", Trace{Points: []Point{{0, -0.1}, {1, 0.5}}}, "outside [0, 1]"},
		{"load NaN", Trace{Points: []Point{{0, math.NaN()}, {1, 0.5}}}, "outside [0, 1]"},
		{"t NaN", Trace{Points: []Point{{math.NaN(), 0.3}, {1, 0.5}}}, "non-finite"},
		{"t Inf", Trace{Points: []Point{{0, 0.3}, {math.Inf(1), 0.5}}}, "non-finite"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tr.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestTraceDurationAndMeanLoad(t *testing.T) {
	tr := Trace{Points: []Point{{0, 0.2}, {10, 0.4}, {20, 0.6}}}
	// Final dwell repeats the preceding 10s interval: total 30s.
	if got := tr.Duration(); got != 30 {
		t.Fatalf("Duration = %g, want 30", got)
	}
	want := (0.2*10 + 0.4*10 + 0.6*10) / 30
	if got := tr.MeanLoad(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeanLoad = %g, want %g", got, want)
	}
}

func TestFromShape(t *testing.T) {
	shape := loadtrace.Diurnal{Mean: 0.3, Amplitude: 0.2, Period: 86400}
	tr, err := FromShape(shape, 300, 288)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Steps() != 288 {
		t.Fatalf("steps = %d, want 288", tr.Steps())
	}
	if tr.Duration() != 86400 {
		t.Fatalf("duration = %g, want 86400", tr.Duration())
	}
	// Midpoint sampling: point i's load is the shape at (i+0.5)*step.
	for i, p := range tr.Points {
		if want := shape.At((float64(i) + 0.5) * 300); p.Load != want {
			t.Fatalf("point %d load %g, want %g", i, p.Load, want)
		}
	}
	if _, err := FromShape(shape, 0, 10); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := FromShape(shape, 300, 1); err == nil {
		t.Fatal("single step accepted")
	}
}

func TestParseCSV(t *testing.T) {
	cases := []struct {
		name, in string
		points   int
		wantErr  string
	}{
		{"plain", "0,0.3\n300,0.5\n600,0.4\n", 3, ""},
		{"header", "t,load\n0,0.3\n300,0.5\n", 2, ""},
		{"comments and blanks", "# trace\n0,0.3\n\n300,0.5\n", 2, ""},
		{"whitespace", " 0 , 0.3\n 300 , 0.5\n", 2, ""},
		{"bad field count", "0,0.3,9\n300,0.5\n", 0, "want 2 fields"},
		{"bad number mid-file", "0,0.3\nx,0.5\n", 0, "must be numbers"},
		{"non-monotonic", "0,0.3\n300,0.5\n100,0.4\n", 0, "non-monotonic"},
		{"load out of range", "0,0.3\n300,1.5\n", 0, "outside [0, 1]"},
		{"empty", "", 0, "at least 2 points"},
		{"header only", "t,load\n", 0, "at least 2 points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseCSV(strings.NewReader(tc.in))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseCSV = %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseCSV: %v", err)
			}
			if len(tr.Points) != tc.points {
				t.Fatalf("points = %d, want %d", len(tr.Points), tc.points)
			}
		})
	}
}

func TestParseJSON(t *testing.T) {
	cases := []struct {
		name, in string
		points   int
		wantErr  string
	}{
		{"object", `{"name":"x","points":[{"t":0,"load":0.3},{"t":300,"load":0.5}]}`, 2, ""},
		{"bare array", `[{"t":0,"load":0.3},{"t":300,"load":0.5}]`, 2, ""},
		{"leading space array", "\n  [{\"t\":0,\"load\":0.3},{\"t\":300,\"load\":0.5}]", 2, ""},
		{"unknown field", `{"points":[{"t":0,"load":0.3}],"bogus":1}`, 0, "decoding"},
		{"not json", `hello`, 0, "decoding"},
		{"non-monotonic", `[{"t":5,"load":0.3},{"t":1,"load":0.5}]`, 0, "non-monotonic"},
		{"too few", `[{"t":0,"load":0.3}]`, 0, "at least 2 points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := ParseJSON(strings.NewReader(tc.in))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("ParseJSON = %v, want error containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("ParseJSON: %v", err)
			}
			if len(tr.Points) != tc.points {
				t.Fatalf("points = %d, want %d", len(tr.Points), tc.points)
			}
		})
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Trace{Points: []Point{{0, 0.25}, {300, 0.5}, {600, 0.75}}}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Points) != len(tr.Points) {
		t.Fatalf("round trip lost points: %d != %d", len(back.Points), len(tr.Points))
	}
	for i := range tr.Points {
		if back.Points[i] != tr.Points[i] {
			t.Fatalf("point %d: %+v != %+v", i, back.Points[i], tr.Points[i])
		}
	}
}
