package replay

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// maxTracePoints bounds parsed traces: a year of per-minute samples with
// ample headroom. The bound exists so a malformed or hostile input (the
// parsers also serve the HTTP replay endpoint) cannot balloon memory.
const maxTracePoints = 1 << 20

// ParseCSV reads a utilization trace from CSV: one "t,load" record per
// line, seconds and load fraction, with an optional header line (any
// first record whose fields do not parse as numbers). Blank lines and
// #-comment lines are skipped. The returned trace is validated.
func ParseCSV(r io.Reader) (Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // length-checked per record for a better error
	cr.Comment = '#'
	var tr Trace
	first := true
	for {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Trace{}, fmt.Errorf("replay: reading trace CSV: %w", err)
		}
		if len(rec) != 2 {
			return Trace{}, fmt.Errorf("replay: trace CSV record %v: want 2 fields t,load", rec)
		}
		t, errT := strconv.ParseFloat(strings.TrimSpace(rec[0]), 64)
		load, errL := strconv.ParseFloat(strings.TrimSpace(rec[1]), 64)
		if errT != nil || errL != nil {
			if first {
				first = false // header line
				continue
			}
			return Trace{}, fmt.Errorf("replay: trace CSV record %v: fields must be numbers", rec)
		}
		first = false
		if len(tr.Points) >= maxTracePoints {
			return Trace{}, fmt.Errorf("replay: trace exceeds %d points", maxTracePoints)
		}
		tr.Points = append(tr.Points, Point{T: t, Load: load})
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// ParseJSON reads a trace from JSON: either a full Trace object
// {"name": ..., "points": [{"t":..,"load":..}, ...]} or a bare array of
// points. Unknown fields are rejected so typos fail loudly. The returned
// trace is validated.
func ParseJSON(r io.Reader) (Trace, error) {
	data, err := io.ReadAll(io.LimitReader(r, 64<<20))
	if err != nil {
		return Trace{}, fmt.Errorf("replay: reading trace JSON: %w", err)
	}
	var tr Trace
	trimmed := strings.TrimLeftFunc(string(data), func(r rune) bool {
		return r == ' ' || r == '\t' || r == '\n' || r == '\r'
	})
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if strings.HasPrefix(trimmed, "[") {
		err = dec.Decode(&tr.Points)
	} else {
		err = dec.Decode(&tr)
	}
	if err != nil {
		return Trace{}, fmt.Errorf("replay: decoding trace JSON: %w", err)
	}
	if len(tr.Points) > maxTracePoints {
		return Trace{}, fmt.Errorf("replay: trace exceeds %d points", maxTracePoints)
	}
	if err := tr.Validate(); err != nil {
		return Trace{}, err
	}
	return tr, nil
}

// WriteCSV writes the trace in the format ParseCSV reads, with a header.
func (tr Trace) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t,load"); err != nil {
		return err
	}
	for _, p := range tr.Points {
		if _, err := fmt.Fprintf(w, "%g,%g\n", p.T, p.Load); err != nil {
			return err
		}
	}
	return nil
}
