package replay

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/loadtrace"
	"repro/internal/model"
	"repro/internal/queueing"
	"repro/internal/workload"
)

// ladderCandidates builds the paper's 1 kW-budget substitution ladder —
// (0,16), (32,12), (64,8), (96,4), (128,0) A9/K10 mixes — analyzed for
// the EP workload: the heterogeneous candidate set replays run against.
func ladderCandidates(t *testing.T) []*energyprop.Analysis {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := cluster.DefaultBudget(cat)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := spec.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	var out []*energyprop.Analysis
	for _, m := range ladder {
		a, err := energyprop.Analyze(m.Config, p, model.Options{}, 100)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	if len(out) < 2 {
		t.Fatalf("ladder produced %d candidates", len(out))
	}
	return out
}

// scalingCandidates builds an ensemble of *different-capacity* mixes
// (progressively fewer brawny nodes), the shape that gives the adaptive
// planner real crossover points: small mixes are cheaper at low load and
// saturate as it rises. The paper's fixed-budget ladder does not switch
// for the EP workload — its all-wimpy mix is both fastest and cheapest
// everywhere — so switch-churn tests use this set instead.
func scalingCandidates(t *testing.T) []*energyprop.Analysis {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	var out []*energyprop.Analysis
	for _, m := range [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}} {
		groups := []cluster.Group{cluster.FullNodes(a9, m[0]), cluster.FullNodes(k10, m[1])}
		a, err := energyprop.Analyze(cluster.MustConfig(groups...), p, model.Options{}, 100)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

func diurnalTrace(t *testing.T, steps int) Trace {
	t.Helper()
	tr, err := FromShape(loadtrace.Diurnal{
		Mean: 0.35, Amplitude: 0.3, Period: 86400, PeakAt: 14 * 3600,
	}, 86400/float64(steps), steps)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestDiurnalReplayMatchesDirectQueueing is the acceptance check: a
// ≥288-step synthetic diurnal day replayed through the heterogeneous
// 1 kW-budget ladder must report per-step p95 (and p99) response times
// matching direct queueing calls at the step's utilization and the
// chosen candidate's service time to within 1e-9.
func TestDiurnalReplayMatchesDirectQueueing(t *testing.T) {
	cands := ladderCandidates(t)
	tr := diurnalTrace(t, 288)

	for _, adapt := range []bool{false, true} {
		name := "static"
		if adapt {
			name = "adaptive"
		}
		t.Run(name, func(t *testing.T) {
			res, err := Run(context.Background(), cands, tr, Options{
				Adaptive:    adapt,
				SLO:         0.5,
				Percentiles: []float64{95, 99},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Steps) != 288 {
				t.Fatalf("got %d steps, want 288", len(res.Steps))
			}
			for i, st := range res.Steps {
				if st.Chosen < 0 || st.Chosen >= len(cands) {
					t.Fatalf("step %d chose %d", i, st.Chosen)
				}
				d := float64(cands[st.Chosen].Result.Time)
				q, err := queueing.NewMD1FromUtilization(st.Utilization, d)
				if err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
				for k, p := range []float64{95, 99} {
					direct, err := q.ResponsePercentile(p)
					if err != nil {
						t.Fatalf("step %d p%g: %v", i, p, err)
					}
					if diff := math.Abs(st.ResponseSeconds[k] - direct); diff > 1e-9 {
						t.Fatalf("step %d (rho=%g, cand %d): replay p%g=%g vs direct %g, |diff|=%g > 1e-9",
							i, st.Utilization, st.Chosen, p, st.ResponseSeconds[k], direct, diff)
					}
				}
			}
			if res.Summary.Steps != 288 || res.Summary.DurationSeconds != 86400 {
				t.Fatalf("summary steps/duration = %d/%g", res.Summary.Steps, res.Summary.DurationSeconds)
			}
		})
	}
}

// TestStaticLedger pins the static-mode ledger arithmetic on a constant
// trace, where every aggregate has a closed form.
func TestStaticLedger(t *testing.T) {
	cands := ladderCandidates(t)
	const load, dwell = 0.4, 300.0
	tr := Trace{Name: "const", Points: []Point{
		{0, load}, {dwell, load}, {2 * dwell, load}, {3 * dwell, load},
	}}
	res, err := Run(context.Background(), cands, tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary

	ref := 0
	for i, c := range cands {
		if c.Result.Time < cands[ref].Result.Time {
			ref = i
		}
	}
	power := cands[ref].PowerAt(load)
	dur := 4 * dwell
	if got, want := s.TotalEnergyJoules, power*dur; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("total energy %g, want %g", got, want)
	}
	refPeak := float64(cands[ref].Result.BusyPower)
	if got, want := s.IdealEnergyJoules, refPeak*load*dur; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("ideal energy %g, want %g", got, want)
	}
	wantGap := (power*dur - refPeak*load*dur) / (refPeak * load * dur)
	if math.Abs(s.EnergyGap-wantGap) > 1e-12 {
		t.Fatalf("gap %g, want %g", s.EnergyGap, wantGap)
	}
	if math.Abs(s.MeanPowerWatts-power) > 1e-9*power {
		t.Fatalf("mean power %g, want %g", s.MeanPowerWatts, power)
	}
	if s.Switches != 0 || s.SLOViolations != 0 || s.SaturatedSteps != 0 {
		t.Fatalf("static constant run reported switches=%d violations=%d saturated=%d",
			s.Switches, s.SLOViolations, s.SaturatedSteps)
	}
	// Constant load: the per-percentile mean equals the max.
	for k := range s.Percentiles {
		if math.Abs(s.MaxResponseSeconds[k]-s.MeanResponseSeconds[k]) > 1e-12 {
			t.Fatalf("p%g max %g != mean %g on a constant trace",
				s.Percentiles[k], s.MaxResponseSeconds[k], s.MeanResponseSeconds[k])
		}
	}
}

// TestAdaptiveBeatsStaticOnDiurnal: re-provisioning through a trough-y
// diurnal day must not spend more energy than pinning the reference, and
// must actually switch configurations as the load moves.
func TestAdaptiveBeatsStaticOnDiurnal(t *testing.T) {
	cands := scalingCandidates(t)
	tr := diurnalTrace(t, 288)

	static, err := Run(context.Background(), cands, tr, Options{DiscardSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	adapt, err := Run(context.Background(), cands, tr, Options{Adaptive: true, DiscardSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if adapt.Summary.TotalEnergyJoules > static.Summary.TotalEnergyJoules {
		t.Fatalf("adaptive energy %g > static %g",
			adapt.Summary.TotalEnergyJoules, static.Summary.TotalEnergyJoules)
	}
	if adapt.Summary.Switches == 0 {
		t.Fatal("adaptive replay over a diurnal day made no switches")
	}
	if static.Summary.Switches != 0 {
		t.Fatalf("static replay reported %d switches", static.Summary.Switches)
	}
}

// TestSwitchEnergyCharged: the per-switch energy surcharge lands in the
// ledger exactly switches * SwitchEnergy above the free-switching run.
func TestSwitchEnergyCharged(t *testing.T) {
	cands := scalingCandidates(t)
	tr := diurnalTrace(t, 96)

	free, err := Run(context.Background(), cands, tr, Options{Adaptive: true, DiscardSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if free.Summary.Switches == 0 {
		t.Fatal("no switches; cannot exercise switch energy")
	}
	const perSwitch = 5000.0
	paid, err := Run(context.Background(), cands, tr, Options{
		Adaptive: true, SwitchEnergy: perSwitch, DiscardSteps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if paid.Summary.Switches != free.Summary.Switches {
		t.Fatalf("switch count changed: %d vs %d", paid.Summary.Switches, free.Summary.Switches)
	}
	wantSurcharge := float64(free.Summary.Switches) * perSwitch
	if got := paid.Summary.SwitchEnergyJoules; got != wantSurcharge {
		t.Fatalf("switch energy %g, want %g", got, wantSurcharge)
	}
	diff := paid.Summary.TotalEnergyJoules - free.Summary.TotalEnergyJoules
	if math.Abs(diff-wantSurcharge) > 1e-6 {
		t.Fatalf("total energy surcharge %g, want %g", diff, wantSurcharge)
	}
}

// TestHysteresisSuppressesSwitches: a strong hysteresis band must cut
// switch churn versus the greedy planner on the same trace and report
// the held-back switches.
func TestHysteresisSuppressesSwitches(t *testing.T) {
	cands := scalingCandidates(t)
	tr := diurnalTrace(t, 288)

	greedy, err := Run(context.Background(), cands, tr, Options{Adaptive: true, DiscardSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	damped, err := Run(context.Background(), cands, tr, Options{
		Adaptive:     true,
		Policy:       adaptive.Policy{Hysteresis: 0.5},
		DiscardSteps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if damped.Summary.Switches > greedy.Summary.Switches {
		t.Fatalf("hysteresis increased switches: %d > %d",
			damped.Summary.Switches, greedy.Summary.Switches)
	}
	if damped.Summary.SuppressedSwitches == 0 {
		t.Fatal("hysteresis 0.5 suppressed nothing on a diurnal day")
	}
}

// TestSaturationClampsAndViolates: loads past the utilization cap clamp
// the queue at the cap, mark the step saturated and count it against the
// SLO.
func TestSaturationClampsAndViolates(t *testing.T) {
	cands := ladderCandidates(t)
	tr := Trace{Points: []Point{{0, 1}, {300, 1}, {600, 0.3}}}
	res, err := Run(context.Background(), cands, tr, Options{SLO: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.SaturatedSteps != 2 {
		t.Fatalf("saturated steps = %d, want 2", res.Summary.SaturatedSteps)
	}
	if res.Summary.SLOViolations < 2 {
		t.Fatalf("SLO violations = %d, want >= 2", res.Summary.SLOViolations)
	}
	for i, st := range res.Steps[:2] {
		if !st.Saturated || !st.SLOViolated {
			t.Fatalf("step %d: saturated=%v violated=%v", i, st.Saturated, st.SLOViolated)
		}
		if st.Utilization != 0.95 {
			t.Fatalf("step %d utilization %g, want clamp at 0.95", i, st.Utilization)
		}
	}
	if res.Steps[2].Saturated {
		t.Fatal("in-range step marked saturated")
	}
}

// TestOnStepStreaming: the step callback sees every step in trace order
// with the same values the result records, and DiscardSteps keeps the
// result lean.
func TestOnStepStreaming(t *testing.T) {
	cands := ladderCandidates(t)
	tr := diurnalTrace(t, 48)

	var streamed []Step
	res, err := Run(context.Background(), cands, tr, Options{
		Adaptive:     true,
		DiscardSteps: true,
		OnStep: func(st Step) error {
			streamed = append(streamed, st)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("DiscardSteps kept %d steps", len(res.Steps))
	}
	if len(streamed) != 48 {
		t.Fatalf("streamed %d steps, want 48", len(streamed))
	}
	for i, st := range streamed {
		if st.T != tr.Points[i].T || st.Load != tr.Points[i].Load {
			t.Fatalf("step %d out of order: t=%g load=%g", i, st.T, st.Load)
		}
	}

	wantErr := errors.New("consumer full")
	calls := 0
	_, err = Run(context.Background(), cands, tr, Options{
		OnStep: func(Step) error {
			calls++
			if calls == 3 {
				return wantErr
			}
			return nil
		},
	})
	if err == nil || !errors.Is(err, wantErr) {
		t.Fatalf("OnStep error not propagated: %v", err)
	}
	if calls != 3 {
		t.Fatalf("OnStep called %d times after aborting at 3", calls)
	}
}

func TestRunCancellation(t *testing.T) {
	cands := ladderCandidates(t)
	tr := diurnalTrace(t, 288)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, cands, tr, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	cands := ladderCandidates(t)
	good := diurnalTrace(t, 4)
	if _, err := Run(context.Background(), nil, good, Options{}); err == nil {
		t.Fatal("no candidates accepted")
	}
	bad := Trace{Points: []Point{{0, 0.3}}}
	if _, err := Run(context.Background(), cands, bad, Options{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
	if _, err := Run(context.Background(), cands, good, Options{Percentiles: []float64{100}}); err == nil {
		t.Fatal("percentile 100 accepted")
	}
	if _, err := Run(context.Background(), cands, good, Options{Percentiles: []float64{-1}}); err == nil {
		t.Fatal("negative percentile accepted")
	}
}

// TestSLOPercentileExtension: when the SLO percentile is not among the
// requested ones the engine evaluates it internally but must not leak it
// into the emitted percentile slices.
func TestSLOPercentileExtension(t *testing.T) {
	cands := ladderCandidates(t)
	tr := diurnalTrace(t, 8)
	res, err := Run(context.Background(), cands, tr, Options{
		Percentiles:   []float64{50},
		SLO:           1e-9, // unattainably tight: every step violates
		SLOPercentile: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Steps {
		if len(st.ResponseSeconds) != 1 {
			t.Fatalf("step %d leaked the SLO percentile: %v", i, st.ResponseSeconds)
		}
		if !st.SLOViolated {
			t.Fatalf("step %d not violated under a 1ns SLO", i)
		}
	}
	if res.Summary.SLOViolationFrac != 1 {
		t.Fatalf("violation frac %g, want 1", res.Summary.SLOViolationFrac)
	}
}

func TestSummaryRender(t *testing.T) {
	cands := ladderCandidates(t)
	tr := diurnalTrace(t, 8)
	res, err := Run(context.Background(), cands, tr, Options{Adaptive: true, SLO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Summary.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"adaptive", "total energy", "ideal-proportional", "p95 response", "p99 response"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered summary missing %q:\n%s", want, out)
		}
	}
}
