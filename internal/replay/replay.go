package replay

import (
	"context"
	"errors"
	"fmt"
	"io"

	"repro/internal/adaptive"
	"repro/internal/energyprop"
	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// chunkSteps is the number of trace steps processed per engine pass: the
// sequential decision walk and the parallel percentile fan-out alternate
// at this granularity, so streaming consumers (the /v1/replay NDJSON
// endpoint) see results while later steps still compute, and the fan-out
// still amortizes across a worker pool.
const chunkSteps = 256

// defaultMaxUtilization caps how hot a configuration may run when the
// policy does not say otherwise, matching adaptive.Policy's default (an
// M/D/1 queue at utilization 1 has unbounded delay).
const defaultMaxUtilization = 0.95

// Options configures a replay run.
type Options struct {
	// Percentiles are the response-time percentiles evaluated at every
	// step (each in [0, 100)); empty means {95, 99}. The SLO percentile
	// is always included internally.
	Percentiles []float64
	// SLO is the maximum allowed response time (seconds) at SLOPercentile;
	// zero disables SLO accounting. In adaptive mode the SLO also gates
	// candidate feasibility through the planner policy.
	SLO float64
	// SLOPercentile is the percentile the SLO applies to (default 95).
	SLOPercentile float64
	// Adaptive lets the planner re-provision between steps: each step
	// runs the cheapest feasible candidate, with the policy's hysteresis
	// applied against the configuration running in the previous step.
	// Static mode (false) keeps the reference candidate throughout.
	Adaptive bool
	// Policy constrains the adaptive planner (ignored in static mode,
	// except MaxUtilization which also caps the static queue).
	Policy adaptive.Policy
	// SwitchEnergy is the energy charged per configuration switch in
	// joules (node power-state transitions are not free; the paper's
	// static analysis models switching as free, this surfaces the cost).
	SwitchEnergy float64
	// Workers is the fan-out of the per-step percentile evaluation;
	// <= 0 uses GOMAXPROCS.
	Workers int
	// OnStep, when set, receives every step result in trace order as
	// soon as its chunk completes; returning an error aborts the run.
	OnStep func(Step) error
	// DiscardSteps drops per-step results from the returned Result
	// (streaming callers consume them through OnStep instead).
	DiscardSteps bool
}

// withDefaults resolves zero fields.
func (o Options) withDefaults() Options {
	if len(o.Percentiles) == 0 {
		o.Percentiles = []float64{95, 99}
	}
	if o.SLOPercentile <= 0 {
		o.SLOPercentile = 95
	}
	if o.Policy.MaxUtilization <= 0 || o.Policy.MaxUtilization >= 1 {
		o.Policy.MaxUtilization = defaultMaxUtilization
	}
	if o.SLO > 0 && o.Policy.SLO == 0 {
		o.Policy.SLO = o.SLO
		o.Policy.Percentile = o.SLOPercentile
	}
	return o
}

// Step is the evaluation of one trace step.
type Step struct {
	// T is the step start time (seconds) and DT its dwell.
	T  float64 `json:"t"`
	DT float64 `json:"dt"`
	// Load is the offered load fraction of the reference capacity.
	Load float64 `json:"load"`
	// Chosen is the index of the serving candidate and Config its mix.
	Chosen int    `json:"chosen"`
	Config string `json:"config"`
	// Utilization is the serving candidate's own utilization (clamped to
	// the policy's MaxUtilization when the step saturates).
	Utilization float64 `json:"utilization"`
	// PowerWatts is the average power and EnergyJoules = power * dwell.
	PowerWatts   float64 `json:"power_watts"`
	EnergyJoules float64 `json:"energy_joules"`
	// ResponseSeconds holds the response-time percentiles, aligned with
	// the run's Percentiles.
	ResponseSeconds []float64 `json:"response_seconds"`
	// SLOViolated marks steps whose response exceeded the SLO or that had
	// no feasible configuration.
	SLOViolated bool `json:"slo_violated,omitempty"`
	// Saturated marks steps whose offered load exceeded what the serving
	// candidate may carry; the queue was evaluated at MaxUtilization.
	Saturated bool `json:"saturated,omitempty"`
	// Switched marks steps that changed configuration.
	Switched bool `json:"switched,omitempty"`
}

// Summary is the cumulative ledger of a replay — the report a capacity
// planner reads: total and ideal-proportional energy, SLO compliance and
// reconfiguration churn.
type Summary struct {
	Trace      string   `json:"trace"`
	Candidates []string `json:"candidates"`
	Adaptive   bool     `json:"adaptive"`
	Steps      int      `json:"steps"`
	// DurationSeconds is the covered trace time; MeanLoad the
	// dwell-weighted mean offered load.
	DurationSeconds float64 `json:"duration_seconds"`
	MeanLoad        float64 `json:"mean_load"`
	// ReferencePeakWatts anchors the ideal-proportional baseline: an
	// ideal system draws ReferencePeak * load.
	ReferencePeakWatts float64 `json:"reference_peak_watts"`
	MeanPowerWatts     float64 `json:"mean_power_watts"`
	// TotalEnergyJoules includes SwitchEnergyJoules; IdealEnergyJoules is
	// the ideal-proportional system's spend over the same trace, and
	// EnergyGap = (total - ideal) / ideal the fractional overhead above
	// perfect proportionality (0 when the ideal energy is zero).
	TotalEnergyJoules  float64 `json:"total_energy_joules"`
	SwitchEnergyJoules float64 `json:"switch_energy_joules"`
	IdealEnergyJoules  float64 `json:"ideal_energy_joules"`
	EnergyGap          float64 `json:"energy_gap"`
	// Switches counts configuration changes; SuppressedSwitches how many
	// the hysteresis held back.
	Switches           int `json:"switches"`
	SuppressedSwitches int `json:"suppressed_switches"`
	// SLOViolations counts violating steps; SLOViolationFrac is the
	// fraction of steps. SaturatedSteps counts steps clamped at the
	// utilization cap.
	SLOViolations    int     `json:"slo_violations"`
	SLOViolationFrac float64 `json:"slo_violation_frac"`
	SaturatedSteps   int     `json:"saturated_steps"`
	// Percentiles echoes the evaluated percentiles; MaxResponseSeconds
	// and MeanResponseSeconds aggregate each across steps (the mean is
	// dwell-weighted).
	Percentiles         []float64 `json:"percentiles"`
	MaxResponseSeconds  []float64 `json:"max_response_seconds"`
	MeanResponseSeconds []float64 `json:"mean_response_seconds"`
}

// Result is a completed replay.
type Result struct {
	Summary Summary `json:"summary"`
	// Steps holds the per-step results unless Options.DiscardSteps.
	Steps []Step `json:"steps,omitempty"`
}

// decision is the per-step serving choice before percentile evaluation.
type decision struct {
	chosen     int
	rho        float64
	power      float64
	infeasible bool
	saturated  bool
	switched   bool
}

// Run replays the trace against the candidates. candidates[0..n) are the
// available configurations; the reference for load normalization is the
// fastest one, as in adaptive.Plan. In static mode the reference serves
// every step; in adaptive mode a planner stepper re-decides each step.
// Per-step response percentiles come from the same cached queueing batch
// APIs the static sweeps use, fanned out across a worker pool, so a
// replayed step matches a direct point evaluation exactly.
func Run(ctx context.Context, candidates []*energyprop.Analysis, tr Trace, opt Options) (*Result, error) {
	if len(candidates) == 0 {
		return nil, errors.New("replay: no candidates")
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()

	// Always evaluate the SLO percentile; remember where each requested
	// percentile lives in the (possibly extended) batch.
	ps := append([]float64(nil), opt.Percentiles...)
	for _, p := range ps {
		if p < 0 || p >= 100 {
			return nil, fmt.Errorf("replay: percentile %g outside [0, 100)", p)
		}
	}
	sloIdx := -1
	if opt.SLO > 0 {
		for i, p := range ps {
			if p == opt.SLOPercentile {
				sloIdx = i
			}
		}
		if sloIdx < 0 {
			sloIdx = len(ps)
			ps = append(ps, opt.SLOPercentile)
		}
	}

	stepper, err := adaptive.NewStepper(candidates, opt.Policy)
	if err != nil {
		return nil, err
	}
	ref := stepper.Reference()
	refPeak := float64(candidates[ref].Result.BusyPower)

	reg := telemetry.Global()
	span := reg.Tracer().Start("replay.run").
		Arg("steps", tr.Steps()).Arg("candidates", len(candidates)).Arg("adaptive", opt.Adaptive)
	defer span.End()
	// A request-scoped replay (POST /v1/replay) attributes its stepped
	// trace and run phase to the owning request; rc is nil for CLI runs.
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("replay.run")()
	rc.Add(telemetry.AttrReplaySteps, int64(tr.Steps()))
	stepCnt := reg.Counter("replay.steps")
	violationCnt := reg.Counter("replay.slo_violations")
	switchCnt := reg.Counter("replay.switches")

	n := tr.Steps()
	res := &Result{Summary: Summary{
		Trace:              tr.Name,
		Adaptive:           opt.Adaptive,
		Steps:              n,
		DurationSeconds:    tr.Duration(),
		MeanLoad:           tr.MeanLoad(),
		ReferencePeakWatts: refPeak,
		Percentiles:        opt.Percentiles,
	}}
	for _, c := range candidates {
		res.Summary.Candidates = append(res.Summary.Candidates, c.Result.Config.String())
	}
	if !opt.DiscardSteps {
		res.Steps = make([]Step, 0, n)
	}

	var totalE, idealE stats.KahanSum
	maxResp := make([]float64, len(opt.Percentiles))
	meanResp := make([]stats.KahanSum, len(opt.Percentiles))
	prev := -1

	decisions := make([]decision, chunkSteps)
	resps := make([][]float64, chunkSteps)
	errsAt := make([]error, chunkSteps)
	for lo := 0; lo < n; lo += chunkSteps {
		hi := min(lo+chunkSteps, n)

		// Phase 1 — decide (sequential: hysteresis carries across steps).
		for i := lo; i < hi; i++ {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("replay: %w", err)
			}
			load := tr.Points[i].Load
			d, err := decideStep(stepper, candidates, load, opt)
			if err != nil {
				return nil, err
			}
			d.switched = prev >= 0 && d.chosen != prev
			prev = d.chosen
			decisions[i-lo] = d
		}

		// Phase 2 — percentiles: each step's batch is independent, so the
		// chunk fans out across the pool; the scale-invariant percentile
		// cache deduplicates repeated (rho, p) searches underneath.
		if err := sweep.ForEachContext(ctx, hi-lo, opt.Workers, func(j int) {
			d := decisions[j]
			c := candidates[d.chosen]
			q, err := queueing.NewMD1FromUtilization(d.rho, float64(c.Result.Time))
			if err != nil {
				resps[j], errsAt[j] = nil, err
				return
			}
			resps[j], errsAt[j] = q.ResponsePercentilesContext(ctx, ps)
		}); err != nil {
			return nil, fmt.Errorf("replay: %w", err)
		}

		// Phase 3 — ledger and emission (sequential, trace order).
		for i := lo; i < hi; i++ {
			j := i - lo
			if errsAt[j] != nil {
				return nil, fmt.Errorf("replay: step %d (load %g): %w", i, tr.Points[i].Load, errsAt[j])
			}
			d := decisions[j]
			dt := tr.dwell(i)
			load := tr.Points[i].Load
			st := Step{
				T: tr.Points[i].T, DT: dt, Load: load,
				Chosen:          d.chosen,
				Config:          res.Summary.Candidates[d.chosen],
				Utilization:     d.rho,
				PowerWatts:      d.power,
				EnergyJoules:    d.power * dt,
				ResponseSeconds: resps[j][:len(opt.Percentiles):len(opt.Percentiles)],
				Saturated:       d.saturated,
				Switched:        d.switched,
			}
			if d.infeasible || d.saturated {
				st.SLOViolated = true
			} else if opt.SLO > 0 && resps[j][sloIdx] > opt.SLO {
				st.SLOViolated = true
			}

			totalE.Add(st.EnergyJoules)
			idealE.Add(refPeak * load * dt)
			for k := range opt.Percentiles {
				if v := st.ResponseSeconds[k]; v > maxResp[k] {
					maxResp[k] = v
				}
				meanResp[k].Add(st.ResponseSeconds[k] * dt)
			}
			if st.SLOViolated {
				res.Summary.SLOViolations++
				violationCnt.Inc()
			}
			if st.Saturated {
				res.Summary.SaturatedSteps++
			}
			if st.Switched {
				switchCnt.Inc()
			}
			stepCnt.Inc()
			if opt.OnStep != nil {
				if err := opt.OnStep(st); err != nil {
					return nil, fmt.Errorf("replay: step consumer: %w", err)
				}
			}
			if !opt.DiscardSteps {
				res.Steps = append(res.Steps, st)
			}
		}
	}

	res.Summary.Switches = stepper.Switches()
	res.Summary.SuppressedSwitches = stepper.Suppressed()
	res.Summary.SwitchEnergyJoules = float64(res.Summary.Switches) * opt.SwitchEnergy
	totalE.Add(res.Summary.SwitchEnergyJoules)
	res.Summary.TotalEnergyJoules = totalE.Sum()
	res.Summary.IdealEnergyJoules = idealE.Sum()
	if res.Summary.IdealEnergyJoules > 0 {
		res.Summary.EnergyGap = (res.Summary.TotalEnergyJoules - res.Summary.IdealEnergyJoules) /
			res.Summary.IdealEnergyJoules
	}
	if res.Summary.DurationSeconds > 0 {
		res.Summary.MeanPowerWatts = res.Summary.TotalEnergyJoules / res.Summary.DurationSeconds
	}
	res.Summary.SLOViolationFrac = float64(res.Summary.SLOViolations) / float64(n)
	res.Summary.MaxResponseSeconds = maxResp
	res.Summary.MeanResponseSeconds = make([]float64, len(opt.Percentiles))
	for k := range meanResp {
		if res.Summary.DurationSeconds > 0 {
			res.Summary.MeanResponseSeconds[k] = meanResp[k].Sum() / res.Summary.DurationSeconds
		}
	}
	return res, nil
}

// decideStep resolves the serving candidate for one load. In adaptive
// mode the stepper decides; static mode (and the adaptive infeasible
// fallback) serves from the reference. Loads past the utilization cap
// clamp the queue at the cap and mark the step saturated — the offered
// traffic exceeds what the configuration may carry under the policy.
func decideStep(stepper *adaptive.Stepper, candidates []*energyprop.Analysis, load float64, opt Options) (decision, error) {
	ref := stepper.Reference()
	if opt.Adaptive {
		d, err := stepper.Step(load)
		if err != nil {
			return decision{}, err
		}
		if d.Chosen >= 0 {
			return decision{chosen: d.Chosen, rho: d.Utilization, power: d.Power}, nil
		}
		// No feasible candidate: keep the reference running and eat the
		// latency, as loadtrace.Evaluate does.
		dec := referenceDecision(candidates[ref], ref, load, opt)
		dec.infeasible = true
		return dec, nil
	}
	return referenceDecision(candidates[ref], ref, load, opt), nil
}

// referenceDecision evaluates the reference candidate at the load, with
// the utilization cap applied. The reference's own utilization equals
// the load fraction by construction.
func referenceDecision(c *energyprop.Analysis, ref int, load float64, opt Options) decision {
	rho := load
	saturated := false
	if rho > opt.Policy.MaxUtilization {
		rho = opt.Policy.MaxUtilization
		saturated = true
	}
	return decision{chosen: ref, rho: rho, power: c.PowerAt(rho), saturated: saturated}
}

// Render writes the summary as aligned text (the CLI's default output).
func (s Summary) Render(w io.Writer) error {
	mode := "static"
	if s.Adaptive {
		mode = "adaptive"
	}
	_, err := fmt.Fprintf(w, `replay: %s (%s over %d candidates)
steps %d   duration %.6gs   mean load %.3f
total energy %.6g J   (switches %.6g J over %d switches, %d suppressed)
ideal-proportional energy %.6g J   gap %+.1f%%
mean power %.6g W   reference peak %.6g W
SLO violations %d/%d (%.1f%%)   saturated steps %d
`,
		s.Trace, mode, len(s.Candidates),
		s.Steps, s.DurationSeconds, s.MeanLoad,
		s.TotalEnergyJoules, s.SwitchEnergyJoules, s.Switches, s.SuppressedSwitches,
		s.IdealEnergyJoules, 100*s.EnergyGap,
		s.MeanPowerWatts, s.ReferencePeakWatts,
		s.SLOViolations, s.Steps, 100*s.SLOViolationFrac, s.SaturatedSteps)
	if err != nil {
		return err
	}
	for k, p := range s.Percentiles {
		if _, err := fmt.Fprintf(w, "p%g response: max %.6gs   mean %.6gs\n",
			p, s.MaxResponseSeconds[k], s.MeanResponseSeconds[k]); err != nil {
			return err
		}
	}
	return nil
}
