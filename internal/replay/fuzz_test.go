package replay

import (
	"bytes"
	"strings"
	"testing"
)

// Fuzz targets for the trace parsers: arbitrary bytes must never panic,
// and any trace a parser accepts must be internally consistent — it
// validates, round-trips through the CSV writer, and re-parses to the
// same shape. `make fuzz` runs these as a short smoke.

func FuzzParseCSV(f *testing.F) {
	f.Add("0,0.3\n60,0.5\n120,0.4\n")
	f.Add("t,load\n0,0.1\n30,0.9\n")
	f.Add("# comment\n0, 0.5\n10, 0.6\n")
	f.Add("")
	f.Add("0;0.5")
	f.Add("0,0.5\n-1,0.2\n")
	f.Add("0,1.5\n1,0.5\n")
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		checkAcceptedTrace(t, tr)
	})
}

func FuzzParseJSON(f *testing.F) {
	f.Add(`[{"t":0,"load":0.3},{"t":60,"load":0.5}]`)
	f.Add(`{"points":[{"t":0,"load":0.2},{"t":1,"load":0.8}],"name":"x"}`)
	f.Add(`{"points":[]}`)
	f.Add(`[]`)
	f.Add(`null`)
	f.Add(`[{"t":1e308,"load":0.5},{"t":1e309,"load":0.5}]`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ParseJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		checkAcceptedTrace(t, tr)
	})
}

// checkAcceptedTrace asserts the invariants every parser-accepted trace
// must satisfy.
func checkAcceptedTrace(t *testing.T, tr Trace) {
	t.Helper()
	if err := tr.Validate(); err != nil {
		t.Fatalf("parser accepted a trace that fails Validate: %v", err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("writing accepted trace back as CSV: %v", err)
	}
	back, err := ParseCSV(&buf)
	if err != nil {
		t.Fatalf("re-parsing written CSV: %v", err)
	}
	if len(back.Points) != len(tr.Points) {
		t.Fatalf("round trip changed point count: %d -> %d", len(tr.Points), len(back.Points))
	}
}
