// Package replay is the trace-driven evaluation engine: it steps a
// cluster configuration (or an adaptively re-provisioned set of
// candidate configurations) through a time-varying utilization trace and
// accumulates the whole-scenario ledger — energy, the gap against an
// ideal energy-proportional system, tail-latency SLO compliance and
// configuration-switch churn.
//
// The paper's energy-proportionality analysis sweeps a *static* M/D/1
// utilization grid; real clusters track diurnal and bursty load, which
// is where proportionality wins or loses (Section II-B's "most servers
// operate at 30% utilization on an average" is a statement about a
// time-varying distribution). A Trace makes that distribution explicit:
// an ordered utilization time series, synthetic (internal/loadtrace
// shapes) or parsed from CSV/JSON, replayed through the exact same
// power, metrics and queueing kernels the static sweep uses — so every
// per-step quantity matches a direct point evaluation bit for bit.
package replay

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/loadtrace"
)

// Point is one sample of a utilization trace.
type Point struct {
	// T is the sample time in seconds since trace start. Points must
	// strictly ascend in T.
	T float64 `json:"t"`
	// Load is the offered load as a fraction of the reference
	// configuration's capacity, in [0, 1]. The load holds from this
	// point's T until the next point's.
	Load float64 `json:"load"`
}

// Trace is an ordered utilization time series. The i-th load holds for
// [T_i, T_{i+1}); the final point's dwell repeats the preceding
// interval, so a uniformly sampled trace of n points covers n equal
// steps.
type Trace struct {
	// Name labels the trace in summaries and telemetry.
	Name string `json:"name,omitempty"`
	// Points holds the samples, strictly ascending in T.
	Points []Point `json:"points"`
}

// Validate checks the trace invariants the engine and the serving layer
// rely on: at least two points, finite strictly-ascending timestamps and
// loads within [0, 1].
func (tr Trace) Validate() error {
	if len(tr.Points) < 2 {
		return fmt.Errorf("replay: trace needs at least 2 points, got %d", len(tr.Points))
	}
	for i, p := range tr.Points {
		if math.IsNaN(p.T) || math.IsInf(p.T, 0) {
			return fmt.Errorf("replay: point %d has non-finite timestamp %g", i, p.T)
		}
		if math.IsNaN(p.Load) || p.Load < 0 || p.Load > 1 {
			return fmt.Errorf("replay: point %d load %g outside [0, 1]", i, p.Load)
		}
		if i > 0 && p.T <= tr.Points[i-1].T {
			return fmt.Errorf("replay: non-monotonic timestamps: point %d at t=%g follows t=%g",
				i, p.T, tr.Points[i-1].T)
		}
	}
	return nil
}

// Steps returns the number of evaluation steps (one per point).
func (tr Trace) Steps() int { return len(tr.Points) }

// Duration returns the total covered time in seconds, including the
// final point's repeated dwell.
func (tr Trace) Duration() float64 {
	n := len(tr.Points)
	if n < 2 {
		return 0
	}
	last := tr.Points[n-1].T - tr.Points[n-2].T
	return tr.Points[n-1].T - tr.Points[0].T + last
}

// dwell returns the duration of step i.
func (tr Trace) dwell(i int) float64 {
	n := len(tr.Points)
	if i < n-1 {
		return tr.Points[i+1].T - tr.Points[i].T
	}
	return tr.Points[n-1].T - tr.Points[n-2].T
}

// MeanLoad returns the dwell-weighted mean load fraction.
func (tr Trace) MeanLoad() float64 {
	var sum, dur float64
	for i, p := range tr.Points {
		d := tr.dwell(i)
		sum += p.Load * d
		dur += d
	}
	if dur <= 0 {
		return 0
	}
	return sum / dur
}

// FromShape samples a loadtrace shape into a uniform trace: steps
// intervals of the given length, each sampled at its midpoint (the same
// convention loadtrace.Evaluate uses, so a replay over the sampled trace
// and a direct shape evaluation see identical loads).
func FromShape(shape loadtrace.Shape, step float64, steps int) (Trace, error) {
	if step <= 0 {
		return Trace{}, errors.New("replay: step must be positive")
	}
	if steps < 2 {
		return Trace{}, fmt.Errorf("replay: need at least 2 steps, got %d", steps)
	}
	tr := Trace{Name: shape.Name(), Points: make([]Point, steps)}
	for i := range tr.Points {
		mid := (float64(i) + 0.5) * step
		tr.Points[i] = Point{T: float64(i) * step, Load: shape.At(mid)}
	}
	return tr, tr.Validate()
}
