package cli

import (
	"fmt"
	"os"

	"repro/internal/hardware"
	"repro/internal/workload"
)

// LoadEnvironment builds the catalog and workload registry the CLI tools
// operate on: the built-in A9/K10 catalog and the six calibrated paper
// workloads, optionally extended with user-defined node types
// (nodesPath, a JSON array of node descriptions) and workload profiles
// (workloadsPath, a JSON array of raw demand profiles). Empty paths skip
// the overlay.
func LoadEnvironment(nodesPath, workloadsPath string) (*hardware.Catalog, *workload.Registry, error) {
	catalog := hardware.DefaultCatalog()
	if nodesPath != "" {
		f, err := os.Open(nodesPath)
		if err != nil {
			return nil, nil, fmt.Errorf("cli: opening node catalog: %w", err)
		}
		err = catalog.MergeJSON(f)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("cli: %s: %w", nodesPath, err)
		}
	}
	registry, err := workload.PaperRegistry(catalog)
	if err != nil {
		return nil, nil, err
	}
	if workloadsPath != "" {
		f, err := os.Open(workloadsPath)
		if err != nil {
			return nil, nil, fmt.Errorf("cli: opening workloads: %w", err)
		}
		extra, err2 := workload.ReadRegistryJSON(f)
		f.Close()
		if err2 != nil {
			return nil, nil, fmt.Errorf("cli: %s: %w", workloadsPath, err2)
		}
		for _, name := range extra.Names() {
			p, err := extra.Lookup(name)
			if err != nil {
				return nil, nil, err
			}
			if err := registry.Register(p); err != nil {
				return nil, nil, fmt.Errorf("cli: %s: %w", workloadsPath, err)
			}
		}
	}
	return catalog, registry, nil
}
