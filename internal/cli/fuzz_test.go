package cli

import (
	"testing"

	"repro/internal/hardware"
)

// FuzzParseMix drives arbitrary mix strings through the parser: it must
// never panic, and on success the configuration must validate.
func FuzzParseMix(f *testing.F) {
	for _, seed := range []string{
		"32xA9,12xK10",
		"1xA9",
		"",
		"0xA9",
		",,,",
		"axb",
		"4xA9,4xA9",
		"9999999999999999999xA9",
		" 2 x K10 ",
		"-3xA9",
		"2xa9",
		"2xA9,3xXeonE5,1xA15",
	} {
		f.Add(seed, 0, 0.0)
	}
	cat := hardware.DefaultCatalog()
	f.Fuzz(func(t *testing.T, mix string, cores int, freqGHz float64) {
		cfg, err := ParseMix(cat, mix, cores, freqGHz)
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseMix(%q, %d, %g) returned invalid config: %v", mix, cores, freqGHz, err)
		}
		if cfg.Nodes() <= 0 {
			t.Fatalf("ParseMix(%q) returned empty config without error", mix)
		}
	})
}
