// Package cli holds helpers shared by the command-line tools: parsing
// cluster-mix specifications like "32xA9,12xK10".
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/units"
)

// ParseMix parses a comma-separated list of COUNTxTYPE entries into a
// configuration. cores > 0 overrides the active core count of every
// group; freqGHz > 0 snaps every group to the nearest ladder step of
// that frequency.
func ParseMix(catalog *hardware.Catalog, mix string, cores int, freqGHz float64) (cluster.Config, error) {
	var groups []cluster.Group
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.SplitN(part, "x", 2)
		if len(fields) != 2 {
			return cluster.Config{}, fmt.Errorf("bad mix entry %q, want COUNTxTYPE", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(fields[0]))
		if err != nil {
			return cluster.Config{}, fmt.Errorf("bad count in %q: %w", part, err)
		}
		nt, err := catalog.Lookup(strings.TrimSpace(fields[1]))
		if err != nil {
			return cluster.Config{}, err
		}
		g := cluster.FullNodes(nt, n)
		if cores > 0 {
			if cores > nt.Cores {
				return cluster.Config{}, fmt.Errorf("%s has only %d cores", nt.Name, nt.Cores)
			}
			g.Cores = cores
		}
		if freqGHz > 0 {
			g.Freq = nt.NearestFreq(units.Hertz(freqGHz) * units.GHz)
		}
		groups = append(groups, g)
	}
	return cluster.NewConfig(groups...)
}
