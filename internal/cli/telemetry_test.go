package cli

import (
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// TestTelemetryFlagsRoundTrip: parsing -metrics/-trace, running an
// instrumented workload and closing produces valid JSON files with the
// recorded values.
func TestTelemetryFlagsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "m.json")
	trace := filepath.Join(dir, "t.trace.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tel := AddTelemetryFlags(fs)
	if err := fs.Parse([]string{"-metrics", metrics, "-trace", trace}); err != nil {
		t.Fatal(err)
	}
	if err := tel.Start(); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.Global()
	if reg == nil {
		t.Fatal("Start did not install a global registry")
	}
	reg.Counter("test.widgets").Add(7)
	reg.Tracer().Start("test.phase").End()
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	if telemetry.Global() != nil {
		t.Error("Close did not uninstall the global registry")
	}

	var snap telemetry.Snapshot
	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file is not valid JSON: %v", err)
	}
	if snap.Counters["test.widgets"] != 7 {
		t.Errorf("metrics counter = %d, want 7", snap.Counters["test.widgets"])
	}
	var events []map[string]any
	raw, err = os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &events); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(events) != 1 || events[0]["name"] != "test.phase" {
		t.Errorf("trace events = %v, want one test.phase", events)
	}
}

// TestTelemetryDisabled: with no flags set, Start installs nothing and
// Close writes nothing.
func TestTelemetryDisabled(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	tel := AddTelemetryFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := tel.Start(); err != nil {
		t.Fatal(err)
	}
	if telemetry.Global() != nil {
		t.Error("disabled telemetry installed a registry")
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	// Nil receiver is a no-op end to end.
	var nilTel *Telemetry
	if err := nilTel.Start(); err != nil {
		t.Fatal(err)
	}
	if err := nilTel.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryPprof: -pprof serves the index on a loopback listener.
func TestTelemetryPprof(t *testing.T) {
	tel := &Telemetry{PprofAddr: "127.0.0.1:0"}
	if err := tel.Start(); err != nil {
		t.Fatal(err)
	}
	defer tel.Close()
	resp, err := http.Get("http://" + tel.ln.Addr().String() + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d, want 200", resp.StatusCode)
	}
}
