package cli

import (
	"flag"
	"io"
	"log/slog"
	"os"

	"repro/internal/telemetry"
)

// LogFlags carries the shared structured-logging flags (-log-level,
// -log-format) of the CLI tools. The same pair configures every binary,
// so "give me debug logs as JSON" is spelled identically on epserve,
// loadgen and the batch tools.
type LogFlags struct {
	// Level is the minimum level emitted: debug, info, warn or error.
	Level string
	// Format is the handler: text (logfmt-style, the default) or json.
	Format string
}

// AddLogFlags registers -log-level and -log-format on fs (nil means
// flag.CommandLine) and returns the LogFlags that will hold them after
// parsing.
func AddLogFlags(fs *flag.FlagSet) *LogFlags {
	if fs == nil {
		fs = flag.CommandLine
	}
	l := &LogFlags{}
	fs.StringVar(&l.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
	fs.StringVar(&l.Format, "log-format", "text", "log format: text or json")
	return l
}

// Logger builds the structured logger the flags describe, writing to w
// (nil means stderr). The handler is the shared telemetry handler, so
// records logged under a request-scoped context carry the request ID.
func (l *LogFlags) Logger(w io.Writer) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	return telemetry.NewLogger(w, l.Format, l.Level)
}
