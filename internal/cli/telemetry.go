package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"

	"repro/internal/telemetry"
)

// Fatal prints err in the uniform "<tool>: error: <err>" form on stderr
// and exits with status 1. Every cmd/* main routes its top-level error
// through it so scripted callers see one predictable failure shape.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: error: %v\n", tool, err)
	os.Exit(1)
}

// Telemetry carries the shared observability flags of the CLI tools and
// the collection state behind them. Zero flags means zero overhead: no
// registry is installed and the instrumented packages stay on their
// nil no-op path.
type Telemetry struct {
	// MetricsPath, when set, receives a JSON metrics snapshot on Close.
	MetricsPath string
	// TracePath, when set, receives a Chrome trace-event file on Close
	// (load it at https://ui.perfetto.dev or chrome://tracing).
	TracePath string
	// PprofAddr, when set, serves net/http/pprof from Start to Close.
	PprofAddr string
	// Logger receives the lifecycle messages (pprof address, files
	// written on Close); nil uses a plain text logger on stderr.
	Logger *slog.Logger

	reg *telemetry.Registry
	ln  net.Listener
}

// log resolves the lifecycle logger.
func (t *Telemetry) log() *slog.Logger {
	if t.Logger != nil {
		return t.Logger
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// AddTelemetryFlags registers the shared -metrics, -trace and -pprof
// flags on fs (nil means flag.CommandLine) and returns the Telemetry
// that will honor them after Start.
func AddTelemetryFlags(fs *flag.FlagSet) *Telemetry {
	if fs == nil {
		fs = flag.CommandLine
	}
	t := &Telemetry{}
	fs.StringVar(&t.MetricsPath, "metrics", "", "write a JSON metrics snapshot to this file on exit")
	fs.StringVar(&t.TracePath, "trace", "", "write a Chrome trace-event file (Perfetto-loadable) to this file on exit; an execution-trace output, not epreplay's -trace-file replay input")
	fs.StringVar(&t.PprofAddr, "pprof", "", "serve net/http/pprof on this address, e.g. localhost:6060")
	return t
}

// Start installs a process-global telemetry registry when -metrics or
// -trace asked for output, and brings up the pprof server when -pprof
// did. Call after flag parsing and before the tool's work; pair with
// Close.
func (t *Telemetry) Start() error {
	if t == nil {
		return nil
	}
	if t.MetricsPath != "" || t.TracePath != "" {
		t.reg = telemetry.New()
		telemetry.SetGlobal(t.reg)
	}
	if t.PprofAddr != "" {
		ln, err := net.Listen("tcp", t.PprofAddr)
		if err != nil {
			return fmt.Errorf("cli: pprof: %w", err)
		}
		t.ln = ln
		t.log().Info("pprof listening", "url", fmt.Sprintf("http://%s/debug/pprof/", ln.Addr()))
		go http.Serve(ln, nil) //nolint:errcheck // best-effort debug server
	}
	return nil
}

// Close stops the pprof server, writes the requested metrics and trace
// files, and uninstalls the global registry. Safe to call when Start
// never ran or installed nothing.
func (t *Telemetry) Close() error {
	if t == nil {
		return nil
	}
	if t.ln != nil {
		t.ln.Close()
		t.ln = nil
	}
	if t.reg == nil {
		return nil
	}
	reg := t.reg
	t.reg = nil
	telemetry.SetGlobal(nil)
	if t.MetricsPath != "" {
		if err := writeTo(t.MetricsPath, reg.WriteJSON); err != nil {
			return fmt.Errorf("cli: metrics: %w", err)
		}
		t.log().Info("metrics snapshot written", "path", t.MetricsPath)
	}
	if t.TracePath != "" {
		if err := writeTo(t.TracePath, reg.Tracer().WriteChromeTrace); err != nil {
			return fmt.Errorf("cli: trace: %w", err)
		}
		t.log().Info("chrome trace written", "path", t.TracePath)
		if d := reg.Tracer().Dropped(); d > 0 {
			t.log().Warn("trace spans dropped past the event cap", "dropped", d)
		}
	}
	return nil
}

// writeTo creates path and streams render into it.
func writeTo(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
