package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadEnvironmentDefaults(t *testing.T) {
	catalog, registry, err := LoadEnvironment("", "")
	if err != nil {
		t.Fatal(err)
	}
	if catalog.Len() != 4 {
		t.Errorf("default catalog has %d types", catalog.Len())
	}
	if registry.Len() != 6 {
		t.Errorf("default registry has %d workloads", registry.Len())
	}
}

func TestLoadEnvironmentWithOverlays(t *testing.T) {
	dir := t.TempDir()
	nodesPath := writeFile(t, dir, "nodes.json", `[{
		"name":"Edge","cores":4,"freq_ghz":[0.8,1.5],"nic_bandwidth_bps":1e9,
		"power":{"cpu_act_per_core_w":1,"cpu_stall_per_core_w":0.4,"mem_w":0.5,"net_w":0.5,"idle_w":3},
		"nominal_peak_w":9}]`)
	wlPath := writeFile(t, dir, "wl.json", `[{
		"name":"edge-infer","unit":"frames","job_units":1000,
		"demands":{
			"Edge":{"core_cycles_per_unit":2e6,"mem_cycles_per_unit":5e5,"intensity":0.7},
			"A9":{"core_cycles_per_unit":8e6,"mem_cycles_per_unit":2e6,"intensity":0.3}
		}}]`)

	catalog, registry, err := LoadEnvironment(nodesPath, wlPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := catalog.Lookup("Edge"); err != nil {
		t.Errorf("custom node missing: %v", err)
	}
	p, err := registry.Lookup("edge-infer")
	if err != nil {
		t.Fatalf("custom workload missing: %v", err)
	}
	// End to end: the custom workload runs on the custom node through
	// the same mix parser the tools use.
	cfg, err := ParseMix(catalog, "4xEdge,8xA9", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Nodes() != 12 {
		t.Errorf("mixed custom config has %d nodes", cfg.Nodes())
	}
	if !p.Supports("Edge") || !p.Supports("A9") {
		t.Error("custom workload does not cover its node types")
	}
}

func TestLoadEnvironmentErrors(t *testing.T) {
	if _, _, err := LoadEnvironment("/nonexistent/nodes.json", ""); err == nil {
		t.Error("missing nodes file accepted")
	}
	if _, _, err := LoadEnvironment("", "/nonexistent/wl.json"); err == nil {
		t.Error("missing workloads file accepted")
	}
	dir := t.TempDir()
	bad := writeFile(t, dir, "bad.json", "not json")
	if _, _, err := LoadEnvironment(bad, ""); err == nil {
		t.Error("bad nodes JSON accepted")
	}
	if _, _, err := LoadEnvironment("", bad); err == nil {
		t.Error("bad workloads JSON accepted")
	}
	// A workload file colliding with a paper workload name fails.
	dup := writeFile(t, dir, "dup.json", `[{
		"name":"EP","unit":"u","job_units":1,
		"demands":{"A9":{"core_cycles_per_unit":1,"intensity":1}}}]`)
	if _, _, err := LoadEnvironment("", dup); err == nil {
		t.Error("duplicate workload name accepted")
	}
}
