package cli

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/units"
)

func TestParseMixBasic(t *testing.T) {
	cat := hardware.DefaultCatalog()
	cfg, err := ParseMix(cat, "32xA9,12xK10", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Count("A9") != 32 || cfg.Count("K10") != 12 {
		t.Errorf("counts = %d/%d", cfg.Count("A9"), cfg.Count("K10"))
	}
	for _, g := range cfg.Groups {
		if g.Cores != g.Type.Cores || g.Freq != g.Type.FMax() {
			t.Errorf("group %s not at full cores/fmax", g.Type.Name)
		}
	}
}

func TestParseMixWhitespaceAndEmptyEntries(t *testing.T) {
	cat := hardware.DefaultCatalog()
	cfg, err := ParseMix(cat, " 4 x A9 , , 2xK10 ", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Count("A9") != 4 || cfg.Count("K10") != 2 {
		t.Errorf("counts = %d/%d", cfg.Count("A9"), cfg.Count("K10"))
	}
}

func TestParseMixOverrides(t *testing.T) {
	cat := hardware.DefaultCatalog()
	cfg, err := ParseMix(cat, "2xA9", 2, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Groups[0]
	if g.Cores != 2 {
		t.Errorf("cores = %d, want 2", g.Cores)
	}
	// 0.75 GHz snaps to the nearest A9 ladder step, 0.8 GHz.
	if g.Freq != 0.8*units.GHz {
		t.Errorf("freq = %v, want 0.8 GHz", g.Freq)
	}
}

func TestParseMixErrors(t *testing.T) {
	cat := hardware.DefaultCatalog()
	cases := []struct {
		mix   string
		cores int
	}{
		{"badentry", 0},
		{"zzxA9", 0},
		{"4xNOPE", 0},
		{"", 0},      // no groups at all
		{"4xA9", 99}, // more cores than the type has
	}
	for _, c := range cases {
		if _, err := ParseMix(cat, c.mix, c.cores, 0); err == nil {
			t.Errorf("mix %q cores %d accepted", c.mix, c.cores)
		}
	}
}
