package adaptive

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/workload"
)

// FrontierCandidates builds the planner's candidate matrix from the
// design space itself: it sweeps the limits with the memoized frontier
// engine, thins the time-energy Pareto frontier to at most n points
// (keeping both endpoints — the fastest and the lowest-energy
// configuration — and spreading the rest evenly along the frontier),
// and analyzes each survivor at the given power-curve resolution.
//
// This replaces hand-picked -mixes lists: the frontier is exactly the
// set of configurations worth switching between, since any off-frontier
// mix is dominated at every load by some frontier point.
//
// workers is the sweep fan-out width; <= 0 uses GOMAXPROCS.
func FrontierCandidates(limits []cluster.Limit, wl *workload.Profile, opt model.Options, n, samples, workers int) ([]*energyprop.Analysis, error) {
	if n < 2 {
		return nil, fmt.Errorf("adaptive: need at least 2 candidates, asked for %d", n)
	}
	front, err := pareto.FrontierSweep(limits, wl, opt, pareto.SweepOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	if len(front) == 0 {
		return nil, fmt.Errorf("adaptive: empty frontier for %s", wl.Name)
	}

	idx := thinIndices(len(front), n)
	cands := make([]*energyprop.Analysis, 0, len(idx))
	for _, i := range idx {
		a, err := energyprop.Analyze(front[i].Config, wl, opt, samples)
		if err != nil {
			return nil, err
		}
		cands = append(cands, a)
	}
	return cands, nil
}

// thinIndices picks at most n of m indices: all of them when they fit,
// otherwise both endpoints plus an even spread in between.
func thinIndices(m, n int) []int {
	if m <= n {
		out := make([]int, m)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, 0, n)
	last := -1
	for i := 0; i < n; i++ {
		j := i * (m - 1) / (n - 1)
		if j != last {
			out = append(out, j)
			last = j
		}
	}
	return out
}
