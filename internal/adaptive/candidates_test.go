package adaptive

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/workload"
)

// TestFrontierCandidates: the helper returns analyzed frontier points in
// frontier order (time ascending, energy descending) and they plug
// straight into Plan.
func TestFrontierCandidates(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	limits := []cluster.Limit{
		{Type: a9, MaxNodes: 8},
		{Type: k10, MaxNodes: 4},
	}

	cands, err := FrontierCandidates(limits, wl, model.Options{}, 4, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) < 2 || len(cands) > 4 {
		t.Fatalf("got %d candidates, want 2..4", len(cands))
	}
	for i := 1; i < len(cands); i++ {
		if cands[i].Result.Time <= cands[i-1].Result.Time {
			t.Errorf("candidate %d time %v not after %v — frontier order lost",
				i, cands[i].Result.Time, cands[i-1].Result.Time)
		}
		if cands[i].Result.Energy >= cands[i-1].Result.Energy {
			t.Errorf("candidate %d energy %v not below %v — not a frontier walk",
				i, cands[i].Result.Energy, cands[i-1].Result.Energy)
		}
	}

	plan, err := Plan(cands, Policy{}, []float64{0.2, 0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Error("frontier candidates left grid points infeasible")
	}

	if _, err := FrontierCandidates(limits, wl, model.Options{}, 1, 50, 1); err == nil {
		t.Error("n=1 should be rejected")
	}
}

func TestThinIndices(t *testing.T) {
	cases := []struct {
		m, n int
		want []int
	}{
		{3, 5, []int{0, 1, 2}},
		{5, 5, []int{0, 1, 2, 3, 4}},
		{10, 3, []int{0, 4, 9}},
		{10, 2, []int{0, 9}},
		{1, 4, []int{0}},
	}
	for _, c := range cases {
		got := thinIndices(c.m, c.n)
		if len(got) != len(c.want) {
			t.Errorf("thinIndices(%d,%d) = %v, want %v", c.m, c.n, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("thinIndices(%d,%d) = %v, want %v", c.m, c.n, got, c.want)
				break
			}
		}
	}
}
