// Package adaptive explores the paper's stated complementary direction
// ("dynamic adaptation of workload during the execution of a program
// complements our approach and can be used in conjunction"): instead of
// one static configuration across all utilization levels, a dispatcher
// switches the cluster between configurations as load changes — powering
// brawny nodes down at low utilization the way KnightShift powers down
// its host core.
//
// Given a set of candidate configurations for a workload, Plan computes
// the load-dependent *ensemble*: at each offered load it selects the
// feasible configuration (enough capacity, and optionally a response-
// time SLO) with the lowest average power. The resulting ensemble power
// curve is the lower envelope of the candidates' curves and is typically
// sub-linear against the largest candidate's peak — dynamic adaptation
// scales the proportionality wall further than any static mix.
//
// Switching is modeled as free, matching the paper's static analysis;
// the Decision log exposes where switches happen so a deployment can
// assess transition costs separately.
package adaptive

import (
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/energyprop"
	"repro/internal/queueing"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// Policy constrains which candidate may serve a given load.
type Policy struct {
	// SLO is the maximum allowed response time at the configured
	// percentile; zero disables the latency constraint.
	SLO float64
	// Percentile is the response-time percentile the SLO applies to
	// (defaults to 95 when zero).
	Percentile float64
	// MaxUtilization caps how hot a candidate may run (defaults to 0.95;
	// an M/D/1 queue at utilization 1 has unbounded delay).
	MaxUtilization float64
	// Hysteresis suppresses switching churn: the plan leaves the current
	// configuration only when the best alternative saves more than this
	// fraction of the current configuration's power (e.g. 0.05 = 5%).
	// Zero switches greedily.
	Hysteresis float64
	// Workers is the fan-out of the candidate-evaluation precompute
	// (every candidate's utilization, power and response percentile at
	// every grid point is independent); <= 0 uses GOMAXPROCS.
	Workers int
}

func (p Policy) withDefaults() Policy {
	if p.Percentile <= 0 {
		p.Percentile = 95
	}
	if p.MaxUtilization <= 0 || p.MaxUtilization >= 1 {
		p.MaxUtilization = 0.95
	}
	return p
}

// Decision records the choice made for one load level.
type Decision struct {
	// LoadFrac is the offered load as a fraction of the reference
	// (highest-capacity) candidate's maximum throughput.
	LoadFrac float64
	// Arrival is the job arrival rate (jobs per second).
	Arrival float64
	// Chosen is the index of the selected candidate, or -1 if no
	// candidate is feasible at this load under the policy.
	Chosen int
	// Utilization is the chosen candidate's own utilization at this load.
	Utilization float64
	// Power is the chosen candidate's average power at this load.
	Power float64
	// Response is the chosen candidate's response time at the policy
	// percentile.
	Response float64
}

// Ensemble is the planned load-to-configuration mapping.
type Ensemble struct {
	// Candidates are the analyses the plan selects among.
	Candidates []*energyprop.Analysis
	// Reference is the index of the highest-capacity candidate, whose
	// throughput defines LoadFrac = 1 and whose peak power anchors the
	// normalized ensemble curve.
	Reference int
	// Decisions holds one entry per grid point, ascending in load.
	Decisions []Decision
	// Switches counts configuration changes along the grid.
	Switches int
}

// Plan computes the ensemble over the load grid (fractions of the
// reference capacity in (0, 1]; ascending). Every grid point must be
// feasible for the reference candidate or an error is returned.
func Plan(candidates []*energyprop.Analysis, policy Policy, grid []float64) (*Ensemble, error) {
	if len(candidates) == 0 {
		return nil, errors.New("adaptive: no candidates")
	}
	if len(grid) == 0 {
		return nil, errors.New("adaptive: empty load grid")
	}
	policy = policy.withDefaults()

	// Telemetry: the reconfiguration behaviour of the planner —
	// decisions taken, switches, hysteresis suppressions (a thrashing
	// controller shows a high switch or suppression rate) — all no-ops
	// without an installed registry.
	reg := telemetry.Global()
	span := reg.Tracer().Start("adaptive.plan").
		Arg("candidates", len(candidates)).Arg("grid", len(grid))
	defer span.End()
	decisionsCnt := reg.Counter("adaptive.decisions")
	switchCnt := reg.Counter("adaptive.switches")
	suppressedCnt := reg.Counter("adaptive.hysteresis_suppressions")
	infeasibleCnt := reg.Counter("adaptive.infeasible_points")

	// The reference is the candidate with the highest job throughput
	// (lowest service time).
	ref := 0
	for i, c := range candidates {
		if c.Result.Time <= 0 {
			return nil, fmt.Errorf("adaptive: candidate %d has no service time", i)
		}
		if c.Result.Time < candidates[ref].Result.Time {
			ref = i
		}
	}
	refRate := 1 / float64(candidates[ref].Result.Time) // jobs/s at u=1

	lastLoad := 0.0
	for _, load := range grid {
		if load <= 0 || load > 1 {
			return nil, fmt.Errorf("adaptive: load fraction %g outside (0,1]", load)
		}
		if load < lastLoad {
			return nil, errors.New("adaptive: load grid must ascend")
		}
		lastLoad = load
	}

	// Phase 1 — precompute: every (grid point, candidate) evaluation is
	// pure, so the utilization/power/response matrix fans out across a
	// worker pool; the queueing layer's percentile cache deduplicates
	// repeated (rho, p) searches underneath.
	evals := evaluateCandidates(candidates, policy, grid, refRate)

	// Phase 2 — decide: the sequential pass that carries hysteresis
	// state along the grid is now just lookups into the matrix.
	e := &Ensemble{Candidates: candidates, Reference: ref}
	prevChoice := -2
	for gi, load := range grid {
		arrival := load * refRate
		row := evals[gi*len(candidates) : (gi+1)*len(candidates)]

		best := -1
		var bestEval candEval
		for i, ev := range row {
			if !ev.ok {
				continue
			}
			if best == -1 || ev.power < bestEval.power {
				best, bestEval = i, ev
			}
		}
		// Hysteresis: stay with the previous configuration unless the
		// best alternative beats it by more than the threshold.
		if policy.Hysteresis > 0 && prevChoice >= 0 && best >= 0 && best != prevChoice {
			if cur := row[prevChoice]; cur.ok {
				if bestEval.power > cur.power*(1-policy.Hysteresis) {
					best, bestEval = prevChoice, cur
					suppressedCnt.Inc()
				}
			}
		}
		decisionsCnt.Inc()
		if best < 0 {
			infeasibleCnt.Inc()
		}
		d := Decision{LoadFrac: load, Arrival: arrival, Chosen: best}
		if best >= 0 {
			d.Utilization = bestEval.rho
			d.Power = bestEval.power
			d.Response = bestEval.resp
			if prevChoice >= 0 && prevChoice != best {
				e.Switches++
				switchCnt.Inc()
			}
			prevChoice = best
		}
		e.Decisions = append(e.Decisions, d)
	}
	return e, nil
}

// candEval is one cell of the precomputed (grid point, candidate)
// matrix: the candidate's own utilization, power and response time at
// that offered load, plus whether the policy admits it.
type candEval struct {
	power, rho, resp float64
	ok               bool
}

// evaluateCandidates fills the grid x candidates matrix in parallel.
// Row-major: evals[gi*len(candidates)+ci].
func evaluateCandidates(candidates []*energyprop.Analysis, policy Policy, grid []float64, refRate float64) []candEval {
	span := telemetry.Global().Tracer().Start("adaptive.precompute").
		Arg("cells", len(grid)*len(candidates)).Arg("workers", policy.Workers)
	defer span.End()
	evals := make([]candEval, len(grid)*len(candidates))
	sweep.ForEach(len(evals), policy.Workers, func(idx int) {
		gi, ci := idx/len(candidates), idx%len(candidates)
		evals[idx] = evaluateCandidate(candidates[ci], grid[gi]*refRate, policy)
	})
	return evals
}

// evaluateCandidate scores one candidate at one arrival rate. The
// response percentile is computed whenever the queue is stable: with an
// SLO it gates feasibility, without one it still fills the decision log.
func evaluateCandidate(c *energyprop.Analysis, arrival float64, policy Policy) candEval {
	rho := arrival * float64(c.Result.Time)
	if rho > policy.MaxUtilization {
		return candEval{}
	}
	var resp float64
	respOK := false
	if q, err := queueing.NewMD1FromUtilization(rho, float64(c.Result.Time)); err == nil {
		if r, err := q.ResponsePercentile(policy.Percentile); err == nil {
			resp, respOK = r, true
		}
	}
	if policy.SLO > 0 && (!respOK || resp > policy.SLO) {
		return candEval{}
	}
	return candEval{power: c.PowerAt(rho), rho: rho, resp: resp, ok: true}
}

// Feasible reports whether every grid point found a configuration.
func (e *Ensemble) Feasible() bool {
	for _, d := range e.Decisions {
		if d.Chosen < 0 {
			return false
		}
	}
	return true
}

// Curve returns the ensemble power curve on [0,1]: at zero load the
// plan parks on the lowest-idle candidate; above the last grid point it
// extends with the reference at full load. Infeasible points carry the
// reference's power (the dispatcher must keep the big configuration).
func (e *Ensemble) Curve() (energyprop.Curve, error) {
	minIdle := math.Inf(1)
	for _, c := range e.Candidates {
		if v := float64(c.Result.IdlePower); v < minIdle {
			minIdle = v
		}
	}
	refPeak := float64(e.Candidates[e.Reference].Result.BusyPower)

	u := []float64{0}
	p := []float64{minIdle}
	for _, d := range e.Decisions {
		if d.LoadFrac <= u[len(u)-1] {
			continue
		}
		u = append(u, d.LoadFrac)
		if d.Chosen >= 0 {
			p = append(p, d.Power)
		} else {
			p = append(p, refPeak)
		}
	}
	if u[len(u)-1] < 1 {
		u = append(u, 1)
		p = append(p, refPeak)
	} else {
		p[len(p)-1] = refPeak
	}
	return energyprop.NewCurve(u, p)
}

// Savings returns the mean power saving of the ensemble against running
// the reference configuration statically, averaged over the decision
// grid. 0.25 means the adaptive plan draws 25% less power on average.
func (e *Ensemble) Savings() float64 {
	ref := e.Candidates[e.Reference]
	var sumStatic, sumAdaptive float64
	n := 0
	for _, d := range e.Decisions {
		if d.Chosen < 0 {
			continue
		}
		// The static reference serves the same arrival rate at its own
		// utilization rho_ref = arrival * T_ref.
		rhoRef := d.Arrival * float64(ref.Result.Time)
		sumStatic += ref.PowerAt(rhoRef)
		sumAdaptive += d.Power
		n++
	}
	if n == 0 || sumStatic == 0 {
		return 0
	}
	return 1 - sumAdaptive/sumStatic
}

// Metrics evaluates the proportionality metrics of the ensemble curve.
func (e *Ensemble) Metrics() (energyprop.Metrics, error) {
	c, err := e.Curve()
	if err != nil {
		return energyprop.Metrics{}, err
	}
	return energyprop.ComputeMetrics(c), nil
}

// RenderTable writes the plan as an aligned text table.
func (e *Ensemble) RenderTable(w io.Writer) error {
	t := report.NewTable("Adaptive configuration plan",
		"load", "configuration", "own util", "power [W]", "p95 [s]")
	for _, d := range e.Decisions {
		name := "- none feasible -"
		if d.Chosen >= 0 {
			name = e.Candidates[d.Chosen].Result.Config.String()
		}
		t.MustAddRow(
			fmt.Sprintf("%.0f%%", 100*d.LoadFrac),
			name,
			fmt.Sprintf("%.1f%%", 100*d.Utilization),
			fmt.Sprintf("%.1f", d.Power),
			fmt.Sprintf("%.4g", d.Response),
		)
	}
	return t.Render(w)
}
