package adaptive

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

func candidates(t *testing.T, wl string, mixes [][2]int) []*energyprop.Analysis {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Lookup(wl)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	var out []*energyprop.Analysis
	for _, m := range mixes {
		var groups []cluster.Group
		if m[0] > 0 {
			groups = append(groups, cluster.FullNodes(a9, m[0]))
		}
		if m[1] > 0 {
			groups = append(groups, cluster.FullNodes(k10, m[1]))
		}
		a, err := energyprop.Analyze(cluster.MustConfig(groups...), p, model.Options{}, 100)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

var ladderMixes = [][2]int{{32, 12}, {25, 10}, {25, 8}, {25, 7}, {25, 5}}

func TestPlanPicksSmallConfigsAtLowLoad(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	grid := stats.Linspace(0.05, 0.9, 18)
	e, err := Plan(cands, Policy{}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !e.Feasible() {
		t.Fatal("plan infeasible without SLO")
	}
	if e.Reference != 0 {
		t.Errorf("reference = %d, want the 32A9:12K10 candidate", e.Reference)
	}
	// Low load should pick the smallest (cheapest) configuration, high
	// load must fall back to bigger ones.
	first := e.Decisions[0]
	last := e.Decisions[len(e.Decisions)-1]
	if first.Chosen != len(cands)-1 {
		t.Errorf("at load %.2f chose candidate %d, want the smallest (%d)",
			first.LoadFrac, first.Chosen, len(cands)-1)
	}
	if last.Chosen == len(cands)-1 {
		t.Errorf("at load %.2f still on the smallest configuration", last.LoadFrac)
	}
	if e.Switches == 0 {
		t.Error("expected at least one configuration switch across the load range")
	}
}

func TestPlanPowerMonotoneInLoad(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	e, err := Plan(cands, Policy{}, stats.Linspace(0.05, 0.9, 30))
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, d := range e.Decisions {
		if d.Power < prev-1e-9 {
			t.Errorf("ensemble power decreased at load %.2f: %.1f after %.1f", d.LoadFrac, d.Power, prev)
		}
		prev = d.Power
	}
}

func TestEnsembleBeatsStaticReference(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	e, err := Plan(cands, Policy{}, stats.Linspace(0.05, 0.9, 18))
	if err != nil {
		t.Fatal(err)
	}
	s := e.Savings()
	if s <= 0 {
		t.Errorf("adaptive savings %.3f, want positive", s)
	}
	if s > 0.6 {
		t.Errorf("adaptive savings %.3f implausibly large", s)
	}
	// The ensemble curve must be more proportional (higher EPM) than the
	// static reference's own curve.
	m, err := e.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	staticM := cands[0].Metrics()
	if m.EPM <= staticM.EPM {
		t.Errorf("ensemble EPM %.3f not above static %.3f", m.EPM, staticM.EPM)
	}
}

func TestSLOFiltersSlowCandidates(t *testing.T) {
	cands := candidates(t, workload.NameX264, ladderMixes)
	// x264 jobs take ~1-2.5s; a tight 4s p95 SLO rules out small
	// configurations at moderate load.
	loose, err := Plan(cands, Policy{}, stats.Linspace(0.1, 0.8, 8))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Plan(cands, Policy{SLO: 4}, stats.Linspace(0.1, 0.8, 8))
	if err != nil {
		t.Fatal(err)
	}
	// The SLO must be satisfiable at the low end of the load range (at
	// very high load even the reference violates it — the queueing tail
	// explodes toward saturation — so Feasible over the whole grid is
	// not expected).
	if tight.Decisions[0].Chosen < 0 {
		t.Fatal("tight plan infeasible even at the lowest load")
	}
	// Where feasible, the tight plan must never pick a smaller candidate
	// than the loose plan, and must honor the SLO.
	for i := range tight.Decisions {
		if tight.Decisions[i].Chosen < 0 {
			continue
		}
		if tight.Decisions[i].Chosen > loose.Decisions[i].Chosen {
			t.Errorf("load %.2f: SLO plan picked smaller config %d than unconstrained %d",
				tight.Decisions[i].LoadFrac, tight.Decisions[i].Chosen, loose.Decisions[i].Chosen)
		}
		if tight.Decisions[i].Response > 4+1e-9 {
			t.Errorf("load %.2f: response %.2fs violates 4s SLO", tight.Decisions[i].LoadFrac, tight.Decisions[i].Response)
		}
	}
	// And its average power is at least the unconstrained plan's.
	if tight.Savings() > loose.Savings()+1e-9 {
		t.Error("SLO-constrained plan saved more than unconstrained plan")
	}
}

func TestInfeasibleSLO(t *testing.T) {
	cands := candidates(t, workload.NameX264, ladderMixes)
	// No configuration can deliver 0.1 s responses for ~1 s jobs.
	e, err := Plan(cands, Policy{SLO: 0.1}, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if e.Feasible() {
		t.Error("impossible SLO reported feasible")
	}
	if e.Decisions[0].Chosen != -1 {
		t.Errorf("chosen = %d, want -1", e.Decisions[0].Chosen)
	}
}

func TestEnsembleCurveSublinearAgainstReference(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	e, err := Plan(cands, Policy{}, stats.Linspace(0.05, 0.95, 19))
	if err != nil {
		t.Fatal(err)
	}
	curve, err := e.Curve()
	if err != nil {
		t.Fatal(err)
	}
	ref := energyprop.Reference{PeakPower: float64(cands[0].Result.BusyPower)}
	sub := 0
	for _, u := range stats.Linspace(0.1, 0.9, 9) {
		if ref.SublinearAt(curve, u) {
			sub++
		}
	}
	if sub == 0 {
		t.Error("adaptive ensemble never sub-linear against the reference peak")
	}
}

// TestHysteresisReducesSwitching: a hysteresis margin can only reduce
// the number of configuration switches, at a bounded power cost.
func TestHysteresisReducesSwitching(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	grid := stats.Linspace(0.05, 0.9, 35)
	greedy, err := Plan(cands, Policy{}, grid)
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := Plan(cands, Policy{Hysteresis: 0.10}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if sticky.Switches > greedy.Switches {
		t.Errorf("hysteresis increased switches: %d > %d", sticky.Switches, greedy.Switches)
	}
	if !sticky.Feasible() {
		t.Error("hysteresis plan infeasible")
	}
	// The power cost of stickiness is bounded by the margin.
	if greedy.Savings()-sticky.Savings() > 0.10 {
		t.Errorf("hysteresis cost %.3f exceeds the 10%% margin",
			greedy.Savings()-sticky.Savings())
	}
	// A full-margin hysteresis freezes the first feasible choice until
	// capacity forces a change; switches still happen on capacity
	// grounds only.
	frozen, err := Plan(cands, Policy{Hysteresis: 0.99}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if frozen.Switches > sticky.Switches {
		t.Errorf("stronger hysteresis switched more: %d > %d", frozen.Switches, sticky.Switches)
	}
}

func TestRenderTable(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes[:3])
	plan, err := Plan(cands, Policy{}, []float64{0.2, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := plan.RenderTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"Adaptive configuration plan", "20%", "80%", "A9"} {
		if !strings.Contains(out, frag) {
			t.Errorf("plan table missing %q:\n%s", frag, out)
		}
	}
}

func TestPlanValidation(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes[:2])
	if _, err := Plan(nil, Policy{}, []float64{0.5}); err == nil {
		t.Error("no candidates accepted")
	}
	if _, err := Plan(cands, Policy{}, nil); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := Plan(cands, Policy{}, []float64{0}); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := Plan(cands, Policy{}, []float64{1.5}); err == nil {
		t.Error("load > 1 accepted")
	}
	if _, err := Plan(cands, Policy{}, []float64{0.8, 0.2}); err == nil {
		t.Error("descending grid accepted")
	}
}
