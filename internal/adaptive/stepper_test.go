package adaptive

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// TestStepperMatchesPlanWithoutHysteresis: with hysteresis off, feeding
// a grid point-by-point through a Stepper must reproduce Plan's
// decisions exactly — same chosen index, utilization, power, response.
func TestStepperMatchesPlanWithoutHysteresis(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	policy := Policy{SLO: 0.5}
	grid := stats.Linspace(0.05, 0.95, 19)

	plan, err := Plan(cands, policy, grid)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStepper(cands, policy)
	if err != nil {
		t.Fatal(err)
	}
	for i, load := range grid {
		d, err := st.Step(load)
		if err != nil {
			t.Fatal(err)
		}
		want := plan.Decisions[i]
		if d.Chosen != want.Chosen {
			t.Fatalf("load %g: stepper chose %d, plan chose %d", load, d.Chosen, want.Chosen)
		}
		if d.Chosen >= 0 && (d.Utilization != want.Utilization || d.Power != want.Power || d.Response != want.Response) {
			t.Fatalf("load %g: stepper %+v != plan %+v", load, d, want)
		}
	}
}

// TestStepperCountsSwitches: an up-down load excursion across the
// ensemble's crossover points must register switches, and the first step
// never counts as one.
func TestStepperCountsSwitches(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)
	st, err := NewStepper(cands, Policy{SLO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{0.1, 0.1, 0.9, 0.9, 0.1}
	var chosen []int
	for _, l := range loads {
		d, err := st.Step(l)
		if err != nil {
			t.Fatal(err)
		}
		chosen = append(chosen, d.Chosen)
	}
	if chosen[0] == chosen[2] {
		t.Skipf("candidates do not cross over between 0.1 and 0.9 (both chose %d)", chosen[0])
	}
	if st.Switches() != 2 {
		t.Fatalf("switches = %d, want 2 (choices %v)", st.Switches(), chosen)
	}
}

// TestStepperHysteresisSuppression: oscillating across a crossover
// where the running configuration stays feasible, a near-total
// hysteresis band must hold every downward switch the greedy stepper
// makes. (Upward switches forced by infeasibility are not suppressible —
// hysteresis only arbitrates between feasible alternatives.)
func TestStepperHysteresisSuppression(t *testing.T) {
	cands := candidates(t, workload.NameEP, ladderMixes)

	free, err := NewStepper(cands, Policy{SLO: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := NewStepper(cands, Policy{SLO: 0.5, Hysteresis: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	// The first load picks the config for 0.5; dropping to 0.3 makes a
	// smaller config cheapest while the current one stays feasible.
	loads := []float64{0.5, 0.3, 0.5, 0.3, 0.5}
	var first int
	for i, l := range loads {
		df, err := free.Step(l)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := sticky.Step(l)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = ds.Chosen
			if df.Chosen != first {
				t.Fatalf("first decisions differ: %d vs %d", df.Chosen, first)
			}
			continue
		}
		if ds.Chosen != first {
			t.Fatalf("step %d: hysteresis 0.99 still switched %d -> %d", i, first, ds.Chosen)
		}
	}
	if free.Switches() == 0 {
		t.Skip("candidates never cross over between 0.3 and 0.5; nothing to suppress")
	}
	if sticky.Switches() != 0 {
		t.Fatalf("sticky stepper switched %d times", sticky.Switches())
	}
	if sticky.Suppressed() == 0 {
		t.Fatal("sticky stepper suppressed nothing")
	}
	if free.Suppressed() != 0 {
		t.Fatalf("free stepper reports %d suppressed switches", free.Suppressed())
	}
}

func TestStepperValidation(t *testing.T) {
	if _, err := NewStepper(nil, Policy{}); err == nil {
		t.Fatal("empty candidate set accepted")
	}
	st, err := NewStepper(candidates(t, workload.NameEP, ladderMixes), Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Step(-0.1); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := st.Step(1.1); err == nil {
		t.Fatal("load > 1 accepted")
	}
	if st.Reference() < 0 || st.RefRate() <= 0 {
		t.Fatalf("reference %d, rate %g", st.Reference(), st.RefRate())
	}
}
