package adaptive

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// TestPlanTelemetry: the planner reports decisions, switches and
// hysteresis suppressions, and the counters agree with the returned
// ensemble.
func TestPlanTelemetry(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)

	// Heterogeneous candidates whose power curves cross while both stay
	// feasible: the greedy plan makes power-motivated (not only
	// capacity-forced) switches, which hysteresis then suppresses.
	cands := candidates(t, workload.NameEP, [][2]int{{32, 12}, {32, 0}, {8, 12}})
	grid := stats.Linspace(0.05, 0.9, 35)

	free, err := Plan(cands, Policy{}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("adaptive.decisions").Value(); got != uint64(len(grid)) {
		t.Errorf("decisions = %d, want %d", got, len(grid))
	}
	if got := reg.Counter("adaptive.switches").Value(); got != uint64(free.Switches) {
		t.Errorf("switches counter = %d, ensemble reports %d", got, free.Switches)
	}

	// A heavy hysteresis margin suppresses the power-motivated switches,
	// and every suppression shows up in the counter.
	damped, err := Plan(cands, Policy{Hysteresis: 0.5}, grid)
	if err != nil {
		t.Fatal(err)
	}
	suppressed := reg.Counter("adaptive.hysteresis_suppressions").Value()
	if suppressed == 0 {
		t.Error("expected hysteresis suppressions on crossing power curves")
	}
	if damped.Switches > free.Switches {
		t.Errorf("hysteresis increased switches: %d > %d", damped.Switches, free.Switches)
	}
	if reg.Tracer().Len() < 2 {
		t.Errorf("spans recorded = %d, want one per Plan call", reg.Tracer().Len())
	}
}
