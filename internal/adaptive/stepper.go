package adaptive

import (
	"errors"
	"fmt"

	"repro/internal/energyprop"
)

// Stepper carries the planner's switching state across successive load
// points. Plan answers "which configuration serves each load on a static
// grid"; a trace replay instead feeds loads one at a time, in trace
// order, and the hysteresis comparison must be against the configuration
// actually running from the previous step — state Plan's grid-local pass
// cannot provide. The replay engine (internal/replay) drives one Stepper
// per run.
//
// A Stepper is not safe for concurrent use: steps are inherently
// ordered (each decision depends on the previous one).
type Stepper struct {
	candidates []*energyprop.Analysis
	policy     Policy
	ref        int
	refRate    float64
	prev       int
	switches   int
	suppressed int
}

// NewStepper validates the candidates (same rules as Plan) and returns a
// stepper positioned before the first step: the first Step call never
// counts a switch.
func NewStepper(candidates []*energyprop.Analysis, policy Policy) (*Stepper, error) {
	if len(candidates) == 0 {
		return nil, errors.New("adaptive: no candidates")
	}
	ref := 0
	for i, c := range candidates {
		if c.Result.Time <= 0 {
			return nil, fmt.Errorf("adaptive: candidate %d has no service time", i)
		}
		if c.Result.Time < candidates[ref].Result.Time {
			ref = i
		}
	}
	return &Stepper{
		candidates: candidates,
		policy:     policy.withDefaults(),
		ref:        ref,
		refRate:    1 / float64(candidates[ref].Result.Time),
		prev:       -1,
	}, nil
}

// Reference returns the index of the reference (highest-throughput)
// candidate, whose capacity defines load fraction 1.
func (s *Stepper) Reference() int { return s.ref }

// RefRate returns the reference candidate's saturation job rate
// (jobs per second at utilization 1).
func (s *Stepper) RefRate() float64 { return s.refRate }

// Switches returns how many configuration changes the steps so far made.
func (s *Stepper) Switches() int { return s.switches }

// Suppressed returns how many would-be switches hysteresis held back.
func (s *Stepper) Suppressed() int { return s.suppressed }

// Step decides the configuration for one load fraction (of the reference
// capacity, in [0, 1]) and advances the switching state. Chosen is -1
// when no candidate is feasible under the policy; the previous choice is
// retained for the next step's hysteresis comparison, mirroring Plan.
func (s *Stepper) Step(load float64) (Decision, error) {
	if load < 0 || load > 1 {
		return Decision{}, fmt.Errorf("adaptive: load fraction %g outside [0,1]", load)
	}
	arrival := load * s.refRate
	best, prevEval := -1, candEval{}
	var bestEval candEval
	for i, c := range s.candidates {
		ev := evaluateCandidate(c, arrival, s.policy)
		if i == s.prev {
			prevEval = ev
		}
		if !ev.ok {
			continue
		}
		if best == -1 || ev.power < bestEval.power {
			best, bestEval = i, ev
		}
	}
	// Hysteresis: stay with the running configuration unless the best
	// alternative beats it by more than the threshold.
	if s.policy.Hysteresis > 0 && s.prev >= 0 && best >= 0 && best != s.prev && prevEval.ok {
		if bestEval.power > prevEval.power*(1-s.policy.Hysteresis) {
			best, bestEval = s.prev, prevEval
			s.suppressed++
		}
	}
	d := Decision{LoadFrac: load, Arrival: arrival, Chosen: best}
	if best >= 0 {
		d.Utilization = bestEval.rho
		d.Power = bestEval.power
		d.Response = bestEval.resp
		if s.prev >= 0 && s.prev != best {
			s.switches++
		}
		s.prev = best
	}
	return d, nil
}
