package perfcounter

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddAccumulates(t *testing.T) {
	var c Counters
	c.Add(Counters{WorkCycles: 10, StallCycles: 5, MemCycles: 3, CacheMisses: 1, IOBytes: 100, IORequests: 2, Instructions: 9})
	c.Add(Counters{WorkCycles: 10, StallCycles: 5, MemCycles: 3, CacheMisses: 1, IOBytes: 100, IORequests: 2, Instructions: 9})
	if c.WorkCycles != 20 || c.StallCycles != 10 || c.MemCycles != 6 ||
		c.CacheMisses != 2 || c.IOBytes != 200 || c.IORequests != 4 || c.Instructions != 18 {
		t.Errorf("Add wrong: %+v", c)
	}
}

// TestAddCommutative is a property test: accumulation order is
// irrelevant for counter-scale values (float addition is only
// associative away from overflow, so the generator draws realistic
// counter magnitudes rather than arbitrary float64s).
func TestAddCommutative(t *testing.T) {
	mk := func(v [7]uint32) Counters {
		return Counters{
			WorkCycles:   float64(v[0]),
			StallCycles:  float64(v[1]),
			MemCycles:    float64(v[2]),
			CacheMisses:  float64(v[3]),
			IOBytes:      float64(v[4]),
			IORequests:   float64(v[5]),
			Instructions: float64(v[6]),
		}
	}
	f := func(a, b, c [7]uint32) bool {
		var x, y Counters
		x.Add(mk(a))
		x.Add(mk(b))
		x.Add(mk(c))
		y.Add(mk(c))
		y.Add(mk(a))
		y.Add(mk(b))
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIPC(t *testing.T) {
	c := Counters{WorkCycles: 100, Instructions: 90}
	if got := c.IPC(); got != 0.9 {
		t.Errorf("IPC = %g, want 0.9", got)
	}
	if got := (Counters{}).IPC(); got != 0 {
		t.Errorf("IPC of empty counters = %g, want 0", got)
	}
}

func TestStallRatio(t *testing.T) {
	c := Counters{WorkCycles: 60, StallCycles: 40}
	if got := c.StallRatio(); got != 0.4 {
		t.Errorf("stall ratio = %g, want 0.4", got)
	}
	if got := (Counters{}).StallRatio(); got != 0 {
		t.Errorf("stall ratio of empty = %g, want 0", got)
	}
}

func TestString(t *testing.T) {
	c := Counters{WorkCycles: 1e9, IOBytes: 5e6}
	s := c.String()
	for _, frag := range []string{"work=1e+09", "io=5e+06"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}
