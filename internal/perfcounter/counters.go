// Package perfcounter provides the simulated hardware event counters the
// characterization pipeline reads, standing in for the perf(1) counters
// the paper collected on physical nodes (Section II-D, Figure 4).
package perfcounter

import "fmt"

// Counters accumulates per-node hardware events over a simulated run.
type Counters struct {
	// WorkCycles counts cycles retiring instructions (per core, summed).
	WorkCycles float64
	// StallCycles counts cycles stalled on memory (per core, summed).
	StallCycles float64
	// MemCycles counts memory-controller busy cycles.
	MemCycles float64
	// CacheMisses counts last-level cache misses.
	CacheMisses float64
	// IOBytes counts bytes moved by the NIC.
	IOBytes float64
	// IORequests counts discrete network requests.
	IORequests float64
	// Instructions counts retired instructions.
	Instructions float64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.WorkCycles += o.WorkCycles
	c.StallCycles += o.StallCycles
	c.MemCycles += o.MemCycles
	c.CacheMisses += o.CacheMisses
	c.IOBytes += o.IOBytes
	c.IORequests += o.IORequests
	c.Instructions += o.Instructions
}

// IPC returns instructions per work cycle, or zero without cycles.
func (c Counters) IPC() float64 {
	if c.WorkCycles <= 0 {
		return 0
	}
	return c.Instructions / c.WorkCycles
}

// StallRatio returns the fraction of CPU cycles spent stalled.
func (c Counters) StallRatio() float64 {
	total := c.WorkCycles + c.StallCycles
	if total <= 0 {
		return 0
	}
	return c.StallCycles / total
}

func (c Counters) String() string {
	return fmt.Sprintf("work=%.3g stall=%.3g mem=%.3g misses=%.3g io=%.3gB/%.3greq instr=%.3g",
		c.WorkCycles, c.StallCycles, c.MemCycles, c.CacheMisses, c.IOBytes, c.IORequests, c.Instructions)
}
