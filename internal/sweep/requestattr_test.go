package sweep

import (
	"context"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// TestBlocksContextRequestAttribution runs many concurrent
// request-scoped sweeps of different sizes and asserts each request's
// context receives exactly its own item count and phase — no bleed
// between concurrently sweeping requests. Run with -race.
func TestBlocksContextRequestAttribution(t *testing.T) {
	const requests = 24
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		n := 100 + i*37 // distinct per-request sizes make bleed detectable
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := telemetry.NewRequestContext("", "frontier")
			ctx := telemetry.WithRequest(context.Background(), rc)
			var visited int64
			var mu sync.Mutex
			err := BlocksContext(ctx, n, 4, 16, func(_, lo, hi int) {
				// Inside the pool the worker sees the owning request.
				if telemetry.RequestFrom(ctx) != rc {
					t.Error("worker ctx lost its RequestContext")
				}
				mu.Lock()
				visited += int64(hi - lo)
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("BlocksContext: %v", err)
			}
			if got := rc.Attr(telemetry.AttrSweepItems); got != int64(n) || got != visited {
				t.Errorf("sweep_items = %d, want %d (visited %d)", got, n, visited)
			}
			if events := rc.Timeline(); len(events) != 1 || events[0].Name != "sweep.blocks" {
				t.Errorf("timeline %v, want one sweep.blocks phase", events)
			}
		}()
	}
	wg.Wait()
}

// TestBlocksContextUnscopedNoAttribution: without a request scope the
// pool must not invent one.
func TestBlocksContextUnscopedNoAttribution(t *testing.T) {
	count := 0
	if err := BlocksContext(context.Background(), 10, 1, 4, func(_, lo, hi int) {
		count += hi - lo
	}); err != nil {
		t.Fatalf("BlocksContext: %v", err)
	}
	if count != 10 {
		t.Fatalf("visited %d items, want 10", count)
	}
}

// TestBlocksContextCancelledAttribution: a cancelled sweep attributes
// only the items actually dispatched, not the full n.
func TestBlocksContextCancelledAttribution(t *testing.T) {
	rc := telemetry.NewRequestContext("", "frontier")
	ctx, cancel := context.WithCancel(telemetry.WithRequest(context.Background(), rc))
	cancel()
	err := BlocksContext(ctx, 1000, 1, 16, func(_, lo, hi int) {})
	if err == nil {
		t.Fatal("cancelled BlocksContext returned nil")
	}
	if got := rc.Attr(telemetry.AttrSweepItems); got != 0 {
		t.Fatalf("cancelled sweep attributed %d items, want 0", got)
	}
}
