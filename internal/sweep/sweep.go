// Package sweep is the shared worker pool behind the repository's
// parallel sweeps: the Pareto configuration sweeps, the energyprop
// utilization/percentile grids and the adaptive planner's candidate
// matrix all fan out through it. It generalizes the block-dispatch
// pattern that previously lived inside pareto.evaluateParallel: work is
// handed to workers in contiguous index blocks over a channel — a single
// item can be microseconds, so per-item channel traffic would dominate —
// and each index is written by exactly one worker, so callers can use
// fixed-slot result slices with no locking and deterministic order.
package sweep

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/telemetry"
)

// DefaultBlock is the block size used when callers pass block <= 0:
// large enough to amortize channel traffic for microsecond-scale items,
// small enough to load-balance thousand-item sweeps.
const DefaultBlock = 256

// Blocks partitions [0, n) into contiguous blocks of the given size and
// runs fn(worker, lo, hi) across a pool of workers. workers <= 0 uses
// GOMAXPROCS; the pool never exceeds the number of blocks. With one
// worker (or one block) everything runs inline on the caller's
// goroutine, so small sweeps pay no synchronization at all. Blocks
// returns after every block has completed.
func Blocks(n, workers, block int, fn func(worker, lo, hi int)) {
	BlocksContext(context.Background(), n, workers, block, fn) //nolint:errcheck // Background never cancels
}

// BlocksContext is Blocks with cancellation: once ctx is done no further
// block is dispatched (blocks already handed to a worker run to
// completion — fn sees at most one more call per worker) and the ctx
// error is returned after every started block has finished. It returns
// nil when all n items were processed. Long-running fn bodies that want
// finer-grained cancellation should check ctx themselves.
func BlocksContext(ctx context.Context, n, workers, block int, fn func(worker, lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if block <= 0 {
		block = DefaultBlock
	}
	nblocks := (n + block - 1) / block
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nblocks {
		workers = nblocks
	}
	// Request-scoped sweeps (epserve's frontier fan-out) attribute the
	// items they dispatch and their wall-clock phase to the owning
	// request. The RequestContext rides ctx into every worker through
	// fn's closure — workers are shared across requests over time, but
	// each dispatched block belongs to exactly one request's call, so
	// attribution cannot bleed between concurrent requests.
	rc := telemetry.RequestFrom(ctx)
	dispatched := 0
	if rc != nil {
		defer func() {
			rc.Add(telemetry.AttrSweepItems, int64(dispatched))
		}()
		defer rc.Phase("sweep.blocks")()
	}
	done := ctx.Done()
	if workers == 1 {
		for lo := 0; lo < n; lo += block {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
			hi := lo + block
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
			dispatched += hi - lo
		}
		return nil
	}

	var wg sync.WaitGroup
	next := make(chan [2]int)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				fn(w, r[0], r[1])
			}
		}()
	}
	var err error
dispatch:
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		select {
		case next <- [2]int{lo, hi}:
			dispatched += hi - lo
		case <-done:
			err = ctx.Err()
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return err
}

// ForEach runs fn(i) for every i in [0, n) across the pool, one item per
// block — the right shape when each item is itself expensive (a
// percentile search, a model evaluation), where block batching would
// only hurt load balance.
func ForEach(n, workers int, fn func(i int)) {
	Blocks(n, workers, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// ForEachContext is ForEach with cancellation, with the same semantics
// as BlocksContext: items already dispatched complete, no new items
// start once ctx is done, and the ctx error is returned if the sweep
// stopped early.
func ForEachContext(ctx context.Context, n, workers int, fn func(i int)) error {
	return BlocksContext(ctx, n, workers, 1, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}
