package sweep

import (
	"sync/atomic"
	"testing"
)

// TestBlocksCoversEveryIndexOnce: each index must be visited exactly
// once regardless of worker count and block size.
func TestBlocksCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 256, 1000} {
		for _, workers := range []int{0, 1, 3, 64} {
			for _, block := range []int{0, 1, 7, 256, 5000} {
				visits := make([]atomic.Int32, n+1)
				Blocks(n, workers, block, func(_, lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d: bad block [%d,%d)", n, lo, hi)
					}
					for i := lo; i < hi; i++ {
						visits[i].Add(1)
					}
				})
				for i := 0; i < n; i++ {
					if got := visits[i].Load(); got != 1 {
						t.Fatalf("n=%d workers=%d block=%d: index %d visited %d times",
							n, workers, block, i, got)
					}
				}
			}
		}
	}
}

// TestForEachFixedSlots: the one-writer-per-index contract that lets
// callers collect into plain slices.
func TestForEachFixedSlots(t *testing.T) {
	const n = 500
	out := make([]int, n)
	ForEach(n, 8, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestBlocksSingleWorkerInline: with workers == 1 the callback must run
// on the caller's goroutine (no pool), which callers rely on for
// deterministic serial fallbacks.
func TestBlocksSingleWorkerInline(t *testing.T) {
	order := []int{}
	Blocks(10, 1, 3, func(w, lo, hi int) {
		if w != 0 {
			t.Errorf("worker id %d on serial path", w)
		}
		order = append(order, lo) // safe only if inline
	})
	want := []int{0, 3, 6, 9}
	if len(order) != len(want) {
		t.Fatalf("blocks %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("blocks %v, want %v", order, want)
		}
	}
}
