package hardware

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestCatalogDefaults(t *testing.T) {
	c := DefaultCatalog()
	if c.Len() != 4 {
		t.Fatalf("catalog has %d types, want 4", c.Len())
	}
	want := []string{"A15", "A9", "K10", "XeonE5"}
	names := c.Names()
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestA9MatchesTable5(t *testing.T) {
	a9 := NewA9()
	if a9.Cores != 4 {
		t.Errorf("A9 cores = %d, want 4", a9.Cores)
	}
	if a9.FMin() != 0.2*units.GHz || a9.FMax() != 1.4*units.GHz {
		t.Errorf("A9 freq range %v-%v, want 0.2-1.4 GHz", a9.FMin(), a9.FMax())
	}
	if len(a9.Freq.Steps) != 5 {
		t.Errorf("A9 has %d frequency steps, footnote 4 counts 5", len(a9.Freq.Steps))
	}
	if a9.Power.Idle != 1.8 {
		t.Errorf("A9 idle = %v, want 1.8 W", a9.Power.Idle)
	}
	if a9.NominalPeak != 5 {
		t.Errorf("A9 rated peak = %v, want 5 W", a9.NominalPeak)
	}
	if a9.ISA != ISAARMv7 {
		t.Errorf("A9 ISA = %v", a9.ISA)
	}
}

func TestK10MatchesTable5(t *testing.T) {
	k10 := NewK10()
	if k10.Cores != 6 {
		t.Errorf("K10 cores = %d, want 6", k10.Cores)
	}
	if k10.FMin() != 0.8*units.GHz || k10.FMax() != 2.1*units.GHz {
		t.Errorf("K10 freq range %v-%v, want 0.8-2.1 GHz", k10.FMin(), k10.FMax())
	}
	if len(k10.Freq.Steps) != 3 {
		t.Errorf("K10 has %d frequency steps, footnote 4 counts 3", len(k10.Freq.Steps))
	}
	if k10.Power.Idle != 45 {
		t.Errorf("K10 idle = %v, want 45 W", k10.Power.Idle)
	}
	if k10.NominalPeak != 60 {
		t.Errorf("K10 rated peak = %v, want 60 W", k10.NominalPeak)
	}
}

func TestValidateCatchesBadNodes(t *testing.T) {
	base := NewA9()
	cases := []struct {
		name   string
		mutate func(*NodeType)
	}{
		{"no name", func(n *NodeType) { n.Name = "" }},
		{"no cores", func(n *NodeType) { n.Cores = 0 }},
		{"no freqs", func(n *NodeType) { n.Freq.Steps = nil }},
		{"descending freqs", func(n *NodeType) { n.Freq.Steps = []units.Hertz{2e9, 1e9} }},
		{"zero freq", func(n *NodeType) { n.Freq.Steps = []units.Hertz{0, 1e9} }},
		{"negative power", func(n *NodeType) { n.Power.Idle = -1 }},
		{"no NIC", func(n *NodeType) { n.NICBandwidth = 0 }},
		{"bad exponent", func(n *NodeType) { n.Freq.DynamicExponent = 0 }},
	}
	for _, c := range cases {
		n := *base
		n.Freq.Steps = append([]units.Hertz(nil), base.Freq.Steps...)
		c.mutate(&n)
		if err := n.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid node", c.name)
		}
	}
}

func TestHasFreqAndNearest(t *testing.T) {
	a9 := NewA9()
	if !a9.HasFreq(1.4 * units.GHz) {
		t.Error("1.4 GHz should be on the ladder")
	}
	if a9.HasFreq(1.0 * units.GHz) {
		t.Error("1.0 GHz is not on the A9 ladder")
	}
	if got := a9.NearestFreq(0.95 * units.GHz); got != 0.8*units.GHz {
		t.Errorf("nearest to 0.95 GHz = %v, want 0.8 GHz", got)
	}
	if got := a9.NearestFreq(10 * units.GHz); got != 1.4*units.GHz {
		t.Errorf("nearest to 10 GHz = %v, want 1.4 GHz", got)
	}
	if got := a9.NearestFreq(0); got != 0.2*units.GHz {
		t.Errorf("nearest to 0 = %v, want 0.2 GHz", got)
	}
}

func TestPowerAtScaling(t *testing.T) {
	a9 := NewA9()
	full := a9.PowerAt(a9.FMax())
	if full.CPUActPerCore != a9.Power.CPUActPerCore {
		t.Error("PowerAt(fmax) should be the nominal parameters")
	}
	half := a9.PowerAt(a9.FMax() / 2)
	wantScale := math.Pow(0.5, a9.Freq.DynamicExponent)
	if math.Abs(float64(half.CPUActPerCore)/float64(full.CPUActPerCore)-wantScale) > 1e-12 {
		t.Errorf("dynamic scale = %g, want %g",
			float64(half.CPUActPerCore)/float64(full.CPUActPerCore), wantScale)
	}
	// Static components do not scale with frequency.
	if half.Idle != full.Idle || half.Mem != full.Mem || half.Net != full.Net {
		t.Error("static power components scaled with frequency")
	}
}

// TestPowerAtMonotone: CPU power must rise monotonically with frequency
// for any node in the catalog.
func TestPowerAtMonotone(t *testing.T) {
	c := DefaultCatalog()
	for _, name := range c.Names() {
		n, err := c.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		prev := units.Watts(-1)
		for _, f := range n.Freq.Steps {
			p := n.PowerAt(f).CPUActPerCore
			if p <= prev {
				t.Errorf("%s: active power not increasing at %v", name, f)
			}
			prev = p
		}
	}
}

func TestMaxBusyPowerComposition(t *testing.T) {
	// MaxBusyPower is the component sum at full activity.
	for _, n := range []*NodeType{NewA9(), NewK10(), NewA15(), NewXeonE5()} {
		want := n.Power.Idle + units.Watts(float64(n.Power.CPUActPerCore)*float64(n.Cores)) +
			n.Power.Mem + n.Power.Net
		if got := n.MaxBusyPower(n.FMax()); math.Abs(float64(got-want)) > 1e-9 {
			t.Errorf("%s: max busy power %v, want %v", n.Name, got, want)
		}
	}
	// The wimpy A9 stays under its 5 W rating even fully loaded. The K10
	// deliberately does NOT: the paper's own Table 7 IPRs imply busy
	// powers up to 45/0.588 = 76.5 W against the 60 W rating its budget
	// footnote uses — an inconsistency the calibration inherits. Keep
	// the overshoot bounded so the budget math stays meaningful.
	a9 := NewA9()
	if got := a9.MaxBusyPower(a9.FMax()); got > a9.NominalPeak {
		t.Errorf("A9 max busy power %v exceeds its 5 W rating", got)
	}
	k10 := NewK10()
	if got := k10.MaxBusyPower(k10.FMax()); float64(got) > 1.5*float64(k10.NominalPeak) {
		t.Errorf("K10 max busy power %v further than 1.5x from its rating", got)
	}
}

func TestCatalogRegisterErrors(t *testing.T) {
	c := NewCatalog()
	a9 := NewA9()
	if err := c.Register(a9); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(NewA9()); err == nil {
		t.Error("duplicate registration accepted")
	}
	bad := NewK10()
	bad.Cores = 0
	if err := c.Register(bad); err == nil {
		t.Error("invalid node registration accepted")
	}
	if _, err := c.Lookup("nope"); err == nil {
		t.Error("lookup of unknown type succeeded")
	}
}

func TestSwitchSubstitutionRatioPaper(t *testing.T) {
	sw := DefaultSwitch()
	if got := sw.SubstitutionRatio(NewA9(), NewK10()); got != 8 {
		t.Errorf("substitution ratio = %d, want 8 (footnote 3)", got)
	}
	// Effective per-node peak: 5 W + 20/8 W = 7.5 W.
	if got := sw.EffectivePeakPerNode(NewA9()); got != 7.5 {
		t.Errorf("effective peak = %v, want 7.5 W", got)
	}
}

// TestSwitchPowerMonotone is a property: switch power never decreases
// with node count and is 0 for 0 nodes.
func TestSwitchPowerMonotone(t *testing.T) {
	sw := DefaultSwitch()
	f := func(aRaw, bRaw uint8) bool {
		a, b := int(aRaw), int(bRaw)
		if a > b {
			a, b = b, a
		}
		return sw.Power(a) <= sw.Power(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if sw.Power(0) != 0 {
		t.Error("switch power for 0 nodes should be 0")
	}
}

func TestNodeString(t *testing.T) {
	s := NewA9().String()
	for _, frag := range []string{"A9", "4 cores", "1.8W", "5W"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}
