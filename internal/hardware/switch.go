package hardware

import (
	"math"

	"repro/internal/units"
)

// SwitchModel accounts for the Ethernet switches that aggregate wimpy
// nodes. The paper's footnote 3 derives the 8:1 A9-to-K10 substitution
// ratio by "factoring about 20W peak power drawn by the switch that
// connects the A9 nodes": every 8 A9 nodes carry a 20 W switch share, so
// 8 x 5 W + 20 W = 60 W replaces one K10.
//
// Switch power participates only in power-budget accounting. It is
// excluded from the proportionality metrics, which is the only reading
// under which Table 8's homogeneous-A9 column equals Table 7's
// single-node A9 column (a constant 20 W per 8 nodes added to both idle
// and peak would change IPR).
type SwitchModel struct {
	// PowerPerSwitch is the (non-proportional) draw of one switch share.
	PowerPerSwitch units.Watts
	// NodesPerSwitch is how many wimpy nodes share one switch unit.
	NodesPerSwitch int
}

// DefaultSwitch returns the paper's 20 W per 8 wimpy nodes model.
func DefaultSwitch() SwitchModel {
	return SwitchModel{PowerPerSwitch: 20, NodesPerSwitch: 8}
}

// Power returns the switch power needed to connect n wimpy nodes.
func (s SwitchModel) Power(n int) units.Watts {
	if n <= 0 || s.NodesPerSwitch <= 0 {
		return 0
	}
	shares := int(math.Ceil(float64(n) / float64(s.NodesPerSwitch)))
	return units.Watts(float64(shares) * float64(s.PowerPerSwitch))
}

// EffectivePeakPerNode returns a wimpy node's rated peak including its
// amortized switch share, the quantity the 8:1 substitution uses.
func (s SwitchModel) EffectivePeakPerNode(node *NodeType) units.Watts {
	if s.NodesPerSwitch <= 0 {
		return node.NominalPeak
	}
	return node.NominalPeak + units.Watts(float64(s.PowerPerSwitch)/float64(s.NodesPerSwitch))
}

// SubstitutionRatio returns how many wimpy nodes (with switch share)
// replace one brawny node within the same peak-power envelope, rounded
// down to a whole node.
func (s SwitchModel) SubstitutionRatio(wimpy, brawny *NodeType) int {
	eff := s.EffectivePeakPerNode(wimpy)
	if eff <= 0 {
		return 0
	}
	return int(float64(brawny.NominalPeak) / float64(eff))
}
