package hardware

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/units"
)

// nodeTypeJSON is the on-disk representation of a node type. Frequencies
// are in GHz, bandwidths in bytes per second, powers in watts and memory
// in bytes, matching how datasheets quote them.
type nodeTypeJSON struct {
	Name            string    `json:"name"`
	Model           string    `json:"model,omitempty"`
	ISA             string    `json:"isa,omitempty"`
	Cores           int       `json:"cores"`
	FreqGHz         []float64 `json:"freq_ghz"`
	DynamicExponent float64   `json:"dynamic_exponent,omitempty"`
	MemBandwidth    float64   `json:"mem_bandwidth_bps,omitempty"`
	NICBandwidth    float64   `json:"nic_bandwidth_bps"`
	Power           struct {
		CPUActPerCore   float64 `json:"cpu_act_per_core_w"`
		CPUStallPerCore float64 `json:"cpu_stall_per_core_w"`
		Mem             float64 `json:"mem_w"`
		Net             float64 `json:"net_w"`
		Idle            float64 `json:"idle_w"`
	} `json:"power"`
	NominalPeakW float64 `json:"nominal_peak_w"`
	MemPerNode   float64 `json:"mem_per_node_bytes,omitempty"`
}

// defaultDynamicExponent is used when a JSON node omits the DVFS scaling
// exponent; it matches the catalog's built-in nodes.
const defaultDynamicExponent = 2.2

func toJSON(n *NodeType) nodeTypeJSON {
	var j nodeTypeJSON
	j.Name = n.Name
	j.Model = n.Model
	j.ISA = string(n.ISA)
	j.Cores = n.Cores
	for _, f := range n.Freq.Steps {
		j.FreqGHz = append(j.FreqGHz, float64(f)/1e9)
	}
	j.DynamicExponent = n.Freq.DynamicExponent
	j.MemBandwidth = float64(n.MemBandwidth)
	j.NICBandwidth = float64(n.NICBandwidth)
	j.Power.CPUActPerCore = float64(n.Power.CPUActPerCore)
	j.Power.CPUStallPerCore = float64(n.Power.CPUStallPerCore)
	j.Power.Mem = float64(n.Power.Mem)
	j.Power.Net = float64(n.Power.Net)
	j.Power.Idle = float64(n.Power.Idle)
	j.NominalPeakW = float64(n.NominalPeak)
	j.MemPerNode = float64(n.MemPerNode)
	return j
}

func fromJSON(j nodeTypeJSON) (*NodeType, error) {
	n := &NodeType{
		Name:  j.Name,
		Model: j.Model,
		ISA:   ISA(j.ISA),
		Cores: j.Cores,
		Freq: DVFS{
			DynamicExponent: j.DynamicExponent,
		},
		MemBandwidth: units.BytesPerSecond(j.MemBandwidth),
		NICBandwidth: units.BytesPerSecond(j.NICBandwidth),
		Power: PowerParams{
			CPUActPerCore:   units.Watts(j.Power.CPUActPerCore),
			CPUStallPerCore: units.Watts(j.Power.CPUStallPerCore),
			Mem:             units.Watts(j.Power.Mem),
			Net:             units.Watts(j.Power.Net),
			Idle:            units.Watts(j.Power.Idle),
		},
		NominalPeak: units.Watts(j.NominalPeakW),
		MemPerNode:  units.Bytes(j.MemPerNode),
	}
	if n.Freq.DynamicExponent == 0 {
		n.Freq.DynamicExponent = defaultDynamicExponent
	}
	for _, g := range j.FreqGHz {
		n.Freq.Steps = append(n.Freq.Steps, units.Hertz(g*1e9))
	}
	sort.Slice(n.Freq.Steps, func(a, b int) bool { return n.Freq.Steps[a] < n.Freq.Steps[b] })
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("hardware: node %q: %w", j.Name, err)
	}
	return n, nil
}

// WriteJSON serializes the catalog's node types, sorted by name.
func (c *Catalog) WriteJSON(w io.Writer) error {
	var out []nodeTypeJSON
	for _, name := range c.Names() {
		n, err := c.Lookup(name)
		if err != nil {
			return err
		}
		out = append(out, toJSON(n))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadCatalogJSON parses node types from JSON and registers them into a
// new catalog. Every node is validated; the first failure aborts.
func ReadCatalogJSON(r io.Reader) (*Catalog, error) {
	var in []nodeTypeJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("hardware: parsing catalog JSON: %w", err)
	}
	c := NewCatalog()
	for _, j := range in {
		n, err := fromJSON(j)
		if err != nil {
			return nil, err
		}
		if err := c.Register(n); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// MergeJSON reads node types from JSON into an existing catalog,
// rejecting duplicates against both the file and the catalog.
func (c *Catalog) MergeJSON(r io.Reader) error {
	extra, err := ReadCatalogJSON(r)
	if err != nil {
		return err
	}
	for _, name := range extra.Names() {
		n, err := extra.Lookup(name)
		if err != nil {
			return err
		}
		if err := c.Register(n); err != nil {
			return err
		}
	}
	return nil
}
