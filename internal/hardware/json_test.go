package hardware

import (
	"bytes"
	"strings"
	"testing"
)

func TestCatalogJSONRoundTrip(t *testing.T) {
	orig := DefaultCatalog()
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCatalogJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip lost types: %d vs %d", back.Len(), orig.Len())
	}
	for _, name := range orig.Names() {
		a, err := orig.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Lookup(name)
		if err != nil {
			t.Fatalf("type %s lost in round trip: %v", name, err)
		}
		if a.Cores != b.Cores || a.Power != b.Power || a.NominalPeak != b.NominalPeak ||
			a.NICBandwidth != b.NICBandwidth || len(a.Freq.Steps) != len(b.Freq.Steps) {
			t.Errorf("type %s changed in round trip:\n  %+v\n  %+v", name, a, b)
		}
		for i := range a.Freq.Steps {
			if a.Freq.Steps[i] != b.Freq.Steps[i] {
				t.Errorf("type %s frequency step %d changed: %v vs %v",
					name, i, a.Freq.Steps[i], b.Freq.Steps[i])
			}
		}
	}
}

func TestReadCatalogJSONValidates(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"unknown field":   `[{"name":"X","cores":1,"freq_ghz":[1],"nic_bandwidth_bps":1,"power":{"idle_w":1},"nominal_peak_w":1,"bogus":true}]`,
		"no cores":        `[{"name":"X","cores":0,"freq_ghz":[1],"nic_bandwidth_bps":1,"power":{"idle_w":1},"nominal_peak_w":1}]`,
		"no freqs":        `[{"name":"X","cores":1,"freq_ghz":[],"nic_bandwidth_bps":1,"power":{"idle_w":1},"nominal_peak_w":1}]`,
		"duplicate names": `[{"name":"X","cores":1,"freq_ghz":[1],"nic_bandwidth_bps":1,"power":{"idle_w":1},"nominal_peak_w":1},{"name":"X","cores":1,"freq_ghz":[1],"nic_bandwidth_bps":1,"power":{"idle_w":1},"nominal_peak_w":1}]`,
	}
	for label, in := range cases {
		if _, err := ReadCatalogJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestReadCatalogJSONDefaults(t *testing.T) {
	in := `[{"name":"Tiny","cores":2,"freq_ghz":[1.0, 0.5],"nic_bandwidth_bps":1e8,
		"power":{"cpu_act_per_core_w":0.5,"cpu_stall_per_core_w":0.2,"mem_w":0.3,"net_w":0.1,"idle_w":1},
		"nominal_peak_w":3}]`
	c, err := ReadCatalogJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	n, err := c.Lookup("Tiny")
	if err != nil {
		t.Fatal(err)
	}
	if n.Freq.DynamicExponent != defaultDynamicExponent {
		t.Errorf("default exponent not applied: %g", n.Freq.DynamicExponent)
	}
	// Frequencies are sorted ascending regardless of input order.
	if n.FMin() != 0.5e9 || n.FMax() != 1e9 {
		t.Errorf("frequencies not normalized: %v-%v", n.FMin(), n.FMax())
	}
}

func TestMergeJSON(t *testing.T) {
	c := DefaultCatalog()
	in := `[{"name":"Edge","cores":4,"freq_ghz":[1.5],"nic_bandwidth_bps":1e9,
		"power":{"cpu_act_per_core_w":1,"cpu_stall_per_core_w":0.4,"mem_w":0.5,"net_w":0.5,"idle_w":3},
		"nominal_peak_w":9}]`
	if err := c.MergeJSON(strings.NewReader(in)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup("Edge"); err != nil {
		t.Errorf("merged type missing: %v", err)
	}
	// Merging a duplicate of a built-in type fails.
	dup := `[{"name":"A9","cores":4,"freq_ghz":[1.4],"nic_bandwidth_bps":1e7,
		"power":{"cpu_act_per_core_w":1,"cpu_stall_per_core_w":1,"mem_w":1,"net_w":1,"idle_w":1},
		"nominal_peak_w":5}]`
	if err := c.MergeJSON(strings.NewReader(dup)); err == nil {
		t.Error("duplicate merge accepted")
	}
}
