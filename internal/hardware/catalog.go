package hardware

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/units"
)

// The catalog encodes the two node types the paper validates with
// (Table 5) plus two extension types used by the repository's additional
// experiments. Power parameters are chosen so that:
//
//   - idle power matches the paper (A9 ~1.8 W, K10 ~45 W, Section III-B);
//   - the rated peak matches the paper's budget numbers (5 W / 60 W,
//     footnote 3);
//   - the per-component split is physically plausible (CPU active power
//     dominates the dynamic range; stall power is a fraction of active;
//     memory and NIC draws match DDR2/DDR3 and Fast-Ethernet/GigE parts).
//
// The per-workload busy powers that drive the proportionality metrics come
// from the workload calibration (internal/workload), not from these peaks.

// NewA9 returns the ARM Cortex-A9 wimpy node of Table 5.
func NewA9() *NodeType {
	return &NodeType{
		Name:  "A9",
		Model: "ARM Cortex-A9",
		ISA:   ISAARMv7,
		Cores: 4,
		Freq: DVFS{
			// Table 5 gives 0.2-1.4 GHz; footnote 4 counts 5 steps.
			Steps:           []units.Hertz{0.2 * units.GHz, 0.6 * units.GHz, 0.8 * units.GHz, 1.2 * units.GHz, 1.4 * units.GHz},
			DynamicExponent: 2.2,
		},
		MemBandwidth: units.BytesPerSecond(1.6e9), // LP-DDR2 single channel
		NICBandwidth: units.BytesPerSecond(100e6 / 8),
		Power: PowerParams{
			CPUActPerCore:   0.55,
			CPUStallPerCore: 0.22,
			Mem:             0.45,
			Net:             0.15,
			Idle:            1.8,
		},
		NominalPeak: 5,
		MemPerNode:  1 * units.GB,
	}
}

// NewK10 returns the AMD Opteron K10 brawny node of Table 5.
func NewK10() *NodeType {
	return &NodeType{
		Name:  "K10",
		Model: "AMD Opteron K10",
		ISA:   ISAx86,
		Cores: 6,
		Freq: DVFS{
			// Table 5 gives 0.8-2.1 GHz; footnote 4 counts 3 steps.
			Steps:           []units.Hertz{0.8 * units.GHz, 1.5 * units.GHz, 2.1 * units.GHz},
			DynamicExponent: 2.2,
		},
		MemBandwidth: units.BytesPerSecond(12.8e9), // DDR3-1600 single channel
		NICBandwidth: units.BytesPerSecond(1e9 / 8),
		Power: PowerParams{
			CPUActPerCore:   5.5,
			CPUStallPerCore: 2.6,
			Mem:             4.0,
			Net:             1.2,
			Idle:            45,
		},
		NominalPeak: 60,
		MemPerNode:  8 * units.GB,
	}
}

// NewA15 returns an ARM Cortex-A15 node, an extension type covering the
// middle of the wimpy-to-brawny spectrum (the paper names Cortex-A15 as a
// system its execution model covers).
func NewA15() *NodeType {
	return &NodeType{
		Name:  "A15",
		Model: "ARM Cortex-A15",
		ISA:   ISAARMv7,
		Cores: 4,
		Freq: DVFS{
			Steps:           []units.Hertz{0.6 * units.GHz, 1.0 * units.GHz, 1.4 * units.GHz, 1.8 * units.GHz, 2.0 * units.GHz},
			DynamicExponent: 2.4,
		},
		MemBandwidth: units.BytesPerSecond(6.4e9),
		NICBandwidth: units.BytesPerSecond(1e9 / 8),
		Power: PowerParams{
			CPUActPerCore:   1.9,
			CPUStallPerCore: 0.8,
			Mem:             1.1,
			Net:             0.9,
			Idle:            4.2,
		},
		NominalPeak: 14,
		MemPerNode:  2 * units.GB,
	}
}

// NewXeonE5 returns an Intel Xeon E5 class node, an extension brawny type.
func NewXeonE5() *NodeType {
	return &NodeType{
		Name:  "XeonE5",
		Model: "Intel Xeon E5",
		ISA:   ISAx86,
		Cores: 8,
		Freq: DVFS{
			Steps:           []units.Hertz{1.2 * units.GHz, 1.8 * units.GHz, 2.4 * units.GHz, 2.7 * units.GHz},
			DynamicExponent: 2.6,
		},
		MemBandwidth: units.BytesPerSecond(25.6e9),
		NICBandwidth: units.BytesPerSecond(10e9 / 8),
		Power: PowerParams{
			CPUActPerCore:   8.5,
			CPUStallPerCore: 3.9,
			Mem:             9.0,
			Net:             4.5,
			Idle:            62,
		},
		NominalPeak: 150,
		MemPerNode:  64 * units.GB,
	}
}

// Catalog is a registry of node types keyed by name.
type Catalog struct {
	mu    sync.RWMutex
	types map[string]*NodeType
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{types: make(map[string]*NodeType)}
}

// DefaultCatalog returns a catalog preloaded with the paper's A9 and K10
// nodes and the two extension types.
func DefaultCatalog() *Catalog {
	c := NewCatalog()
	for _, n := range []*NodeType{NewA9(), NewK10(), NewA15(), NewXeonE5()} {
		if err := c.Register(n); err != nil {
			// The built-in nodes are statically valid; a failure here is a
			// programming error in the catalog itself.
			panic(err)
		}
	}
	return c
}

// Register adds a node type. It fails on invalid descriptions or
// duplicate names.
func (c *Catalog) Register(n *NodeType) error {
	if err := n.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.types[n.Name]; ok {
		return fmt.Errorf("hardware: node type %q already registered", n.Name)
	}
	c.types[n.Name] = n
	return nil
}

// Lookup returns the node type with the given name.
func (c *Catalog) Lookup(name string) (*NodeType, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.types[name]
	if !ok {
		return nil, fmt.Errorf("hardware: unknown node type %q", name)
	}
	return n, nil
}

// Names returns the registered type names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.types))
	for name := range c.types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered types.
func (c *Catalog) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.types)
}
