// Package hardware models the server nodes of a heterogeneous cluster:
// core counts, DVFS ladders, memory and network capabilities, and the
// power parameters of Table 1 of the paper (P_CPU,act, P_CPU,stall,
// P_mem, P_net, P_sys,idle).
//
// The paper measured these parameters on physical ARM Cortex-A9 and AMD
// Opteron K10 nodes with micro-benchmarks and a wall power meter. This
// package is the substitute substrate: nodes are parametric models whose
// published characteristics (idle/peak power, core counts, frequency
// ranges, NIC speeds) are encoded in the catalog, and whose power
// parameters can also be re-derived from simulated micro-benchmarks by
// internal/characterize, mirroring the paper's methodology.
package hardware

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
)

// ISA identifies the instruction set architecture of a node type.
type ISA string

// Instruction set architectures of the catalog nodes.
const (
	ISAARMv7 ISA = "ARMv7-A"
	ISAx86   ISA = "x86_64"
	ISAARMv8 ISA = "ARMv8-A"
)

// PowerParams holds the power-model parameters of one node type at its
// maximum core frequency. Frequency-dependent components are scaled by
// NodeType.PowerAt.
type PowerParams struct {
	// CPUActPerCore is the incremental power of one core executing work
	// cycles (the paper's P_CPU,act, measured per core with a
	// CPU-utilization-maximizing micro-benchmark).
	CPUActPerCore units.Watts
	// CPUStallPerCore is the incremental power of one core stalled on
	// memory (P_CPU,stall, measured with a cache-miss stream).
	CPUStallPerCore units.Watts
	// Mem is the power of an active memory subsystem (P_mem, from DDR
	// specifications in the paper).
	Mem units.Watts
	// Net is the network interface power when transferring (P_net).
	Net units.Watts
	// Idle is the whole-system idle power (P_sys,idle).
	Idle units.Watts
}

// DVFS describes the frequency ladder of a node type.
type DVFS struct {
	// Steps is the list of selectable core frequencies, ascending.
	Steps []units.Hertz
	// DynamicExponent is the exponent alpha in the dynamic-power scaling
	// P_dyn(f) = P_dyn(fmax) * (f/fmax)^alpha. Classic CMOS scaling with
	// voltage tracking frequency gives alpha near 3; constant-voltage
	// scaling gives alpha near 1. The catalog uses 2.2, between the two,
	// which is what the measured ladders of low-power SoCs resemble.
	DynamicExponent float64
}

// NodeType is the immutable description of one kind of server node.
type NodeType struct {
	// Name is a short unique identifier, e.g. "A9" or "K10".
	Name string
	// Model is the human-readable processor name.
	Model string
	// ISA is the instruction set.
	ISA ISA
	// Cores is the number of physical cores per node (c_max).
	Cores int
	// Freq is the DVFS ladder (f in [f_min, f_max]).
	Freq DVFS
	// MemBandwidth is the sustainable memory bandwidth of the single
	// shared memory controller (UMA, per Section II-D).
	MemBandwidth units.BytesPerSecond
	// NICBandwidth is the network I/O bandwidth.
	NICBandwidth units.BytesPerSecond
	// Power holds the power parameters at f_max.
	Power PowerParams
	// NominalPeak is the rated whole-node peak power used for
	// power-budget accounting (5 W for A9, 60 W for K10 in the paper).
	// It can exceed the busy power of any particular workload: it is the
	// provisioning number, not a measured draw.
	NominalPeak units.Watts
	// MemPerNode is the installed memory capacity.
	MemPerNode units.Bytes
}

// Validate checks the node description for internal consistency.
func (n *NodeType) Validate() error {
	if n.Name == "" {
		return errors.New("hardware: node type needs a name")
	}
	if n.Cores <= 0 {
		return fmt.Errorf("hardware: node %s has no cores", n.Name)
	}
	if len(n.Freq.Steps) == 0 {
		return fmt.Errorf("hardware: node %s has no frequency steps", n.Name)
	}
	if !sort.SliceIsSorted(n.Freq.Steps, func(i, j int) bool {
		return n.Freq.Steps[i] < n.Freq.Steps[j]
	}) {
		return fmt.Errorf("hardware: node %s frequency steps not ascending", n.Name)
	}
	for _, f := range n.Freq.Steps {
		if f <= 0 {
			return fmt.Errorf("hardware: node %s has non-positive frequency", n.Name)
		}
	}
	if n.Power.Idle < 0 || n.Power.CPUActPerCore < 0 || n.Power.CPUStallPerCore < 0 ||
		n.Power.Mem < 0 || n.Power.Net < 0 {
		return fmt.Errorf("hardware: node %s has negative power parameter", n.Name)
	}
	if n.NICBandwidth <= 0 {
		return fmt.Errorf("hardware: node %s has no NIC bandwidth", n.Name)
	}
	if n.Freq.DynamicExponent <= 0 {
		return fmt.Errorf("hardware: node %s has non-positive DVFS exponent", n.Name)
	}
	return nil
}

// FMax returns the maximum core frequency.
func (n *NodeType) FMax() units.Hertz { return n.Freq.Steps[len(n.Freq.Steps)-1] }

// FMin returns the minimum core frequency.
func (n *NodeType) FMin() units.Hertz { return n.Freq.Steps[0] }

// HasFreq reports whether f is a selectable step on this node type.
func (n *NodeType) HasFreq(f units.Hertz) bool {
	for _, s := range n.Freq.Steps {
		if s == f {
			return true
		}
	}
	return false
}

// NearestFreq returns the selectable step closest to f (ties go down).
func (n *NodeType) NearestFreq(f units.Hertz) units.Hertz {
	best := n.Freq.Steps[0]
	bestDist := math.Abs(float64(f - best))
	for _, s := range n.Freq.Steps[1:] {
		d := math.Abs(float64(f - s))
		if d < bestDist {
			best, bestDist = s, d
		}
	}
	return best
}

// dynScale returns the dynamic-power scale factor for running at f
// instead of f_max.
func (n *NodeType) dynScale(f units.Hertz) float64 {
	fm := n.FMax()
	if fm <= 0 {
		return 1
	}
	r := float64(f) / float64(fm)
	if r < 0 {
		r = 0
	}
	return math.Pow(r, n.Freq.DynamicExponent)
}

// PowerAt returns the power parameters scaled to core frequency f.
// CPU active and stall powers scale with the DVFS dynamic exponent;
// memory, network and idle power are frequency independent, matching the
// paper's measurement setup where only core clocks are scaled.
func (n *NodeType) PowerAt(f units.Hertz) PowerParams {
	s := n.dynScale(f)
	p := n.Power
	p.CPUActPerCore = units.Watts(float64(p.CPUActPerCore) * s)
	p.CPUStallPerCore = units.Watts(float64(p.CPUStallPerCore) * s)
	return p
}

// MaxBusyPower returns an upper bound on whole-node power: all cores
// active at frequency f plus memory and NIC activity on top of idle.
func (n *NodeType) MaxBusyPower(f units.Hertz) units.Watts {
	p := n.PowerAt(f)
	return p.Idle +
		units.Watts(float64(p.CPUActPerCore)*float64(n.Cores)) +
		p.Mem + p.Net
}

func (n *NodeType) String() string {
	return fmt.Sprintf("%s(%s, %d cores, %v-%v, idle %v, peak %v)",
		n.Name, n.ISA, n.Cores, n.FMin(), n.FMax(), n.Power.Idle, n.NominalPeak)
}
