package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/pareto"
	"repro/internal/queueing"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// maxPercentiles bounds the p= list of one /v1/percentiles request.
const maxPercentiles = 32

// analysisCacheMax bounds the (workload, mix) -> Analysis memo; past it
// the map is dropped and refilled, mirroring the queueing percentile
// cache's overflow policy.
const analysisCacheMax = 4096

// analysisCache memoizes model evaluations per (workload, mix): the
// model is pure, so a warm entry turns /v1/percentiles and
// /v1/epmetrics into a map lookup plus (cached) percentile queries.
type analysisCache struct {
	mu sync.Mutex
	m  map[string]*energyprop.Analysis
}

func (c *analysisCache) get(key string) (*energyprop.Analysis, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.m[key]
	return a, ok
}

func (c *analysisCache) put(key string, a *energyprop.Analysis) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= analysisCacheMax {
		c.m = nil
	}
	if c.m == nil {
		c.m = make(map[string]*energyprop.Analysis)
	}
	c.m[key] = a
}

// analysisFor resolves the cached Analysis for (workload, mix),
// computing and memoizing it on miss. On failure the returned status
// is the HTTP status the error maps to: lookup failures 404,
// everything else 400. It never touches the ResponseWriter, so both
// the scalar handlers and the batch per-item paths share it.
func (s *Server) analysisFor(wlName, mix string) (*energyprop.Analysis, int, error) {
	key := wlName + "|" + mix
	if a, ok := s.analyses.get(key); ok {
		return a, 0, nil
	}
	wl, err := s.cfg.Workloads.Lookup(wlName)
	if err != nil {
		return nil, http.StatusNotFound, err
	}
	cfg, err := cli.ParseMix(s.cfg.Catalog, mix, 0, 0)
	if err != nil {
		return nil, http.StatusBadRequest, fmt.Errorf("invalid mix %q: %v", mix, err)
	}
	a, err := energyprop.Analyze(cfg, wl, model.Options{}, 200)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	s.analyses.put(key, a)
	return a, 0, nil
}

// analysis is analysisFor with the scalar handlers' error writing.
func (s *Server) analysis(w http.ResponseWriter, wlName, mix string) (*energyprop.Analysis, bool) {
	a, status, err := s.analysisFor(wlName, mix)
	if err != nil {
		code := "bad_request"
		if status == http.StatusNotFound {
			code = "not_found"
		}
		writeError(w, status, code, err.Error())
		return nil, false
	}
	return a, true
}

// PercentilePoint is one percentile of the waiting/response-time
// distribution in a PercentilesResponse.
type PercentilePoint struct {
	// P is the percentile in [0, 100).
	P float64 `json:"p"`
	// WaitSeconds is the p-th percentile of the time a job waits before
	// service begins.
	WaitSeconds float64 `json:"wait_seconds"`
	// ResponseSeconds is the p-th percentile of the sojourn time
	// (wait + deterministic service).
	ResponseSeconds float64 `json:"response_seconds"`
}

// PercentilesResponse is the /v1/percentiles response body.
type PercentilesResponse struct {
	// Workload and Mix echo the request in model mode; both are empty in
	// raw service-time mode.
	Workload string `json:"workload,omitempty"`
	Mix      string `json:"mix,omitempty"`
	// Kernel names the queueing kernel when a non-default one was
	// selected ("mg1", "mmk"); absent for the M/D/1 default, so default
	// responses are byte-identical to the pre-kernel API. SCV and Servers
	// echo the kernel's shape parameter when set.
	Kernel  string  `json:"kernel,omitempty"`
	SCV     float64 `json:"scv,omitempty"`
	Servers int     `json:"servers,omitempty"`
	// Utilization is the server utilization rho the queue was built for.
	Utilization float64 `json:"utilization"`
	// ServiceTimeSeconds is the aggregate service time: the model's job
	// execution time T_P in model mode, the d parameter in raw mode. For
	// the M/D/1 default it is the deterministic service time.
	ServiceTimeSeconds float64 `json:"service_time_seconds"`
	// ArrivalRatePerSecond is the Poisson arrival rate rho/D.
	ArrivalRatePerSecond float64 `json:"arrival_rate_per_second"`
	// MeanWaitSeconds and MeanResponseSeconds are the Pollaczek-Khinchine
	// means.
	MeanWaitSeconds     float64 `json:"mean_wait_seconds"`
	MeanResponseSeconds float64 `json:"mean_response_seconds"`
	// Percentiles holds one entry per requested p, in request order.
	Percentiles []PercentilePoint `json:"percentiles"`
}

// kernelSpecFrom maps the request-level kernel selector fields onto a
// validated queueing.Spec. The empty kernel name is the M/D/1 default,
// keeping every pre-kernel request shape working unchanged.
func kernelSpecFrom(kernel string, scv float64, servers int) (queueing.Spec, error) {
	kind, err := queueing.ParseKind(kernel)
	if err != nil {
		return queueing.Spec{}, err
	}
	spec := queueing.Spec{Kind: kind, SCV: scv, Servers: servers}
	if err := spec.Validate(); err != nil {
		return queueing.Spec{}, err
	}
	return spec, nil
}

// parseKernelParams parses the kernel=/scv=/servers= GET query form of
// kernelSpecFrom, writing the error response on failure.
func parseKernelParams(w http.ResponseWriter, q url.Values) (queueing.Spec, bool) {
	scv, ok := parseFloatParam(w, q.Get("scv"), "scv", false)
	if !ok {
		return queueing.Spec{}, false
	}
	servers, ok := parseIntParam(w, q.Get("servers"), "servers", 0)
	if !ok {
		return queueing.Spec{}, false
	}
	spec, err := kernelSpecFrom(q.Get("kernel"), scv, servers)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return queueing.Spec{}, false
	}
	return spec, true
}

// pctFlightKey is the singleflight key of one percentile evaluation:
// scalar GET requests and every item of a POST batch build the same key
// from the same canonical fields (workload, mix, service time, the
// cache-quantized utilization, the kernel identity, and the parsed
// percentile list), so a scalar caller and a batched caller asking the
// same question coalesce onto one computation. The M/D/1 default omits
// the kernel tag, keeping pre-kernel keys (and their coalescing
// behavior) unchanged; any other kernel appends its CacheTag so two
// kernels at the same load can never share a flight.
func pctFlightKey(wlName, mix string, serviceTime, u float64, ps []float64, spec queueing.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "pct|%s|%s|%g|%g|", wlName, mix, serviceTime, queueing.QuantizedRho(u))
	for i, p := range ps {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", p)
	}
	if !spec.IsDefault() {
		b.WriteByte('|')
		b.WriteString(spec.CacheTag())
	}
	return b.String()
}

// computePercentiles is the percentile evaluation core shared by the
// scalar handler and the batch per-item path: build the selected kernel
// at (u, serviceTime), run the batched percentile solves under ctx, and
// materialize the response. With the default spec the output is
// byte-identical to the pre-kernel M/D/1 path.
func computePercentiles(ctx context.Context, wlName, mix string, serviceTime, u float64, ps []float64, spec queueing.Spec) (*PercentilesResponse, error) {
	queue, err := spec.Build(u, serviceTime)
	if err != nil {
		return nil, err
	}
	waits, err := queue.WaitPercentilesContext(ctx, ps)
	if err != nil {
		return nil, err
	}
	responses, err := queue.ResponsePercentilesContext(ctx, ps)
	if err != nil {
		return nil, err
	}
	resp := &PercentilesResponse{
		Workload:             wlName,
		Mix:                  mix,
		Utilization:          u,
		ServiceTimeSeconds:   serviceTime,
		ArrivalRatePerSecond: u / serviceTime,
		MeanWaitSeconds:      queue.MeanWait(),
		MeanResponseSeconds:  queue.MeanResponse(),
		Percentiles:          make([]PercentilePoint, len(ps)),
	}
	if !spec.IsDefault() {
		resp.Kernel = spec.Kind.String()
		resp.SCV = spec.SCV
		resp.Servers = spec.Servers
	}
	for i, p := range ps {
		resp.Percentiles[i] = PercentilePoint{
			P:               p,
			WaitSeconds:     waits[i],
			ResponseSeconds: responses[i],
		}
	}
	return resp, nil
}

// percentilesShared runs computePercentiles under the singleflight
// group, attributing coalesced followers. Both the scalar handler and
// every batch item enter here, so identical questions across transports
// share one computation and one set of cache lookups.
func (s *Server) percentilesShared(ctx context.Context, wlName, mix string, serviceTime, u float64, ps []float64, spec queueing.Spec) (*PercentilesResponse, error) {
	key := pctFlightKey(wlName, mix, serviceTime, u, ps, spec)
	v, shared, err := s.flights.do(ctx, key, func() (any, error) {
		return computePercentiles(ctx, wlName, mix, serviceTime, u, ps, spec)
	})
	if shared {
		s.ins.coalesced.Inc()
		telemetry.RequestFrom(ctx).Add(telemetry.AttrCoalesced, 1)
	}
	if err != nil {
		return nil, err
	}
	return v.(*PercentilesResponse), nil
}

// handlePercentiles serves /v1/percentiles: waiting/response-time
// percentiles at a target utilization, for either a (workload, mix)
// pair run through the time-energy model or a raw service time d. The
// queueing kernel defaults to the exact M/D/1; kernel=mg1&scv= selects
// the two-moment M/G/1 and kernel=mmk&servers= the Erlang-C M/M/k. GET
// answers one (configuration, utilization) pair; POST takes a batch
// (see handlePercentilesBatch).
func (s *Server) handlePercentiles(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handlePercentilesBatch(w, r)
		return
	}
	if !allowGetBatch(w, r) {
		return
	}
	q := r.URL.Query()
	u, ok := parseFloatParam(w, q.Get("u"), "u", true)
	if !ok {
		return
	}
	if u < 0 || u >= 1 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("utilization u=%g outside [0, 1)", u))
		return
	}
	ps, ok := parsePercentiles(w, q.Get("p"))
	if !ok {
		return
	}
	spec, ok := parseKernelParams(w, q)
	if !ok {
		return
	}

	mix, rawD := q.Get("mix"), q.Get("d")
	var serviceTime float64
	var wlName string
	switch {
	case mix != "" && rawD != "":
		writeError(w, http.StatusBadRequest, "bad_request",
			"pass either mix= (model mode) or d= (raw service time), not both")
		return
	case mix != "":
		wlName = q.Get("workload")
		if wlName == "" {
			wlName = "EP"
		}
		a, ok := s.analysis(w, wlName, mix)
		if !ok {
			return
		}
		serviceTime = float64(a.Result.Time)
	case rawD != "":
		d, ok := parseFloatParam(w, rawD, "d", true)
		if !ok {
			return
		}
		if d <= 0 {
			writeError(w, http.StatusBadRequest, "bad_request",
				"service time d must be positive")
			return
		}
		serviceTime = d
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			"missing mix= (model mode) or d= (raw service time)")
		return
	}

	v, err := s.percentilesShared(r.Context(), wlName, mix, serviceTime, u, ps, spec)
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// MetricsBlock carries the Table 3 cumulative proportionality metrics
// in an EPMetricsResponse.
type MetricsBlock struct {
	DPR      float64 `json:"dpr"`
	IPR      float64 `json:"ipr"`
	EPM      float64 `json:"epm"`
	LDR      float64 `json:"ldr"`
	ChordLDR float64 `json:"chord_ldr"`
}

// ReferenceBlock reports sub-linearity against a reference
// configuration's ideal proportionality line.
type ReferenceBlock struct {
	// Mix is the reference configuration.
	Mix string `json:"mix"`
	// PeakWatts is the reference peak power all curves normalize to.
	PeakWatts float64 `json:"peak_watts"`
	// Sublinear reports whether the configuration falls below the
	// reference ideal line anywhere on the probe grid.
	Sublinear bool `json:"sublinear"`
	// SublinearFromU/ToU bound the sub-linear utilization interval when
	// Sublinear is true.
	SublinearFromU float64 `json:"sublinear_from_u,omitempty"`
	SublinearToU   float64 `json:"sublinear_to_u,omitempty"`
}

// EPMetricsResponse is the /v1/epmetrics response body.
type EPMetricsResponse struct {
	Workload string `json:"workload"`
	Mix      string `json:"mix"`
	// TimeSeconds and EnergyJoules are the per-job time-energy model
	// outcome (Table 2).
	TimeSeconds  float64 `json:"time_seconds"`
	EnergyJoules float64 `json:"energy_joules"`
	// IdleWatts and PeakWatts are the endpoints of the power curve.
	IdleWatts float64 `json:"idle_watts"`
	PeakWatts float64 `json:"peak_watts"`
	// ThroughputPerSecond is work units per second while executing.
	ThroughputPerSecond float64 `json:"throughput_per_second"`
	// Metrics holds the cumulative proportionality metrics.
	Metrics MetricsBlock `json:"metrics"`
	// Reference is present when ref= was given.
	Reference *ReferenceBlock `json:"reference,omitempty"`
}

// epmetricsFor is the EP-metrics evaluation core shared by the scalar
// handler and the batch per-item path. On failure the returned status
// is the HTTP status the error maps to.
func (s *Server) epmetricsFor(wlName, mix, refMix string) (EPMetricsResponse, int, error) {
	if mix == "" {
		return EPMetricsResponse{}, http.StatusBadRequest, errors.New("missing mix=")
	}
	if wlName == "" {
		wlName = "EP"
	}
	a, status, err := s.analysisFor(wlName, mix)
	if err != nil {
		return EPMetricsResponse{}, status, err
	}
	m := a.Metrics()
	resp := EPMetricsResponse{
		Workload:            wlName,
		Mix:                 mix,
		TimeSeconds:         float64(a.Result.Time),
		EnergyJoules:        float64(a.Result.Energy),
		IdleWatts:           float64(a.Result.IdlePower),
		PeakWatts:           float64(a.Result.BusyPower),
		ThroughputPerSecond: float64(a.Result.Throughput),
		Metrics: MetricsBlock{
			DPR: m.DPR, IPR: m.IPR, EPM: m.EPM, LDR: m.LDR, ChordLDR: m.ChordLDR,
		},
	}
	if refMix != "" {
		refA, status, err := s.analysisFor(wlName, refMix)
		if err != nil {
			return EPMetricsResponse{}, status, err
		}
		ref := energyprop.Reference{PeakPower: float64(refA.Result.BusyPower)}
		block := &ReferenceBlock{Mix: refMix, PeakWatts: ref.PeakPower}
		lo, hi, sub := ref.SublinearRange(a.CurveRes, stats.Linspace(0.05, 1, 96))
		block.Sublinear = sub
		if sub {
			block.SublinearFromU, block.SublinearToU = lo, hi
		}
		resp.Reference = block
	}
	return resp, 0, nil
}

// handleEpmetrics serves /v1/epmetrics: the Table 3 energy
// proportionality metrics of one (workload, mix), optionally normalized
// against a reference mix to expose sub-linear proportionality. GET
// answers one configuration; POST takes a batch.
func (s *Server) handleEpmetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleEpmetricsBatch(w, r)
		return
	}
	if !allowGetBatch(w, r) {
		return
	}
	q := r.URL.Query()
	resp, status, err := s.epmetricsFor(q.Get("workload"), q.Get("mix"), q.Get("ref"))
	if err != nil {
		code := "bad_request"
		if status == http.StatusNotFound {
			code = "not_found"
		}
		writeError(w, status, code, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// FrontierPoint is one configuration on the energy-deadline Pareto
// frontier in a FrontierResponse.
type FrontierPoint struct {
	// Mix is the configuration in COUNTxTYPE notation.
	Mix string `json:"mix"`
	// TimeSeconds and EnergyJoules are the per-job model outcome.
	TimeSeconds  float64 `json:"time_seconds"`
	EnergyJoules float64 `json:"energy_joules"`
	// PeakWatts is the configuration's nominal peak power.
	PeakWatts float64 `json:"peak_watts"`
	// MeanPowerWatts is the cluster-average power while executing.
	MeanPowerWatts float64 `json:"mean_power_watts"`
	// ResponseSeconds is the tail-latency annotation: the requested
	// percentile of the response time at the requested utilization under
	// the selected kernel. Present only when u= was given, so
	// unannotated sweeps keep their pre-kernel bytes.
	ResponseSeconds float64 `json:"response_seconds,omitempty"`
}

// FrontierResponse is the /v1/frontier response body.
type FrontierResponse struct {
	Workload string `json:"workload"`
	// Explored is the configuration-space size enumerated; Filtered how
	// many a power budget pruned before evaluation; Evaluated how many
	// ran through the model.
	Explored  int `json:"explored"`
	Filtered  int `json:"filtered"`
	Evaluated int `json:"evaluated"`
	// Frontier is the Pareto-optimal set, ascending in time.
	Frontier []FrontierPoint `json:"frontier"`
	// SweetRegion holds the frontier points meeting the deadline and
	// energy budget, when either was given.
	SweetRegion []FrontierPoint `json:"sweet_region,omitempty"`
	// Recommended is the minimum-energy sweet-region point, or the
	// minimum energy-delay-product frontier point when no constraint was
	// given. Absent when the sweet region is empty.
	Recommended *FrontierPoint `json:"recommended,omitempty"`
}

// frontierParams is the canonical parameter set of one frontier sweep,
// shared by the GET handler, the batch per-item path and the admission
// weigher (which charges units proportional to the configuration-space
// size these parameters span).
type frontierParams struct {
	workload      string
	maxA9, maxK10 int
	dvfs          bool
	powerW        float64
	deadline      float64
	energy        float64
	// u > 0 enables the tail-latency annotation: every frontier point
	// gains the pct-th percentile response time at utilization u under
	// the spec kernel.
	u    float64
	pct  float64
	spec queueing.Spec
}

// frontierQueryParams parses the GET query form of frontierParams,
// writing the error response on failure.
func frontierQueryParams(w http.ResponseWriter, q url.Values) (frontierParams, bool) {
	p := frontierParams{workload: q.Get("workload")}
	if p.workload == "" {
		p.workload = "EP"
	}
	var ok bool
	if p.maxA9, ok = parseIntParam(w, q.Get("max_a9"), "max_a9", 32); !ok {
		return p, false
	}
	if p.maxK10, ok = parseIntParam(w, q.Get("max_k10"), "max_k10", 12); !ok {
		return p, false
	}
	p.dvfs = q.Get("dvfs") == "true" || q.Get("dvfs") == "1"
	if p.powerW, ok = parseFloatParam(w, q.Get("power"), "power", false); !ok {
		return p, false
	}
	if raw := q.Get("deadline"); raw != "" {
		d, err := parseDurationOrSeconds(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("invalid deadline %q: %v", raw, err))
			return p, false
		}
		p.deadline = d
	}
	if p.energy, ok = parseFloatParam(w, q.Get("energy"), "energy", false); !ok {
		return p, false
	}
	if p.u, ok = parseFloatParam(w, q.Get("u"), "u", false); !ok {
		return p, false
	}
	if p.u != 0 {
		if p.u < 0 || p.u >= 1 {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("utilization u=%g outside (0, 1)", p.u))
			return p, false
		}
		p.pct = 95
		if raw := q.Get("p"); raw != "" {
			pct, ok := parseFloatParam(w, raw, "p", false)
			if !ok {
				return p, false
			}
			if pct < 0 || pct >= 100 {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("invalid percentile %g: want a number in [0, 100)", pct))
				return p, false
			}
			p.pct = pct
		}
		if p.spec, ok = parseKernelParams(w, q); !ok {
			return p, false
		}
	}
	return p, true
}

// frontierPlan resolves the sweep limits for p and checks the
// configuration-space cap. On failure the returned status is the HTTP
// status the error maps to. It never touches the ResponseWriter, so the
// scalar handler, the batch per-item path and the admission weigher all
// share it.
func (s *Server) frontierPlan(p frontierParams) (limits []cluster.Limit, space, status int, err error) {
	if _, err := s.cfg.Workloads.Lookup(p.workload); err != nil {
		return nil, 0, http.StatusNotFound, err
	}
	a9, err := s.cfg.Catalog.Lookup("A9")
	if err != nil {
		return nil, 0, http.StatusNotFound, err
	}
	k10, err := s.cfg.Catalog.Lookup("K10")
	if err != nil {
		return nil, 0, http.StatusNotFound, err
	}
	limits = []cluster.Limit{
		{Type: a9, MaxNodes: p.maxA9, FixCoresAndFreq: !p.dvfs},
		{Type: k10, MaxNodes: p.maxK10, FixCoresAndFreq: !p.dvfs},
	}
	space = cluster.SpaceSize(limits)
	if space > s.cfg.MaxFrontierConfigs {
		return nil, 0, http.StatusBadRequest,
			fmt.Errorf("configuration space %d exceeds the per-request cap %d; lower max_a9/max_k10 or disable dvfs",
				space, s.cfg.MaxFrontierConfigs)
	}
	return limits, space, 0, nil
}

// frontierShared runs the sweep for p under the singleflight group. The
// key is built from the canonical parameters, so a scalar GET and a
// batch item asking for the same sweep coalesce onto one computation.
func (s *Server) frontierShared(ctx context.Context, p frontierParams, limits []cluster.Limit) (*FrontierResponse, error) {
	key := fmt.Sprintf("frontier|%s|%d|%d|%t|%g|%g|%g",
		p.workload, p.maxA9, p.maxK10, p.dvfs, p.powerW, p.deadline, p.energy)
	if p.u > 0 {
		// Annotated sweeps key on the annotation point and kernel too, so
		// they never coalesce with (or poison) an unannotated sweep.
		key += fmt.Sprintf("|lat|%g|%g|%s", queueing.QuantizedRho(p.u), p.pct, p.spec.CacheTag())
	}
	v, shared, err := s.flights.do(ctx, key, func() (any, error) {
		return s.sweepFrontier(ctx, p, limits)
	})
	if shared {
		s.ins.coalesced.Inc()
		telemetry.RequestFrom(ctx).Add(telemetry.AttrCoalesced, 1)
	}
	if err != nil {
		return nil, err
	}
	return v.(*FrontierResponse), nil
}

// handleFrontier serves /v1/frontier: the energy-deadline Pareto
// frontier over the A9/K10 mix space, with optional power budget,
// deadline and energy-budget constraints. The sweep fans out across the
// worker pool and honors the request deadline. GET answers one sweep;
// POST takes a batch.
func (s *Server) handleFrontier(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		s.handleFrontierBatch(w, r)
		return
	}
	if !allowGetBatch(w, r) {
		return
	}
	p, ok := frontierQueryParams(w, r.URL.Query())
	if !ok {
		return
	}
	limits, _, status, err := s.frontierPlan(p)
	if err != nil {
		code := "bad_request"
		if status == http.StatusNotFound {
			code = "not_found"
		}
		writeError(w, status, code, err.Error())
		return
	}
	v, err := s.frontierShared(r.Context(), p, limits)
	if err != nil {
		s.computeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// tableFor returns the server's shared memoized unit-calc table for
// wl, building it on first use. Entries are keyed by the registry's
// profile pointer — exactly what SweepOptions.Table's identity check
// requires — and live for the server's lifetime: the memo holds one
// entry per distinct (type, cores, freq), tens of entries per
// workload.
func (s *Server) tableFor(wl *workload.Profile) *model.Table {
	if t, ok := s.tables.Load(wl); ok {
		return t.(*model.Table)
	}
	t, _ := s.tables.LoadOrStore(wl, model.NewTable(wl, model.Options{}))
	return t.(*model.Table)
}

// sweepFrontier runs the memoized parallel frontier engine over the
// space under ctx — peak-power budget applied as a pre-evaluation
// filter, per-workload unit-calc table shared across requests, pruning
// disabled so the explored/evaluated/filtered accounting in the
// response covers the full space — and folds the results into the
// frontier and sweet region. When the params ask for it, every
// frontier point is annotated with its tail latency under the selected
// kernel.
func (s *Server) sweepFrontier(ctx context.Context, fp frontierParams, limits []cluster.Limit) (*FrontierResponse, error) {
	wlName, powerW, deadline, energy := fp.workload, fp.powerW, fp.deadline, fp.energy
	// On the singleflight leader's request the sweep is attributed to its
	// RequestContext (followers only record coalesced=1); nil-safe
	// no-ops otherwise.
	rc := telemetry.RequestFrom(ctx)
	defer rc.Phase("serve.frontier_sweep")()
	wl, err := s.cfg.Workloads.Lookup(wlName)
	if err != nil {
		return nil, err
	}
	resp := &FrontierResponse{Workload: wlName, Explored: cluster.SpaceSize(limits)}

	var filter func(cluster.Config) bool
	if powerW > 0 {
		swt := hardware.DefaultSwitch()
		filter = func(cfg cluster.Config) bool {
			peak := float64(cfg.NominalPeak()) + float64(swt.Power(cfg.Count("A9")))
			return peak <= powerW
		}
	}

	// NoPrune keeps the response accounting exact: every in-budget
	// configuration is evaluated (or skipped as unsupported), never
	// bulk-pruned, so Evaluated + Filtered keep their documented API
	// meaning. The engine attributes configs_evaluated/filtered and the
	// sweep phase to rc itself.
	var st pareto.SweepStats
	frontier, err := pareto.FrontierSweep(limits, wl, model.Options{}, pareto.SweepOptions{
		Workers: s.cfg.Workers,
		Filter:  filter,
		NoPrune: true,
		Context: ctx,
		Table:   s.tableFor(wl),
		Request: rc,
		Stats:   &st,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: frontier sweep: %w", err)
	}
	resp.Filtered = int(st.Filtered)
	resp.Evaluated = int(st.Evaluated)
	// Tail-latency annotation: one response-percentile solve per frontier
	// point (not per explored configuration — the frontier is small), all
	// through the shared kernel percentile cache. latFor carries the
	// figure onto the sweet-region and recommended copies of a point.
	var lat []float64
	if fp.u > 0 {
		var err error
		lat, err = pareto.AnnotateLatencies(ctx, frontier, fp.u, fp.pct, fp.spec, s.cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("serve: frontier latency annotation: %w", err)
		}
	}
	latFor := make(map[string]float64, len(lat))
	resp.Frontier = make([]FrontierPoint, len(frontier))
	for i, p := range frontier {
		resp.Frontier[i] = frontierPoint(p)
		if lat != nil {
			resp.Frontier[i].ResponseSeconds = lat[i]
			latFor[resp.Frontier[i].Mix] = lat[i]
		}
	}

	if deadline > 0 || energy > 0 {
		sweet := pareto.SweetRegion(frontier, units.Seconds(deadline), units.Joules(energy))
		resp.SweetRegion = make([]FrontierPoint, len(sweet))
		best := -1
		for i, p := range sweet {
			resp.SweetRegion[i] = frontierPoint(p)
			resp.SweetRegion[i].ResponseSeconds = latFor[resp.SweetRegion[i].Mix]
			if best < 0 || p.Energy < sweet[best].Energy {
				best = i
			}
		}
		if best >= 0 {
			rec := resp.SweetRegion[best]
			resp.Recommended = &rec
		}
	} else if p, ok := pareto.MinEDP(frontier); ok {
		rec := frontierPoint(p)
		rec.ResponseSeconds = latFor[rec.Mix]
		resp.Recommended = &rec
	}
	return resp, nil
}

func frontierPoint(p pareto.Point) FrontierPoint {
	return FrontierPoint{
		Mix:            p.Config.String(),
		TimeSeconds:    float64(p.Time),
		EnergyJoules:   float64(p.Energy),
		PeakWatts:      float64(p.Config.NominalPeak()),
		MeanPowerWatts: float64(p.Result.BusyPower),
	}
}

// HealthResponse is the /v1/healthz and /v1/readyz response body.
type HealthResponse struct {
	Status string `json:"status"`
}

// handleHealthz reports process liveness: it answers 200 as long as the
// process can serve HTTP at all, including during drain.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleReadyz reports whether the service should receive new traffic:
// 200 "ready" while serving, 503 "draining" once Shutdown has begun —
// the flip happens before the listener drains, so load balancers see
// the instance leave the pool ahead of the drain.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ready"})
}

// computeError maps a computation error onto the HTTP error envelope:
// context errors (deadline, disconnect) become 504, everything else
// 400 — by the time computation starts, inputs were syntactically valid,
// so remaining failures are semantic (e.g. unstable queue).
func (s *Server) computeError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.deadlineError(w, r, err)
		return
	}
	writeError(w, http.StatusBadRequest, "bad_request", err.Error())
}

// allowGet enforces GET/HEAD on read-only endpoints.
func allowGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not allowed", r.Method))
		return false
	}
	return true
}

// allowGetBatch enforces GET/HEAD on the batch-capable endpoints, whose
// POST form was already dispatched; the Allow header advertises it.
func allowGetBatch(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD, POST")
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not allowed", r.Method))
		return false
	}
	return true
}

// parseFloatParam parses a float query parameter. With required=false
// an empty raw value yields (0, true).
func parseFloatParam(w http.ResponseWriter, raw, name string, required bool) (float64, bool) {
	if raw == "" {
		if required {
			writeError(w, http.StatusBadRequest, "bad_request", "missing "+name+"=")
			return 0, false
		}
		return 0, true
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("invalid %s=%q: %v", name, raw, err))
		return 0, false
	}
	return v, true
}

// parseIntParam parses an integer query parameter with a default for
// the empty value.
func parseIntParam(w http.ResponseWriter, raw, name string, def int) (int, bool) {
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("invalid %s=%q: want a non-negative integer", name, raw))
		return 0, false
	}
	return v, true
}

// parsePercentiles parses the comma-separated p= list, defaulting to
// 50,95,99.
func parsePercentiles(w http.ResponseWriter, raw string) ([]float64, bool) {
	if raw == "" {
		return []float64{50, 95, 99}, true
	}
	parts := strings.Split(raw, ",")
	if len(parts) > maxPercentiles {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("at most %d percentiles per request, got %d", maxPercentiles, len(parts)))
		return nil, false
	}
	ps := make([]float64, 0, len(parts))
	for _, part := range parts {
		p, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || p < 0 || p >= 100 {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("invalid percentile %q: want a number in [0, 100)", part))
			return nil, false
		}
		ps = append(ps, p)
	}
	return ps, true
}

// parseDurationOrSeconds accepts both Go duration syntax ("1.5s",
// "300ms") and a bare number of seconds ("1.5").
func parseDurationOrSeconds(raw string) (float64, error) {
	if v, err := strconv.ParseFloat(raw, 64); err == nil {
		if v < 0 {
			return 0, errors.New("must be non-negative")
		}
		return v, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, err
	}
	if d < 0 {
		return 0, errors.New("must be non-negative")
	}
	return d.Seconds(), nil
}
