package serve

import "repro/internal/telemetry"

// instruments holds the service-level instruments, resolved once at
// server construction. Per-route request counters and latency
// histograms come from telemetry.HTTPMiddleware; these cover the
// cross-cutting admission, coalescing and failure paths.
type instruments struct {
	// admitted counts requests that acquired execution units.
	admitted *telemetry.Counter
	// admittedUnits counts the admission units those requests charged:
	// a scalar request costs 1, a batch of N items costs N, a frontier
	// sweep costs units proportional to its configuration-space size.
	admittedUnits *telemetry.Counter
	// shed counts requests rejected with 429 because the wait queue was
	// full.
	shed *telemetry.Counter
	// queueWaits counts requests that found every slot busy and had to
	// wait in the admission queue before executing.
	queueWaits *telemetry.Counter
	// coalesced counts requests served from another identical in-flight
	// request's result instead of computing their own.
	coalesced *telemetry.Counter
	// panics counts handler panics converted into 500 responses.
	panics *telemetry.Counter
	// deadlineExceeded counts requests that ran out of deadline — while
	// queued or while computing — and were answered with 504.
	deadlineExceeded *telemetry.Counter
	// inflight is the number of admission units currently held by
	// executing requests.
	inflight *telemetry.Gauge
	// queueDepth is the number of requests currently waiting for units.
	queueDepth *telemetry.Gauge

	// batchRequests counts batch (POST) evaluation requests; batchItems
	// the expanded per-item evaluations they carried; batchItemErrors
	// the items that failed with a per-item error envelope.
	batchRequests   *telemetry.Counter
	batchItems      *telemetry.Counter
	batchItemErrors *telemetry.Counter
}

func newInstruments(reg *telemetry.Registry) instruments {
	return instruments{
		admitted:         reg.Counter("serve.admitted"),
		admittedUnits:    reg.Counter("serve.admitted_units"),
		shed:             reg.Counter("serve.shed"),
		queueWaits:       reg.Counter("serve.queue_waits"),
		coalesced:        reg.Counter("serve.coalesced"),
		panics:           reg.Counter("serve.panics"),
		deadlineExceeded: reg.Counter("serve.deadline_exceeded"),
		inflight:         reg.Gauge("serve.inflight"),
		queueDepth:       reg.Gauge("serve.queue_depth"),
		batchRequests:    reg.Counter("serve.batch.requests"),
		batchItems:       reg.Counter("serve.batch.items"),
		batchItemErrors:  reg.Counter("serve.batch.item_errors"),
	}
}
