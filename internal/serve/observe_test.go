package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// logBuffer is a goroutine-safe log sink for handler tests.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// Lines returns the non-empty log lines captured so far.
func (l *logBuffer) Lines() []string {
	s := strings.TrimSpace(l.String())
	if s == "" {
		return nil
	}
	return strings.Split(s, "\n")
}

// newLoggedServer builds a Server whose JSON debug-level logs land in
// the returned buffer. Requests go through srv.Handler() directly
// (synchronously), so log lines are complete when ServeHTTP returns.
func newLoggedServer(t *testing.T, cfg Config) (*Server, *logBuffer) {
	t.Helper()
	buf := &logBuffer{}
	logger, err := telemetry.NewLogger(buf, "json", "debug")
	if err != nil {
		t.Fatalf("NewLogger: %v", err)
	}
	cfg.Logger = logger
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.ready.Store(true)
	return srv, buf
}

// do issues one synchronous request through the full handler chain.
func do(t *testing.T, srv *Server, method, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

// accessLine finds the last access-log line for the given route and
// decodes it into a generic map.
func accessLine(t *testing.T, buf *logBuffer, route string) map[string]any {
	t.Helper()
	var found map[string]any
	for _, line := range buf.Lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		if rec["msg"] == "request" && rec["route"] == route {
			found = rec
		}
	}
	if found == nil {
		t.Fatalf("no access-log line for route %q in:\n%s", route, buf.String())
	}
	return found
}

// TestRequestIDEndToEnd follows one request through the three places
// its ID must appear: the X-Request-ID response header, the access-log
// line, and the route histogram's OpenMetrics exemplar.
func TestRequestIDEndToEnd(t *testing.T) {
	srv, buf := newLoggedServer(t, Config{})
	const inbound = "e2e-test-id.0001"
	rec := do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=0.9", map[string]string{"X-Request-ID": inbound})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	// 1. Response header echoes the sanitized inbound ID.
	if got := rec.Header().Get("X-Request-ID"); got != inbound {
		t.Fatalf("X-Request-ID header %q, want %q", got, inbound)
	}
	// 2. The access-log line carries the same ID plus the RED and
	// attribution fields.
	line := accessLine(t, buf, "percentiles")
	if line["request_id"] != inbound {
		t.Fatalf("access log request_id %v, want %q", line["request_id"], inbound)
	}
	for _, key := range []string{"status", "duration", "bytes", "outcome",
		"configs_evaluated", "cache_hits", "cache_misses", "coalesced"} {
		if _, ok := line[key]; !ok {
			t.Errorf("access log missing %q: %v", key, line)
		}
	}
	if line["status"] != float64(200) || line["outcome"] != "ok" {
		t.Fatalf("access log status/outcome = %v/%v", line["status"], line["outcome"])
	}
	// The percentile solves behind this request must be attributed.
	hits, _ := line["cache_hits"].(float64)
	misses, _ := line["cache_misses"].(float64)
	if hits+misses == 0 {
		t.Fatalf("no percentile-cache attribution on the access log: %v", line)
	}
	// 3. The OpenMetrics exposition carries the ID as an exemplar on the
	// route's latency histogram.
	mrec := do(t, srv, http.MethodGet, "/metrics", map[string]string{"Accept": "application/openmetrics-text"})
	body := mrec.Body.String()
	if !strings.Contains(body, `http_percentiles_seconds_bucket`) {
		t.Fatalf("/metrics missing percentiles histogram:\n%s", body)
	}
	if !strings.Contains(body, `# {request_id="`+inbound+`"}`) {
		t.Fatalf("/metrics missing exemplar for %q:\n%s", inbound, body)
	}
	if !strings.HasSuffix(strings.TrimSpace(body), "# EOF") {
		t.Fatal("OpenMetrics exposition must end with # EOF")
	}
}

func TestRequestIDMintedAndSanitized(t *testing.T) {
	srv, _ := newLoggedServer(t, Config{})
	// No inbound header: a fresh 16-hex ID is minted.
	rec := do(t, srv, http.MethodGet, "/v1/healthz", nil)
	if id := rec.Header().Get("X-Request-ID"); len(id) != 16 {
		t.Fatalf("minted ID %q, want 16 hex chars", id)
	}
	// A hostile inbound ID (spaces, quotes — log/exemplar injection) is
	// replaced, not echoed.
	rec = do(t, srv, http.MethodGet, "/v1/healthz", map[string]string{"X-Request-ID": `evil" id`})
	if id := rec.Header().Get("X-Request-ID"); strings.Contains(id, `"`) || strings.Contains(id, " ") || len(id) != 16 {
		t.Fatalf("hostile inbound ID echoed as %q", id)
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-123_x.Y":           "abc-123_x.Y",
		"":                      "",
		"has space":             "",
		`q"uote`:                "",
		"newline\nx":            "",
		"ünïcode":               "",
		strings.Repeat("a", 64): strings.Repeat("a", 64),
		strings.Repeat("a", 65): "",
	} {
		if got := sanitizeRequestID(in); got != want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestAccessLogFrontierAttribution: a frontier request's line must
// carry the sweep attribution accumulated below the handler.
func TestAccessLogFrontierAttribution(t *testing.T) {
	srv, buf := newLoggedServer(t, Config{})
	rec := do(t, srv, http.MethodGet, "/v1/frontier?workload=EP&max_a9=3&max_k10=2", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	line := accessLine(t, buf, "frontier")
	if n, _ := line["configs_evaluated"].(float64); n <= 0 {
		t.Fatalf("configs_evaluated = %v, want > 0: %v", line["configs_evaluated"], line)
	}
	if n, _ := line["sweep_items"].(float64); n <= 0 {
		t.Fatalf("sweep_items = %v, want > 0: %v", line["sweep_items"], line)
	}
}

// TestSlowRequestLogFires: with a tiny threshold every request is
// "slow"; the sampled warn line with the phase timeline must appear.
func TestSlowRequestLogFires(t *testing.T) {
	srv, buf := newLoggedServer(t, Config{SlowRequest: time.Nanosecond})
	do(t, srv, http.MethodGet, "/v1/frontier?workload=EP&max_a9=2&max_k10=1", nil)
	var slow map[string]any
	for _, line := range buf.Lines() {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line %q is not JSON: %v", line, err)
		}
		if rec["msg"] == "slow request" {
			slow = rec
		}
	}
	if slow == nil {
		t.Fatalf("no slow-request line in:\n%s", buf.String())
	}
	if slow["level"] != "WARN" {
		t.Fatalf("slow request logged at %v, want WARN", slow["level"])
	}
	timeline, _ := slow["timeline"].(string)
	if !strings.Contains(timeline, "sweep.blocks@") {
		t.Fatalf("slow-request timeline %q missing sweep phase", timeline)
	}
	if _, ok := slow["request_id"]; !ok {
		t.Fatalf("slow-request line missing request_id: %v", slow)
	}
}

// TestSlowRequestDisabled: negative threshold disables slow logging.
func TestSlowRequestDisabled(t *testing.T) {
	srv, buf := newLoggedServer(t, Config{SlowRequest: -1})
	do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=0.5", nil)
	if strings.Contains(buf.String(), "slow request") {
		t.Fatalf("slow logging fired despite negative threshold:\n%s", buf.String())
	}
}

// TestSlowRequestSampled: back-to-back slow requests within the sample
// interval produce exactly one slow line.
func TestSlowRequestSampled(t *testing.T) {
	srv, buf := newLoggedServer(t, Config{SlowRequest: time.Nanosecond})
	for i := 0; i < 5; i++ {
		do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=0.5", nil)
	}
	if n := strings.Count(buf.String(), `"slow request"`); n != 1 {
		t.Fatalf("%d slow-request lines for 5 requests inside one sample interval, want 1", n)
	}
}

func TestProbeLogsAtDebug(t *testing.T) {
	srv, buf := newLoggedServer(t, Config{})
	do(t, srv, http.MethodGet, "/v1/healthz", nil)
	line := accessLine(t, buf, "healthz")
	if line["level"] != "DEBUG" {
		t.Fatalf("probe access log at %v, want DEBUG", line["level"])
	}
}

func TestAccessLogShedOutcome(t *testing.T) {
	reg := telemetry.New()
	srv, buf := newLoggedServer(t, Config{Telemetry: reg, MaxInflight: 1, MaxQueue: -1})
	// Hold the only slot so the next request sheds.
	release := make(chan struct{})
	go func() {
		rel, _ := srv.lim.acquire(context.Background(), 1) // free slot guaranteed
		<-release
		rel()
	}()
	for srv.ins.inflight.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	rec := do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=0.5", nil)
	close(release)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", rec.Code)
	}
	line := accessLine(t, buf, "percentiles")
	if line["outcome"] != "shed" {
		t.Fatalf("outcome %v, want shed: %v", line["outcome"], line)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv, _ := newLoggedServer(t, Config{})
	rec := do(t, srv, http.MethodGet, "/v1/version", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var info BuildInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("decoding /v1/version: %v", err)
	}
	if info.Service != "epserve" || info.GoVersion == "" || info.Version == "" {
		t.Fatalf("BuildInfo %+v", info)
	}
	if s := info.String(); !strings.Contains(s, "epserve") || !strings.Contains(s, info.GoVersion) {
		t.Fatalf("BuildInfo.String() = %q", s)
	}
}

// TestDebugStatsRoundTrip: /v1/debug/stats must be valid JSON that
// decodes into DebugStatsResponse with the per-route RED and SLO data
// filled in after traffic.
func TestDebugStatsRoundTrip(t *testing.T) {
	reg := telemetry.New()
	srv, _ := newLoggedServer(t, Config{Telemetry: reg})
	// The queueing kernel registers its counters on the process-global
	// registry (cmd/epserve installs one); mirror that wiring here so the
	// snapshot includes them.
	telemetry.SetGlobal(reg)
	t.Cleanup(func() { telemetry.SetGlobal(nil) })
	for i := 0; i < 3; i++ {
		do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=0.9", nil)
	}
	do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=1.5", nil) // 400

	rec := do(t, srv, http.MethodGet, "/v1/debug/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var stats DebugStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("decoding /v1/debug/stats: %v", err)
	}
	if stats.Service != "epserve" || stats.Build.GoVersion == "" {
		t.Fatalf("service/build block %+v", stats)
	}
	rs, ok := stats.Routes["percentiles"]
	if !ok {
		t.Fatalf("routes missing percentiles: %v", stats.Routes)
	}
	if rs.Requests != 4 || rs.Status["2xx"] != 3 || rs.Status["4xx"] != 1 {
		t.Fatalf("percentiles RED %+v", rs)
	}
	if rs.Latency == nil || rs.Latency.Count != 4 || rs.Latency.P99Seconds <= 0 {
		t.Fatalf("percentiles latency %+v", rs.Latency)
	}
	if rs.SLO == nil || rs.SLO.Good+rs.SLO.Breach != 4 {
		t.Fatalf("percentiles SLO %+v", rs.SLO)
	}
	if stats.Admission.Admitted != 4 {
		t.Fatalf("admitted = %d, want 4", stats.Admission.Admitted)
	}
	if _, ok := stats.Counters["serve.admitted"]; !ok {
		t.Fatalf("counters missing serve.admitted: %v", stats.Counters)
	}
	if _, ok := stats.Counters["queueing.percentile_cache_misses"]; !ok {
		t.Fatalf("counters missing queueing cache counters: %v", stats.Counters)
	}
	for name := range stats.Counters {
		if strings.HasPrefix(name, "http.") || strings.HasPrefix(name, "slo.") {
			t.Fatalf("counter %q should be folded into Routes, not repeated", name)
		}
	}
	// Round-trip: the decoded struct re-marshals cleanly.
	if _, err := json.Marshal(stats); err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
}

func TestSLOTracker(t *testing.T) {
	reg := telemetry.New()
	tr := newSLOTracker(reg, "percentiles", SLOTarget{P99: 10 * time.Millisecond, Goal: 0.9})
	tr.observe(time.Millisecond, 200)    // good
	tr.observe(20*time.Millisecond, 200) // breach: too slow
	tr.observe(time.Millisecond, 500)    // breach: 5xx
	tr.observe(time.Millisecond, 429)    // breach: shed
	tr.observe(time.Millisecond, 404)    // good: client error inside latency target
	st := tr.status()
	if st.Good != 2 || st.Breach != 3 {
		t.Fatalf("good/breach = %d/%d, want 2/3", st.Good, st.Breach)
	}
	if want := 2.0 / 5.0; st.Compliance != want {
		t.Fatalf("compliance %g, want %g", st.Compliance, want)
	}
	// Budget: (1-0.9)*5 = 0.5 allowed breaches; 3 spent → 6x over.
	if want := 3 / 0.5; math.Abs(st.BudgetUsed-want) > 1e-9 {
		t.Fatalf("budget used %g, want %g", st.BudgetUsed, want)
	}
	if reg.Counter("slo.percentiles.breach").Value() != 3 {
		t.Fatal("breach counter not exported on the registry")
	}

	// Nil tracker (route without an SLO) is a no-op with no status.
	var nilTr *sloTracker
	nilTr.observe(time.Second, 500)
	if nilTr.status() != nil {
		t.Fatal("nil tracker must have nil status")
	}

	// Empty tracker: full compliance, zero burn.
	empty := newSLOTracker(reg, "other", SLOTarget{P99: time.Second, Goal: 0.99})
	if st := empty.status(); st.Compliance != 1 || st.BudgetUsed != 0 {
		t.Fatalf("empty tracker status %+v", st)
	}
}
