// Package serve is the long-running evaluation service over the
// repository's energy-proportionality model: epserve exposes the M/D/1
// tail-latency kernel, the Table 3 proportionality metrics and the
// energy-deadline Pareto frontier as HTTP endpoints
// (/v1/percentiles, /v1/epmetrics, /v1/frontier), plus health/readiness
// probes, a Prometheus /metrics exposition and /debug/pprof.
//
// The service is built to stay up under overload: a bounded admission
// semaphore sized off GOMAXPROCS with queue-depth load shedding
// (429 + Retry-After), per-request deadlines propagated through
// context.Context into the queueing kernel and the sweep worker pool,
// singleflight coalescing of identical in-flight requests layered on
// the kernel's scale-invariant percentile cache, panic recovery that
// converts handler panics into 500s without killing the process, and
// graceful shutdown in which readiness flips before the listener
// drains. See docs/API.md for the endpoint reference and
// docs/METRICS.md for every metric the service emits.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hardware"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Config parameterizes a Server. The zero value of every field selects
// a production-safe default.
type Config struct {
	// Catalog is the node-type catalog served; nil uses the built-in
	// A9/K10 (+A15/XeonE5) catalog.
	Catalog *hardware.Catalog
	// Workloads is the workload registry served; nil uses the six
	// calibrated paper workloads over Catalog.
	Workloads *workload.Registry
	// Telemetry receives the service's instruments and backs /metrics;
	// nil uses the process-global registry at construction time (which
	// may itself be nil, disabling collection but not the service).
	Telemetry *telemetry.Registry
	// Logger receives the service's structured logs: one access-log line
	// per request, sampled slow-request lines, and lifecycle events. nil
	// disables logging (matching the rest of the telemetry stack, which
	// is off until explicitly enabled). The handler is wrapped so that
	// request-scoped records automatically carry the request ID.
	Logger *slog.Logger
	// SlowRequest is the latency threshold past which a finished request
	// is logged at warn level with its phase timeline (sampled to at most
	// one line per route per second); 0 means 1s, negative disables.
	SlowRequest time.Duration
	// SLOTargets overrides the per-route latency objectives, keyed by
	// route label ("percentiles", "frontier", ...); nil uses
	// DefaultSLOTargets. Routes absent from the map get no SLO tracking.
	SLOTargets map[string]SLOTarget

	// MaxInflight bounds concurrently executing model requests;
	// 0 means 2*GOMAXPROCS (the endpoints are CPU-bound, so admitting
	// far past the core count only grows tail latency).
	MaxInflight int
	// MaxQueue bounds requests waiting for a slot before load shedding
	// begins; 0 means 4*MaxInflight, negative means no waiting (shed as
	// soon as every slot is busy).
	MaxQueue int
	// DefaultTimeout is the per-request deadline when the client does
	// not pass ?timeout=; 0 means 10s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested ?timeout= values; 0 means 60s.
	MaxTimeout time.Duration
	// MaxFrontierConfigs caps the configuration-space size a single
	// /v1/frontier request may ask to sweep; 0 means 131072.
	MaxFrontierConfigs int
	// MaxReplaySteps caps the trace length a single /v1/replay request
	// may ask to replay (each step costs percentile solves); 0 means
	// 65536.
	MaxReplaySteps int
	// Workers is the sweep worker-pool width for frontier requests;
	// 0 means GOMAXPROCS.
	Workers int
}

// withDefaults returns cfg with every zero field resolved.
func (c Config) withDefaults() (Config, error) {
	if c.Catalog == nil {
		c.Catalog = hardware.DefaultCatalog()
	}
	if c.Workloads == nil {
		reg, err := workload.PaperRegistry(c.Catalog)
		if err != nil {
			return c, fmt.Errorf("serve: building workload registry: %w", err)
		}
		c.Workloads = reg
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.Global()
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxInflight
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxFrontierConfigs <= 0 {
		c.MaxFrontierConfigs = 1 << 17
	}
	if c.MaxReplaySteps <= 0 {
		c.MaxReplaySteps = 1 << 16
	}
	if c.Logger == nil {
		c.Logger = telemetry.DiscardLogger()
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = time.Second
	}
	if c.SLOTargets == nil {
		c.SLOTargets = DefaultSLOTargets()
	}
	return c, nil
}

// Server is the epserve HTTP service. Construct with New, start with
// Serve or ListenAndServe, stop with Shutdown.
type Server struct {
	cfg      Config
	ins      instruments
	lim      *limiter
	flights  flightGroup
	analyses analysisCache
	mux      *http.ServeMux
	hs       *http.Server
	ready    atomic.Bool

	logger        *slog.Logger
	slowThreshold time.Duration
	slos          map[string]*sloTracker
	routes        []string // route labels in registration order
	build         BuildInfo
	started       time.Time

	// tables caches one memoized unit-calc table per workload profile
	// (keyed by the registry's *workload.Profile pointer) so repeated
	// frontier sweeps share a warm memo instead of rebuilding it. A
	// Table only ever grows monotonically under its own lock, so
	// concurrent sweeps may share an entry freely.
	tables sync.Map
}

// New builds a Server from cfg (see Config for defaults).
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:           cfg,
		ins:           newInstruments(cfg.Telemetry),
		slowThreshold: cfg.SlowRequest,
		build:         ReadBuildInfo(),
		started:       time.Now(),
	}
	// The configured handler is wrapped (idempotently) so request-scoped
	// records always carry the request ID, whatever handler the caller
	// built.
	s.logger = slog.New(telemetry.NewContextHandler(cfg.Logger.Handler()))
	s.lim = newLimiter(cfg.MaxInflight, cfg.MaxQueue, &s.ins)
	s.slos = make(map[string]*sloTracker, len(cfg.SLOTargets))
	for route, target := range cfg.SLOTargets {
		s.slos[route] = newSLOTracker(cfg.Telemetry, route, target)
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/percentiles", s.apiWeighted("percentiles", s.weighPercentiles, s.handlePercentiles))
	mux.Handle("/v1/epmetrics", s.apiWeighted("epmetrics", s.weighEpmetrics, s.handleEpmetrics))
	mux.Handle("/v1/frontier", s.apiWeighted("frontier", s.weighFrontier, s.handleFrontier))
	mux.Handle("/v1/replay", s.api("replay", s.handleReplay))
	mux.Handle("/v1/healthz", s.probe("healthz", s.handleHealthz))
	mux.Handle("/v1/readyz", s.probe("readyz", s.handleReadyz))
	mux.Handle("/v1/version", s.probe("version", s.handleVersion))
	mux.Handle("/v1/debug/stats", s.probe("debug_stats", s.handleDebugStats))
	mux.Handle("/metrics", s.probe("metrics", cfg.Telemetry.PrometheusHandler().ServeHTTP))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", s.handleIndex)
	s.mux = mux

	s.hs = &http.Server{
		Handler: mux,
		// Bound header read time (slowloris) but leave the body/write
		// budget to the per-request deadline middleware, which knows the
		// real limit.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	return s, nil
}

// Handler returns the service's root handler — useful for tests and for
// mounting the service under an outer mux.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports whether the service is accepting work (true between
// Serve and Shutdown).
func (s *Server) Ready() bool { return s.ready.Load() }

// Serve marks the service ready and serves connections on ln until
// Shutdown. It returns nil after a clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.ready.Store(true)
	err := s.hs.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and calls Serve. It returns the bound
// listener address on the ready channel if addrCh is non-nil (useful
// with ":0" addresses), then blocks like Serve.
func (s *Server) ListenAndServe(addr string, addrCh chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if addrCh != nil {
		addrCh <- ln.Addr()
	}
	return s.Serve(ln)
}

// Shutdown drains the service: readiness flips to false first (so
// load balancers watching /v1/readyz stop routing new work), then the
// listener closes and in-flight requests run to completion, bounded by
// ctx. It is the SIGTERM path of cmd/epserve.
func (s *Server) Shutdown(ctx context.Context) error {
	s.ready.Store(false)
	return s.hs.Shutdown(ctx)
}

// api assembles the middleware chain of a model endpoint, outermost
// first: the request scope (request ID, access log, SLO accounting —
// outermost so everything below shares its RequestContext), per-route
// telemetry (so even shed requests are counted and timed, with the
// request ID as exemplar), panic recovery, the per-request deadline,
// then admission at the default cost of 1 unit.
func (s *Server) api(route string, h http.HandlerFunc) http.Handler {
	return s.apiWeighted(route, nil, h)
}

// apiWeighted is api with a per-route admission weigher: weigh runs
// inside the deadline but before admission, computes the request's
// admission cost, and may rewrite the request (the batch endpoints
// decode their JSON body exactly once here and hand the parsed form to
// the handler through the request context).
func (s *Server) apiWeighted(route string, weigh admissionWeigher, h http.HandlerFunc) http.Handler {
	s.routes = append(s.routes, route)
	inner := s.deadline(s.admission(weigh, h))
	return s.requestScope(route, false,
		s.cfg.Telemetry.HTTPMiddleware(route, s.recovery(inner)))
}

// probe assembles the chain of a health/metrics endpoint: request
// scope, telemetry and panic recovery only — probes must keep answering
// under overload and during drain, so they bypass admission and
// deadlines. Probe access logs sit at debug level so scrapes do not
// drown the real traffic log.
func (s *Server) probe(route string, h http.HandlerFunc) http.Handler {
	s.routes = append(s.routes, route)
	return s.requestScope(route, true,
		s.cfg.Telemetry.HTTPMiddleware(route, s.recovery(h)))
}

// recovery converts a handler panic into a 500 response and counts it,
// keeping the process (and the other in-flight requests) alive. The
// net/http server would otherwise kill the connection with no response;
// a panicking kernel bug must degrade one request, not the service.
func (s *Server) recovery(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.ins.panics.Inc()
				telemetry.RequestFrom(r.Context()).SetOutcome("panic")
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("internal error: %v", rec))
			}
		}()
		next(w, r)
	}
}

// deadline attaches the per-request deadline to the request context:
// the client's ?timeout= (clamped to MaxTimeout) or DefaultTimeout.
// Handlers pass the context into the kernel and sweep pool, so the
// deadline cancels percentile searches and frontier sweeps mid-flight.
func (s *Server) deadline(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		d := s.cfg.DefaultTimeout
		if raw := r.URL.Query().Get("timeout"); raw != "" {
			parsed, err := time.ParseDuration(raw)
			if err != nil {
				writeError(w, http.StatusBadRequest, "bad_request",
					fmt.Sprintf("invalid timeout %q: %v", raw, err))
				return
			}
			if parsed <= 0 {
				writeError(w, http.StatusBadRequest, "bad_request",
					"timeout must be positive")
				return
			}
			d = min(parsed, s.cfg.MaxTimeout)
		}
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next(w, r.WithContext(ctx))
	}
}

// admissionWeigher computes a request's admission cost before the
// semaphore is consulted. It may reject the request itself (writing
// the error and returning ok=false) and may return a rewritten
// *http.Request — the batch endpoints use this to decode the body once
// and stash the parsed form in the request context. A nil weigher
// costs 1 unit.
type admissionWeigher func(w http.ResponseWriter, r *http.Request) (weight int64, req *http.Request, ok bool)

// admission applies the bounded weighted semaphore: shed with 429 +
// Retry-After when the queue is full, 504 when the deadline expires
// while queued. The weigher runs first, so a batch of N items charges
// N units and sheds exactly like N scalar requests would.
func (s *Server) admission(weigh admissionWeigher, next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		weight := int64(1)
		if weigh != nil {
			var ok bool
			weight, r, ok = weigh(w, r)
			if !ok {
				return
			}
		}
		release, err := s.lim.acquire(r.Context(), weight)
		if err != nil {
			if errors.Is(err, errShed) {
				telemetry.RequestFrom(r.Context()).SetOutcome("shed")
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "overloaded",
					"admission queue full, retry later")
				return
			}
			s.deadlineError(w, r, err)
			return
		}
		defer release()
		next(w, r)
	}
}

// deadlineError maps a context error to the 504 response, counter and
// request outcome.
func (s *Server) deadlineError(w http.ResponseWriter, r *http.Request, err error) {
	s.ins.deadlineExceeded.Inc()
	telemetry.RequestFrom(r.Context()).SetOutcome("deadline")
	msg := "request deadline exceeded"
	if errors.Is(err, context.Canceled) {
		msg = "request cancelled"
	}
	writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", msg)
}

// handleIndex serves a JSON endpoint listing at "/" and a JSON 404
// elsewhere, so probes against wrong paths fail loudly and uniformly.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no such endpoint %q", r.URL.Path))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"service": "epserve",
		"endpoints": []string{
			"/v1/percentiles", "/v1/epmetrics", "/v1/frontier", "/v1/replay",
			"/v1/healthz", "/v1/readyz", "/v1/version", "/v1/debug/stats",
			"/metrics", "/debug/pprof/",
		},
	})
}

// errorBody is the uniform error envelope of every non-2xx response.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError writes the JSON error envelope {"error":{code,message}}.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, map[string]errorBody{"error": {Code: code, Message: msg}})
}

// encodeBufPool recycles the JSON encode buffers of writeJSON. Encoding
// into a pooled buffer instead of straight onto the ResponseWriter
// removes the per-response buffer growth from the warm hot path and
// lets the response carry a Content-Length (no chunked framing on
// small bodies).
var encodeBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// encodeBufMax bounds the buffers returned to the pool; one-off giant
// batch responses must not pin their footprint forever.
const encodeBufMax = 1 << 20

// writeJSON writes v as a JSON response with the given status, through
// a pooled encode buffer. Responses are compact: encoder indentation
// re-scans the entire body and dominated the batch hot path's CPU
// profile (~40%) before it was dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := encodeBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	enc := json.NewEncoder(buf)
	if err := enc.Encode(v); err != nil {
		// Marshalling pure value types cannot fail; degrade loudly
		// rather than silently truncating.
		buf.Reset()
		fmt.Fprintf(buf, `{"error":{"code":"internal","message":%q}}`, err.Error())
		status = http.StatusInternalServerError
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(status)
	w.Write(buf.Bytes()) //nolint:errcheck // header already sent; client gone
	if buf.Cap() <= encodeBufMax {
		encodeBufPool.Put(buf)
	}
}
