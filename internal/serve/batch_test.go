package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/queueing"
	"repro/internal/telemetry"
)

// postJSON posts body to the server's handler and returns the recorder.
func postJSON(t *testing.T, srv *Server, target string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal body: %v", err)
	}
	req := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(raw))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

// TestPercentilesBatch: a POST batch expands items × utilization points
// into deterministic item-major results that match the scalar GET
// answers bit for bit, and the batch counters record the expansion.
func TestPercentilesBatch(t *testing.T) {
	reg := telemetry.New()
	// Pin the capacity above the batch weight so the charged units are
	// not clamped on small machines.
	srv, ts := newTestServer(t, Config{Telemetry: reg, MaxInflight: 16})

	body := map[string]any{
		"u": []float64{0.5, 0.9},
		"p": []float64{95},
		"items": []map[string]any{
			{"d": 1.0},
			{"d": 2.0, "u": []float64{0.7}},
			{"workload": "EP", "mix": "32xA9,12xK10"},
		},
	}
	rec := postJSON(t, srv, "/v1/percentiles", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp PercentilesBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding batch response: %v", err)
	}
	// Expansion: item 0 at u=0.5,0.9; item 1 at u=0.7; item 2 at 0.5,0.9.
	if resp.Count != 5 || len(resp.Results) != 5 || resp.Errors != 0 {
		t.Fatalf("count=%d errors=%d len=%d, want 5/0/5: %s", resp.Count, resp.Errors, len(resp.Results), rec.Body.String())
	}
	wantOrder := []struct {
		item int
		u    float64
	}{{0, 0.5}, {0, 0.9}, {1, 0.7}, {2, 0.5}, {2, 0.9}}
	for i, want := range wantOrder {
		got := resp.Results[i]
		if got.Item != want.item || got.U != want.u || got.Result == nil || got.Error != nil {
			t.Fatalf("result[%d] = {item %d, u %g, result? %t}, want {item %d, u %g, result}", i, got.Item, got.U, got.Result != nil, want.item, want.u)
		}
	}
	if hdr := rec.Header().Get("X-Batch-Errors"); hdr != "0" {
		t.Fatalf("X-Batch-Errors = %q, want 0", hdr)
	}

	// The batch answers must match the scalar endpoint exactly.
	status, scalarBody := get(t, ts.URL+"/v1/percentiles?d=1&u=0.9&p=95")
	if status != 200 {
		t.Fatalf("scalar status %d", status)
	}
	var scalar PercentilesResponse
	if err := json.Unmarshal([]byte(scalarBody), &scalar); err != nil {
		t.Fatalf("decoding scalar response: %v", err)
	}
	batched := resp.Results[1].Result
	if batched.MeanWaitSeconds != scalar.MeanWaitSeconds ||
		batched.Percentiles[0].WaitSeconds != scalar.Percentiles[0].WaitSeconds {
		t.Fatalf("batch item diverges from scalar: %+v vs %+v", batched, scalar)
	}

	if got := srv.ins.batchRequests.Value(); got != 1 {
		t.Fatalf("serve.batch.requests = %d, want 1", got)
	}
	if got := srv.ins.batchItems.Value(); got != 5 {
		t.Fatalf("serve.batch.items = %d, want 5", got)
	}
	// The batch charged its expanded count as admission units: 5 for the
	// POST plus 1 for the scalar GET above.
	if got := srv.ins.admittedUnits.Value(); got != 6 {
		t.Fatalf("serve.admitted_units = %d, want 6", got)
	}
}

// TestPercentilesBatchItemErrors: one bad item yields one error
// envelope while the rest of the batch still answers; the batch itself
// is a 200.
func TestPercentilesBatchItemErrors(t *testing.T) {
	reg := telemetry.New()
	srv, _ := newTestServer(t, Config{Telemetry: reg})
	body := map[string]any{
		"u": []float64{0.5},
		"items": []map[string]any{
			{"d": 1.0},
			{"mix": "zzz"},                       // invalid mix
			{"workload": "nope", "mix": "32xA9"}, // unknown workload
			{"d": 1.0, "u": []float64{1.5}},      // u out of range
			{"d": -1.0},                          // bad service time
		},
	}
	rec := postJSON(t, srv, "/v1/percentiles", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp PercentilesBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Count != 5 || resp.Errors != 4 {
		t.Fatalf("count=%d errors=%d, want 5/4: %s", resp.Count, resp.Errors, rec.Body.String())
	}
	if resp.Results[0].Error != nil || resp.Results[0].Result == nil {
		t.Fatalf("good item errored: %s", rec.Body.String())
	}
	wantCodes := map[int]string{1: "bad_request", 2: "not_found", 3: "bad_request", 4: "bad_request"}
	for idx, code := range wantCodes {
		e := resp.Results[idx].Error
		if e == nil || e.Code != code {
			t.Fatalf("result[%d] error = %+v, want code %q", idx, e, code)
		}
	}
	if hdr := rec.Header().Get("X-Batch-Errors"); hdr != "4" {
		t.Fatalf("X-Batch-Errors = %q, want 4", hdr)
	}
	if got := srv.ins.batchItemErrors.Value(); got != 4 {
		t.Fatalf("serve.batch.item_errors = %d, want 4", got)
	}
}

// TestBatchStructuralRejects: structurally invalid batches are rejected
// whole with 400 before admission.
func TestBatchStructuralRejects(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	cases := []struct {
		name     string
		body     any
		contains string
	}{
		{"empty items", map[string]any{"u": []float64{0.5}}, "no items"},
		{"no utilization", map[string]any{"items": []map[string]any{{"d": 1.0}}}, "no utilization points"},
		{"too wide", map[string]any{
			"u":     make([]float64, 128),
			"items": make([]map[string]any, 16),
		}, "more than the per-request cap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postJSON(t, srv, "/v1/percentiles", tc.body)
			if rec.Code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body.String())
			}
			if !strings.Contains(rec.Body.String(), tc.contains) {
				t.Fatalf("body %q missing %q", rec.Body.String(), tc.contains)
			}
		})
	}
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/percentiles", strings.NewReader("{not json"))
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), "invalid JSON") {
		t.Fatalf("bad JSON: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestEpmetricsBatch: the EP-metrics batch answers per item with
// request-level workload/ref defaulting.
func TestEpmetricsBatch(t *testing.T) {
	srv, _ := newTestServer(t, Config{Telemetry: telemetry.New()})
	body := map[string]any{
		"workload": "EP",
		"items": []map[string]any{
			{"mix": "32xA9,12xK10"},
			{"mix": "16xA9,2xK10", "ref": "32xA9,12xK10"},
			{"mix": ""}, // per-item error
		},
	}
	rec := postJSON(t, srv, "/v1/epmetrics", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp EPMetricsBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Count != 3 || resp.Errors != 1 {
		t.Fatalf("count=%d errors=%d, want 3/1", resp.Count, resp.Errors)
	}
	if r := resp.Results[0]; r.Result == nil || r.Result.Metrics.DPR == 0 {
		t.Fatalf("result[0] = %+v, want metrics", r)
	}
	if r := resp.Results[1]; r.Result == nil || r.Result.Reference == nil {
		t.Fatalf("result[1] missing reference block: %+v", r)
	}
	if r := resp.Results[2]; r.Error == nil || !strings.Contains(r.Error.Message, "missing mix") {
		t.Fatalf("result[2] = %+v, want missing-mix error", r)
	}
}

// TestFrontierBatch: the frontier batch answers per item, coalescing
// identical sweeps, and defaults MaxA9/MaxK10 like the GET form.
func TestFrontierBatch(t *testing.T) {
	srv, _ := newTestServer(t, Config{Telemetry: telemetry.New()})
	four, two := 4, 2
	body := FrontierBatchRequest{Items: []FrontierBatchItem{
		{MaxA9: &four, MaxK10: &two},
		{MaxA9: &four, MaxK10: &two, DeadlineSeconds: 10},
		{Workload: "nope", MaxA9: &four, MaxK10: &two},
	}}
	rec := postJSON(t, srv, "/v1/frontier", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var resp FrontierBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Count != 3 || resp.Errors != 1 {
		t.Fatalf("count=%d errors=%d, want 3/1: %s", resp.Count, resp.Errors, rec.Body.String())
	}
	if r := resp.Results[0]; r.Result == nil || len(r.Result.Frontier) == 0 {
		t.Fatalf("result[0] = %+v, want frontier points", r)
	}
	if r := resp.Results[1]; r.Result == nil || r.Result.Recommended == nil {
		t.Fatalf("result[1] missing recommended point: %+v", r)
	}
	if r := resp.Results[2]; r.Error == nil || r.Error.Code != "not_found" {
		t.Fatalf("result[2] = %+v, want not_found", r)
	}
}

// TestBatchWeightedAdmission: a batch of N items charges N units, so it
// sheds exactly like N scalar requests would — the regression this
// guards is batches slipping past admission at scalar cost (one unit
// for hundreds of evaluations).
func TestBatchWeightedAdmission(t *testing.T) {
	reg := telemetry.New()
	srv, _ := newTestServer(t, Config{Telemetry: reg, MaxInflight: 4, MaxQueue: -1})

	// Hold 3 of the 4 units directly: one unit stays free.
	release, err := srv.lim.acquire(context.Background(), 3)
	if err != nil {
		t.Fatalf("acquire: %v", err)
	}

	// A batch expanding to 2 evaluations needs 2 units -> shed.
	body := map[string]any{"u": []float64{0.5, 0.9}, "items": []map[string]any{{"d": 1.0}}}
	rec := postJSON(t, srv, "/v1/percentiles", body)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("wide batch status %d, want 429: %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("429 missing Retry-After")
	}
	if got := srv.ins.shed.Value(); got != 1 {
		t.Fatalf("serve.shed = %d, want 1", got)
	}

	// A scalar request (1 unit) still fits.
	if rec := do(t, srv, http.MethodGet, "/v1/percentiles?d=1&u=0.5", nil); rec.Code != http.StatusOK {
		t.Fatalf("scalar status %d, want 200: %s", rec.Code, rec.Body.String())
	}

	// After release the same batch is admitted and charged 2 units.
	release()
	units := srv.ins.admittedUnits.Value()
	rec = postJSON(t, srv, "/v1/percentiles", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch after release: status %d: %s", rec.Code, rec.Body.String())
	}
	if got := srv.ins.admittedUnits.Value() - units; got != 2 {
		t.Fatalf("batch charged %d units, want 2", got)
	}
}

// TestBatchWiderThanCapacity: a batch wider than the whole admission
// budget is clamped to it and still runs (alone) instead of
// deadlocking or shedding an empty server.
func TestBatchWiderThanCapacity(t *testing.T) {
	srv, _ := newTestServer(t, Config{Telemetry: telemetry.New(), MaxInflight: 2, MaxQueue: 2})
	us := make([]float64, 8)
	for i := range us {
		us[i] = 0.1 + 0.1*float64(i)
	}
	body := map[string]any{"u": us, "items": []map[string]any{{"d": 1.0}}}
	rec := postJSON(t, srv, "/v1/percentiles", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", rec.Code, rec.Body.String())
	}
	var resp PercentilesBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Count != 8 || resp.Errors != 0 {
		t.Fatalf("count=%d errors=%d, want 8/0", resp.Count, resp.Errors)
	}
}

// TestFrontierAdmissionWeight: a frontier sweep charges admission units
// proportional to its configuration-space size — the satellite bugfix
// this pins is sweeps costing one unit regardless of whether they
// evaluate 40 configurations or 100k.
func TestFrontierAdmissionWeight(t *testing.T) {
	srv, _ := newTestServer(t, Config{Telemetry: telemetry.New()})

	// Small sweep: space below one admission unit -> weight 1.
	req := httptest.NewRequest(http.MethodGet, "/v1/frontier?max_a9=4&max_k10=2", nil)
	w, _, ok := srv.weighFrontier(httptest.NewRecorder(), req)
	if !ok || w != 1 {
		t.Fatalf("small sweep weight = %d ok=%t, want 1", w, ok)
	}

	// DVFS sweep: the space multiplies past frontierAdmissionUnit, and
	// the weigher must agree with the plan's own space count.
	req = httptest.NewRequest(http.MethodGet, "/v1/frontier?max_a9=16&max_k10=8&dvfs=1", nil)
	p, ok := frontierQueryParams(discardResponseWriter{}, req.URL.Query())
	if !ok {
		t.Fatal("parsing dvfs query")
	}
	_, space, _, err := srv.frontierPlan(p)
	if err != nil {
		t.Fatalf("frontierPlan: %v", err)
	}
	w, _, ok = srv.weighFrontier(httptest.NewRecorder(), req)
	if !ok || w != frontierUnits(space) {
		t.Fatalf("dvfs sweep weight = %d, want %d (space %d)", w, frontierUnits(space), space)
	}
	if w < 2 {
		t.Fatalf("dvfs sweep weight = %d, want proportional cost > 1 (space %d)", w, space)
	}

	// Batch weight is the sum of the items' sweep costs.
	four, two := 4, 2
	body, _ := json.Marshal(FrontierBatchRequest{Items: []FrontierBatchItem{
		{MaxA9: &four, MaxK10: &two},
		{MaxA9: &four, MaxK10: &two},
	}})
	preq := httptest.NewRequest(http.MethodPost, "/v1/frontier", bytes.NewReader(body))
	w, _, ok = srv.weighFrontier(httptest.NewRecorder(), preq)
	if !ok || w != 2 {
		t.Fatalf("frontier batch weight = %d ok=%t, want 2", w, ok)
	}
}

// TestScalarBatchCoalescing: a scalar GET and a batch item asking the
// same question while an identical computation is in flight both join
// it as followers — the flight key is canonical across transports.
func TestScalarBatchCoalescing(t *testing.T) {
	reg := telemetry.New()
	srv, ts := newTestServer(t, Config{Telemetry: reg})

	// Install a gated leader under the exact flight key both the scalar
	// parse path and the batch expansion produce for (d=1, u=0.7, p
	// default). The sentinel mean is impossible for a real computation.
	key := pctFlightKey("", "", 1, 0.7, []float64{50, 95, 99}, queueing.DefaultSpec())
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		srv.flights.do(context.Background(), key, func() (any, error) { //nolint:errcheck // sentinel flight
			<-gate
			return &PercentilesResponse{
				Utilization:        0.7,
				ServiceTimeSeconds: 1,
				MeanWaitSeconds:    123456,
				Percentiles:        []PercentilePoint{{P: 50}, {P: 95}, {P: 99}},
			}, nil
		})
	}()
	waitFor(t, "leader in flight", func() bool {
		srv.flights.mu.Lock()
		_, ok := srv.flights.m[key]
		srv.flights.mu.Unlock()
		return ok
	})

	type result struct {
		status int
		body   string
	}
	results := make(chan result, 2)
	go func() { // scalar follower
		status, body := get(t, ts.URL+"/v1/percentiles?d=1&u=0.7")
		results <- result{status, body}
	}()
	go func() { // batch follower
		raw, _ := json.Marshal(map[string]any{
			"items": []map[string]any{{"d": 1.0, "u": []float64{0.7}}},
		})
		resp, err := http.Post(ts.URL+"/v1/percentiles", "application/json", bytes.NewReader(raw))
		if err != nil {
			results <- result{-1, err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{resp.StatusCode, string(body)}
	}()

	// Both requests must be blocked on the leader before it finishes.
	waitFor(t, "two followers on the flight", func() bool {
		return srv.flights.waiting(key) >= 2
	})
	close(gate)
	<-leaderDone

	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("follower status %d: %s", r.status, r.body)
		}
		if !strings.Contains(r.body, "123456") {
			t.Fatalf("follower did not coalesce onto the leader's result: %s", r.body)
		}
	}
	if got := srv.ins.coalesced.Value(); got != 2 {
		t.Fatalf("serve.coalesced = %d, want 2", got)
	}
}
