package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/telemetry"
)

func TestRunAgainstServe(t *testing.T) {
	srv, err := serve.New(serve.Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if res.TransportErrors != 0 {
		t.Fatalf("%d transport errors", res.TransportErrors)
	}
	if n := res.Count5xx(); n != 0 {
		t.Fatalf("%d 5xx responses: %v", n, res.Status)
	}
	if res.Status[200] == 0 {
		t.Fatalf("no 200s: %v", res.Status)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.Latency(99) <= 0 || res.Latency(50) > res.Latency(99) {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", res.Latency(50), res.Latency(99))
	}
	out := res.String()
	for _, want := range []string{"requests", "status 200", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := loadgen.Run(context.Background(), loadgen.Config{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
}

// TestOpenLoop: a modest fixed-rate run against a healthy server
// achieves (approximately) the offered rate, reports it, and carries
// batch POST targets whose per-item errors surface separately.
func TestOpenLoop(t *testing.T) {
	srv, err := serve.New(serve.Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// One item is invalid (u out of range) -> one batch item error per
	// batch response.
	batchBody := []byte(`{"p":[99],"items":[{"d":1,"u":[0.5]},{"d":1,"u":[1.5]}]}`)
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Targets:     []loadgen.Target{{Path: "/v1/percentiles", Body: batchBody}},
		Concurrency: 4,
		Duration:    500 * time.Millisecond,
		Rate:        100,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Offered != 100 {
		t.Fatalf("Offered = %g, want 100", res.Offered)
	}
	if res.Requests < 40 || res.Requests > 55 {
		t.Fatalf("open loop issued %d requests at 100/s over 0.5s, want ~50", res.Requests)
	}
	if res.Dropped != 0 || res.TransportErrors != 0 {
		t.Fatalf("dropped=%d transport=%d, want 0/0", res.Dropped, res.TransportErrors)
	}
	if res.Status[200] != res.Requests {
		t.Fatalf("status map %v, want all 200", res.Status)
	}
	if res.BatchItemErrors != res.Requests {
		t.Fatalf("BatchItemErrors = %d, want %d (one per batch)", res.BatchItemErrors, res.Requests)
	}
	if res.Non2xx != 0 {
		t.Fatalf("Non2xx = %d, want 0", res.Non2xx)
	}
	out := res.String()
	for _, want := range []string{"offered 100 req/s", "achieved", "batch item errors"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

// TestOpenLoopNon2xx: application-level rejections (400s) are counted
// as non-2xx, not transport errors.
func TestOpenLoopNon2xx(t *testing.T) {
	srv, err := serve.New(serve.Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Paths:       []string{"/v1/percentiles?d=1&u=1.5"}, // always 400
		Concurrency: 2,
		Duration:    200 * time.Millisecond,
		Rate:        50,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Non2xx != res.Requests || res.Requests == 0 {
		t.Fatalf("Non2xx = %d of %d requests, want all", res.Non2xx, res.Requests)
	}
	if res.TransportErrors != 0 {
		t.Fatalf("transport errors %d, want 0", res.TransportErrors)
	}
}
