package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/telemetry"
)

func TestRunAgainstServe(t *testing.T) {
	srv, err := serve.New(serve.Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Duration:    300 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests issued")
	}
	if res.TransportErrors != 0 {
		t.Fatalf("%d transport errors", res.TransportErrors)
	}
	if n := res.Count5xx(); n != 0 {
		t.Fatalf("%d 5xx responses: %v", n, res.Status)
	}
	if res.Status[200] == 0 {
		t.Fatalf("no 200s: %v", res.Status)
	}
	if res.Throughput() <= 0 {
		t.Fatal("throughput not positive")
	}
	if res.Latency(99) <= 0 || res.Latency(50) > res.Latency(99) {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", res.Latency(50), res.Latency(99))
	}
	out := res.String()
	for _, want := range []string{"requests", "status 200", "latency"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := loadgen.Run(context.Background(), loadgen.Config{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
}
