// Package loadgen is an HTTP load driver for epserve with two arrival
// models: closed-loop (a fixed number of workers issue requests
// back-to-back — throughput floats with the server) and open-loop (a
// fixed arrival rate with latency measured from each request's
// scheduled arrival time, immune to coordinated omission — the model a
// capacity benchmark needs). Targets may be GET paths or POST bodies
// (the batch endpoints), and the result separates transport errors,
// non-2xx responses and per-item batch errors. It backs the overload
// tests, the `make serve-smoke` gate and the `make bench-serve`
// capacity benchmark.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Target is one request in the load mix: a GET path, or a POST with a
// JSON body when Body is non-nil.
type Target struct {
	// Method is the HTTP method; empty means GET (POST when Body is set).
	Method string
	// Path is the request path with query, e.g. "/v1/percentiles?d=1&u=0.9".
	Path string
	// Body is the JSON request body for batch (POST) targets.
	Body []byte
}

func (t Target) method() string {
	if t.Method != "" {
		return t.Method
	}
	if t.Body != nil {
		return http.MethodPost
	}
	return http.MethodGet
}

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Paths are GET request paths (with query) cycled through by the
	// workers; used when Targets is empty. Empty uses a default mix of
	// percentile queries.
	Paths []string
	// Targets generalizes Paths to mixed-method targets (batch POSTs).
	// When set, Paths is ignored.
	Targets []Target
	// Concurrency is the worker count: the closed-loop parallelism, or
	// the maximum in-flight requests in open-loop mode; 0 means 8.
	Concurrency int
	// Duration is how long arrivals keep coming; 0 means 5s.
	Duration time.Duration
	// Rate switches to open-loop mode: arrivals are scheduled at this
	// fixed rate (per second, across all targets) for Duration, and each
	// request's latency is measured from its scheduled arrival — a
	// saturated server therefore shows queueing delay instead of
	// silently slowing the generator down (coordinated omission). 0
	// keeps the closed loop.
	Rate float64
	// DrainGrace bounds how long past Duration an open-loop run may keep
	// working through its arrival backlog before the remaining arrivals
	// are dropped (and reported as Dropped); 0 means 5s.
	DrainGrace time.Duration
	// Client issues the requests; nil uses a client with a 30s timeout.
	Client *http.Client
}

// DefaultPaths is the request mix used when Config.Paths is empty: hot
// cached percentile queries plus a metrics scrape, approximating a
// dashboard's steady-state traffic.
var DefaultPaths = []string{
	"/v1/percentiles?d=1&u=0.9",
	"/v1/percentiles?d=1&u=0.5&p=50,90,99,99.9",
	"/v1/percentiles?workload=EP&mix=32xA9,12xK10&u=0.8",
	"/v1/epmetrics?workload=EP&mix=32xA9,12xK10",
	"/metrics",
}

// Result aggregates one load run.
type Result struct {
	// Requests is the total number of requests issued.
	Requests int
	// Status counts responses by HTTP status code.
	Status map[int]int
	// TransportErrors counts requests that failed before a status line
	// (dial errors, timeouts). Context cancellation at the end of the run
	// is not counted.
	TransportErrors int
	// Non2xx counts responses whose status was outside [200, 300) —
	// application-level rejections (shed, bad request, deadline),
	// reported separately from transport failures.
	Non2xx int
	// BatchItemErrors sums the X-Batch-Errors headers of batch
	// responses: evaluations that failed inside otherwise-200 batches.
	BatchItemErrors int
	// Offered is the open-loop arrival rate (0 for closed-loop runs).
	Offered float64
	// Dropped counts open-loop arrivals never issued because the run hit
	// Duration + DrainGrace with a backlog — a sign the offered rate is
	// far past capacity.
	Dropped int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// latencies holds every completed request's latency, sorted
	// ascending. Open-loop latency runs from the scheduled arrival, not
	// the actual send.
	latencies []time.Duration
}

// Throughput returns completed requests per second (the achieved rate
// in open-loop mode).
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Latency returns the p-th percentile (0 < p <= 100) of client-side
// latency over responses that carried a status code, or 0 when none did.
func (r *Result) Latency(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(r.latencies)))
	if idx >= len(r.latencies) {
		idx = len(r.latencies) - 1
	}
	return r.latencies[idx]
}

// Count5xx returns the number of 5xx responses — the smoke gate's
// failure condition.
func (r *Result) Count5xx() int {
	n := 0
	for code, c := range r.Status {
		if code >= 500 {
			n += c
		}
	}
	return n
}

// String formats the run summary as a human-readable block.
func (r *Result) String() string {
	var b strings.Builder
	if r.Offered > 0 {
		fmt.Fprintf(&b, "requests  %d in %v (offered %.0f req/s, achieved %.0f req/s)\n",
			r.Requests, r.Elapsed.Round(time.Millisecond), r.Offered, r.Throughput())
	} else {
		fmt.Fprintf(&b, "requests  %d in %v (%.0f req/s)\n", r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput())
	}
	codes := make([]int, 0, len(r.Status))
	for code := range r.Status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", code, r.Status[code])
	}
	if r.Non2xx > 0 {
		fmt.Fprintf(&b, "  non-2xx responses: %d\n", r.Non2xx)
	}
	if r.BatchItemErrors > 0 {
		fmt.Fprintf(&b, "  batch item errors: %d\n", r.BatchItemErrors)
	}
	if r.TransportErrors > 0 {
		fmt.Fprintf(&b, "  transport errors: %d\n", r.TransportErrors)
	}
	if r.Dropped > 0 {
		fmt.Fprintf(&b, "  dropped arrivals: %d (backlog past drain grace)\n", r.Dropped)
	}
	fmt.Fprintf(&b, "latency   p50 %v  p95 %v  p99 %v",
		r.Latency(50).Round(time.Microsecond),
		r.Latency(95).Round(time.Microsecond),
		r.Latency(99).Round(time.Microsecond))
	return b.String()
}

// ServerStats fetches the target's /v1/debug/stats snapshot — the
// server-side view of the run just driven (per-route RED, SLO standing,
// build identity), complementing Result's client-side percentiles.
// client nil uses a client with a 10s timeout.
func ServerStats(ctx context.Context, client *http.Client, baseURL string) (*serve.DebugStatsResponse, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/v1/debug/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /v1/debug/stats returned %s", resp.Status)
	}
	var stats serve.DebugStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /v1/debug/stats: %w", err)
	}
	return &stats, nil
}

// FormatServerStats renders the server-side summary printed after a
// run: the build line, then one line per route that actually served
// requests, with latency percentiles and SLO compliance.
func FormatServerStats(stats *serve.DebugStatsResponse) string {
	var b strings.Builder
	fmt.Fprintf(&b, "server    %s, uptime %s, inflight %.0f",
		stats.Build, (time.Duration(stats.UptimeSeconds * float64(time.Second))).Round(time.Second), stats.Inflight)
	routes := make([]string, 0, len(stats.Routes))
	for route, rs := range stats.Routes {
		if rs.Requests > 0 {
			routes = append(routes, route)
		}
	}
	sort.Strings(routes)
	for _, route := range routes {
		rs := stats.Routes[route]
		fmt.Fprintf(&b, "\n  %-12s %d reqs", route, rs.Requests)
		if l := rs.Latency; l != nil {
			fmt.Fprintf(&b, "  p50 %s p95 %s p99 %s",
				secondsDuration(l.P50Seconds), secondsDuration(l.P95Seconds), secondsDuration(l.P99Seconds))
		}
		if rs.SLO != nil {
			fmt.Fprintf(&b, "  slo %.4f (budget used %.2f)", rs.SLO.Compliance, rs.SLO.BudgetUsed)
		}
	}
	return b.String()
}

func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

// tally is one worker's private aggregation, merged after the run.
type tally struct {
	requests  int
	status    map[int]int
	transport int
	non2xx    int
	batchErrs int
	latencies []time.Duration
}

// issue sends one target request and records it. base is the latency
// origin: the scheduled arrival in open-loop mode, the send time in
// closed-loop mode. It returns false when the request was cut off by
// the run's end rather than failing.
func issue(ctx context.Context, client *http.Client, baseURL string, tgt Target, base time.Time, t *tally) bool {
	var body io.Reader
	if tgt.Body != nil {
		body = bytes.NewReader(tgt.Body)
	}
	req, err := http.NewRequestWithContext(ctx, tgt.method(), baseURL+tgt.Path, body)
	if err != nil {
		t.transport++
		return true
	}
	if tgt.Body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	t.requests++
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			t.requests-- // cut off by end-of-run, not a real failure
			return false
		}
		t.transport++
		return true
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	t.status[resp.StatusCode]++
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		t.non2xx++
	}
	if hdr := resp.Header.Get("X-Batch-Errors"); hdr != "" {
		if n, err := strconv.Atoi(hdr); err == nil {
			t.batchErrs += n
		}
	}
	t.latencies = append(t.latencies, time.Since(base))
	return true
}

// Run drives the load against cfg.BaseURL and merges the per-worker
// tallies into one Result. With Rate set the run is open-loop;
// otherwise Concurrency workers issue requests back-to-back.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	targets := cfg.Targets
	if len(targets) == 0 {
		paths := cfg.Paths
		if len(paths) == 0 {
			paths = DefaultPaths
		}
		targets = make([]Target, len(paths))
		for i, p := range paths {
			targets[i] = Target{Path: p}
		}
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 8
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.Rate > 0 {
		return runOpen(ctx, cfg, targets, workers, dur, client)
	}
	return runClosed(ctx, cfg, targets, workers, dur, client)
}

// runClosed is the closed loop: workers issue back-to-back until the
// duration elapses; latency runs from each request's send time.
func runClosed(ctx context.Context, cfg Config, targets []Target, workers int, dur time.Duration, client *http.Client) (*Result, error) {
	ctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()

	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := &tallies[w]
			t.status = make(map[int]int)
			for i := 0; ctx.Err() == nil; i++ {
				if !issue(ctx, client, cfg.BaseURL, targets[(w+i)%len(targets)], time.Now(), t) {
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return merge(tallies, time.Since(start), 0, 0), nil
}

// runOpen is the open loop: arrivals are pre-scheduled on a fixed-rate
// grid over the duration and handed to workers in order; each worker
// sleeps until its arrival's scheduled time (or starts late when the
// backlog has it behind schedule) and measures latency from that
// scheduled time. A server past saturation therefore accumulates
// backlog that shows up as latency — the generator never slows its
// arrival process to match the server (coordinated omission).
func runOpen(ctx context.Context, cfg Config, targets []Target, workers int, dur time.Duration, client *http.Client) (*Result, error) {
	grace := cfg.DrainGrace
	if grace <= 0 {
		grace = 5 * time.Second
	}
	total := int64(cfg.Rate * dur.Seconds())
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	ctx, cancel := context.WithTimeout(ctx, dur+grace)
	defer cancel()

	tallies := make([]tally, workers)
	var next, attempts atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(dur + grace)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := &tallies[w]
			t.status = make(map[int]int)
			timer := time.NewTimer(0)
			defer timer.Stop()
			<-timer.C
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				if time.Now().After(deadline) || ctx.Err() != nil {
					next.Store(total) // stop the other workers too
					return
				}
				sched := start.Add(time.Duration(i) * interval)
				if d := time.Until(sched); d > 0 {
					timer.Reset(d)
					select {
					case <-timer.C:
					case <-ctx.Done():
						next.Store(total)
						return
					}
				}
				attempts.Add(1)
				if !issue(ctx, client, cfg.BaseURL, targets[i%int64(len(targets))], sched, t) {
					attempts.Add(-1) // cut off mid-flight: counts as dropped
					next.Store(total)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Every arrival on the grid was either attempted or dropped — the
	// difference needs no per-worker race accounting.
	return merge(tallies, time.Since(start), cfg.Rate, int(total-attempts.Load())), nil
}

// merge folds the per-worker tallies into one Result.
func merge(tallies []tally, elapsed time.Duration, offered float64, dropped int) *Result {
	res := &Result{Status: make(map[int]int), Elapsed: elapsed, Offered: offered, Dropped: dropped}
	for i := range tallies {
		t := &tallies[i]
		res.Requests += t.requests
		res.TransportErrors += t.transport
		res.Non2xx += t.non2xx
		res.BatchItemErrors += t.batchErrs
		for code, c := range t.status {
			res.Status[code] += c
		}
		res.latencies = append(res.latencies, t.latencies...)
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res
}
