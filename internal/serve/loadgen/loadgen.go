// Package loadgen is a closed-loop HTTP load driver for epserve: a
// fixed number of workers issue requests back-to-back against a target
// for a fixed duration, recording status-code counts and client-side
// latency percentiles. It backs the overload tests and the
// `make serve-smoke` gate, which fails the build on any 5xx.
package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/serve"
)

// Config parameterizes a load run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Paths are request paths (with query) cycled through by each worker;
	// empty uses a default mix of percentile queries.
	Paths []string
	// Concurrency is the number of closed-loop workers; 0 means 8.
	Concurrency int
	// Duration is how long workers keep issuing requests; 0 means 5s.
	Duration time.Duration
	// Client issues the requests; nil uses a client with a 30s timeout.
	Client *http.Client
}

// DefaultPaths is the request mix used when Config.Paths is empty: hot
// cached percentile queries plus a metrics scrape, approximating a
// dashboard's steady-state traffic.
var DefaultPaths = []string{
	"/v1/percentiles?d=1&u=0.9",
	"/v1/percentiles?d=1&u=0.5&p=50,90,99,99.9",
	"/v1/percentiles?workload=EP&mix=32xA9,12xK10&u=0.8",
	"/v1/epmetrics?workload=EP&mix=32xA9,12xK10",
	"/metrics",
}

// Result aggregates one load run.
type Result struct {
	// Requests is the total number of requests issued.
	Requests int
	// Status counts responses by HTTP status code.
	Status map[int]int
	// TransportErrors counts requests that failed before a status line
	// (dial errors, timeouts). Context cancellation at the end of the run
	// is not counted.
	TransportErrors int
	// Elapsed is the wall-clock span of the run.
	Elapsed time.Duration
	// latencies holds every successful request's client-side latency,
	// sorted ascending.
	latencies []time.Duration
}

// Throughput returns completed requests per second.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Latency returns the p-th percentile (0 < p <= 100) of client-side
// latency over responses that carried a status code, or 0 when none did.
func (r *Result) Latency(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(r.latencies)))
	if idx >= len(r.latencies) {
		idx = len(r.latencies) - 1
	}
	return r.latencies[idx]
}

// Count5xx returns the number of 5xx responses — the smoke gate's
// failure condition.
func (r *Result) Count5xx() int {
	n := 0
	for code, c := range r.Status {
		if code >= 500 {
			n += c
		}
	}
	return n
}

// String formats the run summary as a human-readable block.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests  %d in %v (%.0f req/s)\n", r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput())
	codes := make([]int, 0, len(r.Status))
	for code := range r.Status {
		codes = append(codes, code)
	}
	sort.Ints(codes)
	for _, code := range codes {
		fmt.Fprintf(&b, "  status %d: %d\n", code, r.Status[code])
	}
	if r.TransportErrors > 0 {
		fmt.Fprintf(&b, "  transport errors: %d\n", r.TransportErrors)
	}
	fmt.Fprintf(&b, "latency   p50 %v  p95 %v  p99 %v",
		r.Latency(50).Round(time.Microsecond),
		r.Latency(95).Round(time.Microsecond),
		r.Latency(99).Round(time.Microsecond))
	return b.String()
}

// ServerStats fetches the target's /v1/debug/stats snapshot — the
// server-side view of the run just driven (per-route RED, SLO standing,
// build identity), complementing Result's client-side percentiles.
// client nil uses a client with a 10s timeout.
func ServerStats(ctx context.Context, client *http.Client, baseURL string) (*serve.DebugStatsResponse, error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(baseURL, "/")+"/v1/debug/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: /v1/debug/stats returned %s", resp.Status)
	}
	var stats serve.DebugStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		return nil, fmt.Errorf("loadgen: decoding /v1/debug/stats: %w", err)
	}
	return &stats, nil
}

// FormatServerStats renders the server-side summary printed after a
// run: the build line, then one line per route that actually served
// requests, with latency percentiles and SLO compliance.
func FormatServerStats(stats *serve.DebugStatsResponse) string {
	var b strings.Builder
	fmt.Fprintf(&b, "server    %s, uptime %s, inflight %.0f",
		stats.Build, (time.Duration(stats.UptimeSeconds * float64(time.Second))).Round(time.Second), stats.Inflight)
	routes := make([]string, 0, len(stats.Routes))
	for route, rs := range stats.Routes {
		if rs.Requests > 0 {
			routes = append(routes, route)
		}
	}
	sort.Strings(routes)
	for _, route := range routes {
		rs := stats.Routes[route]
		fmt.Fprintf(&b, "\n  %-12s %d reqs", route, rs.Requests)
		if l := rs.Latency; l != nil {
			fmt.Fprintf(&b, "  p50 %s p95 %s p99 %s",
				secondsDuration(l.P50Seconds), secondsDuration(l.P95Seconds), secondsDuration(l.P99Seconds))
		}
		if rs.SLO != nil {
			fmt.Fprintf(&b, "  slo %.4f (budget used %.2f)", rs.SLO.Compliance, rs.SLO.BudgetUsed)
		}
	}
	return b.String()
}

func secondsDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond)
}

// Run drives the load: Concurrency workers issue the Paths mix
// back-to-back until Duration elapses or ctx is cancelled, then the
// per-worker tallies merge into one Result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("loadgen: BaseURL required")
	}
	paths := cfg.Paths
	if len(paths) == 0 {
		paths = DefaultPaths
	}
	workers := cfg.Concurrency
	if workers <= 0 {
		workers = 8
	}
	dur := cfg.Duration
	if dur <= 0 {
		dur = 5 * time.Second
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}

	ctx, cancel := context.WithTimeout(ctx, dur)
	defer cancel()

	type tally struct {
		requests  int
		status    map[int]int
		transport int
		latencies []time.Duration
	}
	tallies := make([]tally, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t := &tallies[w]
			t.status = make(map[int]int)
			for i := 0; ctx.Err() == nil; i++ {
				url := cfg.BaseURL + paths[(w+i)%len(paths)]
				req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
				if err != nil {
					t.transport++
					continue
				}
				t.requests++
				reqStart := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						t.requests-- // cut off by end-of-run, not a real failure
						return
					}
					t.transport++
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				t.status[resp.StatusCode]++
				t.latencies = append(t.latencies, time.Since(reqStart))
			}
		}(w)
	}
	wg.Wait()

	res := &Result{Status: make(map[int]int), Elapsed: time.Since(start)}
	for i := range tallies {
		t := &tallies[i]
		res.Requests += t.requests
		res.TransportErrors += t.transport
		for code, c := range t.status {
			res.Status[code] += c
		}
		res.latencies = append(res.latencies, t.latencies...)
	}
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res, nil
}
