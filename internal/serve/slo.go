package serve

import (
	"time"

	"repro/internal/telemetry"
)

// SLOTarget is one route's service-level objective: requests should
// finish inside P99, and at least Goal of them must — the remaining
// 1-Goal is the route's error budget. Scale-out latency-critical
// workloads are judged by exactly this shape of objective (tail
// percentile under load), which is why the tracker sits beside the
// admission plane rather than in a dashboard afterthought.
type SLOTarget struct {
	// P99 is the latency objective; a request slower than this (or
	// answered 5xx) breaches.
	P99 time.Duration `json:"p99"`
	// Goal is the fraction of requests that must meet P99, e.g. 0.999.
	Goal float64 `json:"goal"`
}

// DefaultSLOTargets returns the built-in per-route objectives: tight
// for the cached point queries, loose for the sweep-shaped endpoints
// whose work scales with the requested space.
func DefaultSLOTargets() map[string]SLOTarget {
	return map[string]SLOTarget{
		"percentiles": {P99: 25 * time.Millisecond, Goal: 0.999},
		"epmetrics":   {P99: 25 * time.Millisecond, Goal: 0.999},
		"frontier":    {P99: 2 * time.Second, Goal: 0.99},
		"replay":      {P99: 30 * time.Second, Goal: 0.99},
	}
}

// sloTracker accounts one route's requests against its SLOTarget. The
// good/breach split is exported as counters (slo.<route>.good,
// slo.<route>.breach — the error-budget burn counter), so dashboards
// can rate() them, and summarized with budget math on /v1/debug/stats.
type sloTracker struct {
	route  string
	target SLOTarget
	good   *telemetry.Counter
	breach *telemetry.Counter
}

func newSLOTracker(reg *telemetry.Registry, route string, target SLOTarget) *sloTracker {
	return &sloTracker{
		route:  route,
		target: target,
		good:   reg.Counter("slo." + route + ".good"),
		breach: reg.Counter("slo." + route + ".breach"),
	}
}

// observe classifies one finished request. Shed requests (429) are
// deliberately counted as breaches: from the client's point of view a
// shed request missed the objective, and hiding overload from the SLO
// would defeat the point of tracking it.
func (t *sloTracker) observe(d time.Duration, status int) {
	if t == nil {
		return
	}
	if d > t.target.P99 || status >= 500 || status == 429 {
		t.breach.Inc()
		return
	}
	t.good.Inc()
}

// SLOStatus is the /v1/debug/stats summary of one route's objective.
type SLOStatus struct {
	// TargetP99Seconds and Goal restate the objective.
	TargetP99Seconds float64 `json:"target_p99_seconds"`
	Goal             float64 `json:"goal"`
	// Good and Breach are the classified request counts since start.
	Good   uint64 `json:"good"`
	Breach uint64 `json:"breach"`
	// Compliance is Good/(Good+Breach), 1 when nothing was served yet.
	Compliance float64 `json:"compliance"`
	// BudgetUsed is the fraction of the error budget consumed:
	// Breach / ((1-Goal) * total). Above 1 the route is out of budget.
	BudgetUsed float64 `json:"budget_used"`
}

// status summarizes the tracker for /v1/debug/stats.
func (t *sloTracker) status() *SLOStatus {
	if t == nil {
		return nil
	}
	good, breach := t.good.Value(), t.breach.Value()
	s := &SLOStatus{
		TargetP99Seconds: t.target.P99.Seconds(),
		Goal:             t.target.Goal,
		Good:             good,
		Breach:           breach,
		Compliance:       1,
	}
	total := good + breach
	if total > 0 {
		s.Compliance = float64(good) / float64(total)
		if budget := (1 - t.target.Goal) * float64(total); budget > 0 {
			s.BudgetUsed = float64(breach) / budget
		}
	}
	return s
}
