package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// newTestServer builds a Server with its own registry and an httptest
// frontend over its full handler.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.ready.Store(true)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path string
		status     int
		contains   string
	}{
		{"percentiles raw", "/v1/percentiles?d=1&u=0.9", 200, `"mean_wait_seconds":4.5`},
		{"percentiles model", "/v1/percentiles?workload=EP&mix=32xA9,12xK10&u=0.5&p=95", 200, `"percentiles"`},
		{"percentiles default ps", "/v1/percentiles?d=0.5&u=0", 200, `"p":99`},
		{"percentiles missing u", "/v1/percentiles?d=1", 400, "missing u="},
		{"percentiles bad u", "/v1/percentiles?d=1&u=1.5", 400, "outside [0, 1)"},
		{"percentiles unstable", "/v1/percentiles?d=-2&u=0.9", 400, "positive"},
		{"percentiles both modes", "/v1/percentiles?d=1&mix=32xA9&u=0.5", 400, "not both"},
		{"percentiles bad p", "/v1/percentiles?d=1&u=0.5&p=abc", 400, "invalid percentile"},
		{"percentiles unknown workload", "/v1/percentiles?workload=nope&mix=32xA9&u=0.5", 404, "nope"},
		{"epmetrics", "/v1/epmetrics?workload=EP&mix=32xA9,12xK10", 200, `"dpr"`},
		{"epmetrics with ref", "/v1/epmetrics?workload=EP&mix=16xA9,2xK10&ref=32xA9,12xK10", 200, `"sublinear"`},
		{"epmetrics missing mix", "/v1/epmetrics?workload=EP", 400, "missing mix="},
		{"epmetrics bad mix", "/v1/epmetrics?mix=zzz", 400, "invalid mix"},
		{"frontier", "/v1/frontier?workload=EP&max_a9=4&max_k10=2", 200, `"frontier"`},
		{"frontier sweet region", "/v1/frontier?workload=EP&max_a9=4&max_k10=2&deadline=10", 200, `"recommended"`},
		{"frontier too large", "/v1/frontier?max_a9=100000&max_k10=100000", 400, "exceeds the per-request cap"},
		{"frontier bad int", "/v1/frontier?max_a9=-3", 400, "non-negative"},
		{"healthz", "/v1/healthz", 200, `"ok"`},
		{"readyz", "/v1/readyz", 200, `"ready"`},
		{"index", "/", 200, "epserve"},
		{"unknown path", "/v2/nope", 404, "no such endpoint"},
		{"bad timeout", "/v1/percentiles?d=1&u=0.5&timeout=zzz", 400, "invalid timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := get(t, ts.URL+tc.path)
			if status != tc.status {
				t.Fatalf("GET %s: status %d, want %d (body %s)", tc.path, status, tc.status, body)
			}
			if !strings.Contains(body, tc.contains) {
				t.Fatalf("GET %s: body %q does not contain %q", tc.path, body, tc.contains)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/percentiles?d=1&u=0.5", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
	allow := resp.Header.Get("Allow")
	if !strings.Contains(allow, "GET") || !strings.Contains(allow, "POST") {
		t.Fatalf("Allow header %q, want GET and POST", allow)
	}
}

func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	get(t, ts.URL+"/v1/percentiles?d=1&u=0.9")
	status, body := get(t, ts.URL+"/metrics")
	if status != 200 {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		"serve_admitted 1",
		"http_percentiles_requests 1",
		"http_percentiles_status_2xx 1",
		"# TYPE http_percentiles_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// blockingChain mounts a handler that parks until release closes behind
// the full api middleware chain, sharing srv's limiter and registry.
func blockingChain(srv *Server) (http.Handler, chan struct{}, chan struct{}) {
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	h := srv.api("block", func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		select {
		case <-release:
			w.WriteHeader(http.StatusOK)
		case <-r.Context().Done():
			writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "handler saw deadline")
		}
	})
	return h, entered, release
}

// TestOverloadSheds saturates a 1-slot/1-queue server and asserts that
// excess requests shed with 429 + Retry-After while admitted requests
// complete, and that no goroutines leak.
func TestOverloadSheds(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := telemetry.New()
	srv, err := New(Config{Telemetry: reg, MaxInflight: 1, MaxQueue: 1, DefaultTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, entered, release := blockingChain(srv)
	ts := httptest.NewServer(h)
	defer ts.Close()

	type outcome struct {
		status     int
		retryAfter string
		body       string
	}
	results := make(chan outcome, 8)
	fire := func() {
		resp, err := http.Get(ts.URL)
		if err != nil {
			results <- outcome{status: -1, body: err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- outcome{resp.StatusCode, resp.Header.Get("Retry-After"), string(body)}
	}

	go fire() // holds the slot
	<-entered
	go fire() // waits in the queue
	waitCounter(t, srv.ins.queueWaits, 1)

	const extra = 4
	for i := 0; i < extra; i++ {
		go fire() // queue full: shed
	}
	var sheds []outcome
	for i := 0; i < extra; i++ {
		sheds = append(sheds, <-results)
	}
	for _, o := range sheds {
		if o.status != http.StatusTooManyRequests {
			t.Fatalf("overflow request: status %d body %s, want 429", o.status, o.body)
		}
		if o.retryAfter != "1" {
			t.Fatalf("429 Retry-After = %q, want \"1\"", o.retryAfter)
		}
		if !strings.Contains(o.body, "overloaded") {
			t.Fatalf("429 body %q missing code \"overloaded\"", o.body)
		}
	}
	if got := srv.ins.shed.Value(); got != extra {
		t.Fatalf("serve.shed = %d, want %d", got, extra)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if o := <-results; o.status != http.StatusOK {
			t.Fatalf("admitted request: status %d body %s, want 200", o.status, o.body)
		}
	}
	if got := srv.ins.admitted.Value(); got != 2 {
		t.Fatalf("serve.admitted = %d, want 2", got)
	}
	checkGoroutines(t, before)
}

// TestDeadlineWhileQueued parks one request on the only slot and
// asserts a queued request with a short deadline gets 504.
func TestDeadlineWhileQueued(t *testing.T) {
	srv, err := New(Config{Telemetry: telemetry.New(), MaxInflight: 1, MaxQueue: 4, DefaultTimeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, entered, release := blockingChain(srv)
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer close(release) // LIFO: unblock the parked handler before ts.Close waits on it

	go http.Get(ts.URL) //nolint:errcheck // released at test end
	<-entered

	status, body := get(t, ts.URL+"/?timeout=50ms")
	if status != http.StatusGatewayTimeout {
		t.Fatalf("queued request: status %d body %s, want 504", status, body)
	}
	if !strings.Contains(body, "deadline_exceeded") {
		t.Fatalf("504 body %q missing code \"deadline_exceeded\"", body)
	}
	if got := srv.ins.deadlineExceeded.Value(); got != 1 {
		t.Fatalf("serve.deadline_exceeded = %d, want 1", got)
	}
}

// TestDeadlineCancelsCompute asserts a deadline that expires during the
// percentile computation surfaces as 504, not a hang.
func TestDeadlineCancelsCompute(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxTimeout: time.Minute})
	// p extremely close to 100 at high rho is the slowest search; 1ns
	// expires before the first context check.
	status, body := get(t, ts.URL+"/v1/percentiles?d=1&u=0.99&p=99.9999&timeout=1ns")
	if status != http.StatusBadRequest && status != http.StatusGatewayTimeout {
		t.Fatalf("status %d body %s, want 504 (or 400 for sub-ms floor)", status, body)
	}
	if status == http.StatusGatewayTimeout && !strings.Contains(body, "deadline_exceeded") {
		t.Fatalf("504 body %q missing deadline_exceeded", body)
	}
}

// TestGracefulShutdown drives the real listener: readiness flips before
// the drain finishes, the in-flight request completes, and new
// connections are refused after drain.
func TestGracefulShutdown(t *testing.T) {
	srv, err := New(Config{Telemetry: telemetry.New(), MaxInflight: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h, entered, release := blockingChain(srv)
	srv.mux.Handle("/test/block", h)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	waitFor(t, "server ready", func() bool { return srv.Ready() })
	if status, body := get(t, base+"/v1/readyz"); status != 200 {
		t.Fatalf("readyz before shutdown: %d %s", status, body)
	}

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Get(base + "/test/block")
		if err != nil {
			inflight <- -1
			return
		}
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-entered

	shutdownErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(ctx) }()

	// Readiness flips immediately, while the in-flight request still runs.
	waitFor(t, "readiness flipped", func() bool { return !srv.Ready() })
	select {
	case status := <-inflight:
		t.Fatalf("in-flight request finished (%d) before release; drain did not wait", status)
	default:
	}

	close(release)
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d, want 200", status)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after clean shutdown, want nil", err)
	}
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("request after drain succeeded, want connection refused")
	}
}

func TestReadyzDraining(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.ready.Store(false)
	status, body := get(t, ts.URL+"/v1/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("draining readyz: %d %s, want 503 draining", status, body)
	}
	if status, _ := get(t, ts.URL+"/v1/healthz"); status != 200 {
		t.Fatalf("healthz during drain: %d, want 200 (liveness is not readiness)", status)
	}
}

func TestPanicRecovery(t *testing.T) {
	srv, err := New(Config{Telemetry: telemetry.New()})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	h := srv.api("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	status, body := get(t, ts.URL)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", status)
	}
	if !strings.Contains(body, "internal") {
		t.Fatalf("500 body %q missing code \"internal\"", body)
	}
	if got := srv.ins.panics.Value(); got != 1 {
		t.Fatalf("serve.panics = %d, want 1", got)
	}
	// The server must keep serving after a panic.
	if status, _ := get(t, ts.URL); status != http.StatusInternalServerError {
		t.Fatalf("second request after panic: status %d, want another 500", status)
	}
}

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var calls int

	type res struct {
		v      any
		shared bool
		err    error
	}
	results := make(chan res, 4)
	go func() {
		v, shared, err := g.do(context.Background(), "k", func() (any, error) {
			close(leaderIn)
			<-release
			calls++
			return 42, nil
		})
		results <- res{v, shared, err}
	}()
	<-leaderIn
	const followers = 3
	for i := 0; i < followers; i++ {
		go func() {
			v, shared, err := g.do(context.Background(), "k", func() (any, error) {
				calls++
				return -1, nil
			})
			results <- res{v, shared, err}
		}()
	}
	// Followers must be registered before the leader finishes.
	waitFor(t, "followers parked", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.m["k"] != nil
	})
	time.Sleep(10 * time.Millisecond) // let followers reach the select
	close(release)

	shared := 0
	for i := 0; i < followers+1; i++ {
		r := <-results
		if r.err != nil || r.v != 42 {
			t.Fatalf("flight result = (%v, %v), want (42, nil)", r.v, r.err)
		}
		if r.shared {
			shared++
		}
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if shared != followers {
		t.Fatalf("%d shared results, want %d", shared, followers)
	}

	// A follower with an expired context must not hang.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	release2 := make(chan struct{})
	go g.do(context.Background(), "k2", func() (any, error) { <-release2; return nil, nil }) //nolint:errcheck
	waitFor(t, "second leader in flight", func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.m["k2"] != nil
	})
	if _, _, err := g.do(ctx, "k2", func() (any, error) { return nil, nil }); err != context.Canceled {
		t.Fatalf("cancelled follower err = %v, want context.Canceled", err)
	}
	close(release2)
}

// TestServeRaceHammer drives the full serve path from many goroutines;
// run under -race it is the regression test for the percentile-cache
// counter race and any handler-state races.
func TestServeRaceHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	paths := []string{
		"/v1/percentiles?d=1&u=0.9",
		"/v1/percentiles?d=1&u=0.9", // repeat: exercise cache hits and coalescing
		"/v1/percentiles?d=0.004&u=0.9&p=50,95,99,99.9",
		"/v1/percentiles?workload=EP&mix=32xA9,12xK10&u=0.5",
		"/v1/epmetrics?workload=EP&mix=32xA9,12xK10",
		"/v1/readyz",
		"/metrics",
	}
	const workers = 16
	perWorker := 12
	if testing.Short() {
		perWorker = 4
	}
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				url := ts.URL + paths[(w+i)%len(paths)]
				resp, err := http.Get(url)
				if err != nil {
					errCh <- err
					continue
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				if resp.StatusCode >= 500 {
					errCh <- fmt.Errorf("%s: status %d", url, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("hammer: %v", err)
	}
}

// TestPercentilesJSONShape pins the response schema documented in
// docs/API.md.
func TestPercentilesJSONShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, body := get(t, ts.URL+"/v1/percentiles?d=2&u=0.5&p=95")
	var resp PercentilesResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decoding: %v", err)
	}
	if resp.Utilization != 0.5 || resp.ServiceTimeSeconds != 2 {
		t.Fatalf("echo fields wrong: %+v", resp)
	}
	if resp.ArrivalRatePerSecond != 0.25 {
		t.Fatalf("arrival rate = %g, want rho/D = 0.25", resp.ArrivalRatePerSecond)
	}
	if len(resp.Percentiles) != 1 || resp.Percentiles[0].P != 95 {
		t.Fatalf("percentiles = %+v, want one entry at p95", resp.Percentiles)
	}
	if got, want := resp.Percentiles[0].ResponseSeconds, resp.Percentiles[0].WaitSeconds+2; got != want {
		t.Fatalf("response = wait + D violated: %g != %g", got, want)
	}
}

// waitCounter polls a counter until it reaches want.
func waitCounter(t *testing.T, c *telemetry.Counter, want uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("counter to reach %d", want), func() bool { return c.Value() >= want })
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// checkGoroutines asserts the goroutine count returns near its starting
// point — queued-and-shed requests must not leave waiters behind.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var now int
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		now = runtime.NumGoroutine()
		if now <= before+3 { // runtime helpers allow a little slack
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", before, now)
}
