package serve

import (
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// slowLogInterval rate-limits slow-request logging: at most one slow
// sample per route per interval. Slow requests cluster (an overloaded
// route is slow for everyone at once), so unsampled slow logging would
// amplify exactly the load that caused the slowness.
const slowLogInterval = time.Second

// requestScope is the outermost middleware on every route: it mints the
// request's telemetry.RequestContext (honoring a well-formed inbound
// X-Request-ID so IDs survive proxy hops), stamps the ID on the
// response header, and — after the inner chain returns — feeds the SLO
// tracker and writes the one access-log line that summarizes the
// request: route, status, duration, bytes, outcome, and the kernel
// attribution the layers below accumulated (configurations evaluated,
// percentile-cache hits, coalescing). Requests slower than the
// configured threshold additionally get a sampled warn line with the
// request's phase timeline inlined.
//
// It sits outside the telemetry middleware on purpose: the latency
// histogram inside can then read the RequestContext off the request
// context and stamp the request ID on its sample as an exemplar.
func (s *Server) requestScope(route string, probe bool, next http.Handler) http.Handler {
	slo := s.slos[route] // nil for probes and unlisted routes: no SLO
	level := slog.LevelInfo
	if probe {
		// Probes are scrape traffic: one line per scrape at info would
		// dwarf the real access log, so they log at debug.
		level = slog.LevelDebug
	}
	var slowLast atomic.Int64 // unix nanos of the route's last slow log
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rc := telemetry.NewRequestContext(sanitizeRequestID(r.Header.Get("X-Request-ID")), route)
		w.Header().Set("X-Request-ID", rc.ID())
		ctx := telemetry.WithRequest(r.Context(), rc)
		rec := telemetry.NewStatusRecorder(w)
		next.ServeHTTP(rec, r.WithContext(ctx))

		dur := rc.Elapsed()
		status := rec.Status()
		slo.observe(dur, status)

		if s.logger.Enabled(ctx, level) {
			attrs := make([]slog.Attr, 0, 16)
			attrs = append(attrs,
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", status),
				slog.Duration("duration", dur),
				slog.Int64("bytes", rec.Bytes()),
				slog.String("outcome", outcomeOf(rc, status)),
			)
			if !probe {
				// The model endpoints always carry the core attribution —
				// zeros included, so every line has the same shape — plus
				// any sweep/replay attribution that actually occurred.
				attrs = append(attrs,
					slog.Int64(telemetry.AttrConfigsEvaluated, rc.Attr(telemetry.AttrConfigsEvaluated)),
					slog.Int64(telemetry.AttrCacheHits, rc.Attr(telemetry.AttrCacheHits)),
					slog.Int64(telemetry.AttrCacheMisses, rc.Attr(telemetry.AttrCacheMisses)),
					slog.Int64(telemetry.AttrCoalesced, rc.Attr(telemetry.AttrCoalesced)),
				)
				for _, key := range []string{
					telemetry.AttrConfigsPruned, telemetry.AttrConfigsFiltered,
					telemetry.AttrSweepItems, telemetry.AttrReplaySteps,
				} {
					if v := rc.Attr(key); v != 0 {
						attrs = append(attrs, slog.Int64(key, v))
					}
				}
			}
			s.logger.LogAttrs(ctx, level, "request", attrs...)
		}

		if s.slowThreshold > 0 && dur >= s.slowThreshold && sampleSlow(&slowLast, slowLogInterval) {
			s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
				slog.String("route", route),
				slog.Int("status", status),
				slog.Duration("duration", dur),
				slog.Duration("threshold", s.slowThreshold),
				slog.String("timeline", rc.TimelineString()),
			)
		}
	})
}

// sampleSlow claims the route's slow-log token if at least interval has
// passed since the last claim. The CompareAndSwap makes concurrent slow
// finishers race for one token instead of all logging.
func sampleSlow(last *atomic.Int64, interval time.Duration) bool {
	now := time.Now().UnixNano()
	prev := last.Load()
	if now-prev < int64(interval) {
		return false
	}
	return last.CompareAndSwap(prev, now)
}

// outcomeOf resolves the access log's outcome field: an explicit
// outcome set by the middleware chain (shed, deadline, panic) wins,
// otherwise the status class decides.
func outcomeOf(rc *telemetry.RequestContext, status int) string {
	if o := rc.Outcome(); o != "" {
		return o
	}
	switch {
	case status >= 500:
		return "error"
	case status >= 400:
		return "client_error"
	default:
		return "ok"
	}
}

// sanitizeRequestID accepts an inbound X-Request-ID only when it is
// short and unambiguous ([A-Za-z0-9._-], at most 64 bytes) — anything
// else (empty included) makes the middleware mint a fresh ID. Logs and
// the OpenMetrics exposition both carry the ID verbatim, so a hostile
// header must not be able to inject log lines or exemplar labels.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}
