package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/replay"
	"repro/internal/telemetry"
)

// postReplay posts body to /v1/replay and returns status + full body.
func postReplay(t *testing.T, base, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(base+"/v1/replay", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/replay: %v", err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return resp.StatusCode, sb.String()
}

const smallShapeBody = `{
	"mixes": ["32xA9,12xK10", "25xA9,5xK10"],
	"adaptive": true,
	"slo_seconds": 0.5,
	"shape": {"kind": "diurnal", "mean": 0.35, "amplitude": 0.3, "step_seconds": 3600, "steps": 24}
}`

func TestReplayStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := postReplay(t, ts.URL, smallShapeBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 25 {
		t.Fatalf("want 24 step lines + summary, got %d lines", len(lines))
	}
	for i, line := range lines[:24] {
		var frame struct {
			Step *replay.Step `json:"step"`
		}
		if err := json.Unmarshal([]byte(line), &frame); err != nil || frame.Step == nil {
			t.Fatalf("line %d is not a step frame: %v (%s)", i, err, line)
		}
		if frame.Step.T != float64(i)*3600 {
			t.Fatalf("step %d at t=%g, want %g", i, frame.Step.T, float64(i)*3600)
		}
		if len(frame.Step.ResponseSeconds) != 2 {
			t.Fatalf("step %d percentiles: %v", i, frame.Step.ResponseSeconds)
		}
	}
	var last struct {
		Summary *replay.Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[24]), &last); err != nil || last.Summary == nil {
		t.Fatalf("final line is not a summary: %v (%s)", err, lines[24])
	}
	if last.Summary.Steps != 24 || !last.Summary.Adaptive {
		t.Fatalf("summary %+v", last.Summary)
	}
	if len(last.Summary.Candidates) != 2 {
		t.Fatalf("candidates %v", last.Summary.Candidates)
	}
}

func TestReplaySummaryOnly(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{
		"budget": true,
		"summary_only": true,
		"trace": {"points": [{"t":0,"load":0.2},{"t":600,"load":0.5},{"t":1200,"load":0.3}]}
	}`
	status, out := postReplay(t, ts.URL, body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1 {
		t.Fatalf("summary_only returned %d lines:\n%s", len(lines), out)
	}
	var frame struct {
		Summary *replay.Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &frame); err != nil || frame.Summary == nil {
		t.Fatalf("not a summary line: %v (%s)", err, lines[0])
	}
	// The 1 kW budget ladder has five rungs.
	if len(frame.Summary.Candidates) != 5 {
		t.Fatalf("budget ladder candidates: %v", frame.Summary.Candidates)
	}
}

// TestReplayValidation: every malformed body fails before the stream
// starts, with the uniform JSON error envelope and the right status.
func TestReplayValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxReplaySteps: 100})
	cases := []struct {
		name, body string
		status     int
		contains   string
	}{
		{"empty body", ``, 400, "decoding request body"},
		{"not json", `hello`, 400, "decoding request body"},
		{"unknown field", `{"bogus": 1}`, 400, "decoding request body"},
		{"no trace or shape", `{"mixes": ["32xA9"]}`, 400, "missing trace"},
		{"both trace and shape", `{"mixes":["32xA9"],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]},"shape":{"kind":"ramp","step_seconds":1,"steps":4}}`, 400, "not both"},
		{"no candidates", `{"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]}}`, 400, "missing candidate set"},
		{"budget and mixes", `{"budget":true,"mixes":["32xA9"],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]}}`, 400, "not both"},
		{"bad mix", `{"mixes":["wat"],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]}}`, 400, "invalid mix"},
		{"unknown workload", `{"workload":"nope","mixes":["32xA9"],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]}}`, 404, "nope"},
		{"non-monotonic trace", `{"mixes":["32xA9"],"trace":{"points":[{"t":5,"load":0.1},{"t":1,"load":0.2}]}}`, 400, "non-monotonic timestamps"},
		{"load out of range", `{"mixes":["32xA9"],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":1.7}]}}`, 400, "outside [0, 1]"},
		{"single point", `{"mixes":["32xA9"],"trace":{"points":[{"t":0,"load":0.1}]}}`, 400, "at least 2 points"},
		{"unknown shape kind", `{"mixes":["32xA9"],"shape":{"kind":"square","step_seconds":1,"steps":4}}`, 400, "unknown shape kind"},
		{"steps without levels", `{"mixes":["32xA9"],"shape":{"kind":"steps","step_seconds":1,"steps":4}}`, 400, "needs levels"},
		{"zero shape step", `{"mixes":["32xA9"],"shape":{"kind":"ramp","step_seconds":0,"steps":4}}`, 400, "step must be positive"},
		{"shape over cap", `{"mixes":["32xA9"],"shape":{"kind":"ramp","step_seconds":1,"steps":101}}`, 400, "exceeds the per-request cap"},
		{"bad percentile", `{"mixes":["32xA9"],"percentiles":[120],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]}}`, 400, "outside [0, 100)"},
		{"too many mixes", fmt.Sprintf(`{"mixes":[%s],"trace":{"points":[{"t":0,"load":0.1},{"t":1,"load":0.2}]}}`, strings.Repeat(`"1xA9",`, 32)+`"2xA9"`), 400, "at most 32 mixes"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postReplay(t, ts.URL, tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, body)
			}
			if !strings.Contains(body, tc.contains) {
				t.Fatalf("body %q does not contain %q", body, tc.contains)
			}
			var envelope struct {
				Error *errorBody `json:"error"`
			}
			if err := json.Unmarshal([]byte(body), &envelope); err != nil || envelope.Error == nil {
				t.Fatalf("error is not the JSON envelope: %v (%s)", err, body)
			}
		})
	}
}

// TestReplayTraceOverCap: an explicit trace longer than MaxReplaySteps
// is rejected before any evaluation.
func TestReplayTraceOverCap(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxReplaySteps: 10})
	var pts []string
	for i := 0; i < 11; i++ {
		pts = append(pts, fmt.Sprintf(`{"t":%d,"load":0.2}`, i))
	}
	body := fmt.Sprintf(`{"mixes":["32xA9"],"trace":{"points":[%s]}}`, strings.Join(pts, ","))
	status, out := postReplay(t, ts.URL, body)
	if status != 400 || !strings.Contains(out, "exceeds the per-request cap") {
		t.Fatalf("status %d: %s", status, out)
	}
}

func TestReplayMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, body := get(t, ts.URL+"/v1/replay")
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d: %s", status, body)
	}
	if !strings.Contains(body, "method_not_allowed") {
		t.Fatalf("body %s", body)
	}
}

// TestReplayDeadline: a replay that cannot finish inside the request
// deadline dies mid-stream with an NDJSON error line (the 200 is
// already on the wire), and the per-step percentile work is cancelled.
func TestReplayDeadline(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := telemetry.New()
	_, ts := newTestServer(t, Config{Telemetry: reg, DefaultTimeout: 50 * time.Millisecond, MaxReplaySteps: 1 << 16})
	body := `{
		"budget": true,
		"adaptive": true,
		"shape": {"kind": "diurnal", "mean": 0.4, "amplitude": 0.3, "step_seconds": 60, "steps": 20000}
	}`
	status, out := postReplay(t, ts.URL, body)
	if status != http.StatusOK {
		// The deadline can fire before the first chunk completes; then
		// the proper 504 envelope wins.
		if status != http.StatusGatewayTimeout {
			t.Fatalf("status %d: %s", status, out)
		}
		return
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	last := lines[len(lines)-1]
	if !strings.Contains(last, `"error"`) || !strings.Contains(last, "deadline_exceeded") {
		t.Fatalf("stream did not end with a deadline error line: %s", last)
	}
	checkGoroutines(t, before)
}

// TestReplayClientDisconnect: a client that walks away mid-stream must
// not leave the replay running or goroutines behind.
func TestReplayClientDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	_, ts := newTestServer(t, Config{DefaultTimeout: 30 * time.Second, MaxReplaySteps: 1 << 16})
	body := `{
		"budget": true,
		"shape": {"kind": "diurnal", "mean": 0.4, "amplitude": 0.3, "step_seconds": 60, "steps": 20000}
	}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/replay", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	// Read one line of the stream, then hang up.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	cancel()
	resp.Body.Close()
	checkGoroutines(t, before)
}

// TestReplayOverload: replay requests go through the same admission
// control as the other model endpoints; a saturated server sheds them
// with 429.
func TestReplayOverload(t *testing.T) {
	before := runtime.NumGoroutine()
	reg := telemetry.New()
	srv, ts := newTestServer(t, Config{Telemetry: reg, MaxInflight: 1, MaxQueue: -1, DefaultTimeout: 10 * time.Second})

	// Occupy the only slot directly.
	release := make(chan struct{})
	acquired := make(chan struct{})
	go func() {
		rel, err := srv.lim.acquire(context.Background(), 1)
		if err != nil {
			t.Error(err)
			close(acquired)
			return
		}
		close(acquired)
		<-release
		rel()
	}()
	<-acquired

	status, out := postReplay(t, ts.URL, smallShapeBody)
	if status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", status, out)
	}
	if !strings.Contains(out, "overloaded") {
		t.Fatalf("body %s", out)
	}
	close(release)
	waitFor(t, "slot released", func() bool {
		st, _ := postReplay(t, ts.URL, smallShapeBody)
		return st == http.StatusOK
	})
	checkGoroutines(t, before)
}

// TestReplayMatchesEngine: the streamed summary equals a direct
// replay.Run over the same inputs — the endpoint adds transport, not
// model behavior.
func TestReplayMatchesEngine(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	status, out := postReplay(t, ts.URL, smallShapeBody)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	var frame struct {
		Summary *replay.Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &frame); err != nil || frame.Summary == nil {
		t.Fatalf("summary line: %v", err)
	}

	var req ReplayRequest
	if err := json.Unmarshal([]byte(smallShapeBody), &req); err != nil {
		t.Fatal(err)
	}
	shape, err := req.Shape.shape()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := replay.FromShape(shape, req.Shape.StepSeconds, req.Shape.Steps)
	if err != nil {
		t.Fatal(err)
	}
	cands, ok := srv.replayCandidates(nopResponseWriter{}, req)
	if !ok {
		t.Fatal("candidates failed")
	}
	direct, err := replay.Run(context.Background(), cands, tr, replay.Options{
		Adaptive: req.Adaptive,
		SLO:      req.SLOSeconds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if frame.Summary.TotalEnergyJoules != direct.Summary.TotalEnergyJoules ||
		frame.Summary.Switches != direct.Summary.Switches ||
		frame.Summary.SLOViolations != direct.Summary.SLOViolations {
		t.Fatalf("endpoint summary %+v != engine %+v", frame.Summary, direct.Summary)
	}
}

// nopResponseWriter satisfies http.ResponseWriter for helper calls whose
// error paths are not under test.
type nopResponseWriter struct{}

func (nopResponseWriter) Header() http.Header         { return http.Header{} }
func (nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (nopResponseWriter) WriteHeader(int)             {}
