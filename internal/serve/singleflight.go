package serve

import (
	"context"
	"sync"
	"sync/atomic"
)

// flightCall is one in-flight computation; done closes when val/err are
// settled.
type flightCall struct {
	done    chan struct{}
	waiters atomic.Int64
	val     any
	err     error
}

// flightGroup coalesces concurrent identical requests: the first caller
// for a key runs fn, later callers for the same key block until the
// leader finishes and share its result. This sits one layer above the
// queueing package's per-(rho, p) percentile cache — it dedupes whole
// requests (model evaluation plus percentile batch plus frontier
// sweeps), so a thundering herd on one hot query costs one computation
// and one admission slot per herd, not per request.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

// do runs fn under key, coalescing with an identical in-flight call.
// The second return is true when the result came from another caller's
// computation. A follower whose ctx expires while waiting gets the ctx
// error; the leader's own computation keeps the leader's lifetime (its
// deadline, not the followers', bounds the shared work).
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (any, bool, error) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.waiters.Add(1)
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// waiting reports how many followers are currently blocked on key's
// in-flight call (0 when key is not in flight). Tests use it to
// sequence deterministic coalescing scenarios.
func (g *flightGroup) waiting(key string) int64 {
	g.mu.Lock()
	c, ok := g.m[key]
	g.mu.Unlock()
	if !ok {
		return 0
	}
	return c.waiters.Load()
}
