package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// BuildInfo identifies the running binary: module version, VCS revision
// and build time when the binary was built from a checkout with VCS
// stamping, plus the Go toolchain. It is the /v1/version body and rides
// along on /v1/debug/stats and the startup log.
type BuildInfo struct {
	Service   string `json:"service"`
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	BuildTime string `json:"build_time,omitempty"`
	// Modified reports an un-committed working tree at build time.
	Modified bool `json:"modified,omitempty"`
}

// ReadBuildInfo extracts BuildInfo from the binary's embedded
// runtime/debug build information. Binaries built outside a VCS
// checkout (go test, plain go build of a copied tree) degrade to
// version "devel" with no revision.
func ReadBuildInfo() BuildInfo {
	b := BuildInfo{Service: "epserve", Version: "devel", GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return b
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		b.Version = v
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			b.Revision = s.Value
			if len(b.Revision) > 12 {
				b.Revision = b.Revision[:12]
			}
		case "vcs.time":
			b.BuildTime = s.Value
		case "vcs.modified":
			b.Modified = s.Value == "true"
		}
	}
	return b
}

// String renders the build info as the one-line form used by startup
// logs and loadgen output: "epserve devel@1a2b3c4d5e6f (go1.22.0)".
func (b BuildInfo) String() string {
	var sb strings.Builder
	sb.WriteString(b.Service)
	sb.WriteByte(' ')
	sb.WriteString(b.Version)
	if b.Revision != "" {
		sb.WriteByte('@')
		sb.WriteString(b.Revision)
		// Pseudo-versions from a modified tree already end in "+dirty";
		// don't stutter the marker.
		if b.Modified && !strings.HasSuffix(b.Version, "+dirty") {
			sb.WriteString("+dirty")
		}
	}
	sb.WriteString(" (")
	sb.WriteString(b.GoVersion)
	sb.WriteByte(')')
	return sb.String()
}

// handleVersion serves GET /v1/version: the BuildInfo of the running
// binary, so deployments can assert what is actually serving.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	if !allowGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.build)
}

// LatencySummary condenses one route's latency histogram for
// /v1/debug/stats.
type LatencySummary struct {
	Count       uint64  `json:"count"`
	MeanSeconds float64 `json:"mean_seconds"`
	P50Seconds  float64 `json:"p50_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	P99Seconds  float64 `json:"p99_seconds"`
	MaxSeconds  float64 `json:"max_seconds"`
}

// RouteStats is the RED view of one route on /v1/debug/stats: request
// rate (as a monotonic count), errors (the status class split) and
// duration (the latency summary), plus the route's SLO standing.
type RouteStats struct {
	Requests uint64            `json:"requests"`
	Status   map[string]uint64 `json:"status,omitempty"`
	Latency  *LatencySummary   `json:"latency,omitempty"`
	SLO      *SLOStatus        `json:"slo,omitempty"`
}

// AdmissionStats summarizes the admission plane on /v1/debug/stats.
type AdmissionStats struct {
	Admitted         uint64 `json:"admitted"`
	Shed             uint64 `json:"shed"`
	QueueWaits       uint64 `json:"queue_waits"`
	Coalesced        uint64 `json:"coalesced"`
	Panics           uint64 `json:"panics"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
}

// DebugStatsResponse is the /v1/debug/stats body: one JSON snapshot of
// everything an operator reaches for first — build identity, uptime,
// in-flight load, per-route RED + SLO standing, and the kernel-level
// counters (percentile cache, frontier sweep) behind them.
type DebugStatsResponse struct {
	Service       string    `json:"service"`
	Build         BuildInfo `json:"build"`
	UptimeSeconds float64   `json:"uptime_seconds"`
	// Inflight and QueueDepth are the live admission gauges.
	Inflight   float64        `json:"inflight"`
	QueueDepth float64        `json:"queue_depth"`
	Admission  AdmissionStats `json:"admission"`
	// Routes maps route label -> RED/SLO stats.
	Routes map[string]RouteStats `json:"routes"`
	// Counters carries every non-HTTP counter (serve.*, queueing.*,
	// pareto.*, ...) so cache and sweep behavior is inspectable without
	// parsing the Prometheus exposition. HTTP and SLO counters are
	// omitted: Routes already folds them in.
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// handleDebugStats serves GET /v1/debug/stats.
func (s *Server) handleDebugStats(w http.ResponseWriter, r *http.Request) {
	if !allowGet(w, r) {
		return
	}
	snap := s.cfg.Telemetry.Snapshot()
	resp := DebugStatsResponse{
		Service:       "epserve",
		Build:         s.build,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Inflight:      s.ins.inflight.Value(),
		QueueDepth:    s.ins.queueDepth.Value(),
		Admission: AdmissionStats{
			Admitted:         s.ins.admitted.Value(),
			Shed:             s.ins.shed.Value(),
			QueueWaits:       s.ins.queueWaits.Value(),
			Coalesced:        s.ins.coalesced.Value(),
			Panics:           s.ins.panics.Value(),
			DeadlineExceeded: s.ins.deadlineExceeded.Value(),
		},
		Routes: make(map[string]RouteStats, len(s.routes)),
	}
	for _, route := range s.routes {
		resp.Routes[route] = routeStats(snap, route, s.slos[route])
	}
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "http.") || strings.HasPrefix(name, "slo.") {
			continue
		}
		if resp.Counters == nil {
			resp.Counters = make(map[string]uint64)
		}
		resp.Counters[name] = v
	}
	writeJSON(w, http.StatusOK, resp)
}

// routeStats folds one route's telemetry into its RED summary.
func routeStats(snap telemetry.Snapshot, route string, slo *sloTracker) RouteStats {
	rs := RouteStats{
		Requests: snap.Counters["http."+route+".requests"],
		SLO:      slo.status(),
	}
	for _, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		if n := snap.Counters["http."+route+".status_"+class]; n > 0 {
			if rs.Status == nil {
				rs.Status = make(map[string]uint64)
			}
			rs.Status[class] = n
		}
	}
	if hs, ok := snap.Histograms["http."+route+".seconds"]; ok && hs.Count > 0 {
		rs.Latency = &LatencySummary{
			Count:       hs.Count,
			MeanSeconds: hs.Mean,
			P50Seconds:  hs.P50,
			P95Seconds:  hs.P95,
			P99Seconds:  hs.P99,
			MaxSeconds:  hs.Max,
		}
	}
	return rs
}
