package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"

	"repro/internal/queueing"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// The batch evaluation plane: POST on /v1/percentiles, /v1/epmetrics
// and /v1/frontier carries many evaluations in one HTTP exchange. The
// point is amortization — one connection, one JSON decode, one admission
// pass and one response encode for N evaluations that would otherwise
// each pay the full per-request overhead — without letting batches dodge
// the load shedder: the admission weigher below decodes the body exactly
// once, computes the batch's expanded item count, and charges that many
// units, so a batch of 512 items sheds exactly like 512 scalar requests
// would.
//
// Item failures are per-item: one bad mix in a batch of 100 yields 99
// results and one error envelope, not a failed batch. Only context
// errors (deadline, client disconnect) abort the whole batch, because
// every remaining item would fail the same way.

// maxBatchItems bounds the expanded per-item evaluation count of one
// batch request (items × utilization points for percentiles). The bound
// keeps one request from monopolizing the admission budget for seconds:
// at ~1 µs per warm item a full batch is still ~1 ms of work.
const maxBatchItems = 1024

// maxBatchBodyBytes bounds the POST body size read off the wire before
// decoding.
const maxBatchBodyBytes = 1 << 20

// frontierAdmissionUnit converts a frontier sweep's configuration-space
// size into admission units: one unit per 4096 configurations, matching
// roughly the cost ratio between one memoized-table sweep block and one
// scalar percentile evaluation. Both the scalar GET weigher and the
// batch weigher use it, so a 100k-configuration sweep can no longer
// slip past admission for the price of one percentile lookup.
const frontierAdmissionUnit = 4096

// batchBodyKey carries the weigher-decoded batch request through the
// request context to the handler, so the body is decoded exactly once.
type batchBodyKey struct{}

func stashBatch(r *http.Request, v any) *http.Request {
	return r.WithContext(context.WithValue(r.Context(), batchBodyKey{}, v))
}

func batchBody(r *http.Request) any {
	return r.Context().Value(batchBodyKey{})
}

// decodeBatchBody decodes r's JSON body into dst, bounded by
// maxBatchBodyBytes, writing the 400 envelope on failure.
func decodeBatchBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("invalid JSON body: %v", err))
		return false
	}
	return true
}

// BatchItemError is the per-item error envelope inside a batch
// response: the item's result slot carries it instead of a result, and
// the batch itself still answers 200.
type BatchItemError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func itemError(status int, err error) *BatchItemError {
	code := "bad_request"
	if status == http.StatusNotFound {
		code = "not_found"
	}
	return &BatchItemError{Code: code, Message: err.Error()}
}

// batchMeta is the shared bookkeeping of one batch response: counters,
// per-request attribution and the X-Batch-Errors header (which lets
// load generators count item failures without parsing bodies).
func (s *Server) batchMeta(w http.ResponseWriter, r *http.Request, items, itemErrors int) {
	s.ins.batchRequests.Inc()
	s.ins.batchItems.Add(uint64(items))
	s.ins.batchItemErrors.Add(uint64(itemErrors))
	rc := telemetry.RequestFrom(r.Context())
	rc.Add(telemetry.AttrBatchItems, int64(items))
	w.Header().Set("X-Batch-Errors", strconv.Itoa(itemErrors))
}

// --- /v1/percentiles batch ---

// PercentilesBatchItem is one configuration of a percentiles batch:
// either a (workload, mix) pair in model mode or a raw service time d,
// evaluated at every utilization in U (falling back to the
// request-level U) for the percentiles in P (falling back to the
// request-level P, then to 50,95,99).
type PercentilesBatchItem struct {
	Workload string    `json:"workload,omitempty"`
	Mix      string    `json:"mix,omitempty"`
	D        float64   `json:"d,omitempty"`
	U        []float64 `json:"u,omitempty"`
	P        []float64 `json:"p,omitempty"`
	// Kernel selects the queueing kernel ("md1", "mg1", "mmk"); SCV and
	// Servers carry its shape parameter. An item naming a kernel uses its
	// own (kernel, scv, servers) triple wholly; items that omit it fall
	// back to the request-level triple, then to the M/D/1 default.
	Kernel  string  `json:"kernel,omitempty"`
	SCV     float64 `json:"scv,omitempty"`
	Servers int     `json:"servers,omitempty"`
}

// PercentilesBatchRequest is the POST /v1/percentiles body: Items
// crossed with their utilization points, request-level U, P and the
// kernel triple serving as defaults for items that omit them.
type PercentilesBatchRequest struct {
	U       []float64              `json:"u,omitempty"`
	P       []float64              `json:"p,omitempty"`
	Kernel  string                 `json:"kernel,omitempty"`
	SCV     float64                `json:"scv,omitempty"`
	Servers int                    `json:"servers,omitempty"`
	Items   []PercentilesBatchItem `json:"items"`
}

// uFor returns item i's utilization list after defaulting.
func (req *PercentilesBatchRequest) uFor(i int) []float64 {
	if len(req.Items[i].U) > 0 {
		return req.Items[i].U
	}
	return req.U
}

// pFor returns item i's percentile list after defaulting.
func (req *PercentilesBatchRequest) pFor(i int) []float64 {
	if len(req.Items[i].P) > 0 {
		return req.Items[i].P
	}
	if len(req.P) > 0 {
		return req.P
	}
	return defaultPercentiles
}

var defaultPercentiles = []float64{50, 95, 99}

// kernelFor resolves item i's kernel spec after defaulting: the item's
// own triple when it names a kernel, the request-level triple
// otherwise. Omitting both yields the M/D/1 default.
func (req *PercentilesBatchRequest) kernelFor(i int) (queueing.Spec, error) {
	kernel, scv, servers := req.Kernel, req.SCV, req.Servers
	if it := &req.Items[i]; it.Kernel != "" {
		kernel, scv, servers = it.Kernel, it.SCV, it.Servers
	}
	return kernelSpecFrom(kernel, scv, servers)
}

// expandedCount validates the batch's structure and returns the
// expanded evaluation count (= the admission weight): the sum over
// items of their utilization-point counts.
func (req *PercentilesBatchRequest) expandedCount() (int, error) {
	if len(req.Items) == 0 {
		return 0, errors.New("batch has no items")
	}
	total := 0
	for i := range req.Items {
		n := len(req.uFor(i))
		if n == 0 {
			return 0, fmt.Errorf("item %d has no utilization points (set item u or request-level u)", i)
		}
		if len(req.pFor(i)) > maxPercentiles {
			return 0, fmt.Errorf("item %d asks for more than %d percentiles", i, maxPercentiles)
		}
		total += n
	}
	if total > maxBatchItems {
		return 0, fmt.Errorf("batch expands to %d evaluations, more than the per-request cap %d", total, maxBatchItems)
	}
	return total, nil
}

// PercentilesBatchResult is one expanded (item, utilization) evaluation
// in a PercentilesBatchResponse: exactly one of Result and Error is
// set.
type PercentilesBatchResult struct {
	// Item indexes the request item this evaluation came from.
	Item int `json:"item"`
	// U is the utilization point evaluated.
	U      float64              `json:"u"`
	Result *PercentilesResponse `json:"result,omitempty"`
	Error  *BatchItemError      `json:"error,omitempty"`
}

// PercentilesBatchResponse is the POST /v1/percentiles response body.
// Results holds one entry per expanded (item, utilization) pair in
// deterministic item-major order.
type PercentilesBatchResponse struct {
	Count   int                      `json:"count"`
	Errors  int                      `json:"errors"`
	Results []PercentilesBatchResult `json:"results"`
}

// weighPercentiles is the admission weigher of /v1/percentiles: GET
// costs 1 unit, POST decodes the batch body once and costs its expanded
// evaluation count.
func (s *Server) weighPercentiles(w http.ResponseWriter, r *http.Request) (int64, *http.Request, bool) {
	if r.Method != http.MethodPost {
		return 1, r, true
	}
	req := new(PercentilesBatchRequest)
	if !decodeBatchBody(w, r, req) {
		return 0, r, false
	}
	n, err := req.expandedCount()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return 0, r, false
	}
	return int64(n), stashBatch(r, req), true
}

// pctBatchEntry is one expanded evaluation after per-item resolution:
// the service time is resolved once per item (one model analysis for
// all of the item's utilization points) before the fan-out.
type pctBatchEntry struct {
	item        int
	u           float64
	ps          []float64
	wlName, mix string
	serviceTime float64
	spec        queueing.Spec
	err         *BatchItemError // resolution failure, set before fan-out
}

// handlePercentilesBatch serves POST /v1/percentiles: the batch body
// was decoded (and admission-charged) by weighPercentiles; here the
// expanded evaluations fan out across the sweep pool into fixed result
// slots, each entering the same singleflight group and percentile cache
// as a scalar GET would.
func (s *Server) handlePercentilesBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := batchBody(r).(*PercentilesBatchRequest)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request", "POST /v1/percentiles requires a JSON batch body")
		return
	}

	// Resolve each item once, then expand to (item, u) entries.
	entries := make([]pctBatchEntry, 0, len(req.Items))
	for i := range req.Items {
		it := &req.Items[i]
		proto := pctBatchEntry{item: i, ps: req.pFor(i)}
		switch {
		case it.Mix != "" && it.D != 0:
			proto.err = &BatchItemError{Code: "bad_request",
				Message: "pass either mix (model mode) or d (raw service time), not both"}
		case it.Mix != "":
			proto.wlName, proto.mix = it.Workload, it.Mix
			if proto.wlName == "" {
				proto.wlName = "EP"
			}
			a, status, err := s.analysisFor(proto.wlName, proto.mix)
			if err != nil {
				proto.err = itemError(status, err)
			} else {
				proto.serviceTime = float64(a.Result.Time)
			}
		case it.D > 0:
			proto.serviceTime = it.D
		case it.D < 0:
			proto.err = &BatchItemError{Code: "bad_request", Message: "service time d must be positive"}
		default:
			proto.err = &BatchItemError{Code: "bad_request", Message: "missing mix (model mode) or d (raw service time)"}
		}
		for _, p := range proto.ps {
			if p < 0 || p >= 100 {
				proto.err = &BatchItemError{Code: "bad_request",
					Message: fmt.Sprintf("invalid percentile %g: want a number in [0, 100)", p)}
				break
			}
		}
		if spec, err := req.kernelFor(i); err != nil {
			if proto.err == nil {
				proto.err = &BatchItemError{Code: "bad_request", Message: err.Error()}
			}
		} else {
			proto.spec = spec
		}
		for _, u := range req.uFor(i) {
			e := proto
			e.u = u
			entries = append(entries, e)
		}
	}

	results := make([]PercentilesBatchResult, len(entries))
	var aborted atomic.Bool
	ctx := r.Context()
	ferr := sweep.ForEachContext(ctx, len(entries), s.cfg.Workers, func(i int) {
		e := &entries[i]
		results[i] = PercentilesBatchResult{Item: e.item, U: e.u}
		if e.err != nil {
			results[i].Error = e.err
			return
		}
		if e.u < 0 || e.u >= 1 {
			results[i].Error = &BatchItemError{Code: "bad_request",
				Message: fmt.Sprintf("utilization u=%g outside [0, 1)", e.u)}
			return
		}
		v, err := s.percentilesShared(ctx, e.wlName, e.mix, e.serviceTime, e.u, e.ps, e.spec)
		switch {
		case err == nil:
			results[i].Result = v
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			aborted.Store(true)
		default:
			results[i].Error = &BatchItemError{Code: "bad_request", Message: err.Error()}
		}
	})
	if ferr != nil || aborted.Load() {
		err := ferr
		if err == nil {
			err = ctx.Err()
		}
		s.deadlineError(w, r, err)
		return
	}

	resp := PercentilesBatchResponse{Count: len(results), Results: results}
	for i := range results {
		if results[i].Error != nil {
			resp.Errors++
		}
	}
	s.batchMeta(w, r, resp.Count, resp.Errors)
	writeJSON(w, http.StatusOK, resp)
}

// --- /v1/epmetrics batch ---

// EPMetricsBatchItem is one (workload, mix, ref) evaluation of an
// EP-metrics batch; Workload and Ref fall back to the request level.
type EPMetricsBatchItem struct {
	Workload string `json:"workload,omitempty"`
	Mix      string `json:"mix"`
	Ref      string `json:"ref,omitempty"`
}

// EPMetricsBatchRequest is the POST /v1/epmetrics body.
type EPMetricsBatchRequest struct {
	Workload string               `json:"workload,omitempty"`
	Ref      string               `json:"ref,omitempty"`
	Items    []EPMetricsBatchItem `json:"items"`
}

// EPMetricsBatchResult is one item's outcome: exactly one of Result and
// Error is set.
type EPMetricsBatchResult struct {
	Item   int                `json:"item"`
	Result *EPMetricsResponse `json:"result,omitempty"`
	Error  *BatchItemError    `json:"error,omitempty"`
}

// EPMetricsBatchResponse is the POST /v1/epmetrics response body.
type EPMetricsBatchResponse struct {
	Count   int                    `json:"count"`
	Errors  int                    `json:"errors"`
	Results []EPMetricsBatchResult `json:"results"`
}

// weighEpmetrics is the admission weigher of /v1/epmetrics: GET costs
// 1 unit, POST costs one unit per item.
func (s *Server) weighEpmetrics(w http.ResponseWriter, r *http.Request) (int64, *http.Request, bool) {
	if r.Method != http.MethodPost {
		return 1, r, true
	}
	req := new(EPMetricsBatchRequest)
	if !decodeBatchBody(w, r, req) {
		return 0, r, false
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "batch has no items")
		return 0, r, false
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch has %d items, more than the per-request cap %d", len(req.Items), maxBatchItems))
		return 0, r, false
	}
	return int64(len(req.Items)), stashBatch(r, req), true
}

// handleEpmetricsBatch serves POST /v1/epmetrics, fanning the items out
// across the sweep pool into fixed result slots.
func (s *Server) handleEpmetricsBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := batchBody(r).(*EPMetricsBatchRequest)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request", "POST /v1/epmetrics requires a JSON batch body")
		return
	}
	results := make([]EPMetricsBatchResult, len(req.Items))
	ctx := r.Context()
	ferr := sweep.ForEachContext(ctx, len(req.Items), s.cfg.Workers, func(i int) {
		it := &req.Items[i]
		wlName, refMix := it.Workload, it.Ref
		if wlName == "" {
			wlName = req.Workload
		}
		if refMix == "" {
			refMix = req.Ref
		}
		results[i] = EPMetricsBatchResult{Item: i}
		resp, status, err := s.epmetricsFor(wlName, it.Mix, refMix)
		if err != nil {
			results[i].Error = itemError(status, err)
			return
		}
		results[i].Result = &resp
	})
	if ferr != nil {
		s.deadlineError(w, r, ferr)
		return
	}

	resp := EPMetricsBatchResponse{Count: len(results), Results: results}
	for i := range results {
		if results[i].Error != nil {
			resp.Errors++
		}
	}
	s.batchMeta(w, r, resp.Count, resp.Errors)
	writeJSON(w, http.StatusOK, resp)
}

// --- /v1/frontier batch ---

// FrontierBatchItem is one frontier sweep of a batch. MaxA9/MaxK10
// default to 32/12 when omitted (nil), matching the GET defaults.
type FrontierBatchItem struct {
	Workload        string  `json:"workload,omitempty"`
	MaxA9           *int    `json:"max_a9,omitempty"`
	MaxK10          *int    `json:"max_k10,omitempty"`
	DVFS            bool    `json:"dvfs,omitempty"`
	PowerWatts      float64 `json:"power_watts,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	EnergyJoules    float64 `json:"energy_joules,omitempty"`
	// U > 0 annotates every frontier point with the P-th percentile
	// response time at that utilization under the selected kernel
	// (P defaults to 95, the kernel triple to M/D/1).
	U       float64 `json:"u,omitempty"`
	P       float64 `json:"p,omitempty"`
	Kernel  string  `json:"kernel,omitempty"`
	SCV     float64 `json:"scv,omitempty"`
	Servers int     `json:"servers,omitempty"`
}

// FrontierBatchRequest is the POST /v1/frontier body.
type FrontierBatchRequest struct {
	Items []FrontierBatchItem `json:"items"`
}

// FrontierBatchResult is one item's outcome: exactly one of Result and
// Error is set.
type FrontierBatchResult struct {
	Item   int               `json:"item"`
	Result *FrontierResponse `json:"result,omitempty"`
	Error  *BatchItemError   `json:"error,omitempty"`
}

// FrontierBatchResponse is the POST /v1/frontier response body.
type FrontierBatchResponse struct {
	Count   int                   `json:"count"`
	Errors  int                   `json:"errors"`
	Results []FrontierBatchResult `json:"results"`
}

// params maps item i onto the canonical frontierParams. Latency
// annotation fields are validated here (the GET form validates in
// frontierQueryParams); an invalid triple is reported through the
// returned error and fails the item.
func (req *FrontierBatchRequest) params(i int) (frontierParams, error) {
	it := &req.Items[i]
	p := frontierParams{
		workload: it.Workload,
		maxA9:    32, maxK10: 12,
		dvfs:     it.DVFS,
		powerW:   it.PowerWatts,
		deadline: it.DeadlineSeconds,
		energy:   it.EnergyJoules,
	}
	if p.workload == "" {
		p.workload = "EP"
	}
	if it.MaxA9 != nil {
		p.maxA9 = *it.MaxA9
	}
	if it.MaxK10 != nil {
		p.maxK10 = *it.MaxK10
	}
	if it.U != 0 {
		if it.U < 0 || it.U >= 1 {
			return p, fmt.Errorf("utilization u=%g outside (0, 1)", it.U)
		}
		p.u = it.U
		p.pct = 95
		if it.P != 0 {
			if it.P < 0 || it.P >= 100 {
				return p, fmt.Errorf("invalid percentile %g: want a number in [0, 100)", it.P)
			}
			p.pct = it.P
		}
		spec, err := kernelSpecFrom(it.Kernel, it.SCV, it.Servers)
		if err != nil {
			return p, err
		}
		p.spec = spec
	}
	return p, nil
}

// frontierUnits converts a configuration-space size into admission
// units.
func frontierUnits(space int) int64 {
	u := int64((space + frontierAdmissionUnit - 1) / frontierAdmissionUnit)
	if u < 1 {
		u = 1
	}
	return u
}

// weighFrontier is the admission weigher of /v1/frontier. A GET sweep
// charges units proportional to the configuration space it spans —
// before this weigher existed a 100k-configuration sweep cost the same
// single unit as one percentile lookup, so a handful of sweeps could
// multiply the service's concurrent work by orders of magnitude without
// moving the shed threshold. A POST batch charges the sum of its items'
// sweep costs. Parse or plan failures fall back to weight 1 and let the
// handler produce the error response.
func (s *Server) weighFrontier(w http.ResponseWriter, r *http.Request) (int64, *http.Request, bool) {
	if r.Method != http.MethodPost {
		p, ok := frontierQueryParams(discardResponseWriter{}, r.URL.Query())
		if !ok {
			return 1, r, true
		}
		if _, space, _, err := s.frontierPlan(p); err == nil {
			return frontierUnits(space), r, true
		}
		return 1, r, true
	}
	req := new(FrontierBatchRequest)
	if !decodeBatchBody(w, r, req) {
		return 0, r, false
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "batch has no items")
		return 0, r, false
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch has %d items, more than the per-request cap %d", len(req.Items), maxBatchItems))
		return 0, r, false
	}
	var weight int64
	for i := range req.Items {
		p, err := req.params(i)
		if err != nil {
			weight++ // invalid item: costs one unit, fails per-item below
			continue
		}
		if _, space, _, err := s.frontierPlan(p); err == nil {
			weight += frontierUnits(space)
		} else {
			weight++
		}
	}
	return weight, stashBatch(r, req), true
}

// discardResponseWriter swallows the error responses
// frontierQueryParams would write when the weigher probes the query
// form; the handler re-parses and writes the real error.
type discardResponseWriter struct{}

func (discardResponseWriter) Header() http.Header         { return http.Header{} }
func (discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (discardResponseWriter) WriteHeader(int)             {}

// handleFrontierBatch serves POST /v1/frontier. Items fan out across
// the sweep pool; each item's sweep itself fans out through the shared
// pool and the singleflight group, so identical sweeps inside one batch
// (or across concurrent requests) run once.
func (s *Server) handleFrontierBatch(w http.ResponseWriter, r *http.Request) {
	req, ok := batchBody(r).(*FrontierBatchRequest)
	if !ok {
		writeError(w, http.StatusBadRequest, "bad_request", "POST /v1/frontier requires a JSON batch body")
		return
	}
	results := make([]FrontierBatchResult, len(req.Items))
	var aborted atomic.Bool
	ctx := r.Context()
	ferr := sweep.ForEachContext(ctx, len(req.Items), s.cfg.Workers, func(i int) {
		results[i] = FrontierBatchResult{Item: i}
		p, err := req.params(i)
		if err != nil {
			results[i].Error = &BatchItemError{Code: "bad_request", Message: err.Error()}
			return
		}
		limits, _, status, err := s.frontierPlan(p)
		if err != nil {
			results[i].Error = itemError(status, err)
			return
		}
		v, err := s.frontierShared(ctx, p, limits)
		switch {
		case err == nil:
			results[i].Result = v
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			aborted.Store(true)
		default:
			results[i].Error = &BatchItemError{Code: "bad_request", Message: err.Error()}
		}
	})
	if ferr != nil || aborted.Load() {
		err := ferr
		if err == nil {
			err = ctx.Err()
		}
		s.deadlineError(w, r, err)
		return
	}

	resp := FrontierBatchResponse{Count: len(results), Results: results}
	for i := range results {
		if results[i].Error != nil {
			resp.Errors++
		}
	}
	s.batchMeta(w, r, resp.Count, resp.Errors)
	writeJSON(w, http.StatusOK, resp)
}
