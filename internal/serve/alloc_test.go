package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/telemetry"
)

// Allocation regression guards for the serving hot path. The bounds are
// measured warm values plus ~40% headroom, not aspirations: the warm
// scalar request (cache hit, pooled encode buffer, no logging) sits
// near 76 allocations end to end, and the batch path amortizes its
// fixed cost so far that one warm item costs ~15 — the alloc-level
// counterpart of the batch throughput win. If either number jumps, a
// pooled buffer or pre-sized slice on the hot path has regressed.

// allocServer builds a server with deterministic allocation behavior:
// one sweep worker (inline fan-out), ample admission units, discard
// logging.
func allocServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Config{Telemetry: telemetry.New(), MaxInflight: 256, Workers: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.ready.Store(true)
	return srv
}

// TestScalarPercentilesAllocs pins the warm scalar GET path end to end
// through the full middleware chain.
func TestScalarPercentilesAllocs(t *testing.T) {
	srv := allocServer(t)
	run := func() int {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/percentiles?d=1&u=0.7&p=99", nil))
		return rec.Code
	}
	if code := run(); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}
	avg := testing.AllocsPerRun(200, func() {
		if run() != http.StatusOK {
			panic("scalar request failed")
		}
	})
	// Measured ~76 warm; the recorder and request construction are part
	// of the run, so the handler's own share is lower still.
	if avg > 110 {
		t.Fatalf("warm scalar GET = %.1f allocs/request, want <= 110", avg)
	}
}

// TestBatchPercentilesPerItemAllocs pins the warm per-item cost of a
// 64-point batch: the fixed request overhead (decode, admission,
// response envelope) amortizes across items, so one batched evaluation
// must cost a small fraction of a scalar request.
func TestBatchPercentilesPerItemAllocs(t *testing.T) {
	srv := allocServer(t)
	const items = 64
	us := make([]float64, items)
	for i := range us {
		us[i] = 0.30 + 0.01*float64(i)
	}
	raw, err := json.Marshal(map[string]any{
		"u":     us,
		"p":     []float64{99},
		"items": []map[string]any{{"d": 1.0}},
	})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	run := func() int {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, "/v1/percentiles", bytes.NewReader(raw))
		srv.Handler().ServeHTTP(rec, req)
		return rec.Code
	}
	if code := run(); code != http.StatusOK {
		t.Fatalf("warmup status %d", code)
	}
	avg := testing.AllocsPerRun(100, func() {
		if run() != http.StatusOK {
			panic("batch request failed")
		}
	})
	perItem := avg / items
	// Measured ~14.8 warm per item.
	if perItem > 25 {
		t.Fatalf("warm batch = %.2f allocs/item (%.0f total), want <= 25", perItem, avg)
	}
}

// BenchmarkScalarPercentiles and BenchmarkBatchPercentiles64 time the
// same warm paths the alloc guards pin, for profiling the serving hot
// path (`go test -bench BenchmarkBatch -cpuprofile ...`).
func BenchmarkScalarPercentiles(b *testing.B) {
	srv, err := New(Config{Telemetry: telemetry.New(), MaxInflight: 256, Workers: 1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	srv.ready.Store(true)
	h := srv.Handler()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/percentiles?d=1&u=0.7&p=99", nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func BenchmarkBatchPercentiles64(b *testing.B) {
	srv, err := New(Config{Telemetry: telemetry.New(), MaxInflight: 256, Workers: 1})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	srv.ready.Store(true)
	h := srv.Handler()
	const items = 64
	us := make([]float64, items)
	for i := range us {
		us[i] = 0.30 + 0.01*float64(i)
	}
	raw, err := json.Marshal(map[string]any{
		"u":     us,
		"p":     []float64{50, 95, 99},
		"items": []map[string]any{{"d": 1.0}},
	})
	if err != nil {
		b.Fatalf("marshal: %v", err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/percentiles", bytes.NewReader(raw)))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*items), "ns/item")
}
