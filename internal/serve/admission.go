package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// errShed is returned by limiter.acquire when the wait queue is full;
// the middleware maps it to 429 with a Retry-After header.
var errShed = errors.New("serve: overloaded, request shed")

// limiter is the bounded admission control in front of every model
// endpoint: at most maxInflight requests execute concurrently (slots is
// a channel semaphore), at most maxQueue more wait for a slot, and
// anything beyond that is shed immediately. Shedding at a bounded queue
// depth rather than queueing without limit keeps tail latency bounded
// under overload — the same argument the M/D/1 analysis this service
// exposes makes about its modelled clusters.
type limiter struct {
	slots    chan struct{}
	maxQueue int64
	queued   atomic.Int64
	ins      *instruments
}

func newLimiter(maxInflight, maxQueue int, ins *instruments) *limiter {
	return &limiter{
		slots:    make(chan struct{}, maxInflight),
		maxQueue: int64(maxQueue),
		ins:      ins,
	}
}

// acquire claims an execution slot, waiting in the bounded queue if all
// slots are busy. It returns errShed when the queue is full, the ctx
// error if the request's deadline expires (or the client disconnects)
// while waiting, and nil once a slot is held — the caller must then
// release exactly once.
func (l *limiter) acquire(ctx context.Context) error {
	select {
	case l.slots <- struct{}{}:
		l.admitted()
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		l.ins.shed.Inc()
		return errShed
	}
	l.ins.queueWaits.Inc()
	l.ins.queueDepth.Add(1)
	defer func() {
		l.queued.Add(-1)
		l.ins.queueDepth.Add(-1)
	}()
	select {
	case l.slots <- struct{}{}:
		l.admitted()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (l *limiter) admitted() {
	l.ins.admitted.Inc()
	l.ins.inflight.Add(1)
}

// release returns a slot claimed by acquire.
func (l *limiter) release() {
	<-l.slots
	l.ins.inflight.Add(-1)
}
