package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"
)

// errShed is returned by limiter.acquire when the wait queue is full;
// the middleware maps it to 429 with a Retry-After header.
var errShed = errors.New("serve: overloaded, request shed")

// limiter is the bounded admission control in front of every model
// endpoint, generalized to weighted requests: a scalar percentile query
// costs 1 unit, a batch of N items costs N, and a frontier sweep costs
// units proportional to its configuration-space size. At most capacity
// units execute concurrently, at most maxQueue requests wait for
// units, and anything beyond that is shed immediately. Shedding at a
// bounded queue depth rather than queueing without limit keeps tail
// latency bounded under overload — the same argument the M/D/1
// analysis this service exposes makes about its modelled clusters.
//
// Weighting matters because the admission budget models CPU: before it,
// a batch of 512 evaluations and a single evaluation each cost one
// slot, so a handful of large batches could grab every slot and
// multiply the service's concurrent work by orders of magnitude while
// the shed threshold never moved.
//
// Waiters are granted strictly FIFO: a wide batch at the head blocks
// narrower requests behind it until enough units free up, rather than
// being starved forever by a stream of cheap requests slipping past it.
type limiter struct {
	mu       sync.Mutex
	capacity int64
	inUse    int64
	maxQueue int64
	queued   int64
	waiters  list.List // of *waiter, FIFO
	ins      *instruments
}

// waiter is one queued acquire: ready is closed (under the limiter's
// lock, with granted set) when its units are assigned.
type waiter struct {
	weight  int64
	granted bool
	ready   chan struct{}
}

func newLimiter(maxInflight, maxQueue int, ins *instruments) *limiter {
	return &limiter{
		capacity: int64(maxInflight),
		maxQueue: int64(maxQueue),
		ins:      ins,
	}
}

// acquire claims weight units, waiting in the bounded FIFO queue if
// they are not free. Weights below 1 cost 1; weights above the total
// capacity are clamped to it, so a batch wider than the whole budget
// still runs (alone) instead of deadlocking. It returns errShed when
// the wait queue is full and the ctx error if the request's deadline
// expires (or the client disconnects) while waiting. On success the
// returned release function must be called exactly once.
func (l *limiter) acquire(ctx context.Context, weight int64) (func(), error) {
	if weight < 1 {
		weight = 1
	}
	if weight > l.capacity {
		weight = l.capacity
	}
	l.mu.Lock()
	// Admit immediately only when nobody is queued ahead (FIFO).
	if l.waiters.Len() == 0 && l.inUse+weight <= l.capacity {
		l.inUse += weight
		l.mu.Unlock()
		l.admitted(weight)
		return func() { l.release(weight) }, nil
	}
	if l.queued >= l.maxQueue {
		l.mu.Unlock()
		l.ins.shed.Inc()
		return nil, errShed
	}
	wt := &waiter{weight: weight, ready: make(chan struct{})}
	elem := l.waiters.PushBack(wt)
	l.queued++
	l.mu.Unlock()
	l.ins.queueWaits.Inc()
	l.ins.queueDepth.Add(1)
	defer l.ins.queueDepth.Add(-1)

	select {
	case <-wt.ready:
		l.admitted(weight)
		return func() { l.release(weight) }, nil
	case <-ctx.Done():
		l.mu.Lock()
		if wt.granted {
			// The grant raced the cancellation: hand the units straight
			// back and wake whoever they now fit.
			l.inUse -= weight
			l.wakeLocked()
			l.mu.Unlock()
			return nil, ctx.Err()
		}
		l.waiters.Remove(elem)
		l.queued--
		l.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release returns weight units and grants them to queued waiters.
func (l *limiter) release(weight int64) {
	l.mu.Lock()
	l.inUse -= weight
	l.wakeLocked()
	l.mu.Unlock()
	l.ins.inflight.Add(float64(-weight))
}

// wakeLocked grants units to waiters from the queue head while they
// fit. Caller holds l.mu.
func (l *limiter) wakeLocked() {
	for {
		front := l.waiters.Front()
		if front == nil {
			return
		}
		wt := front.Value.(*waiter)
		if l.inUse+wt.weight > l.capacity {
			return
		}
		l.inUse += wt.weight
		wt.granted = true
		close(wt.ready)
		l.waiters.Remove(front)
		l.queued--
	}
}

func (l *limiter) admitted(weight int64) {
	l.ins.admitted.Inc()
	l.ins.admittedUnits.Add(uint64(weight))
	l.ins.inflight.Add(float64(weight))
}
