package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/loadtrace"
	"repro/internal/replay"
	"repro/internal/telemetry"
)

// maxReplayBody bounds a /v1/replay request body; a maximum-size
// explicit trace (maxReplaySteps points) fits comfortably.
const maxReplayBody = 64 << 20

// maxReplayMixes bounds the candidate ensemble of one replay request —
// every candidate costs a model evaluation up front and a queue build
// per adaptive step.
const maxReplayMixes = 32

// ReplayShape specifies a synthetic load shape for /v1/replay requests
// that do not carry an explicit trace. Kind selects the generator;
// generators read only their own parameters.
type ReplayShape struct {
	// Kind is "diurnal", "flashcrowd", "ramp" or "steps".
	Kind string `json:"kind"`

	// Diurnal: load = Mean + Amplitude*cos around a PeriodSeconds cycle
	// peaking at PeakAtSeconds.
	Mean          float64 `json:"mean,omitempty"`
	Amplitude     float64 `json:"amplitude,omitempty"`
	PeriodSeconds float64 `json:"period_seconds,omitempty"`
	PeakAtSeconds float64 `json:"peak_at_seconds,omitempty"`

	// Flash crowd: Base load surging to Peak at StartSeconds, decaying
	// with HalfLifeSeconds.
	Base            float64 `json:"base,omitempty"`
	Peak            float64 `json:"peak,omitempty"`
	StartSeconds    float64 `json:"start_seconds,omitempty"`
	HalfLifeSeconds float64 `json:"half_life_seconds,omitempty"`

	// Ramp: linear From -> To over the whole trace.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`

	// Steps: Levels cycled with DwellSeconds each.
	Levels       []float64 `json:"levels,omitempty"`
	DwellSeconds float64   `json:"dwell_seconds,omitempty"`

	// StepSeconds and Steps control the sampling grid (required).
	StepSeconds float64 `json:"step_seconds"`
	Steps       int     `json:"steps"`
}

// shape builds the loadtrace generator, defaulting period/dwell off the
// sampled horizon so minimal requests are valid.
func (rs ReplayShape) shape() (loadtrace.Shape, error) {
	horizon := rs.StepSeconds * float64(rs.Steps)
	switch rs.Kind {
	case "diurnal":
		period := rs.PeriodSeconds
		if period <= 0 {
			period = horizon
		}
		return loadtrace.Diurnal{Mean: rs.Mean, Amplitude: rs.Amplitude, Period: period, PeakAt: rs.PeakAtSeconds}, nil
	case "flashcrowd":
		half := rs.HalfLifeSeconds
		if half <= 0 {
			half = horizon / 8
		}
		return loadtrace.FlashCrowd{Base: rs.Base, Peak: rs.Peak, Start: rs.StartSeconds, HalfLife: half}, nil
	case "ramp":
		return loadtrace.Ramp{From: rs.From, To: rs.To, Duration: horizon}, nil
	case "steps":
		if len(rs.Levels) == 0 {
			return nil, errors.New("steps shape needs levels")
		}
		dwell := rs.DwellSeconds
		if dwell <= 0 {
			dwell = horizon / float64(len(rs.Levels))
		}
		return loadtrace.Steps{Levels: rs.Levels, Dwell: dwell}, nil
	default:
		return nil, fmt.Errorf("unknown shape kind %q (want diurnal, flashcrowd, ramp or steps)", rs.Kind)
	}
}

// ReplayRequest is the POST /v1/replay request body. Exactly one of
// Trace and Shape supplies the utilization time series.
type ReplayRequest struct {
	// Workload names the profile (default "EP").
	Workload string `json:"workload,omitempty"`
	// Mixes is the candidate ensemble in COUNTxTYPE notation. Budget
	// replaces it with the paper's 1 kW substitution ladder.
	Mixes  []string `json:"mixes,omitempty"`
	Budget bool     `json:"budget,omitempty"`
	// Adaptive re-provisions between steps; Hysteresis damps switching.
	Adaptive   bool    `json:"adaptive,omitempty"`
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// SLOSeconds (at SLOPercentile, default 95) gates feasibility and
	// violation accounting; 0 disables.
	SLOSeconds    float64 `json:"slo_seconds,omitempty"`
	SLOPercentile float64 `json:"slo_percentile,omitempty"`
	// Percentiles are the response percentiles per step (default 95, 99).
	Percentiles []float64 `json:"percentiles,omitempty"`
	// SwitchEnergyJoules is charged per configuration switch.
	SwitchEnergyJoules float64 `json:"switch_energy_joules,omitempty"`
	// Trace is an explicit utilization time series; Shape a synthetic one.
	Trace *replay.Trace `json:"trace,omitempty"`
	Shape *ReplayShape  `json:"shape,omitempty"`
	// SummaryOnly suppresses the per-step stream, leaving one summary line.
	SummaryOnly bool `json:"summary_only,omitempty"`
}

// replayStepLine and replaySummaryLine are the NDJSON frames of the
// /v1/replay response stream: zero or more step lines followed by
// exactly one summary line, or an error line if the run dies mid-stream.
type replayStepLine struct {
	Step *replay.Step `json:"step"`
}

type replaySummaryLine struct {
	Summary *replay.Summary `json:"summary"`
}

type replayErrorLine struct {
	Error errorBody `json:"error"`
}

// handleReplay serves POST /v1/replay: a trace-driven replay streamed
// back as NDJSON. All validation happens before the first byte of the
// stream, so malformed requests get a proper HTTP error status;
// failures after streaming begins terminate the stream with an error
// line (the status is already on the wire).
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("method %s not allowed", r.Method))
		return
	}
	var req ReplayRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxReplayBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("decoding request body: %v", err))
		return
	}

	tr, ok := s.replayTrace(w, req)
	if !ok {
		return
	}
	cands, ok := s.replayCandidates(w, req)
	if !ok {
		return
	}

	opt := replay.Options{
		Percentiles:   req.Percentiles,
		SLO:           req.SLOSeconds,
		SLOPercentile: req.SLOPercentile,
		Adaptive:      req.Adaptive,
		Policy: adaptive.Policy{
			SLO:        req.SLOSeconds,
			Percentile: req.SLOPercentile,
			Hysteresis: req.Hysteresis,
		},
		SwitchEnergy: req.SwitchEnergyJoules,
		Workers:      s.cfg.Workers,
		DiscardSteps: true,
	}
	for _, p := range req.Percentiles {
		if p < 0 || p >= 100 {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("percentile %g outside [0, 100)", p))
			return
		}
	}

	// Validation is done: switch to the NDJSON stream. Every frame is
	// flushed so clients watch the replay progress chunk by chunk.
	flusher, _ := w.(http.Flusher)
	streaming := false
	enc := json.NewEncoder(w)
	emit := func(v any) error {
		if !streaming {
			streaming = true
			w.Header().Set("Content-Type", "application/x-ndjson")
			w.WriteHeader(http.StatusOK)
		}
		if err := enc.Encode(v); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	if !req.SummaryOnly {
		opt.OnStep = func(st replay.Step) error {
			return emit(replayStepLine{Step: &st})
		}
	}

	res, err := replay.Run(r.Context(), cands, tr, opt)
	if err != nil {
		if !streaming {
			s.computeError(w, r, err)
			return
		}
		// The 200 is on the wire; the error line is the only way to tell
		// the client the stream is dead rather than complete.
		code := "compute_failed"
		if r.Context().Err() != nil {
			code = "deadline_exceeded"
			s.ins.deadlineExceeded.Inc()
		}
		// The access log still shows status 200 (already sent); the
		// outcome field is where the truncation becomes visible.
		telemetry.RequestFrom(r.Context()).SetOutcome("stream_" + code)
		emit(replayErrorLine{Error: errorBody{Code: code, Message: err.Error()}}) //nolint:errcheck // client gone
		return
	}
	if err := emit(replaySummaryLine{Summary: &res.Summary}); err != nil {
		return
	}
}

// replayTrace resolves the request's utilization series: the explicit
// trace or the sampled shape, validated and bounded by MaxReplaySteps.
func (s *Server) replayTrace(w http.ResponseWriter, req ReplayRequest) (replay.Trace, bool) {
	var tr replay.Trace
	switch {
	case req.Trace != nil && req.Shape != nil:
		writeError(w, http.StatusBadRequest, "bad_request",
			"pass either trace (explicit points) or shape (synthetic), not both")
		return tr, false
	case req.Trace != nil:
		tr = *req.Trace
		if err := tr.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return tr, false
		}
	case req.Shape != nil:
		if req.Shape.Steps > s.cfg.MaxReplaySteps {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("shape steps %d exceeds the per-request cap %d", req.Shape.Steps, s.cfg.MaxReplaySteps))
			return tr, false
		}
		shape, err := req.Shape.shape()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return tr, false
		}
		tr, err = replay.FromShape(shape, req.Shape.StepSeconds, req.Shape.Steps)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return tr, false
		}
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			"missing trace (explicit points) or shape (synthetic)")
		return tr, false
	}
	if n := tr.Steps(); n > s.cfg.MaxReplaySteps {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("trace steps %d exceeds the per-request cap %d", n, s.cfg.MaxReplaySteps))
		return tr, false
	}
	return tr, true
}

// replayCandidates resolves the candidate ensemble: the 1 kW budget
// ladder or the request's mixes, each through the analysis cache.
func (s *Server) replayCandidates(w http.ResponseWriter, req ReplayRequest) ([]*energyprop.Analysis, bool) {
	wlName := req.Workload
	if wlName == "" {
		wlName = "EP"
	}
	mixes := req.Mixes
	if req.Budget {
		if len(mixes) > 0 {
			writeError(w, http.StatusBadRequest, "bad_request",
				"pass either budget (the 1 kW ladder) or mixes, not both")
			return nil, false
		}
		spec, err := cluster.DefaultBudget(s.cfg.Catalog)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return nil, false
		}
		ladder, err := spec.Ladder()
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return nil, false
		}
		for _, m := range ladder {
			var parts []string
			if m.Wimpy > 0 {
				parts = append(parts, fmt.Sprintf("%dx%s", m.Wimpy, spec.Wimpy.Name))
			}
			if m.Brawny > 0 {
				parts = append(parts, fmt.Sprintf("%dx%s", m.Brawny, spec.Brawny.Name))
			}
			mixes = append(mixes, strings.Join(parts, ","))
		}
	}
	if len(mixes) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request",
			"missing candidate set: pass mixes or budget=true")
		return nil, false
	}
	if len(mixes) > maxReplayMixes {
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("at most %d mixes per request, got %d", maxReplayMixes, len(mixes)))
		return nil, false
	}
	cands := make([]*energyprop.Analysis, 0, len(mixes))
	for _, mix := range mixes {
		a, ok := s.analysis(w, wlName, mix)
		if !ok {
			return nil, false
		}
		cands = append(cands, a)
	}
	return cands, true
}
