package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
)

// kernel_test.go covers the kernel selector plumbing of the serving
// plane: /v1/percentiles kernel=/scv=/servers= parameters, the frontier
// latency annotation, per-item kernel fields in batches, and — most
// importantly — that the M/D/1 default's bytes are untouched by any of
// it.

// TestPercentilesKernelSelector exercises the GET kernel selector end
// to end: kernel echo fields, M/M/1-exact means for mg1 at scv=1, and
// the validation surface.
func TestPercentilesKernelSelector(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The default response must not grow a kernel field.
	status, body := get(t, ts.URL+"/v1/percentiles?d=1&u=0.7&p=95")
	if status != 200 || strings.Contains(body, `"kernel"`) {
		t.Fatalf("default response grew a kernel field (status %d): %s", status, body)
	}

	status, body = get(t, ts.URL+"/v1/percentiles?d=1&u=0.7&p=95&kernel=mg1&scv=1")
	if status != 200 {
		t.Fatalf("mg1 request: status %d: %s", status, body)
	}
	var resp PercentilesResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Kernel != "mg1" || resp.SCV != 1 {
		t.Fatalf("kernel echo = %q scv=%g, want mg1/1", resp.Kernel, resp.SCV)
	}
	// At scv=1 the M/G/1 is the M/M/1: mean wait rho*d/(1-rho).
	wantMean := 0.7 / 0.3
	if math.Abs(resp.MeanWaitSeconds-wantMean) > 1e-9 {
		t.Fatalf("mg1(scv=1) mean wait %g, want %g", resp.MeanWaitSeconds, wantMean)
	}
	// M/M/1 p95 sojourn: d*ln(20)/(1-rho).
	wantP95 := math.Log(20) / 0.3
	if len(resp.Percentiles) != 1 || math.Abs(resp.Percentiles[0].ResponseSeconds-wantP95) > 1e-9 {
		t.Fatalf("mg1(scv=1) p95 response = %+v, want %g", resp.Percentiles, wantP95)
	}

	status, body = get(t, ts.URL+"/v1/percentiles?d=1&u=0.7&p=95&kernel=mmk&servers=4")
	if status != 200 {
		t.Fatalf("mmk request: status %d: %s", status, body)
	}
	resp = PercentilesResponse{}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Kernel != "mmk" || resp.Servers != 4 {
		t.Fatalf("kernel echo = %q servers=%d, want mmk/4", resp.Kernel, resp.Servers)
	}
	// Pooling four servers at the same per-server load waits less than
	// one fat M/M/1-style server; sanity-check the mean is positive and
	// below the mg1(scv=1) mean.
	if resp.MeanWaitSeconds <= 0 || resp.MeanWaitSeconds >= wantMean {
		t.Fatalf("mmk(k=4) mean wait %g, want in (0, %g)", resp.MeanWaitSeconds, wantMean)
	}

	for _, tc := range []struct {
		name, query, wantErr string
	}{
		{"unknown kernel", "kernel=zzz", "unknown kernel"},
		{"scv on md1", "scv=2", "scv applies to the mg1 kernel"},
		{"servers on mg1", "kernel=mg1&scv=1&servers=3", "servers applies to the mmk kernel"},
		{"mmk without servers", "kernel=mmk", "mmk needs servers"},
		{"negative scv", "kernel=mg1&scv=-1", "must be finite"},
	} {
		status, body := get(t, ts.URL+"/v1/percentiles?d=1&u=0.7&"+tc.query)
		if status != 400 || !strings.Contains(body, tc.wantErr) {
			t.Errorf("%s: status %d body %s, want 400 containing %q", tc.name, status, body, tc.wantErr)
		}
	}
}

// TestFrontierLatencyAnnotation: u= turns on the per-point tail-latency
// annotation, absent otherwise, and the annotation responds to the
// kernel: heavier-tailed service (mg1 at high SCV) must report a longer
// p95 than the M/D/1 default on the same frontier.
func TestFrontierLatencyAnnotation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, body := get(t, ts.URL+"/v1/frontier?workload=EP&max_a9=4&max_k10=2")
	if status != 200 || strings.Contains(body, "response_seconds") {
		t.Fatalf("unannotated frontier grew response_seconds (status %d)", status)
	}

	decode := func(query string) FrontierResponse {
		t.Helper()
		status, body := get(t, ts.URL+"/v1/frontier?workload=EP&max_a9=4&max_k10=2&"+query)
		if status != 200 {
			t.Fatalf("frontier %s: status %d: %s", query, status, body)
		}
		var resp FrontierResponse
		if err := json.Unmarshal([]byte(body), &resp); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return resp
	}
	md1 := decode("u=0.6&p=95")
	if len(md1.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i, p := range md1.Frontier {
		if p.ResponseSeconds <= 0 {
			t.Fatalf("frontier[%d] missing latency annotation: %+v", i, p)
		}
		// The annotation is at least the service time.
		if p.ResponseSeconds < p.TimeSeconds {
			t.Fatalf("frontier[%d] latency %g below service time %g", i, p.ResponseSeconds, p.TimeSeconds)
		}
	}
	mg1 := decode("u=0.6&p=95&kernel=mg1&scv=4")
	for i := range md1.Frontier {
		if mg1.Frontier[i].ResponseSeconds <= md1.Frontier[i].ResponseSeconds {
			t.Fatalf("frontier[%d]: mg1(scv=4) p95 %g not above md1 %g",
				i, mg1.Frontier[i].ResponseSeconds, md1.Frontier[i].ResponseSeconds)
		}
	}
	// The recommended point carries the annotation too.
	sweet := decode("u=0.6&deadline=1000")
	if sweet.Recommended == nil || sweet.Recommended.ResponseSeconds <= 0 {
		t.Fatalf("recommended point lost the annotation: %+v", sweet.Recommended)
	}

	if status, body := get(t, ts.URL+"/v1/frontier?max_a9=4&max_k10=2&u=1.2"); status != 400 ||
		!strings.Contains(body, "outside (0, 1)") {
		t.Fatalf("u=1.2: status %d body %s", status, body)
	}
	if status, body := get(t, ts.URL+"/v1/frontier?max_a9=4&max_k10=2&u=0.5&kernel=zzz"); status != 400 ||
		!strings.Contains(body, "unknown kernel") {
		t.Fatalf("bad kernel: status %d body %s", status, body)
	}
}

// TestBatchKernelFields: the request-level kernel triple is the default
// for items, an item naming a kernel overrides it wholly, and an
// invalid item kernel fails only that item.
func TestBatchKernelFields(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw, err := json.Marshal(map[string]any{
		"u":      []float64{0.7},
		"p":      []float64{95},
		"kernel": "mg1",
		"scv":    1.0,
		"items": []map[string]any{
			{"d": 1.0},                  // inherits mg1(scv=1)
			{"d": 1.0, "kernel": "md1"}, // overrides back to the default
			{"d": 1.0, "kernel": "mmk"}, // invalid: servers missing
			{"d": 1.0, "kernel": "mmk", "servers": 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/percentiles", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var batch PercentilesBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != 4 || batch.Errors != 1 {
		t.Fatalf("count=%d errors=%d, want 4/1", batch.Count, batch.Errors)
	}
	r := batch.Results
	if r[0].Result == nil || r[0].Result.Kernel != "mg1" || r[0].Result.SCV != 1 {
		t.Fatalf("item 0 should inherit mg1(scv=1): %+v", r[0])
	}
	if r[1].Result == nil || r[1].Result.Kernel != "" {
		t.Fatalf("item 1 should override to the md1 default: %+v", r[1])
	}
	if r[2].Error == nil || !strings.Contains(r[2].Error.Message, "servers >= 1") {
		t.Fatalf("item 2 should fail kernel validation: %+v", r[2])
	}
	if r[3].Result == nil || r[3].Result.Kernel != "mmk" || r[3].Result.Servers != 2 {
		t.Fatalf("item 3 should be mmk(k=2): %+v", r[3])
	}
	// mg1(scv=1) waits longer than md1 at the same load: the kernel
	// actually reached the computation, not just the echo fields.
	if !(r[0].Result.MeanWaitSeconds > r[1].Result.MeanWaitSeconds) {
		t.Fatalf("mg1 mean wait %g not above md1 %g",
			r[0].Result.MeanWaitSeconds, r[1].Result.MeanWaitSeconds)
	}
}
