package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPowerEnergyRoundTrip(t *testing.T) {
	f := func(pRaw, dRaw uint16) bool {
		p := Watts(float64(pRaw)/7 + 0.1)
		d := Seconds(float64(dRaw)/13 + 0.1)
		e := p.Energy(d)
		back := e.Over(d)
		return math.Abs(float64(back-p)) < 1e-9*math.Abs(float64(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyOverZeroDuration(t *testing.T) {
	if got := Joules(100).Over(0); got != 0 {
		t.Errorf("Over(0) = %v, want 0", got)
	}
	if got := Joules(100).Over(-1); got != 0 {
		t.Errorf("Over(-1) = %v, want 0", got)
	}
}

func TestCyclesTime(t *testing.T) {
	if got := Cycles(2e9).Time(1 * GHz); math.Abs(float64(got)-2) > 1e-12 {
		t.Errorf("2e9 cycles at 1GHz = %v, want 2s", got)
	}
	if got := Cycles(100).Time(0); !math.IsInf(float64(got), 1) {
		t.Errorf("cycles at 0Hz = %v, want +Inf", got)
	}
	if got := Cycles(0).Time(0); got != 0 {
		t.Errorf("0 cycles at 0Hz = %v, want 0", got)
	}
}

func TestTransferTime(t *testing.T) {
	if got := Bytes(1e6).TransferTime(1e6); math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("1MB at 1MB/s = %v, want 1s", got)
	}
	if got := Bytes(1).TransferTime(0); !math.IsInf(float64(got), 1) {
		t.Errorf("transfer at 0 B/s = %v, want +Inf", got)
	}
	if got := Bytes(0).TransferTime(0); got != 0 {
		t.Errorf("0 bytes at 0 B/s = %v, want 0", got)
	}
}

func TestRateInterval(t *testing.T) {
	if got := PerSecond(4).Interval(); math.Abs(float64(got)-0.25) > 1e-12 {
		t.Errorf("interval of 4/s = %v, want 0.25s", got)
	}
	if got := PerSecond(0).Interval(); !math.IsInf(float64(got), 1) {
		t.Errorf("interval of 0/s = %v, want +Inf", got)
	}
}

func TestMaxSeconds(t *testing.T) {
	if got := MaxSeconds(1, 3, 2); got != 3 {
		t.Errorf("MaxSeconds = %v, want 3", got)
	}
	if got := MaxSeconds(5); got != 5 {
		t.Errorf("MaxSeconds single = %v, want 5", got)
	}
	if got := MaxSeconds(-1, -3); got != -1 {
		t.Errorf("MaxSeconds negatives = %v, want -1", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !Seconds(1.5).IsFinite() {
		t.Error("1.5s should be finite")
	}
	if Seconds(math.Inf(1)).IsFinite() {
		t.Error("+Inf should not be finite")
	}
	if Seconds(math.NaN()).IsFinite() {
		t.Error("NaN should not be finite")
	}
}

func TestStringScaling(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(0).String(), "0W"},
		{Watts(1500).String(), "1.5kW"},
		{Watts(0.005).String(), "5mW"},
		{Watts(2.5e6).String(), "2.5MW"},
		{Joules(3.6e6).String(), "3.6MJ"},
		{Hertz(1.4e9).String(), "1.4GHz"},
		{Bytes(2048).String(), "2.048kB"},
		{Seconds(0).String(), "0s"},
		{Seconds(0.0123).String(), "12.3ms"},
		{Seconds(4e-6).String(), "4us"},
		{Seconds(3e-9).String(), "3ns"},
		{Seconds(7200).String(), "2h"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String = %q, want %q", c.got, c.want)
		}
	}
}

func TestStringNegative(t *testing.T) {
	// Negative quantities should render with the sign, not panic or
	// pick a wrong scale.
	if s := Watts(-3.5).String(); !strings.HasPrefix(s, "-") {
		t.Errorf("negative power rendered %q", s)
	}
}

func TestConstants(t *testing.T) {
	if GHz != 1e9 || MHz != 1e6 || KHz != 1e3 {
		t.Error("frequency constants wrong")
	}
	if GB != 1e9 || MB != 1e6 || KB != 1e3 {
		t.Error("size constants wrong")
	}
	if float64(KWh) != 3.6e6 {
		t.Error("kWh constant wrong")
	}
}
