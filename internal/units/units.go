// Package units provides physical quantity types used throughout the
// time-energy model: power, energy, time, frequency, data sizes and rates.
//
// The types are thin float64 wrappers. They exist to make the model code
// self-documenting and to catch unit mistakes at compile time (e.g. adding
// watts to joules), not to implement a general dimensional-analysis system.
// Conversions between related quantities are provided as methods (for
// example Power.Over(Seconds) yields Energy).
package units

import (
	"fmt"
	"math"
)

// Watts is electrical power in watts.
type Watts float64

// Joules is energy in joules (watt-seconds).
type Joules float64

// Seconds is a duration in seconds. The model uses its own duration type
// rather than time.Duration because modeled times routinely exceed the
// nanosecond precision and 290-year range tradeoffs of time.Duration, and
// because all model arithmetic is floating point.
type Seconds float64

// Hertz is frequency in cycles per second.
type Hertz float64

// Cycles is a count of processor clock cycles.
type Cycles float64

// Bytes is a data size in bytes.
type Bytes float64

// BytesPerSecond is a data transfer rate.
type BytesPerSecond float64

// PerSecond is a generic rate (events per second), used for arrival rates
// and throughputs.
type PerSecond float64

// Common scale factors.
const (
	KHz Hertz = 1e3
	MHz Hertz = 1e6
	GHz Hertz = 1e9

	KB Bytes = 1e3
	MB Bytes = 1e6
	GB Bytes = 1e9

	Millisecond Seconds = 1e-3
	Microsecond Seconds = 1e-6

	KWh Joules = 3.6e6
)

// Energy returns the energy consumed by drawing power p for duration d.
func (p Watts) Energy(d Seconds) Joules { return Joules(float64(p) * float64(d)) }

// Over returns the average power of energy e spent over duration d.
// It returns 0 for a non-positive duration.
func (e Joules) Over(d Seconds) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(e) / float64(d))
}

// Time returns how long c cycles take at frequency f.
// It returns +Inf seconds when f is zero, matching the model convention
// that a 0 Hz resource can do no work.
func (c Cycles) Time(f Hertz) Seconds {
	if f <= 0 {
		if c == 0 {
			return 0
		}
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(c) / float64(f))
}

// TransferTime returns how long it takes to move b bytes at rate r.
func (b Bytes) TransferTime(r BytesPerSecond) Seconds {
	if r <= 0 {
		if b == 0 {
			return 0
		}
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(r))
}

// Interval returns the inter-event interval of the rate: 1/r.
func (r PerSecond) Interval() Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(1 / float64(r))
}

// MaxSeconds returns the maximum of its arguments.
func MaxSeconds(first Seconds, rest ...Seconds) Seconds {
	m := first
	for _, s := range rest {
		if s > m {
			m = s
		}
	}
	return m
}

// IsFinite reports whether s is neither NaN nor infinite.
func (s Seconds) IsFinite() bool {
	return !math.IsNaN(float64(s)) && !math.IsInf(float64(s), 0)
}

func (p Watts) String() string  { return formatScaled(float64(p), "W") }
func (e Joules) String() string { return formatScaled(float64(e), "J") }
func (f Hertz) String() string  { return formatScaled(float64(f), "Hz") }
func (b Bytes) String() string  { return formatScaled(float64(b), "B") }
func (r PerSecond) String() string {
	return formatScaled(float64(r), "/s")
}

func (s Seconds) String() string {
	v := float64(s)
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return "0s"
	case abs < 1e-6:
		return fmt.Sprintf("%.3gns", v*1e9)
	case abs < 1e-3:
		return fmt.Sprintf("%.3gus", v*1e6)
	case abs < 1:
		return fmt.Sprintf("%.3gms", v*1e3)
	case abs < 3600:
		return fmt.Sprintf("%.4gs", v)
	default:
		return fmt.Sprintf("%.4gh", v/3600)
	}
}

// formatScaled renders v with an SI prefix chosen from its magnitude.
func formatScaled(v float64, unit string) string {
	abs := math.Abs(v)
	switch {
	case abs == 0:
		return "0" + unit
	case abs >= 1e9:
		return fmt.Sprintf("%.4gG%s", v/1e9, unit)
	case abs >= 1e6:
		return fmt.Sprintf("%.4gM%s", v/1e6, unit)
	case abs >= 1e3:
		return fmt.Sprintf("%.4gk%s", v/1e3, unit)
	case abs >= 1:
		return fmt.Sprintf("%.4g%s", v, unit)
	case abs >= 1e-3:
		return fmt.Sprintf("%.4gm%s", v*1e3, unit)
	case abs >= 1e-6:
		return fmt.Sprintf("%.4gu%s", v*1e6, unit)
	default:
		return fmt.Sprintf("%.4gn%s", v*1e9, unit)
	}
}
