package pareto

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/queueing"
	"repro/internal/sweep"
	"repro/internal/telemetry"
)

// AnnotateLatencies attaches a tail-latency figure to every evaluated
// point: the p-th percentile response time of the configuration serving
// an open arrival stream at utilization u, under the queueing kernel
// selected by spec (the zero spec is the paper's M/D/1). Each point's
// aggregate service time is its model job time, so the annotation ranks
// frontier configurations by how their time-energy trade-off holds up
// once queueing delay is priced in. The searches fan out through the
// shared sweep pool and resolve through the kernel percentile cache;
// the result is aligned with points. workers <= 0 uses GOMAXPROCS.
func AnnotateLatencies(ctx context.Context, points []Point, u, p float64, spec queueing.Spec, workers int) ([]float64, error) {
	span := telemetry.StartSpan("pareto.annotate_latencies").
		Arg("points", len(points)).Arg("u", u).Arg("p", p).Arg("kernel", spec.String())
	defer span.End()
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("pareto: latency annotation: %w", err)
	}
	if u <= 0 || u >= 1 {
		return nil, fmt.Errorf("pareto: latency annotation needs utilization in (0,1), got %g", u)
	}
	if p < 0 || p >= 100 {
		return nil, fmt.Errorf("pareto: latency annotation needs percentile in [0,100), got %g", p)
	}
	out := make([]float64, len(points))
	errs := make([]error, len(points))
	if err := sweep.ForEachContext(ctx, len(points), workers, func(i int) {
		t := float64(points[i].Result.Time)
		if t <= 0 {
			errs[i] = errors.New("zero service time")
			return
		}
		k, err := spec.Build(u, t)
		if err != nil {
			errs[i] = err
			return
		}
		out[i], errs[i] = k.ResponsePercentile(p)
	}); err != nil {
		return nil, fmt.Errorf("pareto: latency annotation: %w", err)
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pareto: latency for %s: %w", points[i].Config, err)
		}
	}
	return out, nil
}
