package pareto

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// sweepSpace returns a small enumerable limit set and workload for
// sweep tests.
func sweepSpace(t testing.TB) ([]cluster.Limit, *workload.Profile) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	return []cluster.Limit{
		{Type: a9, MaxNodes: 8, FixCoresAndFreq: true},
		{Type: k10, MaxNodes: 4, FixCoresAndFreq: true},
	}, wl
}

// TestSweepTelemetryAndProgress: an instrumented parallel sweep counts
// every configuration exactly once (evaluated + skipped), measures
// per-evaluation latency, accumulates worker busy time, and drives the
// deterministic progress reporter to the full count.
func TestSweepTelemetryAndProgress(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)

	limits, wl := sweepSpace(t)
	total := cluster.SpaceSize(limits)
	var buf bytes.Buffer
	pr := telemetry.NewProgress(&buf, "test sweep", int64(total), 50)

	front, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Workers: 4, Progress: pr})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	if got := pr.Count(); got != int64(total) {
		t.Errorf("progress ticks = %d, want %d", got, total)
	}
	if buf.Len() == 0 {
		t.Error("progress reporter wrote nothing")
	}
	evaluated := reg.Counter("pareto.configs_evaluated").Value()
	skipped := reg.Counter("pareto.configs_skipped").Value()
	if evaluated+skipped != uint64(total) {
		t.Errorf("evaluated %d + skipped %d != space %d", evaluated, skipped, total)
	}
	h := reg.Histogram("pareto.eval_seconds", nil)
	if h.Count() != evaluated+skipped {
		t.Errorf("latency observations %d != evaluations %d", h.Count(), evaluated+skipped)
	}
	if h.Max() <= 0 {
		t.Error("latency histogram recorded no positive durations")
	}
	if reg.Counter("pareto.worker_busy_nanos").Value() == 0 {
		t.Error("worker busy time not recorded")
	}
	if reg.Tracer().Len() == 0 {
		t.Error("no spans recorded for the sweep")
	}
}

// TestSweepMatchesUninstrumented: installing telemetry must not change
// the frontier.
func TestSweepMatchesUninstrumented(t *testing.T) {
	limits, wl := sweepSpace(t)
	plain, err := FrontierForParallel(limits, wl, model.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	telemetry.SetGlobal(telemetry.New())
	defer telemetry.SetGlobal(nil)
	instrumented, err := FrontierForParallel(limits, wl, model.Options{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(instrumented) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		if plain[i].Config.Key() != instrumented[i].Config.Key() {
			t.Fatalf("frontier point %d differs: %s vs %s",
				i, plain[i].Config, instrumented[i].Config)
		}
	}
}
