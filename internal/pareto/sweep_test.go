package pareto

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// sweepSpace returns a small enumerable limit set and workload for
// sweep tests.
func sweepSpace(t testing.TB) ([]cluster.Limit, *workload.Profile) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	return []cluster.Limit{
		{Type: a9, MaxNodes: 8, FixCoresAndFreq: true},
		{Type: k10, MaxNodes: 4, FixCoresAndFreq: true},
	}, wl
}

// TestSweepTelemetryAndProgress: an instrumented reference sweep counts
// every configuration exactly once (evaluated + skipped), measures
// per-evaluation latency, accumulates worker busy time, and drives the
// deterministic progress reporter to the full count.
func TestSweepTelemetryAndProgress(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)

	limits, wl := sweepSpace(t)
	total := cluster.SpaceSize(limits)
	var buf bytes.Buffer
	pr := telemetry.NewProgress(&buf, "test sweep", int64(total), 50)

	front, err := FrontierSweep(limits, wl, model.Options{},
		SweepOptions{Workers: 4, Progress: pr, Reference: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	if got := pr.Count(); got != int64(total) {
		t.Errorf("progress ticks = %d, want %d", got, total)
	}
	if buf.Len() == 0 {
		t.Error("progress reporter wrote nothing")
	}
	evaluated := reg.Counter("pareto.configs_evaluated").Value()
	skipped := reg.Counter("pareto.configs_skipped").Value()
	if evaluated+skipped != uint64(total) {
		t.Errorf("evaluated %d + skipped %d != space %d", evaluated, skipped, total)
	}
	h := reg.Histogram("pareto.eval_seconds", nil)
	if h.Count() != evaluated+skipped {
		t.Errorf("latency observations %d != evaluations %d", h.Count(), evaluated+skipped)
	}
	if h.Max() <= 0 {
		t.Error("latency histogram recorded no positive durations")
	}
	if reg.Counter("pareto.worker_busy_nanos").Value() == 0 {
		t.Error("worker busy time not recorded")
	}
	if reg.Tracer().Len() == 0 {
		t.Error("no spans recorded for the sweep")
	}
}

// TestFastSweepAccounting: the fast engine's counters partition the
// space exactly — every configuration is evaluated, skipped, filtered
// or pruned, never double-counted — and the progress reporter reaches
// the full count even when whole subtrees are pruned in bulk.
func TestFastSweepAccounting(t *testing.T) {
	limits, wl := sweepSpace(t)
	// Widen to the DVFS space so pruning has something to bite on.
	limits[0].FixCoresAndFreq = false
	limits[1].FixCoresAndFreq = false
	total := cluster.SpaceSize(limits)

	type counts struct{ evaluated, skipped, filtered, pruned uint64 }
	run := func(sw SweepOptions) ([]Point, counts) {
		t.Helper()
		reg := telemetry.New()
		telemetry.SetGlobal(reg)
		defer telemetry.SetGlobal(nil)
		var buf bytes.Buffer
		pr := telemetry.NewProgress(&buf, "test sweep", int64(total), 5000)
		sw.Progress = pr
		front, err := FrontierSweep(limits, wl, model.Options{}, sw)
		if err != nil {
			t.Fatal(err)
		}
		if got := pr.Count(); got != int64(total) {
			t.Errorf("progress ticks = %d, want %d", got, total)
		}
		return front, counts{
			evaluated: reg.Counter("pareto.configs_evaluated").Value(),
			skipped:   reg.Counter("pareto.configs_skipped").Value(),
			filtered:  reg.Counter("pareto.configs_filtered").Value(),
			pruned:    reg.Counter("pareto.configs_pruned").Value(),
		}
	}

	pruningFront, c := run(SweepOptions{})
	if sum := c.evaluated + c.skipped + c.filtered + c.pruned; sum != uint64(total) {
		t.Errorf("evaluated %d + skipped %d + filtered %d + pruned %d = %d != space %d",
			c.evaluated, c.skipped, c.filtered, c.pruned, sum, total)
	}
	if c.pruned == 0 {
		t.Error("pruning never fired on the DVFS space")
	}

	plainFront, c2 := run(SweepOptions{NoPrune: true})
	if c2.pruned != 0 {
		t.Errorf("NoPrune sweep still pruned %d configurations", c2.pruned)
	}
	if c2.evaluated+c2.skipped != uint64(total) {
		t.Errorf("NoPrune: evaluated %d + skipped %d != space %d", c2.evaluated, c2.skipped, total)
	}
	if len(pruningFront) != len(plainFront) {
		t.Fatalf("pruned frontier has %d points, NoPrune %d", len(pruningFront), len(plainFront))
	}
	for i := range pruningFront {
		if pruningFront[i].Config.Key() != plainFront[i].Config.Key() ||
			pruningFront[i].Time != plainFront[i].Time ||
			pruningFront[i].Energy != plainFront[i].Energy {
			t.Errorf("frontier point %d differs with pruning: %s vs %s",
				i, pruningFront[i].Config, plainFront[i].Config)
		}
	}

	// With a filter installed, rejected configurations count as
	// filtered (never skipped or evaluated), exactly as on the
	// reference path.
	_, c3 := run(SweepOptions{Filter: func(cfg cluster.Config) bool {
		return cfg.Nodes()%2 == 0
	}})
	if c3.filtered == 0 {
		t.Error("filter rejected nothing")
	}
	if sum := c3.evaluated + c3.skipped + c3.filtered + c3.pruned; sum != uint64(total) {
		t.Errorf("filtered sweep counters sum %d != space %d", sum, total)
	}
}

// TestSweepMatchesUninstrumented: installing telemetry must not change
// the frontier.
func TestSweepMatchesUninstrumented(t *testing.T) {
	limits, wl := sweepSpace(t)
	plain, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	telemetry.SetGlobal(telemetry.New())
	defer telemetry.SetGlobal(nil)
	instrumented, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(instrumented) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		if plain[i].Config.Key() != instrumented[i].Config.Key() {
			t.Fatalf("frontier point %d differs: %s vs %s",
				i, plain[i].Config, instrumented[i].Config)
		}
	}
}
