package pareto

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/workload"
)

// paperBenchSpace returns the paper's footnote-4 design space (36,380
// configurations: 10 A9 and 10 K10 nodes with free cores and DVFS) and
// the EP workload — the benchmark substrate for `make bench-frontier`.
func paperBenchSpace(tb testing.TB) ([]cluster.Limit, *workload.Profile) {
	tb.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		tb.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		tb.Fatal(err)
	}
	a9, err := cat.Lookup("A9")
	if err != nil {
		tb.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		tb.Fatal(err)
	}
	return []cluster.Limit{
		{Type: a9, MaxNodes: 10},
		{Type: k10, MaxNodes: 10},
	}, wl
}

func benchSweep(b *testing.B, sw SweepOptions) {
	limits, wl := paperBenchSpace(b)
	total := cluster.SpaceSize(limits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, err := FrontierSweep(limits, wl, model.Options{}, sw)
		if err != nil {
			b.Fatal(err)
		}
		if len(front) == 0 {
			b.Fatal("empty frontier")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/secs, "configs/s")
	}
}

// BenchmarkFrontierSweepFast is the headline number: the memoized
// closed-form engine with subtree pruning over the footnote-4 space.
func BenchmarkFrontierSweepFast(b *testing.B) {
	benchSweep(b, SweepOptions{})
}

// BenchmarkFrontierSweepFastNoPrune isolates the pruning contribution.
func BenchmarkFrontierSweepFastNoPrune(b *testing.B) {
	benchSweep(b, SweepOptions{NoPrune: true})
}

// BenchmarkFrontierSweepReference is the preserved pre-memoization
// baseline: one full model.Evaluate per configuration.
func BenchmarkFrontierSweepReference(b *testing.B) {
	benchSweep(b, SweepOptions{Reference: true})
}

// BenchmarkEvaluateFast measures the allocation-free hot path on a
// two-type configuration; allocs/op must report 0.
func BenchmarkEvaluateFast(b *testing.B) {
	_, wl := paperBenchSpace(b)
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 7), cluster.FullNodes(k10, 3))
	table := model.NewTable(wl, model.Options{})
	if _, ok := table.EvaluateFast(cfg); !ok {
		b.Fatal("configuration not evaluable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := table.EvaluateFast(cfg); !ok {
			b.Fatal("evaluation failed")
		}
	}
}

// BenchmarkEvaluateReference is model.Evaluate on the same
// configuration, for the per-evaluation speedup ratio.
func BenchmarkEvaluateReference(b *testing.B) {
	_, wl := paperBenchSpace(b)
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 7), cluster.FullNodes(k10, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(cfg, wl, model.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestEvaluateParallelPerConfigAllocs verifies the satellite fix: the
// value-slice result buffer removed the per-configuration *Point heap
// allocation, so evaluateParallel's per-config allocations are bounded
// by model.Evaluate's own internals (calc slice + group growth), with
// no extra object per evaluated configuration.
func TestEvaluateParallelPerConfigAllocs(t *testing.T) {
	limits, wl := paperBenchSpace(t)
	var configs []cluster.Config
	err := cluster.Enumerate(limits, func(cfg cluster.Config) bool {
		configs = append(configs, cfg)
		return len(configs) < 512
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: what model.Evaluate itself costs per configuration.
	perEval := testing.AllocsPerRun(5, func() {
		for _, cfg := range configs {
			if _, err := model.Evaluate(cfg, wl, model.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}) / float64(len(configs))

	perSweep := testing.AllocsPerRun(5, func() {
		if out := EvaluateParallel(configs, wl, model.Options{}, 2); len(out) != len(configs) {
			t.Fatalf("evaluated %d of %d", len(out), len(configs))
		}
	}) / float64(len(configs))

	// Allow the amortized slot slice, output slice and pool scaffolding
	// on top of the model's own allocations — but not the one-Point-
	// per-config overhead the slice of pointers used to cost.
	if perSweep > perEval+0.5 {
		t.Errorf("evaluateParallel allocates %.2f objects/config, model.Evaluate alone %.2f: per-config overhead returned",
			perSweep, perEval)
	}
}
