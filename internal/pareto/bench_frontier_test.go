package pareto

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/workload"
)

// benchWorkerLadder is 1/2/4/GOMAXPROCS with duplicates removed, so the
// ladder stays meaningful on small boxes (on a 1-core machine it is
// just [1]).
func benchWorkerLadder() []int {
	ladder := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	out := ladder[:0]
	seen := make(map[int]bool, len(ladder))
	for _, w := range ladder {
		if w > 0 && !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

func benchWorkerName(workers int) string {
	return fmt.Sprintf("workers=%d", workers)
}

// paperBenchSpace returns the paper's footnote-4 design space (36,380
// configurations: 10 A9 and 10 K10 nodes with free cores and DVFS) and
// the EP workload — the benchmark substrate for `make bench-frontier`.
// The space is memoized so every benchmark sees the same *Profile and
// warm tables built for it stay valid across benchSweep calls.
var benchSpaceOnce sync.Once
var benchSpaceLimits []cluster.Limit
var benchSpaceWL *workload.Profile
var benchSpaceErr error

func paperBenchSpace(tb testing.TB) ([]cluster.Limit, *workload.Profile) {
	tb.Helper()
	benchSpaceOnce.Do(func() {
		cat := hardware.DefaultCatalog()
		reg, err := workload.PaperRegistry(cat)
		if err != nil {
			benchSpaceErr = err
			return
		}
		wl, err := reg.Lookup(workload.NameEP)
		if err != nil {
			benchSpaceErr = err
			return
		}
		a9, err := cat.Lookup("A9")
		if err != nil {
			benchSpaceErr = err
			return
		}
		k10, err := cat.Lookup("K10")
		if err != nil {
			benchSpaceErr = err
			return
		}
		benchSpaceLimits = []cluster.Limit{
			{Type: a9, MaxNodes: 10},
			{Type: k10, MaxNodes: 10},
		}
		benchSpaceWL = wl
	})
	if benchSpaceErr != nil {
		tb.Fatal(benchSpaceErr)
	}
	return benchSpaceLimits, benchSpaceWL
}

func benchSweep(b *testing.B, sw SweepOptions) {
	limits, wl := paperBenchSpace(b)
	total := cluster.SpaceSize(limits)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		front, err := FrontierSweep(limits, wl, model.Options{}, sw)
		if err != nil {
			b.Fatal(err)
		}
		if len(front) == 0 {
			b.Fatal("empty frontier")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(total)*float64(b.N)/secs, "configs/s")
	}
}

// BenchmarkFrontierSweepFast is the serial headline number: the
// memoized closed-form engine with subtree pruning over the footnote-4
// space on a single worker (Workers zero now means GOMAXPROCS, so the
// serial baseline must be pinned explicitly).
func BenchmarkFrontierSweepFast(b *testing.B) {
	benchSweep(b, SweepOptions{Workers: 1})
}

// BenchmarkFrontierSweepFastWarm is the steady-state number: serial
// sweep with a caller-provided warm table, so the memo is already
// populated and the scratch pool is hot — the configuration the
// allocation guard pins.
func BenchmarkFrontierSweepFastWarm(b *testing.B) {
	_, wl := paperBenchSpace(b)
	benchSweep(b, SweepOptions{Workers: 1, Table: model.NewTable(wl, model.Options{})})
}

// BenchmarkFrontierSweepParallel sweeps the worker ladder over a shared
// warm table; on a multi-core box the configs/s metric should scale
// with the worker count until the 1+choices(A9) top-level tasks run out.
func BenchmarkFrontierSweepParallel(b *testing.B) {
	_, wl := paperBenchSpace(b)
	table := model.NewTable(wl, model.Options{})
	for _, workers := range benchWorkerLadder() {
		b.Run(benchWorkerName(workers), func(b *testing.B) {
			benchSweep(b, SweepOptions{Workers: workers, Table: table})
		})
	}
}

// BenchmarkFrontierSweepFastNoPrune isolates the pruning contribution.
func BenchmarkFrontierSweepFastNoPrune(b *testing.B) {
	benchSweep(b, SweepOptions{Workers: 1, NoPrune: true})
}

// BenchmarkFrontierSweepReference is the preserved pre-memoization
// baseline: one full model.Evaluate per configuration.
func BenchmarkFrontierSweepReference(b *testing.B) {
	benchSweep(b, SweepOptions{Reference: true})
}

// BenchmarkEvaluateFast measures the allocation-free hot path on a
// two-type configuration; allocs/op must report 0.
func BenchmarkEvaluateFast(b *testing.B) {
	_, wl := paperBenchSpace(b)
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 7), cluster.FullNodes(k10, 3))
	table := model.NewTable(wl, model.Options{})
	if _, ok := table.EvaluateFast(cfg); !ok {
		b.Fatal("configuration not evaluable")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := table.EvaluateFast(cfg); !ok {
			b.Fatal("evaluation failed")
		}
	}
}

// BenchmarkEvaluateReference is model.Evaluate on the same
// configuration, for the per-evaluation speedup ratio.
func BenchmarkEvaluateReference(b *testing.B) {
	_, wl := paperBenchSpace(b)
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	cfg := cluster.MustConfig(cluster.FullNodes(a9, 7), cluster.FullNodes(k10, 3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.Evaluate(cfg, wl, model.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFrontierSweepFastAllocs pins the steady-state allocation budget
// of the fast sweep: with a warm shared table and a hot scratch pool,
// a full footnote-4 sweep (36,380 configurations) must stay within a
// small fixed number of allocations — the survivor materialization,
// the table snapshot maps, and telemetry scaffolding. The old engine
// cost ~4,300 allocs per sweep; a regression back to per-configuration
// allocation would blow through this bound by orders of magnitude.
func TestFrontierSweepFastAllocs(t *testing.T) {
	limits, wl := paperBenchSpace(t)
	table := model.NewTable(wl, model.Options{})
	sweep := func() {
		front, err := FrontierSweep(limits, wl, model.Options{},
			SweepOptions{Workers: 1, Table: table})
		if err != nil {
			t.Fatal(err)
		}
		if len(front) == 0 {
			t.Fatal("empty frontier")
		}
	}
	sweep() // warm the memo table and the scratch pool
	if allocs := testing.AllocsPerRun(10, sweep); allocs > 200 {
		t.Errorf("fast sweep allocates %.0f objects/op warm, want <= 200 (~87 expected)", allocs)
	}
}

// TestEvaluateParallelPerConfigAllocs verifies the satellite fix: the
// value-slice result buffer removed the per-configuration *Point heap
// allocation, so evaluateParallel's per-config allocations are bounded
// by model.Evaluate's own internals (calc slice + group growth), with
// no extra object per evaluated configuration.
func TestEvaluateParallelPerConfigAllocs(t *testing.T) {
	limits, wl := paperBenchSpace(t)
	var configs []cluster.Config
	err := cluster.Enumerate(limits, func(cfg cluster.Config) bool {
		configs = append(configs, cfg)
		return len(configs) < 512
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: what model.Evaluate itself costs per configuration.
	perEval := testing.AllocsPerRun(5, func() {
		for _, cfg := range configs {
			if _, err := model.Evaluate(cfg, wl, model.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}) / float64(len(configs))

	perSweep := testing.AllocsPerRun(5, func() {
		if out := EvaluateParallel(configs, wl, model.Options{}, 2); len(out) != len(configs) {
			t.Fatalf("evaluated %d of %d", len(out), len(configs))
		}
	}) / float64(len(configs))

	// Allow the amortized slot slice, output slice and pool scaffolding
	// on top of the model's own allocations — but not the one-Point-
	// per-config overhead the slice of pointers used to cost.
	if perSweep > perEval+0.5 {
		t.Errorf("evaluateParallel allocates %.2f objects/config, model.Evaluate alone %.2f: per-config overhead returned",
			perSweep, perEval)
	}
}
