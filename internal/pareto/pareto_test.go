package pareto

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

func mkPoint(t, e float64) Point {
	return Point{Time: units.Seconds(t), Energy: units.Joules(e)}
}

func TestFrontierBasic(t *testing.T) {
	points := []Point{
		mkPoint(1, 10), // fast, expensive: on frontier
		mkPoint(2, 5),  // on frontier
		mkPoint(3, 6),  // dominated by (2,5)
		mkPoint(4, 4),  // on frontier
		mkPoint(2, 7),  // dominated by (2,5)
	}
	f := Frontier(points)
	if len(f) != 3 {
		t.Fatalf("frontier size %d, want 3: %+v", len(f), f)
	}
	want := []Point{mkPoint(1, 10), mkPoint(2, 5), mkPoint(4, 4)}
	for i := range want {
		if f[i].Time != want[i].Time || f[i].Energy != want[i].Energy {
			t.Errorf("frontier[%d] = (%v,%v), want (%v,%v)",
				i, f[i].Time, f[i].Energy, want[i].Time, want[i].Energy)
		}
	}
}

func TestFrontierEmptyAndSingle(t *testing.T) {
	if f := Frontier(nil); f != nil {
		t.Error("empty input should give nil frontier")
	}
	f := Frontier([]Point{mkPoint(1, 1)})
	if len(f) != 1 {
		t.Errorf("single point frontier size %d", len(f))
	}
}

// TestFrontierNonDominating is the core property: no frontier point
// dominates another, and every input point is dominated by or equal to
// some frontier point.
func TestFrontierNonDominating(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 1
		rng := stats.NewRNG(seed)
		points := make([]Point, n)
		for i := range points {
			points[i] = mkPoint(1+rng.Float64()*10, 1+rng.Float64()*10)
		}
		front := Frontier(points)
		if len(front) == 0 {
			return false
		}
		for i := range front {
			for j := range front {
				if i != j && dominates(front[i], front[j]) {
					return false
				}
			}
		}
		for _, p := range points {
			covered := false
			for _, q := range front {
				if q.Time <= p.Time && q.Energy <= p.Energy {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		// Frontier is sorted by time ascending and energy descending.
		for i := 1; i < len(front); i++ {
			if front[i].Time <= front[i-1].Time || front[i].Energy >= front[i-1].Energy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func paperFrontier(t *testing.T, wlName string) []Point {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(wlName)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	limits := []cluster.Limit{
		{Type: a9, MaxNodes: 32, FixCoresAndFreq: true},
		{Type: k10, MaxNodes: 12, FixCoresAndFreq: true},
	}
	front, err := FrontierFor(limits, wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return front
}

// TestEPFrontierShedsBrawnyNodes: for EP (wimpy PPR wins) the frontier
// holds A9 at max and trades away K10 nodes — the structure behind
// Figure 9's sub-linear configurations.
func TestEPFrontierShedsBrawnyNodes(t *testing.T) {
	front := paperFrontier(t, workload.NameEP)
	if len(front) < 3 {
		t.Fatalf("frontier too small: %d", len(front))
	}
	// Fastest point is the full mix.
	if got := front[0].Config.String(); got != "32 A9: 12 K10" {
		t.Errorf("fastest frontier config %s, want 32 A9: 12 K10", got)
	}
	// Every mixed frontier point keeps the full A9 complement.
	for _, p := range front {
		if p.Config.Count("K10") > 0 && p.Config.Count("A9") != 0 && p.Config.Count("A9") != 32 {
			t.Errorf("mixed frontier point %s does not hold A9 at max", p.Config)
		}
	}
	// The cheapest point has no K10 nodes (A9 is more energy efficient).
	last := front[len(front)-1]
	if last.Config.Count("K10") != 0 {
		t.Errorf("cheapest config %s still has brawny nodes", last.Config)
	}
}

// TestX264FrontierShedsWimpyNodes: for x264 (brawny PPR wins) the
// frontier instead holds K10 at max and sheds A9 nodes.
func TestX264FrontierShedsWimpyNodes(t *testing.T) {
	front := paperFrontier(t, workload.NameX264)
	if got := front[0].Config.String(); got != "32 A9: 12 K10" {
		t.Errorf("fastest frontier config %s, want 32 A9: 12 K10", got)
	}
	for _, p := range front {
		if p.Config.Count("A9") > 0 && p.Config.Count("K10") != 0 && p.Config.Count("K10") != 12 {
			t.Errorf("mixed frontier point %s does not hold K10 at max", p.Config)
		}
	}
	last := front[len(front)-1]
	if last.Config.Count("A9") != 0 {
		t.Errorf("cheapest config %s still has wimpy nodes", last.Config)
	}
}

func TestSweetRegionFilters(t *testing.T) {
	front := []Point{mkPoint(1, 10), mkPoint(2, 5), mkPoint(4, 4)}
	s := SweetRegion(front, 2.5, 0)
	if len(s) != 2 {
		t.Errorf("deadline filter kept %d, want 2", len(s))
	}
	s = SweetRegion(front, 0, 6)
	if len(s) != 2 {
		t.Errorf("budget filter kept %d, want 2", len(s))
	}
	s = SweetRegion(front, 2.5, 6)
	if len(s) != 1 || s[0].Energy != 5 {
		t.Errorf("combined filter = %+v", s)
	}
	if s := SweetRegion(front, 0, 0); len(s) != 3 {
		t.Errorf("unconstrained sweet region kept %d, want all", len(s))
	}
}

func TestMinEnergyUnderDeadline(t *testing.T) {
	front := []Point{mkPoint(1, 10), mkPoint(2, 5), mkPoint(4, 4)}
	p, ok := MinEnergyUnderDeadline(front, 3)
	if !ok || p.Energy != 5 {
		t.Errorf("got (%+v, %v), want energy 5", p, ok)
	}
	if _, ok := MinEnergyUnderDeadline(front, 0.5); ok {
		t.Error("impossible deadline reported feasible")
	}
}

// TestMinEDPOnFrontier: the EDP-optimal configuration of the full space
// always lies on the Pareto frontier (EDP is monotone in both axes).
func TestMinEDPOnFrontier(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	configs, err := cluster.EnumerateAll([]cluster.Limit{
		{Type: a9, MaxNodes: 10, FixCoresAndFreq: true},
		{Type: k10, MaxNodes: 5, FixCoresAndFreq: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	all := Evaluate(configs, wl, model.Options{})
	bestAll, ok := MinEDP(all)
	if !ok {
		t.Fatal("no EDP optimum")
	}
	front := Frontier(all)
	bestFront, ok := MinEDP(front)
	if !ok {
		t.Fatal("no EDP optimum on frontier")
	}
	if bestAll.Result.EDP() != bestFront.Result.EDP() {
		t.Errorf("EDP optimum not on frontier: %s (%.4g) vs %s (%.4g)",
			bestAll.Config, bestAll.Result.EDP(), bestFront.Config, bestFront.Result.EDP())
	}
	if _, ok := MinEDP(nil); ok {
		t.Error("empty MinEDP reported a point")
	}
}

func TestEvaluateSkipsUnsupportedConfigs(t *testing.T) {
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	a15, _ := cat.Lookup("A15")
	// A workload that only supports A9.
	p := workload.NewProfile("only-a9", workload.DomainSynthetic, "u", 100)
	if err := p.SetDemand("A9", workload.Demand{CoreCycles: 100, Intensity: 0.5}); err != nil {
		t.Fatal(err)
	}
	configs := []cluster.Config{
		cluster.MustConfig(cluster.FullNodes(a9, 2)),
		cluster.MustConfig(cluster.FullNodes(a15, 2)), // unsupported
	}
	pts := Evaluate(configs, p, model.Options{})
	if len(pts) != 1 {
		t.Errorf("evaluated %d configs, want 1 (unsupported skipped)", len(pts))
	}
}
