package pareto

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/workload"
)

// determinismWorkers is the worker ladder every parallel-determinism
// assertion runs over: serial, small fan-outs, and more workers than
// top-level tasks exist (so chunk starvation is covered too).
var determinismWorkers = []int{1, 2, 4, 16}

// frontiersBitIdentical asserts byte-for-byte scalar equality
// (math.Float64bits, not ==, so even NaN payloads and signed zeros
// would have to match) plus config identity and identical Results.
func frontiersBitIdentical(t *testing.T, label string, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: frontier size %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Config.Key() != want[i].Config.Key() {
			t.Fatalf("%s: point %d is %s, want %s", label, i, got[i].Config, want[i].Config)
		}
		if math.Float64bits(float64(got[i].Time)) != math.Float64bits(float64(want[i].Time)) ||
			math.Float64bits(float64(got[i].Energy)) != math.Float64bits(float64(want[i].Energy)) {
			t.Fatalf("%s: point %d scalars (%v,%v) not bitwise-equal to (%v,%v)",
				label, i, got[i].Time, got[i].Energy, want[i].Time, want[i].Energy)
		}
		if math.Float64bits(float64(got[i].Result.Time)) != math.Float64bits(float64(want[i].Result.Time)) ||
			math.Float64bits(float64(got[i].Result.Energy)) != math.Float64bits(float64(want[i].Result.Energy)) {
			t.Fatalf("%s: point %d materialized Result differs bitwise", label, i)
		}
	}
}

// TestFrontierParallelDeterminism: for every paper workload, the fast
// engine's frontier is bitwise-identical across the whole worker
// ladder and equal to the Reference sweep — the tentpole guarantee
// that parallelism never changes a single output bit. The -short form
// shrinks the space so the race-gated CI run stays fast.
func TestFrontierParallelDeterminism(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	k10, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	maxA9, maxK10 := 6, 3
	if testing.Short() {
		maxA9, maxK10 = 3, 2
	}
	limits := []cluster.Limit{
		{Type: a9, MaxNodes: maxA9},
		{Type: k10, MaxNodes: maxK10},
	}

	for _, name := range workload.PaperNames() {
		wl, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Reference: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(ref) == 0 {
			t.Fatalf("%s: empty reference frontier", name)
		}
		for _, workers := range determinismWorkers {
			fast, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			frontiersBitIdentical(t, fmt.Sprintf("%s workers=%d vs reference", name, workers), fast, ref)

			noPrune, err := FrontierSweep(limits, wl, model.Options{},
				SweepOptions{Workers: workers, NoPrune: true})
			if err != nil {
				t.Fatal(err)
			}
			frontiersBitIdentical(t, fmt.Sprintf("%s workers=%d noprune", name, workers), noPrune, ref)
		}
	}
}

// TestFrontierParallelAccountingInvariant: on randomized spaces, the
// SpaceSize accounting invariant — evaluated + skipped + filtered +
// pruned == SpaceSize — holds for every worker count, with and without
// pruning and with a Filter installed; and the frontier stays
// bitwise-identical to the serial sweep throughout.
func TestFrontierParallelAccountingInvariant(t *testing.T) {
	iterations := 25
	if testing.Short() {
		iterations = 8
	}
	for iter := 0; iter < iterations; iter++ {
		rng := stats.NewRNG(0xA5A5A5A5DEADBEEF + uint64(iter))
		limits, wl := randomSpace(t, rng)
		space := int64(cluster.SpaceSize(limits))

		var serial []Point
		for _, workers := range []int{1, 2, 3, 4, 16} {
			for _, mode := range []struct {
				label   string
				noPrune bool
				filter  func(cluster.Config) bool
			}{
				{label: "pruned"},
				{label: "noprune", noPrune: true},
				{label: "filtered", filter: func(cfg cluster.Config) bool {
					return cfg.Nodes()%2 == 0
				}},
			} {
				label := fmt.Sprintf("iter %d workers %d %s (space %d)", iter, workers, mode.label, space)
				var st SweepStats
				front, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{
					Workers: workers,
					NoPrune: mode.noPrune,
					Filter:  mode.filter,
					Stats:   &st,
				})
				if err != nil {
					t.Fatal(err)
				}
				if sum := st.Evaluated + st.Skipped + st.Filtered + st.Pruned; sum != space {
					t.Fatalf("%s: evaluated %d + skipped %d + filtered %d + pruned %d = %d != space %d",
						label, st.Evaluated, st.Skipped, st.Filtered, st.Pruned, sum, space)
				}
				if mode.noPrune && st.Pruned != 0 {
					t.Fatalf("%s: NoPrune sweep pruned %d configurations", label, st.Pruned)
				}
				if mode.filter == nil && st.Filtered != 0 {
					t.Fatalf("%s: filterless sweep filtered %d configurations", label, st.Filtered)
				}
				if mode.filter == nil {
					if workers == 1 && !mode.noPrune {
						serial = front
					} else if serial != nil {
						frontiersBitIdentical(t, label+" vs serial", front, serial)
					}
				}
			}
		}
	}
}

// TestFrontierSweepSharedTable: a caller-provided warm table gives the
// identical frontier, and a table built for a different workload or
// options is rejected instead of silently corrupting the sweep.
func TestFrontierSweepSharedTable(t *testing.T) {
	limits, wl := sweepSpace(t)
	want, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	table := model.NewTable(wl, model.Options{})
	for _, workers := range determinismWorkers {
		got, err := FrontierSweep(limits, wl, model.Options{},
			SweepOptions{Workers: workers, Table: table})
		if err != nil {
			t.Fatal(err)
		}
		frontiersBitIdentical(t, fmt.Sprintf("shared table workers=%d", workers), got, want)
	}

	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	other, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FrontierSweep(limits, other, model.Options{},
		SweepOptions{Table: table}); err == nil {
		t.Fatal("sweep accepted a table built for a different workload")
	}
	if _, err := FrontierSweep(limits, wl, model.Options{MemFrequencyInvariant: true},
		SweepOptions{Table: table}); err == nil {
		t.Fatal("sweep accepted a table built for different options")
	}
}

// TestFrontierSweepContextCancel: a pre-cancelled context aborts the
// sweep with the context's error and no partial frontier, on both
// engines and for every worker count.
func TestFrontierSweepContextCancel(t *testing.T) {
	limits, wl := sweepSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range determinismWorkers {
		front, err := FrontierSweep(limits, wl, model.Options{},
			SweepOptions{Workers: workers, Context: ctx})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if front != nil {
			t.Fatalf("workers=%d: cancelled sweep returned %d points", workers, len(front))
		}
	}
	if _, err := FrontierSweep(limits, wl, model.Options{},
		SweepOptions{Reference: true, Context: ctx}); err != context.Canceled {
		t.Fatalf("reference: err = %v, want context.Canceled", err)
	}
}
