package pareto

import (
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// This file implements the memoized closed-form sweep engine behind
// FrontierSweep. Instead of re-running the full Table 2 model —
// validation, demand-map lookups, per-group slice allocation — once
// per configuration, it:
//
//  1. memoizes a model.UnitCalc per distinct (type, cores, freq)
//     operating point (tens of entries for tens of thousands of
//     configurations),
//  2. evaluates each configuration allocation-free through
//     model.EvaluateCalcs, whose scalars are bitwise-identical to
//     model.Evaluate (same expression shapes and accumulation order),
//  3. prunes whole enumeration subtrees with monotone lower bounds:
//     fixing a prefix of per-type choices bounds the best reachable
//     time by JobUnits/(rate_prefix + max remaining rate) and the best
//     reachable energy by JobUnits * min EnergyPerUnit — if a running
//     frontier point is at least as good on both axes, no completion
//     of the prefix can ever be accepted by Frontier, so the subtree
//     is skipped without evaluation (counted in pareto.configs_pruned).
//
// Exactness argument. The final frontier is computed by one Frontier
// call over the surviving points. A point is dropped early only when
// some retained point q has q.Time <= p.Time and q.Energy <= p.Energy
// (admission), or when the subtree bounds guarantee such a q exists
// for every completion (pruning, with a relative slack covering the
// model's floating-point rounding). In Frontier's scan, acceptance of
// p would require p.Energy < bestEnergy*(1-1e-9) <= q.Energy — a
// contradiction — and rejected points never mutate the scan state
// (bestEnergy, lastTime), so removing them leaves the output
// unchanged: the result equals Frontier over every evaluated point,
// which (by bitwise-equal scalars) equals the reference path's
// frontier point for point.

// boundSlack is the relative safety margin applied to the pruning
// lower bounds. The bounds are exact in real arithmetic; the evaluated
// scalars carry a few tens of ulps of rounding (~1e-14 relative), so a
// 1e-9 haircut keeps the bounds strictly conservative with eight
// orders of magnitude to spare.
const boundSlack = 1e-9

// fastFoldChunk is how many admitted points accumulate before the
// running frontier is re-compacted.
const fastFoldChunk = 2048

// curSel is the DFS's current choice for one type; on=false means the
// type is skipped at this point of the walk.
type curSel struct {
	on bool
	g  cluster.Group
	uc *model.UnitCalc
}

type fastEngine struct {
	table    *model.Table
	jobUnits float64
	limits   []cluster.Limit
	filter   func(cluster.Config) bool
	noPrune  bool
	pr       *telemetry.Progress

	choices [][]cluster.Group
	calcs   [][]*model.UnitCalc
	// byRank walks limit indices in node-type-name order — the
	// canonical cluster.NewConfig group order the bitwise-exact
	// evaluator requires.
	byRank []int
	cur    []curSel
	gcsBuf []model.GroupCalc

	// maxRateSuffix[i] bounds the execution rate types i.. can add;
	// minEPUSuffix[i] is the lowest busy energy-per-unit any of their
	// choices offers; suffixSpace[i] counts the completions of a
	// non-empty prefix (product of 1+len(choices) over types i..).
	maxRateSuffix []float64
	minEPUSuffix  []float64
	suffixSpace   []int64

	// Running frontier: survivors in enumeration order, the pending
	// batch, and the compacted (time ascending, energy descending)
	// coordinate arrays used for domination tests.
	survivors []Point
	batch     []Point
	runT      []float64
	runE      []float64

	nEvaluated int64
	nSkipped   int64
	nFiltered  int64
	nPruned    int64
}

func newFastEngine(limits []cluster.Limit, table *model.Table, sw SweepOptions) *fastEngine {
	e := &fastEngine{
		table:    table,
		jobUnits: table.JobUnits(),
		limits:   limits,
		filter:   sw.Filter,
		noPrune:  sw.NoPrune,
		pr:       sw.Progress,
		choices:  make([][]cluster.Group, len(limits)),
		calcs:    make([][]*model.UnitCalc, len(limits)),
		byRank:   make([]int, len(limits)),
		cur:      make([]curSel, len(limits)),
		gcsBuf:   make([]model.GroupCalc, 0, len(limits)),
	}
	for i, l := range limits {
		gs := l.Choices()
		cs := make([]*model.UnitCalc, len(gs))
		for j, g := range gs {
			cs[j] = table.Calc(g)
		}
		e.choices[i] = gs
		e.calcs[i] = cs
		e.byRank[i] = i
	}
	sort.SliceStable(e.byRank, func(a, b int) bool {
		return limits[e.byRank[a]].Type.Name < limits[e.byRank[b]].Type.Name
	})

	n := len(limits)
	e.maxRateSuffix = make([]float64, n+1)
	e.minEPUSuffix = make([]float64, n+1)
	e.suffixSpace = make([]int64, n+1)
	e.minEPUSuffix[n] = math.Inf(1)
	e.suffixSpace[n] = 1
	for i := n - 1; i >= 0; i-- {
		maxRate := 0.0
		minEPU := math.Inf(1)
		for j, uc := range e.calcs[i] {
			if !uc.Supported {
				continue
			}
			if r := uc.NodeRate * float64(e.choices[i][j].Count); r > maxRate {
				maxRate = r
			}
			if uc.EnergyPerUnit < minEPU {
				minEPU = uc.EnergyPerUnit
			}
		}
		e.maxRateSuffix[i] = e.maxRateSuffix[i+1] + maxRate
		e.minEPUSuffix[i] = e.minEPUSuffix[i+1]
		if minEPU < e.minEPUSuffix[i] {
			e.minEPUSuffix[i] = minEPU
		}
		e.suffixSpace[i] = e.suffixSpace[i+1] * int64(1+len(e.choices[i]))
	}
	return e
}

// covered reports whether some running-frontier point is at least as
// good as (t, en) on both axes.
func (e *fastEngine) covered(t, en float64) bool {
	j := sort.SearchFloat64s(e.runT, t)
	// SearchFloat64s returns the first index with runT >= t; the last
	// index with runT <= t is j when runT[j] == t, else j-1.
	if j == len(e.runT) || e.runT[j] != t {
		j--
	}
	if j < 0 {
		return false
	}
	return e.runE[j] <= en
}

// pruneBound reports whether every completion of the current prefix
// (types before i chosen, types i.. free) is covered by the running
// frontier, using the monotone lower bounds on time and energy.
func (e *fastEngine) pruneBound(i int, partialRate, partialMinEPU float64) bool {
	if len(e.runT) == 0 {
		return false
	}
	ub := partialRate + e.maxRateSuffix[i]
	if !(ub > 0) {
		return false
	}
	tLB := e.jobUnits / ub * (1 - boundSlack)
	mEPU := partialMinEPU
	if s := e.minEPUSuffix[i]; s < mEPU {
		mEPU = s
	}
	if math.IsInf(mEPU, 1) {
		return false
	}
	eLB := e.jobUnits * mEPU * (1 - boundSlack)
	return e.covered(tLB, eLB)
}

func (e *fastEngine) rec(i, depth int, partialRate, partialMinEPU float64) {
	if i == len(e.limits) {
		if depth > 0 {
			e.leaf()
		}
		return
	}
	if !e.noPrune && e.pruneBound(i, partialRate, partialMinEPU) {
		n := e.suffixSpace[i]
		if depth == 0 {
			n-- // the all-skip completion is not a configuration
		}
		if n > 0 {
			e.nPruned += n
			e.pr.Add(n)
		}
		return
	}
	// Skip this type, as Enumerate does first.
	e.rec(i+1, depth, partialRate, partialMinEPU)
	for j, g := range e.choices[i] {
		uc := e.calcs[i][j]
		if !uc.Supported && e.filter == nil {
			// Every completion fails evaluation on the missing demand
			// vector; account the whole subtree as skipped. (With a
			// Filter installed the walk must continue so filtered
			// configurations are counted as filtered, as on the
			// reference path.)
			n := e.suffixSpace[i+1]
			e.nSkipped += n
			e.pr.Add(n)
			continue
		}
		e.cur[i] = curSel{on: true, g: g, uc: uc}
		rate := partialRate + uc.NodeRate*float64(g.Count)
		mEPU := partialMinEPU
		if uc.Supported && uc.EnergyPerUnit < mEPU {
			mEPU = uc.EnergyPerUnit
		}
		e.rec(i+1, depth+1, rate, mEPU)
		e.cur[i].on = false
	}
}

func (e *fastEngine) buildConfig() cluster.Config {
	groups := make([]cluster.Group, 0, len(e.limits))
	for _, ti := range e.byRank {
		if e.cur[ti].on {
			groups = append(groups, e.cur[ti].g)
		}
	}
	// Groups are pre-validated by enumeration and appended in node-type
	// name order, so this is already the canonical NewConfig form.
	return cluster.Config{Groups: groups}
}

func (e *fastEngine) leaf() {
	gcs := e.gcsBuf[:0]
	for _, ti := range e.byRank {
		if e.cur[ti].on {
			gcs = append(gcs, model.GroupCalc{Calc: e.cur[ti].uc, Count: e.cur[ti].g.Count})
		}
	}
	if e.filter != nil {
		if !e.filter(e.buildConfig()) {
			e.nFiltered++
			e.pr.Tick()
			return
		}
	}
	fr, ok := e.table.EvaluateCalcs(gcs)
	if !ok {
		e.nSkipped++
		e.pr.Tick()
		return
	}
	e.nEvaluated++
	e.pr.Tick()
	if len(e.runT) > 0 && e.covered(float64(fr.Time), float64(fr.Energy)) {
		return
	}
	e.batch = append(e.batch, Point{Config: e.buildConfig(), Time: fr.Time, Energy: fr.Energy})
	if len(e.batch) >= fastFoldChunk {
		e.fold()
	}
}

func (e *fastEngine) fold() {
	if len(e.batch) == 0 {
		return
	}
	e.survivors = plainFrontier(append(e.survivors, e.batch...))
	e.batch = e.batch[:0]
	e.runT = e.runT[:0]
	e.runE = e.runE[:0]
	type te struct{ t, en float64 }
	pts := make([]te, len(e.survivors))
	for i, p := range e.survivors {
		pts[i] = te{float64(p.Time), float64(p.Energy)}
	}
	sort.Slice(pts, func(a, b int) bool { return pts[a].t < pts[b].t })
	for _, p := range pts {
		if n := len(e.runT); n > 0 && e.runT[n-1] == p.t {
			continue // same time class, equal energy by non-domination
		}
		e.runT = append(e.runT, p.t)
		e.runE = append(e.runE, p.en)
	}
}

// plainFrontier keeps every point not strictly dominated by another
// (no noise epsilon), preserving input order and exact duplicates. It
// is the compaction step of the fast sweep: the final epsilon-aware
// Frontier runs once over its output.
func plainFrontier(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.Time != pb.Time {
			return pa.Time < pb.Time
		}
		return pa.Energy < pb.Energy
	})
	keep := make([]bool, len(pts))
	minPrev := math.Inf(1) // min energy over strictly earlier time classes
	i := 0
	for i < len(idx) {
		j := i
		classMin := math.Inf(1)
		for j < len(idx) && pts[idx[j]].Time == pts[idx[i]].Time {
			if en := float64(pts[idx[j]].Energy); en < classMin {
				classMin = en
			}
			j++
		}
		for k := i; k < j; k++ {
			en := float64(pts[idx[k]].Energy)
			// Dominated by an earlier (strictly faster) class, or by a
			// strictly cheaper same-time point.
			if minPrev <= en || en > classMin {
				continue
			}
			keep[idx[k]] = true
		}
		if classMin < minPrev {
			minPrev = classMin
		}
		i = j
	}
	out := make([]Point, 0, len(pts))
	for i, p := range pts {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out
}

// frontierSweepFast is the memoized closed-form sweep behind
// FrontierSweep: identical results to the reference path, orders of
// magnitude faster. Single-threaded by design — the per-configuration
// cost is tens of nanoseconds, far below fan-out overhead.
func frontierSweepFast(limits []cluster.Limit, wl *workload.Profile, opt model.Options, sw SweepOptions) ([]Point, error) {
	span := telemetry.StartSpan("pareto.frontier_sweep").
		Arg("workload", wl.Name).Arg("engine", "fast")
	defer span.End()
	defer sw.Request.Phase("pareto.frontier_sweep")()
	if err := cluster.ValidateLimits(limits); err != nil {
		return nil, err
	}
	reg := telemetry.Global()
	evaluated := reg.Counter("pareto.configs_evaluated")
	skipped := reg.Counter("pareto.configs_skipped")
	filtered := reg.Counter("pareto.configs_filtered")
	pruned := reg.Counter("pareto.configs_pruned")

	if wl.Validate() != nil {
		// The reference path skips every configuration when the profile
		// is invalid (model.Evaluate fails each one); mirror its
		// accounting without walking the space one leaf at a time.
		n := int64(cluster.SpaceSize(limits))
		if n > 0 {
			skipped.Add(uint64(n))
			sw.Progress.Add(n)
		}
		sw.Progress.Done()
		return nil, nil
	}

	table := model.NewTable(wl, opt)
	e := newFastEngine(limits, table, sw)
	e.rec(0, 0, 0, math.Inf(1))
	e.fold()

	out := Frontier(e.survivors)
	for i := range out {
		if res, err := table.Materialize(out[i].Config); err == nil {
			out[i].Result = res
		}
	}

	evaluated.Add(uint64(e.nEvaluated))
	skipped.Add(uint64(e.nSkipped))
	filtered.Add(uint64(e.nFiltered))
	pruned.Add(uint64(e.nPruned))
	sw.Request.Add(telemetry.AttrConfigsEvaluated, e.nEvaluated)
	sw.Request.Add(telemetry.AttrConfigsFiltered, e.nFiltered)
	sw.Request.Add(telemetry.AttrConfigsPruned, e.nPruned)
	span.Arg("evaluated", e.nEvaluated).Arg("pruned", e.nPruned)
	sw.Progress.Done()
	return out, nil
}
