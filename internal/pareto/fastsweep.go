package pareto

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// This file implements the memoized closed-form sweep engine behind
// FrontierSweep. Instead of re-running the full Table 2 model —
// validation, demand-map lookups, per-group slice allocation — once
// per configuration, it:
//
//  1. memoizes a model.UnitCalc per distinct (type, cores, freq)
//     operating point (tens of entries for tens of thousands of
//     configurations), snapshotted once into an immutable, lock-free
//     view every worker shares,
//  2. flattens the per-type choice space into columnar (structure-of-
//     arrays) slices — count, node rate, energy-per-unit, support bit,
//     unit-calc pointer — so the inner DFS loop walks cache-linear
//     arrays instead of chasing per-choice structs,
//  3. evaluates each configuration allocation-free through
//     model.EvaluateCalcs, whose scalars are bitwise-identical to
//     model.Evaluate (same expression shapes and accumulation order),
//  4. prunes whole enumeration subtrees with monotone lower bounds:
//     fixing a prefix of per-type choices bounds the best reachable
//     time by JobUnits/(rate_prefix + max remaining rate) and the best
//     reachable energy by JobUnits * min EnergyPerUnit — if a running
//     frontier point is at least as good on both axes, no completion
//     of the prefix can ever be accepted by Frontier, so the subtree
//     is skipped without evaluation (counted in pareto.configs_pruned),
//  5. partitions the DFS at the top of the choice tree — one task per
//     first-type decision (skip, or one of its (count, cores, freq)
//     choices), largest-remainder balanced into one contiguous chunk
//     per worker — and runs a private engine per chunk on the shared
//     internal/sweep pool.
//
// Exactness argument, serial. The final frontier is computed by one
// Frontier-equivalent fold over the surviving points. A point is
// dropped early only when some retained point q has q.Time <= p.Time
// and q.Energy <= p.Energy (admission), or when the subtree bounds
// guarantee such a q exists for every completion (pruning, with a
// relative slack covering the model's floating-point rounding). In
// Frontier's scan, acceptance of p would require
// p.Energy < bestEnergy*(1-1e-9) <= q.Energy — a contradiction — and
// rejected points never mutate the scan state (bestEnergy, lastTime),
// so removing them leaves the output unchanged: the result equals
// Frontier over every evaluated point, which (by bitwise-equal
// scalars) equals the reference path's frontier point for point.
//
// Exactness argument, parallel. Each chunk's engine sees only its own
// running frontier, which is a subset of what the serial engine would
// have accumulated at the same leaf — so pruning and early drops can
// only become *weaker*: every point the serial engine retains is
// retained by some chunk, and any extra points a chunk retains are
// dominated or duplicate, which the final fold removes by the serial
// argument above. Concatenating the per-chunk survivors in chunk order
// preserves global enumeration order (chunks are contiguous task
// ranges of the top-level loop), so the fold's stable sort breaks ties
// exactly as the serial sweep does ("first representative" is the same
// point). The output is therefore bitwise-identical for every worker
// count, including 1 — only the pruned/evaluated split in the
// accounting may shift between worker counts (their sum is invariant:
// evaluated + skipped + filtered + pruned == SpaceSize).

// boundSlack is the relative safety margin applied to the pruning
// lower bounds. The bounds are exact in real arithmetic; the evaluated
// scalars carry a few tens of ulps of rounding (~1e-14 relative), so a
// 1e-9 haircut keeps the bounds strictly conservative with eight
// orders of magnitude to spare.
const boundSlack = 1e-9

// fastFoldChunk is how many admitted points accumulate before the
// running frontier is re-compacted.
const fastFoldChunk = 2048

// cancelCheckEvery is how many accounted configurations pass between
// polls of the cancellation channel: a channel select per
// configuration would cost more than the evaluation itself.
const cancelCheckEvery = 8192

// grow returns s resized to n elements, reusing its backing array when
// capacity allows. Contents are unspecified; callers overwrite.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// spaceSoA is the columnar (structure-of-arrays) form of the
// configuration space: every per-type choice flattened into parallel
// slices, segmented by typeOff. It is built once per sweep by the
// coordinator and then shared read-only by every worker — together
// with the model.Snapshot it embeds, it is the immutable view that
// keeps the hot path free of the table's RWMutex.
type spaceSoA struct {
	snap     *model.Snapshot
	jobUnits float64
	nTypes   int

	// byRank walks type indices in node-type-name order — the canonical
	// cluster.NewConfig group order the bitwise-exact evaluator
	// requires.
	byRank []int32
	// typeOff[i]..typeOff[i+1] is type i's segment of the columns.
	typeOff []int32
	count   []int32
	rate    []float64 // NodeRate * Count, the choice's rate contribution
	epu     []float64 // busy energy-per-unit; +Inf when unsupported
	sup     []bool
	calcs   []*model.UnitCalc
	// groups keeps the AoS form for Config materialization and Filter.
	groups []cluster.Group

	// maxRateSuffix[i] bounds the execution rate types i.. can add;
	// minEPUSuffix[i] is the lowest busy energy-per-unit any of their
	// choices offers; suffixSpace[i] counts the completions of a
	// non-empty prefix (product of 1+segment length over types i..).
	maxRateSuffix []float64
	minEPUSuffix  []float64
	suffixSpace   []int64
}

func (sp *spaceSoA) build(limits []cluster.Limit, table *model.Table) {
	n := len(limits)
	sp.nTypes = n
	sp.snap = table.Snapshot(limits)
	sp.jobUnits = sp.snap.JobUnits()

	sp.typeOff = grow(sp.typeOff, n+1)
	sp.count = sp.count[:0]
	sp.rate = sp.rate[:0]
	sp.epu = sp.epu[:0]
	sp.sup = sp.sup[:0]
	sp.calcs = sp.calcs[:0]
	sp.groups = sp.groups[:0]
	for i, l := range limits {
		sp.typeOff[i] = int32(len(sp.groups))
		for _, g := range l.Choices() {
			uc, ok := sp.snap.Calc(g)
			if !ok {
				// Snapshot pre-warmed every operating point of limits;
				// Choices only expands node counts over the same points.
				panic("pareto: choice missing from table snapshot")
			}
			sp.groups = append(sp.groups, g)
			sp.calcs = append(sp.calcs, uc)
			sp.count = append(sp.count, int32(g.Count))
			// Same expression as the reference prefix accumulation, so
			// the precomputed column is bitwise-identical to computing
			// it at the tree node.
			sp.rate = append(sp.rate, uc.NodeRate*float64(g.Count))
			sp.sup = append(sp.sup, uc.Supported)
			if uc.Supported {
				sp.epu = append(sp.epu, uc.EnergyPerUnit)
			} else {
				// +Inf keeps the min-EPU update branch-free: an
				// unsupported choice can never lower the bound.
				sp.epu = append(sp.epu, math.Inf(1))
			}
		}
	}
	sp.typeOff[n] = int32(len(sp.groups))

	sp.byRank = grow(sp.byRank, n)
	for i := range sp.byRank {
		sp.byRank[i] = int32(i)
	}
	sort.SliceStable(sp.byRank, func(a, b int) bool {
		return limits[sp.byRank[a]].Type.Name < limits[sp.byRank[b]].Type.Name
	})

	sp.maxRateSuffix = grow(sp.maxRateSuffix, n+1)
	sp.minEPUSuffix = grow(sp.minEPUSuffix, n+1)
	sp.suffixSpace = grow(sp.suffixSpace, n+1)
	sp.maxRateSuffix[n] = 0
	sp.minEPUSuffix[n] = math.Inf(1)
	sp.suffixSpace[n] = 1
	for i := n - 1; i >= 0; i-- {
		maxRate := 0.0
		minEPU := math.Inf(1)
		for j := sp.typeOff[i]; j < sp.typeOff[i+1]; j++ {
			if !sp.sup[j] {
				continue
			}
			if r := sp.rate[j]; r > maxRate {
				maxRate = r
			}
			if e := sp.epu[j]; e < minEPU {
				minEPU = e
			}
		}
		sp.maxRateSuffix[i] = sp.maxRateSuffix[i+1] + maxRate
		sp.minEPUSuffix[i] = sp.minEPUSuffix[i+1]
		if minEPU < sp.minEPUSuffix[i] {
			sp.minEPUSuffix[i] = minEPU
		}
		sp.suffixSpace[i] = sp.suffixSpace[i+1] * int64(1+int(sp.typeOff[i+1]-sp.typeOff[i]))
	}
}

// fastPoint is a survivor before materialization: coordinates plus an
// index into the engine's flat selection buffer. Configs and Results
// are built only for the final frontier points, never per survivor.
type fastPoint struct {
	t   units.Seconds
	e   units.Joules
	sel int32
}

// fastEngine walks one contiguous range of top-level tasks. Every
// worker owns a private engine; the only shared state is the read-only
// spaceSoA (and the atomic Progress reporter).
type fastEngine struct {
	sp      *spaceSoA
	filter  func(cluster.Config) bool
	noPrune bool
	pr      *telemetry.Progress

	// cancel is the sweep context's Done channel (nil when the sweep is
	// not cancellable); stop latches once it fires.
	cancel     <-chan struct{}
	stop       bool
	sinceCheck int64

	// sel[i] is the DFS's current column index for type i; -1 = skip.
	sel    []int32
	gcsBuf []model.GroupCalc

	// Running frontier: survivors in enumeration order, the pending
	// batch, the flat selection blocks (stride nTypes) the survivors
	// reference, and the compacted (time ascending, energy descending)
	// coordinate arrays used for domination tests.
	survivors []fastPoint
	batch     []fastPoint
	sels      []int32
	runT      []float64
	runE      []float64
	foldIdx   []int32
	foldKeep  []bool

	nEvaluated int64
	nSkipped   int64
	nFiltered  int64
	nPruned    int64
}

func (e *fastEngine) reset(sp *spaceSoA, sw *SweepOptions, cancel <-chan struct{}) {
	e.sp = sp
	e.filter = sw.Filter
	e.noPrune = sw.NoPrune
	e.pr = sw.Progress
	e.cancel = cancel
	e.stop = false
	e.sinceCheck = 0
	e.sel = grow(e.sel, sp.nTypes)
	for i := range e.sel {
		e.sel[i] = -1
	}
	if cap(e.gcsBuf) < sp.nTypes {
		e.gcsBuf = make([]model.GroupCalc, 0, sp.nTypes)
	}
	e.survivors = e.survivors[:0]
	e.batch = e.batch[:0]
	e.sels = e.sels[:0]
	e.runT = e.runT[:0]
	e.runE = e.runE[:0]
	e.nEvaluated, e.nSkipped, e.nFiltered, e.nPruned = 0, 0, 0, 0
}

// release drops references into caller-owned state so pooled scratch
// does not pin filters, progress reporters or the space across sweeps.
func (e *fastEngine) release() {
	e.sp = nil
	e.filter = nil
	e.pr = nil
	e.cancel = nil
}

// noteProgress batches the cancellation poll over n newly accounted
// configurations.
func (e *fastEngine) noteProgress(n int64) {
	if e.cancel == nil {
		return
	}
	e.sinceCheck += n
	if e.sinceCheck < cancelCheckEvery {
		return
	}
	e.sinceCheck = 0
	select {
	case <-e.cancel:
		e.stop = true
	default:
	}
}

// covered reports whether some running-frontier point is at least as
// good as (t, en) on both axes.
func (e *fastEngine) covered(t, en float64) bool {
	j := sort.SearchFloat64s(e.runT, t)
	// SearchFloat64s returns the first index with runT >= t; the last
	// index with runT <= t is j when runT[j] == t, else j-1.
	if j == len(e.runT) || e.runT[j] != t {
		j--
	}
	if j < 0 {
		return false
	}
	return e.runE[j] <= en
}

// pruneBound reports whether every completion of the current prefix
// (types before i chosen, types i.. free) is covered by the running
// frontier, using the monotone lower bounds on time and energy.
func (e *fastEngine) pruneBound(i int, partialRate, partialMinEPU float64) bool {
	if len(e.runT) == 0 {
		return false
	}
	ub := partialRate + e.sp.maxRateSuffix[i]
	if !(ub > 0) {
		return false
	}
	tLB := e.sp.jobUnits / ub * (1 - boundSlack)
	mEPU := partialMinEPU
	if s := e.sp.minEPUSuffix[i]; s < mEPU {
		mEPU = s
	}
	if math.IsInf(mEPU, 1) {
		return false
	}
	eLB := e.sp.jobUnits * mEPU * (1 - boundSlack)
	return e.covered(tLB, eLB)
}

// runTasks executes the top-level tasks [lo, hi): task 0 skips the
// first type (as Enumerate does first), task t >= 1 fixes the first
// type to its choice t-1. The bodies replicate rec's level-0 loop
// statement for statement, so a single chunk spanning every task is
// exactly the serial sweep.
func (e *fastEngine) runTasks(lo, hi int) {
	sp := e.sp
	for t := lo; t < hi; t++ {
		if e.stop {
			return
		}
		if t == 0 {
			e.rec(1, 0, 0, math.Inf(1))
			continue
		}
		j := sp.typeOff[0] + int32(t-1)
		if !sp.sup[j] && e.filter == nil {
			// Every completion fails evaluation on the missing demand
			// vector; account the whole subtree as skipped. (With a
			// Filter installed the walk must continue so filtered
			// configurations are counted as filtered, as on the
			// reference path.)
			n := sp.suffixSpace[1]
			e.nSkipped += n
			e.pr.Add(n)
			e.noteProgress(n)
			continue
		}
		e.sel[0] = j
		mEPU := math.Inf(1)
		if v := sp.epu[j]; v < mEPU {
			mEPU = v
		}
		e.rec(1, 1, sp.rate[j], mEPU)
		e.sel[0] = -1
	}
}

func (e *fastEngine) rec(i, depth int, partialRate, partialMinEPU float64) {
	if e.stop {
		return
	}
	sp := e.sp
	if i == sp.nTypes {
		if depth > 0 {
			e.leaf()
		}
		return
	}
	if !e.noPrune && e.pruneBound(i, partialRate, partialMinEPU) {
		n := sp.suffixSpace[i]
		if depth == 0 {
			n-- // the all-skip completion is not a configuration
		}
		if n > 0 {
			e.nPruned += n
			e.pr.Add(n)
			e.noteProgress(n)
		}
		return
	}
	// Skip this type, as Enumerate does first.
	e.rec(i+1, depth, partialRate, partialMinEPU)
	for j := sp.typeOff[i]; j < sp.typeOff[i+1]; j++ {
		if e.stop {
			return
		}
		if !sp.sup[j] && e.filter == nil {
			n := sp.suffixSpace[i+1]
			e.nSkipped += n
			e.pr.Add(n)
			e.noteProgress(n)
			continue
		}
		e.sel[i] = j
		rate := partialRate + sp.rate[j]
		mEPU := partialMinEPU
		if v := sp.epu[j]; v < mEPU {
			mEPU = v
		}
		e.rec(i+1, depth+1, rate, mEPU)
		e.sel[i] = -1
	}
}

// curConfig materializes the DFS's current selection as a canonical
// Config (groups in node-type-name order). Only the Filter path pays
// this allocation; filters may retain the Config, as on the reference
// path.
func (e *fastEngine) curConfig() cluster.Config {
	sp := e.sp
	groups := make([]cluster.Group, 0, sp.nTypes)
	for _, ti := range sp.byRank {
		if j := e.sel[ti]; j >= 0 {
			groups = append(groups, sp.groups[j])
		}
	}
	return cluster.Config{Groups: groups}
}

// configAt materializes survivor i's Config from its flat selection
// block — deferred until the final frontier is known, so dropped
// survivors never allocate.
func (e *fastEngine) configAt(i int32) cluster.Config {
	sp := e.sp
	base := int(e.survivors[i].sel) * sp.nTypes
	groups := make([]cluster.Group, 0, sp.nTypes)
	for _, ti := range sp.byRank {
		if j := e.sels[base+int(ti)]; j >= 0 {
			groups = append(groups, sp.groups[j])
		}
	}
	return cluster.Config{Groups: groups}
}

func (e *fastEngine) leaf() {
	sp := e.sp
	gcs := e.gcsBuf[:0]
	for _, ti := range sp.byRank {
		if j := e.sel[ti]; j >= 0 {
			gcs = append(gcs, model.GroupCalc{Calc: sp.calcs[j], Count: int(sp.count[j])})
		}
	}
	if e.filter != nil {
		if !e.filter(e.curConfig()) {
			e.nFiltered++
			e.pr.Tick()
			e.noteProgress(1)
			return
		}
	}
	fr, ok := sp.snap.EvaluateCalcs(gcs)
	if !ok {
		e.nSkipped++
		e.pr.Tick()
		e.noteProgress(1)
		return
	}
	e.nEvaluated++
	e.pr.Tick()
	e.noteProgress(1)
	if len(e.runT) > 0 && e.covered(float64(fr.Time), float64(fr.Energy)) {
		return
	}
	// Record the selection (stride nTypes, -1 = skip). The buffer keeps
	// blocks of points later folded away — admitted points are a tiny
	// fraction of the space, so the slack stays in the kilobytes.
	off := int32(len(e.sels) / sp.nTypes)
	e.sels = append(e.sels, e.sel...)
	e.batch = append(e.batch, fastPoint{t: fr.Time, e: fr.Energy, sel: off})
	if len(e.batch) >= fastFoldChunk {
		e.fold()
	}
}

// fold merges the pending batch into the survivors and re-compacts
// them with plainFrontier's exact semantics (no noise epsilon, input
// order and duplicates preserved), in place on pooled buffers.
func (e *fastEngine) fold() {
	if len(e.batch) == 0 {
		return
	}
	e.survivors = append(e.survivors, e.batch...)
	e.batch = e.batch[:0]
	pts := e.survivors
	idx := grow(e.foldIdx, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.t != pb.t {
			return pa.t < pb.t
		}
		return pa.e < pb.e
	})
	keep := grow(e.foldKeep, len(pts))
	for i := range keep {
		keep[i] = false
	}
	minPrev := math.Inf(1) // min energy over strictly earlier time classes
	i := 0
	for i < len(idx) {
		j := i
		classMin := math.Inf(1)
		for j < len(idx) && pts[idx[j]].t == pts[idx[i]].t {
			if en := float64(pts[idx[j]].e); en < classMin {
				classMin = en
			}
			j++
		}
		for k := i; k < j; k++ {
			en := float64(pts[idx[k]].e)
			// Dominated by an earlier (strictly faster) class, or by a
			// strictly cheaper same-time point.
			if minPrev <= en || en > classMin {
				continue
			}
			keep[idx[k]] = true
		}
		if classMin < minPrev {
			minPrev = classMin
		}
		i = j
	}
	e.foldIdx = idx
	e.foldKeep = keep
	kept := pts[:0]
	for k := range pts {
		if keep[k] {
			kept = append(kept, pts[k])
		}
	}
	e.survivors = kept

	// Rebuild the compacted domination arrays. Survivors are mutually
	// non-dominated, so same-time survivors have equal energy and any
	// representative works.
	e.runT = e.runT[:0]
	e.runE = e.runE[:0]
	idx = idx[:len(kept)]
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool { return kept[idx[a]].t < kept[idx[b]].t })
	for _, ii := range idx {
		t := float64(kept[ii].t)
		if n := len(e.runT); n > 0 && e.runT[n-1] == t {
			continue // same time class, equal energy by non-domination
		}
		e.runT = append(e.runT, t)
		e.runE = append(e.runE, float64(kept[ii].e))
	}
}

// plainFrontier keeps every point not strictly dominated by another
// (no noise epsilon), preserving input order and exact duplicates. It
// is the compaction step of the fast sweep (fold inlines the same
// scan over fastPoints); the final epsilon-aware Frontier semantics
// run once over its output.
func plainFrontier(pts []Point) []Point {
	if len(pts) == 0 {
		return nil
	}
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		pa, pb := pts[idx[a]], pts[idx[b]]
		if pa.Time != pb.Time {
			return pa.Time < pb.Time
		}
		return pa.Energy < pb.Energy
	})
	keep := make([]bool, len(pts))
	minPrev := math.Inf(1) // min energy over strictly earlier time classes
	i := 0
	for i < len(idx) {
		j := i
		classMin := math.Inf(1)
		for j < len(idx) && pts[idx[j]].Time == pts[idx[i]].Time {
			if en := float64(pts[idx[j]].Energy); en < classMin {
				classMin = en
			}
			j++
		}
		for k := i; k < j; k++ {
			en := float64(pts[idx[k]].Energy)
			// Dominated by an earlier (strictly faster) class, or by a
			// strictly cheaper same-time point.
			if minPrev <= en || en > classMin {
				continue
			}
			keep[idx[k]] = true
		}
		if classMin < minPrev {
			minPrev = classMin
		}
		i = j
	}
	out := make([]Point, 0, len(pts))
	for i, p := range pts {
		if keep[i] {
			out = append(out, p)
		}
	}
	return out
}

// mergeRef addresses one survivor: chunk engine index plus its
// position in that engine's (enumeration-ordered) survivor slice.
type mergeRef struct {
	chunk int32
	idx   int32
}

// sweepScratch is the pooled per-sweep state: the columnar space, the
// per-chunk engines (whose buffers persist across sweeps), the task
// chunk bounds, and the merge reference buffer. Steady-state sweeps
// reuse all of it, keeping allocations near zero.
type sweepScratch struct {
	sp      spaceSoA
	engines []fastEngine
	bounds  []int32
	refs    []mergeRef
}

var sweepScratchPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// apportionTasks splits nTasks into nChunks contiguous ranges by
// largest-remainder rounding of the equal quota nTasks/nChunks (equal
// remainders tie-break by chunk index, so the first nTasks%nChunks
// chunks take the extra task). Every top-level task spans an equal
// slice of the configuration space, so equal task counts are
// weight-balanced. Returns bounds with len nChunks+1.
func apportionTasks(nTasks, nChunks int, bounds []int32) []int32 {
	base, rem := nTasks/nChunks, nTasks%nChunks
	bounds = append(bounds[:0], 0)
	for c := 0; c < nChunks; c++ {
		sz := base
		if c < rem {
			sz++
		}
		bounds = append(bounds, bounds[c]+int32(sz))
	}
	return bounds
}

// mergeFrontier folds the per-chunk partial frontiers into the final
// frontier with Frontier's exact semantics — stable sort by (time,
// energy) over the chunk-order concatenation, lowest-energy (first on
// ties) representative per time class, 1e-9 relative energy-improvement
// admission — materializing Configs and Results only for the points
// that make the cut.
func mergeFrontier(engines []fastEngine, sc *sweepScratch, table *model.Table) []Point {
	total := 0
	for c := range engines {
		total += len(engines[c].survivors)
	}
	if total == 0 {
		return nil
	}
	refs := grow(sc.refs, total)
	k := 0
	for c := range engines {
		for i := range engines[c].survivors {
			refs[k] = mergeRef{chunk: int32(c), idx: int32(i)}
			k++
		}
	}
	at := func(r mergeRef) fastPoint { return engines[r.chunk].survivors[r.idx] }
	sort.SliceStable(refs, func(a, b int) bool {
		pa, pb := at(refs[a]), at(refs[b])
		if pa.t != pb.t {
			return pa.t < pb.t
		}
		return pa.e < pb.e
	})
	sc.refs = refs

	var out []Point
	bestEnergy := units.Joules(0)
	i := 0
	for i < len(refs) {
		j := i
		rep := i
		for j < len(refs) && at(refs[j]).t == at(refs[i]).t {
			if at(refs[j]).e < at(refs[rep]).e {
				rep = j
			}
			j++
		}
		p := at(refs[rep])
		admit := len(out) == 0 ||
			float64(p.e) < float64(bestEnergy)*(1-1e-9)
		if admit {
			r := refs[rep]
			cfg := engines[r.chunk].configAt(r.idx)
			pt := Point{Config: cfg, Time: p.t, Energy: p.e}
			if res, err := table.Materialize(cfg); err == nil {
				pt.Result = res
			}
			out = append(out, pt)
			bestEnergy = p.e
		}
		i = j
	}
	return out
}

// frontierSweepFast is the memoized closed-form sweep behind
// FrontierSweep: identical results to the reference path, orders of
// magnitude faster, and parallel across SweepOptions.Workers — the
// top-level choice loop is partitioned into per-worker chunks whose
// private partial frontiers merge into the exact serial output (see
// the parallel exactness argument at the top of this file).
func frontierSweepFast(limits []cluster.Limit, wl *workload.Profile, opt model.Options, sw SweepOptions) ([]Point, error) {
	span := telemetry.StartSpan("pareto.frontier_sweep").
		Arg("workload", wl.Name).Arg("engine", "fast")
	defer span.End()
	defer sw.Request.Phase("pareto.frontier_sweep")()
	if err := cluster.ValidateLimits(limits); err != nil {
		return nil, err
	}
	reg := telemetry.Global()
	evaluated := reg.Counter("pareto.configs_evaluated")
	skipped := reg.Counter("pareto.configs_skipped")
	filtered := reg.Counter("pareto.configs_filtered")
	pruned := reg.Counter("pareto.configs_pruned")

	if wl.Validate() != nil {
		// The reference path skips every configuration when the profile
		// is invalid (model.Evaluate fails each one); mirror its
		// accounting without walking the space one leaf at a time.
		n := int64(cluster.SpaceSize(limits))
		if n > 0 {
			skipped.Add(uint64(n))
			sw.Progress.Add(n)
		}
		if sw.Stats != nil {
			*sw.Stats = SweepStats{Skipped: n}
		}
		sw.Progress.Done()
		return nil, nil
	}

	table := sw.Table
	if table == nil {
		table = model.NewTable(wl, opt)
	} else if !table.Matches(wl, opt) {
		return nil, fmt.Errorf("pareto: SweepOptions.Table was built for a different workload or options")
	}

	workers := sw.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ctx := sw.Context
	if ctx == nil {
		ctx = context.Background()
	}

	sc := sweepScratchPool.Get().(*sweepScratch)
	defer sweepScratchPool.Put(sc)
	defer func() { sc.sp.snap = nil }()

	sp := &sc.sp
	sp.build(limits, table)
	if sp.nTypes == 0 {
		if sw.Stats != nil {
			*sw.Stats = SweepStats{}
		}
		sw.Progress.Done()
		return nil, nil
	}

	// One task per top-level decision: skip the first type, or fix it
	// to one of its choices. Chunks are contiguous task ranges, one
	// per worker (fewer when tasks run out).
	nTasks := 1 + int(sp.typeOff[1]-sp.typeOff[0])
	nChunks := workers
	if nChunks > nTasks {
		nChunks = nTasks
	}
	sc.bounds = apportionTasks(nTasks, nChunks, sc.bounds)

	if cap(sc.engines) < nChunks {
		engines := make([]fastEngine, nChunks)
		copy(engines, sc.engines) // carry over the old engines' buffers
		sc.engines = engines
	} else {
		sc.engines = sc.engines[:nChunks]
	}
	engines := sc.engines
	cancel := ctx.Done()
	for c := range engines {
		engines[c].reset(sp, &sw, cancel)
	}
	defer func() {
		for c := range engines {
			engines[c].release()
		}
	}()

	span.Arg("workers", workers).Arg("chunks", nChunks)
	derr := sweep.BlocksContext(ctx, nChunks, workers, 1, func(_, lo, hi int) {
		for c := lo; c < hi; c++ {
			engines[c].runTasks(int(sc.bounds[c]), int(sc.bounds[c+1]))
			engines[c].fold()
		}
	})
	if derr == nil {
		// A worker may have latched stop mid-chunk after the last
		// dispatch; the accounting would be incomplete.
		derr = ctx.Err()
	}
	if derr != nil {
		return nil, derr
	}

	var st SweepStats
	for c := range engines {
		st.Evaluated += engines[c].nEvaluated
		st.Skipped += engines[c].nSkipped
		st.Filtered += engines[c].nFiltered
		st.Pruned += engines[c].nPruned
	}
	out := mergeFrontier(engines, sc, table)

	evaluated.Add(uint64(st.Evaluated))
	skipped.Add(uint64(st.Skipped))
	filtered.Add(uint64(st.Filtered))
	pruned.Add(uint64(st.Pruned))
	sw.Request.Add(telemetry.AttrConfigsEvaluated, st.Evaluated)
	sw.Request.Add(telemetry.AttrConfigsFiltered, st.Filtered)
	sw.Request.Add(telemetry.AttrConfigsPruned, st.Pruned)
	if sw.Stats != nil {
		*sw.Stats = st
	}
	span.Arg("evaluated", st.Evaluated).Arg("pruned", st.Pruned)
	sw.Progress.Done()
	return out, nil
}
