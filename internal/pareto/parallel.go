package pareto

import (
	"context"
	"runtime"
	"time"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/sweep"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// SweepStats is one sweep's accounting, filled through
// SweepOptions.Stats by both the fast and the Reference engines. The
// four counts always sum to cluster.SpaceSize(limits), for any worker
// count (the invariant the pareto.configs_* counters obey globally).
type SweepStats struct {
	// Evaluated configurations reached the model and produced a result.
	Evaluated int64
	// Skipped configurations failed evaluation (missing demand vectors),
	// individually or as bulk-accounted subtrees.
	Skipped int64
	// Filtered configurations were rejected by SweepOptions.Filter
	// before evaluation.
	Filtered int64
	// Pruned configurations were eliminated by bound-based subtree
	// pruning without being enumerated (always 0 on the Reference path
	// and with NoPrune set).
	Pruned int64
}

// SweepOptions bundles the knobs of a parallel frontier sweep.
type SweepOptions struct {
	// Workers is the fan-out width; <= 0 uses GOMAXPROCS. Both engines
	// honor it: the fast path partitions the enumeration tree's
	// top-level choices into per-worker chunks (output is bitwise
	// identical for every worker count), the Reference path fans
	// configuration blocks across the pool.
	Workers int
	// Progress, when non-nil, is ticked once per enumerated (evaluated,
	// skipped or filtered) configuration — the count-based reporter
	// behind the CLIs' -progress flag.
	Progress *telemetry.Progress
	// Filter, when non-nil, prunes configurations before evaluation
	// (e.g. a peak-power budget): configurations it rejects are counted
	// and ticked but never reach the model. The fast engine must
	// materialize a Config per candidate to apply it, so filtered
	// sweeps trade some of the allocation-free speedup for the budget
	// check.
	Filter func(cluster.Config) bool
	// NoPrune disables bound-based subtree pruning in the fast engine.
	// The frontier is identical either way (pruned subtrees are provably
	// outside it); the flag exists for A/B measurement and paranoia.
	NoPrune bool
	// Reference forces the preserved chunked-parallel reference sweep
	// (one full model.Evaluate per configuration) instead of the
	// memoized fast engine — the differential-testing baseline.
	Reference bool
	// Request, when non-nil, receives request-scoped attribution
	// (configurations evaluated/pruned/filtered and the sweep phase on
	// the request timeline) beside the process-global pareto.* counters.
	// Request-serving callers set it from telemetry.RequestFrom(ctx);
	// batch CLIs leave it nil.
	Request *telemetry.RequestContext
	// Context, when non-nil, cancels the sweep: workers poll it every
	// few thousand configurations and between chunks. A cancelled sweep
	// returns the context's error with no partial frontier and flushes
	// nothing into the global counters or Stats.
	Context context.Context
	// Table, when non-nil, is a pre-built unit-calc table the sweep
	// uses instead of building its own. It must have been built by
	// model.NewTable for exactly this sweep's workload pointer and
	// options (checked; mismatch is an error). Serving callers use it
	// to amortize table construction and memo warm-up across repeated
	// sweeps of the same workload. Fast path only; Reference sweeps
	// evaluate through model.Evaluate and take no table.
	Table *model.Table
	// Stats, when non-nil, receives this sweep's own accounting —
	// per-call counts beside the process-global pareto.* counters.
	Stats *SweepStats
}

// sweepInstruments caches the registry lookups a sweep needs, so the
// hot per-configuration loop touches only (possibly nil) instrument
// pointers.
type sweepInstruments struct {
	evaluated *telemetry.Counter
	skipped   *telemetry.Counter
	filtered  *telemetry.Counter
	busyNanos *telemetry.Counter
	latency   *telemetry.Histogram
	tracer    *telemetry.Tracer
	enabled   bool // whether wall-clock timing should be collected
}

func newSweepInstruments() sweepInstruments {
	reg := telemetry.Global()
	return sweepInstruments{
		evaluated: reg.Counter("pareto.configs_evaluated"),
		skipped:   reg.Counter("pareto.configs_skipped"),
		filtered:  reg.Counter("pareto.configs_filtered"),
		busyNanos: reg.Counter("pareto.worker_busy_nanos"),
		latency: reg.Histogram("pareto.eval_seconds",
			telemetry.ExponentialBuckets(1e-7, 10, 9)),
		tracer:  reg.Tracer(),
		enabled: reg != nil,
	}
}

// evalOne runs the model for one configuration, recording latency and
// outcome. It returns ok=false for unsupported configurations.
func (ins *sweepInstruments) evalOne(cfg cluster.Config, wl *workload.Profile, opt model.Options) (Point, bool) {
	var began time.Time
	if ins.enabled {
		began = time.Now()
	}
	res, err := model.Evaluate(cfg, wl, opt)
	if ins.enabled {
		ins.latency.Observe(time.Since(began).Seconds())
	}
	if err != nil {
		ins.skipped.Inc()
		return Point{}, false
	}
	ins.evaluated.Inc()
	return Point{Config: cfg, Time: res.Time, Energy: res.Energy, Result: res}, true
}

// EvaluateParallel evaluates the model over the configurations with a
// worker pool. The model itself is pure, so fan-out is embarrassingly
// parallel; results are returned in the input order (deterministic,
// unlike channel-collection order), with unsupported configurations
// skipped exactly as in Evaluate. workers <= 0 uses GOMAXPROCS.
func EvaluateParallel(configs []cluster.Config, wl *workload.Profile, opt model.Options, workers int) []Point {
	return evaluateParallel(configs, wl, opt, workers, nil)
}

func evaluateParallel(configs []cluster.Config, wl *workload.Profile, opt model.Options, workers int, pr *telemetry.Progress) []Point {
	if len(configs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	ins := newSweepInstruments()
	if workers == 1 {
		out := make([]Point, 0, len(configs))
		for _, cfg := range configs {
			if p, ok := ins.evalOne(cfg, wl, opt); ok {
				out = append(out, p)
			}
			pr.Tick()
		}
		return out
	}

	span := ins.tracer.Start("pareto.evaluate_parallel").
		Arg("configs", len(configs)).Arg("workers", workers)
	defer span.End()

	// Fixed-slot value results preserve input order and need no locking
	// (each index is written by exactly one sweep.Blocks worker) and no
	// per-configuration Point heap allocation — the ok bit marks the
	// skipped slots.
	type slot struct {
		p  Point
		ok bool
	}
	results := make([]slot, len(configs))
	sweep.Blocks(len(configs), workers, sweep.DefaultBlock, func(w, lo, hi int) {
		var wspan *telemetry.Span
		var began time.Time
		if ins.enabled {
			began = time.Now()
			wspan = ins.tracer.StartOn(w+1, "pareto.block").
				Arg("lo", lo).Arg("hi", hi)
		}
		for i := lo; i < hi; i++ {
			results[i].p, results[i].ok = ins.evalOne(configs[i], wl, opt)
			pr.Tick()
		}
		if ins.enabled {
			ins.busyNanos.Add(uint64(time.Since(began).Nanoseconds()))
			wspan.End()
		}
	})

	out := make([]Point, 0, len(configs))
	for i := range results {
		if results[i].ok {
			out = append(out, results[i].p)
		}
	}
	return out
}

// FrontierForParallel is FrontierFor through the sweep engine.
//
// Deprecated: call FrontierSweep with SweepOptions{Workers: workers}
// directly — both the memoized fast engine and the Reference sweep
// honor Workers now, and FrontierSweep exposes the rest of the knobs
// (Filter, Context, Stats, shared Table).
func FrontierForParallel(limits []cluster.Limit, wl *workload.Profile, opt model.Options, workers int) ([]Point, error) {
	return FrontierSweep(limits, wl, opt, SweepOptions{Workers: workers})
}

// FrontierSweep is the instrumented frontier pipeline. By default it
// runs the memoized closed-form engine (see fastsweep.go): columnar
// choice space over a snapshotted unit-calc table, allocation-free
// evaluation, bound-based subtree pruning, and a per-worker partition
// of the enumeration tree — with results identical, point for point
// and for every worker count, to evaluating the full space through
// model.Evaluate. SweepOptions.Reference selects the preserved
// chunked-parallel reference sweep instead.
func FrontierSweep(limits []cluster.Limit, wl *workload.Profile, opt model.Options, sw SweepOptions) ([]Point, error) {
	if !sw.Reference {
		return frontierSweepFast(limits, wl, opt, sw)
	}
	return frontierSweepReference(limits, wl, opt, sw)
}

// frontierSweepReference is the pre-memoization pipeline: chunked
// parallel evaluation with optional pre-evaluation filtering and
// progress reporting, plus a span per sweep. Kept as the differential
// baseline the fast engine is tested and benchmarked against.
func frontierSweepReference(limits []cluster.Limit, wl *workload.Profile, opt model.Options, sw SweepOptions) ([]Point, error) {
	span := telemetry.StartSpan("pareto.frontier_sweep").
		Arg("workload", wl.Name).Arg("engine", "reference")
	defer span.End()
	defer sw.Request.Phase("pareto.frontier_sweep")()
	filtered := telemetry.Global().Counter("pareto.configs_filtered")
	ctx := sw.Context
	if ctx == nil {
		ctx = context.Background()
	}
	const chunk = 8192
	var st SweepStats
	var frontier []Point
	batch := make([]cluster.Config, 0, chunk)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		pts := evaluateParallel(batch, wl, opt, sw.Workers, sw.Progress)
		sw.Request.Add(telemetry.AttrConfigsEvaluated, int64(len(pts)))
		st.Evaluated += int64(len(pts))
		st.Skipped += int64(len(batch) - len(pts))
		frontier = Frontier(append(frontier, pts...))
		batch = batch[:0]
	}
	err := cluster.Enumerate(limits, func(cfg cluster.Config) bool {
		if sw.Filter != nil && !sw.Filter(cfg) {
			filtered.Inc()
			sw.Request.Add(telemetry.AttrConfigsFiltered, 1)
			st.Filtered++
			sw.Progress.Tick()
			return true
		}
		batch = append(batch, cfg)
		if len(batch) >= chunk {
			flush()
			if ctx.Err() != nil {
				return false // stop enumerating; the error surfaces below
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	flush()
	if sw.Stats != nil {
		*sw.Stats = st
	}
	sw.Progress.Done()
	return Frontier(frontier), nil
}
