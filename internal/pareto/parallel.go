package pareto

import (
	"runtime"
	"sync"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/workload"
)

// EvaluateParallel evaluates the model over the configurations with a
// worker pool. The model itself is pure, so fan-out is embarrassingly
// parallel; results are returned in the input order (deterministic,
// unlike channel-collection order), with unsupported configurations
// skipped exactly as in Evaluate. workers <= 0 uses GOMAXPROCS.
func EvaluateParallel(configs []cluster.Config, wl *workload.Profile, opt model.Options, workers int) []Point {
	if len(configs) == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(configs) {
		workers = len(configs)
	}
	if workers == 1 {
		return Evaluate(configs, wl, opt)
	}

	// Fixed-slot results preserve input order and need no locking:
	// each index is written by exactly one worker. Work is handed out
	// in blocks — a single model evaluation takes only microseconds, so
	// per-item channel traffic would dominate the fan-out.
	const block = 256
	results := make([]*Point, len(configs))
	var wg sync.WaitGroup
	next := make(chan [2]int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range next {
				for i := r[0]; i < r[1]; i++ {
					res, err := model.Evaluate(configs[i], wl, opt)
					if err != nil {
						continue
					}
					results[i] = &Point{Config: configs[i], Time: res.Time, Energy: res.Energy, Result: res}
				}
			}
		}()
	}
	for lo := 0; lo < len(configs); lo += block {
		hi := lo + block
		if hi > len(configs) {
			hi = len(configs)
		}
		next <- [2]int{lo, hi}
	}
	close(next)
	wg.Wait()

	out := make([]Point, 0, len(configs))
	for _, p := range results {
		if p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// FrontierForParallel is FrontierFor with parallel evaluation: it
// enumerates the space, fans the model evaluations across workers in
// chunks (bounding memory to the chunk size plus the running frontier),
// and folds each chunk into the frontier.
func FrontierForParallel(limits []cluster.Limit, wl *workload.Profile, opt model.Options, workers int) ([]Point, error) {
	const chunk = 8192
	var frontier []Point
	batch := make([]cluster.Config, 0, chunk)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		pts := EvaluateParallel(batch, wl, opt, workers)
		frontier = Frontier(append(frontier, pts...))
		batch = batch[:0]
	}
	err := cluster.Enumerate(limits, func(cfg cluster.Config) bool {
		batch = append(batch, cfg)
		if len(batch) >= chunk {
			flush()
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	flush()
	return Frontier(frontier), nil
}
