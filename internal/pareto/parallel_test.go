package pareto

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/workload"
)

func benchSpace(t testing.TB) ([]cluster.Config, *workload.Profile) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	configs, err := cluster.EnumerateAll([]cluster.Limit{
		{Type: a9, MaxNodes: 8},
		{Type: k10, MaxNodes: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return configs, wl
}

// TestEvaluateParallelMatchesSequential: same points, same order, for
// any worker count.
func TestEvaluateParallelMatchesSequential(t *testing.T) {
	configs, wl := benchSpace(t)
	seq := Evaluate(configs, wl, model.Options{})
	for _, workers := range []int{0, 1, 2, 4, 16} {
		par := EvaluateParallel(configs, wl, model.Options{}, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d points vs sequential %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Config.Key() != seq[i].Config.Key() ||
				par[i].Time != seq[i].Time || par[i].Energy != seq[i].Energy {
				t.Fatalf("workers=%d: point %d differs", workers, i)
			}
		}
	}
}

// TestFrontierSweepMatchesSequential: the sweep-engine frontier equals
// the sequential FrontierFor one (also covering the deprecated
// FrontierForParallel shim's behavior).
func TestFrontierSweepMatchesSequential(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	limits := []cluster.Limit{
		{Type: a9, MaxNodes: 6},
		{Type: k10, MaxNodes: 3},
	}
	seq, err := FrontierFor(limits, wl, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("frontier sizes differ: %d vs %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i].Config.Key() != par[i].Config.Key() {
			t.Errorf("frontier point %d differs: %s vs %s", i, seq[i].Config, par[i].Config)
		}
	}
}

func TestEvaluateParallelEmpty(t *testing.T) {
	_, wl := benchSpace(t)
	if out := EvaluateParallel(nil, wl, model.Options{}, 4); out != nil {
		t.Error("empty input should give nil")
	}
}

// BenchmarkEvaluateSequential/Parallel quantify the worker-pool speedup
// on the model fan-out.
func BenchmarkEvaluateSequential(b *testing.B) {
	configs, wl := benchSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Evaluate(configs, wl, model.Options{})
	}
}

func BenchmarkEvaluateParallel(b *testing.B) {
	configs, wl := benchSpace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvaluateParallel(configs, wl, model.Options{}, 0)
	}
}
