package pareto

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/units"
)

// markedPoint builds a point carrying a distinguishable configuration
// (n A9 nodes) so tests can assert config identity, not just scalars.
func markedPoint(t *testing.T, nodes int, tm, en float64) Point {
	t.Helper()
	a9, err := hardware.DefaultCatalog().Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	return Point{
		Config: cluster.MustConfig(cluster.FullNodes(a9, nodes)),
		Time:   units.Seconds(tm),
		Energy: units.Joules(en),
	}
}

// TestFrontierTimeTieAtHead: when the earliest time class holds several
// points, the class's lowest-energy representative must win regardless
// of input order — the old scan accepted whatever the sort left at
// index 0 and the same-Time branch then locked every rival out of the
// bestEnergy path.
func TestFrontierTimeTieAtHead(t *testing.T) {
	points := []Point{
		markedPoint(t, 1, 1.0, 9.0), // head time class, worse energy
		markedPoint(t, 2, 1.0, 5.0), // head time class, the real optimum
		markedPoint(t, 3, 3.0, 4.0),
	}
	f := Frontier(points)
	if len(f) != 2 {
		t.Fatalf("frontier size %d, want 2: %+v", len(f), f)
	}
	if f[0].Energy != 5.0 || f[0].Config.Nodes() != 2 {
		t.Errorf("head = %v (E=%v), want the 2-node (1.0, 5.0) point", f[0].Config, f[0].Energy)
	}
	if f[1].Config.Nodes() != 3 {
		t.Errorf("second point = %v, want the 3-node one", f[1].Config)
	}

	// Exact duplicates at the head keep their first representative.
	dup := []Point{
		markedPoint(t, 4, 2.0, 6.0),
		markedPoint(t, 5, 2.0, 6.0),
	}
	f = Frontier(dup)
	if len(f) != 1 || f[0].Config.Nodes() != 4 {
		t.Fatalf("duplicate head: got %+v, want the first (4-node) representative", f)
	}
}

// TestFrontierEnergyNoise1Ulp covers the code-comment case: points that
// improve energy only by floating-point noise (about 1 ulp, e.g. 27 vs
// 32 identical nodes whose per-unit energies are mathematically equal)
// must not ride onto the frontier, while a real improvement must.
func TestFrontierEnergyNoise1Ulp(t *testing.T) {
	const e0 = 100.0
	noise := math.Nextafter(e0, 0) // one ulp below e0
	points := []Point{
		markedPoint(t, 1, 1.0, e0),
		markedPoint(t, 2, 2.0, noise),    // noise-level "improvement": rejected
		markedPoint(t, 3, 3.0, e0*0.999), // real improvement: accepted
	}
	f := Frontier(points)
	if len(f) != 2 {
		t.Fatalf("frontier size %d, want 2: %+v", len(f), f)
	}
	if f[0].Config.Nodes() != 1 || f[1].Config.Nodes() != 3 {
		t.Errorf("frontier = [%v, %v], want the 1-node and 3-node points", f[0].Config, f[1].Config)
	}

	// The same noise at the head's own time class: the tie goes to the
	// strictly (if marginally) lower energy, since within a class there
	// is no noise threshold to defend — only ordering.
	tie := []Point{
		markedPoint(t, 6, 1.0, e0),
		markedPoint(t, 7, 1.0, noise),
	}
	f = Frontier(tie)
	if len(f) != 1 || f[0].Config.Nodes() != 7 {
		t.Fatalf("head tie: got %+v, want the lower-energy 7-node point", f)
	}
}

// TestPlainFrontierKeepsNonDominated pins the fast engine's compaction
// step: strict dominance only, input order preserved, duplicates kept.
func TestPlainFrontierKeepsNonDominated(t *testing.T) {
	points := []Point{
		mkPoint(2, 5),
		mkPoint(1, 10),
		mkPoint(2, 5), // duplicate: kept (never accepted later, but harmless)
		mkPoint(3, 6), // dominated by (2,5)
		mkPoint(2, 7), // dominated by (2,5)
		mkPoint(4, 4),
	}
	got := plainFrontier(points)
	want := []Point{mkPoint(2, 5), mkPoint(1, 10), mkPoint(2, 5), mkPoint(4, 4)}
	if len(got) != len(want) {
		t.Fatalf("plainFrontier kept %d points, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i].Time != want[i].Time || got[i].Energy != want[i].Energy {
			t.Errorf("plainFrontier[%d] = (%v,%v), want (%v,%v)",
				i, got[i].Time, got[i].Energy, want[i].Time, want[i].Energy)
		}
	}
}
