package pareto

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// randomSpace builds a randomized small limit set over the default
// catalog (1-3 types, small node counts, random core/frequency
// restrictions) and a synthetic workload whose demand vectors cover a
// random subset of those types — sometimes leaving a type without a
// demand so the skip path is exercised.
func randomSpace(t testing.TB, rng *stats.RNG) ([]cluster.Limit, *workload.Profile) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	names := cat.Names()
	// Shuffle and take a random prefix of 1-3 types.
	for i := len(names) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		names[i], names[j] = names[j], names[i]
	}
	k := 1 + rng.Intn(3)
	if k > len(names) {
		k = len(names)
	}
	names = names[:k]

	limits := make([]cluster.Limit, 0, k)
	wl := workload.NewProfile(fmt.Sprintf("prop-%d", rng.Intn(1<<30)),
		workload.DomainSynthetic, "units", 1e5+rng.Float64()*1e7)
	for _, name := range names {
		nt, err := cat.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		l := cluster.Limit{Type: nt, MaxNodes: 1 + rng.Intn(4)}
		switch rng.Intn(3) {
		case 0:
			l.FixCoresAndFreq = true
		case 1:
			l.MaxCores = 1 + rng.Intn(nt.Cores)
			if n := len(nt.Freq.Steps); n > 1 && rng.Intn(2) == 0 {
				l.Freqs = nt.Freq.Steps[:1+rng.Intn(n)]
			}
		}
		limits = append(limits, l)
		// ~1 in 6 types stays without a demand vector: those
		// configurations must be skipped identically on both paths.
		if rng.Intn(6) == 0 {
			continue
		}
		d := workload.Demand{
			CoreCycles: units.Cycles(1e8 * (0.1 + rng.Float64())),
			MemCycles:  units.Cycles(1e8 * rng.Float64()),
			IOBytes:    units.Bytes(1e4 * rng.Float64()),
			Intensity:  0.5 + rng.Float64(),
		}
		if rng.Intn(3) == 0 {
			d.IOReqs = rng.Float64() * 10
		}
		if err := wl.SetDemand(name, d); err != nil {
			t.Fatal(err)
		}
	}
	if rng.Intn(4) == 0 {
		wl.IORate = units.PerSecond(1 + rng.Float64()*1e4)
	}
	return limits, wl
}

// frontiersEqual asserts point-for-point equality: config identity and
// exact scalars, not approximate agreement.
func frontiersEqual(t *testing.T, label string, got, want []Point) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: frontier size %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Config.Key() != want[i].Config.Key() {
			t.Fatalf("%s: point %d is %s, want %s", label, i, got[i].Config, want[i].Config)
		}
		if got[i].Time != want[i].Time || got[i].Energy != want[i].Energy {
			t.Fatalf("%s: point %d scalars (%v,%v), want (%v,%v)",
				label, i, got[i].Time, got[i].Energy, want[i].Time, want[i].Energy)
		}
	}
}

// TestFastSweepPropertyRandomSpaces: on randomized small spaces, the
// fast engine (with and without pruning, with and without a Filter)
// returns exactly the frontier of evaluating the enumerated space
// through the reference model — config identity included.
func TestFastSweepPropertyRandomSpaces(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 15
	}
	for iter := 0; iter < iterations; iter++ {
		rng := stats.NewRNG(0x9E3779B97F4A7C15 + uint64(iter))
		limits, wl := randomSpace(t, rng)
		label := fmt.Sprintf("iter %d (%s, %d types, space %d)",
			iter, wl.Name, len(limits), cluster.SpaceSize(limits))

		configs, err := cluster.EnumerateAll(limits)
		if err != nil {
			t.Fatal(err)
		}
		want := Frontier(Evaluate(configs, wl, model.Options{}))

		fast, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{})
		if err != nil {
			t.Fatal(err)
		}
		frontiersEqual(t, label+" pruned", fast, want)

		noPrune, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{NoPrune: true})
		if err != nil {
			t.Fatal(err)
		}
		frontiersEqual(t, label+" noprune", noPrune, want)

		// With a power-budget filter: the reference is the frontier of
		// the filtered evaluation.
		budget := units.Watts(50 + rng.Float64()*400)
		filter := func(cfg cluster.Config) bool { return cfg.NominalPeak() <= budget }
		kept := configs[:0:0]
		for _, cfg := range configs {
			if filter(cfg) {
				kept = append(kept, cfg)
			}
		}
		wantFiltered := Frontier(Evaluate(kept, wl, model.Options{}))
		fastFiltered, err := FrontierSweep(limits, wl, model.Options{}, SweepOptions{Filter: filter})
		if err != nil {
			t.Fatal(err)
		}
		frontiersEqual(t, label+" filtered", fastFiltered, wantFiltered)

		// Frontier survivors carry a materialized Result consistent
		// with their scalars.
		for _, p := range fast {
			if p.Result.Time != p.Time || p.Result.Energy != p.Energy {
				t.Fatalf("%s: materialized Result (%v,%v) != point (%v,%v) for %s",
					label, p.Result.Time, p.Result.Energy, p.Time, p.Energy, p.Config)
			}
			if len(p.Result.Groups) == 0 {
				t.Fatalf("%s: frontier point %s has no per-group breakdown", label, p.Config)
			}
		}
	}
}
