// Package pareto computes the energy-deadline Pareto frontier over a set
// of cluster configurations (the authors' prior ICPP'14 result that
// Section III-D builds on): among all configurations that can run a
// workload, the frontier holds those for which no other configuration is
// both faster and more energy efficient.
package pareto

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// Point is one evaluated configuration.
type Point struct {
	Config cluster.Config
	Time   units.Seconds
	Energy units.Joules
	// Result retains the full model output for downstream analysis.
	Result model.Result
}

// dominates reports whether a is at least as good as b on both axes and
// strictly better on one.
func dominates(a, b Point) bool {
	if a.Time > b.Time || a.Energy > b.Energy {
		return false
	}
	return a.Time < b.Time || a.Energy < b.Energy
}

// Frontier extracts the Pareto-optimal subset of points, sorted by
// ascending time (and therefore descending energy along the frontier).
// Duplicate (time, energy) pairs keep their first representative.
func Frontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := make([]Point, len(points))
	copy(sorted, points)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time < sorted[j].Time
		}
		return sorted[i].Energy < sorted[j].Energy
	})
	// Walk time classes explicitly and pick each class's lowest-energy
	// representative (first on ties) rather than trusting the slice
	// position after the sort: the head of the sorted slice used to be
	// accepted unconditionally, so a leading point whose Time ties a
	// strictly cheaper later point could never be displaced through the
	// bestEnergy epsilon path (the same-Time branch skipped it). With
	// NaN energies the comparator is not even a strict weak order, so
	// position is no guarantee of minimality at the head.
	var out []Point
	bestEnergy := units.Joules(0)
	i := 0
	for i < len(sorted) {
		j := i
		rep := i
		for j < len(sorted) && sorted[j].Time == sorted[i].Time {
			if sorted[j].Energy < sorted[rep].Energy {
				rep = j
			}
			j++
		}
		p := sorted[rep]
		if len(out) == 0 {
			out = append(out, p)
			bestEnergy = p.Energy
		} else if float64(p.Energy) < float64(bestEnergy)*(1-1e-9) {
			// Require a real energy improvement: configurations that
			// differ only by floating-point noise (e.g. 27 vs 32
			// identical nodes, whose per-unit energies are
			// mathematically equal) must not ride onto the frontier
			// through 1-ulp differences.
			out = append(out, p)
			bestEnergy = p.Energy
		}
		i = j
	}
	return out
}

// Evaluate runs the model over every configuration and returns the
// evaluated points, skipping configurations the workload cannot run on
// (missing demand vectors).
func Evaluate(configs []cluster.Config, wl *workload.Profile, opt model.Options) []Point {
	out := make([]Point, 0, len(configs))
	for _, cfg := range configs {
		res, err := model.Evaluate(cfg, wl, opt)
		if err != nil {
			continue
		}
		out = append(out, Point{Config: cfg, Time: res.Time, Energy: res.Energy, Result: res})
	}
	return out
}

// FrontierFor is the common pipeline: enumerate limits, evaluate the
// workload, return the frontier.
func FrontierFor(limits []cluster.Limit, wl *workload.Profile, opt model.Options) ([]Point, error) {
	configs, err := cluster.EnumerateAll(limits)
	if err != nil {
		return nil, err
	}
	return Frontier(Evaluate(configs, wl, opt)), nil
}

// SweetRegion returns the frontier points meeting a deadline within an
// energy budget — the paper's "sweet region" of configurations that
// "meet a given execution time deadline with minimum energy". A zero
// deadline or budget disables that constraint.
func SweetRegion(frontier []Point, deadline units.Seconds, budget units.Joules) []Point {
	var out []Point
	for _, p := range frontier {
		if deadline > 0 && p.Time > deadline {
			continue
		}
		if budget > 0 && p.Energy > budget {
			continue
		}
		out = append(out, p)
	}
	return out
}

// MinEDP returns the point minimizing the energy-delay product — the
// scalar pick on the frontier when no explicit deadline is given. Every
// EDP-optimal configuration lies on the Pareto frontier, so calling this
// on the frontier loses nothing.
func MinEDP(points []Point) (Point, bool) {
	best := Point{}
	found := false
	for _, p := range points {
		if !found || p.Result.EDP() < best.Result.EDP() {
			best = p
			found = true
		}
	}
	return best, found
}

// MinEnergyUnderDeadline returns the frontier point with the lowest
// energy among those meeting the deadline, and ok=false if none does.
func MinEnergyUnderDeadline(frontier []Point, deadline units.Seconds) (Point, bool) {
	best := Point{}
	found := false
	for _, p := range frontier {
		if p.Time > deadline {
			continue
		}
		if !found || p.Energy < best.Energy {
			best = p
			found = true
		}
	}
	return best, found
}
