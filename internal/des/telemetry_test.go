package des

import (
	"testing"

	"repro/internal/telemetry"
)

// TestEngineTelemetry: the engine reports scheduled/fired/cancelled
// event counts and queue-depth watermarks into an installed registry.
func TestEngineTelemetry(t *testing.T) {
	reg := telemetry.New()
	telemetry.SetGlobal(reg)
	defer telemetry.SetGlobal(nil)

	e := New()
	var fired int
	for i := 0; i < 5; i++ {
		if _, err := e.Schedule(float64(i), func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	ev, err := e.Schedule(10, func() { fired++ })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel(ev)
	e.Cancel(ev) // double cancel must count once
	e.Run(100)

	if got := reg.Counter("des.events_scheduled").Value(); got != 6 {
		t.Errorf("events_scheduled = %d, want 6", got)
	}
	if got := reg.Counter("des.events_fired").Value(); got != 5 {
		t.Errorf("events_fired = %d, want 5", got)
	}
	if got := reg.Counter("des.events_cancelled").Value(); got != 1 {
		t.Errorf("events_cancelled = %d, want 1", got)
	}
	if got := reg.Gauge("des.queue_depth_max").Value(); got != 6 {
		t.Errorf("queue_depth_max = %g, want 6", got)
	}
	if got := reg.Gauge("des.queue_depth").Value(); got != 0 {
		t.Errorf("queue_depth after drain = %g, want 0", got)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

// TestEngineUninstrumented: with no registry installed the engine works
// exactly as before (nil instruments no-op).
func TestEngineUninstrumented(t *testing.T) {
	e := New()
	ran := false
	if _, err := e.Schedule(1, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	if n := e.Run(2); n != 1 || !ran {
		t.Fatalf("run executed %d events (ran=%v), want 1", n, ran)
	}
}
