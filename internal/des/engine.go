// Package des is a minimal discrete-event simulation engine: a virtual
// clock and a time-ordered event queue. The cluster simulator
// (internal/simulator) runs on it, as can any other process-oriented
// model in the repository.
package des

import (
	"container/heap"
	"errors"
	"math"

	"repro/internal/telemetry"
)

// Event is a scheduled callback.
type Event struct {
	// Time is the virtual time the event fires.
	Time float64
	// Action runs when the event fires. It may schedule further events.
	Action func()

	seq   uint64 // tie-break so equal-time events fire in schedule order
	index int    // heap bookkeeping
	dead  bool   // cancelled
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].Time != q[j].Time {
		return q[i].Time < q[j].Time
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is the simulation kernel. It is not safe for concurrent use:
// discrete-event simulation is inherently sequential in virtual time,
// and the repository parallelizes at the granularity of whole
// simulations instead.
type Engine struct {
	now    float64
	queue  eventQueue
	seq    uint64
	nsteps uint64

	// Instruments; nil (a no-op costing ~1ns per touch) unless a
	// telemetry registry is installed. Counters are shared across all
	// engines reporting to the same registry, aggregating fleet-wide.
	evScheduled *telemetry.Counter
	evFired     *telemetry.Counter
	evCancelled *telemetry.Counter
	queueDepth  *telemetry.Gauge
	maxQueueLen *telemetry.Gauge
}

// New returns an engine with the clock at zero, instrumented against
// the global telemetry registry if one is installed.
func New() *Engine {
	e := &Engine{}
	e.Instrument(telemetry.Global())
	return e
}

// Instrument points the engine's counters at reg. A nil reg disables
// instrumentation (the default when no global registry is installed).
func (e *Engine) Instrument(reg *telemetry.Registry) {
	e.evScheduled = reg.Counter("des.events_scheduled")
	e.evFired = reg.Counter("des.events_fired")
	e.evCancelled = reg.Counter("des.events_cancelled")
	e.queueDepth = reg.Gauge("des.queue_depth")
	e.maxQueueLen = reg.Gauge("des.queue_depth_max")
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns how many events have been executed.
func (e *Engine) Steps() uint64 { return e.nsteps }

// Schedule enqueues action to run after delay. A negative delay is an
// error; a zero delay runs after the current event completes. It returns
// the event, which can be cancelled.
func (e *Engine) Schedule(delay float64, action func()) (*Event, error) {
	if delay < 0 || math.IsNaN(delay) {
		return nil, errors.New("des: negative or NaN delay")
	}
	if action == nil {
		return nil, errors.New("des: nil action")
	}
	ev := &Event{Time: e.now + delay, Action: action, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	e.evScheduled.Inc()
	e.queueDepth.Set(float64(len(e.queue)))
	e.maxQueueLen.Max(float64(len(e.queue)))
	return ev, nil
}

// ScheduleAt enqueues action at an absolute virtual time, which must not
// be in the past.
func (e *Engine) ScheduleAt(t float64, action func()) (*Event, error) {
	if t < e.now {
		return nil, errors.New("des: cannot schedule in the past")
	}
	return e.Schedule(t-e.now, action)
}

// Cancel marks a pending event dead; it will be skipped when popped.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil {
		return
	}
	if !ev.dead && ev.index >= 0 { // still pending: count the first cancel
		e.evCancelled.Inc()
	}
	ev.dead = true
}

// purgeDead pops cancelled events off the head of the queue so the
// queue head, when present, is the next live event. Cancelled events
// were already counted by Cancel; dropping them here is bookkeeping
// only.
func (e *Engine) purgeDead() {
	for len(e.queue) > 0 && e.queue[0].dead {
		heap.Pop(&e.queue)
	}
}

// HasPendingEvents reports whether any live (non-cancelled) event is
// still queued. Together with PeekNextEventTime and ProcessNextEvent it
// forms the step interface a multi-engine coordinator (internal/fleet)
// uses to interleave several engines in global timestamp order.
func (e *Engine) HasPendingEvents() bool {
	e.purgeDead()
	return len(e.queue) > 0
}

// PeekNextEventTime returns the virtual time of the earliest live event
// without executing it. The second return is false when no live event
// is pending.
func (e *Engine) PeekNextEventTime() (float64, bool) {
	e.purgeDead()
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].Time, true
}

// ProcessNextEvent advances the clock to the earliest live event and
// executes it. It returns false (executing nothing) when the queue holds
// no live event. Unlike Run it ignores any horizon: the caller decides
// when to stop by inspecting PeekNextEventTime first.
func (e *Engine) ProcessNextEvent() bool {
	e.purgeDead()
	if len(e.queue) == 0 {
		return false
	}
	next := heap.Pop(&e.queue).(*Event)
	e.now = next.Time
	next.Action()
	e.nsteps++
	e.evFired.Inc()
	e.queueDepth.Set(float64(len(e.queue)))
	return true
}

// Run executes events until the queue empties or the clock would pass
// until (exclusive); events at exactly until still run. Pass +Inf to
// drain the queue. It returns the number of events executed.
func (e *Engine) Run(until float64) uint64 {
	executed := uint64(0)
	for {
		t, ok := e.PeekNextEventTime()
		if !ok || t > until {
			break
		}
		e.ProcessNextEvent()
		executed++
	}
	if until > e.now && !math.IsInf(until, 1) && !e.HasPendingEvents() {
		// Advance the clock to the horizon once idle, so observation
		// windows longer than the workload read the correct duration.
		e.now = until
	}
	e.queueDepth.Set(float64(len(e.queue)))
	return executed
}

// Pending returns the number of queued (possibly cancelled) events.
func (e *Engine) Pending() int { return len(e.queue) }
