package des

import (
	"math"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	for i, d := range []float64{3, 1, 2} {
		i, d := i, d
		if _, err := e.Schedule(d, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(math.Inf(1))
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
}

func TestEqualTimesFIFOByScheduleOrder(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		if _, err := e.Schedule(1, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(math.Inf(1))
	for i := range order {
		if order[i] != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestScheduleFromWithinEvent(t *testing.T) {
	e := New()
	var times []float64
	var chain func()
	n := 0
	chain = func() {
		times = append(times, e.Now())
		n++
		if n < 4 {
			if _, err := e.Schedule(0.5, chain); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := e.Schedule(1, chain); err != nil {
		t.Fatal(err)
	}
	e.Run(math.Inf(1))
	want := []float64{1, 1.5, 2, 2.5}
	for i := range want {
		if math.Abs(times[i]-want[i]) > 1e-12 {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestRunHorizonStopsEarly(t *testing.T) {
	e := New()
	fired := 0
	for _, d := range []float64{1, 2, 3, 4} {
		if _, err := e.Schedule(d, func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.Run(2.5); n != 2 {
		t.Errorf("executed %d events before horizon, want 2", n)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	// Events at exactly the horizon run.
	e2 := New()
	ran := false
	if _, err := e2.Schedule(2, func() { ran = true }); err != nil {
		t.Fatal(err)
	}
	e2.Run(2)
	if !ran {
		t.Error("event at exactly the horizon did not run")
	}
}

func TestRunAdvancesClockToHorizonWhenIdle(t *testing.T) {
	e := New()
	if _, err := e.Schedule(1, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run(10)
	if e.Now() != 10 {
		t.Errorf("idle clock = %g, want horizon 10", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev, err := e.Schedule(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel(ev)
	e.Cancel(nil) // must not panic
	e.Run(math.Inf(1))
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestScheduleErrors(t *testing.T) {
	e := New()
	if _, err := e.Schedule(-1, func() {}); err == nil {
		t.Error("negative delay accepted")
	}
	if _, err := e.Schedule(math.NaN(), func() {}); err == nil {
		t.Error("NaN delay accepted")
	}
	if _, err := e.Schedule(1, nil); err == nil {
		t.Error("nil action accepted")
	}
	if _, err := e.ScheduleAt(5, func() {}); err != nil {
		t.Errorf("ScheduleAt(5) on fresh engine: %v", err)
	}
	e.Run(math.Inf(1))
	if _, err := e.ScheduleAt(1, func() {}); err == nil {
		t.Error("scheduling in the past accepted")
	}
}

func TestStepsCount(t *testing.T) {
	e := New()
	for i := 0; i < 10; i++ {
		if _, err := e.Schedule(float64(i), func() {}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(math.Inf(1))
	if e.Steps() != 10 {
		t.Errorf("steps = %d, want 10", e.Steps())
	}
}

// TestManyEventsHeapStress pushes enough events to exercise heap
// reordering paths.
func TestManyEventsHeapStress(t *testing.T) {
	e := New()
	const n = 50000
	// Deterministic pseudo-random delays via a simple LCG.
	x := uint64(12345)
	last := -1.0
	count := 0
	for i := 0; i < n; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		d := float64(x%1000000) / 1000
		if _, err := e.Schedule(d, func() {
			if e.Now() < last {
				t.Error("time went backwards")
			}
			last = e.Now()
			count++
		}); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(math.Inf(1))
	if count != n {
		t.Errorf("executed %d, want %d", count, n)
	}
}

func TestStepPrimitives(t *testing.T) {
	e := New()
	var order []int
	for i, d := range []float64{3, 1, 2} {
		i, d := i, d
		if _, err := e.Schedule(d, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	if !e.HasPendingEvents() {
		t.Fatal("HasPendingEvents = false with 3 queued events")
	}
	tm, ok := e.PeekNextEventTime()
	if !ok || tm != 1 {
		t.Fatalf("PeekNextEventTime = %g, %v; want 1, true", tm, ok)
	}
	if e.Now() != 0 {
		t.Errorf("peek advanced the clock to %g", e.Now())
	}
	steps := 0
	for e.HasPendingEvents() {
		if !e.ProcessNextEvent() {
			t.Fatal("ProcessNextEvent = false with pending events")
		}
		steps++
	}
	if steps != 3 {
		t.Errorf("stepped %d events, want 3", steps)
	}
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
	if e.ProcessNextEvent() {
		t.Error("ProcessNextEvent = true on an empty queue")
	}
	if _, ok := e.PeekNextEventTime(); ok {
		t.Error("PeekNextEventTime ok on an empty queue")
	}
}

func TestPeekSkipsCancelledEvents(t *testing.T) {
	e := New()
	ev, err := e.Schedule(1, func() { t.Error("cancelled event fired") })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(2, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Cancel(ev)
	tm, ok := e.PeekNextEventTime()
	if !ok || tm != 2 {
		t.Fatalf("PeekNextEventTime = %g, %v; want 2, true (cancelled head skipped)", tm, ok)
	}
	if !e.ProcessNextEvent() {
		t.Fatal("ProcessNextEvent = false with a live event queued")
	}
	if e.HasPendingEvents() {
		t.Error("HasPendingEvents = true after draining")
	}
	// An all-cancelled queue reads as empty.
	e2 := New()
	ev2, _ := e2.Schedule(1, func() {})
	e2.Cancel(ev2)
	if e2.HasPendingEvents() {
		t.Error("HasPendingEvents = true with only cancelled events")
	}
	if e2.ProcessNextEvent() {
		t.Error("ProcessNextEvent executed a cancelled event")
	}
}

// TestStepLoopMatchesRun drives two identical schedules, one via Run and
// one via the step primitives, and requires identical traces — the
// contract internal/fleet depends on when interleaving engines.
func TestStepLoopMatchesRun(t *testing.T) {
	build := func() (*Engine, *[]float64) {
		e := New()
		var times []float64
		var chain func()
		n := 0
		chain = func() {
			times = append(times, e.Now())
			n++
			if n < 50 {
				if _, err := e.Schedule(0.25+float64(n%3)*0.5, chain); err != nil {
					t.Error(err)
				}
			}
		}
		if _, err := e.Schedule(1, chain); err != nil {
			t.Fatal(err)
		}
		return e, &times
	}
	e1, t1 := build()
	e1.Run(math.Inf(1))
	e2, t2 := build()
	for e2.HasPendingEvents() {
		e2.ProcessNextEvent()
	}
	if len(*t1) != len(*t2) {
		t.Fatalf("Run fired %d events, step loop %d", len(*t1), len(*t2))
	}
	for i := range *t1 {
		if (*t1)[i] != (*t2)[i] {
			t.Fatalf("event %d: Run at %g, step loop at %g", i, (*t1)[i], (*t2)[i])
		}
	}
	if e1.Now() != e2.Now() || e1.Steps() != e2.Steps() {
		t.Errorf("final state differs: Run (now %g, steps %d) vs step loop (now %g, steps %d)",
			e1.Now(), e1.Steps(), e2.Now(), e2.Steps())
	}
}
