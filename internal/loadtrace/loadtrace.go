// Package loadtrace models how datacenter load varies over time — the
// context behind the paper's motivation that "most servers operate at
// 30% utilization on an average" (Section II-B, citing Barroso et al.).
// It provides synthetic load-shape generators (diurnal sine, flash
// crowd, plateau steps) and evaluates what a static configuration and a
// dynamically adapted one (internal/adaptive) spend over a trace:
// energy, mean utilization, and SLO compliance.
package loadtrace

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/adaptive"
	"repro/internal/energyprop"
	"repro/internal/stats"
)

// Shape generates a load fraction (of the reference capacity) for each
// time step. Implementations must return values in [0, 1].
type Shape interface {
	// At returns the load fraction at time t (seconds into the trace).
	At(t float64) float64
	// Name labels the shape in reports.
	Name() string
}

// Diurnal is the classic day/night sine: load oscillates around Mean
// with amplitude Amplitude over a 24-hour period (or any period).
type Diurnal struct {
	// Mean is the average load fraction (the paper's ~0.3).
	Mean float64
	// Amplitude is the half swing; Mean±Amplitude must stay in [0,1].
	Amplitude float64
	// Period is the cycle length in seconds (86400 for a day).
	Period float64
	// PeakAt is the time of day (seconds) of maximum load.
	PeakAt float64
}

// At implements Shape.
func (d Diurnal) At(t float64) float64 {
	if d.Period <= 0 {
		return stats.Clamp(d.Mean, 0, 1)
	}
	phase := 2 * math.Pi * (t - d.PeakAt) / d.Period
	return stats.Clamp(d.Mean+d.Amplitude*math.Cos(phase), 0, 1)
}

// Name implements Shape.
func (d Diurnal) Name() string {
	return fmt.Sprintf("diurnal(mean=%.2f,amp=%.2f)", d.Mean, d.Amplitude)
}

// FlashCrowd is a baseline load with a sudden surge: load jumps to Peak
// at Start and decays exponentially with the given half-life.
type FlashCrowd struct {
	Base     float64
	Peak     float64
	Start    float64
	HalfLife float64
}

// At implements Shape.
func (f FlashCrowd) At(t float64) float64 {
	if t < f.Start || f.HalfLife <= 0 {
		return stats.Clamp(f.Base, 0, 1)
	}
	decay := math.Exp2(-(t - f.Start) / f.HalfLife)
	return stats.Clamp(f.Base+(f.Peak-f.Base)*decay, 0, 1)
}

// Name implements Shape.
func (f FlashCrowd) Name() string { return fmt.Sprintf("flashcrowd(%.2f->%.2f)", f.Base, f.Peak) }

// Ramp rises linearly from From to To over the given duration and holds
// To afterwards — a launch ramp-up or a controlled drain-down (From > To
// works symmetrically).
type Ramp struct {
	From, To float64
	// Duration is the ramp length in seconds; t past it holds To.
	Duration float64
}

// At implements Shape.
func (r Ramp) At(t float64) float64 {
	if r.Duration <= 0 || t >= r.Duration {
		return stats.Clamp(r.To, 0, 1)
	}
	if t <= 0 {
		return stats.Clamp(r.From, 0, 1)
	}
	return stats.Clamp(r.From+(r.To-r.From)*t/r.Duration, 0, 1)
}

// Name implements Shape.
func (r Ramp) Name() string { return fmt.Sprintf("ramp(%.2f->%.2f)", r.From, r.To) }

// Steps is a piecewise-constant load plan (levels repeat cyclically,
// each held for Dwell seconds) — batch windows, shift changes.
type Steps struct {
	Levels []float64
	Dwell  float64
}

// At implements Shape.
func (s Steps) At(t float64) float64 {
	if len(s.Levels) == 0 || s.Dwell <= 0 {
		return 0
	}
	i := int(t/s.Dwell) % len(s.Levels)
	return stats.Clamp(s.Levels[i], 0, 1)
}

// Name implements Shape.
func (s Steps) Name() string { return fmt.Sprintf("steps(%d levels)", len(s.Levels)) }

// TraceOptions configures a trace evaluation.
type TraceOptions struct {
	// Duration is the trace length in seconds.
	Duration float64
	// Step is the evaluation interval; the load is held constant within
	// a step (a reconfiguration epoch for the adaptive plan).
	Step float64
	// Policy constrains the adaptive plan (SLO, hysteresis).
	Policy adaptive.Policy
}

// Result summarizes one strategy's cost over a trace.
type Result struct {
	Strategy string
	// Energy is the total energy over the trace in joules.
	Energy float64
	// MeanPower is Energy / Duration.
	MeanPower float64
	// MeanLoad is the average offered load fraction.
	MeanLoad float64
	// SLOViolations counts steps whose load had no feasible
	// configuration under the policy (the strategy runs its largest
	// configuration and eats the latency).
	SLOViolations int
	// Switches counts configuration changes (0 for static).
	Switches int
}

// Evaluate plays the shape against a static reference configuration and
// the adaptive ensemble over the same candidates, returning both costs.
// candidates[0..n) are the available configurations; the reference for
// load normalization is the fastest one, as in adaptive.Plan.
func Evaluate(candidates []*energyprop.Analysis, shape Shape, opt TraceOptions) (static, adapted Result, err error) {
	if len(candidates) == 0 {
		return Result{}, Result{}, errors.New("loadtrace: no candidates")
	}
	if opt.Duration <= 0 || opt.Step <= 0 || opt.Step > opt.Duration {
		return Result{}, Result{}, errors.New("loadtrace: invalid duration/step")
	}
	// Reference = fastest candidate.
	ref := 0
	for i, c := range candidates {
		if c.Result.Time <= 0 {
			return Result{}, Result{}, fmt.Errorf("loadtrace: candidate %d has no service time", i)
		}
		if c.Result.Time < candidates[ref].Result.Time {
			ref = i
		}
	}

	steps := int(opt.Duration / opt.Step)
	if steps < 1 {
		steps = 1
	}
	static = Result{Strategy: "static " + candidates[ref].Result.Config.String()}
	adapted = Result{Strategy: "adaptive over " + fmt.Sprint(len(candidates)) + " configs"}

	var loadSum, staticE, adaptE stats.KahanSum
	prevChoice := -2
	refRate := 1 / float64(candidates[ref].Result.Time)
	for i := 0; i < steps; i++ {
		t := (float64(i) + 0.5) * opt.Step
		load := shape.At(t)
		loadSum.Add(load)

		// Static: the reference serves the load at its own utilization.
		staticE.Add(candidates[ref].PowerAt(load) * opt.Step)

		// Adaptive: plan a single-point grid at this load.
		if load <= 0 {
			// Idle step: park on the cheapest idle configuration.
			minIdle := math.Inf(1)
			for _, c := range candidates {
				if v := float64(c.Result.IdlePower); v < minIdle {
					minIdle = v
				}
			}
			adaptE.Add(minIdle * opt.Step)
			continue
		}
		plan, err := adaptive.Plan(candidates, opt.Policy, []float64{load})
		if err != nil {
			return Result{}, Result{}, err
		}
		d := plan.Decisions[0]
		if d.Chosen < 0 {
			// No feasible configuration under the policy: fall back to
			// the reference and count the violation.
			rho := load * refRate * float64(candidates[ref].Result.Time)
			adaptE.Add(candidates[ref].PowerAt(rho) * opt.Step)
			adapted.SLOViolations++
			prevChoice = ref
			continue
		}
		adaptE.Add(d.Power * opt.Step)
		if prevChoice >= 0 && prevChoice != d.Chosen {
			adapted.Switches++
		}
		prevChoice = d.Chosen
	}

	static.Energy = staticE.Sum()
	static.MeanPower = static.Energy / opt.Duration
	static.MeanLoad = loadSum.Sum() / float64(steps)
	adapted.Energy = adaptE.Sum()
	adapted.MeanPower = adapted.Energy / opt.Duration
	adapted.MeanLoad = static.MeanLoad
	return static, adapted, nil
}

// Saving returns the adaptive strategy's fractional energy saving over
// the static one.
func Saving(static, adapted Result) float64 {
	if static.Energy <= 0 {
		return 0
	}
	return 1 - adapted.Energy/static.Energy
}
