package loadtrace

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/adaptive"
	"repro/internal/cluster"
	"repro/internal/energyprop"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/workload"
)

func candidates(t *testing.T) []*energyprop.Analysis {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	p, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	var out []*energyprop.Analysis
	for _, m := range [][2]int{{32, 12}, {25, 8}, {25, 5}, {25, 2}} {
		var groups []cluster.Group
		if m[0] > 0 {
			groups = append(groups, cluster.FullNodes(a9, m[0]))
		}
		if m[1] > 0 {
			groups = append(groups, cluster.FullNodes(k10, m[1]))
		}
		a, err := energyprop.Analyze(cluster.MustConfig(groups...), p, model.Options{}, 100)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, a)
	}
	return out
}

// TestShapesWithinBounds: every shape stays in [0,1] across time.
func TestShapesWithinBounds(t *testing.T) {
	shapes := []Shape{
		Diurnal{Mean: 0.3, Amplitude: 0.25, Period: 86400, PeakAt: 14 * 3600},
		FlashCrowd{Base: 0.2, Peak: 0.95, Start: 3600, HalfLife: 1800},
		Steps{Levels: []float64{0.1, 0.5, 0.9, 0.3}, Dwell: 600},
	}
	f := func(tRaw uint32) bool {
		tm := float64(tRaw % 172800)
		for _, s := range shapes {
			v := s.At(tm)
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDiurnalPeakPhase(t *testing.T) {
	d := Diurnal{Mean: 0.4, Amplitude: 0.3, Period: 86400, PeakAt: 14 * 3600}
	if got := d.At(14 * 3600); math.Abs(got-0.7) > 1e-9 {
		t.Errorf("peak load %g, want 0.7", got)
	}
	trough := d.At(2 * 3600)
	if math.Abs(trough-0.1) > 1e-9 {
		t.Errorf("trough load %g, want 0.1", trough)
	}
}

func TestFlashCrowdDecay(t *testing.T) {
	f := FlashCrowd{Base: 0.2, Peak: 1.0, Start: 100, HalfLife: 50}
	if got := f.At(50); got != 0.2 {
		t.Errorf("pre-surge load %g", got)
	}
	if got := f.At(100); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("surge onset %g, want 1.0", got)
	}
	if got := f.At(150); math.Abs(got-0.6) > 1e-9 { // one half-life: base + 0.8/2
		t.Errorf("after one half-life %g, want 0.6", got)
	}
}

func TestStepsCycle(t *testing.T) {
	s := Steps{Levels: []float64{0.1, 0.9}, Dwell: 10}
	if s.At(5) != 0.1 || s.At(15) != 0.9 || s.At(25) != 0.1 {
		t.Error("step cycle wrong")
	}
}

// TestDiurnalAdaptationSaves: over a day at ~30% mean load, adaptation
// saves a large fraction of the static reference's energy — the
// quantified version of the paper's over-provisioning motivation.
func TestDiurnalAdaptationSaves(t *testing.T) {
	cands := candidates(t)
	shape := Diurnal{Mean: 0.3, Amplitude: 0.25, Period: 86400, PeakAt: 14 * 3600}
	static, adapted, err := Evaluate(cands, shape, TraceOptions{
		Duration: 86400,
		Step:     900, // 15-minute reconfiguration epochs
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Saving(static, adapted)
	if s < 0.10 || s > 0.70 {
		t.Errorf("diurnal saving %.3f outside plausible band", s)
	}
	if adapted.Switches == 0 {
		t.Error("no configuration switches over a full diurnal cycle")
	}
	if adapted.SLOViolations != 0 {
		t.Errorf("%d violations without an SLO policy", adapted.SLOViolations)
	}
	if math.Abs(static.MeanLoad-0.3) > 0.02 {
		t.Errorf("mean load %.3f, want ~0.3", static.MeanLoad)
	}
}

// TestFlashCrowdFeasibility: the adaptive plan must ride the surge on
// the big configuration and come back down afterwards.
func TestFlashCrowdAdaptation(t *testing.T) {
	cands := candidates(t)
	shape := FlashCrowd{Base: 0.15, Peak: 0.85, Start: 6 * 3600, HalfLife: 3600}
	static, adapted, err := Evaluate(cands, shape, TraceOptions{
		Duration: 86400,
		Step:     600,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adapted.Energy >= static.Energy {
		t.Errorf("adaptation did not save energy: %.0f vs %.0f J", adapted.Energy, static.Energy)
	}
	if adapted.Switches < 2 {
		t.Errorf("expected up- and down-switches around the surge, got %d", adapted.Switches)
	}
}

// TestTightSLOForcesViolationsAtPeak: with an SLO no configuration can
// hold at peak load, violations are counted and energy falls back to
// the reference.
func TestTightSLOForcesViolations(t *testing.T) {
	cands := candidates(t)
	shape := Diurnal{Mean: 0.5, Amplitude: 0.45, Period: 86400, PeakAt: 12 * 3600}
	_, adapted, err := Evaluate(cands, shape, TraceOptions{
		Duration: 86400,
		Step:     900,
		Policy:   adaptive.Policy{SLO: 0.05, MaxUtilization: 0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if adapted.SLOViolations == 0 {
		t.Error("expected SLO violations near the 95% peak")
	}
}

func TestEvaluateValidation(t *testing.T) {
	cands := candidates(t)
	shape := Steps{Levels: []float64{0.5}, Dwell: 10}
	if _, _, err := Evaluate(nil, shape, TraceOptions{Duration: 100, Step: 10}); err == nil {
		t.Error("no candidates accepted")
	}
	if _, _, err := Evaluate(cands, shape, TraceOptions{Duration: 0, Step: 10}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, _, err := Evaluate(cands, shape, TraceOptions{Duration: 10, Step: 100}); err == nil {
		t.Error("step > duration accepted")
	}
}
