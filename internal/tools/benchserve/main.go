// Command benchserve measures epserve's serving capacity: it boots the
// service in-process on an ephemeral port, then binary-searches the
// maximum open-loop arrival rate each scenario sustains while holding
// its p99 latency inside the SLO with zero sheds, drops or errors. Two
// scenarios bracket the batch plane's amortization claim: "scalar"
// drives one evaluation per HTTP request, "batchN" drives the same warm
// percentile evaluations N at a time through POST /v1/percentiles. The
// open-loop generator measures latency from each request's scheduled
// arrival (coordinated-omission-safe), so a saturated probe fails on
// queueing delay instead of silently slowing down.
//
// Invoked by `make bench-serve`, which commits the JSON summary as
// BENCH_serve.json; `-probe 300ms -smoke` is the quick CI variant that
// checks the harness end to end without chasing stable numbers.
//
// Usage:
//
//	benchserve [-slo 50ms] [-probe 2s] [-batch 64] [-out BENCH_serve.json] [-smoke]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/serve"
	"repro/internal/serve/loadgen"
	"repro/internal/telemetry"
)

// scenario is one capacity search target.
type scenario struct {
	Name string
	// Items is how many evaluations one request carries.
	Items   int
	Targets []loadgen.Target
	// StartRate seeds the doubling search (requests/s).
	StartRate float64
}

// probeResult is one scenario's entry in the JSON summary.
type probeResult struct {
	// MaxRPS is the highest sustained request rate meeting the SLO.
	MaxRPS float64 `json:"max_rps"`
	// ItemsPerSec is MaxRPS times the evaluations per request — the
	// apples-to-apples throughput across scenarios.
	ItemsPerSec float64 `json:"items_per_sec"`
	// P50/P99 are the client-side latencies at MaxRPS, in milliseconds,
	// measured from scheduled arrival.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// Requests is how many requests the accepted probe completed.
	Requests int `json:"requests"`
}

type summary struct {
	SLOP99Ms     float64                `json:"slo_p99_ms"`
	ProbeSeconds float64                `json:"probe_seconds"`
	BatchSize    int                    `json:"batch_size"`
	GOMAXPROCS   int                    `json:"gomaxprocs"`
	Scenarios    map[string]probeResult `json:"scenarios"`
	// BatchPerItemSpeedup is batch items/s over scalar items/s — the
	// headline amortization factor of the batch plane.
	BatchPerItemSpeedup float64 `json:"batch_per_item_speedup"`
}

func main() {
	slo := flag.Duration("slo", 50*time.Millisecond, "p99 latency objective a sustained rate must hold")
	probe := flag.Duration("probe", 2*time.Second, "duration of each rate probe")
	batch := flag.Int("batch", 64, "evaluations per request in the batch scenario")
	out := flag.String("out", "", "write the JSON summary to this file (default stdout)")
	smoke := flag.Bool("smoke", false, "harness check: cap the search early, skip the speedup assertion")
	flag.Parse()
	if err := run(*slo, *probe, *batch, *out, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "benchserve:", err)
		os.Exit(1)
	}
}

func run(slo, probe time.Duration, batch int, out string, smoke bool) error {
	srv, err := serve.New(serve.Config{Telemetry: telemetry.New()})
	if err != nil {
		return err
	}
	addrCh := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe("127.0.0.1:0", addrCh) }()
	var baseURL string
	select {
	case addr := <-addrCh:
		baseURL = "http://" + addr.String()
	case err := <-serveErr:
		return fmt.Errorf("starting epserve: %w", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // drain best-effort
	}()

	// The same warm utilization grid backs both scenarios, so a batch
	// item and a scalar request do identical work (a cached percentile
	// evaluation) and the ratio isolates the per-request overhead.
	us := utilGrid(batch)
	scalar := scenario{Name: "scalar", Items: 1, StartRate: 50}
	for _, u := range us {
		scalar.Targets = append(scalar.Targets,
			loadgen.Target{Path: fmt.Sprintf("/v1/percentiles?d=1&u=%.4f&p=50,95,99", u)})
	}
	body, err := batchBody(us)
	if err != nil {
		return err
	}
	batched := scenario{
		Name: fmt.Sprintf("batch%d", batch), Items: batch, StartRate: 2,
		Targets: []loadgen.Target{{Path: "/v1/percentiles", Body: body}},
	}

	// Client tuned for sustained rates: idle connections sized to the
	// worker pool so probes measure the server, not connection churn.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	client := &http.Client{Transport: tr, Timeout: 30 * time.Second}

	maxDoubles := 20
	if smoke {
		maxDoubles = 2
	}
	res := summary{
		SLOP99Ms:     float64(slo) / float64(time.Millisecond),
		ProbeSeconds: probe.Seconds(),
		BatchSize:    batch,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Scenarios:    map[string]probeResult{},
	}
	for _, sc := range []scenario{scalar, batched} {
		warmup(client, baseURL, sc.Targets)
		pr, err := search(client, baseURL, sc, slo, probe, maxDoubles)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
		fmt.Fprintf(os.Stderr, "%-8s max %8.0f req/s  %10.0f items/s  p99 %6.2f ms\n",
			sc.Name, pr.MaxRPS, pr.ItemsPerSec, pr.P99Ms)
		res.Scenarios[sc.Name] = pr
	}
	if s, b := res.Scenarios["scalar"], res.Scenarios[batched.Name]; s.ItemsPerSec > 0 {
		res.BatchPerItemSpeedup = round2(b.ItemsPerSec / s.ItemsPerSec)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		return err
	}
	if out != "" {
		fmt.Fprintln(os.Stderr, "wrote", out)
	}
	return nil
}

// utilGrid spreads n utilization points across the stable region; the
// grid is fixed per n, so warmup populates every cache cell the probes
// will touch.
func utilGrid(n int) []float64 {
	us := make([]float64, n)
	for i := range us {
		us[i] = 0.30 + 0.60*float64(i)/float64(n)
	}
	return us
}

func batchBody(us []float64) ([]byte, error) {
	return json.Marshal(map[string]any{
		"u":     us,
		"p":     []float64{50, 95, 99},
		"items": []map[string]any{{"d": 1.0}},
	})
}

// warmup issues every target once so the percentile cache and analysis
// memo are hot before the first probe.
func warmup(client *http.Client, baseURL string, targets []loadgen.Target) {
	for _, tgt := range targets {
		var resp *http.Response
		var err error
		if tgt.Body != nil {
			resp, err = client.Post(baseURL+tgt.Path, "application/json", strings.NewReader(string(tgt.Body)))
		} else {
			resp, err = client.Get(baseURL + tgt.Path)
		}
		if err == nil {
			resp.Body.Close()
		}
	}
}

// search doubles the offered rate until a probe fails the SLO, then
// bisects the bracket; it returns the stats of the highest passing
// probe.
func search(client *http.Client, baseURL string, sc scenario, slo, probe time.Duration, maxDoubles int) (probeResult, error) {
	probeOnce := func(rate float64) (*loadgen.Result, bool, error) {
		r, err := loadgen.Run(context.Background(), loadgen.Config{
			BaseURL:     baseURL,
			Targets:     sc.Targets,
			Concurrency: 64,
			Duration:    probe,
			Rate:        rate,
			DrainGrace:  2 * slo,
			Client:      client,
		})
		if err != nil {
			return nil, false, err
		}
		ok := r.Dropped == 0 && r.TransportErrors == 0 && r.Non2xx == 0 &&
			r.Count5xx() == 0 && r.Latency(99) <= slo && r.Requests > 0
		fmt.Fprintf(os.Stderr, "  probe %-8s %8.0f req/s  ok=%-5v p99 %8.2f ms  n=%d non2xx=%d drop=%d\n",
			sc.Name, rate, ok, float64(r.Latency(99))/float64(time.Millisecond), r.Requests, r.Non2xx, r.Dropped)
		return r, ok, nil
	}
	// A low-rate probe sees few requests, so its p99 is effectively its
	// max and one scheduler or GC hiccup fails it; retry once so a single
	// outlier does not masquerade as the capacity limit.
	attempt := func(rate float64) (*loadgen.Result, bool, error) {
		r, ok, err := probeOnce(rate)
		if err != nil || ok {
			return r, ok, err
		}
		return probeOnce(rate)
	}

	rate := sc.StartRate
	var best *loadgen.Result
	bestRate := 0.0
	for i := 0; i < maxDoubles; i++ {
		r, ok, err := attempt(rate)
		if err != nil {
			return probeResult{}, err
		}
		if !ok {
			break
		}
		best, bestRate = r, rate
		rate *= 2
	}
	if best == nil {
		return probeResult{}, fmt.Errorf("no sustained rate at or above %.0f req/s (p99 SLO %v)", sc.StartRate, slo)
	}
	// Bisect between the last pass and the first failure.
	lo, hi := bestRate, rate
	for i := 0; i < 5 && hi-lo > lo*0.05; i++ {
		mid := (lo + hi) / 2
		r, ok, err := attempt(mid)
		if err != nil {
			return probeResult{}, err
		}
		if ok {
			best, bestRate, lo = r, mid, mid
		} else {
			hi = mid
		}
	}
	return probeResult{
		MaxRPS:      round2(bestRate),
		ItemsPerSec: round2(bestRate * float64(sc.Items)),
		P50Ms:       round2(float64(best.Latency(50)) / float64(time.Millisecond)),
		P99Ms:       round2(float64(best.Latency(99)) / float64(time.Millisecond)),
		Requests:    best.Requests,
	}, nil
}

func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }
