// Command benchfrontier turns `go test -bench` output for the frontier
// sweep engine into the JSON summary committed as BENCH_frontier.json:
// per-benchmark ns/op, B/op, allocs/op and the configs/s throughput
// metric the sweep benchmarks report, plus the derived headline
// speedups of the memoized engine over the preserved per-config
// reference sweep and the parallel worker-ladder scaling of
// BenchmarkFrontierSweepParallel. The GOMAXPROCS the benchmarks ran
// under (go test's -N name suffix; absent means 1) is recorded so the
// ladder can be judged against the core count that produced it.
// Invoked by `make bench-frontier`; reads the benchmark output on
// stdin (or a file argument) and writes JSON to stdout.
//
// Unlike benchjson's, the line regex here must accept a custom metric
// between ns/op and B/op — the testing package prints ReportMetric
// values there, so `... 5107762 ns/op 7122493 configs/s 2384 B/op ...`
// is the expected shape.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result row, with the optional configs/s custom
// metric the sweep benchmarks emit via b.ReportMetric. The first -\d+
// group is go test's GOMAXPROCS suffix (omitted when it is 1).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op` +
		`(?:\s+([\d.eE+-]+) configs/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// ladderName extracts the worker count from the parallel ladder's
// sub-benchmark names.
var ladderName = regexp.MustCompile(`^BenchmarkFrontierSweepParallel/workers=(\d+)$`)

type result struct {
	Name          string  `json:"name"`
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	ConfigsPerSec float64 `json:"configs_per_sec,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

type ladderRung struct {
	Workers         int     `json:"workers"`
	NsPerOp         float64 `json:"ns_per_op"`
	ConfigsPerSec   float64 `json:"configs_per_sec,omitempty"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

type summary struct {
	// GoMaxProcs is the scheduler width the benchmarks ran under; the
	// parallel ladder cannot scale past it, so rungs above it measure
	// oversubscription overhead, not speedup.
	GoMaxProcs int `json:"gomaxprocs"`
	// Speedups pit the preserved per-configuration reference sweep
	// (one model.Evaluate per point) against the memoized engine.
	Speedups map[string]float64 `json:"speedups"`
	// WorkerLadder is BenchmarkFrontierSweepParallel normalized to its
	// own workers=1 rung.
	WorkerLadder []ladderRung `json:"worker_ladder,omitempty"`
	Results      []result     `json:"results"`
}

func parse(r io.Reader) ([]result, int, error) {
	var out []result
	gomaxprocs := 1
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		if m[2] != "" {
			if n, err := strconv.Atoi(m[2]); err == nil && n > gomaxprocs {
				gomaxprocs = n
			}
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, 0, fmt.Errorf("benchfrontier: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			res.ConfigsPerSec, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		if m[7] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[7], 10, 64)
		}
		out = append(out, res)
	}
	return out, gomaxprocs, sc.Err()
}

// round2 keeps headline ratios at two significant decimals.
func round2(v float64) float64 { return float64(int64(v*100+0.5)) / 100 }

func ladder(results []result) []ladderRung {
	var rungs []ladderRung
	for _, r := range results {
		m := ladderName.FindStringSubmatch(r.Name)
		if m == nil {
			continue
		}
		w, _ := strconv.Atoi(m[1])
		rungs = append(rungs, ladderRung{
			Workers:       w,
			NsPerOp:       r.NsPerOp,
			ConfigsPerSec: r.ConfigsPerSec,
		})
	}
	sort.Slice(rungs, func(i, j int) bool { return rungs[i].Workers < rungs[j].Workers })
	var serial float64
	for _, r := range rungs {
		if r.Workers == 1 {
			serial = r.NsPerOp
		}
	}
	for i := range rungs {
		if serial > 0 && rungs[i].NsPerOp > 0 {
			rungs[i].SpeedupVsSerial = round2(serial / rungs[i].NsPerOp)
		}
	}
	return rungs
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfrontier:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, gomaxprocs, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfrontier:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchfrontier: no benchmark lines on input")
		os.Exit(1)
	}

	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	ratio := func(num, den string) (float64, bool) {
		n, okN := byName[num]
		d, okD := byName[den]
		if !okN || !okD || d == 0 {
			return 0, false
		}
		return n / d, true
	}
	speedups := map[string]float64{}
	for out, pair := range map[string][2]string{
		"frontier_sweep":         {"BenchmarkFrontierSweepReference", "BenchmarkFrontierSweepFast"},
		"frontier_sweep_warm":    {"BenchmarkFrontierSweepReference", "BenchmarkFrontierSweepFastWarm"},
		"frontier_sweep_noprune": {"BenchmarkFrontierSweepReference", "BenchmarkFrontierSweepFastNoPrune"},
		"evaluate":               {"BenchmarkEvaluateReference", "BenchmarkEvaluateFast"},
	} {
		if v, ok := ratio(pair[0], pair[1]); ok {
			speedups[out] = round2(v)
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	out := summary{
		GoMaxProcs:   gomaxprocs,
		Speedups:     speedups,
		WorkerLadder: ladder(results),
		Results:      results,
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchfrontier:", err)
		os.Exit(1)
	}
}
