// Command benchfrontier turns `go test -bench` output for the frontier
// sweep engine into the JSON summary committed as BENCH_frontier.json:
// per-benchmark ns/op, B/op, allocs/op and the configs/s throughput
// metric the sweep benchmarks report, plus the derived headline
// speedups of the memoized engine over the preserved per-config
// reference sweep. Invoked by `make bench-frontier`; reads the
// benchmark output on stdin (or a file argument) and writes JSON to
// stdout.
//
// Unlike benchjson's, the line regex here must accept a custom metric
// between ns/op and B/op — the testing package prints ReportMetric
// values there, so `... 5107762 ns/op 7122493 configs/s 2384 B/op ...`
// is the expected shape.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one result row, with the optional configs/s custom
// metric the sweep benchmarks emit via b.ReportMetric.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op` +
		`(?:\s+([\d.eE+-]+) configs/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

type result struct {
	Name          string  `json:"name"`
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	ConfigsPerSec float64 `json:"configs_per_sec,omitempty"`
	BytesPerOp    int64   `json:"bytes_per_op"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
}

type summary struct {
	// Speedups pit the preserved per-configuration reference sweep
	// (one model.Evaluate per point) against the memoized engine.
	Speedups map[string]float64 `json:"speedups"`
	Results  []result           `json:"results"`
}

func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchfrontier: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.ConfigsPerSec, _ = strconv.ParseFloat(m[4], 64)
		}
		if m[5] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchfrontier:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfrontier:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchfrontier: no benchmark lines on input")
		os.Exit(1)
	}

	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	ratio := func(num, den string) (float64, bool) {
		n, okN := byName[num]
		d, okD := byName[den]
		if !okN || !okD || d == 0 {
			return 0, false
		}
		return n / d, true
	}
	speedups := map[string]float64{}
	for out, pair := range map[string][2]string{
		"frontier_sweep":         {"BenchmarkFrontierSweepReference", "BenchmarkFrontierSweepFast"},
		"frontier_sweep_noprune": {"BenchmarkFrontierSweepReference", "BenchmarkFrontierSweepFastNoPrune"},
		"evaluate":               {"BenchmarkEvaluateReference", "BenchmarkEvaluateFast"},
	} {
		if v, ok := ratio(pair[0], pair[1]); ok {
			// Two significant digits: headline ratios, not benchstat.
			speedups[out] = float64(int64(v*100+0.5)) / 100
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary{Speedups: speedups, Results: results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchfrontier:", err)
		os.Exit(1)
	}
}
