// Command benchjson turns `go test -bench` output for the queueing
// kernel into the small JSON summary committed as BENCH_queueing.json:
// per-benchmark ns/op, B/op and allocs/op, plus the derived headline
// speedups of the fast paths over the preserved reference
// implementation. Invoked by `make bench-queueing`; reads the benchmark
// output on stdin (or a file argument) and writes JSON to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one `go test -bench` result row, e.g.
//
//	BenchmarkWaitCDF-8   	   18276	     65792 ns/op	   41234 B/op	     469 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

type summary struct {
	// Speedups pit the preserved pre-PR reference implementation
	// against the rewritten kernel on the same inputs.
	Speedups map[string]float64 `json:"speedups"`
	Results  []result           `json:"results"`
}

func parse(r io.Reader) ([]result, error) {
	var out []result
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := result{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			res.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			res.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	in := io.Reader(os.Stdin)
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	results, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on input")
		os.Exit(1)
	}

	byName := map[string]float64{}
	for _, r := range results {
		byName[r.Name] = r.NsPerOp
	}
	ratio := func(num, den string) (float64, bool) {
		n, okN := byName[num]
		d, okD := byName[den]
		if !okN || !okD || d == 0 {
			return 0, false
		}
		return n / d, true
	}
	speedups := map[string]float64{}
	for out, pair := range map[string][2]string{
		"wait_cdf":                  {"BenchmarkWaitCDFReference", "BenchmarkWaitCDF"},
		"response_percentile_cold":  {"BenchmarkResponsePercentileReference", "BenchmarkResponsePercentileCold"},
		"response_percentile_warm":  {"BenchmarkResponsePercentileReference", "BenchmarkResponsePercentileWarm"},
		"response_percentile_batch": {"BenchmarkResponsePercentileReference", "BenchmarkResponsePercentilesBatch"},
	} {
		if v, ok := ratio(pair[0], pair[1]); ok {
			// Two significant digits: these are headline ratios, not
			// benchstat-grade measurements.
			speedups[out] = float64(int64(v*100+0.5)) / 100
		}
	}

	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary{Speedups: speedups, Results: results}); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
