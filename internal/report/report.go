// Package report renders experiment outputs: fixed-width ASCII tables
// for the paper's tables, and gnuplot-style .dat / CSV series for its
// figures. All emitters write through io.Writer so tests can capture
// them and cmd/reproduce can tee them to the results directory.
package report

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; it must match the header count.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) != len(t.Headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.Headers))
	}
	t.rows = append(t.rows, cells)
	return nil
}

// MustAddRow is AddRow that panics, for rows with statically correct arity.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as GitHub-flavored Markdown, for
// README snippets and generated reports.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("**")
		b.WriteString(t.Title)
		b.WriteString("**\n\n")
	}
	row := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	b.WriteString("|")
	for range t.Headers {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		row(r)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// Series is one labelled data series of a figure.
type Series struct {
	Label string
	X, Y  []float64
}

// Validate checks the series lengths.
func (s Series) Validate() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("report: series %q has %d x but %d y values", s.Label, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("report: series %q is empty", s.Label)
	}
	return nil
}

// WriteDAT emits the series in gnuplot's "index" format: one block per
// series, separated by two blank lines, each block headed by a comment
// with the label.
func WriteDAT(w io.Writer, series []Series) error {
	if len(series) == 0 {
		return errors.New("report: no series to write")
	}
	for i, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		if i > 0 {
			if _, err := io.WriteString(w, "\n\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# %s\n", s.Label); err != nil {
			return err
		}
		for j := range s.X {
			if _, err := fmt.Fprintf(w, "%g\t%g\n", s.X[j], s.Y[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV emits all series on a shared X column; the series must share
// identical X grids.
func WriteCSV(w io.Writer, xLabel string, series []Series) error {
	if len(series) == 0 {
		return errors.New("report: no series to write")
	}
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		if len(s.X) != len(series[0].X) {
			return fmt.Errorf("report: series %q not on the shared grid", s.Label)
		}
		for j := range s.X {
			if s.X[j] != series[0].X[j] {
				return fmt.Errorf("report: series %q not on the shared grid", s.Label)
			}
		}
	}
	cols := make([]string, 0, len(series)+1)
	cols = append(cols, csvEscape(xLabel))
	for _, s := range series {
		cols = append(cols, csvEscape(s.Label))
	}
	if _, err := io.WriteString(w, strings.Join(cols, ",")+"\n"); err != nil {
		return err
	}
	for j := range series[0].X {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%g", series[0].X[j]))
		for _, s := range series {
			row = append(row, fmt.Sprintf("%g", s.Y[j]))
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
