package report

import (
	"math"
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Label: "ideal", X: []float64{0, 50, 100}, Y: []float64{0, 50, 100}},
		{Label: "actual", X: []float64{0, 50, 100}, Y: []float64{60, 80, 100}},
	}
}

func TestRenderASCIIBasic(t *testing.T) {
	var b strings.Builder
	err := RenderASCII(&b, twoSeries(), PlotOptions{Width: 40, Height: 10, XLabel: "util%", YLabel: "power%"})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{"power%", "util%", "* ideal", "+ actual"} {
		if !strings.Contains(out, frag) {
			t.Errorf("plot missing %q:\n%s", frag, out)
		}
	}
	// Plot body has exactly Height rows of "|" grid.
	if got := strings.Count(out, "|"); got != 10 {
		t.Errorf("plot has %d grid rows, want 10", got)
	}
	// Both marks appear in the grid.
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("marks missing from grid")
	}
}

func TestRenderASCIIPositions(t *testing.T) {
	// A single point at the max of both axes must land in the top-right
	// corner of the grid; min-min lands bottom-left.
	var b strings.Builder
	series := []Series{{Label: "pts", X: []float64{0, 100}, Y: []float64{0, 100}}}
	if err := RenderASCII(&b, series, PlotOptions{Width: 20, Height: 5}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(b.String(), "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			gridLines = append(gridLines, l[strings.Index(l, "|")+1:])
		}
	}
	if len(gridLines) != 5 {
		t.Fatalf("got %d grid lines", len(gridLines))
	}
	if gridLines[0][19] != '*' {
		t.Errorf("top-right not marked:\n%s", b.String())
	}
	if gridLines[4][0] != '*' {
		t.Errorf("bottom-left not marked:\n%s", b.String())
	}
}

func TestRenderASCIILogY(t *testing.T) {
	series := []Series{{Label: "exp", X: []float64{1, 2, 3}, Y: []float64{1, 10, 100}}}
	var b strings.Builder
	if err := RenderASCII(&b, series, PlotOptions{Width: 30, Height: 7, LogY: true}); err != nil {
		t.Fatal(err)
	}
	// On a log axis the three decades are evenly spaced: the middle
	// point sits on the middle row.
	lines := strings.Split(b.String(), "\n")
	var rows []int
	for i, l := range lines {
		if strings.Contains(l, "*") && strings.Contains(l, "|") {
			rows = append(rows, i)
		}
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 marked rows, got %d:\n%s", len(rows), b.String())
	}
	if rows[1]-rows[0] != rows[2]-rows[1] {
		t.Errorf("log spacing uneven: %v", rows)
	}
	// Log with non-positive values errors.
	bad := []Series{{Label: "bad", X: []float64{1}, Y: []float64{0}}}
	if err := RenderASCII(&b, bad, PlotOptions{LogY: true}); err == nil {
		t.Error("log plot of zero accepted")
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	var b strings.Builder
	if err := RenderASCII(&b, nil, PlotOptions{}); err == nil {
		t.Error("empty series accepted")
	}
	if err := RenderASCII(&b, twoSeries(), PlotOptions{Width: 2, Height: 2}); err == nil {
		t.Error("tiny plot accepted")
	}
	nan := []Series{{Label: "nan", X: []float64{math.NaN()}, Y: []float64{math.NaN()}}}
	if err := RenderASCII(&b, nan, PlotOptions{}); err == nil {
		t.Error("all-NaN series accepted")
	}
}
