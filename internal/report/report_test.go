package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "Program", "Value")
	tab.MustAddRow("EP", "1.23")
	tab.MustAddRow("memcached", "45")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Errorf("first line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Program") {
		t.Errorf("header line %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Errorf("separator line %q", lines[2])
	}
	// Columns align: "Value" starts at the same offset in every row.
	col := strings.Index(lines[1], "Value")
	if got := strings.Index(lines[3], "1.23"); got != col {
		t.Errorf("row 1 value at col %d, header at %d\n%s", got, col, out)
	}
	if got := strings.Index(lines[4], "45"); got != col {
		t.Errorf("row 2 value at col %d, header at %d\n%s", got, col, out)
	}
	if tab.Rows() != 2 {
		t.Errorf("Rows = %d", tab.Rows())
	}
}

func TestTableArityChecked(t *testing.T) {
	tab := NewTable("", "a", "b")
	if err := tab.AddRow("only-one"); err == nil {
		t.Error("wrong arity accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow did not panic on wrong arity")
		}
	}()
	tab.MustAddRow("x")
}

func TestRenderMarkdown(t *testing.T) {
	tab := NewTable("My Title", "Program", "Value")
	tab.MustAddRow("EP", "1.23")
	tab.MustAddRow("a|b", "45")
	var b strings.Builder
	if err := tab.RenderMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, frag := range []string{
		"**My Title**",
		"| Program | Value |",
		"|---|---|",
		"| EP | 1.23 |",
		`| a\|b | 45 |`, // pipes escaped
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}

func TestWriteDATBlocks(t *testing.T) {
	series := []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "b", X: []float64{1, 2}, Y: []float64{30, 40}},
	}
	var b strings.Builder
	if err := WriteDAT(&b, series); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# a\n1\t10\n2\t20\n") {
		t.Errorf("block a malformed:\n%s", out)
	}
	if !strings.Contains(out, "\n\n\n# b\n") {
		t.Errorf("blocks not separated by two blank lines:\n%s", out)
	}
}

func TestWriteDATErrors(t *testing.T) {
	var b strings.Builder
	if err := WriteDAT(&b, nil); err == nil {
		t.Error("empty series list accepted")
	}
	bad := []Series{{Label: "x", X: []float64{1}, Y: []float64{}}}
	if err := WriteDAT(&b, bad); err == nil {
		t.Error("ragged series accepted")
	}
}

func TestWriteCSVSharedGrid(t *testing.T) {
	series := []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "b,with comma", X: []float64{1, 2}, Y: []float64{30, 40}},
	}
	var b strings.Builder
	if err := WriteCSV(&b, "u", series); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[0] != `u,a,"b,with comma"` {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "1,10,30" || lines[2] != "2,20,40" {
		t.Errorf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestWriteCSVRejectsMismatchedGrids(t *testing.T) {
	series := []Series{
		{Label: "a", X: []float64{1, 2}, Y: []float64{10, 20}},
		{Label: "b", X: []float64{1, 3}, Y: []float64{30, 40}},
	}
	var b strings.Builder
	if err := WriteCSV(&b, "u", series); err == nil {
		t.Error("mismatched grids accepted")
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":         "plain",
		"with,comma":    `"with,comma"`,
		`with"quote`:    `"with""quote"`,
		"with\nnewline": "\"with\nnewline\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}
