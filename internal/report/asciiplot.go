package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// PlotOptions sizes and scales an ASCII plot.
type PlotOptions struct {
	// Width and Height are the plot area in characters (defaults 72x20).
	Width, Height int
	// LogY plots the y axis logarithmically (all values must be > 0).
	LogY bool
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
}

// seriesMarks are the glyphs assigned to series in order.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws the series as a character plot — the terminal-first
// rendering of the paper's figures used by cmd/reproduce's -ascii mode
// and handy in CI logs where .dat files cannot be eyeballed.
func RenderASCII(w io.Writer, series []Series, opt PlotOptions) error {
	if len(series) == 0 {
		return errors.New("report: no series to plot")
	}
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}
	if width < 8 || height < 4 {
		return errors.New("report: plot area too small")
	}

	// Bounds.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if err := s.Validate(); err != nil {
			return err
		}
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			if opt.LogY && y <= 0 {
				return fmt.Errorf("report: log plot with non-positive value %g in %q", y, s.Label)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		return errors.New("report: no finite points to plot")
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	ty := func(y float64) float64 {
		if opt.LogY {
			return math.Log10(y)
		}
		return y
	}
	lo, hi := ty(ymin), ty(ymax)
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((ty(y)-lo)/(hi-lo)*float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = mark
		}
	}

	// Emit: y labels on the left edge of first/middle/last rows.
	yVal := func(row int) float64 {
		frac := float64(height-1-row) / float64(height-1)
		v := lo + frac*(hi-lo)
		if opt.LogY {
			return math.Pow(10, v)
		}
		return v
	}
	if opt.YLabel != "" {
		if _, err := fmt.Fprintf(w, "%s\n", opt.YLabel); err != nil {
			return err
		}
	}
	for r := 0; r < height; r++ {
		label := "          "
		if r == 0 || r == height-1 || r == height/2 {
			label = fmt.Sprintf("%9.3g ", yVal(r))
		}
		if _, err := fmt.Fprintf(w, "%s|%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s%-.4g%s%.4g  %s\n", strings.Repeat(" ", 11), xmin,
		strings.Repeat(" ", maxInt(1, width-len(fmt.Sprintf("%.4g", xmin))-len(fmt.Sprintf("%.4g", xmax)))),
		xmax, opt.XLabel); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.Label); err != nil {
			return err
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
