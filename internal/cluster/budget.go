package cluster

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/units"
)

// BudgetSpec describes the fixed peak-power envelope of Section III-C:
// cluster mixes are compared fairly by holding their rated peak power
// (nodes plus wimpy-side switches) under a budget.
type BudgetSpec struct {
	// Budget is the peak power envelope (1 kW in the paper).
	Budget units.Watts
	// Wimpy and Brawny are the two node types being mixed.
	Wimpy, Brawny *hardware.NodeType
	// Switch models the aggregation switch attached to wimpy nodes.
	Switch hardware.SwitchModel
	// BrawnyStep is the granularity at which brawny nodes are traded for
	// wimpy ones when generating the substitution ladder. The paper uses
	// 4 (producing 0, 4, 8, 12, 16 K10 nodes).
	BrawnyStep int
}

// DefaultBudget returns the paper's 1 kW A9/K10 setup.
func DefaultBudget(catalog *hardware.Catalog) (BudgetSpec, error) {
	wimpy, err := catalog.Lookup("A9")
	if err != nil {
		return BudgetSpec{}, err
	}
	brawny, err := catalog.Lookup("K10")
	if err != nil {
		return BudgetSpec{}, err
	}
	return BudgetSpec{
		Budget:     1000,
		Wimpy:      wimpy,
		Brawny:     brawny,
		Switch:     hardware.DefaultSwitch(),
		BrawnyStep: 4,
	}, nil
}

// PeakWithSwitches returns the budget-accounted peak power of a wimpy/
// brawny mix: rated node peaks plus switch power for the wimpy side.
func (b BudgetSpec) PeakWithSwitches(nWimpy, nBrawny int) units.Watts {
	return units.Watts(float64(b.Wimpy.NominalPeak)*float64(nWimpy)+
		float64(b.Brawny.NominalPeak)*float64(nBrawny)) +
		b.Switch.Power(nWimpy)
}

// Fits reports whether the mix stays within the budget.
func (b BudgetSpec) Fits(nWimpy, nBrawny int) bool {
	return b.PeakWithSwitches(nWimpy, nBrawny) <= b.Budget
}

// SubstitutionRatio returns how many wimpy nodes replace one brawny node
// (8 for the paper's A9/K10 with a 20 W-per-8-nodes switch).
func (b BudgetSpec) SubstitutionRatio() int {
	return b.Switch.SubstitutionRatio(b.Wimpy, b.Brawny)
}

// Mix is one point on the substitution ladder.
type Mix struct {
	Wimpy, Brawny int
	Config        Config
}

// Ladder generates the substitution ladder of Section III-C: starting
// from the all-brawny cluster that fills the budget, trade BrawnyStep
// brawny nodes for BrawnyStep*ratio wimpy nodes until no brawny nodes
// remain. For the paper's parameters this yields
// (0,16), (32,12), (64,8), (96,4), (128,0) in (wimpy, brawny) counts.
func (b BudgetSpec) Ladder() ([]Mix, error) {
	if b.Budget <= 0 {
		return nil, fmt.Errorf("cluster: non-positive budget %v", b.Budget)
	}
	if b.Brawny.NominalPeak <= 0 {
		return nil, fmt.Errorf("cluster: brawny type %s has no rated peak", b.Brawny.Name)
	}
	ratio := b.SubstitutionRatio()
	if ratio <= 0 {
		return nil, fmt.Errorf("cluster: substitution ratio is %d; wimpy node (with switch share) does not fit under one brawny node", ratio)
	}
	step := b.BrawnyStep
	if step <= 0 {
		step = 1
	}
	maxBrawny := int(float64(b.Budget) / float64(b.Brawny.NominalPeak))
	if maxBrawny <= 0 {
		return nil, fmt.Errorf("cluster: budget %v cannot fit one %s node", b.Budget, b.Brawny.Name)
	}
	var mixes []Mix
	for k := 0; ; k++ {
		nBrawny := maxBrawny - k*step
		if nBrawny < 0 {
			break
		}
		nWimpy := k * step * ratio
		if !b.Fits(nWimpy, nBrawny) {
			return nil, fmt.Errorf("cluster: ladder mix %d wimpy + %d brawny exceeds budget (%v > %v)",
				nWimpy, nBrawny, b.PeakWithSwitches(nWimpy, nBrawny), b.Budget)
		}
		var groups []Group
		if nWimpy > 0 {
			groups = append(groups, FullNodes(b.Wimpy, nWimpy))
		}
		if nBrawny > 0 {
			groups = append(groups, FullNodes(b.Brawny, nBrawny))
		}
		cfg, err := NewConfig(groups...)
		if err != nil {
			return nil, err
		}
		mixes = append(mixes, Mix{Wimpy: nWimpy, Brawny: nBrawny, Config: cfg})
		if nBrawny == 0 {
			break
		}
	}
	return mixes, nil
}

// MaximalMixes enumerates every (wimpy, brawny) pair within the budget
// that cannot take one more node of either type — the full Pareto set of
// budget-filling mixes, a superset of the ladder.
func (b BudgetSpec) MaximalMixes() []Mix {
	var mixes []Mix
	maxBrawny := int(float64(b.Budget) / float64(b.Brawny.NominalPeak))
	for nBrawny := 0; nBrawny <= maxBrawny; nBrawny++ {
		// Largest wimpy count that still fits beside nBrawny.
		nWimpy := 0
		for b.Fits(nWimpy+1, nBrawny) {
			nWimpy++
		}
		if nWimpy == 0 && nBrawny == 0 {
			continue
		}
		var groups []Group
		if nWimpy > 0 {
			groups = append(groups, FullNodes(b.Wimpy, nWimpy))
		}
		if nBrawny > 0 {
			groups = append(groups, FullNodes(b.Brawny, nBrawny))
		}
		cfg, err := NewConfig(groups...)
		if err != nil {
			continue
		}
		mixes = append(mixes, Mix{Wimpy: nWimpy, Brawny: nBrawny, Config: cfg})
	}
	return mixes
}
