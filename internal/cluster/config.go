// Package cluster represents heterogeneous system configurations: which
// node types participate, with how many nodes, how many active cores per
// node and at which core frequency — the tuple space of Section II-A of
// the paper — together with configuration-space enumeration and
// peak-power-budget accounting.
package cluster

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/hardware"
	"repro/internal/units"
)

// Group is a homogeneous slice of a configuration: n nodes of one type,
// all running c active cores at frequency f. The paper's enumeration
// (footnote 4) makes the same choice for every node of a type, which is
// what Group encodes.
type Group struct {
	// Type is the node type.
	Type *hardware.NodeType
	// Count is the number of nodes (n_i).
	Count int
	// Cores is the number of active cores per node (c_i <= c_max).
	Cores int
	// Freq is the operating core frequency (f_i).
	Freq units.Hertz
}

// Validate checks the group against its node type's limits.
func (g Group) Validate() error {
	if g.Type == nil {
		return errors.New("cluster: group has nil node type")
	}
	if g.Count <= 0 {
		return fmt.Errorf("cluster: group of %s has count %d", g.Type.Name, g.Count)
	}
	if g.Cores <= 0 || g.Cores > g.Type.Cores {
		return fmt.Errorf("cluster: group of %s has %d cores, type supports 1-%d",
			g.Type.Name, g.Cores, g.Type.Cores)
	}
	if !g.Type.HasFreq(g.Freq) {
		return fmt.Errorf("cluster: group of %s uses unsupported frequency %v", g.Type.Name, g.Freq)
	}
	return nil
}

// FullNodes returns a group of n nodes with all cores at max frequency.
func FullNodes(t *hardware.NodeType, n int) Group {
	return Group{Type: t, Count: n, Cores: t.Cores, Freq: t.FMax()}
}

// Config is a heterogeneous cluster configuration: one group per
// participating node type.
type Config struct {
	Groups []Group
}

// NewConfig builds a configuration from groups, dropping empty ones and
// validating the rest. Group order is normalized by node-type name so
// configurations compare canonically.
func NewConfig(groups ...Group) (Config, error) {
	kept := make([]Group, 0, len(groups))
	seen := make(map[string]bool, len(groups))
	for _, g := range groups {
		if g.Count == 0 {
			continue
		}
		if err := g.Validate(); err != nil {
			return Config{}, err
		}
		if seen[g.Type.Name] {
			return Config{}, fmt.Errorf("cluster: duplicate group for node type %s", g.Type.Name)
		}
		seen[g.Type.Name] = true
		kept = append(kept, g)
	}
	if len(kept) == 0 {
		return Config{}, errors.New("cluster: configuration has no nodes")
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Type.Name < kept[j].Type.Name })
	return Config{Groups: kept}, nil
}

// MustConfig is NewConfig that panics on error, for statically valid
// configurations in tests and examples.
func MustConfig(groups ...Group) Config {
	c, err := NewConfig(groups...)
	if err != nil {
		panic(err)
	}
	return c
}

// Nodes returns the total node count.
func (c Config) Nodes() int {
	n := 0
	for _, g := range c.Groups {
		n += g.Count
	}
	return n
}

// Degree returns the degree of inter-node heterogeneity (number of
// distinct node types, d in the paper).
func (c Config) Degree() int { return len(c.Groups) }

// Count returns the number of nodes of the named type (0 if absent).
func (c Config) Count(typeName string) int {
	for _, g := range c.Groups {
		if g.Type.Name == typeName {
			return g.Count
		}
	}
	return 0
}

// IdlePower is the configuration's total idle power, excluding switches
// (see hardware.SwitchModel for why switches are budget-only).
func (c Config) IdlePower() units.Watts {
	var p units.Watts
	for _, g := range c.Groups {
		p += units.Watts(float64(g.Type.Power.Idle) * float64(g.Count))
	}
	return p
}

// NominalPeak is the rated peak power for budget accounting, excluding
// switches.
func (c Config) NominalPeak() units.Watts {
	var p units.Watts
	for _, g := range c.Groups {
		p += units.Watts(float64(g.Type.NominalPeak) * float64(g.Count))
	}
	return p
}

// Key returns a canonical string identity usable as a map key.
func (c Config) Key() string {
	parts := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		parts[i] = fmt.Sprintf("%s:%d:%d:%g", g.Type.Name, g.Count, g.Cores, float64(g.Freq))
	}
	return strings.Join(parts, "|")
}

// String renders the configuration in the paper's "32 A9: 12 K10" style,
// annotating cores/frequency only when they deviate from the maximum.
func (c Config) String() string {
	parts := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		s := fmt.Sprintf("%d %s", g.Count, g.Type.Name)
		if g.Cores != g.Type.Cores || g.Freq != g.Type.FMax() {
			s += fmt.Sprintf("(%dc@%v)", g.Cores, g.Freq)
		}
		parts[i] = s
	}
	return strings.Join(parts, ": ")
}

// Validate checks every group.
func (c Config) Validate() error {
	if len(c.Groups) == 0 {
		return errors.New("cluster: configuration has no groups")
	}
	for _, g := range c.Groups {
		if err := g.Validate(); err != nil {
			return err
		}
	}
	return nil
}
