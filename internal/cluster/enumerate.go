package cluster

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/units"
)

// Limit bounds the enumeration for one node type: up to MaxNodes nodes,
// each running 1..MaxCores active cores at any of the type's frequency
// steps (optionally restricted to Freqs).
type Limit struct {
	Type     *hardware.NodeType
	MaxNodes int
	// MaxCores limits active cores; zero means the type's full count.
	MaxCores int
	// Freqs restricts the frequency choices; nil means all steps.
	Freqs []units.Hertz
	// FixCoresAndFreq pins every node to all cores at max frequency,
	// shrinking the space to node counts only (used by the Pareto and
	// budget analyses that vary only the mix).
	FixCoresAndFreq bool
}

func (l Limit) cores() []int {
	if l.FixCoresAndFreq {
		return []int{l.Type.Cores}
	}
	max := l.MaxCores
	if max <= 0 || max > l.Type.Cores {
		max = l.Type.Cores
	}
	out := make([]int, max)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func (l Limit) freqs() []units.Hertz {
	if l.FixCoresAndFreq {
		return []units.Hertz{l.Type.FMax()}
	}
	if len(l.Freqs) > 0 {
		return l.Freqs
	}
	return l.Type.Freq.Steps
}

// Choices returns every (count, cores, freq) Group choice for the type
// with count >= 1, in the deterministic order Enumerate consumes them.
// The fast frontier engine iterates these directly instead of
// re-deriving the per-type space.
func (l Limit) Choices() []Group { return l.perTypeChoices() }

// OperatingPoints returns one single-node Group per distinct
// (cores, freq) pair of the type — the set of per-unit operating points
// the limit can reach, independent of node count. The memoized model
// table is keyed on exactly these, so pre-warming iterates
// OperatingPoints rather than the count-expanded Choices.
func (l Limit) OperatingPoints() []Group {
	if l.MaxNodes <= 0 {
		return nil
	}
	cores := l.cores()
	freqs := l.freqs()
	out := make([]Group, 0, len(cores)*len(freqs))
	for _, c := range cores {
		for _, f := range freqs {
			out = append(out, Group{Type: l.Type, Count: 1, Cores: c, Freq: f})
		}
	}
	return out
}

// perTypeChoices returns every (count, cores, freq) choice for one type
// with count >= 1.
func (l Limit) perTypeChoices() []Group {
	if l.MaxNodes <= 0 {
		return nil
	}
	cores := l.cores()
	freqs := l.freqs()
	out := make([]Group, 0, l.MaxNodes*len(cores)*len(freqs))
	for n := 1; n <= l.MaxNodes; n++ {
		for _, c := range cores {
			for _, f := range freqs {
				out = append(out, Group{Type: l.Type, Count: n, Cores: c, Freq: f})
			}
		}
	}
	return out
}

// SpaceSize returns the number of configurations Enumerate would yield
// without materializing them: the product over every non-empty subset of
// types of their per-type choice counts. For the paper's footnote-4
// space (10 ARM nodes x 5 freqs x 4 cores, 10 AMD nodes x 3 freqs x 6
// cores) this is 36,380.
func SpaceSize(limits []Limit) int {
	// sum over non-empty subsets of product of per-type counts
	// = prod (1 + n_i) - 1, where n_i is the per-type choice count.
	total := 1
	for _, l := range limits {
		perType := l.MaxNodes * len(l.cores()) * len(l.freqs())
		total *= 1 + perType
	}
	return total - 1
}

// Enumerate yields every configuration in the space defined by limits,
// calling visit for each. Enumeration order is deterministic. If visit
// returns false, enumeration stops early.
//
// The space follows the paper's footnote 4: every non-empty subset of
// node types, each contributing one (count, cores, frequency) choice
// shared by all its nodes.
func Enumerate(limits []Limit, visit func(Config) bool) error {
	if err := ValidateLimits(limits); err != nil {
		return err
	}
	choices := make([][]Group, len(limits))
	for i, l := range limits {
		choices[i] = l.perTypeChoices()
	}
	// Depth-first over types; at each type either skip it or pick one of
	// its choices. Reject the all-skip path.
	groups := make([]Group, 0, len(limits))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(limits) {
			if len(groups) == 0 {
				return true
			}
			cfg, err := NewConfig(groups...)
			if err != nil {
				// Choices are pre-validated; NewConfig cannot fail here.
				panic(err)
			}
			return visit(cfg)
		}
		// Skip this type.
		if !rec(i + 1) {
			return false
		}
		for _, g := range choices[i] {
			groups = append(groups, g)
			ok := rec(i + 1)
			groups = groups[:len(groups)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0)
	return nil
}

// ValidateLimits checks that every limit carries a valid node type —
// the precondition Enumerate and the fast frontier engine share.
func ValidateLimits(limits []Limit) error {
	for _, l := range limits {
		if l.Type == nil {
			return fmt.Errorf("cluster: enumeration limit with nil type")
		}
		if err := l.Type.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// enumerateAllPreallocCap bounds the up-front allocation of
// EnumerateAll: SpaceSize is exact, but a caller handing over a huge
// (or overflowed) space should not trigger a giant allocation before
// the first configuration exists.
const enumerateAllPreallocCap = 1 << 20

// EnumerateAll collects the full space into a slice, sized up front
// from SpaceSize so the result never reallocates while growing. Use
// only for spaces known to be small; prefer Enumerate for streaming.
func EnumerateAll(limits []Limit) ([]Config, error) {
	if err := ValidateLimits(limits); err != nil {
		return nil, err
	}
	size := SpaceSize(limits)
	if size < 0 || size > enumerateAllPreallocCap {
		size = enumerateAllPreallocCap
	}
	out := make([]Config, 0, size)
	err := Enumerate(limits, func(c Config) bool {
		out = append(out, c)
		return true
	})
	return out, err
}
