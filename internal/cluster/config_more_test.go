package cluster

import (
	"strings"
	"testing"

	"repro/internal/hardware"
)

func TestConfigAccessors(t *testing.T) {
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	c := MustConfig(FullNodes(a9, 32), FullNodes(k10, 12))

	if got := c.Nodes(); got != 44 {
		t.Errorf("Nodes = %d, want 44", got)
	}
	if got := c.Degree(); got != 2 {
		t.Errorf("Degree = %d, want 2", got)
	}
	if got := c.Count("A9"); got != 32 {
		t.Errorf("Count(A9) = %d", got)
	}
	if got := c.Count("K10"); got != 12 {
		t.Errorf("Count(K10) = %d", got)
	}
	if got := c.Count("XeonE5"); got != 0 {
		t.Errorf("Count of absent type = %d", got)
	}
	// Rated peak: 32*5 + 12*60 = 880 W (no switches in NominalPeak).
	if got := c.NominalPeak(); got != 880 {
		t.Errorf("NominalPeak = %v, want 880 W", got)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config validated")
	}
}

func TestConfigKeyCanonical(t *testing.T) {
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	// Group order at construction does not matter: keys are canonical.
	c1 := MustConfig(FullNodes(a9, 4), FullNodes(k10, 2))
	c2 := MustConfig(FullNodes(k10, 2), FullNodes(a9, 4))
	if c1.Key() != c2.Key() {
		t.Errorf("keys differ for identical configs: %q vs %q", c1.Key(), c2.Key())
	}
	// Different cores or frequency produce different keys.
	c3 := MustConfig(Group{Type: a9, Count: 4, Cores: 2, Freq: a9.FMax()}, FullNodes(k10, 2))
	if c3.Key() == c1.Key() {
		t.Error("core count not part of the key")
	}
	if !strings.Contains(c1.Key(), "A9") || !strings.Contains(c1.Key(), "K10") {
		t.Errorf("key %q missing type names", c1.Key())
	}
}

func TestNewConfigDropsEmptyGroups(t *testing.T) {
	cat := hardware.DefaultCatalog()
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	c, err := NewConfig(FullNodes(a9, 4), Group{Type: k10, Count: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Degree() != 1 {
		t.Errorf("zero-count group not dropped: degree %d", c.Degree())
	}
}
