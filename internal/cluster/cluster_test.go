package cluster

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hardware"
	"repro/internal/units"
)

func TestFootnote4SpaceSize(t *testing.T) {
	// Footnote 4: 10 ARM nodes x 5 freqs x 4 cores and 10 AMD nodes x
	// 3 freqs x 6 cores give 36,000 mixed + 200 ARM-only + 180 AMD-only
	// = 36,380 configurations.
	cat := hardware.DefaultCatalog()
	arm, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	amd, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	limits := []Limit{
		{Type: arm, MaxNodes: 10},
		{Type: amd, MaxNodes: 10},
	}
	if got := SpaceSize(limits); got != 36380 {
		t.Fatalf("SpaceSize = %d, want 36380", got)
	}
	// Enumerate must agree with the closed form.
	count := 0
	if err := Enumerate(limits, func(Config) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 36380 {
		t.Errorf("Enumerate yielded %d configs, want 36380", count)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	cat := hardware.DefaultCatalog()
	arm, _ := cat.Lookup("A9")
	limits := []Limit{{Type: arm, MaxNodes: 10}}
	count := 0
	if err := Enumerate(limits, func(Config) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("early stop after %d configs, want 5", count)
	}
}

func TestEnumerateFixedCoresAndFreq(t *testing.T) {
	cat := hardware.DefaultCatalog()
	arm, _ := cat.Lookup("A9")
	amd, _ := cat.Lookup("K10")
	limits := []Limit{
		{Type: arm, MaxNodes: 32, FixCoresAndFreq: true},
		{Type: amd, MaxNodes: 12, FixCoresAndFreq: true},
	}
	// 32*12 mixed + 32 + 12 = 428.
	if got := SpaceSize(limits); got != 428 {
		t.Errorf("SpaceSize = %d, want 428", got)
	}
	configs, err := EnumerateAll(limits)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 428 {
		t.Errorf("got %d configs, want 428", len(configs))
	}
	for _, c := range configs {
		for _, g := range c.Groups {
			if g.Cores != g.Type.Cores || g.Freq != g.Type.FMax() {
				t.Fatalf("config %s not pinned to full cores at fmax", c)
			}
		}
	}
}

func TestConfigStringPaperStyle(t *testing.T) {
	cat := hardware.DefaultCatalog()
	arm, _ := cat.Lookup("A9")
	amd, _ := cat.Lookup("K10")
	c := MustConfig(FullNodes(arm, 32), FullNodes(amd, 12))
	if got := c.String(); got != "32 A9: 12 K10" {
		t.Errorf("String = %q, want \"32 A9: 12 K10\"", got)
	}
	// Deviating cores/freq are annotated.
	c2 := MustConfig(Group{Type: arm, Count: 4, Cores: 2, Freq: arm.FMin()})
	if got := c2.String(); !strings.Contains(got, "2c@") {
		t.Errorf("String = %q, want core/freq annotation", got)
	}
}

func TestConfigRejectsInvalid(t *testing.T) {
	cat := hardware.DefaultCatalog()
	arm, _ := cat.Lookup("A9")
	if _, err := NewConfig(); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewConfig(Group{Type: arm, Count: 1, Cores: 99, Freq: arm.FMax()}); err == nil {
		t.Error("excess cores accepted")
	}
	if _, err := NewConfig(Group{Type: arm, Count: 1, Cores: 1, Freq: 12345}); err == nil {
		t.Error("off-ladder frequency accepted")
	}
	if _, err := NewConfig(FullNodes(arm, 1), FullNodes(arm, 2)); err == nil {
		t.Error("duplicate group accepted")
	}
}

func TestBudgetLadderMatchesPaper(t *testing.T) {
	cat := hardware.DefaultCatalog()
	spec, err := DefaultBudget(cat)
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.SubstitutionRatio(); got != 8 {
		t.Fatalf("substitution ratio = %d, want 8 (footnote 3)", got)
	}
	ladder, err := spec.Ladder()
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int{{0, 16}, {32, 12}, {64, 8}, {96, 4}, {128, 0}}
	if len(ladder) != len(want) {
		t.Fatalf("ladder has %d mixes, want %d: %+v", len(ladder), len(want), ladder)
	}
	for i, m := range ladder {
		if m.Wimpy != want[i][0] || m.Brawny != want[i][1] {
			t.Errorf("ladder[%d] = %d A9, %d K10; want %d, %d",
				i, m.Wimpy, m.Brawny, want[i][0], want[i][1])
		}
		if peak := spec.PeakWithSwitches(m.Wimpy, m.Brawny); peak > spec.Budget {
			t.Errorf("ladder[%d] peak %v exceeds budget %v", i, peak, spec.Budget)
		}
	}
}

func TestBudgetMaximalMixesWithinBudget(t *testing.T) {
	cat := hardware.DefaultCatalog()
	spec, err := DefaultBudget(cat)
	if err != nil {
		t.Fatal(err)
	}
	mixes := spec.MaximalMixes()
	if len(mixes) == 0 {
		t.Fatal("no maximal mixes")
	}
	for _, m := range mixes {
		if !spec.Fits(m.Wimpy, m.Brawny) {
			t.Errorf("mix %dA9:%dK10 does not fit budget", m.Wimpy, m.Brawny)
		}
		if spec.Fits(m.Wimpy+1, m.Brawny) {
			t.Errorf("mix %dA9:%dK10 is not maximal (one more wimpy node fits)", m.Wimpy, m.Brawny)
		}
	}
}

// TestIdlePowerAdditive is a property: idle power of a config equals the
// sum over groups of count*idle.
func TestIdlePowerAdditive(t *testing.T) {
	cat := hardware.DefaultCatalog()
	arm, _ := cat.Lookup("A9")
	amd, _ := cat.Lookup("K10")
	f := func(nA, nK uint8) bool {
		a := int(nA%64) + 1
		k := int(nK%16) + 1
		c := MustConfig(FullNodes(arm, a), FullNodes(amd, k))
		want := units.Watts(float64(a)*1.8 + float64(k)*45)
		return float64(c.IdlePower()-want) < 1e-9 && float64(want-c.IdlePower()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchPowerModel(t *testing.T) {
	sw := hardware.DefaultSwitch()
	cases := []struct {
		nodes int
		want  units.Watts
	}{{0, 0}, {1, 20}, {8, 20}, {9, 40}, {32, 80}, {128, 320}}
	for _, c := range cases {
		if got := sw.Power(c.nodes); got != c.want {
			t.Errorf("switch power for %d nodes = %v, want %v", c.nodes, got, c.want)
		}
	}
}

// TestEnumerateAllPreallocatesExactly: for asymmetric multi-type limits
// (mixed core caps, frequency restrictions and a fixed type), SpaceSize
// matches the enumerated count exactly and EnumerateAll sizes its
// result up front — the returned slice never grew past the closed-form
// capacity.
func TestEnumerateAllPreallocatesExactly(t *testing.T) {
	cat := hardware.DefaultCatalog()
	arm, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	amd, err := cat.Lookup("K10")
	if err != nil {
		t.Fatal(err)
	}
	xeon, err := cat.Lookup("XeonE5")
	if err != nil {
		t.Fatal(err)
	}
	limits := []Limit{
		{Type: arm, MaxNodes: 3, MaxCores: 2},               // 3*2*5 = 30 choices
		{Type: amd, MaxNodes: 2, Freqs: amd.Freq.Steps[:2]}, // 2*6*2 = 24 choices
		{Type: xeon, MaxNodes: 4, FixCoresAndFreq: true},    // 4 choices
	}
	want := (1+30)*(1+24)*(1+4) - 1
	if got := SpaceSize(limits); got != want {
		t.Fatalf("SpaceSize = %d, want %d", got, want)
	}
	out, err := EnumerateAll(limits)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != want {
		t.Fatalf("EnumerateAll yielded %d configs, SpaceSize says %d", len(out), want)
	}
	if cap(out) != want {
		t.Errorf("EnumerateAll capacity %d, want exactly SpaceSize %d (preallocated, no growth)",
			cap(out), want)
	}
	// Choices must expose the same per-type space Enumerate consumes.
	if got := len(limits[0].Choices()); got != 30 {
		t.Errorf("A9 Choices = %d, want 30", got)
	}
	if got := len(limits[2].Choices()); got != 4 {
		t.Errorf("fixed XeonE5 Choices = %d, want 4", got)
	}
}

// TestEnumerateAllInvalidLimits: validation errors surface before any
// preallocation math touches the (possibly nil) node types.
func TestEnumerateAllInvalidLimits(t *testing.T) {
	if _, err := EnumerateAll([]Limit{{Type: nil, MaxNodes: 3}}); err == nil {
		t.Fatal("nil type accepted")
	}
	if err := ValidateLimits([]Limit{{Type: nil}}); err == nil {
		t.Fatal("ValidateLimits accepted nil type")
	}
}

// TestOperatingPoints: the per-unit operating points are exactly the
// distinct (cores, freq) pairs of the limit — the count-independent
// set the model table memoizes on — with count pinned to one node.
func TestOperatingPoints(t *testing.T) {
	cat := hardware.DefaultCatalog()
	a9, err := cat.Lookup("A9")
	if err != nil {
		t.Fatal(err)
	}
	l := Limit{Type: a9, MaxNodes: 7}
	ops := l.OperatingPoints()
	choices := l.Choices()
	if len(ops)*l.MaxNodes != len(choices) {
		t.Fatalf("%d operating points x %d nodes != %d choices", len(ops), l.MaxNodes, len(choices))
	}
	seen := make(map[string]bool, len(ops))
	for _, g := range ops {
		if g.Count != 1 {
			t.Fatalf("operating point %v has count %d, want 1", g, g.Count)
		}
		key := fmt.Sprintf("%d@%v", g.Cores, g.Freq)
		if seen[key] {
			t.Fatalf("duplicate operating point %s", key)
		}
		seen[key] = true
	}
	for _, g := range choices {
		if !seen[fmt.Sprintf("%d@%v", g.Cores, g.Freq)] {
			t.Fatalf("choice %v has no operating point", g)
		}
	}
	if got := (Limit{Type: a9, MaxNodes: 0}).OperatingPoints(); got != nil {
		t.Fatalf("MaxNodes=0 returned %d operating points", len(got))
	}
	fixed := Limit{Type: a9, MaxNodes: 3, FixCoresAndFreq: true}
	if got := fixed.OperatingPoints(); len(got) != 1 {
		t.Fatalf("FixCoresAndFreq limit has %d operating points, want 1", len(got))
	}
}
