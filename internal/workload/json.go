package workload

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/units"
)

// profileJSON is the on-disk representation of a workload profile: raw
// per-unit service demands per node type.
type profileJSON struct {
	Name         string                `json:"name"`
	Domain       string                `json:"domain,omitempty"`
	Unit         string                `json:"unit"`
	JobUnits     float64               `json:"job_units"`
	IORate       float64               `json:"io_rate_per_s,omitempty"`
	Irregularity float64               `json:"irregularity,omitempty"`
	Demands      map[string]demandJSON `json:"demands"`
}

type demandJSON struct {
	CoreCycles float64 `json:"core_cycles_per_unit"`
	MemCycles  float64 `json:"mem_cycles_per_unit,omitempty"`
	IOBytes    float64 `json:"io_bytes_per_unit,omitempty"`
	IOReqs     float64 `json:"io_reqs_per_unit,omitempty"`
	Intensity  float64 `json:"intensity"`
}

// WriteJSON serializes the profile.
func (p *Profile) WriteJSON(w io.Writer) error {
	j := profileJSON{
		Name:         p.Name,
		Domain:       string(p.Domain),
		Unit:         p.Unit,
		JobUnits:     p.JobUnits,
		IORate:       float64(p.IORate),
		Irregularity: p.Irregularity,
		Demands:      make(map[string]demandJSON, len(p.demands)),
	}
	for nt, d := range p.demands {
		j.Demands[nt] = demandJSON{
			CoreCycles: float64(d.CoreCycles),
			MemCycles:  float64(d.MemCycles),
			IOBytes:    float64(d.IOBytes),
			IOReqs:     d.IOReqs,
			Intensity:  d.Intensity,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(j)
}

// ReadProfileJSON parses and validates one profile.
func ReadProfileJSON(r io.Reader) (*Profile, error) {
	var j profileJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("workload: parsing profile JSON: %w", err)
	}
	domain := Domain(j.Domain)
	if domain == "" {
		domain = DomainSynthetic
	}
	p := NewProfile(j.Name, domain, j.Unit, j.JobUnits)
	p.IORate = units.PerSecond(j.IORate)
	p.Irregularity = j.Irregularity
	// Install demands in sorted order so error messages are stable.
	names := make([]string, 0, len(j.Demands))
	for nt := range j.Demands {
		names = append(names, nt)
	}
	sort.Strings(names)
	for _, nt := range names {
		d := j.Demands[nt]
		if err := p.SetDemand(nt, Demand{
			CoreCycles: units.Cycles(d.CoreCycles),
			MemCycles:  units.Cycles(d.MemCycles),
			IOBytes:    units.Bytes(d.IOBytes),
			IOReqs:     d.IOReqs,
			Intensity:  d.Intensity,
		}); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteRegistryJSON serializes every profile in the registry as a JSON
// array, sorted by name.
func (r *Registry) WriteJSON(w io.Writer) error {
	var out []json.RawMessage
	for _, name := range r.Names() {
		p, err := r.Lookup(name)
		if err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			return err
		}
		out = append(out, json.RawMessage(buf.Bytes()))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadRegistryJSON parses a JSON array of profiles into a registry.
func ReadRegistryJSON(r io.Reader) (*Registry, error) {
	var raw []json.RawMessage
	dec := json.NewDecoder(r)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("workload: parsing registry JSON: %w", err)
	}
	reg := NewRegistry()
	for _, msg := range raw {
		p, err := ReadProfileJSON(bytes.NewReader(msg))
		if err != nil {
			return nil, err
		}
		if err := reg.Register(p); err != nil {
			return nil, err
		}
	}
	return reg, nil
}
