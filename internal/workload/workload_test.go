package workload

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hardware"
	"repro/internal/stats"
	"repro/internal/units"
)

func TestPaperRegistryComplete(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 6 {
		t.Fatalf("registry has %d workloads, want 6", reg.Len())
	}
	for _, name := range PaperNames() {
		p, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, nt := range []string{"A9", "K10"} {
			if !p.Supports(nt) {
				t.Errorf("%s missing demand for %s", name, nt)
			}
		}
		if p.JobUnits <= 0 {
			t.Errorf("%s has no job size", name)
		}
		if p.Unit == "" {
			t.Errorf("%s has no work unit label", name)
		}
	}
}

// TestCalibrationForwardConsistency verifies the calibration algebra
// directly: the demand vector must reproduce the target throughput and
// busy power through the same formulas the model uses.
func TestCalibrationForwardConsistency(t *testing.T) {
	cat := hardware.DefaultCatalog()
	for _, wl := range PaperNames() {
		spec, err := PaperSpec(wl)
		if err != nil {
			t.Fatal(err)
		}
		for nt, tgt := range spec.Targets {
			node, err := cat.Lookup(nt)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Calibrate(node, spec.Structure[nt], tgt)
			if err != nil {
				t.Fatalf("%s on %s: %v", wl, nt, err)
			}
			// Forward: per-unit time and busy power.
			p := node.PowerAt(node.FMax())
			c := float64(node.Cores)
			f := float64(node.FMax())
			tCore := float64(d.CoreCycles) / (c * f)
			tMem := float64(d.MemCycles) / f
			tIO := float64(d.IOBytes) / float64(node.NICBandwidth)
			tUnit := math.Max(math.Max(tCore, tMem), tIO)
			tStall := math.Max(0, tMem-tCore)
			pBusy := float64(p.Idle) +
				d.Intensity*float64(p.CPUActPerCore)*c*(tCore/tUnit) +
				float64(p.CPUStallPerCore)*c*(tStall/tUnit) +
				float64(p.Mem)*(tMem/tUnit) +
				float64(p.Net)*(tIO/tUnit)
			wantBusy := float64(p.Idle) / tgt.IPR
			if stats.RelErr(pBusy, wantBusy) > 1e-9 {
				t.Errorf("%s on %s: busy power %g, want %g", wl, nt, pBusy, wantBusy)
			}
			throughput := 1 / tUnit
			wantThr := tgt.PPR * wantBusy
			if stats.RelErr(throughput, wantThr) > 1e-9 {
				t.Errorf("%s on %s: throughput %g, want %g", wl, nt, throughput, wantThr)
			}
		}
	}
}

func TestCalibrateRejectsBadInputs(t *testing.T) {
	node := hardware.NewA9()
	good := Structure{CoreFrac: 1, MemFrac: 0.1, IOFrac: 0}
	if _, err := Calibrate(node, good, Targets{PPR: 0, IPR: 0.5}); err == nil {
		t.Error("zero PPR accepted")
	}
	if _, err := Calibrate(node, good, Targets{PPR: 1, IPR: 0}); err == nil {
		t.Error("zero IPR accepted")
	}
	if _, err := Calibrate(node, good, Targets{PPR: 1, IPR: 1.5}); err == nil {
		t.Error("IPR > 1 accepted")
	}
	if _, err := Calibrate(node, Structure{CoreFrac: 0.5, MemFrac: 0.1}, Targets{PPR: 1, IPR: 0.5}); err == nil {
		t.Error("structure without binding fraction 1 accepted")
	}
	// A power target below the structure's non-CPU floor is infeasible.
	ioHeavy := Structure{CoreFrac: 0.01, MemFrac: 0.9, IOFrac: 1}
	if _, err := Calibrate(node, ioHeavy, Targets{PPR: 1e6, IPR: 0.999}); err == nil {
		t.Error("infeasible power target accepted")
	}
}

func TestStructureValidate(t *testing.T) {
	if err := (Structure{CoreFrac: 1, MemFrac: 0.5, IOFrac: 0}).Validate(); err != nil {
		t.Errorf("valid structure rejected: %v", err)
	}
	if err := (Structure{CoreFrac: 0.9, MemFrac: 0.5}).Validate(); err == nil {
		t.Error("no binding resource accepted")
	}
	if err := (Structure{CoreFrac: 1, MemFrac: -0.1}).Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestDemandValidate(t *testing.T) {
	if err := (Demand{CoreCycles: 1, Intensity: 0.5}).Validate(); err != nil {
		t.Errorf("valid demand rejected: %v", err)
	}
	if err := (Demand{Intensity: 1}).Validate(); err == nil {
		t.Error("zero-usage demand accepted")
	}
	if err := (Demand{CoreCycles: 1, Intensity: 0}).Validate(); err == nil {
		t.Error("zero intensity accepted")
	}
	if err := (Demand{CoreCycles: -1, Intensity: 1}).Validate(); err == nil {
		t.Error("negative cycles accepted")
	}
}

func TestProfileDemandAccess(t *testing.T) {
	p := NewProfile("x", DomainSynthetic, "u", 10)
	if _, err := p.Demand("A9"); err == nil {
		t.Error("missing demand lookup succeeded")
	}
	if err := p.SetDemand("A9", Demand{CoreCycles: 5, Intensity: 1}); err != nil {
		t.Fatal(err)
	}
	d, err := p.Demand("A9")
	if err != nil || d.CoreCycles != 5 {
		t.Errorf("demand round-trip failed: %v %v", d, err)
	}
	if got := p.NodeTypes(); len(got) != 1 || got[0] != "A9" {
		t.Errorf("NodeTypes = %v", got)
	}
}

func TestProfileValidate(t *testing.T) {
	p := NewProfile("", DomainSynthetic, "u", 10)
	if err := p.Validate(); err == nil {
		t.Error("unnamed profile accepted")
	}
	p = NewProfile("x", DomainSynthetic, "u", 0)
	if err := p.Validate(); err == nil {
		t.Error("zero job units accepted")
	}
	p = NewProfile("x", DomainSynthetic, "u", 1)
	if err := p.Validate(); err == nil {
		t.Error("profile without demands accepted")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry()
	p := NewProfile("dup", DomainSynthetic, "u", 1)
	if err := p.SetDemand("A9", Demand{CoreCycles: 1, Intensity: 1}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(p); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestMemcachedArrivalLimitedOnK10(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := reg.Lookup(NameMemcached)
	if err != nil {
		t.Fatal(err)
	}
	if mc.IORate <= 0 {
		t.Fatal("memcached needs an I/O request rate")
	}
	k10, err := mc.Demand("K10")
	if err != nil {
		t.Fatal(err)
	}
	if k10.IOReqs <= 0 {
		t.Error("K10 memcached should be request-arrival limited")
	}
	// Request payload: ~1 KiB per request (1 byte per unit / reqs per unit).
	bytesPerReq := 1 / k10.IOReqs
	if bytesPerReq < 512 || bytesPerReq > 2048 {
		t.Errorf("memcached K10 value size = %.0f B, want ~1 KiB", bytesPerReq)
	}
	a9, err := mc.Demand("A9")
	if err != nil {
		t.Fatal(err)
	}
	if a9.IOReqs != 0 {
		t.Error("A9 memcached should be bandwidth limited, not request limited")
	}
	// The A9's 100 Mb/s NIC implies ~1 wire byte per served byte.
	if a9.IOBytes < 0.8 || a9.IOBytes > 1.5 {
		t.Errorf("A9 memcached wire bytes per unit = %g, want ~1", float64(a9.IOBytes))
	}
}

func TestGenerateSyntheticDeterministic(t *testing.T) {
	cat := hardware.DefaultCatalog()
	spec := DefaultSyntheticSpec()
	a, err := Generate(cat, spec, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cat, spec, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("generated %d/%d profiles", len(a), len(b))
	}
	for i := range a {
		da, _ := a[i].Demand("A9")
		db, _ := b[i].Demand("A9")
		if da != db {
			t.Fatalf("profile %d differs across same-seed generations", i)
		}
	}
	c, err := Generate(cat, spec, 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	da, _ := a[0].Demand("A9")
	dc, _ := c[0].Demand("A9")
	if da == dc {
		t.Error("different seeds generated identical profiles")
	}
}

// TestGenerateSyntheticValid is a property test: every generated profile
// validates and covers every catalog node type.
func TestGenerateSyntheticValid(t *testing.T) {
	cat := hardware.DefaultCatalog()
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		profiles, err := Generate(cat, DefaultSyntheticSpec(), n, seed)
		if err != nil || len(profiles) != n {
			return false
		}
		for _, p := range profiles {
			if p.Validate() != nil {
				return false
			}
			for _, nt := range cat.Names() {
				if !p.Supports(nt) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	cat := hardware.DefaultCatalog()
	spec := DefaultSyntheticSpec()
	spec.MinCyclesPerUnit = 0
	if _, err := Generate(cat, spec, 1, 1); err == nil {
		t.Error("zero min cycles accepted")
	}
	spec = DefaultSyntheticSpec()
	spec.MaxCyclesPerUnit = spec.MinCyclesPerUnit - 1
	if _, err := Generate(cat, spec, 1, 1); err == nil {
		t.Error("inverted cycle bounds accepted")
	}
	if out, err := Generate(cat, DefaultSyntheticSpec(), 0, 1); err != nil || out != nil {
		t.Error("n=0 should return nil, nil")
	}
}

func TestPaperSpecUnknown(t *testing.T) {
	if _, err := PaperSpec("nope"); err == nil {
		t.Error("unknown paper workload accepted")
	}
}

func TestProfileString(t *testing.T) {
	p := NewProfile("x264", DomainStreaming, "frames", 1000)
	if err := p.SetDemand("A9", Demand{CoreCycles: 1, Intensity: 1}); err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, frag := range []string{"x264", "frames", "1 node types"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q missing %q", s, frag)
		}
	}
}

func TestWithJobUnits(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := reg.Lookup(NameEP)
	if err != nil {
		t.Fatal(err)
	}
	small, err := ep.WithJobUnits("EPs", ep.JobUnits/10)
	if err != nil {
		t.Fatal(err)
	}
	if small.Name != "EPs" || small.JobUnits != ep.JobUnits/10 {
		t.Errorf("scaled profile wrong: %v", small)
	}
	dBig, _ := ep.Demand("A9")
	dSmall, _ := small.Demand("A9")
	if dBig != dSmall {
		t.Error("per-unit demands changed under input scaling")
	}
	if small.Irregularity != ep.Irregularity || small.IORate != ep.IORate {
		t.Error("workload attributes not carried over")
	}
	if _, err := ep.WithJobUnits("bad", 0); err == nil {
		t.Error("zero job units accepted")
	}
}

func TestCalibratedDemandMagnitudes(t *testing.T) {
	// Sanity-check the physical plausibility of calibrated demands: EP
	// on A9 should cost a few hundred core cycles per random number.
	cat := hardware.DefaultCatalog()
	reg, err := PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := reg.Lookup(NameEP)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ep.Demand("A9")
	if err != nil {
		t.Fatal(err)
	}
	if d.CoreCycles < 100 || d.CoreCycles > 1000 {
		t.Errorf("EP on A9 costs %g cycles per random number; implausible", float64(d.CoreCycles))
	}
	if d.IOBytes > units.Bytes(1) {
		t.Errorf("EP should have negligible I/O, got %g B/unit", float64(d.IOBytes))
	}
}
