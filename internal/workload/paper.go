package workload

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/units"
)

// Canonical workload names used throughout the repository.
const (
	NameEP           = "EP"
	NameMemcached    = "memcached"
	NameX264         = "x264"
	NameBlackscholes = "blackscholes"
	NameJulius       = "Julius"
	NameRSA          = "RSA-2048"
)

// PaperNames lists the six paper workloads in Table 4/6/7 order.
func PaperNames() []string {
	return []string{NameEP, NameMemcached, NameX264, NameBlackscholes, NameJulius, NameRSA}
}

// PaperPPR holds Table 6 of the paper: performance-to-power ratio at the
// most energy-efficient configuration per node type, in work units per
// second per watt. (The K10 memcached entry is printed "2,68,067" in the
// paper; read as 268,067.)
var PaperPPR = map[string]map[string]float64{
	NameEP:           {"A9": 6048057, "K10": 1414922},
	NameMemcached:    {"A9": 5224004, "K10": 268067},
	NameX264:         {"A9": 0.7, "K10": 1},
	NameBlackscholes: {"A9": 11413, "K10": 2902},
	NameJulius:       {"A9": 69654, "K10": 21390},
	NameRSA:          {"A9": 968, "K10": 1091},
}

// PaperIPR holds Table 7's idle-to-peak ratios, carried at the precision
// implied by the table's DPR column (DPR = (1-IPR)*100).
var PaperIPR = map[string]map[string]float64{
	NameEP:           {"A9": 0.7403, "K10": 0.6543},
	NameMemcached:    {"A9": 0.8322, "K10": 0.8895},
	NameX264:         {"A9": 0.6446, "K10": 0.6159},
	NameBlackscholes: {"A9": 0.6789, "K10": 0.6270},
	NameJulius:       {"A9": 0.6952, "K10": 0.6190},
	NameRSA:          {"A9": 0.6438, "K10": 0.5881},
}

// PaperUnit names the unit of work per workload (Table 6).
var PaperUnit = map[string]string{
	NameEP:           "random numbers",
	NameMemcached:    "bytes",
	NameX264:         "frames",
	NameBlackscholes: "options",
	NameJulius:       "samples",
	NameRSA:          "verifications",
}

// paperDomains maps workload to its Table 4 application domain.
var paperDomains = map[string]Domain{
	NameEP:           DomainHPC,
	NameMemcached:    DomainWebServer,
	NameX264:         DomainStreaming,
	NameBlackscholes: DomainFinancial,
	NameJulius:       DomainSpeech,
	NameRSA:          DomainWebSec,
}

// paperStructures encodes the resource shape of each workload, chosen
// from the paper's own characterization:
//
//   - EP is embarrassingly parallel Monte-Carlo generation: compute
//     bound, almost no memory or network traffic.
//   - memcached "exerts complex service demands on core, memory and I/O
//     devices" and is served over the NIC: I/O bound. On the A9 the
//     100 Mb/s NIC saturates (bandwidth limited); on the K10 the GigE
//     link has headroom and service is request-arrival limited.
//   - x264 "is memory-bound" (Section III-A, quoting PARSEC).
//   - blackscholes is a compute-bound option pricer with a modest
//     working set.
//   - Julius mixes acoustic scoring (compute) with language-model
//     lookups (memory).
//   - RSA-2048 verification is pure integer compute.
type structureSpec struct {
	s       Structure
	arrival bool // I/O time is request-arrival limited, not bandwidth limited
}

var paperStructures = map[string]map[string]structureSpec{
	NameEP: {
		"A9":  {s: Structure{CoreFrac: 1, MemFrac: 0.05, IOFrac: 0.002}},
		"K10": {s: Structure{CoreFrac: 1, MemFrac: 0.05, IOFrac: 0.002}},
	},
	NameMemcached: {
		"A9":  {s: Structure{CoreFrac: 0.35, MemFrac: 0.20, IOFrac: 1}},
		"K10": {s: Structure{CoreFrac: 0.35, MemFrac: 0.20, IOFrac: 1}, arrival: true},
	},
	NameX264: {
		"A9":  {s: Structure{CoreFrac: 0.8, MemFrac: 1, IOFrac: 0.02}},
		"K10": {s: Structure{CoreFrac: 0.8, MemFrac: 1, IOFrac: 0.02}},
	},
	NameBlackscholes: {
		"A9":  {s: Structure{CoreFrac: 1, MemFrac: 0.15, IOFrac: 0.001}},
		"K10": {s: Structure{CoreFrac: 1, MemFrac: 0.15, IOFrac: 0.001}},
	},
	NameJulius: {
		"A9":  {s: Structure{CoreFrac: 1, MemFrac: 0.50, IOFrac: 0.005}},
		"K10": {s: Structure{CoreFrac: 1, MemFrac: 0.50, IOFrac: 0.005}},
	},
	NameRSA: {
		"A9":  {s: Structure{CoreFrac: 1, MemFrac: 0.02, IOFrac: 0.001}},
		"K10": {s: Structure{CoreFrac: 1, MemFrac: 0.02, IOFrac: 0.001}},
	},
}

// paperJobUnits sizes one job of each workload. Sizes are chosen so that
// the service time on the Figure 9-12 reference cluster (32 A9 + 12 K10)
// lands in the response-time regimes the figures show: tens of
// milliseconds for EP (Fig. 11's axis is in ms) and seconds for x264
// (Fig. 12's axis is in s).
var paperJobUnits = map[string]float64{
	NameEP:           16.5e6, // random numbers: ~10 ms on 32A9+12K10
	NameMemcached:    2e6,    // bytes of key-value traffic per batch
	NameX264:         1000,   // frames: ~1 s on 32A9+12K10
	NameBlackscholes: 10e6,   // options
	NameJulius:       2.4e6,  // 16 kHz audio samples (~2.5 min of speech)
	NameRSA:          100e3,  // signature verifications
}

// paperIORates gives the I/O request inter-arrival rate λ_I/O for the
// workloads whose I/O is request limited. memcached on the GigE K10 node
// serves ~1 KiB values; the rate below makes one request carry ~1 KiB.
var paperIORates = map[string]units.PerSecond{
	NameMemcached: 13240,
}

// paperIrregularity encodes how much data-dependent behaviour each
// program has beyond its mean service demands: Monte-Carlo EP and RSA
// verification are essentially regular; the Viterbi beam search in
// Julius and the per-request variance of memcached are not. These values
// only affect the discrete-event simulator (and therefore the Table 4
// validation errors); the analytical model never sees them.
var paperIrregularity = map[string]float64{
	NameEP:           0.012,
	NameMemcached:    0.055,
	NameX264:         0.035,
	NameBlackscholes: 0.020,
	NameJulius:       0.110,
	NameRSA:          0.006,
}

// PaperSpec returns the calibration spec of one paper workload.
func PaperSpec(name string) (CalibratedProfileSpec, error) {
	ppr, ok := PaperPPR[name]
	if !ok {
		return CalibratedProfileSpec{}, fmt.Errorf("workload: %q is not a paper workload", name)
	}
	ipr := PaperIPR[name]
	structs := paperStructures[name]
	spec := CalibratedProfileSpec{
		Name:         name,
		Domain:       paperDomains[name],
		Unit:         PaperUnit[name],
		JobUnits:     paperJobUnits[name],
		IORate:       paperIORates[name],
		Irregularity: paperIrregularity[name],
		Structure:    make(map[string]Structure, len(structs)),
		Targets:      make(map[string]Targets, len(ppr)),
	}
	for nt, spec2 := range structs {
		spec.Structure[nt] = spec2.s
	}
	for nt := range ppr {
		spec.Targets[nt] = Targets{PPR: ppr[nt], IPR: ipr[nt]}
	}
	return spec, nil
}

// buildPaperProfile calibrates one paper workload against the catalog,
// applying the arrival-limited I/O conversion where the structure calls
// for it.
func buildPaperProfile(name string, catalog *hardware.Catalog) (*Profile, error) {
	spec, err := PaperSpec(name)
	if err != nil {
		return nil, err
	}
	p, err := spec.Build(catalog)
	if err != nil {
		return nil, err
	}
	// Re-express arrival-limited I/O: the model time is identical
	// (max(transfer, reqs/λ) is pinned by the request term instead of
	// the transfer term), but the simulator distinguishes wire bytes
	// from request waits.
	for nt, sspec := range paperStructures[name] {
		if !sspec.arrival || spec.IORate <= 0 {
			continue
		}
		node, err := catalog.Lookup(nt)
		if err != nil {
			return nil, err
		}
		d, err := p.Demand(nt)
		if err != nil {
			return nil, err
		}
		// t_io implied by the bandwidth-limited calibration.
		tIO := float64(d.IOBytes) / float64(node.NICBandwidth)
		d.IOReqs = tIO * float64(spec.IORate)
		// The wire payload is the nominal unit itself (1 byte per byte
		// served, memcached's unit) — well under the bandwidth limit.
		d.IOBytes = 1
		if err := p.SetDemand(nt, d); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// PaperRegistry calibrates all six paper workloads against the catalog
// and returns them in a registry.
func PaperRegistry(catalog *hardware.Catalog) (*Registry, error) {
	r := NewRegistry()
	for _, name := range PaperNames() {
		p, err := buildPaperProfile(name, catalog)
		if err != nil {
			return nil, err
		}
		if err := r.Register(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// MustPaperRegistry is PaperRegistry for static setups known to be valid;
// it panics on calibration failure.
func MustPaperRegistry(catalog *hardware.Catalog) *Registry {
	r, err := PaperRegistry(catalog)
	if err != nil {
		panic(err)
	}
	return r
}
