package workload

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/units"
)

// Targets holds the published operating point of one (workload, node
// type) pair that calibration inverts:
//
//   - PPR: throughput per watt at the most energy-efficient configuration
//     (Table 6), defined over the busy power;
//   - IPR: idle-to-peak power ratio for the workload (Table 7), which
//     fixes the busy power as P_busy = P_idle / IPR.
type Targets struct {
	PPR float64 // work units per second per watt
	IPR float64 // P_idle / P_busy, in (0, 1]
}

// Validate checks the targets.
func (t Targets) Validate() error {
	if t.PPR <= 0 {
		return fmt.Errorf("workload: PPR target must be positive, got %g", t.PPR)
	}
	if t.IPR <= 0 || t.IPR > 1 {
		return fmt.Errorf("workload: IPR target must be in (0,1], got %g", t.IPR)
	}
	return nil
}

// Calibrate derives the demand vector for one node type from its targets
// and the unit structure, assuming the node runs all cores at maximum
// frequency (the paper computes Table 6 and 7 at the most
// energy-efficient full-node operating point).
//
// The derivation inverts the forward model:
//
//	t_unit      = 1 / (PPR × P_busy)            (seconds per work unit)
//	t_core      = Structure.CoreFrac × t_unit
//	t_mem       = Structure.MemFrac  × t_unit
//	t_io        = Structure.IOFrac   × t_unit
//	CoreCycles  = t_core × cores × f_max
//	MemCycles   = t_mem × f_max
//	IOBytes     = t_io × NIC bandwidth
//
// and then solves the busy-power balance for the CPU intensity ι:
//
//	P_busy = P_idle + ι·P_act·c·(t_core/t_unit) + P_stall·c·(t_stall/t_unit)
//	       + P_mem·(t_mem/t_unit) + P_net·(t_io/t_unit)
//
// with t_stall = max(0, min(t_mem, t_unit) − t_core), the memory time the
// out-of-order cores cannot hide. ι outside (0, MaxIntensity] means the
// structure cannot reach the target power on this node and is an error.
func Calibrate(node *hardware.NodeType, s Structure, t Targets) (Demand, error) {
	if err := nodeTypeOrErr(node); err != nil {
		return Demand{}, err
	}
	if err := s.Validate(); err != nil {
		return Demand{}, err
	}
	if err := t.Validate(); err != nil {
		return Demand{}, err
	}

	p := node.PowerAt(node.FMax())
	pBusy := float64(p.Idle) / t.IPR
	if pBusy <= float64(p.Idle) {
		return Demand{}, fmt.Errorf("workload: busy power %.3g not above idle %.3g", pBusy, float64(p.Idle))
	}
	throughput := t.PPR * pBusy // units per second per node
	tUnit := 1 / throughput

	tCore := s.CoreFrac * tUnit
	tMem := s.MemFrac * tUnit
	tIO := s.IOFrac * tUnit
	tStall := tMem - tCore
	if tStall < 0 {
		tStall = 0
	}

	c := float64(node.Cores)
	// Non-CPU power contributions over the unit.
	fixed := float64(p.CPUStallPerCore)*c*(tStall/tUnit) +
		float64(p.Mem)*(tMem/tUnit) +
		float64(p.Net)*(tIO/tUnit)
	dyn := pBusy - float64(p.Idle) - fixed
	coreShare := float64(p.CPUActPerCore) * c * (tCore / tUnit)
	if coreShare <= 0 {
		return Demand{}, fmt.Errorf("workload: structure has no core time, cannot absorb %.3g W", dyn)
	}
	iota := dyn / coreShare
	const maxIntensity = 1.5
	if iota <= 0 {
		return Demand{}, fmt.Errorf(
			"workload: target busy power %.3g W below the structure's floor (%.3g W non-CPU components) on %s",
			pBusy, float64(p.Idle)+fixed, node.Name)
	}
	if iota > maxIntensity {
		return Demand{}, fmt.Errorf(
			"workload: required CPU intensity %.3g exceeds %.2g on %s; structure or node power parameters inconsistent with targets",
			iota, maxIntensity, node.Name)
	}

	fMax := float64(node.FMax())
	d := Demand{
		CoreCycles: units.Cycles(tCore * c * fMax),
		MemCycles:  units.Cycles(tMem * fMax),
		IOBytes:    units.Bytes(tIO * float64(node.NICBandwidth)),
		Intensity:  iota,
	}
	if err := d.Validate(); err != nil {
		return Demand{}, err
	}
	return d, nil
}

// CalibratedProfileSpec describes one paper workload: its metadata, unit
// structure, and per-node calibration targets.
type CalibratedProfileSpec struct {
	Name         string
	Domain       Domain
	Unit         string
	JobUnits     float64
	IORate       units.PerSecond
	Irregularity float64
	Structure    map[string]Structure // per node-type name
	Targets      map[string]Targets   // per node-type name
}

// Build calibrates the spec against the node types in the catalog and
// returns the finished profile.
func (spec CalibratedProfileSpec) Build(catalog *hardware.Catalog) (*Profile, error) {
	p := NewProfile(spec.Name, spec.Domain, spec.Unit, spec.JobUnits)
	p.IORate = spec.IORate
	p.Irregularity = spec.Irregularity
	for nodeName, tgt := range spec.Targets {
		node, err := catalog.Lookup(nodeName)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
		}
		s, ok := spec.Structure[nodeName]
		if !ok {
			return nil, fmt.Errorf("workload %s: no structure for node type %s", spec.Name, nodeName)
		}
		d, err := Calibrate(node, s, tgt)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", spec.Name, err)
		}
		if err := p.SetDemand(nodeName, d); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
