// Package workload describes the programs executed on the cluster as
// service-demand profiles: how many core cycles, memory cycles and I/O
// bytes one unit of work costs on each node type, plus how intensely the
// work exercises the CPU's functional units (which sets its power draw).
//
// The paper obtained these demands by running the real programs under
// perf on physical nodes ("Workload Characterization" in Fig. 1). This
// package substitutes a calibration solver that inverts the paper's
// published operating points — throughput-per-watt (Table 6) and
// idle-to-peak power ratio (Table 7) — into demand vectors for the node
// models. The forward model then reproduces those tables, which the test
// suite asserts.
package workload

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/hardware"
	"repro/internal/units"
)

// Domain labels the application domain of a workload (Table 4).
type Domain string

// Application domains of the paper's workload mix.
const (
	DomainHPC       Domain = "HPC"
	DomainWebServer Domain = "Web Server"
	DomainStreaming Domain = "Streaming video"
	DomainFinancial Domain = "Financial"
	DomainSpeech    Domain = "Speech recognition"
	DomainWebSec    Domain = "Web security"
	DomainSynthetic Domain = "Synthetic"
)

// Demand is the per-work-unit resource cost of a workload on one node
// type, the quantities the Table 2 time model consumes.
type Demand struct {
	// CoreCycles is the number of work cycles per unit, spread across the
	// active cores (cycles_core in Table 1).
	CoreCycles units.Cycles
	// MemCycles is the number of memory-stall cycles per unit, serialized
	// on the single shared memory controller (cycles_mem).
	MemCycles units.Cycles
	// IOBytes is the network I/O volume per unit.
	IOBytes units.Bytes
	// IOReqs is the number of discrete I/O requests per unit, which
	// interacts with the workload's I/O inter-arrival limit λ_I/O.
	IOReqs float64
	// Intensity scales the CPU active power while executing work cycles.
	// It captures the instruction mix: SIMD-heavy encoders draw more per
	// cycle than scalar integer code. 1.0 means the node's measured
	// P_CPU,act micro-benchmark draw.
	Intensity float64
}

// Validate checks the demand vector.
func (d Demand) Validate() error {
	if d.CoreCycles < 0 || d.MemCycles < 0 || d.IOBytes < 0 || d.IOReqs < 0 {
		return errors.New("workload: negative demand component")
	}
	if d.CoreCycles == 0 && d.MemCycles == 0 && d.IOBytes == 0 {
		return errors.New("workload: demand has no resource usage")
	}
	if d.Intensity <= 0 {
		return errors.New("workload: non-positive intensity")
	}
	return nil
}

// Profile is a complete workload description.
type Profile struct {
	// Name is the program name, e.g. "EP" or "x264".
	Name string
	// Domain is the application domain.
	Domain Domain
	// Unit names the unit of work, e.g. "random numbers" or "frames".
	Unit string
	// JobUnits is the amount of work constituting one job (one batch
	// submitted to the cluster); utilization sweeps vary the number of
	// jobs per observation window.
	JobUnits float64
	// IORate is the workload's I/O request inter-arrival rate λ_I/O;
	// zero means I/O is never arrival-limited.
	IORate units.PerSecond
	// Irregularity captures data-dependent control flow the analytical
	// model cannot see: the mean fractional slowdown (and half of it as
	// jitter) the discrete-event simulator applies on top of the modeled
	// service demands. It is the dominant source of the model-versus-
	// measured validation error (Table 4). Zero means fully regular.
	Irregularity float64
	// demands maps node-type name to the unit demand on that node type.
	demands map[string]Demand
}

// NewProfile creates a profile with no per-node demands yet.
func NewProfile(name string, domain Domain, unit string, jobUnits float64) *Profile {
	return &Profile{
		Name:     name,
		Domain:   domain,
		Unit:     unit,
		JobUnits: jobUnits,
		demands:  make(map[string]Demand),
	}
}

// SetDemand installs the demand vector for a node type.
func (p *Profile) SetDemand(nodeType string, d Demand) error {
	if err := d.Validate(); err != nil {
		return fmt.Errorf("workload %s on %s: %w", p.Name, nodeType, err)
	}
	p.demands[nodeType] = d
	return nil
}

// Demand returns the demand vector for a node type.
func (p *Profile) Demand(nodeType string) (Demand, error) {
	d, ok := p.demands[nodeType]
	if !ok {
		return Demand{}, fmt.Errorf("workload %s has no demand for node type %q", p.Name, nodeType)
	}
	return d, nil
}

// Supports reports whether the profile has a demand for the node type.
func (p *Profile) Supports(nodeType string) bool {
	_, ok := p.demands[nodeType]
	return ok
}

// NodeTypes returns the node types the profile covers, sorted.
func (p *Profile) NodeTypes() []string {
	out := make([]string, 0, len(p.demands))
	for k := range p.demands {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Validate checks the profile for completeness against the node types it
// claims to support.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return errors.New("workload: profile needs a name")
	}
	if p.JobUnits <= 0 {
		return fmt.Errorf("workload %s: job units must be positive", p.Name)
	}
	if len(p.demands) == 0 {
		return fmt.Errorf("workload %s: no node demands", p.Name)
	}
	for nt, d := range p.demands {
		if err := d.Validate(); err != nil {
			return fmt.Errorf("workload %s on %s: %w", p.Name, nt, err)
		}
	}
	return nil
}

func (p *Profile) String() string {
	return fmt.Sprintf("%s(%s, %g %s/job, %d node types)",
		p.Name, p.Domain, p.JobUnits, p.Unit, len(p.demands))
}

// WithJobUnits returns a copy of the profile whose job carries the given
// amount of work — the paper's P_s, "program P with smaller input size"
// (Table 1). Per-unit demands are shared (they do not depend on the
// input size under the model's linearity).
func (p *Profile) WithJobUnits(name string, jobUnits float64) (*Profile, error) {
	if jobUnits <= 0 {
		return nil, fmt.Errorf("workload %s: job units must be positive", p.Name)
	}
	out := NewProfile(name, p.Domain, p.Unit, jobUnits)
	out.IORate = p.IORate
	out.Irregularity = p.Irregularity
	for nt, d := range p.demands {
		out.demands[nt] = d
	}
	return out, nil
}

// Structure describes the shape of one work unit relative to its total
// unit time at full cores and maximum frequency: which resource binds and
// how busy the others are. Fractions are relative to the unit time; the
// binding resource has fraction 1.
type Structure struct {
	// CoreFrac is T_core / T_unit.
	CoreFrac float64
	// MemFrac is T_mem / T_unit.
	MemFrac float64
	// IOFrac is T_I/O / T_unit.
	IOFrac float64
}

// Validate checks that exactly the binding resource has fraction 1 and
// all fractions are in [0, 1].
func (s Structure) Validate() error {
	max := s.CoreFrac
	if s.MemFrac > max {
		max = s.MemFrac
	}
	if s.IOFrac > max {
		max = s.IOFrac
	}
	if max < 0.999 || max > 1.001 {
		return fmt.Errorf("workload: structure must have binding fraction 1, got max %g", max)
	}
	for _, f := range []float64{s.CoreFrac, s.MemFrac, s.IOFrac} {
		if f < 0 || f > 1.001 {
			return fmt.Errorf("workload: structure fraction %g out of [0,1]", f)
		}
	}
	return nil
}

// Registry is a set of workload profiles keyed by name.
type Registry struct {
	profiles map[string]*Profile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{profiles: make(map[string]*Profile)}
}

// Register adds a validated profile, failing on duplicates.
func (r *Registry) Register(p *Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if _, ok := r.profiles[p.Name]; ok {
		return fmt.Errorf("workload: profile %q already registered", p.Name)
	}
	r.profiles[p.Name] = p
	return nil
}

// Lookup returns the profile with the given name.
func (r *Registry) Lookup(name string) (*Profile, error) {
	p, ok := r.profiles[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown profile %q", name)
	}
	return p, nil
}

// Names returns the registered profile names in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.profiles))
	for k := range r.profiles {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of registered profiles.
func (r *Registry) Len() int { return len(r.profiles) }

// nodeTypeOrErr is a helper shared by the calibration code.
func nodeTypeOrErr(n *hardware.NodeType) error {
	if n == nil {
		return errors.New("workload: nil node type")
	}
	return n.Validate()
}
