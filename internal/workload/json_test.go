package workload

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hardware"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PaperNames() {
		p, err := reg.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadProfileJSON(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Name != p.Name || back.JobUnits != p.JobUnits ||
			back.IORate != p.IORate || back.Irregularity != p.Irregularity {
			t.Errorf("%s: header changed in round trip", name)
		}
		for _, nt := range p.NodeTypes() {
			a, _ := p.Demand(nt)
			b, err := back.Demand(nt)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, nt, err)
			}
			if a != b {
				t.Errorf("%s/%s: demand changed: %+v vs %+v", name, nt, a, b)
			}
		}
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	cat := hardware.DefaultCatalog()
	reg, err := PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRegistryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != reg.Len() {
		t.Errorf("registry round trip lost profiles: %d vs %d", back.Len(), reg.Len())
	}
}

func TestReadProfileJSONValidates(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"unknown field": `{"name":"x","unit":"u","job_units":1,"demands":{},"bogus":1}`,
		"no demands":    `{"name":"x","unit":"u","job_units":1,"demands":{}}`,
		"zero units":    `{"name":"x","unit":"u","job_units":0,"demands":{"A9":{"core_cycles_per_unit":1,"intensity":1}}}`,
		"bad intensity": `{"name":"x","unit":"u","job_units":1,"demands":{"A9":{"core_cycles_per_unit":1,"intensity":0}}}`,
	}
	for label, in := range cases {
		if _, err := ReadProfileJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestReadProfileJSONDefaultsDomain(t *testing.T) {
	in := `{"name":"x","unit":"ops","job_units":10,
		"demands":{"A9":{"core_cycles_per_unit":100,"intensity":0.5}}}`
	p, err := ReadProfileJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if p.Domain != DomainSynthetic {
		t.Errorf("default domain = %q", p.Domain)
	}
}
