package workload

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/stats"
	"repro/internal/units"
)

// SyntheticSpec controls random workload generation. Generated workloads
// are used by property tests and by sensitivity studies that sweep the
// space of resource shapes beyond the paper's six programs.
type SyntheticSpec struct {
	// NamePrefix prefixes generated workload names.
	NamePrefix string
	// MinCyclesPerUnit and MaxCyclesPerUnit bound the core cycles drawn
	// per work unit.
	MinCyclesPerUnit, MaxCyclesPerUnit float64
	// MemRatioMax bounds memory cycles as a fraction of core cycles.
	MemRatioMax float64
	// IOProb is the probability a generated workload does network I/O.
	IOProb float64
	// MaxIOBytesPerUnit bounds the I/O volume per unit when present.
	MaxIOBytesPerUnit float64
	// JobUnits is the work per job (defaulted if zero).
	JobUnits float64
}

// DefaultSyntheticSpec returns generation bounds that produce workloads
// in the same regime as the paper's six.
func DefaultSyntheticSpec() SyntheticSpec {
	return SyntheticSpec{
		NamePrefix:        "synth",
		MinCyclesPerUnit:  50,
		MaxCyclesPerUnit:  5000,
		MemRatioMax:       2.0,
		IOProb:            0.3,
		MaxIOBytesPerUnit: 64,
		JobUnits:          1e6,
	}
}

// Generate produces n random workload profiles covering every node type
// in the catalog. The same seed always yields the same profiles.
func Generate(catalog *hardware.Catalog, spec SyntheticSpec, n int, seed uint64) ([]*Profile, error) {
	if n <= 0 {
		return nil, nil
	}
	if spec.MaxCyclesPerUnit < spec.MinCyclesPerUnit || spec.MinCyclesPerUnit <= 0 {
		return nil, fmt.Errorf("workload: invalid cycle bounds [%g, %g]",
			spec.MinCyclesPerUnit, spec.MaxCyclesPerUnit)
	}
	jobUnits := spec.JobUnits
	if jobUnits <= 0 {
		jobUnits = 1e6
	}
	rng := stats.NewRNG(seed)
	names := catalog.Names()
	out := make([]*Profile, 0, n)
	for i := 0; i < n; i++ {
		p := NewProfile(fmt.Sprintf("%s-%04d", spec.NamePrefix, i), DomainSynthetic, "units", jobUnits)
		doesIO := rng.Float64() < spec.IOProb
		// The same logical program has correlated demands across node
		// types: draw a base shape once, then perturb per node type to
		// mimic ISA differences.
		baseCycles := spec.MinCyclesPerUnit +
			rng.Float64()*(spec.MaxCyclesPerUnit-spec.MinCyclesPerUnit)
		memRatio := rng.Float64() * spec.MemRatioMax
		ioBytes := 0.0
		if doesIO {
			ioBytes = rng.Float64() * spec.MaxIOBytesPerUnit
		}
		for _, nt := range names {
			isaFactor := 0.5 + rng.Float64() // per-node efficiency 0.5-1.5x
			d := Demand{
				CoreCycles: units.Cycles(baseCycles * isaFactor),
				MemCycles:  units.Cycles(baseCycles * memRatio * (0.8 + 0.4*rng.Float64())),
				IOBytes:    units.Bytes(ioBytes),
				Intensity:  0.2 + 0.8*rng.Float64(),
			}
			if err := p.SetDemand(nt, d); err != nil {
				return nil, err
			}
		}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
