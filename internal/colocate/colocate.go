// Package colocate studies two workloads sharing one heterogeneous node
// pool — the co-location setting the paper's related work surveys
// (Bubble-Up, Bubble-Flux) but its evaluation leaves open. The question
// it answers is specific to inter-node heterogeneity: when an EP-like
// workload (wimpy-favoring PPR) and an x264-like workload
// (brawny-favoring PPR) share a pool of A9 and K10 nodes, how much
// energy does *affinity* partitioning (each workload gets the node type
// it is efficient on) save over proportional splitting?
//
// Nodes are partitioned, not time-shared: each workload runs on its own
// disjoint sub-cluster, so there is no interference term — the paper's
// model applies unchanged to each side.
package colocate

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// Pool is the shared node inventory.
type Pool struct {
	// Types lists the node types and how many of each the pool holds.
	Types  []*hardware.NodeType
	Counts []int
}

// Validate checks the pool.
func (p Pool) Validate() error {
	if len(p.Types) == 0 || len(p.Types) != len(p.Counts) {
		return errors.New("colocate: malformed pool")
	}
	for i, t := range p.Types {
		if t == nil {
			return errors.New("colocate: nil node type")
		}
		if err := t.Validate(); err != nil {
			return err
		}
		if p.Counts[i] < 0 {
			return fmt.Errorf("colocate: negative count for %s", t.Name)
		}
	}
	return nil
}

// Partition assigns a slice of the pool to each of the two workloads:
// A[i] nodes of type i to the first workload, Counts[i]-A[i] to the
// second.
type Partition struct {
	A []int
}

// Assignment is one evaluated partition.
type Assignment struct {
	Partition Partition
	// TimeA/TimeB are the per-job execution times of each workload on
	// its sub-cluster; EnergyA/EnergyB the per-job energies.
	TimeA, TimeB     units.Seconds
	EnergyA, EnergyB units.Joules
	// TotalEnergy is EnergyA + EnergyB (one job each).
	TotalEnergy units.Joules
}

// config builds the cluster configuration for one side of a partition;
// ok is false when that side has no nodes.
func (p Pool) config(counts []int) (cluster.Config, bool) {
	var groups []cluster.Group
	for i, t := range p.Types {
		if counts[i] > 0 {
			groups = append(groups, cluster.FullNodes(t, counts[i]))
		}
	}
	if len(groups) == 0 {
		return cluster.Config{}, false
	}
	cfg, err := cluster.NewConfig(groups...)
	if err != nil {
		return cluster.Config{}, false
	}
	return cfg, true
}

// Evaluate runs both workloads on the partition. Both sides must be
// non-empty and support their node types.
func (p Pool) Evaluate(part Partition, wlA, wlB *workload.Profile, opt model.Options) (Assignment, error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, err
	}
	if len(part.A) != len(p.Types) {
		return Assignment{}, errors.New("colocate: partition arity mismatch")
	}
	b := make([]int, len(part.A))
	for i, a := range part.A {
		if a < 0 || a > p.Counts[i] {
			return Assignment{}, fmt.Errorf("colocate: partition assigns %d of %d %s nodes", a, p.Counts[i], p.Types[i].Name)
		}
		b[i] = p.Counts[i] - a
	}
	cfgA, okA := p.config(part.A)
	cfgB, okB := p.config(b)
	if !okA || !okB {
		return Assignment{}, errors.New("colocate: empty side")
	}
	resA, err := model.Evaluate(cfgA, wlA, opt)
	if err != nil {
		return Assignment{}, err
	}
	resB, err := model.Evaluate(cfgB, wlB, opt)
	if err != nil {
		return Assignment{}, err
	}
	return Assignment{
		Partition:   part,
		TimeA:       resA.Time,
		TimeB:       resB.Time,
		EnergyA:     resA.Energy,
		EnergyB:     resB.Energy,
		TotalEnergy: resA.Energy + resB.Energy,
	}, nil
}

// Best searches every partition of the pool between the two workloads
// and returns the one minimizing total energy subject to optional
// per-workload deadlines (zero disables a deadline). It also returns
// the proportional split (each side gets about half of every type) for
// comparison.
func (p Pool) Best(wlA, wlB *workload.Profile, deadlineA, deadlineB units.Seconds, opt model.Options) (best, proportional Assignment, err error) {
	if err := p.Validate(); err != nil {
		return Assignment{}, Assignment{}, err
	}
	// The proportional baseline: half of every type to each side
	// (rounding favors side A).
	half := make([]int, len(p.Counts))
	for i, c := range p.Counts {
		half[i] = (c + 1) / 2
	}
	proportional, err = p.Evaluate(Partition{A: half}, wlA, wlB, opt)
	if err != nil {
		return Assignment{}, Assignment{}, fmt.Errorf("colocate: proportional baseline: %w", err)
	}

	found := false
	bestEnergy := math.Inf(1)
	assign := make([]int, len(p.Counts))
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(p.Counts) {
			part := Partition{A: append([]int(nil), assign...)}
			a, err := p.Evaluate(part, wlA, wlB, opt)
			if err != nil {
				return nil // empty side or unsupported: skip
			}
			if deadlineA > 0 && a.TimeA > deadlineA {
				return nil
			}
			if deadlineB > 0 && a.TimeB > deadlineB {
				return nil
			}
			if float64(a.TotalEnergy) < bestEnergy {
				bestEnergy = float64(a.TotalEnergy)
				best = a
				found = true
			}
			return nil
		}
		for v := 0; v <= p.Counts[i]; v++ {
			assign[i] = v
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return Assignment{}, Assignment{}, err
	}
	if !found {
		return Assignment{}, Assignment{}, errors.New("colocate: no partition satisfies the deadlines")
	}
	return best, proportional, nil
}

// AffinityGain returns the fractional energy saving of the best
// partition over the proportional split.
func AffinityGain(best, proportional Assignment) float64 {
	if proportional.TotalEnergy <= 0 {
		return 0
	}
	return 1 - float64(best.TotalEnergy)/float64(proportional.TotalEnergy)
}
