package colocate

import (
	"testing"

	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func pool(t *testing.T, nA9, nK10 int) (Pool, *workload.Registry) {
	t.Helper()
	cat := hardware.DefaultCatalog()
	reg, err := workload.PaperRegistry(cat)
	if err != nil {
		t.Fatal(err)
	}
	a9, _ := cat.Lookup("A9")
	k10, _ := cat.Lookup("K10")
	return Pool{Types: []*hardware.NodeType{a9, k10}, Counts: []int{nA9, nK10}}, reg
}

// TestAffinityBeatsProportional is the headline co-location result:
// when EP (wimpy-favoring) and x264 (brawny-favoring) share a pool, the
// best partition routes each workload to its efficient node type and
// saves energy over splitting every type in half.
func TestAffinityBeatsProportional(t *testing.T) {
	p, reg := pool(t, 16, 8)
	ep, err := reg.Lookup(workload.NameEP)
	if err != nil {
		t.Fatal(err)
	}
	x264, err := reg.Lookup(workload.NameX264)
	if err != nil {
		t.Fatal(err)
	}
	best, prop, err := p.Best(ep, x264, 0, 0, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gain := AffinityGain(best, prop)
	if gain <= 0 {
		t.Fatalf("affinity gain %.3f, want positive", gain)
	}
	// The optimal partition gives EP (side A) most of the A9 nodes and
	// x264 most of the K10 nodes.
	a9ToEP := best.Partition.A[0]
	k10ToEP := best.Partition.A[1]
	if a9ToEP < 12 {
		t.Errorf("EP got only %d of 16 A9 nodes", a9ToEP)
	}
	if k10ToEP > 2 {
		t.Errorf("EP got %d K10 nodes; x264 should hold the brawny side", k10ToEP)
	}
	t.Logf("best partition: EP gets %dxA9+%dxK10; gain %.1f%%", a9ToEP, k10ToEP, 100*gain)
}

// TestDeadlinesConstrainPartition: a tight deadline for x264 forces
// brawny capacity to its side even when energy would prefer otherwise.
func TestDeadlinesConstrainPartition(t *testing.T) {
	p, reg := pool(t, 8, 4)
	ep, _ := reg.Lookup(workload.NameEP)
	x264, _ := reg.Lookup(workload.NameX264)

	relaxed, _, err := p.Best(ep, x264, 0, 0, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A deadline slightly tighter than the relaxed optimum's x264 time.
	// The relaxed optimum already gives x264 every brawny node, so only
	// a few percent of additional speed is available (adding wimpy nodes
	// barely moves a brawny-dominated x264); 3% is reachable, 20% not.
	deadline := units.Seconds(float64(relaxed.TimeB) * 0.97)
	constrained, _, err := p.Best(ep, x264, 0, deadline, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if constrained.TimeB > deadline {
		t.Errorf("constrained partition misses the deadline: %v > %v", constrained.TimeB, deadline)
	}
	if constrained.TotalEnergy < relaxed.TotalEnergy {
		t.Errorf("constrained optimum %v cheaper than relaxed %v", constrained.TotalEnergy, relaxed.TotalEnergy)
	}
	// An impossible deadline errors.
	if _, _, err := p.Best(ep, x264, 0, units.Seconds(1e-9), model.Options{}); err == nil {
		t.Error("impossible deadline accepted")
	}
}

// TestPartitionConservation: every evaluated partition uses each node
// exactly once (sides are disjoint and cover the pool).
func TestPartitionConservation(t *testing.T) {
	p, reg := pool(t, 5, 3)
	ep, _ := reg.Lookup(workload.NameEP)
	bs, _ := reg.Lookup(workload.NameBlackscholes)
	a, err := p.Evaluate(Partition{A: []int{2, 1}}, ep, bs, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeA <= 0 || a.TimeB <= 0 || a.TotalEnergy != a.EnergyA+a.EnergyB {
		t.Errorf("malformed assignment: %+v", a)
	}
}

func TestEvaluateValidation(t *testing.T) {
	p, reg := pool(t, 4, 2)
	ep, _ := reg.Lookup(workload.NameEP)
	bs, _ := reg.Lookup(workload.NameBlackscholes)
	if _, err := p.Evaluate(Partition{A: []int{1}}, ep, bs, model.Options{}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := p.Evaluate(Partition{A: []int{9, 0}}, ep, bs, model.Options{}); err == nil {
		t.Error("over-assignment accepted")
	}
	if _, err := p.Evaluate(Partition{A: []int{4, 2}}, ep, bs, model.Options{}); err == nil {
		t.Error("empty B side accepted")
	}
	bad := Pool{Types: []*hardware.NodeType{nil}, Counts: []int{1}}
	if err := bad.Validate(); err == nil {
		t.Error("nil type accepted")
	}
}

// TestSameWorkloadDegeneracy documents an objective-function subtlety:
// without deadlines, minimizing the SUM of per-job energies degenerates
// even for identical workloads — the optimizer starves one side down to
// the most efficient nodes and lets its job run long (energy per unit
// is all that matters when time is unconstrained). Deadlines that pin
// both sides to the proportional split's speed remove the degeneracy,
// and the gain collapses to rounding effects.
func TestSameWorkloadDegeneracy(t *testing.T) {
	p, reg := pool(t, 8, 4)
	ep, _ := reg.Lookup(workload.NameEP)
	unconstrained, prop, err := p.Best(ep, ep, 0, 0, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gain := AffinityGain(unconstrained, prop); gain <= 0 {
		t.Errorf("unconstrained same-workload gain %.3f; expected the degeneracy to find savings", gain)
	}
	constrained, prop2, err := p.Best(ep, ep, prop.TimeA, prop.TimeB, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if gain := AffinityGain(constrained, prop2); gain < 0 || gain > 0.08 {
		t.Errorf("deadline-pinned same-workload gain %.3f, want small and nonnegative", gain)
	}
}
