// Package microbench defines the characterization micro-benchmarks of
// Section II-B: cpuburn maximizes CPU utilization to expose P_CPU,act,
// memstall generates a stream of cache misses to expose P_CPU,stall, and
// netblast saturates the NIC to expose P_net. They are expressed as
// workload profiles and executed on the cluster simulator, mirroring how
// the paper ran them on physical nodes under the power monitor.
package microbench

import (
	"fmt"

	"repro/internal/hardware"
	"repro/internal/units"
	"repro/internal/workload"
)

// Names of the micro-benchmarks.
const (
	NameCPUBurn  = "cpuburn"
	NameMemStall = "memstall"
	NameNetBlast = "netblast"
)

// CPUBurn returns a profile that keeps every core retiring work cycles
// with no memory or I/O activity, at full functional-unit intensity.
func CPUBurn(node *hardware.NodeType, duration units.Seconds) (*workload.Profile, error) {
	if err := node.Validate(); err != nil {
		return nil, err
	}
	// Size the job so one node at fmax finishes in the duration.
	cycles := float64(node.FMax()) * float64(node.Cores) * float64(duration)
	p := workload.NewProfile(NameCPUBurn, workload.DomainSynthetic, "iterations", cycles/100)
	err := p.SetDemand(node.Name, workload.Demand{
		CoreCycles: 100,
		Intensity:  1,
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// MemStall returns a profile that is a pure cache-miss stream: the cores
// stall on the memory controller for the whole run.
func MemStall(node *hardware.NodeType, duration units.Seconds) (*workload.Profile, error) {
	if err := node.Validate(); err != nil {
		return nil, err
	}
	cycles := float64(node.FMax()) * float64(duration)
	p := workload.NewProfile(NameMemStall, workload.DomainSynthetic, "misses", cycles/100)
	err := p.SetDemand(node.Name, workload.Demand{
		MemCycles: 100,
		// Intensity is irrelevant with zero core cycles but must be
		// positive for validation.
		Intensity: 1,
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// NetBlast returns a profile that saturates the NIC with no CPU work.
func NetBlast(node *hardware.NodeType, duration units.Seconds) (*workload.Profile, error) {
	if err := node.Validate(); err != nil {
		return nil, err
	}
	bytes := float64(node.NICBandwidth) * float64(duration)
	p := workload.NewProfile(NameNetBlast, workload.DomainSynthetic, "bytes", bytes/1000)
	err := p.SetDemand(node.Name, workload.Demand{
		IOBytes:   1000,
		Intensity: 1,
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// Suite returns all three micro-benchmarks for a node type, each sized
// to run for the given duration.
func Suite(node *hardware.NodeType, duration units.Seconds) ([]*workload.Profile, error) {
	var out []*workload.Profile
	for _, build := range []func(*hardware.NodeType, units.Seconds) (*workload.Profile, error){
		CPUBurn, MemStall, NetBlast,
	} {
		p, err := build(node, duration)
		if err != nil {
			return nil, fmt.Errorf("microbench: %w", err)
		}
		out = append(out, p)
	}
	return out, nil
}
