package microbench

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/hardware"
	"repro/internal/model"
	"repro/internal/stats"
	"repro/internal/units"
)

func TestSuiteBuilds(t *testing.T) {
	node := hardware.NewA9()
	profiles, err := Suite(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 {
		t.Fatalf("suite has %d benchmarks, want 3", len(profiles))
	}
	names := map[string]bool{}
	for _, p := range profiles {
		names[p.Name] = true
		if err := p.Validate(); err != nil {
			t.Errorf("%s invalid: %v", p.Name, err)
		}
	}
	for _, want := range []string{NameCPUBurn, NameMemStall, NameNetBlast} {
		if !names[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

// TestMicrobenchDurations: each benchmark must run for approximately the
// requested duration on its node at full cores and fmax.
func TestMicrobenchDurations(t *testing.T) {
	for _, nodeFn := range []func() *hardware.NodeType{hardware.NewA9, hardware.NewK10} {
		node := nodeFn()
		const dur = units.Seconds(5)
		cfg := cluster.MustConfig(cluster.FullNodes(node, 1))
		burn, err := CPUBurn(node, dur)
		if err != nil {
			t.Fatal(err)
		}
		res, err := model.Evaluate(cfg, burn, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(float64(res.Time), float64(dur)) > 1e-9 {
			t.Errorf("%s cpuburn runs %v, want %v", node.Name, res.Time, dur)
		}
		stall, err := MemStall(node, dur)
		if err != nil {
			t.Fatal(err)
		}
		res, err = model.Evaluate(cfg, stall, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(float64(res.Time), float64(dur)) > 1e-9 {
			t.Errorf("%s memstall runs %v, want %v", node.Name, res.Time, dur)
		}
		blast, err := NetBlast(node, dur)
		if err != nil {
			t.Fatal(err)
		}
		res, err = model.Evaluate(cfg, blast, model.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if stats.RelErr(float64(res.Time), float64(dur)) > 1e-9 {
			t.Errorf("%s netblast runs %v, want %v", node.Name, res.Time, dur)
		}
	}
}

// TestCPUBurnPowerIsActiveOnly: the cpuburn busy power must be idle plus
// full-intensity active power on every core — that is what the power
// characterization divides by.
func TestCPUBurnPowerIsActiveOnly(t *testing.T) {
	node := hardware.NewK10()
	cfg := cluster.MustConfig(cluster.FullNodes(node, 1))
	burn, err := CPUBurn(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(cfg, burn, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(node.Power.Idle) + float64(node.Power.CPUActPerCore)*float64(node.Cores)
	if stats.RelErr(float64(res.BusyPower), want) > 0.02 {
		t.Errorf("cpuburn busy power %v, want ~%.3g W", res.BusyPower, want)
	}
}

// TestMemStallPowerComposition: memstall draws idle + stall + memory.
func TestMemStallPowerComposition(t *testing.T) {
	node := hardware.NewK10()
	cfg := cluster.MustConfig(cluster.FullNodes(node, 1))
	stall, err := MemStall(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(cfg, stall, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(node.Power.Idle) +
		float64(node.Power.CPUStallPerCore)*float64(node.Cores) +
		float64(node.Power.Mem)
	if stats.RelErr(float64(res.BusyPower), want) > 0.02 {
		t.Errorf("memstall busy power %v, want ~%.3g W", res.BusyPower, want)
	}
}

// TestNetBlastSaturatesNIC: the netblast throughput equals the NIC
// bandwidth.
func TestNetBlastSaturatesNIC(t *testing.T) {
	node := hardware.NewA9()
	cfg := cluster.MustConfig(cluster.FullNodes(node, 1))
	blast, err := NetBlast(node, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := model.Evaluate(cfg, blast, model.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Units are kilobyte transfers; bytes/s = units/s * 1000.
	bytesPerSec := float64(res.Throughput) * 1000
	if stats.RelErr(bytesPerSec, float64(node.NICBandwidth)) > 1e-9 {
		t.Errorf("netblast moves %.4g B/s, NIC is %.4g B/s", bytesPerSec, float64(node.NICBandwidth))
	}
}

func TestMicrobenchRejectsInvalidNode(t *testing.T) {
	bad := hardware.NewA9()
	bad.Cores = 0
	if _, err := CPUBurn(bad, 1); err == nil {
		t.Error("CPUBurn accepted invalid node")
	}
	if _, err := MemStall(bad, 1); err == nil {
		t.Error("MemStall accepted invalid node")
	}
	if _, err := NetBlast(bad, 1); err == nil {
		t.Error("NetBlast accepted invalid node")
	}
	if _, err := Suite(bad, 1); err == nil {
		t.Error("Suite accepted invalid node")
	}
}
